// Package specs embeds the code generator specifications shipped with the
// repository: the full Amdahl 470 SDTS (the paper's Appendix 2), a
// minimal variant with one production per operator (the paper's
// "microcomputer" size-control scenario), and a small RISC target
// demonstrating retargetability.
package specs

import _ "embed"

// Amdahl470 is the full-scale S/370 specification: every addressing-mode
// variant, even/odd pair idioms, bitset operations, floating point, and
// common subexpression handling.
//
//go:embed amdahl470.cogg
var Amdahl470 string

// AmdahlMinimal is the reduced specification: a single production per IF
// operator, enough to generate correct (but naive) code with far smaller
// tables. "A language implementer can therefore control the size of the
// compiler by changing the complexity of the grammar" (paper section 6).
//
//go:embed amdahl-minimal.cogg
var AmdahlMinimal string

// Risc32 targets a simple load/store machine and demonstrates that
// retargeting requires only rewriting the templates.
//
//go:embed risc32.cogg
var Risc32 string
