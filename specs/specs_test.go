package specs_test

import (
	"strings"
	"testing"

	"cogg/internal/spec"
	"cogg/specs"
)

// TestEmbeddedSpecsParse: every shipped specification parses and has the
// expected scale.
func TestEmbeddedSpecsParse(t *testing.T) {
	cases := []struct {
		name, src string
		minProds  int
	}{
		{"amdahl470.cogg", specs.Amdahl470, 150},
		{"amdahl-minimal.cogg", specs.AmdahlMinimal, 50},
		{"risc32.cogg", specs.Risc32, 30},
	}
	for _, c := range cases {
		f, err := spec.Parse(c.name, c.src)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(f.Productions) < c.minProds {
			t.Errorf("%s: %d productions, want >= %d", c.name, len(f.Productions), c.minProds)
		}
	}
}

// TestFullSpecHasThirteenIAddForms: the paper's redundancy claim holds
// in the shipped grammar ("no less than thirteen productions associated
// with integer addition").
func TestFullSpecHasThirteenIAddForms(t *testing.T) {
	f, err := spec.Parse("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	iadd := 0
	for _, p := range f.Productions {
		for _, r := range p.RHS {
			if r.Name == "iadd" {
				iadd++
				break
			}
		}
	}
	if iadd < 13 {
		t.Errorf("iadd productions: %d, want >= 13", iadd)
	}
}

// TestSpecsShareTheIF: the minimal and full grammars declare the same
// operators, so the shaper's output parses under both.
func TestSpecsShareTheIF(t *testing.T) {
	full, err := spec.Parse("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	min, err := spec.Parse("amdahl-minimal.cogg", specs.AmdahlMinimal)
	if err != nil {
		t.Fatal(err)
	}
	fullOps := map[string]bool{}
	for _, d := range full.Operators {
		fullOps[d.Name] = true
	}
	for _, d := range min.Operators {
		if !fullOps[d.Name] {
			t.Errorf("minimal grammar declares operator %q absent from the full grammar", d.Name)
		}
	}
	if !strings.Contains(specs.Amdahl470, "push_odd") {
		t.Error("full spec lost the even/odd idioms")
	}
}
