package cogg_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example, checking a signature
// line of each — the guard against examples rotting as the library
// evolves.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow under -short")
	}
	cases := map[string]string{
		"quickstart": "3 reductions drove 3 instructions",
		"end2end":    "largest   = 47",
		"retarget":   "gcd(1071, 462) computed on the simulator: 21",
		"idioms":     "p  = 720",
		"appendix1":  "x[9] = 336",
	}
	for name, want := range cases {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("%s output lacks %q:\n%s", name, want, out)
			}
		})
	}
}
