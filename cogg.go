// Package cogg is the public interface to the code generator generator
// and the compiler built around it — a Go implementation of
//
//	Peter L. Bird, "An Implementation of a Code Generator Specification
//	Language for Table Driven Code Generators", PLDI 1982.
//
// Three layers are exposed:
//
//   - GenerateTables runs CoGG itself: a specification in the language of
//     the paper's Appendix 2 goes in, SLR driving tables and their
//     statistics (the paper's Tables 1 and 2) come out.
//   - NewS370Target / NewRISCTarget instantiate the table-driven code
//     generator for a target runtime.
//   - Target.CompilePascal runs the complete compiler — front end,
//     shaper, IF optimizer, table-driven code generation, label
//     resolution, loader — and Program.Run executes the object module on
//     the built-in S/370 simulator.
//
// The built-in specifications are exported by package cogg/specs; the
// implementation lives under internal/ (see DESIGN.md for the map).
package cogg

import (
	"fmt"
	"io"

	"cogg/internal/driver"
	"cogg/internal/ifopt"
	"cogg/internal/ir"
	"cogg/internal/pascal"
	"cogg/internal/shaper"
	"cogg/internal/tables"
)

// TableStats are the grammar and parse-table statistics of one CoGG run:
// the rows of the paper's Table 1.
type TableStats struct {
	SymbolsDeclared    int
	ParseSymbols       int // X dimension of the parse table
	States             int
	Entries            int
	SignificantEntries int
	Productions        int
	Templates          int
	ProductionOps      int
	SemanticOps        int
	ConflictsResolved  int
}

// TableSizes are the serialized artifact sizes in 4096-byte pages: the
// rows of the paper's Table 2.
type TableSizes struct {
	TemplatePages     float64
	CompressedPages   float64
	UncompressedPages float64
}

// Tables is the product of one CoGG run over a specification.
type Tables struct {
	target *driver.Target
}

// GenerateTables runs the table constructor over specification source
// and prepares a code generator for the standard S/370 runtime. name is
// used in diagnostics.
func GenerateTables(name, source string) (*Tables, error) {
	t, err := driver.NewTarget(name, source)
	if err != nil {
		return nil, err
	}
	return &Tables{target: t}, nil
}

// Stats reports the Table 1 statistics.
func (t *Tables) Stats() TableStats {
	s := t.target.CG.ComputeStats()
	return TableStats{
		SymbolsDeclared:    s.SymbolsDeclared,
		ParseSymbols:       s.ParseSymbols,
		States:             s.States,
		Entries:            s.Entries,
		SignificantEntries: s.SignificantEntries,
		Productions:        s.Productions,
		Templates:          s.Templates,
		ProductionOps:      s.ProductionOps,
		SemanticOps:        s.SemanticOps,
		ConflictsResolved:  s.Conflicts,
	}
}

// Sizes reports the Table 2 artifact sizes.
func (t *Tables) Sizes() (TableSizes, error) {
	sz, err := t.target.CG.Sizes()
	if err != nil {
		return TableSizes{}, err
	}
	return TableSizes{
		TemplatePages:     tables.Pages(sz.Templates),
		CompressedPages:   tables.Pages(sz.Compressed),
		UncompressedPages: tables.Pages(sz.Uncompressed),
	}, nil
}

// WriteTo serializes the table module (symbols, template array,
// compressed parse table); a code generator can be reconstituted from it
// without re-running the table constructor.
func (t *Tables) WriteTo(w io.Writer) (int64, error) {
	sz, err := t.target.CG.Encode(w)
	return int64(sz.Total), err
}

// Target turns the tables into a usable compiler target.
func (t *Tables) Target() *Target { return &Target{t: t.target} }

// Target is a ready-to-use code generator plus target machine.
type Target struct {
	t *driver.Target
}

// NewS370Target builds the standard target from specification source
// (use specs.Amdahl470 or specs.AmdahlMinimal).
func NewS370Target(name, source string) (*Target, error) {
	t, err := driver.NewTarget(name, source)
	if err != nil {
		return nil, err
	}
	return &Target{t: t}, nil
}

// NewRISCTarget builds the risc32 demonstration target
// (use specs.Risc32). Programs compile and list; only the S/370 target
// has a simulator.
func NewRISCTarget(name, source string) (*Target, error) {
	t, err := driver.NewTargetWithConfig(name, source, driver.RiscConfig())
	if err != nil {
		return nil, err
	}
	return &Target{t: t}, nil
}

// Options control the compiler passes around the code generator.
type Options struct {
	// SubscriptChecks emits range checks on array subscripts; a failed
	// check aborts execution and Run reports it.
	SubscriptChecks bool
	// CommonSubexpressions runs the IF optimizer (paper section 4.4).
	CommonSubexpressions bool
	// StatementRecords stamps emitted instructions with source lines.
	StatementRecords bool
	// UninitChecks aborts a run that reads an integer variable before
	// writing it (the classic MTS Pascal check).
	UninitChecks bool
}

// Program is one compiled Pascal program.
type Program struct {
	c *driver.Compiled
}

// CompilePascal runs the complete pipeline over Pascal source.
func (t *Target) CompilePascal(name, source string, opt Options) (*Program, error) {
	sopt := shaper.Options{
		SubscriptChecks:  opt.SubscriptChecks,
		StatementRecords: opt.StatementRecords,
		UninitChecks:     opt.UninitChecks,
	}
	if opt.CommonSubexpressions {
		sopt.CSE = ifopt.New().Apply
	}
	c, err := t.t.Compile(name, source, sopt)
	if err != nil {
		return nil, err
	}
	return &Program{c: c}, nil
}

// TranslateIF drives the code generator over textual intermediate form
// ("assign fullword dsp.96 r.13 pos_constant v.7") and returns the
// assembly listing — the spec-debugging entry point.
func (t *Target) TranslateIF(source string) (string, error) {
	toks, err := ir.ParseTokens(source)
	if err != nil {
		return "", err
	}
	prog, _, err := t.t.Gen.Generate("ifcgen", toks)
	if err != nil {
		return "", err
	}
	c, err := driver.Finish(prog, emptyShaped(), t.t.Machine)
	if err != nil {
		return "", err
	}
	return c.Listing(), nil
}

func emptyShaped() *shaper.Shaped {
	return &shaper.Shaped{
		VarOffset:  map[string]int64{},
		PrInit:     map[int]uint32{},
		ProcLabel:  map[string]int64{},
		VectorSlot: map[int]int64{},
	}
}

// Listing renders the generated assembly.
func (p *Program) Listing() string { return p.c.Listing() }

// Instructions returns the emitted machine instruction count (the unit
// of the paper's Appendix 1 comparison).
func (p *Program) Instructions() int { return p.c.Prog.InstructionCount() }

// CodeBytes returns the laid-out code size.
func (p *Program) CodeBytes() int { return p.c.Prog.CodeSize }

// WriteDeck writes the object module as 80-column loader records
// (ESD/TXT/RLD/END).
func (p *Program) WriteDeck(w io.Writer) error { return p.c.Deck.WriteCards(w) }

// Result is the outcome of one simulated execution.
type Result struct {
	prog  *Program
	cpu   cpuReader
	Steps int
	out   []int32
}

type cpuReader interface {
	Word(addr uint32) (int32, error)
	Byte(addr uint32) (byte, error)
	Half(addr uint32) (int32, error)
}

// Run executes the program on the S/370 simulator. init seeds
// main-program variables before entry; maxSteps bounds execution.
func (p *Program) Run(init map[string]int32, maxSteps int) (*Result, error) {
	cpu, err := p.c.Run(init, maxSteps)
	if err != nil {
		return nil, err
	}
	return &Result{prog: p, cpu: cpu, Steps: cpu.Steps, out: driver.Output(cpu)}, nil
}

// Output returns the integers the program wrote with write/writeln, in
// order.
func (r *Result) Output() []int32 { return r.out }

// Int reads a fullword main-program variable.
func (r *Result) Int(name string) (int32, error) {
	addr, ok := r.prog.c.VarAddr(name)
	if !ok {
		return 0, fmt.Errorf("cogg: unknown variable %q", name)
	}
	return r.cpu.Word(addr)
}

// Bool reads a boolean main-program variable.
func (r *Result) Bool(name string) (bool, error) {
	addr, ok := r.prog.c.VarAddr(name)
	if !ok {
		return false, fmt.Errorf("cogg: unknown variable %q", name)
	}
	b, err := r.cpu.Byte(addr)
	return b != 0, err
}

// Element reads one element of a main-program integer array.
func (r *Result) Element(name string, index int64) (int32, error) {
	addr, ok := r.prog.c.VarAddr(name)
	if !ok {
		return 0, fmt.Errorf("cogg: unknown variable %q", name)
	}
	var arr *arrayInfo
	for _, v := range r.prog.c.Source.Main.Locals {
		if v.Name == name {
			if v.Type.Kind != pascal.TArray {
				return 0, fmt.Errorf("cogg: %q is not an array", name)
			}
			arr = &arrayInfo{lo: v.Type.Lo, hi: v.Type.Hi, elem: v.Type.Elem.Size()}
		}
	}
	if arr == nil {
		return 0, fmt.Errorf("cogg: unknown array %q", name)
	}
	if index < arr.lo || index > arr.hi {
		return 0, fmt.Errorf("cogg: index %d outside %d..%d", index, arr.lo, arr.hi)
	}
	return r.cpu.Word(addr + uint32((index-arr.lo)*arr.elem))
}

type arrayInfo struct {
	lo, hi, elem int64
}
