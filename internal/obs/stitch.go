package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StitchedSpan is one span in a cross-process timeline: a fragment span
// lifted to absolute time and labeled with the process that recorded it.
type StitchedSpan struct {
	Process  string          `json:"process,omitempty"`
	Name     string          `json:"name"`
	SpanID   string          `json:"span_id"`
	ParentID string          `json:"parent_span_id,omitempty"`
	Note     string          `json:"note,omitempty"`
	Orphan   bool            `json:"orphan,omitempty"`
	Start    time.Time       `json:"start"`
	DurNS    int64           `json:"dur_ns"`
	Children []*StitchedSpan `json:"children,omitempty"`
}

// Stitched is one trace reassembled from per-process fragments.
type Stitched struct {
	ID        string          `json:"id"`
	Begin     time.Time       `json:"begin"`
	DurNS     int64           `json:"dur_ns"`
	Processes []string        `json:"processes"`
	Failures  []string        `json:"failures,omitempty"`
	Spans     int             `json:"spans"`
	Orphans   int             `json:"orphans"`
	Roots     []*StitchedSpan `json:"roots"`
}

// Stitch joins trace fragments exported by different processes into one
// timeline. The algorithm:
//
//  1. Deduplicate fragments (a fan-out may reach the same ring twice —
//     a front listed under two names, or a retried scrape).
//  2. Lift every span to absolute time (fragment Begin + StartNS) and
//     index it by its wire SpanID.
//  3. Link children under parents by ParentID. Cross-process edges
//     resolve exactly like intra-process ones because a server trace's
//     root spans carry the caller's attempt span as their ParentID
//     (SetRemoteParent). A span whose ParentID is non-empty but absent
//     from every fragment becomes an orphan root — the caller's
//     fragment was not collected (or its ring already evicted it).
//  4. Sort siblings by absolute start time.
//
// Clock skew between processes shifts fragments relative to each other
// but never breaks the tree: linkage is by span ID, not by time.
func Stitch(frags []*TraceData) *Stitched {
	st := &Stitched{}
	seen := map[string]bool{}
	procs := map[string]bool{}
	index := map[string]*StitchedSpan{}
	var all []*StitchedSpan
	for _, f := range frags {
		if f == nil || len(f.Spans) == 0 {
			continue
		}
		fkey := f.Process + "|" + f.Spans[0].SpanID + "|" + fmt.Sprint(len(f.Spans))
		if seen[fkey] {
			continue
		}
		seen[fkey] = true
		if st.ID == "" {
			st.ID = f.ID
		}
		if f.ID != st.ID {
			continue // caller mixed trace IDs; keep the first
		}
		if f.Process != "" {
			procs[f.Process] = true
		}
		if f.Failure != "" {
			st.Failures = append(st.Failures, f.Failure)
		}
		for i := range f.Spans {
			sp := &f.Spans[i]
			node := &StitchedSpan{
				Process:  f.Process,
				Name:     sp.Name,
				SpanID:   sp.SpanID,
				ParentID: sp.ParentID,
				Note:     sp.Note,
				Start:    f.Begin.Add(time.Duration(sp.StartNS)),
				DurNS:    sp.DurNS,
			}
			all = append(all, node)
			if sp.SpanID != "" && index[sp.SpanID] == nil {
				index[sp.SpanID] = node
			}
		}
	}
	for _, n := range all {
		if p := index[n.ParentID]; n.ParentID != "" && p != nil && p != n {
			p.Children = append(p.Children, n)
			continue
		}
		if n.ParentID != "" {
			n.Orphan = true
			st.Orphans++
		}
		st.Roots = append(st.Roots, n)
	}
	sortSpans := func(s []*StitchedSpan) {
		sort.SliceStable(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
	}
	sortSpans(st.Roots)
	for _, n := range all {
		sortSpans(n.Children)
	}
	st.Spans = len(all)
	for i, n := range all {
		if i == 0 || n.Start.Before(st.Begin) {
			st.Begin = n.Start
		}
	}
	for _, n := range all {
		if n.DurNS >= 0 {
			if end := n.Start.Add(time.Duration(n.DurNS)).Sub(st.Begin).Nanoseconds(); end > st.DurNS {
				st.DurNS = end
			}
		}
	}
	for p := range procs {
		st.Processes = append(st.Processes, p)
	}
	sort.Strings(st.Processes)
	return st
}

// Tree renders the stitched timeline indented, one span per line, each
// prefixed with the recording process. Offsets are relative to the
// stitched begin.
func (st *Stitched) Tree() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s dur=%v spans=%d processes=%d [%s]",
		st.ID, time.Duration(st.DurNS), st.Spans, len(st.Processes), strings.Join(st.Processes, " "))
	if st.Orphans > 0 {
		fmt.Fprintf(&b, " orphans=%d", st.Orphans)
	}
	if len(st.Failures) > 0 {
		fmt.Fprintf(&b, " failures=%s", strings.Join(st.Failures, ","))
	}
	b.WriteByte('\n')
	var walk func(n *StitchedSpan, depth int)
	walk = func(n *StitchedSpan, depth int) {
		dur := "unfinished"
		if n.DurNS >= 0 {
			dur = time.Duration(n.DurNS).String()
		}
		proc := n.Process
		if proc == "" {
			proc = "?"
		}
		mark := ""
		if n.Orphan {
			mark = " (orphan)"
		}
		note := ""
		if n.Note != "" {
			note = " [" + n.Note + "]"
		}
		fmt.Fprintf(&b, "%s[%s] %-16s +%v %s%s%s\n", strings.Repeat("  ", depth+1),
			proc, n.Name, n.Start.Sub(st.Begin).Round(time.Microsecond), dur, note, mark)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range st.Roots {
		walk(r, 0)
	}
	return b.String()
}
