package obs

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// LintExposition checks a Prometheus text exposition for structural
// validity: metric and label name syntax, HELP/TYPE lines preceding
// their samples, parseable sample values, and — for histograms —
// cumulative bucket counts with an +Inf bucket matching _count. It is
// the assertion backing the /metrics tests; a scrape that passes it is
// ingestible by a standard Prometheus server.
func LintExposition(text string) error {
	var (
		nameRe     = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		sampleRe   = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
		labelRe    = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
		exemplarRe = regexp.MustCompile(`^\{([^}]*)\} (\S+)( \S+)?$`)
	)
	typed := map[string]string{}        // family -> type
	helped := map[string]string{}       // family -> help text
	lastBucket := map[string]float64{}  // series (name+labels sans le) -> last cumulative count
	lastBound := map[string]float64{}   // series -> last le bound
	infCount := map[string]float64{}    // series -> +Inf cumulative count
	countSample := map[string]float64{} // series -> _count value
	sawSample := map[string]bool{}      // family -> any sample seen
	seenSeries := map[string]int{}      // name+full labels -> first line
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if !nameRe.MatchString(parts[2]) {
				return fmt.Errorf("line %d: bad metric name %q", lineNo, parts[2])
			}
			if parts[1] == "TYPE" {
				if sawSample[parts[2]] {
					return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, parts[2])
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, parts[3])
				}
				// A merged exposition (several registries, or series
				// registered twice under divergent metadata) must not
				// redeclare a family: Prometheus keeps the first TYPE
				// and silently drops samples that disagree with it.
				if prev, ok := typed[parts[2]]; ok {
					if prev != parts[3] {
						return fmt.Errorf("line %d: TYPE for %q redeclared as %q (was %q)", lineNo, parts[2], parts[3], prev)
					}
					return fmt.Errorf("line %d: duplicate TYPE line for %q", lineNo, parts[2])
				}
				typed[parts[2]] = parts[3]
			} else {
				if prev, ok := helped[parts[2]]; ok {
					if prev != parts[3] {
						return fmt.Errorf("line %d: HELP for %q redeclared as %q (was %q)", lineNo, parts[2], parts[3], prev)
					}
					return fmt.Errorf("line %d: duplicate HELP line for %q", lineNo, parts[2])
				}
				helped[parts[2]] = parts[3]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Peel an OpenMetrics exemplar suffix off bucket samples:
		// `name_bucket{le="x"} 41 # {trace_id="..."} 0.004 1754650001.25`.
		sampleLine := line
		if cut := strings.Index(line, " # "); cut >= 0 {
			sampleLine = line[:cut]
			em := exemplarRe.FindStringSubmatch(line[cut+3:])
			if em == nil {
				return fmt.Errorf("line %d: malformed exemplar %q", lineNo, line[cut+3:])
			}
			for _, lp := range splitLabels(em[1]) {
				if !labelRe.MatchString(lp) {
					return fmt.Errorf("line %d: bad exemplar label pair %q", lineNo, lp)
				}
			}
			if _, err := strconv.ParseFloat(em[2], 64); err != nil {
				return fmt.Errorf("line %d: bad exemplar value %q: %v", lineNo, em[2], err)
			}
			if em[3] != "" {
				if _, err := strconv.ParseFloat(strings.TrimSpace(em[3]), 64); err != nil {
					return fmt.Errorf("line %d: bad exemplar timestamp %q: %v", lineNo, em[3], err)
				}
			}
			if !strings.Contains(sampleLine, "_bucket") {
				return fmt.Errorf("line %d: exemplar on non-bucket sample %q", lineNo, sampleLine)
			}
		}
		m := sampleRe.FindStringSubmatch(sampleLine)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name, labelBody, valStr := m[1], m[3], m[4]
		seriesKey := name + "{" + labelBody + "}"
		if first, ok := seenSeries[seriesKey]; ok {
			return fmt.Errorf("line %d: duplicate series %s (first at line %d)", lineNo, seriesKey, first)
		}
		seenSeries[seriesKey] = lineNo
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		le := ""
		var plain []string
		if labelBody != "" {
			for _, lp := range splitLabels(labelBody) {
				if !labelRe.MatchString(lp) {
					return fmt.Errorf("line %d: bad label pair %q", lineNo, lp)
				}
				if strings.HasPrefix(lp, `le="`) {
					le = strings.TrimSuffix(strings.TrimPrefix(lp, `le="`), `"`)
				} else {
					plain = append(plain, lp)
				}
			}
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		sawSample[family] = true
		if _, ok := typed[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, name)
		}
		if typed[family] == "histogram" {
			key := family + "{" + strings.Join(plain, ",") + "}"
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q", lineNo, le)
					}
				}
				if prev, ok := lastBound[key]; ok && bound <= prev {
					return fmt.Errorf("line %d: %s buckets out of order (le %v after %v)", lineNo, key, bound, prev)
				}
				if prev, ok := lastBucket[key]; ok && v < prev {
					return fmt.Errorf("line %d: %s bucket counts not cumulative (%v after %v)", lineNo, key, v, prev)
				}
				lastBound[key], lastBucket[key] = bound, v
				if math.IsInf(bound, 1) {
					infCount[key] = v
				}
			case strings.HasSuffix(name, "_count"):
				countSample[key] = v
			}
		}
	}
	for key, c := range countSample {
		inf, ok := infCount[key]
		if !ok {
			return fmt.Errorf("histogram %s has _count but no +Inf bucket", key)
		}
		if inf != c {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", key, inf, c)
		}
	}
	return nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			if depth {
				i++
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, body[start:])
	return out
}
