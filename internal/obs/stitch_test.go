package obs

import (
	"strings"
	"testing"
	"time"
)

// tracePair builds a two-process fragment set the way the fleet does:
// a client trace whose attempt span is the remote parent of a server
// trace recorded by another Trace (hence a different span-ID base).
func tracePair(t *testing.T) (client, server *TraceData, attemptID string) {
	t.Helper()
	ct := NewTrace("", "request")
	ct.SetProcess("front")
	root := ct.StartSpan("request", -1)
	cluster := ct.StartSpan("cluster:/v1/compile", root)
	attempt := ct.StartSpan("attempt:replica0", cluster)
	attemptID = ct.SpanID(attempt)

	st := NewTrace(ct.ID(), "compile")
	st.SetProcess("cogd-0")
	st.SetRemoteParent(attemptID)
	sroot := st.StartSpan("request", -1)
	st.EndSpan(st.StartSpan("parse-reduce", sroot))
	st.EndSpan(sroot)

	ct.Annotate(attempt, "hedge-win")
	ct.EndSpan(attempt)
	ct.EndSpan(cluster)
	ct.EndSpan(root)
	return ct.Snapshot(), st.Snapshot(), attemptID
}

// TestStitchCrossProcess: two fragments with a remote-parent edge join
// into one connected tree — one root, zero orphans, both processes.
func TestStitchCrossProcess(t *testing.T) {
	client, server, attemptID := tracePair(t)
	st := Stitch([]*TraceData{client, server})
	if st.ID != client.ID {
		t.Fatalf("stitched ID = %s, want %s", st.ID, client.ID)
	}
	if st.Orphans != 0 {
		t.Fatalf("orphans = %d, want 0:\n%s", st.Orphans, st.Tree())
	}
	if len(st.Roots) != 1 {
		t.Fatalf("roots = %d, want 1:\n%s", len(st.Roots), st.Tree())
	}
	if got, want := len(st.Processes), 2; got != want {
		t.Fatalf("processes = %v, want %d", st.Processes, want)
	}
	if st.Spans != len(client.Spans)+len(server.Spans) {
		t.Fatalf("spans = %d, want %d", st.Spans, len(client.Spans)+len(server.Spans))
	}
	// The server's root must hang under the client's attempt span.
	var find func(n *StitchedSpan, id string) *StitchedSpan
	find = func(n *StitchedSpan, id string) *StitchedSpan {
		if n.SpanID == id {
			return n
		}
		for _, c := range n.Children {
			if got := find(c, id); got != nil {
				return got
			}
		}
		return nil
	}
	attempt := find(st.Roots[0], attemptID)
	if attempt == nil {
		t.Fatalf("attempt span %s not reachable from the root:\n%s", attemptID, st.Tree())
	}
	serverChild := false
	for _, c := range attempt.Children {
		if c.Process == "cogd-0" && c.Name == "request" {
			serverChild = true
		}
	}
	if !serverChild {
		t.Errorf("server fragment not parented under the attempt span:\n%s", st.Tree())
	}
	tree := st.Tree()
	for _, want := range []string{"[front]", "[cogd-0]", "[hedge-win]", "processes=2"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree lacks %q:\n%s", want, tree)
		}
	}
}

// TestStitchDedupsFragments: the same fragment collected twice (a front
// reachable under two URLs) must not double the span count.
func TestStitchDedupsFragments(t *testing.T) {
	client, server, _ := tracePair(t)
	st := Stitch([]*TraceData{client, server, client, server})
	if st.Spans != len(client.Spans)+len(server.Spans) {
		t.Fatalf("spans = %d after duplicate collection, want %d", st.Spans, len(client.Spans)+len(server.Spans))
	}
	if st.Orphans != 0 {
		t.Fatalf("orphans = %d, want 0", st.Orphans)
	}
}

// TestStitchMissingParentOrphan: a server fragment whose caller's
// fragment was never collected still renders — its root flagged as an
// orphan, counted in the summary.
func TestStitchMissingParentOrphan(t *testing.T) {
	_, server, _ := tracePair(t)
	st := Stitch([]*TraceData{server})
	if st.Orphans != 1 {
		t.Fatalf("orphans = %d, want 1 (remote parent uncollected):\n%s", st.Orphans, st.Tree())
	}
	if len(st.Roots) != 1 || !st.Roots[0].Orphan {
		t.Fatalf("orphaned server root not surfaced as a root:\n%s", st.Tree())
	}
	if !strings.Contains(st.Tree(), "(orphan)") {
		t.Errorf("tree does not mark the orphan:\n%s", st.Tree())
	}
}

// TestStitchIgnoresForeignTrace: fragments of a different trace ID are
// dropped rather than grafted in.
func TestStitchIgnoresForeignTrace(t *testing.T) {
	client, server, _ := tracePair(t)
	foreign := NewTrace("", "other")
	foreign.SetProcess("cogd-9")
	foreign.EndSpan(foreign.StartSpan("request", -1))
	st := Stitch([]*TraceData{client, server, foreign.Snapshot()})
	if st.Spans != len(client.Spans)+len(server.Spans) {
		t.Fatalf("foreign fragment leaked into the stitch: spans = %d", st.Spans)
	}
	for _, p := range st.Processes {
		if p == "cogd-9" {
			t.Fatalf("foreign process listed: %v", st.Processes)
		}
	}
}

// TestStitchClockSkew: a server fragment whose clock runs ahead of the
// client's still links under its parent — linkage is by span ID, and
// only the rendered offsets shift.
func TestStitchClockSkew(t *testing.T) {
	client, server, _ := tracePair(t)
	server.Begin = server.Begin.Add(-3 * time.Second) // server clock behind
	st := Stitch([]*TraceData{client, server})
	if st.Orphans != 0 {
		t.Fatalf("skewed fragment orphaned: %d orphans:\n%s", st.Orphans, st.Tree())
	}
	if len(st.Roots) != 1 {
		t.Fatalf("skewed fragment broke the tree: %d roots:\n%s", len(st.Roots), st.Tree())
	}
}
