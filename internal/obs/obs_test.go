package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cogg_things_total", "things.", L("kind", "a"))
	c.Inc()
	c.Add(4)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("cogg_things_total", "things.", L("kind", "a")); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
	g := r.Gauge("cogg_depth", "depth.", "")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cogg_lat_seconds", "latency.", "", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`cogg_lat_seconds_bucket{le="0.001"} 1`,
		`cogg_lat_seconds_bucket{le="0.01"} 3`,
		`cogg_lat_seconds_bucket{le="0.1"} 4`,
		`cogg_lat_seconds_bucket{le="+Inf"} 5`,
		`cogg_lat_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if err := LintExposition(text); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("cogg_reductions_total", "Reductions by production.", L("spec", "amdahl470.cogg", "production", "3")).Add(12)
	r.CounterFunc("cogg_cache_hits_total", "Cache hits.", L("tier", "mem"), func() int64 { return 42 })
	r.GaugeFunc("cogd_queue_depth", "Queue depth.", "", func() float64 { return 3 })
	r.Histogram("cogg_phase_seconds", "Phase latency.", L("phase", "emit"), LatencyBuckets).ObserveDuration(30 * time.Microsecond)
	ic := r.IndexedCounters("cogg_prod_total", "Per-production.", L("spec", "s"), "production")
	ic.At(2).Add(9)
	ic.At(0).Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if err := LintExposition(text); err != nil {
		t.Fatalf("lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE cogg_reductions_total counter",
		`cogg_cache_hits_total{tier="mem"} 42`,
		"cogd_queue_depth 3",
		`cogg_prod_total{spec="s",production="2"} 9`,
		`cogg_prod_total{spec="s",production="0"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Each family's HELP/TYPE appears exactly once.
	if n := strings.Count(text, "# TYPE cogg_prod_total"); n != 1 {
		t.Errorf("TYPE cogg_prod_total appears %d times", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := L("k", `va"l\ue`+"\n")
	want := `k="va\"l\\ue\n"`
	if got != want {
		t.Fatalf("L = %s, want %s", got, want)
	}
}

// TestInstrumentAllocs verifies the observation path is allocation-free
// — the property that lets the PR 3 zero-alloc reduce loop carry
// metrics.
func TestInstrumentAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c.", "")
	h := r.Histogram("h_seconds", "h.", "", LatencyBuckets)
	ic := r.IndexedCounters("p_total", "p.", "", "i")
	ic.Grow(64)
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(2.5e-5)
		ic.At(17).Add(3)
	}); n != 0 {
		t.Fatalf("instrument path allocates %.1f per op, want 0", n)
	}
}

func TestIndexedCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	ic := r.IndexedCounters("p_total", "p.", "", "i")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ic.At(i % 50).Inc()
			}
		}()
	}
	wg.Wait()
	var total int64
	for i := 0; i < 50; i++ {
		total += ic.At(i).Value()
	}
	if total != 8*200 {
		t.Fatalf("total = %d, want %d", total, 8*200)
	}
}

func TestTraceSpansAndTree(t *testing.T) {
	tr := NewTrace("", "unit.pas")
	if len(tr.ID()) != 32 {
		t.Fatalf("trace id %q, want 32 hex chars", tr.ID())
	}
	root := tr.StartSpan("request", -1)
	child := tr.StartSpan("parse-reduce", root)
	tr.AddSpan("regalloc", child, time.Now(), 123*time.Microsecond)
	tr.EndSpan(child)
	tr.EndSpan(root)
	tr.SetFailure("blocked")

	d := tr.Snapshot()
	if len(d.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(d.Spans))
	}
	if d.Spans[1].Parent != root || d.Spans[2].Parent != child {
		t.Fatalf("parent links wrong: %+v", d.Spans)
	}
	if d.Failure != "blocked" {
		t.Fatalf("failure = %q", d.Failure)
	}
	tree := d.Tree()
	for _, want := range []string{"trace " + tr.ID(), "request", "parse-reduce", "regalloc", "failure=blocked"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
	// parse-reduce is indented deeper than request.
	reqLine, childLine := "", ""
	for _, line := range strings.Split(tree, "\n") {
		if strings.Contains(line, "request") {
			reqLine = line
		}
		if strings.Contains(line, "parse-reduce") {
			childLine = line
		}
	}
	if indent(childLine) <= indent(reqLine) {
		t.Fatalf("child not nested under parent:\n%s", tree)
	}
}

func indent(s string) int {
	return len(s) - len(strings.TrimLeft(s, " "))
}

func TestContextPropagation(t *testing.T) {
	// No trace: everything is a no-op.
	ctx := context.Background()
	if tr, span := FromContext(ctx); tr != nil || span != -1 {
		t.Fatalf("empty context returned %v, %d", tr, span)
	}
	c2, end := StartSpan(ctx, "x")
	end()
	if c2 != ctx {
		t.Fatalf("StartSpan without a trace derived a new context")
	}

	tr := NewTrace("deadbeefdeadbeef", "t")
	ctx = ContextWith(ctx, tr, -1)
	ctx, endA := StartSpan(ctx, "a")
	_, endB := StartSpan(ctx, "b")
	endB()
	endA()
	d := tr.Snapshot()
	if d.ID != "deadbeefdeadbeef" {
		t.Fatalf("id = %q", d.ID)
	}
	if len(d.Spans) != 2 || d.Spans[1].Parent != 0 {
		t.Fatalf("spans = %+v", d.Spans)
	}
	if d.Spans[0].DurNS < 0 || d.Spans[1].DurNS < 0 {
		t.Fatalf("spans left unfinished: %+v", d.Spans)
	}
}

func TestRing(t *testing.T) {
	r := NewRing(4)
	if got := r.Snapshot(0); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %d entries", len(got))
	}
	for i := 0; i < 6; i++ {
		tr := NewTrace("", "t")
		tr.SetName(strings.Repeat("x", i+1)) // distinguishable
		r.Add(tr.Snapshot())
	}
	got := r.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	// Newest first: names of length 6,5,4,3.
	for i, td := range got {
		if len(td.Name) != 6-i {
			t.Fatalf("entry %d has name %q, want length %d", i, td.Name, 6-i)
		}
	}
	if got := r.Snapshot(2); len(got) != 2 || len(got[0].Name) != 6 {
		t.Fatalf("bounded snapshot wrong: %d entries", len(got))
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr := NewTrace("", "t")
				r.Add(tr.Snapshot())
				r.Snapshot(0)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot(0); len(got) != 8 {
		t.Fatalf("ring holds %d, want 8", len(got))
	}
}

func TestLintExpositionRejects(t *testing.T) {
	bad := []string{
		"no_type_metric 1\n",
		"# TYPE m counter\nm{bad-label=\"x\"} 1\n",
		"# TYPE m counter\nm notanumber\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
	}
	for _, text := range bad {
		if err := LintExposition(text); err == nil {
			t.Errorf("lint accepted invalid exposition:\n%s", text)
		}
	}
}
