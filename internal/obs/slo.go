package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLOOptions configures one latency objective.
type SLOOptions struct {
	// Name is the slo label value on every series ("compile").
	Name string
	// Threshold is the latency objective: observations slower than this
	// breach the SLO. Default 50ms.
	Threshold time.Duration
	// Objective is the target good fraction (0.99 = 99% of requests
	// under Threshold); 1-Objective is the error budget the burn rate
	// is measured against. Default 0.99.
	Objective float64
	// FastWindow and SlowWindow are the two burn-rate horizons — the
	// classic multi-window pairing where the fast window catches a
	// sudden regression and the slow window confirms it is sustained.
	// Defaults 1m and 10m.
	FastWindow, SlowWindow time.Duration
	// Buckets are the latency histogram bounds in seconds; default
	// LatencyBuckets.
	Buckets []float64
	// Now is the clock, for tests. Default time.Now.
	Now func() time.Time
}

// SLO tracks a latency objective: cumulative request/breach counters, a
// latency histogram whose buckets carry trace-ID exemplars, and rolling
// per-second windows from which two burn-rate gauges are derived.
//
// Burn rate is the fraction of requests in the window that breached the
// threshold, divided by the error budget (1 - objective): 1.0 means the
// budget is being consumed exactly as fast as it accrues, 10 means ten
// times too fast. All series surface on /metrics via the registry:
//
//	cogg_slo_requests_total{slo}            observations
//	cogg_slo_breaches_total{slo}            observations over threshold
//	cogg_slo_threshold_seconds{slo}         the configured objective latency
//	cogg_slo_objective{slo}                 the configured good fraction
//	cogg_slo_burn_rate{slo,window}          budget-normalized breach rate
//	cogg_slo_latency_seconds{slo}           histogram with exemplars
type SLO struct {
	name      string
	threshold float64 // seconds
	objective float64
	fastSec   int64
	slowSec   int64
	total     *Counter
	breaches  *Counter
	latency   *Histogram
	now       func() time.Time

	mu    sync.Mutex
	slots []sloSlot // one per second, len slowSec
}

// sloSlot is one second's tally; sec identifies which second it holds
// so stale slots are recognized and reset in place (no sliding copy).
type sloSlot struct {
	sec    int64
	total  int64
	breach int64
}

// NewSLO registers the SLO's series in reg (nil reg keeps the SLO
// functional but unexported) and returns it.
func NewSLO(reg *Registry, o SLOOptions) *SLO {
	if o.Name == "" {
		o.Name = "default"
	}
	if o.Threshold <= 0 {
		o.Threshold = 50 * time.Millisecond
	}
	if o.Objective <= 0 || o.Objective >= 1 {
		o.Objective = 0.99
	}
	if o.FastWindow <= 0 {
		o.FastWindow = time.Minute
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = 10 * time.Minute
	}
	if o.SlowWindow < o.FastWindow {
		o.SlowWindow = o.FastWindow
	}
	if o.Buckets == nil {
		o.Buckets = LatencyBuckets
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	s := &SLO{
		name:      o.Name,
		threshold: o.Threshold.Seconds(),
		objective: o.Objective,
		fastSec:   int64(o.FastWindow / time.Second),
		slowSec:   int64(o.SlowWindow / time.Second),
		now:       o.Now,
		slots:     make([]sloSlot, int64(o.SlowWindow/time.Second)),
	}
	l := L("slo", o.Name)
	s.total = reg.Counter("cogg_slo_requests_total",
		"Requests observed against the latency SLO, by objective.", l)
	s.breaches = reg.Counter("cogg_slo_breaches_total",
		"Requests that exceeded the SLO latency threshold, by objective.", l)
	s.latency = reg.Histogram("cogg_slo_latency_seconds",
		"Latency of SLO-observed requests; buckets carry trace-ID exemplars.",
		l, o.Buckets).EnableExemplars()
	threshold, objective := s.threshold, s.objective
	reg.GaugeFunc("cogg_slo_threshold_seconds",
		"Configured SLO latency threshold in seconds.", l,
		func() float64 { return threshold })
	reg.GaugeFunc("cogg_slo_objective",
		"Configured SLO good-request fraction.", l,
		func() float64 { return objective })
	reg.GaugeFunc("cogg_slo_burn_rate",
		"Error-budget burn rate: windowed breach fraction over (1-objective). 1 = budget consumed exactly at accrual rate.",
		joinLabels(l, `window="`+windowLabel(o.FastWindow)+`"`),
		func() float64 { return s.BurnRate(o.FastWindow) })
	reg.GaugeFunc("cogg_slo_burn_rate",
		"Error-budget burn rate: windowed breach fraction over (1-objective). 1 = budget consumed exactly at accrual rate.",
		joinLabels(l, `window="`+windowLabel(o.SlowWindow)+`"`),
		func() float64 { return s.BurnRate(o.SlowWindow) })
	return s
}

// Observe records one request latency. traceID, when non-empty, becomes
// the exemplar on the latency bucket the observation lands in — the
// metrics-to-trace link. This sits on the per-request (not per-unit)
// path, so its mutex and exemplar allocation are off the compile hot
// loop entirely.
func (s *SLO) Observe(d time.Duration, traceID string) {
	sec := d.Seconds()
	s.total.Inc()
	breach := sec > s.threshold
	if breach {
		s.breaches.Inc()
	}
	s.latency.ObserveExemplar(sec, traceID)
	now := s.now().Unix()
	s.mu.Lock()
	slot := &s.slots[now%int64(len(s.slots))]
	if slot.sec != now {
		slot.sec, slot.total, slot.breach = now, 0, 0
	}
	slot.total++
	if breach {
		slot.breach++
	}
	s.mu.Unlock()
}

// BurnRate reports the budget-normalized breach rate over the trailing
// window (clamped to the slow window the ring covers). Zero traffic
// burns no budget.
func (s *SLO) BurnRate(window time.Duration) float64 {
	wsec := int64(window / time.Second)
	if wsec < 1 {
		wsec = 1
	}
	if wsec > s.slowSec {
		wsec = s.slowSec
	}
	now := s.now().Unix()
	var total, breach int64
	s.mu.Lock()
	for i := range s.slots {
		if sl := s.slots[i]; sl.sec > now-wsec && sl.sec <= now {
			total += sl.total
			breach += sl.breach
		}
	}
	s.mu.Unlock()
	if total == 0 {
		return 0
	}
	budget := 1 - s.objective
	return (float64(breach) / float64(total)) / budget
}

// Breaches returns the cumulative breach count (tests and varz).
func (s *SLO) Breaches() int64 { return s.breaches.Value() }

// Total returns the cumulative observation count.
func (s *SLO) Total() int64 { return s.total.Value() }

// windowLabel renders a window duration compactly ("1m", "90s").
func windowLabel(d time.Duration) string {
	if d%time.Minute == 0 {
		return fmt.Sprintf("%dm", int64(d/time.Minute))
	}
	return fmt.Sprintf("%ds", int64(d/time.Second))
}
