package obs

import (
	"strings"
	"testing"
	"time"
)

// sloClock is a settable test clock for the burn-rate windows.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestSLO(reg *Registry, clk *sloClock) *SLO {
	return NewSLO(reg, SLOOptions{
		Name:       "compile",
		Threshold:  50 * time.Millisecond,
		Objective:  0.99,
		FastWindow: time.Minute,
		SlowWindow: 10 * time.Minute,
		Now:        clk.now,
	})
}

// TestSLOBurnRate: breach fraction over the window divided by the error
// budget, with the fast window forgetting old breaches the slow window
// still remembers.
func TestSLOBurnRate(t *testing.T) {
	clk := &sloClock{t: time.Unix(1_000_000, 0)}
	s := newTestSLO(NewRegistry(), clk)

	// 100 requests this second, 10 breaching: windowed breach fraction
	// 0.1 against a 0.01 budget = burn rate 10.
	for i := 0; i < 90; i++ {
		s.Observe(time.Millisecond, "")
	}
	for i := 0; i < 10; i++ {
		s.Observe(200*time.Millisecond, "")
	}
	if got := s.Total(); got != 100 {
		t.Fatalf("total = %d, want 100", got)
	}
	if got := s.Breaches(); got != 10 {
		t.Fatalf("breaches = %d, want 10", got)
	}
	if got := s.BurnRate(time.Minute); got < 9.99 || got > 10.01 {
		t.Fatalf("fast burn rate = %g, want 10", got)
	}

	// Two minutes later the fast window is clean but the slow window
	// still covers the breaches.
	clk.advance(2 * time.Minute)
	if got := s.BurnRate(time.Minute); got != 0 {
		t.Errorf("fast burn rate after the window passed = %g, want 0", got)
	}
	if got := s.BurnRate(10 * time.Minute); got < 9.99 || got > 10.01 {
		t.Errorf("slow burn rate = %g, want 10 (breaches still in window)", got)
	}

	// Eleven minutes later even the slow window has forgotten.
	clk.advance(11 * time.Minute)
	if got := s.BurnRate(10 * time.Minute); got != 0 {
		t.Errorf("slow burn rate after expiry = %g, want 0", got)
	}
	// Zero traffic burns no budget.
	if got := s.BurnRate(time.Minute); got != 0 {
		t.Errorf("burn rate with no traffic = %g, want 0", got)
	}
}

// TestSLOExposition: the registry carries every series — counters,
// config gauges, both burn-rate windows — and the latency histogram's
// buckets hold the traced request's exemplar. The whole exposition must
// pass the lint.
func TestSLOExposition(t *testing.T) {
	reg := NewRegistry()
	clk := &sloClock{t: time.Unix(2_000_000, 0)}
	s := newTestSLO(reg, clk)
	s.Observe(time.Millisecond, "")
	s.Observe(200*time.Millisecond, "00000000000000000000000000abcdef")

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if err := LintExposition(text); err != nil {
		t.Fatalf("SLO exposition fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{
		`cogg_slo_requests_total{slo="compile"} 2`,
		`cogg_slo_breaches_total{slo="compile"} 1`,
		`cogg_slo_threshold_seconds{slo="compile"} 0.05`,
		`cogg_slo_objective{slo="compile"} 0.99`,
		`cogg_slo_burn_rate{slo="compile",window="1m"}`,
		`cogg_slo_burn_rate{slo="compile",window="10m"}`,
		`cogg_slo_latency_seconds_bucket{slo="compile",le=`,
		`# {trace_id="00000000000000000000000000abcdef"} 0.2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
}

// TestSLODefaults: zero-valued options resolve to the documented
// defaults and a degenerate slow window is clamped up to the fast one.
func TestSLODefaults(t *testing.T) {
	s := NewSLO(nil, SLOOptions{})
	if s.threshold != 0.05 {
		t.Errorf("default threshold = %g, want 0.05", s.threshold)
	}
	if s.objective != 0.99 {
		t.Errorf("default objective = %g, want 0.99", s.objective)
	}
	if s.fastSec != 60 || s.slowSec != 600 {
		t.Errorf("default windows = %ds/%ds, want 60/600", s.fastSec, s.slowSec)
	}
	clamped := NewSLO(nil, SLOOptions{FastWindow: 2 * time.Minute, SlowWindow: time.Minute})
	if clamped.slowSec != clamped.fastSec {
		t.Errorf("slow window not clamped to fast: %d vs %d", clamped.slowSec, clamped.fastSec)
	}
	// Unregistered (nil registry) SLOs still observe and report.
	s.Observe(time.Second, "")
	if s.Total() != 1 || s.Breaches() != 1 {
		t.Errorf("nil-registry SLO lost counts: total=%d breaches=%d", s.Total(), s.Breaches())
	}
}
