package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed phase of a trace. Start offsets and durations are
// nanoseconds relative to the trace's begin time; Parent is the index
// of the enclosing span in the trace's span slice, -1 for a root.
//
// SpanID and ParentID are wire identities filled in by Snapshot (live
// spans carry only indices): each span's ID is the trace's random
// 64-bit span base plus its index, so recording a span never formats a
// string, and a fragment's IDs still join against fragments recorded by
// other processes. Note carries outcome annotations (hedge-win,
// breaker-open, retry-after=...) appended after the span ends.
type Span struct {
	Name     string `json:"name"`
	Parent   int    `json:"parent"`
	StartNS  int64  `json:"start_ns"`
	DurNS    int64  `json:"dur_ns"`
	Note     string `json:"note,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_span_id,omitempty"`
}

// Trace is one request's (or one compilation unit's) span collection.
// It is safe for concurrent use: batch units of one request record
// spans from multiple workers. Tracing is per-request opt-in — the
// mutex and the span append are off the metrics-only hot path entirely.
type Trace struct {
	mu           sync.Mutex
	id           string
	name         string
	begin        time.Time
	failure      string
	process      string
	remoteParent string
	spanBase     uint64
	spans        []Span
}

// NewTrace starts a trace. An empty id generates a fresh one.
func NewTrace(id, name string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, name: name, begin: time.Now(), spanBase: randUint64()}
}

// ID returns the trace ID.
func (t *Trace) ID() string { return t.id }

// SetProcess names the process recording this trace ("cogd@:8481",
// "cogdfront@:8471"); stitched cross-process timelines label each span
// with the fragment's process.
func (t *Trace) SetProcess(p string) {
	t.mu.Lock()
	t.process = p
	t.mu.Unlock()
}

// SetRemoteParent links this trace's root spans under a span recorded
// by another process: the inbound X-Parent-Span header value. Snapshot
// stamps it as the ParentID of every root span.
func (t *Trace) SetRemoteParent(spanID string) {
	t.mu.Lock()
	t.remoteParent = spanID
	t.mu.Unlock()
}

// SpanID renders span i's wire identity: the trace's random span base
// plus the index, as 16 hex characters. It involves no trace state
// besides the immutable base, so it is safe without the lock.
func (t *Trace) SpanID(i int) string {
	if i < 0 {
		return ""
	}
	return fmt.Sprintf("%016x", t.spanBase+uint64(i)+1)
}

// Annotate appends an outcome note to span i ("hedge-win",
// "breaker-open:replica2", "retry-after=50ms"). Notes accumulate
// comma-separated; annotating an out-of-range span is a no-op.
func (t *Trace) Annotate(i int, note string) {
	if note == "" {
		return
	}
	t.mu.Lock()
	if i >= 0 && i < len(t.spans) {
		if t.spans[i].Note != "" {
			t.spans[i].Note += "," + note
		} else {
			t.spans[i].Note = note
		}
	}
	t.mu.Unlock()
}

// SetName renames the trace (the request's unit name becomes known only
// after the body is decoded).
func (t *Trace) SetName(name string) {
	t.mu.Lock()
	t.name = name
	t.mu.Unlock()
}

// SetFailure records the request's failure mode (the PR 2 taxonomy
// string) on the trace, so slow-request logs and /v1/traces tie the
// span tree to what went wrong.
func (t *Trace) SetFailure(mode string) {
	t.mu.Lock()
	t.failure = mode
	t.mu.Unlock()
}

// StartSpan opens a span under parent (-1 for a root) and returns its
// index.
func (t *Trace) StartSpan(name string, parent int) int {
	now := time.Now()
	t.mu.Lock()
	i := len(t.spans)
	t.spans = append(t.spans, Span{Name: name, Parent: parent, StartNS: now.Sub(t.begin).Nanoseconds(), DurNS: -1})
	t.mu.Unlock()
	return i
}

// EndSpan closes the span opened by StartSpan.
func (t *Trace) EndSpan(i int) {
	now := time.Now()
	t.mu.Lock()
	if i >= 0 && i < len(t.spans) && t.spans[i].DurNS < 0 {
		t.spans[i].DurNS = now.Sub(t.begin).Nanoseconds() - t.spans[i].StartNS
	}
	t.mu.Unlock()
}

// AddSpan records an already-measured span, for phases timed with plain
// time.Now pairs (the accumulated regalloc/emit time inside one
// parse-reduce) rather than bracketed live.
func (t *Trace) AddSpan(name string, parent int, start time.Time, d time.Duration) int {
	t.mu.Lock()
	i := len(t.spans)
	t.spans = append(t.spans, Span{Name: name, Parent: parent, StartNS: start.Sub(t.begin).Nanoseconds(), DurNS: d.Nanoseconds()})
	t.mu.Unlock()
	return i
}

// TraceData is an immutable snapshot of a trace: the JSON shape of
// /v1/traces entries and the ring buffer element.
type TraceData struct {
	ID      string    `json:"id"`
	Name    string    `json:"name"`
	Process string    `json:"process,omitempty"`
	Begin   time.Time `json:"begin"`
	DurNS   int64     `json:"dur_ns"`
	Failure string    `json:"failure,omitempty"`
	Spans   []Span    `json:"spans"`
}

// Snapshot copies the trace. Unfinished spans keep DurNS -1. The
// snapshot's DurNS covers begin through the latest span end seen.
// Wire span IDs are rendered here — once per export, never on the
// recording path.
func (t *Trace) Snapshot() *TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &TraceData{
		ID:      t.id,
		Name:    t.name,
		Process: t.process,
		Begin:   t.begin,
		Failure: t.failure,
		Spans:   append([]Span(nil), t.spans...),
	}
	for i := range d.Spans {
		sp := &d.Spans[i]
		sp.SpanID = fmt.Sprintf("%016x", t.spanBase+uint64(i)+1)
		if sp.Parent >= 0 && sp.Parent < len(d.Spans) {
			sp.ParentID = fmt.Sprintf("%016x", t.spanBase+uint64(sp.Parent)+1)
		} else if t.remoteParent != "" {
			sp.ParentID = t.remoteParent
		}
		if sp.DurNS >= 0 && sp.StartNS+sp.DurNS > d.DurNS {
			d.DurNS = sp.StartNS + sp.DurNS
		}
	}
	return d
}

// Tree renders the span forest indented, one span per line — the
// slow-request log and the CLI -trace output.
func (d *TraceData) Tree() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s name=%s dur=%v", d.ID, d.Name, time.Duration(d.DurNS))
	if d.Process != "" {
		fmt.Fprintf(&b, " process=%s", d.Process)
	}
	if d.Failure != "" {
		fmt.Fprintf(&b, " failure=%s", d.Failure)
	}
	b.WriteByte('\n')
	children := make(map[int][]int, len(d.Spans))
	roots := []int{}
	for i, sp := range d.Spans {
		if sp.Parent >= 0 && sp.Parent < len(d.Spans) && sp.Parent != i {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := d.Spans[i]
		dur := "unfinished"
		if sp.DurNS >= 0 {
			dur = time.Duration(sp.DurNS).String()
		}
		note := ""
		if sp.Note != "" {
			note = " [" + sp.Note + "]"
		}
		fmt.Fprintf(&b, "%s%-14s +%v %s%s\n", strings.Repeat("  ", depth+1), sp.Name,
			time.Duration(sp.StartNS), dur, note)
		for _, c := range children[i] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// NewTraceID returns a 32-hex-character random trace ID — the W3C
// trace-context trace-id width, so generated IDs round-trip through a
// canonical traceparent header unchanged.
func NewTraceID() string {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; fall back to a
		// process-local counter rather than failing a request over an ID.
		return fmt.Sprintf("%032x", fallbackID.Add(1))
	}
	return hex.EncodeToString(buf[:])
}

var fallbackID atomic.Int64

// randUint64 draws the per-trace span-ID base. Zero on entropy failure
// is acceptable: span IDs then degrade to small integers but traces
// still stitch (IDs only need to be unique within one scrape window).
func randUint64() uint64 {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return uint64(fallbackID.Add(1)) << 20
	}
	var v uint64
	for _, b := range buf {
		v = v<<8 | uint64(b)
	}
	return v
}

// Propagation headers. X-Trace-Id predates this PR and stays the
// authoritative join key — it carries the ID verbatim even when a
// caller supplied a non-W3C-shaped one. traceparent is emitted
// alongside it (canonical form when the ID is 32 lowercase hex) for
// interop with W3C trace-context tooling, and X-Parent-Span carries
// the caller's span identity so the receiving process parents its
// server spans under the exact outbound attempt that reached it.
const (
	TraceIDHeader     = "X-Trace-Id"
	ParentSpanHeader  = "X-Parent-Span"
	TraceparentHeader = "Traceparent"
)

// headerSetter is the subset of http.Header Inject needs; declared
// locally so obs keeps zero net/http imports on the recording path.
type headerSetter interface{ Set(key, value string) }

// headerGetter is the subset of http.Header Extract needs.
type headerGetter interface{ Get(key string) string }

// Inject stamps the propagation headers for an outbound hop made while
// span spanID of trace traceID is open. An empty spanID omits the
// parent-span header (the hop becomes a remote root) and suppresses the
// traceparent too: a synthetic parent-id there would make the receiver
// parent its spans under a span no process ever recorded.
func Inject(h headerSetter, traceID, spanID string) {
	if traceID == "" {
		return
	}
	h.Set(TraceIDHeader, traceID)
	if spanID != "" {
		h.Set(ParentSpanHeader, spanID)
	}
	if isHex(traceID, 32) && isHex(spanID, 16) {
		h.Set(TraceparentHeader, "00-"+traceID+"-"+spanID+"-01")
	}
}

// InjectContext injects the context's current trace and span, if any.
// The no-trace case is a cheap nil check, so callers on optional-trace
// paths need no conditionals.
func InjectContext(ctx context.Context, h headerSetter) {
	if tr, span := FromContext(ctx); tr != nil {
		Inject(h, tr.ID(), tr.SpanID(span))
	}
}

// Extract recovers (traceID, parentSpanID) from inbound headers. The
// raw X-Trace-Id wins over the traceparent's trace-id field so the
// sender and receiver always record the identical join key; traceparent
// fills in when only W3C headers arrived.
func Extract(h headerGetter) (traceID, parentSpanID string) {
	if tp := h.Get(TraceparentHeader); tp != "" {
		parts := strings.Split(tp, "-")
		if len(parts) >= 4 && isHex(parts[1], 32) && isHex(parts[2], 16) {
			traceID, parentSpanID = parts[1], parts[2]
		}
	}
	if id := h.Get(TraceIDHeader); id != "" {
		traceID = id
	}
	if ps := h.Get(ParentSpanHeader); ps != "" {
		parentSpanID = ps
	}
	return traceID, parentSpanID
}

// isHex reports whether s is exactly n lowercase hex characters.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ctxKey carries a trace plus the current span index through a request.
type ctxKey struct{}

type ctxVal struct {
	t    *Trace
	span int
}

// ContextWith attaches a trace (and the current span index, -1 when no
// span is open yet) to a context.
func ContextWith(ctx context.Context, t *Trace, span int) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, span: span})
}

// FromContext extracts the trace and current span index; (nil, -1) when
// the context carries none.
func FromContext(ctx context.Context) (*Trace, int) {
	if ctx == nil {
		return nil, -1
	}
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.t, v.span
	}
	return nil, -1
}

// StartSpan opens a span named name under the context's current span
// and returns the derived context plus the closer. Without a trace in
// the context both are no-ops, so call sites need no conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, func()) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok {
		return ctx, func() {}
	}
	i := v.t.StartSpan(name, v.span)
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: v.t, span: i}), func() { v.t.EndSpan(i) }
}

// Ring is a lock-free ring buffer of the last N trace snapshots. Add is
// one atomic increment plus one atomic pointer store; Snapshot walks
// the slots newest-first.
type Ring struct {
	slots []atomic.Pointer[TraceData]
	next  atomic.Uint64
}

// NewRing builds a ring holding up to n traces (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]atomic.Pointer[TraceData], n)}
}

// Add publishes a trace snapshot, displacing the oldest.
func (r *Ring) Add(td *TraceData) {
	if td == nil {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(td)
}

// Find returns every buffered snapshot whose ID matches, newest first.
// One process can hold several fragments of the same trace (a request
// span tree plus a peer artifact fetch it served), so this is a slice.
func (r *Ring) Find(id string) []*TraceData {
	var out []*TraceData
	for _, td := range r.Snapshot(0) {
		if td.ID == id {
			out = append(out, td)
		}
	}
	return out
}

// Snapshot returns up to max traces, newest first (max <= 0 means all).
func (r *Ring) Snapshot(max int) []*TraceData {
	n := len(r.slots)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]*TraceData, 0, max)
	head := r.next.Load()
	for i := 0; i < n && len(out) < max; i++ {
		// Walk backwards from the most recently written slot.
		idx := (head + uint64(n) - 1 - uint64(i)) % uint64(n)
		if td := r.slots[idx].Load(); td != nil {
			out = append(out, td)
		}
	}
	return out
}
