package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed phase of a trace. Start offsets and durations are
// nanoseconds relative to the trace's begin time; Parent is the index
// of the enclosing span in the trace's span slice, -1 for a root.
type Span struct {
	Name    string `json:"name"`
	Parent  int    `json:"parent"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Trace is one request's (or one compilation unit's) span collection.
// It is safe for concurrent use: batch units of one request record
// spans from multiple workers. Tracing is per-request opt-in — the
// mutex and the span append are off the metrics-only hot path entirely.
type Trace struct {
	mu      sync.Mutex
	id      string
	name    string
	begin   time.Time
	failure string
	spans   []Span
}

// NewTrace starts a trace. An empty id generates a fresh one.
func NewTrace(id, name string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{id: id, name: name, begin: time.Now()}
}

// ID returns the trace ID.
func (t *Trace) ID() string { return t.id }

// SetName renames the trace (the request's unit name becomes known only
// after the body is decoded).
func (t *Trace) SetName(name string) {
	t.mu.Lock()
	t.name = name
	t.mu.Unlock()
}

// SetFailure records the request's failure mode (the PR 2 taxonomy
// string) on the trace, so slow-request logs and /v1/traces tie the
// span tree to what went wrong.
func (t *Trace) SetFailure(mode string) {
	t.mu.Lock()
	t.failure = mode
	t.mu.Unlock()
}

// StartSpan opens a span under parent (-1 for a root) and returns its
// index.
func (t *Trace) StartSpan(name string, parent int) int {
	now := time.Now()
	t.mu.Lock()
	i := len(t.spans)
	t.spans = append(t.spans, Span{Name: name, Parent: parent, StartNS: now.Sub(t.begin).Nanoseconds(), DurNS: -1})
	t.mu.Unlock()
	return i
}

// EndSpan closes the span opened by StartSpan.
func (t *Trace) EndSpan(i int) {
	now := time.Now()
	t.mu.Lock()
	if i >= 0 && i < len(t.spans) && t.spans[i].DurNS < 0 {
		t.spans[i].DurNS = now.Sub(t.begin).Nanoseconds() - t.spans[i].StartNS
	}
	t.mu.Unlock()
}

// AddSpan records an already-measured span, for phases timed with plain
// time.Now pairs (the accumulated regalloc/emit time inside one
// parse-reduce) rather than bracketed live.
func (t *Trace) AddSpan(name string, parent int, start time.Time, d time.Duration) int {
	t.mu.Lock()
	i := len(t.spans)
	t.spans = append(t.spans, Span{Name: name, Parent: parent, StartNS: start.Sub(t.begin).Nanoseconds(), DurNS: d.Nanoseconds()})
	t.mu.Unlock()
	return i
}

// TraceData is an immutable snapshot of a trace: the JSON shape of
// /v1/traces entries and the ring buffer element.
type TraceData struct {
	ID      string    `json:"id"`
	Name    string    `json:"name"`
	Begin   time.Time `json:"begin"`
	DurNS   int64     `json:"dur_ns"`
	Failure string    `json:"failure,omitempty"`
	Spans   []Span    `json:"spans"`
}

// Snapshot copies the trace. Unfinished spans keep DurNS -1. The
// snapshot's DurNS covers begin through the latest span end seen.
func (t *Trace) Snapshot() *TraceData {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := &TraceData{
		ID:      t.id,
		Name:    t.name,
		Begin:   t.begin,
		Failure: t.failure,
		Spans:   append([]Span(nil), t.spans...),
	}
	for _, sp := range d.Spans {
		if sp.DurNS >= 0 && sp.StartNS+sp.DurNS > d.DurNS {
			d.DurNS = sp.StartNS + sp.DurNS
		}
	}
	return d
}

// Tree renders the span forest indented, one span per line — the
// slow-request log and the CLI -trace output.
func (d *TraceData) Tree() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s name=%s dur=%v", d.ID, d.Name, time.Duration(d.DurNS))
	if d.Failure != "" {
		fmt.Fprintf(&b, " failure=%s", d.Failure)
	}
	b.WriteByte('\n')
	children := make(map[int][]int, len(d.Spans))
	roots := []int{}
	for i, sp := range d.Spans {
		if sp.Parent >= 0 && sp.Parent < len(d.Spans) && sp.Parent != i {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := d.Spans[i]
		dur := "unfinished"
		if sp.DurNS >= 0 {
			dur = time.Duration(sp.DurNS).String()
		}
		fmt.Fprintf(&b, "%s%-14s +%v %s\n", strings.Repeat("  ", depth+1), sp.Name,
			time.Duration(sp.StartNS), dur)
		for _, c := range children[i] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}

// NewTraceID returns a 16-hex-character random trace ID.
func NewTraceID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; fall back to a
		// process-local counter rather than failing a request over an ID.
		return fmt.Sprintf("%016x", fallbackID.Add(1))
	}
	return hex.EncodeToString(buf[:])
}

var fallbackID atomic.Int64

// ctxKey carries a trace plus the current span index through a request.
type ctxKey struct{}

type ctxVal struct {
	t    *Trace
	span int
}

// ContextWith attaches a trace (and the current span index, -1 when no
// span is open yet) to a context.
func ContextWith(ctx context.Context, t *Trace, span int) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: t, span: span})
}

// FromContext extracts the trace and current span index; (nil, -1) when
// the context carries none.
func FromContext(ctx context.Context) (*Trace, int) {
	if ctx == nil {
		return nil, -1
	}
	if v, ok := ctx.Value(ctxKey{}).(ctxVal); ok {
		return v.t, v.span
	}
	return nil, -1
}

// StartSpan opens a span named name under the context's current span
// and returns the derived context plus the closer. Without a trace in
// the context both are no-ops, so call sites need no conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, func()) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok {
		return ctx, func() {}
	}
	i := v.t.StartSpan(name, v.span)
	return context.WithValue(ctx, ctxKey{}, ctxVal{t: v.t, span: i}), func() { v.t.EndSpan(i) }
}

// Ring is a lock-free ring buffer of the last N trace snapshots. Add is
// one atomic increment plus one atomic pointer store; Snapshot walks
// the slots newest-first.
type Ring struct {
	slots []atomic.Pointer[TraceData]
	next  atomic.Uint64
}

// NewRing builds a ring holding up to n traces (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]atomic.Pointer[TraceData], n)}
}

// Add publishes a trace snapshot, displacing the oldest.
func (r *Ring) Add(td *TraceData) {
	if td == nil {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(td)
}

// Snapshot returns up to max traces, newest first (max <= 0 means all).
func (r *Ring) Snapshot(max int) []*TraceData {
	n := len(r.slots)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]*TraceData, 0, max)
	head := r.next.Load()
	for i := 0; i < n && len(out) < max; i++ {
		// Walk backwards from the most recently written slot.
		idx := (head + uint64(n) - 1 - uint64(i)) % uint64(n)
		if td := r.slots[idx].Load(); td != nil {
			out = append(out, td)
		}
	}
	return out
}
