// Package obs is the pipeline's zero-dependency observability layer:
// metric instruments (counters, gauges, fixed-bucket histograms) with a
// Prometheus text exposition, and phase-span traces with trace-ID
// propagation through context.Context (see trace.go).
//
// The design constraint is the PR 3 hot path: a steady-state reduction
// performs no heap allocation, and instrumentation must not change
// that. Every instrument therefore updates through plain atomics —
// Counter.Add is one atomic add, Histogram.Observe is a binary search
// over a fixed bound slice plus two atomic adds and a CAS loop for the
// float sum — and per-production counters are a dense slice indexed by
// production number (IndexedCounters), grown only outside the steady
// state. Registration and exposition take a mutex; observation never
// does.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Negative deltas are a programming error
// and are ignored rather than corrupting the monotone invariant.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by a (possibly negative) delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Bounds are the inclusive upper
// edges of each bucket in ascending order; one implicit +Inf bucket is
// appended. Observe is allocation-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf bucket
	sum    atomicFloat
	n      atomic.Int64
	// ex, when enabled, holds one exemplar slot per bucket: the most
	// recent traced observation that landed there, so a hot bucket on
	// /metrics links straight to a trace ID in /v1/traces. Plain
	// Observe never touches it — the hot path stays allocation-free.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar ties one histogram bucket to a recent traced observation —
// the OpenMetrics `# {trace_id="..."} value ts` suffix on bucket lines.
type Exemplar struct {
	Value   float64
	TraceID string
	TS      time.Time
}

// EnableExemplars allocates the per-bucket exemplar slots. Call it at
// registration time, before the histogram is shared; it returns the
// receiver so it chains off Registry.Histogram.
func (h *Histogram) EnableExemplars() *Histogram {
	if h.ex == nil {
		h.ex = make([]atomic.Pointer[Exemplar], len(h.counts))
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIdx(v)].Add(1)
	h.n.Add(1)
	h.sum.add(v)
}

// ObserveExemplar records one value and, when the observation came from
// a traced request, pins it as the bucket's exemplar. Only traced
// requests pay the allocation; untraced callers use plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := h.bucketIdx(v)
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sum.add(v)
	if h.ex != nil && traceID != "" {
		h.ex[i].Store(&Exemplar{Value: v, TraceID: traceID, TS: time.Now()})
	}
}

// bucketIdx binary-searches for the first bound >= v; linear would do
// for ~20 buckets but the search keeps wide custom bucketings honest.
func (h *Histogram) bucketIdx(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// exemplar returns bucket i's exemplar, nil when absent or disabled.
func (h *Histogram) exemplar(i int) *Exemplar {
	if h.ex == nil || i < 0 || i >= len(h.ex) {
		return nil
	}
	return h.ex[i].Load()
}

// ObserveDuration records a duration in seconds, the Prometheus base
// unit for time.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// atomicFloat is a float64 updated by CAS on its bit pattern, so the
// histogram sum needs no mutex on the observation path.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// LatencyBuckets are the default histogram bounds for pipeline phase
// latencies, in seconds: 1µs to 10s, roughly 2.5x apart — the
// microsecond-scale emission loop and the tens-of-milliseconds table
// build both land mid-range.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
	1, 2.5, 5, 10,
}

// CountBuckets are default bounds for small cardinalities (live
// registers, queue depths).
var CountBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128, 256}

// L renders label pairs as a Prometheus label body:
// L("spec", "amdahl470.cogg", "phase", "emit") is
// `spec="amdahl470.cogg",phase="emit"`. Values are escaped per the
// exposition format. An odd trailing key is dropped.
func L(kv ...string) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled time series of a family: exactly one of the
// value sources is set.
type series struct {
	labels string
	c      *Counter
	g      *Gauge
	cf     func() int64
	gf     func() float64
	h      *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name     string
	help     string
	kind     metricKind
	series   []*series
	byLabels map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration methods are idempotent per
// (name, labels): asking again returns the existing instrument, so
// lazily-built components (per-spec serving state) can register without
// coordinating. A nil *Registry is valid and registers nothing —
// callers can thread an optional registry without nil checks at every
// site.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabels: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	return f
}

func (f *family) lookup(labels string) (*series, bool) {
	s, ok := f.byLabels[labels]
	return s, ok
}

func (f *family) add(s *series) {
	f.series = append(f.series, s)
	f.byLabels[s.labels] = s
}

// Counter registers (or returns) the counter series name{labels}.
func (r *Registry) Counter(name, help, labels string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counterLocked(name, help, labels)
}

func (r *Registry) counterLocked(name, help, labels string) *Counter {
	f := r.family(name, help, kindCounter)
	if s, ok := f.lookup(labels); ok {
		return s.c
	}
	s := &series{labels: labels, c: &Counter{}}
	f.add(s)
	return s.c
}

// Gauge registers (or returns) the gauge series name{labels}.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	if s, ok := f.lookup(labels); ok {
		return s.g
	}
	s := &series{labels: labels, g: &Gauge{}}
	f.add(s)
	return s.g
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — the bridge for counters that already live in other
// packages' atomics (batch.Stats, the session pools).
func (r *Registry) CounterFunc(name, help, labels string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	if _, ok := f.lookup(labels); ok {
		return
	}
	f.add(&series{labels: labels, cf: fn})
}

// CounterFloatFunc registers a counter series whose float value is read
// from fn at exposition time — for monotone sums kept in other units
// elsewhere (accumulated nanoseconds exported as seconds).
func (r *Registry) CounterFloatFunc(name, help, labels string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	if _, ok := f.lookup(labels); ok {
		return
	}
	f.add(&series{labels: labels, gf: fn})
}

// GaugeFunc registers a gauge series read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	if _, ok := f.lookup(labels); ok {
		return
	}
	f.add(&series{labels: labels, gf: fn})
}

// Histogram registers (or returns) the histogram series name{labels}
// with the given bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	if s, ok := f.lookup(labels); ok {
		return s.h
	}
	s := &series{labels: labels, h: newHistogram(bounds)}
	f.add(s)
	return s.h
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// IndexedCounters is a dense family of counters distinguished by one
// integer label — per-production reduce counts, indexed by production
// number. At is lock-free once the index has been touched; growth takes
// the registry lock, which only ever happens outside the steady state
// (the first translation through a given production).
type IndexedCounters struct {
	r          *Registry
	name, help string
	baseLabels string
	indexLabel string
	ptr        atomic.Pointer[[]*Counter]
}

// IndexedCounters registers a dense integer-indexed counter family.
// Each index i surfaces as name{baseLabels,indexLabel="i"}.
func (r *Registry) IndexedCounters(name, help, baseLabels, indexLabel string) *IndexedCounters {
	ic := &IndexedCounters{r: r, name: name, help: help, baseLabels: baseLabels, indexLabel: indexLabel}
	if r != nil {
		r.mu.Lock()
		r.family(name, help, kindCounter) // reserve the family and its kind
		r.mu.Unlock()
	}
	return ic
}

// At returns the counter for index i, creating it (and any smaller
// missing indices' slots) on first touch.
func (ic *IndexedCounters) At(i int) *Counter {
	if s := ic.ptr.Load(); s != nil && i < len(*s) {
		if c := (*s)[i]; c != nil {
			return c
		}
	}
	return ic.grow(i)
}

// Grow pre-extends the dense slice to cover indices [0, n), creating
// every counter eagerly — call at session setup so the steady state
// never takes the growth path at all.
func (ic *IndexedCounters) Grow(n int) {
	if n > 0 {
		ic.grow(n - 1)
	}
}

func (ic *IndexedCounters) grow(i int) *Counter {
	if ic.r == nil {
		// Unregistered: hand out throwaway counters so callers need no
		// nil checks. Steady-state code should not reach here (a nil
		// registry means metrics are off and the caller skips the flush).
		return &Counter{}
	}
	ic.r.mu.Lock()
	defer ic.r.mu.Unlock()
	old := ic.ptr.Load()
	var cur []*Counter
	if old != nil {
		cur = *old
	}
	if i < len(cur) && cur[i] != nil {
		return cur[i] // another goroutine grew it first
	}
	n := i + 1
	if n < len(cur) {
		n = len(cur)
	}
	next := make([]*Counter, n)
	copy(next, cur)
	for j := 0; j <= i; j++ {
		if next[j] == nil {
			labels := ic.baseLabels
			idx := ic.indexLabel + `="` + strconv.Itoa(j) + `"`
			if labels != "" {
				labels += "," + idx
			} else {
				labels = idx
			}
			next[j] = ic.r.counterLocked(ic.name, ic.help, labels)
		}
	}
	ic.ptr.Store(&next)
	return next[i]
}

// WriteText renders every family in Prometheus text exposition format.
// Families are sorted by name and series by label string, so the output
// is deterministic whatever order registration happened in.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	// Snapshot the series slices under the lock; values are atomics and
	// are read outside it.
	snaps := make([][]*series, len(fams))
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for i, f := range fams {
		ss := append([]*series(nil), f.series...)
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
		snaps[i] = ss
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		if len(snaps[i]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range snaps[i] {
			writeSeries(&b, f.name, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, name string, s *series) {
	switch {
	case s.c != nil:
		writeSample(b, name, s.labels, float64(s.c.Value()))
	case s.g != nil:
		writeSample(b, name, s.labels, float64(s.g.Value()))
	case s.cf != nil:
		writeSample(b, name, s.labels, float64(s.cf()))
	case s.gf != nil:
		writeSample(b, name, s.labels, s.gf())
	case s.h != nil:
		h := s.h
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			writeBucket(b, name, joinLabels(s.labels, `le="`+formatFloat(bound)+`"`), float64(cum), h.exemplar(i))
		}
		cum += h.counts[len(h.bounds)].Load()
		writeBucket(b, name, joinLabels(s.labels, `le="+Inf"`), float64(cum), h.exemplar(len(h.bounds)))
		writeSample(b, name+"_sum", s.labels, h.Sum())
		writeSample(b, name+"_count", s.labels, float64(cum))
	}
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// writeBucket writes one histogram bucket sample, appending the
// OpenMetrics exemplar suffix when the bucket has one:
//
//	name_bucket{le="0.005"} 41 # {trace_id="4bf9..."} 0.0042 1754650001.25
func writeBucket(b *strings.Builder, name, labels string, v float64, ex *Exemplar) {
	b.WriteString(name)
	b.WriteString("_bucket{")
	b.WriteString(labels)
	b.WriteString("} ")
	b.WriteString(formatFloat(v))
	if ex != nil {
		b.WriteString(` # {trace_id="`)
		b.WriteString(ex.TraceID)
		b.WriteString(`"} `)
		b.WriteString(formatFloat(ex.Value))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(float64(ex.TS.UnixNano())/1e9, 'f', 3, 64))
	}
	b.WriteByte('\n')
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
