package spec_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cogg/internal/grammar"
	"cogg/internal/lr"
	"cogg/internal/spec"
	"cogg/specs"
)

// TestRobustMutatedSpecs feeds randomly mutated specification text
// through the whole table constructor: every input must either build or
// return an error — never panic, never hang.
func TestRobustMutatedSpecs(t *testing.T) {
	base := strings.Split(specs.AmdahlMinimal, "\n")
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d panicked: %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		lines := append([]string(nil), base...)
		for k := 0; k < 1+r.Intn(6); k++ {
			i := r.Intn(len(lines))
			switch r.Intn(5) {
			case 0: // delete a line
				lines = append(lines[:i], lines[i+1:]...)
			case 1: // duplicate a line
				lines = append(lines[:i], append([]string{lines[i]}, lines[i:]...)...)
			case 2: // swap two lines
				j := r.Intn(len(lines))
				lines[i], lines[j] = lines[j], lines[i]
			case 3: // truncate a line
				if len(lines[i]) > 0 {
					lines[i] = lines[i][:r.Intn(len(lines[i]))]
				}
			case 4: // inject noise
				noise := []string{"$Bogus", "::=", "r.1 ::=", " using q.9",
					"lambda ::= lambda", "a.b.c", " l r.1,", "$Productions"}
				lines[i] = noise[r.Intn(len(noise))]
			}
			if len(lines) == 0 {
				return true
			}
		}
		src := strings.Join(lines, "\n")
		file, err := spec.Parse("mut.cogg", src)
		if err != nil {
			return true
		}
		g, err := grammar.Resolve(file)
		if err != nil {
			return true
		}
		if _, err := lr.Build(g); err != nil {
			return true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
