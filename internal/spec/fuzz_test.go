package spec_test

import (
	"testing"

	"cogg/internal/spec"
	"cogg/specs"
)

// FuzzSpecParse drives the specification parser over mutated CoGG
// source. The parser's contract is errors, never panics: every
// specification a user can type — truncated, interleaved, or binary
// garbage — must come back as a diagnostic.
func FuzzSpecParse(f *testing.F) {
	f.Add(specs.AmdahlMinimal)
	f.Add(specs.Amdahl470)
	f.Add(specs.Risc32)
	f.Add("")
	f.Add("machine M\n")
	f.Add("class r regs 1 2 3\nsym fullword node\n")
	f.Fuzz(func(t *testing.T, src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %d-byte input: %v", len(src), r)
			}
		}()
		spec.Parse("fuzz.cogg", src)
	})
}
