package spec

import (
	"strings"
	"testing"
)

const tiny = `
$Non-terminals
 r = register            General purpose, allocated LRU.
 cc = condition
$Terminals
 dsp = displacement
 lng = length
$Operators
 fullword, iadd, assign
$Opcodes
 l, a, st, mvc
$Constants
 using, modifies, IBM_length,
 zero = 0, one = 1, stack_base = 13
$Productions
* A load.
r.2 ::= fullword dsp.1 r.1
 using r.2
 l r.2,dsp.1(zero,r.1)          Load fullword.

r.2 ::= iadd r.2 fullword dsp.1 r.1
 modifies r.2
 a r.2,dsp.1(zero,r.1)

lambda ::= assign fullword dsp.1 r.1 r.2
 st r.2,dsp.1(zero,r.1)

lambda ::= assign r.1 r.2 lng.1
 IBM_length lng.1
 mvc zero(lng.1,r.1),zero(r.2)
`

func parse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.cogg", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseSections(t *testing.T) {
	f := parse(t, tiny)
	if len(f.Nonterminals) != 2 || f.Nonterminals[0].Name != "r" {
		t.Errorf("nonterminals: %+v", f.Nonterminals)
	}
	if f.Nonterminals[0].Alias == "" || !strings.Contains(f.Nonterminals[0].Alias, "register") {
		t.Errorf("alias lost: %+v", f.Nonterminals[0])
	}
	if len(f.Terminals) != 2 || len(f.Operators) != 3 || len(f.Opcodes) != 4 {
		t.Errorf("section sizes: %d %d %d", len(f.Terminals), len(f.Operators), len(f.Opcodes))
	}
	if len(f.Constants) != 6 {
		t.Errorf("constants: %+v", f.Constants)
	}
}

func TestNumericConstants(t *testing.T) {
	f := parse(t, tiny)
	byName := map[string]Decl{}
	for _, d := range f.Constants {
		byName[d.Name] = d
	}
	if d := byName["stack_base"]; !d.HasValue || d.Value != 13 {
		t.Errorf("stack_base = %+v", d)
	}
	if d := byName["using"]; d.HasValue {
		t.Errorf("semantic opcode using has a value: %+v", d)
	}
}

func TestDescriptionWithCommas(t *testing.T) {
	f := parse(t, `
$Non-terminals
 dbl = double_register   Even/odd pair for multiply, divide, MVCL.
$Terminals
 dsp = displacement
$Operators
 iadd
$Opcodes
 ar
$Constants
 modifies
$Productions
dbl.1 ::= iadd dbl.1 dsp.2
 modifies dbl.1
 ar dbl.1,dbl.1
`)
	if len(f.Nonterminals) != 1 {
		t.Fatalf("description with commas split the declaration: %+v", f.Nonterminals)
	}
	if !strings.Contains(f.Nonterminals[0].Alias, "MVCL") {
		t.Errorf("alias truncated: %q", f.Nonterminals[0].Alias)
	}
}

func TestProductions(t *testing.T) {
	f := parse(t, tiny)
	if len(f.Productions) != 4 {
		t.Fatalf("got %d productions", len(f.Productions))
	}
	p := f.Productions[1]
	if p.Num != 2 || p.LHS.Name != "r" || p.LHS.Tag != 2 {
		t.Errorf("production 2 header: %+v", p)
	}
	wantRHS := []string{"iadd", "r.2", "fullword", "dsp.1", "r.1"}
	if len(p.RHS) != len(wantRHS) {
		t.Fatalf("RHS: %v", p.RHS)
	}
	for i, w := range wantRHS {
		if p.RHS[i].String() != w {
			t.Errorf("RHS[%d] = %s, want %s", i, p.RHS[i], w)
		}
	}
	if len(p.Templates) != 2 || p.Templates[0].Op != "modifies" || p.Templates[1].Op != "a" {
		t.Errorf("templates: %+v", p.Templates)
	}
}

func TestLambdaProduction(t *testing.T) {
	f := parse(t, tiny)
	p := f.Productions[2]
	if !p.Lambda() {
		t.Errorf("production 3 should be lambda: %+v", p.LHS)
	}
}

func TestOperandShapes(t *testing.T) {
	f := parse(t, tiny)
	// l r.2,dsp.1(zero,r.1)
	tmpl := f.Productions[0].Templates[1]
	if len(tmpl.Operands) != 2 {
		t.Fatalf("operands: %+v", tmpl.Operands)
	}
	if tmpl.Operands[0].String() != "r.2" {
		t.Errorf("operand 0 = %s", tmpl.Operands[0])
	}
	if tmpl.Operands[1].String() != "dsp.1(zero,r.1)" {
		t.Errorf("operand 1 = %s", tmpl.Operands[1])
	}
	// mvc zero(lng.1,r.1),zero(r.2): SS length form
	mvc := f.Productions[3].Templates[1]
	if mvc.Operands[0].String() != "zero(lng.1,r.1)" || mvc.Operands[1].String() != "zero(r.2)" {
		t.Errorf("mvc operands: %v", mvc.Operands)
	}
}

func TestTrailingComments(t *testing.T) {
	f := parse(t, tiny)
	tmpl := f.Productions[0].Templates[1]
	if tmpl.Comment != "Load fullword." {
		t.Errorf("comment = %q", tmpl.Comment)
	}
}

func TestTemplateCount(t *testing.T) {
	if got := parse(t, tiny).TemplateCount(); got != 7 {
		t.Errorf("TemplateCount = %d, want 7", got)
	}
}

func TestZeroTemplateProduction(t *testing.T) {
	f := parse(t, `
$Non-terminals
 r = register
$Terminals
 dsp = displacement
$Operators
 s_d_cnvrt
$Opcodes
 lr
$Constants
 using
$Productions
r.1 ::= s_d_cnvrt r.1
`)
	if len(f.Productions) != 1 || len(f.Productions[0].Templates) != 0 {
		t.Errorf("zero-template production: %+v", f.Productions)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"text before section": "r = register\n$Productions\n",
		"unknown section":     "$Bogus\n",
		"duplicate symbol": `
$Operators
 iadd, iadd
$Productions
`,
		"missing ::=": `
$Non-terminals
 r = x
$Operators
 iadd
$Productions
r.1 iadd r.1
`,
		"empty right side": `
$Non-terminals
 r = x
$Operators
 iadd
$Productions
r.1 ::=
 nothing
`,
		"template outside production": `
$Non-terminals
 r = x
$Productions
 l r.2,0(r.1)
`,
		"bad identifier": `
$Operators
 9lives
$Productions
`,
		"no productions": `
$Operators
 iadd
`,
	}
	for name, src := range cases {
		if _, err := Parse("bad.cogg", src); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestErrorCarriesPosition(t *testing.T) {
	_, err := Parse("pos.cogg", "$Operators\n iadd\n$Productions\nbroken line here\n")
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.File != "pos.cogg" || se.Line != 4 {
		t.Errorf("position = %s:%d", se.File, se.Line)
	}
	if !strings.Contains(err.Error(), "pos.cogg:4") {
		t.Errorf("message = %q", err.Error())
	}
}

func TestOptionsSectionIgnored(t *testing.T) {
	f := parse(t, "$options\n whatever junk, even = signs\n"+tiny)
	if len(f.Productions) != 4 {
		t.Errorf("options section disturbed parsing: %d productions", len(f.Productions))
	}
}

func TestOperandVersusComment(t *testing.T) {
	// "Push" is not a declared name, so the second field is a comment.
	f := parse(t, `
$Non-terminals
 r = register
$Terminals
 dsp = displacement
$Operators
 iadd
$Opcodes
 ar
$Constants
 ignore_lhs
$Productions
r.1 ::= iadd r.1 r.2
 ar r.1,r.2
 ignore_lhs Push odd register onto stack.
`)
	tmpl := f.Productions[0].Templates[1]
	if len(tmpl.Operands) != 0 {
		t.Errorf("comment parsed as operands: %+v", tmpl.Operands)
	}
	if !strings.Contains(tmpl.Comment, "Push odd register") {
		t.Errorf("comment = %q", tmpl.Comment)
	}
}
