package spec

import (
	"strconv"
	"strings"
)

// MaxInstructions is the maximum number of machine instructions one
// production may emit ("currently up to eight machine instructions may be
// emitted during a single reduction", paper section 2). Semantic operator
// lines do not count against it; MaxTemplates bounds the total lines.
const (
	MaxInstructions = 8
	MaxTemplates    = 16
)

// Parse reads a specification from source text. name is used in
// diagnostics.
func Parse(name, src string) (*File, error) {
	p := &parser{
		file:     &File{Name: name},
		name:     name,
		declared: map[string]bool{"lambda": true},
	}
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		if err := p.line(i+1, raw); err != nil {
			return nil, err
		}
	}
	if err := p.finishProduction(); err != nil {
		return nil, err
	}
	if len(p.file.Productions) == 0 {
		return nil, errf(name, 0, "specification declares no productions")
	}
	return p.file, nil
}

type parser struct {
	file     *File
	name     string
	section  string
	declared map[string]bool // every declared identifier, for operand recognition
	cur      *Production     // production being assembled, if any
}

func (p *parser) line(n int, raw string) error {
	line := strings.TrimRight(raw, " \t\r")
	trimmed := strings.TrimSpace(line)
	if trimmed == "" || strings.HasPrefix(trimmed, "*") {
		return nil
	}
	if strings.HasPrefix(trimmed, "$") {
		return p.sectionHeader(n, trimmed)
	}
	switch p.section {
	case "":
		return errf(p.name, n, "text before first $ section header: %q", trimmed)
	case "options":
		return nil // option lines are accepted and ignored
	case "productions":
		return p.productionLine(n, line)
	default:
		return p.declLine(n, trimmed)
	}
}

func (p *parser) sectionHeader(n int, trimmed string) error {
	name := strings.ToLower(strings.TrimPrefix(trimmed, "$"))
	name = strings.ReplaceAll(name, "-", "")
	switch name {
	case "options":
		p.section = "options"
	case "nonterminals", "terminals", "operators", "opcodes", "constants":
		p.section = name
	case "productions":
		p.section = "productions"
	default:
		return errf(p.name, n, "unknown section header %q", trimmed)
	}
	return nil
}

// declLine parses one line of a declaration section. Two forms exist:
// a single declaration with a descriptive alias ("dbl = double_register
// Even/odd pair for multiply, divide, MVCL."), which owns the whole line
// including any punctuation in its description; and a comma- or
// semicolon-separated list of plain or numeric declarations
// ("zero = 0, one = 1" or "spm, balr, bctr").
func (p *parser) declLine(n int, line string) error {
	if name, rest, ok := strings.Cut(line, "="); ok {
		name = strings.TrimSpace(name)
		first, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
		first = strings.TrimRight(first, ",;")
		if _, err := strconv.ParseInt(first, 10, 64); err != nil && isIdent(name) {
			d, err := p.parseDecl(n, line)
			if err != nil {
				return err
			}
			return p.enterDecl(n, d)
		}
	}
	items := strings.FieldsFunc(line, func(r rune) bool { return r == ',' || r == ';' })
	for _, item := range items {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		d, err := p.parseDecl(n, item)
		if err != nil {
			return err
		}
		if err := p.enterDecl(n, d); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) enterDecl(n int, d Decl) error {
	if p.declared[d.Name] {
		return errf(p.name, n, "symbol %q declared more than once", d.Name)
	}
	p.declared[d.Name] = true
	switch p.section {
	case "nonterminals":
		p.file.Nonterminals = append(p.file.Nonterminals, d)
	case "terminals":
		p.file.Terminals = append(p.file.Terminals, d)
	case "operators":
		p.file.Operators = append(p.file.Operators, d)
	case "opcodes":
		p.file.Opcodes = append(p.file.Opcodes, d)
	case "constants":
		p.file.Constants = append(p.file.Constants, d)
	}
	return nil
}

func (p *parser) parseDecl(n int, item string) (Decl, error) {
	d := Decl{Line: n}
	name, rest, hasEq := strings.Cut(item, "=")
	d.Name = strings.TrimSpace(name)
	if !isIdent(d.Name) {
		return d, errf(p.name, n, "invalid identifier %q", d.Name)
	}
	if hasEq {
		rest = strings.TrimSpace(rest)
		first, _, _ := strings.Cut(rest, " ")
		if v, err := strconv.ParseInt(first, 10, 64); err == nil {
			d.HasValue = true
			d.Value = v
		} else {
			d.Alias = rest
		}
	}
	return d, nil
}

// productionLine handles one line of the production section. Production
// lines begin in column one; template lines are indented.
func (p *parser) productionLine(n int, line string) error {
	indented := line[0] == ' ' || line[0] == '\t'
	if !indented {
		if err := p.finishProduction(); err != nil {
			return err
		}
		return p.startProduction(n, line)
	}
	if p.cur == nil {
		return errf(p.name, n, "template line outside a production")
	}
	return p.templateLine(n, strings.TrimSpace(line))
}

func (p *parser) finishProduction() error {
	if p.cur == nil {
		return nil
	}
	if len(p.cur.Templates) > MaxTemplates {
		return errf(p.name, p.cur.Line,
			"production %d has %d templates; at most %d machine instructions may be emitted per reduction",
			p.cur.Num, len(p.cur.Templates), MaxTemplates)
	}
	p.file.Productions = append(p.file.Productions, *p.cur)
	p.cur = nil
	return nil
}

func (p *parser) startProduction(n int, line string) error {
	lhsText, rhsText, ok := strings.Cut(line, "::=")
	if !ok {
		return errf(p.name, n, "production line missing '::=': %q", strings.TrimSpace(line))
	}
	lhs, err := p.parseSymRef(n, strings.TrimSpace(lhsText))
	if err != nil {
		return err
	}
	prod := &Production{Num: len(p.file.Productions) + 1, Line: n, LHS: lhs}
	for _, f := range strings.Fields(rhsText) {
		ref, err := p.parseSymRef(n, f)
		if err != nil {
			return err
		}
		prod.RHS = append(prod.RHS, ref)
	}
	if len(prod.RHS) == 0 {
		return errf(p.name, n, "production %s has an empty right side", lhs)
	}
	p.cur = prod
	return nil
}

func (p *parser) parseSymRef(n int, text string) (SymRef, error) {
	name, tagText, hasDot := strings.Cut(text, ".")
	if !isIdent(name) {
		return SymRef{}, errf(p.name, n, "invalid symbol reference %q", text)
	}
	ref := SymRef{Name: name}
	if hasDot {
		tag, err := strconv.Atoi(tagText)
		if err != nil || tag < 0 {
			return SymRef{}, errf(p.name, n, "invalid tag in symbol reference %q", text)
		}
		ref.Tag = tag
		ref.HasTag = true
	}
	return ref, nil
}

// templateLine parses "op [operands] [comment...]". The operand field is a
// single whitespace-free token; it is distinguished from a trailing comment
// by checking that every atom names a declared symbol or is numeric.
func (p *parser) templateLine(n int, line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	t := Template{Line: n, Op: fields[0]}
	if !isIdent(t.Op) {
		return errf(p.name, n, "invalid template opcode %q", t.Op)
	}
	rest := fields[1:]
	if len(rest) > 0 {
		if ops, ok := p.tryOperands(rest[0]); ok {
			t.Operands = ops
			rest = rest[1:]
		}
	}
	if len(rest) > 0 {
		t.Comment = strings.Join(rest, " ")
	}
	p.cur.Templates = append(p.cur.Templates, t)
	return nil
}

// tryOperands attempts to parse text as a comma-separated operand list in
// which every named atom is declared. On failure the text is a comment.
func (p *parser) tryOperands(text string) ([]Operand, bool) {
	var ops []Operand
	for len(text) > 0 {
		op, rest, ok := p.parseOperand(text)
		if !ok {
			return nil, false
		}
		ops = append(ops, op)
		if rest == "" {
			break
		}
		if rest[0] != ',' {
			return nil, false
		}
		text = rest[1:]
	}
	return ops, len(ops) > 0
}

func (p *parser) parseOperand(text string) (Operand, string, bool) {
	var op Operand
	var ok bool
	op.Base, text, ok = p.parseAtom(text)
	if !ok {
		return op, "", false
	}
	if len(text) > 0 && text[0] == '(' {
		text = text[1:]
		for {
			var a Atom
			a, text, ok = p.parseAtom(text)
			if !ok || len(text) == 0 {
				return op, "", false
			}
			op.Sub = append(op.Sub, a)
			if text[0] == ',' {
				text = text[1:]
				continue
			}
			if text[0] == ')' {
				text = text[1:]
				break
			}
			return op, "", false
		}
		if len(op.Sub) > 2 {
			return op, "", false
		}
	}
	return op, text, true
}

func (p *parser) parseAtom(text string) (Atom, string, bool) {
	i := 0
	for i < len(text) && isAtomChar(text[i]) {
		i++
	}
	if i == 0 {
		return Atom{}, "", false
	}
	word, rest := text[:i], text[i:]
	if v, err := strconv.ParseInt(word, 10, 64); err == nil {
		return Atom{Kind: AtomNum, Num: v}, rest, true
	}
	name, tagText, hasDot := strings.Cut(word, ".")
	if !p.declared[name] {
		return Atom{}, "", false
	}
	if hasDot {
		tag, err := strconv.Atoi(tagText)
		if err != nil {
			return Atom{}, "", false
		}
		return Atom{Kind: AtomRef, Name: name, Tag: tag}, rest, true
	}
	return Atom{Kind: AtomName, Name: name}, rest, true
}

func isAtomChar(c byte) bool {
	return c == '_' || c == '.' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	if c := s[0]; !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}
