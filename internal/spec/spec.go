// Package spec implements the CoGG code generator specification language.
//
// A specification has a declaration section and a production section
// (paper section 2). The declaration section is divided into five
// subsections, each introduced by a '$' header and declaring a different
// class of symbol:
//
//	$Non-terminals   register classes managed by the register allocator
//	$Terminals       identifiers whose values are set by the shaper
//	$Operators       symbols found only in productions (IF operators)
//	$Opcodes         mnemonics of the target machine instructions
//	$Constants       numeric constants and semantic operators
//
// The production section ($Productions) specifies the syntax directed
// translation scheme: each production is a line in column one
//
//	lhs ::= sym sym ... sym
//
// followed by up to eight template lines, each indented (templates must
// skip column one), naming either a target opcode or a semantic operator
// plus its operands:
//
//	r.2 ::= fullword dsp.1 r.1
//	 using r.2
//	 l    r.2,dsp.1(zero,r.1)
//
// Lines beginning with '*' are comments; blank lines are ignored.
package spec

import "fmt"

// File is the parsed form of one specification.
type File struct {
	Name string // source name, for diagnostics

	Nonterminals []Decl
	Terminals    []Decl
	Operators    []Decl
	Opcodes      []Decl
	Constants    []Decl

	Productions []Production
}

// Decl is one declared identifier. Constants may carry a numeric value
// ("stack_base = 13"); declarations in other sections may carry a
// descriptive alias after '=' which is recorded but has no semantic
// meaning ("r = register").
type Decl struct {
	Name     string
	HasValue bool
	Value    int64
	Alias    string
	Line     int
}

// SymRef is an occurrence of a declared symbol in a production, with an
// optional numeric tag ("r.2"). Tags link symbol occurrences in the
// production to operand references in its templates. For the `need`
// semantic operator the tag denotes a specific physical register.
type SymRef struct {
	Name   string
	Tag    int
	HasTag bool
}

func (s SymRef) String() string {
	if s.HasTag {
		return fmt.Sprintf("%s.%d", s.Name, s.Tag)
	}
	return s.Name
}

// Production is one SDTS production with its translation templates.
type Production struct {
	Num       int // 1-based index in declaration order
	Line      int
	LHS       SymRef // Name "lambda" for an empty left side
	RHS       []SymRef
	Templates []Template
}

// Lambda reports whether the production has an empty left side.
func (p *Production) Lambda() bool { return p.LHS.Name == "lambda" }

// Template is one translation template line: a machine instruction to be
// emitted, or a semantic operator interpreted by the code emission routine.
type Template struct {
	Line     int
	Op       string
	Operands []Operand
	Comment  string
}

// AtomKind discriminates the three forms a template operand atom may take.
type AtomKind int

const (
	AtomRef  AtomKind = iota // tagged symbol reference: dsp.1
	AtomName                 // bare declared name: zero, stack_base
	AtomNum                  // integer literal: 32
)

// Atom is a primary operand element.
type Atom struct {
	Kind AtomKind
	Name string
	Tag  int
	Num  int64
}

func (a Atom) String() string {
	switch a.Kind {
	case AtomRef:
		return fmt.Sprintf("%s.%d", a.Name, a.Tag)
	case AtomName:
		return a.Name
	default:
		return fmt.Sprint(a.Num)
	}
}

// Operand is one comma-separated operand of a template: an atom optionally
// followed by one or two parenthesised atoms, covering every S/370 operand
// shape the specification language needs:
//
//	r.2                register
//	dsp.1(r.3,r.1)     displacement(index,base)
//	zero(lng.1,r.1)    displacement(length,base) for SS instructions
//	entry_code(pr_base)
type Operand struct {
	Base Atom
	Sub  []Atom // nil, or 1-2 parenthesised atoms
}

func (o Operand) String() string {
	s := o.Base.String()
	if len(o.Sub) > 0 {
		s += "("
		for i, a := range o.Sub {
			if i > 0 {
				s += ","
			}
			s += a.String()
		}
		s += ")"
	}
	return s
}

// Error is a specification diagnostic with position information.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
	}
	return fmt.Sprintf("%s: %s", e.File, e.Msg)
}

func errf(file string, line int, format string, args ...any) error {
	return &Error{File: file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// AllDecls returns the declarations of all five sections in order.
func (f *File) AllDecls() []Decl {
	out := make([]Decl, 0,
		len(f.Nonterminals)+len(f.Terminals)+len(f.Operators)+len(f.Opcodes)+len(f.Constants))
	out = append(out, f.Nonterminals...)
	out = append(out, f.Terminals...)
	out = append(out, f.Operators...)
	out = append(out, f.Opcodes...)
	out = append(out, f.Constants...)
	return out
}

// TemplateCount returns the total number of template lines across all
// productions (entry vii of the paper's Table 1).
func (f *File) TemplateCount() int {
	n := 0
	for _, p := range f.Productions {
		n += len(p.Templates)
	}
	return n
}
