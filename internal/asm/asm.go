// Package asm defines the machine-neutral instruction container that the
// generated code generator emits into, and the Machine interface each
// target implements. Retargeting the code generator "merely requires a
// rewriting of the templates associated with productions and minor
// modifications of the routines which actually emit the machine
// instructions" (paper section 6); those routines are the Machine.
package asm

import (
	"fmt"
	"sort"
	"strings"
)

// OpdKind classifies instruction operands.
type OpdKind uint8

const (
	Reg     OpdKind = iota // register
	Imm                    // immediate: mask, shift count, SI byte
	Mem                    // disp(index,base)
	MemLen                 // disp(length,base), SS form
	LabelOp                // label reference (pseudo instructions only)
)

// Operand is one fully resolved instruction operand. Register numbers and
// displacements are final; only label references remain symbolic until
// layout.
type Operand struct {
	Kind  OpdKind
	Reg   int
	Val   int64 // immediate, displacement, or label id
	Index int
	Base  int
	Len   int64
}

// R makes a register operand.
func R(n int) Operand { return Operand{Kind: Reg, Reg: n} }

// I makes an immediate operand.
func I(v int64) Operand { return Operand{Kind: Imm, Val: v} }

// M makes a disp(index,base) memory operand.
func M(disp int64, index, base int) Operand {
	return Operand{Kind: Mem, Val: disp, Index: index, Base: base}
}

// ML makes a disp(length,base) memory operand for SS instructions.
func ML(disp, length int64, base int) Operand {
	return Operand{Kind: MemLen, Val: disp, Len: length, Base: base}
}

// L makes a label-reference operand.
func L(label int64) Operand { return Operand{Kind: LabelOp, Val: label} }

// PseudoKind marks instructions that the target rewrites at layout time.
type PseudoKind uint8

const (
	None      PseudoKind = iota
	Branch               // conditional branch to a label (span dependent)
	CaseLoad             // branch-table dispatch: load table entry, branch
	AddrConst            // 4-byte in-code address constant (label_pntr)
	LabelMark            // zero-size marker defining a label position
)

// Instr is one emitted instruction or pseudo instruction.
type Instr struct {
	Op      string
	Opds    []Operand
	Comment string
	Stmt    int // source statement number, from stmt_record

	Pseudo  PseudoKind
	Cond    int64 // Branch: condition mask
	Label   int64 // Branch/AddrConst/LabelMark/CaseLoad: label id
	Scratch int   // Branch/CaseLoad: register for the long form
	IndexR  int   // CaseLoad: index register
	Long    bool  // Branch: long form selected by relaxation
	PoolIx  int   // literal pool slot for the long form; -1 if none

	Addr int // byte address, assigned by Layout
	Size int // bytes, assigned by Layout
}

// PoolEntry is one literal-pool word (an address constant).
type PoolEntry struct {
	Label   int64 // label whose address the entry holds, when IsLabel
	IsLabel bool
	Value   int64 // explicit value otherwise
}

// Program is the code buffer for one compilation unit plus its literal
// pool and the label dictionary entries gathered while parsing the IF.
type Program struct {
	Name   string
	Instrs []Instr

	// Labels maps a label id to the index of the instruction it precedes
	// (len(Instrs) labels the end). Negative ids are generator-internal.
	Labels map[int64]int

	Pool []PoolEntry

	Origin     int // load address of the code
	PoolOrigin int // load address of the literal pool
	CodeSize   int // bytes, assigned by Layout

	// AbortSites records `abort` semantic operator interpretations:
	// instruction index -> abort code.
	AbortSites map[int]int64
	// CallArgs records `list_request` interpretations: instruction
	// index -> argument count.
	CallArgs map[int]int64
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{
		Name:       name,
		Labels:     make(map[int64]int),
		AbortSites: make(map[int]int64),
		CallArgs:   make(map[int]int64),
	}
}

// Reset empties the program for a new compilation unit, keeping the
// instruction and pool buffers (and map storage) for reuse.
func (p *Program) Reset(name string) {
	p.Name = name
	p.Instrs = p.Instrs[:0]
	clear(p.Labels)
	p.Pool = p.Pool[:0]
	p.Origin = 0
	p.PoolOrigin = 0
	p.CodeSize = 0
	clear(p.AbortSites)
	clear(p.CallArgs)
}

// Append adds an instruction and returns its index.
func (p *Program) Append(in Instr) int {
	in.PoolIx = -1
	p.Instrs = append(p.Instrs, in)
	return len(p.Instrs) - 1
}

// DefineLabel records that label id labels the position before
// instruction index instr.
func (p *Program) DefineLabel(id int64, instr int) error {
	if old, dup := p.Labels[id]; dup && old != instr {
		return fmt.Errorf("asm: label %d defined at both instruction %d and %d", id, old, instr)
	}
	p.Labels[id] = instr
	return nil
}

// LabelAddr returns the byte address of a label after Layout.
func (p *Program) LabelAddr(id int64) (int, error) {
	ix, ok := p.Labels[id]
	if !ok {
		return 0, fmt.Errorf("asm: undefined label %d", id)
	}
	if ix == len(p.Instrs) {
		return p.Origin + p.CodeSize, nil
	}
	return p.Instrs[ix].Addr, nil
}

// AddPoolLabel allocates (or reuses) a pool slot holding the address of
// label id and returns its index.
func (p *Program) AddPoolLabel(id int64) int {
	for i, e := range p.Pool {
		if e.IsLabel && e.Label == id {
			return i
		}
	}
	p.Pool = append(p.Pool, PoolEntry{Label: id, IsLabel: true})
	return len(p.Pool) - 1
}

// PoolAddr returns the byte address of pool slot i.
func (p *Program) PoolAddr(i int) int { return p.PoolOrigin + 4*i }

// InstructionCount returns the number of real machine instructions
// (pseudo markers and address constants excluded), the unit of the
// Appendix 1 comparisons.
func (p *Program) InstructionCount() int {
	n := 0
	for i := range p.Instrs {
		switch p.Instrs[i].Pseudo {
		case LabelMark, AddrConst:
		case Branch:
			n++
			if p.Instrs[i].Long {
				n++ // load of the target address from the pool
			}
		case CaseLoad:
			n += 4
		default:
			n++
		}
	}
	return n
}

// Machine is implemented by each target architecture.
type Machine interface {
	// Name returns the target name ("s370", "risc32").
	Name() string
	// SizeOf returns the byte size of an instruction in its current form
	// (pseudo branches report their short or long form per in.Long).
	SizeOf(in *Instr) (int, error)
	// ShortBranchReach reports whether a branch at the given address can
	// reach target in its short form.
	ShortBranchReach(p *Program, branchAddr, target int) bool
	// Encode produces the final bytes of one laid-out instruction.
	// Pseudo instructions expand to their full sequences.
	Encode(p *Program, in *Instr) ([]byte, error)
	// Format renders one instruction in the target assembly syntax.
	Format(in *Instr) string
}

// Listing renders the program as a human-readable assembly listing.
func Listing(p *Program, m Machine) string {
	labelAt := map[int][]int64{}
	for id, ix := range p.Labels {
		if id >= 0 {
			labelAt[ix] = append(labelAt[ix], id)
		}
	}
	// Labels sharing an instruction print in id order; map iteration
	// order must not leak into the listing (it is diffed byte-for-byte
	// across runs and processes).
	for _, ids := range labelAt {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	var b strings.Builder
	fmt.Fprintf(&b, "* %s  (%s, origin %#x)\n", p.Name, m.Name(), p.Origin)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		for _, id := range labelAt[i] {
			fmt.Fprintf(&b, "L%d:\n", id)
		}
		if in.Pseudo == LabelMark {
			continue
		}
		text := m.Format(in)
		if in.Comment != "" {
			fmt.Fprintf(&b, "%08x  %-36s %s\n", in.Addr, text, in.Comment)
		} else {
			fmt.Fprintf(&b, "%08x  %s\n", in.Addr, text)
		}
	}
	for _, id := range labelAt[len(p.Instrs)] {
		fmt.Fprintf(&b, "L%d:\n", id)
	}
	return b.String()
}
