package asm_test

import (
	"strings"
	"testing"

	"cogg/internal/asm"
	"cogg/internal/s370"
)

func TestOperandConstructors(t *testing.T) {
	if r := asm.R(5); r.Kind != asm.Reg || r.Reg != 5 {
		t.Errorf("R: %+v", r)
	}
	if i := asm.I(42); i.Kind != asm.Imm || i.Val != 42 {
		t.Errorf("I: %+v", i)
	}
	if m := asm.M(100, 3, 13); m.Kind != asm.Mem || m.Val != 100 || m.Index != 3 || m.Base != 13 {
		t.Errorf("M: %+v", m)
	}
	if ml := asm.ML(8, 7, 13); ml.Kind != asm.MemLen || ml.Len != 7 {
		t.Errorf("ML: %+v", ml)
	}
	if l := asm.L(9); l.Kind != asm.LabelOp || l.Val != 9 {
		t.Errorf("L: %+v", l)
	}
}

func TestProgramPool(t *testing.T) {
	p := asm.NewProgram("T")
	p.PoolOrigin = 0x8800
	a := p.AddPoolLabel(4)
	b := p.AddPoolLabel(7)
	c := p.AddPoolLabel(4)
	if a != c || a == b {
		t.Errorf("pool slots: %d %d %d", a, b, c)
	}
	if p.PoolAddr(b) != 0x8804 {
		t.Errorf("PoolAddr = %#x", p.PoolAddr(b))
	}
}

func TestInstructionCount(t *testing.T) {
	p := asm.NewProgram("T")
	p.Append(asm.Instr{Op: "lr"})
	p.Append(asm.Instr{Pseudo: asm.LabelMark, Label: 1})
	p.Append(asm.Instr{Pseudo: asm.AddrConst, Label: 1})
	p.Append(asm.Instr{Pseudo: asm.Branch, Cond: 15, Label: 1})
	p.Append(asm.Instr{Pseudo: asm.Branch, Cond: 15, Label: 1, Long: true})
	p.Append(asm.Instr{Pseudo: asm.CaseLoad, Label: 1})
	// lr(1) + short branch(1) + long branch(2) + caseload(4) = 8.
	if got := p.InstructionCount(); got != 8 {
		t.Errorf("InstructionCount = %d, want 8", got)
	}
}

func TestLabelAddrUndefined(t *testing.T) {
	p := asm.NewProgram("T")
	if _, err := p.LabelAddr(3); err == nil {
		t.Error("undefined label resolved")
	}
}

func TestListing(t *testing.T) {
	m := s370.NewMachine(0x8000)
	p := asm.NewProgram("LIST")
	p.Origin = 0x1000
	p.Append(asm.Instr{Op: "l", Opds: []asm.Operand{asm.R(1), asm.M(100, 0, 13)}, Comment: "load X"})
	_ = p.DefineLabel(7, 1)
	p.Append(asm.Instr{Op: "bcr", Opds: []asm.Operand{asm.I(15), asm.R(14)}})
	p.Instrs[0].Addr = 0x1000
	p.Instrs[1].Addr = 0x1004
	text := asm.Listing(p, m)
	for _, want := range []string{"LIST", "L7:", "load X", "l     r1,100(r13)", "bcr"} {
		if !strings.Contains(text, want) {
			t.Errorf("listing lacks %q:\n%s", want, text)
		}
	}
}
