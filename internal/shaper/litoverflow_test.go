package shaper_test

import (
	"strings"
	"testing"

	"cogg/internal/ir"
	"cogg/internal/pascal"
	"cogg/internal/shaper"
)

// bigLiteralProgram builds a program holding more distinct fullword
// literals than the 1KB pr partition can intern.
func bigLiteralProgram(t *testing.T, n int) *pascal.Program {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("program big;\nvar x: integer;\nbegin\n")
	for i := 0; i < n; i++ {
		sb.WriteString("  x := ")
		sb.WriteString(strconvItoa(200000 + i))
		sb.WriteString(";\n")
	}
	sb.WriteString("end.\n")
	prog, err := pascal.Parse("big.pas", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func strconvItoa(v int) string {
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestLiteralOverflowNeverPanics: literal-partition overflow must reach
// every caller as a returned error — a raw panic may not cross the
// package boundary from any allocation path, including one that
// overflows while a CSE callback is installed.
func TestLiteralOverflowNeverPanics(t *testing.T) {
	prog := bigLiteralProgram(t, 400)
	for _, opt := range []shaper.Options{
		{},
		{CSE: func(stmts []*ir.Node, alloc func(size int64) int64) ([]*ir.Node, error) {
			alloc(4) // callbacks may allocate temporaries mid-overflow
			return stmts, nil
		}},
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Shape panicked: %v", r)
				}
			}()
			_, err := shaper.Shape(prog, opt)
			if err == nil || !strings.Contains(err.Error(), "literal storage") {
				t.Fatalf("Shape = %v, want literal-storage overflow error", err)
			}
		}()
	}
}

// TestLiteralOverflowBoundary: the largest program that fits shapes
// cleanly — the sticky overflow error must not fire early.
func TestLiteralOverflowBoundary(t *testing.T) {
	// The pr partition holds (4096-LitOffset)/4 fullword literals; stay
	// comfortably below while still interning many.
	prog := bigLiteralProgram(t, 100)
	if _, err := shaper.Shape(prog, shaper.Options{}); err != nil {
		t.Fatalf("Shape = %v, want success below the partition", err)
	}
}
