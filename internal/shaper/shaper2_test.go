package shaper_test

import (
	"strings"
	"testing"

	"cogg/internal/pascal"
	"cogg/internal/shaper"
)

func TestRealShapes(t *testing.T) {
	s := shape(t, `
program reals;
var x, y: real;
    sr: single;
begin
  x := 2.5;
  y := -x * 4.0 + abs(x) - x / 2.0;
  sr := 1.5;
  if x < y then x := y
end.
`, shaper.Options{})
	text := ifText(s)
	for _, want := range []string{
		"dblrealword dsp.", // variable loads
		"rneg", "rmult", "radd", "rabs", "rsub",
		"halve",    // x / 2.0
		"rcompare", // the condition
		"realword", // the single-precision store
		"r.12",     // literal loads from the constant area
	} {
		if !strings.Contains(text, want) {
			t.Errorf("real shapes lack %q:\n%s", want, text)
		}
	}
	// 2.5 interned once as a double literal (8 bytes, two words).
	words := 0
	for _, w := range s.PrInit {
		_ = w
		words++
	}
	if words < 4 {
		t.Errorf("expected real literals in PrInit, found %d words", words)
	}
}

func TestRepeatShape(t *testing.T) {
	s := shape(t, `
program rep;
var i: integer;
begin
  i := 3;
  repeat i := i - 1 until i = 0
end.
`, shaper.Options{})
	text := ifText(s)
	// Loop back while the condition is false: branch with the inverted
	// mask (ne = 7) to the top label.
	if !strings.Contains(text, "branch_op lbl.") || !strings.Contains(text, "cond.7") {
		t.Errorf("repeat shape:\n%s", text)
	}
	if !strings.Contains(text, "decr") {
		t.Errorf("i - 1 not shaped as decr:\n%s", text)
	}
}

func TestBooleanValueShapes(t *testing.T) {
	s := shape(t, `
program bools;
var a, b, c: boolean;
    x, y: integer;
begin
  a := true;
  b := a;
  c := a and b;
  a := x < y;
  b := not a;
  c := odd(x)
end.
`, shaper.Options{})
	text := ifText(s)
	for _, want := range []string{
		"pos_constant v.1",     // a := true
		"boolean_and byteword", // direct TM form for var-var and
		"cond.4 icompare",      // comparison materialized via cond->register
		"boolean_not byteword", // not of a variable value
		"cond.7 iodd",          // odd through the condition register
	} {
		if !strings.Contains(text, want) {
			t.Errorf("boolean value shapes lack %q:\n%s", want, text)
		}
	}
}

func TestInOperatorShapes(t *testing.T) {
	s := shape(t, `
program sets;
var s: set of 0..63;
    e, hits: integer;
begin
  if 12 in s then hits := 1;
  if e in s then hits := 2
end.
`, shaper.Options{})
	text := ifText(s)
	// Constant membership: byte displacement 12/8 = 1 into the set, mask
	// 0x80 >> (12%8) = 0x08 = 8.
	if !strings.Contains(text, "test_bit_value byteword dsp.97 r.13 elmnt.8") {
		t.Errorf("constant membership shape:\n%s", text)
	}
	if !strings.Contains(text, "test_bit_value addr dsp.96 r.13") {
		t.Errorf("dynamic membership shape:\n%s", text)
	}
}

func TestForDownto(t *testing.T) {
	s := shape(t, `
program down;
var i, s: integer;
begin
  for i := 5 downto 1 do s := s + i
end.
`, shaper.Options{})
	text := ifText(s)
	if !strings.Contains(text, "cond.4 icompare") { // exit when i < bound
		t.Errorf("downto exit condition:\n%s", text)
	}
	if !strings.Contains(text, "decr") {
		t.Errorf("downto step must decr:\n%s", text)
	}
}

func TestNegativeDisplacementFoldedIntoIndex(t *testing.T) {
	// An array whose lo*size exceeds its offset would need a negative
	// effective displacement; the shaper folds the origin into the index.
	s := shape(t, `
program fold;
var a: array[1000..1010] of integer;
    i, x: integer;
begin
  x := a[i]
end.
`, shaper.Options{})
	text := ifText(s)
	if !strings.Contains(text, "isub") {
		t.Errorf("index not rebased for a large low bound:\n%s", text)
	}
}

func TestLiteralOverflowReported(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("program big;\nvar x: integer;\nbegin\n")
	// More distinct large literals than the 1KB partition holds.
	for i := 0; i < 300; i++ {
		sb.WriteString("  x := ")
		sb.WriteString(itoa(100000 + i))
		sb.WriteString(";\n")
	}
	sb.WriteString("end.\n")
	prog, err := pascal.Parse("big.pas", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	_, err = shaper.Shape(prog, shaper.Options{})
	if err == nil || !strings.Contains(err.Error(), "literal storage") {
		t.Errorf("literal overflow: %v", err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestProcedureLocalsKeyed(t *testing.T) {
	s := shape(t, `
program keys;
var g: integer;
procedure p(a: integer);
var loc: integer;
begin loc := a end;
begin p(1) end.
`, shaper.Options{})
	if _, ok := s.VarOffset["p.a"]; !ok {
		t.Errorf("parameter offset not exported: %v", s.VarOffset)
	}
	if _, ok := s.VarOffset["p.loc"]; !ok {
		t.Errorf("local offset not exported: %v", s.VarOffset)
	}
	if s.VarOffset["p.a"] >= s.VarOffset["p.loc"] {
		t.Error("parameters must precede locals in the frame")
	}
}

func TestFunctionCallHoisting(t *testing.T) {
	s := shape(t, `
program hoist;
var x: integer;
function one: integer;
begin one := 1 end;
begin
  x := one + one
end.
`, shaper.Options{})
	text := ifText(s)
	// Two calls, both before the assignment's arithmetic.
	if c := strings.Count(text, "procedure_call"); c != 2 {
		t.Errorf("hoisted calls: %d, want 2", c)
	}
	assignIx := strings.Index(text, "assign fullword dsp.96")
	lastCall := strings.LastIndex(text, "procedure_call")
	if lastCall > assignIx {
		t.Errorf("call not hoisted before the assignment:\n%s", text)
	}
}
