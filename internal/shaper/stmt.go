package shaper

import (
	"cogg/internal/ir"
	"cogg/internal/pascal"
	"cogg/internal/rt370"
)

// stmtSeq shapes a statement list, flushing hoisted call statements
// before each statement that produced them.
func (s *sh) stmtSeq(stmts []pascal.Stmt) ([]*ir.Node, error) {
	var out []*ir.Node
	for _, st := range stmts {
		shaped, err := s.stmt(st)
		if err != nil {
			return nil, err
		}
		out = append(out, shaped...)
	}
	return out, nil
}

// stmt shapes one statement to a sequence of IF statement trees.
func (s *sh) stmt(st pascal.Stmt) ([]*ir.Node, error) {
	if st == nil {
		return nil, nil
	}
	var out []*ir.Node
	if s.opt.StatementRecords {
		out = append(out, ir.N(ir.OpStatement, ir.V(ir.TermStmt, int64(st.StmtLine()))))
	}
	body, err := s.stmtBody(st)
	if err != nil {
		return nil, err
	}
	return append(out, body...), nil
}

// flushPre prepends any statements hoisted while shaping expressions.
func (s *sh) flushPre(tail ...*ir.Node) []*ir.Node {
	out := append([]*ir.Node{}, s.pre...)
	s.pre = nil
	return append(out, tail...)
}

func (s *sh) stmtBody(st pascal.Stmt) ([]*ir.Node, error) {
	switch t := st.(type) {
	case *pascal.CompoundStmt:
		return s.stmtSeq(t.Stmts)
	case *pascal.AssignStmt:
		return s.assign(t)
	case *pascal.IfStmt:
		return s.ifStmt(t)
	case *pascal.WhileStmt:
		return s.whileStmt(t)
	case *pascal.RepeatStmt:
		return s.repeatStmt(t)
	case *pascal.ForStmt:
		return s.forStmt(t)
	case *pascal.CaseStmt:
		return s.caseStmt(t)
	case *pascal.CallStmt:
		call, err := s.shapeCall(t.Proc, t.Args, t.StmtLine())
		if err != nil {
			return nil, err
		}
		return s.flushPre(call...), nil
	case *pascal.WriteStmt:
		return s.writeStmt(t)
	}
	return nil, s.errf(st.StmtLine(), "unsupported statement %T", st)
}

// assign shapes an assignment statement.
func (s *sh) assign(t *pascal.AssignStmt) ([]*ir.Node, error) {
	lt := t.LHS.Type()

	// Whole-array and whole-set moves.
	if lt.Kind == pascal.TArray || lt.Kind == pascal.TSet {
		if bin, ok := t.RHS.(*pascal.BinExpr); ok && lt.Kind == pascal.TSet {
			return s.setUpdate(t, bin)
		}
		return s.blockAssign(t)
	}

	// Boolean targets: the shape depends on the right side (section 4.5
	// meets the boolean templates).
	if lt.Kind == pascal.TBool {
		return s.boolAssign(t)
	}

	dest, err := s.storageRef(t.LHS)
	if err != nil {
		return nil, err
	}
	var value *ir.Node
	if lt.RealLike() {
		value, err = s.realExpr(t.RHS)
	} else {
		// Literal stores into byte storage truncate exactly as STC
		// would, keeping the direct MVI production in value range.
		if lit, ok := t.RHS.(*pascal.IntLit); ok && lt.Kind == pascal.TByte {
			value = s.constNode(lit.V & 0xFF)
		} else {
			value, err = s.intExpr(t.RHS)
		}
	}
	if err != nil {
		return nil, err
	}
	kids := append(dest, value)
	return s.flushPre(ir.N(ir.OpAssign, kids...)), nil
}

// storageRef shapes the address part of a scalar variable or array
// element: the operand children of assign/load shapes —
// [typeop, (index,) dsp, base].
func (s *sh) storageRef(e pascal.Expr) ([]*ir.Node, error) {
	switch t := e.(type) {
	case *pascal.VarRef:
		op, err := typeOp(t.Sym.Type)
		if err != nil {
			return nil, s.errf(t.Line(), "%v", err)
		}
		return []*ir.Node{
			{Op: op},
			ir.V(ir.TermDsp, t.Sym.Offset),
			s.varBase(t.Sym),
		}, nil
	case *pascal.IndexExpr:
		op, err := typeOp(t.Type())
		if err != nil {
			return nil, s.errf(t.Line(), "%v", err)
		}
		idx, dsp, err := s.indexParts(t)
		if err != nil {
			return nil, err
		}
		return []*ir.Node{
			{Op: op},
			idx,
			ir.V(ir.TermDsp, dsp),
			s.varBase(t.Arr.Sym),
		}, nil
	}
	return nil, s.errf(e.Line(), "expression is not a storage reference")
}

// indexParts shapes an array subscript: the scaled index subtree and the
// effective displacement.
func (s *sh) indexParts(t *pascal.IndexExpr) (*ir.Node, int64, error) {
	arr := t.Arr.Sym.Type
	elem := arr.Elem.Size()
	raw, err := s.intExpr(t.Idx)
	if err != nil {
		return nil, 0, err
	}
	if s.opt.SubscriptChecks {
		raw = ir.N(ir.OpSubscriptCheck, raw,
			ir.N(ir.OpFullword, ir.V(ir.TermDsp, s.literal(int32(arr.Lo))), poolBase()),
			ir.N(ir.OpFullword, ir.V(ir.TermDsp, s.literal(int32(arr.Hi))), poolBase()),
		)
	}
	dsp := t.Arr.Sym.Offset - arr.Lo*elem
	if dsp < 0 || dsp > 4095-arr.Elem.Size() {
		// Fold the origin into the index instead.
		raw = ir.N(ir.OpISub, raw, s.constNode(arr.Lo))
		dsp = t.Arr.Sym.Offset
	}
	var idx *ir.Node
	switch elem {
	case 1:
		idx = raw
	case 2:
		idx = ir.N(ir.OpLShift, raw, ir.V(ir.TermValue, 1))
	case 4:
		idx = ir.N(ir.OpLShift, raw, ir.V(ir.TermValue, 2))
	case 8:
		idx = ir.N(ir.OpLShift, raw, ir.V(ir.TermValue, 3))
	default:
		idx = ir.N(ir.OpIMult, raw, s.constNode(elem))
	}
	return idx, dsp, nil
}

// blockAssign shapes array/set copies with MVC (length known, <= 256) or
// MVCL.
func (s *sh) blockAssign(t *pascal.AssignStmt) ([]*ir.Node, error) {
	src, ok := t.RHS.(*pascal.VarRef)
	if !ok {
		return nil, s.errf(t.StmtLine(), "block assignment requires a whole variable on the right")
	}
	dst, ok := t.LHS.(*pascal.VarRef)
	if !ok {
		return nil, s.errf(t.StmtLine(), "block assignment requires a whole variable on the left")
	}
	size := dst.Sym.Type.Size()
	dstAddr := ir.N(ir.OpAddr, ir.V(ir.TermDsp, dst.Sym.Offset), s.varBase(dst.Sym))
	srcAddr := ir.N(ir.OpAddr, ir.V(ir.TermDsp, src.Sym.Offset), s.varBase(src.Sym))
	if size <= 256 {
		return s.flushPre(ir.N(ir.OpAssign, dstAddr, srcAddr, ir.V(ir.TermLng, size))), nil
	}
	return s.flushPre(ir.N(ir.OpLongAssign, dstAddr, srcAddr, ir.V(ir.TermLng, size))), nil
}

// setUpdate shapes s := s + [e] and s := s - [e].
func (s *sh) setUpdate(t *pascal.AssignStmt, bin *pascal.BinExpr) ([]*ir.Node, error) {
	lhs, ok := t.LHS.(*pascal.VarRef)
	if !ok {
		return nil, s.errf(t.StmtLine(), "set update target must be a set variable")
	}
	base, ok := bin.L.(*pascal.VarRef)
	if !ok || base.Sym != lhs.Sym {
		return nil, s.errf(t.StmtLine(), "set update must have the form s := s + [e] or s := s - [e]")
	}
	lit := bin.R.(*pascal.SetLit)
	if c, ok := lit.Elem.(*pascal.IntLit); ok {
		if c.V < 0 || c.V > 63 {
			return nil, s.errf(t.StmtLine(), "set element %d outside 0..63", c.V)
		}
		byteOff := lhs.Sym.Offset + c.V/8
		mask := int64(0x80 >> (c.V % 8))
		member := []*ir.Node{
			{Op: ir.OpByteword},
			ir.V(ir.TermDsp, byteOff),
			s.varBase(lhs.Sym),
		}
		if bin.Op == "+" {
			return s.flushPre(ir.N(ir.OpSetBit, append(member, ir.V(ir.TermElmnt, mask))...)), nil
		}
		// clear_bit_value carries the complemented mask for NI.
		return s.flushPre(ir.N(ir.OpClearBit, append(member, ir.V(ir.TermElmnt, 0xFF^mask))...)), nil
	}
	elem, err := s.intExpr(lit.Elem)
	if err != nil {
		return nil, err
	}
	op := ir.OpSetBit
	if bin.Op == "-" {
		op = ir.OpClearBit
	}
	return s.flushPre(ir.N(op,
		&ir.Node{Op: ir.OpAddr},
		ir.V(ir.TermDsp, lhs.Sym.Offset),
		s.varBase(lhs.Sym),
		elem,
	)), nil
}

// boolAssign shapes an assignment to a boolean variable, choosing among
// the store-a-register, store-the-condition-code, and direct TM forms.
func (s *sh) boolAssign(t *pascal.AssignStmt) ([]*ir.Node, error) {
	dest, err := s.storageRef(t.LHS)
	if err != nil {
		return nil, err
	}
	switch r := t.RHS.(type) {
	case *pascal.BoolLit:
		v := int64(0)
		if r.V {
			v = 1
		}
		kids := append(dest, ir.N(ir.OpPosConstant, ir.V(ir.TermValue, v)))
		return s.flushPre(ir.N(ir.OpAssign, kids...)), nil
	case *pascal.VarRef:
		// Byte copy.
		kids := append(dest, s.boolLoad(r))
		return s.flushPre(ir.N(ir.OpAssign, kids...)), nil
	case *pascal.BinExpr:
		// Direct boolean_and/boolean_or over two variables produces a
		// condition code the assign-cc production stores.
		if (r.Op == "and" || r.Op == "or") && isBoolVar(r.L) && isBoolVar(r.R) {
			op := ir.OpBoolAnd
			if r.Op == "or" {
				op = ir.OpBoolOr
			}
			lv := r.L.(*pascal.VarRef)
			rv := r.R.(*pascal.VarRef)
			ccTree := ir.N(op,
				&ir.Node{Op: ir.OpByteword}, ir.V(ir.TermDsp, lv.Sym.Offset), s.varBase(lv.Sym),
				&ir.Node{Op: ir.OpByteword}, ir.V(ir.TermDsp, rv.Sym.Offset), s.varBase(rv.Sym),
			)
			kids := append(dest, ccTree)
			return s.flushPre(ir.N(ir.OpAssign, kids...)), nil
		}
	}
	// General boolean expression: materialize 0/1 in a register.
	val, err := s.boolToReg(t.RHS)
	if err != nil {
		return nil, err
	}
	kids := append(dest, val)
	return s.flushPre(ir.N(ir.OpAssign, kids...)), nil
}

func isBoolVar(e pascal.Expr) bool {
	v, ok := e.(*pascal.VarRef)
	return ok && v.Sym.Type.Kind == pascal.TBool
}

// boolLoad shapes a boolean variable as a byte load subtree.
func (s *sh) boolLoad(v *pascal.VarRef) *ir.Node {
	return ir.N(ir.OpByteword, ir.V(ir.TermDsp, v.Sym.Offset), s.varBase(v.Sym))
}

// ifStmt shapes an if statement with short-circuit condition lowering.
func (s *sh) ifStmt(t *pascal.IfStmt) ([]*ir.Node, error) {
	elseLbl := s.newLabel()
	out, err := s.lowerCond(t.Cond, elseLbl, false)
	if err != nil {
		return nil, err
	}
	out = s.flushPre(out...)
	thenStmts, err := s.stmt(t.Then)
	if err != nil {
		return nil, err
	}
	out = append(out, thenStmts...)
	if t.Else != nil {
		endLbl := s.newLabel()
		out = append(out, s.goTo(endLbl), s.defLabel(elseLbl))
		elseStmts, err := s.stmt(t.Else)
		if err != nil {
			return nil, err
		}
		out = append(out, elseStmts...)
		out = append(out, s.defLabel(endLbl))
	} else {
		out = append(out, s.defLabel(elseLbl))
	}
	return out, nil
}

func (s *sh) whileStmt(t *pascal.WhileStmt) ([]*ir.Node, error) {
	top, end := s.newLabel(), s.newLabel()
	out := []*ir.Node{s.defLabel(top)}
	cond, err := s.lowerCond(t.Cond, end, false)
	if err != nil {
		return nil, err
	}
	out = append(out, s.flushPre(cond...)...)
	body, err := s.stmt(t.Body)
	if err != nil {
		return nil, err
	}
	out = append(out, body...)
	return append(out, s.goTo(top), s.defLabel(end)), nil
}

func (s *sh) repeatStmt(t *pascal.RepeatStmt) ([]*ir.Node, error) {
	top := s.newLabel()
	out := []*ir.Node{s.defLabel(top)}
	body, err := s.stmtSeq(t.Body)
	if err != nil {
		return nil, err
	}
	out = append(out, body...)
	cond, err := s.lowerCond(t.Cond, top, false) // loop back while the condition is false
	if err != nil {
		return nil, err
	}
	return append(out, s.flushPre(cond...)...), nil
}

func (s *sh) forStmt(t *pascal.ForStmt) ([]*ir.Node, error) {
	ctrl := &pascal.VarRef{Sym: t.Var}
	ctrlRef, err := s.storageRef(ctrl)
	if err != nil {
		return nil, err
	}
	from, err := s.intExpr(t.From)
	if err != nil {
		return nil, err
	}
	out := s.flushPre(ir.N(ir.OpAssign, append(ctrlRef, from)...))

	top, end := s.newLabel(), s.newLabel()
	out = append(out, s.defLabel(top))

	// Exit when the control variable passes the bound.
	bound, err := s.intExpr(t.To)
	if err != nil {
		return nil, err
	}
	exitMask := int64(2) // branch when control > bound
	if t.Down {
		exitMask = 4 // downto: branch when control < bound
	}
	ctrlLoad := ir.N(ir.OpFullword, ir.V(ir.TermDsp, t.Var.Offset), s.varBase(t.Var))
	out = append(out, s.flushPre(ir.N(ir.OpBranchOp,
		ir.V(ir.TermLbl, end),
		&ir.Node{Op: ir.TermCond, Val: exitMask, Kids: []*ir.Node{ir.N(ir.OpICompare, ctrlLoad, bound)}},
	))...)

	body, err := s.stmt(t.Body)
	if err != nil {
		return nil, err
	}
	out = append(out, body...)

	// Step the control variable with the increment/decrement idioms.
	step := ir.OpIncr
	if t.Down {
		step = ir.OpDecr
	}
	ctrlRef2, _ := s.storageRef(ctrl)
	stepTree := ir.N(step, ir.N(ir.OpFullword, ir.V(ir.TermDsp, t.Var.Offset), s.varBase(t.Var)))
	out = append(out, ir.N(ir.OpAssign, append(ctrlRef2, stepTree)...))
	return append(out, s.goTo(top), s.defLabel(end)), nil
}

// caseStmt shapes a case statement as a branch-table dispatch
// (case_index plus a run of label_index entries).
func (s *sh) caseStmt(t *pascal.CaseStmt) ([]*ir.Node, error) {
	lo, hi := t.Arms[0].Vals[0], t.Arms[0].Vals[0]
	for _, arm := range t.Arms {
		for _, v := range arm.Vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi-lo > 512 {
		return nil, s.errf(t.StmtLine(), "case label range %d..%d is too sparse for a branch table", lo, hi)
	}

	sel, err := s.intExpr(t.Sel)
	if err != nil {
		return nil, err
	}
	if lo != 0 {
		sel = ir.N(ir.OpISub, sel, s.constNode(lo))
	}
	tmp := s.tempWord(4)
	out := s.flushPre(ir.N(ir.OpAssign,
		&ir.Node{Op: ir.OpFullword}, ir.V(ir.TermDsp, tmp), stackBase(), sel))

	elseLbl, endLbl, tblLbl := s.newLabel(), s.newLabel(), s.newLabel()
	tmpLoad := func() *ir.Node {
		return ir.N(ir.OpFullword, ir.V(ir.TermDsp, tmp), stackBase())
	}
	// Guard the table range.
	out = append(out,
		ir.N(ir.OpBranchOp, ir.V(ir.TermLbl, elseLbl),
			&ir.Node{Op: ir.TermCond, Val: 4, Kids: []*ir.Node{
				ir.N(ir.OpICompare, tmpLoad(), ir.N(ir.OpPosConstant, ir.V(ir.TermValue, 0))),
			}}),
		ir.N(ir.OpBranchOp, ir.V(ir.TermLbl, elseLbl),
			&ir.Node{Op: ir.TermCond, Val: 2, Kids: []*ir.Node{
				ir.N(ir.OpICompare, tmpLoad(), s.constNode(hi-lo)),
			}}),
		ir.N(ir.OpCaseIndex, ir.V(ir.TermLbl, tblLbl), tmpLoad()),
	)

	// The branch table itself: one address constant per value in range.
	armLabels := make([]int64, hi-lo+1)
	for i := range armLabels {
		armLabels[i] = elseLbl
	}
	armLbl := make([]int64, len(t.Arms))
	for i, arm := range t.Arms {
		armLbl[i] = s.newLabel()
		for _, v := range arm.Vals {
			armLabels[v-lo] = armLbl[i]
		}
	}
	out = append(out, s.defLabel(tblLbl))
	for _, l := range armLabels {
		out = append(out, ir.N(ir.OpLabelIndex, ir.V(ir.TermLbl, l)))
	}
	for i, arm := range t.Arms {
		out = append(out, s.defLabel(armLbl[i]))
		body, err := s.stmt(arm.Body)
		if err != nil {
			return nil, err
		}
		out = append(out, body...)
		out = append(out, s.goTo(endLbl))
	}
	out = append(out, s.defLabel(elseLbl))
	if t.Else != nil {
		body, err := s.stmt(t.Else)
		if err != nil {
			return nil, err
		}
		out = append(out, body...)
	}
	return append(out, s.defLabel(endLbl)), nil
}

// shapeCall shapes argument transfer plus the call itself. Arguments are
// stored into the callee's frame, which sits at a fixed offset above the
// caller's.
func (s *sh) shapeCall(proc *pascal.Proc, args []pascal.Expr, line int) ([]*ir.Node, error) {
	var out []*ir.Node
	for i, arg := range args {
		param := proc.Params[i]
		op, err := typeOp(param.Type)
		if err != nil {
			return nil, s.errf(line, "%v", err)
		}
		var value *ir.Node
		if param.Type.RealLike() {
			value, err = s.realExpr(arg)
		} else if param.Type.Kind == pascal.TBool {
			value, err = s.boolToReg(arg)
		} else {
			value, err = s.intExpr(arg)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, ir.N(ir.OpAssign,
			&ir.Node{Op: op},
			ir.V(ir.TermDsp, rt370.FrameSize+param.Offset),
			stackBase(),
			value,
		))
	}
	vecOff := int64(rt370.OffProcVector + 4*proc.Index)
	out = append(out, ir.N(ir.OpProcCall,
		ir.V(ir.TermCnt, int64(len(args))),
		&ir.Node{Op: ir.OpFullword},
		ir.V(ir.TermDsp, vecOff),
		poolBase(),
	))
	return out, nil
}

// writeStmt routes each argument through the writeln runtime stub: the
// value transfers in the first callee-frame slot and the call goes
// through the stub's reserved vector entry, exactly like any procedure.
func (s *sh) writeStmt(t *pascal.WriteStmt) ([]*ir.Node, error) {
	var out []*ir.Node
	vecOff := int64(rt370.OffProcVector + 4*rt370.WriteVectorSlot)
	for _, arg := range t.Args {
		value, err := s.intExpr(arg)
		if err != nil {
			return nil, err
		}
		out = append(out,
			ir.N(ir.OpAssign,
				&ir.Node{Op: ir.OpFullword},
				ir.V(ir.TermDsp, rt370.FrameSize+rt370.VarOrigin),
				stackBase(),
				value),
			ir.N(ir.OpProcCall,
				ir.V(ir.TermCnt, 1),
				&ir.Node{Op: ir.OpFullword},
				ir.V(ir.TermDsp, vecOff),
				poolBase()))
	}
	return s.flushPre(out...), nil
}

func (s *sh) defLabel(l int64) *ir.Node {
	return ir.N(ir.OpLabelDef, ir.V(ir.TermLbl, l))
}

func (s *sh) goTo(l int64) *ir.Node {
	return ir.N(ir.OpBranchOp, ir.V(ir.TermLbl, l))
}
