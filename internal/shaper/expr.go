package shaper

import (
	"cogg/internal/ir"
	"cogg/internal/pascal"
	"cogg/internal/rt370"
)

// constNode shapes an integer constant: small values through LA
// (pos_constant/neg_constant), large ones from literal storage.
func (s *sh) constNode(v int64) *ir.Node {
	switch {
	case v >= 0 && v <= 4095:
		return ir.N(ir.OpPosConstant, ir.V(ir.TermValue, v))
	case v < 0 && v >= -4095:
		return ir.N(ir.OpNegConstant, ir.V(ir.TermValue, -v))
	default:
		return ir.N(ir.OpFullword, ir.V(ir.TermDsp, s.literal(int32(v))), poolBase())
	}
}

// intExpr shapes an integer-valued expression into a value subtree.
func (s *sh) intExpr(e pascal.Expr) (*ir.Node, error) {
	switch t := e.(type) {
	case *pascal.IntLit:
		return s.constNode(t.V), nil
	case *pascal.VarRef:
		op, err := typeOp(t.Sym.Type)
		if err != nil {
			return nil, s.errf(t.Line(), "%v", err)
		}
		load := ir.N(op, ir.V(ir.TermDsp, t.Sym.Offset), s.varBase(t.Sym))
		if s.opt.UninitChecks && t.Sym.Type.Kind == pascal.TInt {
			load = ir.N(ir.OpUninitCheck, load,
				ir.N(ir.OpFullword, ir.V(ir.TermDsp, s.literal(UninitPattern)), poolBase()))
		}
		return load, nil
	case *pascal.IndexExpr:
		op, err := typeOp(t.Type())
		if err != nil {
			return nil, s.errf(t.Line(), "%v", err)
		}
		idx, dsp, err := s.indexParts(t)
		if err != nil {
			return nil, err
		}
		return ir.N(op, idx, ir.V(ir.TermDsp, dsp), s.varBase(t.Arr.Sym)), nil
	case *pascal.UnExpr:
		if t.Op != "-" {
			return nil, s.errf(t.Line(), "operator %q in integer context", t.Op)
		}
		k, err := s.intExpr(t.E)
		if err != nil {
			return nil, err
		}
		return ir.N(ir.OpINeg, k), nil
	case *pascal.BuiltinExpr:
		k, err := s.intExpr(t.E)
		if err != nil {
			return nil, err
		}
		switch t.Name {
		case "abs":
			return ir.N(ir.OpIAbs, k), nil
		}
		return nil, s.errf(t.Line(), "builtin %q in integer context", t.Name)
	case *pascal.CallExpr:
		return s.callValue(t)
	case *pascal.BinExpr:
		var op string
		switch t.Op {
		case "+":
			op = ir.OpIAdd
		case "-":
			op = ir.OpISub
		case "*":
			op = ir.OpIMult
		case "div":
			op = ir.OpIDiv
		case "mod":
			op = ir.OpIMod
		default:
			return nil, s.errf(t.Line(), "operator %q in integer context", t.Op)
		}
		// x - 1 and x + 1 use the decrement/increment idioms.
		if c, ok := t.R.(*pascal.IntLit); ok && c.V == 1 {
			l, err := s.intExpr(t.L)
			if err != nil {
				return nil, err
			}
			if t.Op == "-" {
				return ir.N(ir.OpDecr, l), nil
			}
			if t.Op == "+" {
				return ir.N(ir.OpIncr, l), nil
			}
		}
		// Multiplication and division by powers of two become shifts.
		if c, ok := t.R.(*pascal.IntLit); ok && c.V > 1 && c.V&(c.V-1) == 0 && c.V <= 1<<30 {
			if t.Op == "*" || t.Op == "div" {
				l, err := s.intExpr(t.L)
				if err != nil {
					return nil, err
				}
				sh := int64(0)
				for v := c.V; v > 1; v >>= 1 {
					sh++
				}
				op := ir.OpLShift
				if t.Op == "div" {
					op = ir.OpRShift
				}
				return ir.N(op, l, ir.V(ir.TermValue, sh)), nil
			}
		}
		l, err := s.intExpr(t.L)
		if err != nil {
			return nil, err
		}
		r, err := s.intExpr(t.R)
		if err != nil {
			return nil, err
		}
		return ir.N(op, l, r), nil
	}
	if e.Type().Kind == pascal.TBool {
		return s.boolToReg(e)
	}
	return nil, s.errf(e.Line(), "unsupported integer expression %T", e)
}

// realExpr shapes a floating point expression.
func (s *sh) realExpr(e pascal.Expr) (*ir.Node, error) {
	switch t := e.(type) {
	case *pascal.RealLit:
		if e.Type().Kind == pascal.TSingle {
			return ir.N(ir.OpRealword, ir.V(ir.TermDsp, s.singleLiteral(t.V)), poolBase()), nil
		}
		return ir.N(ir.OpDblreal, ir.V(ir.TermDsp, s.realLiteral(t.V)), poolBase()), nil
	case *pascal.IntLit:
		// Integer literal in a real context: shaped as a real literal.
		return ir.N(ir.OpDblreal, ir.V(ir.TermDsp, s.realLiteral(float64(t.V))), poolBase()), nil
	case *pascal.VarRef:
		op, err := typeOp(t.Sym.Type)
		if err != nil {
			return nil, s.errf(t.Line(), "%v", err)
		}
		return ir.N(op, ir.V(ir.TermDsp, t.Sym.Offset), s.varBase(t.Sym)), nil
	case *pascal.IndexExpr:
		op, err := typeOp(t.Type())
		if err != nil {
			return nil, s.errf(t.Line(), "%v", err)
		}
		idx, dsp, err := s.indexParts(t)
		if err != nil {
			return nil, err
		}
		return ir.N(op, idx, ir.V(ir.TermDsp, dsp), s.varBase(t.Arr.Sym)), nil
	case *pascal.UnExpr:
		k, err := s.realExpr(t.E)
		if err != nil {
			return nil, err
		}
		return ir.N(ir.OpRNeg, k), nil
	case *pascal.BuiltinExpr:
		if t.Name == "abs" {
			k, err := s.realExpr(t.E)
			if err != nil {
				return nil, err
			}
			return ir.N(ir.OpRAbs, k), nil
		}
	case *pascal.CallExpr:
		return s.callValue(t)
	case *pascal.BinExpr:
		var op string
		switch t.Op {
		case "+":
			op = ir.OpRAdd
		case "-":
			op = ir.OpRSub
		case "*":
			op = ir.OpRMult
		case "/":
			op = ir.OpRDiv
		default:
			return nil, s.errf(t.Line(), "operator %q in real context", t.Op)
		}
		// x / 2.0 halves in the register.
		if c, ok := t.R.(*pascal.RealLit); ok && t.Op == "/" && c.V == 2.0 {
			l, err := s.realExpr(t.L)
			if err != nil {
				return nil, err
			}
			return ir.N(ir.OpHalve, l), nil
		}
		l, err := s.realExpr(t.L)
		if err != nil {
			return nil, err
		}
		r, err := s.realExpr(t.R)
		if err != nil {
			return nil, err
		}
		return ir.N(op, l, r), nil
	}
	return nil, s.errf(e.Line(), "unsupported real expression %T", e)
}

// callValue hoists a function call to a statement, then copies the
// result out of the callee's (dead but intact) frame into a temporary of
// the caller's frame: a second call in the same expression would reuse
// the callee frame and clobber the slot.
func (s *sh) callValue(t *pascal.CallExpr) (*ir.Node, error) {
	call, err := s.shapeCall(t.Proc, t.Args, t.Line())
	if err != nil {
		return nil, err
	}
	s.pre = append(s.pre, call...)
	res := t.Proc.Result
	op, err := typeOp(res.Type)
	if err != nil {
		return nil, s.errf(t.Line(), "%v", err)
	}
	tmp := s.tempWord(res.Type.Size())
	s.pre = append(s.pre, ir.N(ir.OpAssign,
		&ir.Node{Op: op},
		ir.V(ir.TermDsp, tmp),
		stackBase(),
		ir.N(op, ir.V(ir.TermDsp, rt370.FrameSize+res.Offset), stackBase()),
	))
	return ir.N(op, ir.V(ir.TermDsp, tmp), stackBase()), nil
}

// --- boolean lowering ---------------------------------------------------

// condTree is a condition-code subtree plus the branch mask selecting
// "condition true".
type condTree struct {
	cc       *ir.Node
	trueMask int64
}

// relMask maps a relational operator to the BC mask that selects it
// after a compare.
var relMask = map[string]int64{
	"=": 8, "<>": 7, "<": 4, "<=": 13, ">": 2, ">=": 11,
}

// condForm shapes a boolean expression as a condition-code subtree. It
// handles leaves and `not`; and/or fall back to materialized registers.
func (s *sh) condForm(e pascal.Expr) (condTree, error) {
	switch t := e.(type) {
	case *pascal.BinExpr:
		switch t.Op {
		case "=", "<>", "<", "<=", ">", ">=":
			lt := t.L.Type()
			var l, r *ir.Node
			var err error
			var cmp string
			if lt.RealLike() {
				cmp = ir.OpRCompare
				l, err = s.realExpr(t.L)
				if err != nil {
					return condTree{}, err
				}
				r, err = s.realExpr(t.R)
			} else {
				cmp = ir.OpICompare
				l, err = s.intExpr(t.L)
				if err != nil {
					return condTree{}, err
				}
				r, err = s.intExpr(t.R)
			}
			if err != nil {
				return condTree{}, err
			}
			return condTree{ir.N(cmp, l, r), relMask[t.Op]}, nil
		case "in":
			return s.inForm(t)
		case "and", "or":
			// Materialize both sides and combine with the TM-style
			// boolean templates (value-context and/or; conditions
			// short-circuit in lowerCond before reaching here).
			op := ir.OpBoolAnd
			if t.Op == "or" {
				op = ir.OpBoolOr
			}
			l, err := s.boolToReg(t.L)
			if err != nil {
				return condTree{}, err
			}
			r, err := s.boolToReg(t.R)
			if err != nil {
				return condTree{}, err
			}
			return condTree{ir.N(op, l, r), 7}, nil
		}
	case *pascal.UnExpr:
		if t.Op == "not" {
			inner, err := s.condForm(t.E)
			if err != nil {
				return condTree{}, err
			}
			return condTree{inner.cc, inner.trueMask ^ 15}, nil
		}
	case *pascal.VarRef:
		return condTree{ir.N(ir.OpBoolTest,
			&ir.Node{Op: ir.OpByteword}, ir.V(ir.TermDsp, t.Sym.Offset), s.varBase(t.Sym)), 7}, nil
	case *pascal.IndexExpr:
		v, err := s.intExpr(t)
		if err != nil {
			return condTree{}, err
		}
		return condTree{ir.N(ir.OpBoolTest, v), 7}, nil
	case *pascal.BoolLit:
		// Compare two constants: constant condition. Shape as a register
		// test so the structure stays uniform.
		v, err := s.boolToReg(t)
		if err != nil {
			return condTree{}, err
		}
		return condTree{ir.N(ir.OpBoolTest, v), 7}, nil
	case *pascal.BuiltinExpr:
		if t.Name == "odd" {
			v, err := s.intExpr(t.E)
			if err != nil {
				return condTree{}, err
			}
			return condTree{ir.N(ir.OpIOdd, v), 7}, nil
		}
	case *pascal.CallExpr:
		v, err := s.callValue(t)
		if err != nil {
			return condTree{}, err
		}
		return condTree{ir.N(ir.OpBoolTest, v), 7}, nil
	}
	return condTree{}, s.errf(e.Line(), "unsupported boolean expression %T", e)
}

// inForm shapes set membership: constant elements use the immediate TM
// form; computed elements the dynamic bit-test sequence.
func (s *sh) inForm(t *pascal.BinExpr) (condTree, error) {
	set, ok := t.R.(*pascal.VarRef)
	if !ok {
		return condTree{}, s.errf(t.Line(), "in requires a set variable on the right")
	}
	if c, ok := t.L.(*pascal.IntLit); ok {
		if c.V < 0 || c.V > 63 {
			return condTree{}, s.errf(t.Line(), "set element %d outside 0..63", c.V)
		}
		return condTree{ir.N(ir.OpTestBit,
			&ir.Node{Op: ir.OpByteword},
			ir.V(ir.TermDsp, set.Sym.Offset+c.V/8),
			s.varBase(set.Sym),
			ir.V(ir.TermElmnt, int64(0x80>>(c.V%8))),
		), 7}, nil
	}
	elem, err := s.intExpr(t.L)
	if err != nil {
		return condTree{}, err
	}
	return condTree{ir.N(ir.OpTestBit,
		&ir.Node{Op: ir.OpAddr},
		ir.V(ir.TermDsp, set.Sym.Offset),
		s.varBase(set.Sym),
		elem,
	), 7}, nil
}

// boolToReg materializes a boolean expression as a 0/1 register value
// through the condition-to-register production.
func (s *sh) boolToReg(e pascal.Expr) (*ir.Node, error) {
	switch t := e.(type) {
	case *pascal.BoolLit:
		v := int64(0)
		if t.V {
			v = 1
		}
		return ir.N(ir.OpPosConstant, ir.V(ir.TermValue, v)), nil
	case *pascal.VarRef:
		return s.boolLoad(t), nil
	case *pascal.UnExpr:
		if t.Op == "not" {
			inner, err := s.boolToReg(t.E)
			if err != nil {
				return nil, err
			}
			return ir.N(ir.OpBoolNot, inner), nil
		}
	}
	ct, err := s.condForm(e)
	if err != nil {
		return nil, err
	}
	return &ir.Node{Op: ir.TermCond, Val: ct.trueMask, Kids: []*ir.Node{ct.cc}}, nil
}

// lowerCond emits branches for a condition: jump to target when the
// condition's value equals when. and/or short-circuit.
func (s *sh) lowerCond(e pascal.Expr, target int64, when bool) ([]*ir.Node, error) {
	switch t := e.(type) {
	case *pascal.BinExpr:
		switch t.Op {
		case "and":
			if when {
				skip := s.newLabel()
				first, err := s.lowerCond(t.L, skip, false)
				if err != nil {
					return nil, err
				}
				second, err := s.lowerCond(t.R, target, true)
				if err != nil {
					return nil, err
				}
				return append(append(first, second...), s.defLabel(skip)), nil
			}
			first, err := s.lowerCond(t.L, target, false)
			if err != nil {
				return nil, err
			}
			second, err := s.lowerCond(t.R, target, false)
			if err != nil {
				return nil, err
			}
			return append(first, second...), nil
		case "or":
			if when {
				first, err := s.lowerCond(t.L, target, true)
				if err != nil {
					return nil, err
				}
				second, err := s.lowerCond(t.R, target, true)
				if err != nil {
					return nil, err
				}
				return append(first, second...), nil
			}
			skip := s.newLabel()
			first, err := s.lowerCond(t.L, skip, true)
			if err != nil {
				return nil, err
			}
			second, err := s.lowerCond(t.R, target, false)
			if err != nil {
				return nil, err
			}
			return append(append(first, second...), s.defLabel(skip)), nil
		}
	case *pascal.UnExpr:
		if t.Op == "not" {
			return s.lowerCond(t.E, target, !when)
		}
	case *pascal.BoolLit:
		if t.V == when {
			return []*ir.Node{s.goTo(target)}, nil
		}
		return nil, nil
	}
	ct, err := s.condForm(e)
	if err != nil {
		return nil, err
	}
	mask := ct.trueMask
	if !when {
		mask ^= 15
	}
	return []*ir.Node{ir.N(ir.OpBranchOp,
		ir.V(ir.TermLbl, target),
		&ir.Node{Op: ir.TermCond, Val: mask, Kids: []*ir.Node{ct.cc}},
	)}, nil
}
