// Package shaper implements the shaping routine that stands between the
// front end and the code generator (paper section 1): it resolves
// variable addresses by assigning base registers and displacements, lays
// out stack frames, allocates labels and literal storage, and lowers the
// typed syntax tree into the linearized prefix intermediate form the
// table-driven code generator parses.
//
// The shaper fixes the IF shapes; the code generator specification
// decides how well they translate. Array accesses, for example, are
// shaped with an explicit index subtree (`fullword r.3 dsp.1 r.1`) —
// the full Amdahl grammar folds the index register into one RX
// instruction while the minimal grammar computes the address with
// explicit adds, from the same IF.
package shaper

import (
	"fmt"
	"math"

	"cogg/internal/ir"
	"cogg/internal/pascal"
	"cogg/internal/rt370"
)

// Options control shaping.
type Options struct {
	// SubscriptChecks wraps array subscripts in subscript_check
	// operators comparing against literal bounds.
	SubscriptChecks bool
	// StatementRecords emits a statement operator per source statement.
	StatementRecords bool
	// UninitChecks wraps fullword variable loads in uninit_check
	// operators comparing against the uninitialized storage pattern; the
	// runtime fills fresh data storage with the pattern and a read
	// before the first write aborts (the MTS Pascal check the paper's
	// compiler environment was known for).
	UninitChecks bool
	// CSE, when non-nil, is invoked on every shaped procedure body with
	// a temporary-storage allocator; the IF optimizer (package ifopt)
	// plugs in here.
	CSE func(stmts []*ir.Node, alloc func(size int64) int64) ([]*ir.Node, error)
}

// UninitPattern is the fullword the runtime plants in fresh storage
// when uninitialized-variable checking is on.
const UninitPattern = int32(-0x7E7E7E7F) // 0x81818181

// Shaped is the result of shaping one program.
type Shaped struct {
	Name  string
	Stmts []*ir.Node

	// UninitChecks records that the program was shaped with
	// read-before-write checking; the loader must plant UninitPattern.
	UninitChecks bool

	// VarOffset maps "var" (main) or "proc.var" to the variable's frame
	// displacement.
	VarOffset map[string]int64

	// PrInit holds initialized words of the runtime constant area
	// beyond the fixed part: literal pool values, keyed by pr offset.
	PrInit map[int]uint32

	// ProcLabel maps procedure name to its entry label.
	ProcLabel map[string]int64
	// VectorSlot maps a transfer-vector slot offset (within the pr
	// area) to the procedure entry label whose address belongs there.
	VectorSlot map[int]int64

	// Labels is the number of labels allocated.
	Labels int64
	// FrameBytes maps procedure name to its frame water mark.
	FrameBytes map[string]int64
}

// Linearize produces the prefix token stream for the whole program.
func (s *Shaped) Linearize() []ir.Token {
	var out []ir.Token
	for _, n := range s.Stmts {
		out = n.Linearize(out)
	}
	return out
}

// Shape lowers a checked program.
func Shape(prog *pascal.Program, opt Options) (*Shaped, error) {
	s := &sh{
		opt: opt,
		out: &Shaped{
			Name:       prog.Name,
			VarOffset:  map[string]int64{},
			PrInit:     map[int]uint32{},
			ProcLabel:  map[string]int64{},
			VectorSlot: map[int]int64{},
			FrameBytes: map[string]int64{},
		},
		litOffsets: map[uint64]int{},
		prNext:     rt370.LitOffset,
	}
	s.out.UninitChecks = opt.UninitChecks
	// The last vector slot belongs to the writeln runtime stub.
	s.out.PrInit[rt370.OffProcVector+4*rt370.WriteVectorSlot] =
		uint32(rt370.PrOrigin + rt370.OffWriteStub)
	procs := prog.AllProcs()
	if len(procs) > rt370.ProcVectorCap-1 {
		return nil, fmt.Errorf("shaper: %d procedures exceed the transfer vector capacity %d",
			len(procs), rt370.ProcVectorCap)
	}
	// Assign vector slots and entry labels first so calls can be shaped
	// before their callee's body.
	for i, proc := range procs {
		proc.Index = i
		lbl := s.newLabel()
		s.out.ProcLabel[proc.Name] = lbl
		s.out.VectorSlot[rt370.OffProcVector+4*i] = lbl
	}
	for _, proc := range procs {
		if err := s.layoutFrame(proc); err != nil {
			return nil, err
		}
	}
	for _, proc := range procs {
		if err := s.emitProc(proc); err != nil {
			return nil, err
		}
		if s.litErr != nil {
			return nil, s.litErr
		}
	}
	return s.out, nil
}

type sh struct {
	opt Options
	out *Shaped

	cur      *pascal.Proc
	frameTop int64 // next free frame offset of the current procedure

	labelSeq   int64
	cseSeq     int64
	litOffsets map[uint64]int // literal key -> pr offset
	prNext     int
	litErr     error // sticky literal-partition overflow, checked by Shape

	// pre collects statements hoisted out of expressions (function
	// calls); flushed before the containing statement.
	pre []*ir.Node
}

func (s *sh) newLabel() int64 {
	s.labelSeq++
	s.out.Labels = s.labelSeq
	return s.labelSeq
}

func (s *sh) errf(line int, format string, args ...any) error {
	return fmt.Errorf("shaper: line %d: %s", line, fmt.Sprintf(format, args...))
}

// layoutFrame assigns displacements to parameters, result, and locals.
func (s *sh) layoutFrame(proc *pascal.Proc) error {
	off := int64(rt370.VarOrigin)
	place := func(v *pascal.VarSym) {
		size := v.Type.Size()
		align := int64(4)
		if size >= 8 {
			align = 8
		} else if size < 4 {
			align = size
		}
		off = (off + align - 1) / align * align
		v.Offset = off
		off += size
		key := v.Name
		if !proc.Main {
			key = proc.Name + "." + v.Name
		}
		s.out.VarOffset[key] = v.Offset
	}
	for _, v := range proc.Params {
		place(v)
	}
	for _, v := range proc.Locals {
		if !v.Param {
			place(v)
		}
	}
	if off > rt370.FrameSize-256 {
		return fmt.Errorf("shaper: procedure %q needs %d frame bytes; frames are %d bytes",
			proc.Name, off, rt370.FrameSize)
	}
	s.out.FrameBytes[proc.Name] = off
	return nil
}

// tempWord allocates a hidden temporary in the current frame.
func (s *sh) tempWord(size int64) int64 {
	align := int64(4)
	if size >= 8 {
		align = 8
	}
	s.frameTop = (s.frameTop + align - 1) / align * align
	off := s.frameTop
	s.frameTop += size
	return off
}

// literal interns a fullword literal in the runtime constant area and
// returns its pr displacement. The partition holds 256 literals; the
// base register reaches no further.
func (s *sh) literal(v int32) int64 {
	key := uint64(uint32(v))
	if off, ok := s.litOffsets[key]; ok {
		return int64(off)
	}
	off := s.allocLit(4)
	s.litOffsets[key] = off
	s.out.PrInit[off] = uint32(v)
	return int64(off)
}

// allocLit reserves size bytes of literal storage. Overflowing the
// partition records a sticky error that Shape surfaces after the
// current procedure — never a panic, so no overflow can escape the
// package, whatever path (expression shaping, the CSE callback, a
// future caller) reached the allocation. The returned offset is then
// past the partition; harmless, since the shaped result is discarded.
func (s *sh) allocLit(size int) int {
	if size >= 8 {
		s.prNext = (s.prNext + 7) / 8 * 8
	}
	off := s.prNext
	s.prNext += size
	if s.prNext > 4096 && s.litErr == nil {
		s.litErr = fmt.Errorf("shaper: program uses more than %d bytes of literal storage", 4096-rt370.LitOffset)
	}
	return off
}

// realLiteral interns an 8-byte real literal.
func (s *sh) realLiteral(f float64) int64 {
	bits := math.Float64bits(f)
	key := bits ^ 0xABCD0123_45670000 // avoid clashing with the int key space
	if off, ok := s.litOffsets[key]; ok {
		return int64(off)
	}
	off := s.allocLit(8)
	s.litOffsets[key] = off
	s.out.PrInit[off] = uint32(bits >> 32)
	s.out.PrInit[off+4] = uint32(bits)
	return int64(off)
}

// singleLiteral interns a 4-byte short real literal.
func (s *sh) singleLiteral(f float64) int64 {
	bits := math.Float32bits(float32(f))
	key := uint64(bits) ^ 0x5555AAAA_00000000
	if off, ok := s.litOffsets[key]; ok {
		return int64(off)
	}
	off := s.allocLit(4)
	s.litOffsets[key] = off
	s.out.PrInit[off] = bits
	return int64(off)
}

// base register tokens.
func stackBase() *ir.Node { return ir.V(ir.NTReg, rt370.RegStackBase) }
func poolBase() *ir.Node  { return ir.V(ir.NTReg, rt370.RegPoolBase) }

// varBase returns the base register token for a variable: the dynamic
// frame register for the current procedure's own variables, the static
// global base for main's variables referenced from procedures.
func (s *sh) varBase(sym *pascal.VarSym) *ir.Node {
	if sym.Proc != nil && sym.Proc.Main && !s.cur.Main {
		return ir.V(ir.NTReg, rt370.RegGlobalBase)
	}
	return stackBase()
}

// typeOp returns the IF unary type operator for a storage format.
func typeOp(t *pascal.Type) (string, error) {
	switch t.Kind {
	case pascal.TInt:
		return ir.OpFullword, nil
	case pascal.THalf:
		return ir.OpHalfword, nil
	case pascal.TByte, pascal.TBool:
		return ir.OpByteword, nil
	case pascal.TReal:
		return ir.OpDblreal, nil
	case pascal.TSingle:
		return ir.OpRealword, nil
	}
	return "", fmt.Errorf("type %s has no direct storage operator", t)
}

// emitProc shapes one procedure: entry label, prologue, body, epilogue.
func (s *sh) emitProc(proc *pascal.Proc) error {
	s.cur = proc
	s.frameTop = s.out.FrameBytes[proc.Name]
	body := []*ir.Node{
		ir.N(ir.OpLabelDef, ir.V(ir.TermLbl, s.out.ProcLabel[proc.Name])),
		ir.N(ir.OpProcEntry),
	}
	stmts, err := s.stmtSeq(proc.Body)
	if err != nil {
		return err
	}
	body = append(body, stmts...)
	body = append(body, ir.N(ir.OpProcExit))
	if s.opt.CSE != nil {
		body, err = s.opt.CSE(body, s.tempWord)
		if err != nil {
			return err
		}
	}
	s.out.Stmts = append(s.out.Stmts, body...)
	s.out.FrameBytes[proc.Name] = s.frameTop
	return nil
}
