package shaper_test

import (
	"strings"
	"testing"

	"cogg/internal/ir"
	"cogg/internal/pascal"
	"cogg/internal/rt370"
	"cogg/internal/shaper"
)

func shape(t *testing.T, src string, opt shaper.Options) *shaper.Shaped {
	t.Helper()
	prog, err := pascal.Parse("t.pas", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := shaper.Shape(prog, opt)
	if err != nil {
		t.Fatalf("shape: %v", err)
	}
	return s
}

func ifText(s *shaper.Shaped) string { return ir.FormatTokens(s.Linearize()) }

func TestVariableOffsetsAligned(t *testing.T) {
	s := shape(t, `
program p;
var b1: boolean;
    i: integer;
    h: -100..100;
    r: real;
    a: array[1..3] of integer;
begin
end.
`, shaper.Options{})
	off := s.VarOffset
	if off["b1"] != rt370.VarOrigin {
		t.Errorf("b1 at %d", off["b1"])
	}
	if off["i"]%4 != 0 {
		t.Errorf("integer misaligned at %d", off["i"])
	}
	if off["h"]%2 != 0 {
		t.Errorf("halfword misaligned at %d", off["h"])
	}
	if off["r"]%8 != 0 {
		t.Errorf("real misaligned at %d", off["r"])
	}
	if off["a"]%4 != 0 {
		t.Errorf("array misaligned at %d", off["a"])
	}
}

func TestSimpleAssignShape(t *testing.T) {
	s := shape(t, `program p; var x, y: integer; begin x := y end.`, shaper.Options{})
	text := ifText(s)
	want := "assign fullword dsp.96 r.13 fullword dsp.100 r.13"
	if !strings.Contains(text, want) {
		t.Errorf("IF %q lacks %q", text, want)
	}
}

func TestIndexedShape(t *testing.T) {
	s := shape(t, `
program p;
var a: array[0..9] of integer; i, x: integer;
begin x := a[i] end.
`, shaper.Options{})
	text := ifText(s)
	// Element access: fullword <scaled index> dsp base; scale by 4 is a
	// left shift of 2.
	if !strings.Contains(text, "fullword l_shift fullword dsp.136 r.13 v.2 dsp.96 r.13") {
		t.Errorf("indexed load shape missing in %q", text)
	}
}

func TestConstantShapes(t *testing.T) {
	s := shape(t, `
program p;
var a, b, c: integer;
begin
  a := 7;
  b := -9;
  c := 100000
end.
`, shaper.Options{})
	text := ifText(s)
	if !strings.Contains(text, "pos_constant v.7") {
		t.Error("small positive constant not shaped through pos_constant")
	}
	if !strings.Contains(text, "neg_constant v.9") {
		t.Error("small negative constant not shaped through neg_constant")
	}
	// 100000 goes to literal storage addressed from pr_base (r12).
	if !strings.Contains(text, "r.12") {
		t.Error("large constant not shaped as a literal load")
	}
	found := false
	for _, w := range s.PrInit {
		if w == 100000 {
			found = true
		}
	}
	if !found {
		t.Error("literal 100000 missing from PrInit")
	}
}

func TestLiteralInterning(t *testing.T) {
	s := shape(t, `
program p;
var a, b: integer;
begin
  a := 100000;
  b := 100000
end.
`, shaper.Options{})
	count := 0
	for _, w := range s.PrInit {
		if w == 100000 {
			count++
		}
	}
	if count != 1 {
		t.Errorf("literal interned %d times", count)
	}
}

func TestIncrDecrIdioms(t *testing.T) {
	s := shape(t, `
program p; var i, j: integer;
begin
  i := i + 1;
  j := j - 1
end.
`, shaper.Options{})
	text := ifText(s)
	if !strings.Contains(text, "incr fullword") {
		t.Error("i + 1 not shaped as incr")
	}
	if !strings.Contains(text, "decr fullword") {
		t.Error("j - 1 not shaped as decr")
	}
}

func TestPowerOfTwoScaling(t *testing.T) {
	s := shape(t, `
program p; var i, j, k: integer;
begin
  j := i * 8;
  k := i div 4
end.
`, shaper.Options{})
	text := ifText(s)
	if !strings.Contains(text, "l_shift fullword dsp.96 r.13 v.3") {
		t.Errorf("i*8 not shaped as a shift: %q", text)
	}
	if !strings.Contains(text, "r_shift fullword dsp.96 r.13 v.2") {
		t.Errorf("i div 4 not shaped as a shift: %q", text)
	}
}

func TestShortCircuitConditions(t *testing.T) {
	s := shape(t, `
program p; var a, b, x: integer;
begin
  if (a < 1) and (b < 2) then x := 1;
  if (a < 1) or (b < 2) then x := 2
end.
`, shaper.Options{})
	text := ifText(s)
	// `and` in a false-branching context produces two branch_op in a
	// row without label between; `or` introduces a skip label.
	if strings.Count(text, "branch_op") < 4 {
		t.Errorf("expected short-circuit branches, got %q", text)
	}
}

func TestSubscriptCheckOption(t *testing.T) {
	src := `program p; var a: array[1..5] of integer; i, x: integer; begin x := a[i] end.`
	plain := shape(t, src, shaper.Options{})
	checked := shape(t, src, shaper.Options{SubscriptChecks: true})
	if strings.Contains(ifText(plain), "subscript_check") {
		t.Error("plain shaping emitted subscript checks")
	}
	if !strings.Contains(ifText(checked), "subscript_check") {
		t.Error("checked shaping missing subscript_check")
	}
}

func TestStatementRecords(t *testing.T) {
	src := `program p; var x: integer; begin x := 1; x := 2 end.`
	with := shape(t, src, shaper.Options{StatementRecords: true})
	without := shape(t, src, shaper.Options{})
	if c := strings.Count(ifText(with), "statement stmt."); c != 2 {
		t.Errorf("statement records: %d", c)
	}
	if strings.Contains(ifText(without), "statement") {
		t.Error("statement records emitted without the option")
	}
}

func TestProcedureVectorAndLabels(t *testing.T) {
	s := shape(t, `
program p;
var x: integer;
procedure q; begin end;
begin q end.
`, shaper.Options{})
	if len(s.VectorSlot) != 2 {
		t.Fatalf("vector slots: %v", s.VectorSlot)
	}
	if _, ok := s.ProcLabel["main"]; !ok {
		t.Error("main has no entry label")
	}
	if _, ok := s.ProcLabel["q"]; !ok {
		t.Error("q has no entry label")
	}
	text := ifText(s)
	if !strings.Contains(text, "procedure_entry") || !strings.Contains(text, "procedure_exit") {
		t.Error("missing linkage operators")
	}
	if !strings.Contains(text, "procedure_call cnt.0 fullword dsp.260 r.12") {
		t.Errorf("call shape missing: %q", text)
	}
}

func TestCallArgumentsLandInCalleeFrame(t *testing.T) {
	s := shape(t, `
program p;
var x: integer;
procedure q(a, b: integer); begin end;
begin q(1, 2) end.
`, shaper.Options{})
	text := ifText(s)
	// Parameters at FrameSize+96 and FrameSize+100 of the caller.
	if !strings.Contains(text, "assign fullword dsp.2144 r.13 pos_constant v.1") {
		t.Errorf("first argument transfer missing: %q", text)
	}
	if !strings.Contains(text, "assign fullword dsp.2148 r.13 pos_constant v.2") {
		t.Errorf("second argument transfer missing: %q", text)
	}
}

func TestSetUpdateRequiresSameVariable(t *testing.T) {
	prog, err := pascal.Parse("t.pas", `
program p; var s, t: set of 0..63; begin s := t + [1] end.
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shaper.Shape(prog, shaper.Options{}); err == nil {
		t.Error("s := t + [e] shaped without error")
	}
}

func TestDynamicSetRemovalShape(t *testing.T) {
	s := shape(t, `
program p; var s: set of 0..63; e: integer; begin s := s - [e] end.
`, shaper.Options{})
	if !strings.Contains(ifText(s), "clear_bit_value addr") {
		t.Errorf("dynamic removal shape:\n%s", ifText(s))
	}
}

func TestFrameOverflow(t *testing.T) {
	prog, err := pascal.Parse("t.pas", `
program p;
var a: array[0..600] of integer;
begin end.
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shaper.Shape(prog, shaper.Options{}); err == nil {
		t.Error("2404-byte frame accepted in a 2048-byte frame layout")
	}
}

func TestBlockMoveSelection(t *testing.T) {
	s := shape(t, `
program p;
var small1, small2: array[1..10] of integer;
    big1, big2: array[1..100] of integer;
begin
  small1 := small2;
  big1 := big2
end.
`, shaper.Options{})
	text := ifText(s)
	if !strings.Contains(text, "assign addr") || !strings.Contains(text, "lng.40") {
		t.Errorf("small move not MVC-shaped: %q", text)
	}
	if !strings.Contains(text, "long_assign") || !strings.Contains(text, "lng.400") {
		t.Errorf("large move not MVCL-shaped: %q", text)
	}
}

func TestCaseShape(t *testing.T) {
	s := shape(t, `
program p; var i, x: integer;
begin
  case i of
    3: x := 1;
    5: x := 2
  end
end.
`, shaper.Options{})
	text := ifText(s)
	if !strings.Contains(text, "case_index") {
		t.Error("case dispatch missing")
	}
	// Labels 3..5 -> 3 table entries.
	if got := strings.Count(text, "label_index"); got != 3 {
		t.Errorf("branch table entries: %d, want 3", got)
	}
	// Selector biased by the low label.
	if !strings.Contains(text, "isub") {
		t.Error("selector not biased by the low case label")
	}
}
