package pascal

import "fmt"

// Parse builds the typed syntax tree for one Pascal program, performing
// static semantic checking as it parses.
func Parse(file, src string) (*Program, error) {
	toks, err := Lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		file:   file,
		toks:   toks,
		consts: map[string]constVal{},
		types:  map[string]*Type{},
		procs:  map[string]*Proc{},
	}
	return p.program()
}

type constVal struct {
	isReal bool
	i      int64
	f      float64
}

type parser struct {
	file string
	toks []Tok
	pos  int

	consts map[string]constVal
	types  map[string]*Type
	procs  map[string]*Proc

	cur     *Proc // procedure whose body is being parsed
	mainSym map[string]*VarSym
	curSym  map[string]*VarSym
}

func (p *parser) tok() Tok  { return p.toks[p.pos] }
func (p *parser) next() Tok { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	return &Error{p.file, p.tok().Line, fmt.Sprintf(format, args...)}
}

func (p *parser) isKw(kw string) bool {
	t := p.tok()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) isOp(op string) bool {
	t := p.tok()
	return t.Kind == TokOp && t.Text == op
}

func (p *parser) acceptKw(kw string) bool {
	if p.isKw(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.isOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %q, found %s", kw, p.tok())
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %s", op, p.tok())
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.tok().Kind != TokIdent {
		return "", p.errf("expected identifier, found %s", p.tok())
	}
	return p.next().Text, nil
}

// program := 'program' ident ';' decls 'begin' stmts 'end' '.'
func (p *parser) program() (*Program, error) {
	if err := p.expectKw("program"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(";"); err != nil {
		return nil, err
	}
	prog := &Program{Name: name}
	main := &Proc{Name: "main", Main: true, Line: p.tok().Line}
	p.cur = main
	p.mainSym = map[string]*VarSym{}
	p.curSym = p.mainSym

	for {
		switch {
		case p.isKw("const"):
			if err := p.constSection(); err != nil {
				return nil, err
			}
		case p.isKw("type"):
			if err := p.typeSection(); err != nil {
				return nil, err
			}
		case p.isKw("var"):
			if err := p.varSection(main); err != nil {
				return nil, err
			}
		case p.isKw("procedure") || p.isKw("function"):
			proc, err := p.procDecl()
			if err != nil {
				return nil, err
			}
			prog.Procs = append(prog.Procs, proc)
			p.cur = main
			p.curSym = p.mainSym
		default:
			goto body
		}
	}
body:
	if err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	stmts, err := p.stmtList("end")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if err := p.expectOp("."); err != nil {
		return nil, err
	}
	main.Body = stmts
	prog.Main = main
	return prog, nil
}

func (p *parser) constSection() error {
	p.pos++ // const
	for p.tok().Kind == TokIdent {
		name, _ := p.ident()
		if err := p.expectOp("="); err != nil {
			return err
		}
		v, err := p.constant()
		if err != nil {
			return err
		}
		if _, dup := p.consts[name]; dup {
			return p.errf("constant %q already declared", name)
		}
		p.consts[name] = v
		if err := p.expectOp(";"); err != nil {
			return err
		}
	}
	return nil
}

// constant := ['-'] (int | real | constname)
func (p *parser) constant() (constVal, error) {
	neg := p.acceptOp("-")
	t := p.tok()
	var v constVal
	switch {
	case t.Kind == TokInt:
		v = constVal{i: t.Int}
		p.pos++
	case t.Kind == TokReal:
		v = constVal{isReal: true, f: t.Real}
		p.pos++
	case t.Kind == TokIdent:
		c, ok := p.consts[t.Text]
		if !ok {
			return v, p.errf("unknown constant %q", t.Text)
		}
		v = c
		p.pos++
	default:
		return v, p.errf("expected constant, found %s", t)
	}
	if neg {
		v.i, v.f = -v.i, -v.f
	}
	return v, nil
}

func (p *parser) intConstant() (int64, error) {
	v, err := p.constant()
	if err != nil {
		return 0, err
	}
	if v.isReal {
		return 0, p.errf("integer constant required")
	}
	return v.i, nil
}

func (p *parser) typeSection() error {
	p.pos++ // type
	for p.tok().Kind == TokIdent {
		name, _ := p.ident()
		if err := p.expectOp("="); err != nil {
			return err
		}
		t, err := p.typeExpr()
		if err != nil {
			return err
		}
		if _, dup := p.types[name]; dup {
			return p.errf("type %q already declared", name)
		}
		p.types[name] = t
		if err := p.expectOp(";"); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) typeExpr() (*Type, error) {
	switch {
	case p.acceptKw("array"):
		if err := p.expectOp("["); err != nil {
			return nil, err
		}
		lo, err := p.intConstant()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(".."); err != nil {
			return nil, err
		}
		hi, err := p.intConstant()
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, p.errf("array bounds %d..%d are empty", lo, hi)
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		if err := p.expectKw("of"); err != nil {
			return nil, err
		}
		elem, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if elem.Kind == TArray {
			return nil, p.errf("multidimensional arrays are not supported")
		}
		return &Type{Kind: TArray, Lo: lo, Hi: hi, Elem: elem}, nil
	case p.acceptKw("set"):
		if err := p.expectKw("of"); err != nil {
			return nil, err
		}
		lo, err := p.intConstant()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(".."); err != nil {
			return nil, err
		}
		hi, err := p.intConstant()
		if err != nil {
			return nil, err
		}
		if lo < 0 || hi > 63 {
			return nil, p.errf("set base range %d..%d exceeds 0..63", lo, hi)
		}
		return SetType, nil
	case p.tok().Kind == TokIdent:
		name := p.tok().Text
		switch name {
		case "integer":
			p.pos++
			return IntType, nil
		case "boolean":
			p.pos++
			return BoolType, nil
		case "real":
			p.pos++
			return RealType, nil
		case "single", "shortreal":
			p.pos++
			return SingleType, nil
		case "char":
			p.pos++
			return &Type{Kind: TByte, Lo: 0, Hi: 255}, nil
		}
		if t, ok := p.types[name]; ok {
			p.pos++
			return t, nil
		}
		if _, isConst := p.consts[name]; !isConst {
			return nil, p.errf("unknown type %q", name)
		}
		fallthrough
	default:
		// Subrange type: constant .. constant.
		lo, err := p.intConstant()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(".."); err != nil {
			return nil, err
		}
		hi, err := p.intConstant()
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, p.errf("subrange %d..%d is empty", lo, hi)
		}
		return subrangeType(lo, hi), nil
	}
}

// subrangeType picks the storage format the bounds allow, giving the
// code generator access to halfword and byte instructions (section 4.5).
func subrangeType(lo, hi int64) *Type {
	switch {
	case lo >= 0 && hi <= 255:
		return &Type{Kind: TByte, Lo: lo, Hi: hi}
	case lo >= -32768 && hi <= 32767:
		return &Type{Kind: THalf, Lo: lo, Hi: hi}
	default:
		return &Type{Kind: TInt, Lo: lo, Hi: hi}
	}
}

func (p *parser) varSection(owner *Proc) error {
	p.pos++ // var
	for p.tok().Kind == TokIdent {
		var names []string
		for {
			name, err := p.ident()
			if err != nil {
				return err
			}
			names = append(names, name)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(":"); err != nil {
			return err
		}
		t, err := p.typeExpr()
		if err != nil {
			return err
		}
		for _, name := range names {
			if err := p.declareVar(owner, name, t, false); err != nil {
				return err
			}
		}
		if err := p.expectOp(";"); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) declareVar(owner *Proc, name string, t *Type, param bool) error {
	if _, dup := p.curSym[name]; dup {
		return p.errf("variable %q already declared", name)
	}
	sym := &VarSym{Name: name, Type: t, Proc: owner, Param: param}
	p.curSym[name] = sym
	if param {
		owner.Params = append(owner.Params, sym)
	} else {
		owner.Locals = append(owner.Locals, sym)
	}
	return nil
}

func (p *parser) procDecl() (*Proc, error) {
	isFunc := p.isKw("function")
	p.pos++
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, dup := p.procs[name]; dup {
		return nil, p.errf("procedure %q already declared", name)
	}
	proc := &Proc{Name: name, Line: p.tok().Line}
	p.cur = proc
	p.curSym = map[string]*VarSym{}

	if p.acceptOp("(") {
		for {
			var names []string
			for {
				pn, err := p.ident()
				if err != nil {
					return nil, err
				}
				names = append(names, pn)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(":"); err != nil {
				return nil, err
			}
			t, err := p.typeExpr()
			if err != nil {
				return nil, err
			}
			if t.Kind == TArray {
				return nil, p.errf("array parameters are not supported")
			}
			for _, pn := range names {
				if err := p.declareVar(proc, pn, t, true); err != nil {
					return nil, err
				}
			}
			if !p.acceptOp(";") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if isFunc {
		if err := p.expectOp(":"); err != nil {
			return nil, err
		}
		t, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if t.Kind == TArray || t.Kind == TSet {
			return nil, p.errf("function result must be a scalar type")
		}
		proc.Result = &VarSym{Name: name, Type: t, Proc: proc}
		proc.Locals = append(proc.Locals, proc.Result)
	}
	if err := p.expectOp(";"); err != nil {
		return nil, err
	}
	// The procedure must be registered before its body so that direct
	// recursion resolves.
	p.procs[name] = proc
	if p.isKw("var") {
		if err := p.varSection(proc); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	body, err := p.stmtList("end")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if err := p.expectOp(";"); err != nil {
		return nil, err
	}
	proc.Body = body
	return proc, nil
}
