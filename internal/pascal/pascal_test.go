package pascal

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("t.pas", "program P; { comment } var x := 12 3.5 'A' 'str' <> <= .. (* more *) end.")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		switch tok.Kind {
		case TokKeyword:
			kinds = append(kinds, "kw:"+tok.Text)
		case TokIdent:
			kinds = append(kinds, "id:"+tok.Text)
		case TokInt:
			kinds = append(kinds, "int")
		case TokReal:
			kinds = append(kinds, "real")
		case TokString:
			kinds = append(kinds, "str")
		case TokOp:
			kinds = append(kinds, tok.Text)
		case TokEOF:
			kinds = append(kinds, "eof")
		}
	}
	want := []string{"kw:program", "id:p", ";", "kw:var", "id:x", ":=", "int", "real",
		"int", "str", "<>", "<=", "..", "kw:end", ".", "eof"}
	if strings.Join(kinds, " ") != strings.Join(want, " ") {
		t.Errorf("lex:\n got %v\nwant %v", kinds, want)
	}
}

func TestLexCaseInsensitive(t *testing.T) {
	toks, err := Lex("t.pas", "PROGRAM BeGiN X")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "program" ||
		toks[1].Text != "begin" || toks[2].Text != "x" {
		t.Errorf("case folding: %v", toks[:3])
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"{ unterminated", "(* unterminated", "'unterminated", "#"} {
		if _, err := Lex("t.pas", bad); err == nil {
			t.Errorf("Lex(%q) succeeded", bad)
		}
	}
}

func TestCharLiteral(t *testing.T) {
	toks, _ := Lex("t.pas", "'A'")
	if toks[0].Kind != TokInt || toks[0].Int != 65 {
		t.Errorf("char literal: %+v", toks[0])
	}
}

func parseOK(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse("t.pas", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseProgramShape(t *testing.T) {
	p := parseOK(t, `
program shapes;
const n = 10;
type vec = array[1..n] of integer;
var a: vec;
    i: integer;
    h: -100..100;
    ch: char;
    b: boolean;
    s: set of 0..63;
    r: real;

procedure fill(start: integer);
var j: integer;
begin
  j := start
end;

function top(x: integer): integer;
begin
  top := x + 1
end;

begin
  i := top(3);
  fill(i)
end.
`)
	if p.Name != "shapes" {
		t.Errorf("name %q", p.Name)
	}
	if len(p.Procs) != 2 {
		t.Fatalf("procs: %d", len(p.Procs))
	}
	if len(p.Main.Locals) != 7 {
		t.Errorf("main locals: %d", len(p.Main.Locals))
	}
	if p.Procs[1].Result == nil || p.Procs[1].Result.Type.Kind != TInt {
		t.Error("function result missing")
	}
	if len(p.Main.Body) != 2 {
		t.Errorf("main body: %d statements", len(p.Main.Body))
	}
}

func TestSubrangeStorage(t *testing.T) {
	cases := []struct {
		lo, hi int64
		want   TypeKind
	}{
		{0, 255, TByte},
		{0, 256, THalf},
		{-1, 100, THalf},
		{-32768, 32767, THalf},
		{-32769, 0, TInt},
		{0, 1 << 20, TInt},
	}
	for _, c := range cases {
		if got := subrangeType(c.lo, c.hi).Kind; got != c.want {
			t.Errorf("subrange %d..%d stored as %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
}

func TestTypeSizes(t *testing.T) {
	arr := &Type{Kind: TArray, Lo: 1, Hi: 10, Elem: IntType}
	if arr.Size() != 40 {
		t.Errorf("array size %d", arr.Size())
	}
	if SetType.Size() != 8 || RealType.Size() != 8 || BoolType.Size() != 1 {
		t.Error("scalar sizes wrong")
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := map[string]string{
		"undeclared variable": `program p; begin x := 1 end.`,
		"type mismatch":       `program p; var b: boolean; begin b := 3 end.`,
		"real into int":       `program p; var i: integer; begin i := 1.5 end.`,
		"div on reals":        `program p; var r: real; begin r := 1.0 div 2.0 end.`,
		"slash on ints":       `program p; var i: integer; begin i := 4 / 2 end.`,
		"and on ints":         `program p; var i: integer; begin i := 1 and 2 end.`,
		"if non-boolean":      `program p; var i: integer; begin if i then i := 1 end.`,
		"while non-boolean":   `program p; var i: integer; begin while i do i := 1 end.`,
		"for non-integer": `program p; var b: boolean; begin
  for b := 1 to 2 do b := true end.`,
		"duplicate variable": `program p; var x, x: integer; begin x := 1 end.`,
		"duplicate case label": `program p; var i: integer; begin
  case i of 1: i := 0; 1: i := 2 end end.`,
		"call arity": `program p; var i: integer;
procedure q(a: integer); begin end;
begin q(1, 2) end.`,
		"function as procedure": `program p; var i: integer;
function f: integer; begin f := 1 end;
begin f end.`,
		"procedure in expression": `program p; var i: integer;
procedure q; begin end;
begin i := q end.`,
		"subscript of scalar":  `program p; var i: integer; begin i[1] := 2 end.`,
		"set element mismatch": `program p; var s: set of 0..63; var r: real; begin s := s + [r] end.`,
		"array assign shape": `program p;
var a, b: array[1..3] of integer; c: array[1..4] of integer;
begin a := c end.`,
		"multidimensional array": `program p;
var a: array[1..3] of array[1..3] of integer;
begin end.`,
		"missing final period": `program p; begin end`,
	}
	for name, src := range cases {
		if _, err := Parse("t.pas", src); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestConstantsFold(t *testing.T) {
	p := parseOK(t, `
program p;
const k = 5; negk = -5;
var a: array[1..k] of integer;
    i: integer;
begin
  i := k + negk
end.
`)
	arr := p.Main.Locals[0].Type
	if arr.Hi != 5 {
		t.Errorf("array bound from constant: %d", arr.Hi)
	}
}

func TestFunctionResultAssignment(t *testing.T) {
	p := parseOK(t, `
program p;
var x: integer;
function f: integer;
begin
  f := 42
end;
begin x := f end.
`)
	f := p.Procs[0]
	as, ok := f.Body[0].(*AssignStmt)
	if !ok {
		t.Fatalf("body[0] is %T", f.Body[0])
	}
	ref, ok := as.LHS.(*VarRef)
	if !ok || ref.Sym != f.Result {
		t.Error("function name does not designate the result slot")
	}
}

func TestCaseElse(t *testing.T) {
	p := parseOK(t, `
program p;
var i: integer;
begin
  case i of
    1: i := 10;
    2, 3: i := 20
  else i := -1
  end
end.
`)
	cs := p.Main.Body[0].(*CaseStmt)
	if len(cs.Arms) != 2 || cs.Else == nil {
		t.Errorf("case shape: %d arms, else=%v", len(cs.Arms), cs.Else)
	}
	if len(cs.Arms[1].Vals) != 2 {
		t.Errorf("second arm labels: %v", cs.Arms[1].Vals)
	}
}

func TestSqrDesugars(t *testing.T) {
	p := parseOK(t, `program p; var i: integer; begin i := sqr(3) end.`)
	as := p.Main.Body[0].(*AssignStmt)
	bin, ok := as.RHS.(*BinExpr)
	if !ok || bin.Op != "*" {
		t.Errorf("sqr desugars to %T", as.RHS)
	}
}
