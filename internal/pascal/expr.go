package pascal

// expression := simple [relop simple] | simple 'in' designator
func (p *parser) expression() (Expr, error) {
	line := p.tok().Line
	l, err := p.simple()
	if err != nil {
		return nil, err
	}
	if p.acceptKw("in") {
		set, err := p.factor()
		if err != nil {
			return nil, err
		}
		if !l.Type().Numeric() {
			return nil, p.errf("left operand of in must be an integer")
		}
		if set.Type().Kind != TSet {
			return nil, p.errf("right operand of in must be a set")
		}
		return &BinExpr{exprBase{BoolType, line}, "in", l, set}, nil
	}
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		if p.isOp(op) {
			p.pos++
			r, err := p.simple()
			if err != nil {
				return nil, err
			}
			if err := p.checkCompare(l, r); err != nil {
				return nil, err
			}
			return &BinExpr{exprBase{BoolType, line}, op, l, r}, nil
		}
	}
	return l, nil
}

func (p *parser) checkCompare(l, r Expr) error {
	lt, rt := l.Type(), r.Type()
	switch {
	case lt.Numeric() && rt.Numeric():
		return nil
	case lt.RealLike() && rt.RealLike() && lt.Kind == rt.Kind:
		return nil
	case lt.Kind == TBool && rt.Kind == TBool:
		return nil
	}
	return p.errf("cannot compare %s with %s", lt, rt)
}

// simple := ['-'] term { (+ | - | or) term }
func (p *parser) simple() (Expr, error) {
	line := p.tok().Line
	neg := false
	if p.isOp("-") {
		p.pos++
		neg = true
	} else if p.isOp("+") {
		p.pos++
	}
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	if neg {
		l, err = p.negate(l, line)
		if err != nil {
			return nil, err
		}
	}
	for {
		line = p.tok().Line
		var op string
		switch {
		case p.isOp("+"):
			op = "+"
		case p.isOp("-"):
			op = "-"
		case p.isKw("or"):
			op = "or"
		default:
			return l, nil
		}
		p.pos++
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l, err = p.binary(op, l, r, line)
		if err != nil {
			return nil, err
		}
	}
}

// term := factor { (* | / | div | mod | and) factor }
func (p *parser) term() (Expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for {
		line := p.tok().Line
		var op string
		switch {
		case p.isOp("*"):
			op = "*"
		case p.isOp("/"):
			op = "/"
		case p.isKw("div"):
			op = "div"
		case p.isKw("mod"):
			op = "mod"
		case p.isKw("and"):
			op = "and"
		default:
			return l, nil
		}
		p.pos++
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l, err = p.binary(op, l, r, line)
		if err != nil {
			return nil, err
		}
	}
}

func (p *parser) negate(e Expr, line int) (Expr, error) {
	if lit, ok := e.(*IntLit); ok {
		lit.V = -lit.V
		return lit, nil
	}
	if lit, ok := e.(*RealLit); ok {
		lit.V = -lit.V
		return lit, nil
	}
	switch {
	case e.Type().Numeric():
		return &UnExpr{exprBase{IntType, line}, "-", e}, nil
	case e.Type().RealLike():
		return &UnExpr{exprBase{e.Type(), line}, "-", e}, nil
	}
	return nil, p.errf("cannot negate %s", e.Type())
}

func (p *parser) binary(op string, l, r Expr, line int) (Expr, error) {
	lt, rt := l.Type(), r.Type()
	switch op {
	case "and", "or":
		if lt.Kind != TBool || rt.Kind != TBool {
			return nil, p.errf("%s requires boolean operands", op)
		}
		return &BinExpr{exprBase{BoolType, line}, op, l, r}, nil
	case "/":
		if !lt.RealLike() || lt.Kind != rt.Kind {
			return nil, p.errf("/ requires real operands of the same precision (use div for integers)")
		}
		return &BinExpr{exprBase{lt, line}, op, l, r}, nil
	case "div", "mod":
		if !lt.Numeric() || !rt.Numeric() {
			return nil, p.errf("%s requires integer operands", op)
		}
		return &BinExpr{exprBase{IntType, line}, op, l, r}, nil
	}
	// + - * over integers, reals, and (for + and -) sets.
	switch {
	case lt.Numeric() && rt.Numeric():
		return &BinExpr{exprBase{IntType, line}, op, l, r}, nil
	case lt.RealLike() && rt.RealLike() && lt.Kind == rt.Kind:
		return &BinExpr{exprBase{lt, line}, op, l, r}, nil
	case lt.Kind == TSet && op != "*":
		if _, ok := r.(*SetLit); !ok {
			return nil, p.errf("set %s supports only a one-element set constructor on the right", op)
		}
		return &BinExpr{exprBase{SetType, line}, op, l, r}, nil
	}
	return nil, p.errf("operator %s cannot combine %s and %s", op, lt, rt)
}

// factor := literal | designator | function call | (expr) | not factor |
// [elem] | abs(e) | odd(e)
func (p *parser) factor() (Expr, error) {
	line := p.tok().Line
	t := p.tok()
	switch {
	case t.Kind == TokInt:
		p.pos++
		return &IntLit{exprBase{litType(t.Int), line}, t.Int}, nil
	case t.Kind == TokReal:
		p.pos++
		return &RealLit{exprBase{RealType, line}, t.Real}, nil
	case p.acceptKw("true"):
		return &BoolLit{exprBase{BoolType, line}, true}, nil
	case p.acceptKw("false"):
		return &BoolLit{exprBase{BoolType, line}, false}, nil
	case p.acceptKw("not"):
		e, err := p.factor()
		if err != nil {
			return nil, err
		}
		if e.Type().Kind != TBool {
			return nil, p.errf("not requires a boolean operand")
		}
		return &UnExpr{exprBase{BoolType, line}, "not", e}, nil
	case p.acceptOp("("):
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.acceptOp("["):
		elem, err := p.expression()
		if err != nil {
			return nil, err
		}
		if !elem.Type().Numeric() {
			return nil, p.errf("set element must be an integer")
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		return &SetLit{exprBase{SetType, line}, elem}, nil
	case t.Kind == TokIdent:
		name := t.Text
		p.pos++
		switch name {
		case "abs", "odd", "sqr":
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			switch name {
			case "odd":
				if !e.Type().Numeric() {
					return nil, p.errf("odd requires an integer operand")
				}
				return &BuiltinExpr{exprBase{BoolType, line}, name, e}, nil
			case "abs":
				rt := IntType
				if e.Type().RealLike() {
					rt = e.Type()
				} else if !e.Type().Numeric() {
					return nil, p.errf("abs requires a numeric operand")
				}
				return &BuiltinExpr{exprBase{rt, line}, name, e}, nil
			default: // sqr
				if e.Type().Numeric() {
					return &BinExpr{exprBase{IntType, line}, "*", e, e}, nil
				}
				if e.Type().RealLike() {
					return &BinExpr{exprBase{e.Type(), line}, "*", e, e}, nil
				}
				return nil, p.errf("sqr requires a numeric operand")
			}
		}
		if c, ok := p.consts[name]; ok {
			if c.isReal {
				return &RealLit{exprBase{RealType, line}, c.f}, nil
			}
			return &IntLit{exprBase{litType(c.i), line}, c.i}, nil
		}
		if proc, ok := p.procs[name]; ok {
			if proc.Result == nil {
				return nil, p.errf("procedure %q used in an expression", name)
			}
			args, err := p.callArgs(proc)
			if err != nil {
				return nil, err
			}
			return &CallExpr{exprBase{proc.Result.Type, line}, proc, args}, nil
		}
		return p.designator(name, line)
	}
	return nil, p.errf("expected expression, found %s", t)
}

// litType types an integer literal by value so that subrange contexts
// accept it.
func litType(v int64) *Type {
	return IntType
}
