package pascal

// stmtList parses statements separated by ';' until one of the closing
// keywords ("end", "until") is next.
func (p *parser) stmtList(closers ...string) ([]Stmt, error) {
	var out []Stmt
	for {
		for _, c := range closers {
			if p.isKw(c) {
				return out, nil
			}
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
		if !p.acceptOp(";") {
			return out, nil
		}
	}
}

func (p *parser) statement() (Stmt, error) {
	line := p.tok().Line
	switch {
	case p.isOp(";") || p.isKw("end") || p.isKw("until"):
		return nil, nil // empty statement
	case p.acceptKw("begin"):
		stmts, err := p.stmtList("end")
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("end"); err != nil {
			return nil, err
		}
		return &CompoundStmt{stmtBase{line}, stmts}, nil
	case p.acceptKw("if"):
		return p.ifStatement(line)
	case p.acceptKw("while"):
		return p.whileStatement(line)
	case p.acceptKw("repeat"):
		return p.repeatStatement(line)
	case p.acceptKw("for"):
		return p.forStatement(line)
	case p.acceptKw("case"):
		return p.caseStatement(line)
	case p.tok().Kind == TokIdent:
		return p.assignOrCall(line)
	}
	return nil, p.errf("expected statement, found %s", p.tok())
}

func (p *parser) ifStatement(line int) (Stmt, error) {
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if cond.Type().Kind != TBool {
		return nil, p.errf("if condition must be boolean, found %s", cond.Type())
	}
	if err := p.expectKw("then"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	var els Stmt
	if p.acceptKw("else") {
		els, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{stmtBase{line}, cond, then, els}, nil
}

func (p *parser) whileStatement(line int) (Stmt, error) {
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if cond.Type().Kind != TBool {
		return nil, p.errf("while condition must be boolean, found %s", cond.Type())
	}
	if err := p.expectKw("do"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{stmtBase{line}, cond, body}, nil
}

func (p *parser) repeatStatement(line int) (Stmt, error) {
	body, err := p.stmtList("until")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("until"); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if cond.Type().Kind != TBool {
		return nil, p.errf("until condition must be boolean, found %s", cond.Type())
	}
	return &RepeatStmt{stmtBase{line}, body, cond}, nil
}

func (p *parser) forStatement(line int) (Stmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sym, err := p.lookupVar(name)
	if err != nil {
		return nil, err
	}
	if sym.Type.Kind != TInt {
		return nil, p.errf("for control variable %q must be a fullword integer", name)
	}
	if err := p.expectOp(":="); err != nil {
		return nil, err
	}
	from, err := p.expression()
	if err != nil {
		return nil, err
	}
	down := false
	switch {
	case p.acceptKw("to"):
	case p.acceptKw("downto"):
		down = true
	default:
		return nil, p.errf("expected to or downto, found %s", p.tok())
	}
	to, err := p.expression()
	if err != nil {
		return nil, err
	}
	if !from.Type().Numeric() || !to.Type().Numeric() {
		return nil, p.errf("for bounds must be integers")
	}
	if err := p.expectKw("do"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &ForStmt{stmtBase{line}, sym, from, to, down, body}, nil
}

func (p *parser) caseStatement(line int) (Stmt, error) {
	sel, err := p.expression()
	if err != nil {
		return nil, err
	}
	if !sel.Type().Numeric() {
		return nil, p.errf("case selector must be an integer, found %s", sel.Type())
	}
	if err := p.expectKw("of"); err != nil {
		return nil, err
	}
	cs := &CaseStmt{stmtBase: stmtBase{line}, Sel: sel}
	seen := map[int64]bool{}
	for {
		if p.isKw("end") || p.isKw("else") {
			break
		}
		var vals []int64
		for {
			v, err := p.intConstant()
			if err != nil {
				return nil, err
			}
			if seen[v] {
				return nil, p.errf("duplicate case label %d", v)
			}
			seen[v] = true
			vals = append(vals, v)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(":"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		cs.Arms = append(cs.Arms, CaseArm{Vals: vals, Body: body})
		if !p.acceptOp(";") {
			break
		}
	}
	if p.acceptKw("else") {
		els, err := p.statement()
		if err != nil {
			return nil, err
		}
		cs.Else = els
		p.acceptOp(";")
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if len(cs.Arms) == 0 {
		return nil, p.errf("case statement has no arms")
	}
	return cs, nil
}

// assignOrCall distinguishes `v := e`, `a[i] := e`, `f := e` (function
// result), `p(args)`, and the write/writeln builtins.
func (p *parser) assignOrCall(line int) (Stmt, error) {
	name, _ := p.ident()

	if (name == "write" || name == "writeln") && !p.isOp(":=") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var args []Expr
		for {
			a, err := p.expression()
			if err != nil {
				return nil, err
			}
			if !a.Type().Numeric() {
				return nil, p.errf("%s writes integers; found %s", name, a.Type())
			}
			args = append(args, a)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &WriteStmt{stmtBase{line}, args}, nil
	}

	if proc, ok := p.procs[name]; ok && !p.isOp(":=") {
		args, err := p.callArgs(proc)
		if err != nil {
			return nil, err
		}
		if proc.Result != nil {
			return nil, p.errf("function %q called as a procedure", name)
		}
		return &CallStmt{stmtBase{line}, proc, args}, nil
	}

	lhs, err := p.designator(name, line)
	if err != nil {
		return nil, err
	}
	if err := p.expectOp(":="); err != nil {
		return nil, err
	}
	rhs, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.checkAssign(lhs, rhs); err != nil {
		return nil, err
	}
	return &AssignStmt{stmtBase{line}, lhs, rhs}, nil
}

// designator parses a variable or array-element reference for a name
// already consumed. Inside a function body, the function's name
// designates its result slot.
func (p *parser) designator(name string, line int) (Expr, error) {
	var sym *VarSym
	if p.cur.Result != nil && name == p.cur.Name {
		sym = p.cur.Result
	} else {
		var err error
		sym, err = p.lookupVar(name)
		if err != nil {
			return nil, err
		}
	}
	ref := &VarRef{exprBase{sym.Type, line}, sym}
	if p.acceptOp("[") {
		if sym.Type.Kind != TArray {
			return nil, p.errf("%q is not an array", name)
		}
		idx, err := p.expression()
		if err != nil {
			return nil, err
		}
		if !idx.Type().Numeric() {
			return nil, p.errf("array subscript must be an integer")
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		return &IndexExpr{exprBase{sym.Type.Elem, line}, ref, idx}, nil
	}
	return ref, nil
}

func (p *parser) lookupVar(name string) (*VarSym, error) {
	if sym, ok := p.curSym[name]; ok {
		return sym, nil
	}
	// Globals: main's frame sits at a fixed address, addressed through
	// its own base register inside procedures.
	if !p.cur.Main {
		if sym, ok := p.mainSym[name]; ok {
			return sym, nil
		}
	}
	return nil, p.errf("undeclared variable %q", name)
}

// checkAssign validates an assignment's types.
func (p *parser) checkAssign(lhs, rhs Expr) error {
	lt, rt := lhs.Type(), rhs.Type()
	switch {
	case lt.Numeric() && rt.Numeric():
		return nil
	case lt.Kind == TBool && rt.Kind == TBool:
		return nil
	case lt.RealLike() && rt.RealLike() && lt.Kind == rt.Kind:
		return nil
	case lt.Kind == TSingle && rt.Kind == TReal:
		// A real literal adapts to the single-precision context.
		if lit, ok := rhs.(*RealLit); ok {
			lit.T = SingleType
			return nil
		}
	case lt.Kind == TSet && rt.Kind == TSet:
		return nil
	case lt.Kind == TArray && rt.Kind == TArray && lt.Same(rt):
		if _, ok := rhs.(*VarRef); !ok {
			return p.errf("array assignment requires a whole array on the right")
		}
		return nil
	}
	return p.errf("cannot assign %s to %s", rt, lt)
}

func (p *parser) callArgs(proc *Proc) ([]Expr, error) {
	var args []Expr
	if p.acceptOp("(") {
		for {
			a, err := p.expression()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if len(args) != len(proc.Params) {
		return nil, p.errf("%q expects %d arguments, found %d", proc.Name, len(proc.Params), len(args))
	}
	for i, a := range args {
		pt := proc.Params[i].Type
		at := a.Type()
		ok := pt.Numeric() && at.Numeric() ||
			pt.Kind == at.Kind && (pt.Kind == TBool || pt.RealLike() || pt.Kind == TSet)
		if !ok {
			return nil, p.errf("argument %d of %q: cannot pass %s as %s", i+1, proc.Name, at, pt)
		}
	}
	return args, nil
}
