package pascal

// TypeKind classifies the storage formats the architecture offers; the
// unary type operators of the IF (fullword, hlfword, byteword, ...)
// mirror them (paper section 4.5).
type TypeKind int

const (
	TInt    TypeKind = iota // fullword integer
	THalf                   // halfword subrange
	TByte                   // byte subrange / char
	TBool                   // boolean, one byte holding 0 or 1
	TReal                   // long (double precision) real
	TSingle                 // short (single precision) real
	TArray
	TSet // set of 0..63, eight bytes
)

// Type describes a variable's storage format.
type Type struct {
	Kind   TypeKind
	Lo, Hi int64 // subrange and array index bounds
	Elem   *Type // array element type
}

// Predefined types.
var (
	IntType    = &Type{Kind: TInt, Lo: -1 << 31, Hi: 1<<31 - 1}
	BoolType   = &Type{Kind: TBool, Lo: 0, Hi: 1}
	RealType   = &Type{Kind: TReal}
	SingleType = &Type{Kind: TSingle}
	SetType    = &Type{Kind: TSet, Lo: 0, Hi: 63}
)

// Size returns the storage size in bytes.
func (t *Type) Size() int64 {
	switch t.Kind {
	case TInt:
		return 4
	case THalf:
		return 2
	case TByte, TBool:
		return 1
	case TReal:
		return 8
	case TSingle:
		return 4
	case TSet:
		return 8
	case TArray:
		return (t.Hi - t.Lo + 1) * t.Elem.Size()
	}
	return 0
}

// Numeric reports whether the type participates in integer arithmetic.
func (t *Type) Numeric() bool {
	return t.Kind == TInt || t.Kind == THalf || t.Kind == TByte
}

// RealLike reports whether the type is a floating point format.
func (t *Type) RealLike() bool { return t.Kind == TReal || t.Kind == TSingle }

// Same reports structural type identity.
func (t *Type) Same(u *Type) bool {
	if t.Kind != u.Kind {
		return false
	}
	if t.Kind == TArray {
		return t.Lo == u.Lo && t.Hi == u.Hi && t.Elem.Same(u.Elem)
	}
	return true
}

func (t *Type) String() string {
	switch t.Kind {
	case TInt:
		return "integer"
	case THalf:
		return "halfword subrange"
	case TByte:
		return "byte subrange"
	case TBool:
		return "boolean"
	case TReal:
		return "real"
	case TSingle:
		return "single"
	case TSet:
		return "set"
	case TArray:
		return "array of " + t.Elem.String()
	}
	return "?"
}

// VarSym is a declared variable, parameter, or function result slot.
type VarSym struct {
	Name  string
	Type  *Type
	Proc  *Proc // owning procedure; nil for globals of the main program
	Param bool
	// Offset is assigned by the shaper: displacement within the frame.
	Offset int64
}

// Proc is a procedure or function. The main program body is the Proc
// with Name "main" and Main true.
type Proc struct {
	Name   string
	Main   bool
	Params []*VarSym
	Result *VarSym // function result slot; nil for procedures
	Locals []*VarSym
	Body   []Stmt
	Line   int

	// Index is the procedure's slot in the transfer vector, assigned by
	// the shaper.
	Index int
}

// Program is a checked compilation unit.
type Program struct {
	Name  string
	Main  *Proc
	Procs []*Proc // excluding Main
}

// AllProcs returns main followed by the declared procedures.
func (p *Program) AllProcs() []*Proc {
	out := make([]*Proc, 0, len(p.Procs)+1)
	out = append(out, p.Main)
	return append(out, p.Procs...)
}

// --- expressions ---------------------------------------------------------

// Expr is a typed expression node.
type Expr interface {
	Type() *Type
	Line() int
}

type exprBase struct {
	T  *Type
	Ln int
}

func (e *exprBase) Type() *Type { return e.T }
func (e *exprBase) Line() int   { return e.Ln }

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	V int64
}

// RealLit is a floating point literal.
type RealLit struct {
	exprBase
	V float64
}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	V bool
}

// VarRef reads a whole variable.
type VarRef struct {
	exprBase
	Sym *VarSym
}

// IndexExpr reads one array element.
type IndexExpr struct {
	exprBase
	Arr *VarRef
	Idx Expr
}

// BinExpr is a binary operation: + - * div mod, relationals
// (= <> < <= > >=), and, or, and the set operations + - (with a SetLit
// right operand) and in.
type BinExpr struct {
	exprBase
	Op   string
	L, R Expr
}

// UnExpr is unary minus or not.
type UnExpr struct {
	exprBase
	Op string
	E  Expr
}

// SetLit is a one-element set constructor [e], legal only as the right
// operand of a set + or -.
type SetLit struct {
	exprBase
	Elem Expr
}

// CallExpr invokes a function inside an expression.
type CallExpr struct {
	exprBase
	Proc *Proc
	Args []Expr
}

// BuiltinExpr is abs(e) or odd(e).
type BuiltinExpr struct {
	exprBase
	Name string
	E    Expr
}

// --- statements ----------------------------------------------------------

// Stmt is a statement node.
type Stmt interface{ StmtLine() int }

type stmtBase struct{ Ln int }

func (s *stmtBase) StmtLine() int { return s.Ln }

// AssignStmt stores RHS into LHS (a VarRef or IndexExpr).
type AssignStmt struct {
	stmtBase
	LHS Expr
	RHS Expr
}

// IfStmt with optional else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt loops while the condition holds.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// RepeatStmt loops until the condition holds.
type RepeatStmt struct {
	stmtBase
	Body []Stmt
	Cond Expr
}

// ForStmt iterates an integer control variable.
type ForStmt struct {
	stmtBase
	Var  *VarSym
	From Expr
	To   Expr
	Down bool
	Body Stmt
}

// CaseArm is one labelled arm of a case statement.
type CaseArm struct {
	Vals []int64
	Body Stmt
}

// CaseStmt dispatches on an integer selector.
type CaseStmt struct {
	stmtBase
	Sel  Expr
	Arms []CaseArm
	Else Stmt // may be nil
}

// CallStmt invokes a procedure.
type CallStmt struct {
	stmtBase
	Proc *Proc
	Args []Expr
}

// CompoundStmt is begin ... end.
type CompoundStmt struct {
	stmtBase
	Stmts []Stmt
}

// WriteStmt is the write/writeln builtin: each integer argument is
// appended to the runtime output area.
type WriteStmt struct {
	stmtBase
	Args []Expr
}
