// Package pascal is the front end of the compiler: lexical analyzer,
// parser, and static semantic checker for the Pascal subset the code
// generation experiments exercise — integer, boolean, character,
// subrange, real, array, and small-set types; assignments; if, while,
// repeat, for, and case statements; and non-nested procedures and
// functions with value parameters.
//
// The front end produces a typed syntax tree; the shaper (package
// shaper) resolves storage and lowers it to the intermediate form.
package pascal

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokReal
	TokString
	TokKeyword
	TokOp // one of the operator/punctuation spellings below
)

// Tok is one lexical token.
type Tok struct {
	Kind TokKind
	Text string // identifiers lower-cased (Pascal is case insensitive)
	Int  int64
	Real float64
	Line int
}

func (t Tok) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokInt:
		return fmt.Sprint(t.Int)
	case TokReal:
		return fmt.Sprint(t.Real)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"program": true, "var": true, "const": true, "type": true,
	"begin": true, "end": true, "if": true, "then": true, "else": true,
	"while": true, "do": true, "repeat": true, "until": true,
	"for": true, "to": true, "downto": true, "case": true, "of": true,
	"procedure": true, "function": true, "array": true, "set": true,
	"div": true, "mod": true, "and": true, "or": true, "not": true,
	"in": true, "true": true, "false": true,
}

// Error is a front-end diagnostic.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg) }

// Lex tokenizes Pascal source.
func Lex(file, src string) ([]Tok, error) {
	var toks []Tok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '{': // comment
			for i < len(src) && src[i] != '}' {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i == len(src) {
				return nil, &Error{file, line, "unterminated comment"}
			}
			i++
		case c == '(' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == ')') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= len(src) {
				return nil, &Error{file, line, "unterminated comment"}
			}
			i += 2
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			word := strings.ToLower(src[start:i])
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Tok{Kind: kind, Text: word, Line: line})
		case unicode.IsDigit(rune(c)):
			start := i
			for i < len(src) && unicode.IsDigit(rune(src[i])) {
				i++
			}
			isReal := false
			if i+1 < len(src) && src[i] == '.' && unicode.IsDigit(rune(src[i+1])) {
				isReal = true
				i++
				for i < len(src) && unicode.IsDigit(rune(src[i])) {
					i++
				}
			}
			if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < len(src) && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < len(src) && unicode.IsDigit(rune(src[j])) {
					isReal = true
					i = j
					for i < len(src) && unicode.IsDigit(rune(src[i])) {
						i++
					}
				}
			}
			text := src[start:i]
			if isReal {
				var f float64
				if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
					return nil, &Error{file, line, "bad real literal " + text}
				}
				toks = append(toks, Tok{Kind: TokReal, Real: f, Line: line})
			} else {
				var v int64
				if _, err := fmt.Sscanf(text, "%d", &v); err != nil {
					return nil, &Error{file, line, "bad integer literal " + text}
				}
				toks = append(toks, Tok{Kind: TokInt, Int: v, Line: line})
			}
		case c == '\'':
			i++
			start := i
			for i < len(src) && src[i] != '\'' {
				i++
			}
			if i == len(src) {
				return nil, &Error{file, line, "unterminated string"}
			}
			text := src[start:i]
			i++
			if len(text) == 1 {
				// Character literal: value is its code.
				toks = append(toks, Tok{Kind: TokInt, Int: int64(text[0]), Line: line})
			} else {
				toks = append(toks, Tok{Kind: TokString, Text: text, Line: line})
			}
		default:
			op := ""
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch {
			case two == ":=" || two == "<=" || two == ">=" || two == "<>" || two == "..":
				op = two
				i += 2
			case strings.ContainsRune("+-*/=<>()[],;:.", rune(c)):
				op = string(c)
				i++
			default:
				return nil, &Error{file, line, fmt.Sprintf("unexpected character %q", c)}
			}
			toks = append(toks, Tok{Kind: TokOp, Text: op, Line: line})
		}
	}
	toks = append(toks, Tok{Kind: TokEOF, Line: line})
	return toks, nil
}
