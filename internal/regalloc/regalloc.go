// Package regalloc implements the register allocation routine of a
// generated code generator (paper section 4.1).
//
// Registers are grouped into classes matching the grammar's nonterminals
// (general registers, even/odd pairs, floating registers, the condition
// code). Allocation uses a "least recently used" strategy to reduce
// operand contention in the machine pipeline: a global index is
// incremented at every reduction; a register records the current index
// whenever it is allocated or modified; and the free register with the
// lowest recorded index — changed at a time previous to all others — is
// allocated first.
//
// `using` requests any free register of a class; `need` requests one
// specific register, evicting its current contents into another register
// of the class when busy (the caller emits the move and rewrites its
// translation stack). Each allocated register carries a use count:
// consuming an operand decrements it and a count of zero frees the
// register.
package regalloc

import (
	"fmt"
	"sort"
)

// Class describes one register class.
type Class struct {
	Name  string // grammar nonterminal name ("r", "dbl", "f", "cc")
	Regs  []int  // registers available to `using`
	Extra []int  // registers reachable only by `need` (linkage registers)
	Pair  bool   // allocate aligned even/odd pairs from Under; Regs lists even members
	Under string // underlying class for Pair
	Flag  bool   // condition-code-like: a single implicit resource
}

// Move records an eviction performed by Need: the caller must emit a
// register-to-register copy and update the translation stack.
type Move struct {
	Class    string
	From, To int
}

type regState struct {
	busy  bool
	uses  int
	stamp int64
}

type classState struct {
	f     *File // owning file, for allocation-activity accounting
	spec  Class
	regs  map[int]*regState
	under *classState
	// sortedRegs is spec.Regs in ascending order, computed once so the
	// per-allocation LRU scan needs no sorting (or copying) of its own.
	sortedRegs []int
	// partner maps a register to its even/odd pair mate when some pair
	// class builds on this class; single-register allocation prefers
	// registers whose mate is already busy, so that free pairs survive
	// for the multiply/divide idioms.
	partner map[int]int
}

// File is the register file of one code generation run.
type File struct {
	classes map[string]*classState
	clock   int64

	// Allocation-activity accounting since the last ResetStats: the raw
	// material of the register-pressure and eviction metrics. live counts
	// busy managed registers right now; the rest accumulate per run.
	live      int
	peakLive  int
	allocs    int64
	evictions int64
}

// RunStats reports the register file's allocation activity since the
// last ResetStats.
type RunStats struct {
	Allocs    int64 // registers allocated by using/need (pairs count both members)
	Evictions int64 // need displacements the caller materialized as moves
	PeakLive  int   // maximum simultaneously busy managed registers
	Live      int   // busy managed registers right now
}

// RunStats returns the activity counters.
func (f *File) RunStats() RunStats {
	return RunStats{Allocs: f.allocs, Evictions: f.evictions, PeakLive: f.peakLive, Live: f.live}
}

// ResetStats zeroes the activity counters. Reset deliberately does not:
// blocked-parse recovery resets the file mid-translation, and the
// run's statistics must survive it.
func (f *File) ResetStats() {
	f.live, f.peakLive, f.allocs, f.evictions = 0, 0, 0, 0
}

// noteAlloc records one free->busy transition made on behalf of the
// translation (an allocation, not an eviction transfer).
func (f *File) noteAlloc() {
	f.live++
	f.allocs++
	if f.live > f.peakLive {
		f.peakLive = f.live
	}
}

// noteFree records one busy->free transition.
func (f *File) noteFree() {
	if f.live > 0 {
		f.live--
	}
}

// New builds a register file from class descriptions.
func New(classes []Class) (*File, error) {
	f := &File{classes: make(map[string]*classState)}
	for _, c := range classes {
		if _, dup := f.classes[c.Name]; dup {
			return nil, fmt.Errorf("regalloc: class %q declared twice", c.Name)
		}
		cs := &classState{f: f, spec: c, regs: make(map[int]*regState)}
		if !c.Pair && !c.Flag {
			for _, n := range c.Regs {
				cs.regs[n] = &regState{}
			}
			for _, n := range c.Extra {
				if _, dup := cs.regs[n]; dup {
					return nil, fmt.Errorf("regalloc: class %q lists register %d twice", c.Name, n)
				}
				cs.regs[n] = &regState{}
			}
			cs.sortedRegs = append([]int(nil), c.Regs...)
			sort.Ints(cs.sortedRegs)
		}
		f.classes[c.Name] = cs
	}
	for _, cs := range f.classes {
		if cs.spec.Pair {
			under, ok := f.classes[cs.spec.Under]
			if !ok {
				return nil, fmt.Errorf("regalloc: pair class %q names unknown underlying class %q",
					cs.spec.Name, cs.spec.Under)
			}
			if under.spec.Pair || under.spec.Flag {
				return nil, fmt.Errorf("regalloc: pair class %q must build on a plain class", cs.spec.Name)
			}
			cs.under = under
			if under.partner == nil {
				under.partner = make(map[int]int)
			}
			for _, e := range cs.spec.Regs {
				if e%2 != 0 {
					return nil, fmt.Errorf("regalloc: pair class %q lists odd register %d", cs.spec.Name, e)
				}
				under.partner[e] = e + 1
				under.partner[e+1] = e
			}
		}
	}
	return f, nil
}

// Tick advances the global usage index; call once per reduction.
func (f *File) Tick() { f.clock++ }

// Clock returns the current global usage index.
func (f *File) Clock() int64 { return f.clock }

func (f *File) class(name string) (*classState, error) {
	cs, ok := f.classes[name]
	if !ok {
		return nil, fmt.Errorf("regalloc: unknown register class %q", name)
	}
	return cs, nil
}

// HasClass reports whether name is a managed register class.
func (f *File) HasClass(name string) bool {
	_, ok := f.classes[name]
	return ok
}

// Using allocates any free register of the class, least recently used
// first. For pair classes the result is the even member of a free
// even/odd pair; for flag classes it is always 0.
func (f *File) Using(class string) (int, error) {
	cs, err := f.class(class)
	if err != nil {
		return 0, err
	}
	if cs.spec.Flag {
		return 0, nil
	}
	if cs.spec.Pair {
		return f.usingPair(cs)
	}
	n, ok := cs.lruFree()
	if !ok {
		return 0, fmt.Errorf("regalloc: no free register in class %q", class)
	}
	cs.alloc(n, f.clock)
	return n, nil
}

func (f *File) usingPair(cs *classState) (int, error) {
	best, bestStamp := -1, int64(0)
	for _, e := range cs.spec.Regs {
		re, ok1 := cs.under.regs[e]
		ro, ok2 := cs.under.regs[e+1]
		if !ok1 || !ok2 || re.busy || ro.busy {
			continue
		}
		stamp := re.stamp
		if ro.stamp > stamp {
			stamp = ro.stamp
		}
		if best < 0 || stamp < bestStamp {
			best, bestStamp = e, stamp
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("regalloc: no free even/odd pair in class %q", cs.spec.Name)
	}
	cs.under.alloc(best, f.clock)
	cs.under.alloc(best+1, f.clock)
	return best, nil
}

// Need allocates one specific register of the class. If the register is
// busy its contents are transferred to another register of the class —
// evicted reports this, and the returned Move must be materialized by
// the caller as a copy instruction plus a translation-stack rewrite. At
// most one move results from a need: the evictee lands in a free
// register, never displacing a third.
func (f *File) Need(class string, n int) (mv Move, evicted bool, err error) {
	cs, err := f.class(class)
	if err != nil {
		return Move{}, false, err
	}
	if cs.spec.Flag || cs.spec.Pair {
		return Move{}, false, fmt.Errorf("regalloc: need is not supported for %s class %q",
			map[bool]string{true: "pair", false: "flag"}[cs.spec.Pair], class)
	}
	r, ok := cs.regs[n]
	if !ok {
		return Move{}, false, fmt.Errorf("regalloc: register %d is not managed in class %q", n, class)
	}
	if r.busy {
		to, ok := cs.lruFree()
		if !ok {
			return Move{}, false, fmt.Errorf("regalloc: need %s.%d: no free register to evict into", class, n)
		}
		dst := cs.regs[to]
		dst.busy, dst.uses, dst.stamp = true, r.uses, f.clock
		r.busy, r.uses = false, 0
		// The contents moved rather than a register being freed or newly
		// allocated, so live is unchanged; only the eviction is counted.
		f.evictions++
		mv, evicted = Move{Class: class, From: n, To: to}, true
	}
	cs.alloc(n, f.clock)
	return mv, evicted, nil
}

// lruFree returns the best free using-allocatable register: registers
// that do not break up a free even/odd pair come first (those without a
// pair mate, or whose mate is busy), least recently used within each
// preference tier.
func (cs *classState) lruFree() (int, bool) {
	best, found := -1, false
	bestCost := 0
	var bestStamp int64
	for _, n := range cs.sortedRegs {
		r := cs.regs[n]
		if r == nil || r.busy {
			continue
		}
		cost := 0
		if mate, paired := cs.partner[n]; paired {
			if mr := cs.regs[mate]; mr != nil && !mr.busy {
				cost = 1 // allocating n would break a whole free pair
			}
		}
		if !found || cost < bestCost || cost == bestCost && r.stamp < bestStamp {
			best, bestCost, bestStamp, found = n, cost, r.stamp, true
		}
	}
	return best, found
}

func (cs *classState) alloc(n int, clock int64) {
	r := cs.regs[n]
	r.busy = true
	r.uses = 1
	r.stamp = clock
	cs.f.noteAlloc()
}

// Managed reports whether register n of the class is under allocator
// control (base and reserved registers are not).
func (f *File) Managed(class string, n int) bool {
	cs, ok := f.classes[class]
	if !ok || cs.spec.Flag {
		return false
	}
	if cs.spec.Pair {
		cs = cs.under
	}
	_, ok = cs.regs[n]
	return ok
}

func (f *File) state(class string, n int) *regState {
	cs, ok := f.classes[class]
	if !ok || cs.spec.Flag {
		return nil
	}
	if cs.spec.Pair {
		cs = cs.under
	}
	return cs.regs[n]
}

// IncUse adds a pending use to an allocated register (the LHS prefixed to
// the input stream, or additional common-subexpression uses).
func (f *File) IncUse(class string, n, by int) {
	if r := f.state(class, n); r != nil && r.busy {
		r.uses += by
	}
}

// DecUse consumes one use; the register is freed when no uses remain.
// Unmanaged registers are ignored. Reports whether the register was freed.
func (f *File) DecUse(class string, n int) bool {
	r := f.state(class, n)
	if r == nil || !r.busy {
		return false
	}
	r.uses--
	if r.uses <= 0 {
		r.busy = false
		r.uses = 0
		f.noteFree()
		return true
	}
	return false
}

// FreePair releases both members of an even/odd pair.
func (f *File) FreePair(class string, even int) error {
	cs, err := f.class(class)
	if err != nil {
		return err
	}
	if !cs.spec.Pair {
		return fmt.Errorf("regalloc: class %q is not a pair class", class)
	}
	for _, n := range []int{even, even + 1} {
		if r := cs.under.regs[n]; r != nil {
			if r.busy {
				f.noteFree()
			}
			r.busy, r.uses = false, 0
		}
	}
	return nil
}

// ConvertOdd releases the even member of a pair and leaves the odd member
// allocated in the underlying class with one use: the push_odd idiom of
// integer multiplication and division (paper section 4.3).
func (f *File) ConvertOdd(class string, even int) (int, error) {
	cs, err := f.class(class)
	if err != nil {
		return 0, err
	}
	if !cs.spec.Pair {
		return 0, fmt.Errorf("regalloc: class %q is not a pair class", class)
	}
	if r := cs.under.regs[even]; r != nil {
		if r.busy {
			f.noteFree()
		}
		r.busy, r.uses = false, 0
	}
	odd := cs.under.regs[even+1]
	if odd == nil {
		return 0, fmt.Errorf("regalloc: register %d is not managed in class %q", even+1, cs.spec.Under)
	}
	if !odd.busy {
		f.noteAlloc()
	}
	odd.busy, odd.uses, odd.stamp = true, 1, f.clock
	return even + 1, nil
}

// ConvertEven is the push_even analogue: the odd member is released and
// the even member survives.
func (f *File) ConvertEven(class string, even int) (int, error) {
	cs, err := f.class(class)
	if err != nil {
		return 0, err
	}
	if !cs.spec.Pair {
		return 0, fmt.Errorf("regalloc: class %q is not a pair class", class)
	}
	if r := cs.under.regs[even+1]; r != nil {
		if r.busy {
			f.noteFree()
		}
		r.busy, r.uses = false, 0
	}
	ev := cs.under.regs[even]
	if ev == nil {
		return 0, fmt.Errorf("regalloc: register %d is not managed in class %q", even, cs.spec.Under)
	}
	if !ev.busy {
		f.noteAlloc()
	}
	ev.busy, ev.uses, ev.stamp = true, 1, f.clock
	return even, nil
}

// Touch stamps the register with the current usage index; the `modifies`
// semantic operator routes here so that recently changed registers are
// allocated last.
func (f *File) Touch(class string, n int) {
	if r := f.state(class, n); r != nil {
		r.stamp = f.clock
	}
}

// Busy reports whether register n of the class is allocated.
func (f *File) Busy(class string, n int) bool {
	r := f.state(class, n)
	return r != nil && r.busy
}

// Uses returns the outstanding use count of register n.
func (f *File) Uses(class string, n int) int {
	if r := f.state(class, n); r != nil {
		return r.uses
	}
	return 0
}

// FreeCount returns the number of free using-allocatable registers of the
// class (pairs count free pairs).
func (f *File) FreeCount(class string) int {
	cs, ok := f.classes[class]
	if !ok || cs.spec.Flag {
		return 0
	}
	n := 0
	if cs.spec.Pair {
		for _, e := range cs.spec.Regs {
			re, ro := cs.under.regs[e], cs.under.regs[e+1]
			if re != nil && ro != nil && !re.busy && !ro.busy {
				n++
			}
		}
		return n
	}
	for _, r := range cs.spec.Regs {
		if st := cs.regs[r]; st != nil && !st.busy {
			n++
		}
	}
	return n
}

// Reset frees every register; use between compilation units (and by
// blocked-parse recovery mid-unit — which is why the activity counters
// survive, cleared separately by ResetStats).
func (f *File) Reset() {
	f.clock = 0
	f.live = 0
	for _, cs := range f.classes {
		for _, r := range cs.regs {
			*r = regState{}
		}
	}
}
