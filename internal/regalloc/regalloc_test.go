package regalloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newFile(t testing.TB) *File {
	t.Helper()
	f, err := New([]Class{
		{Name: "r", Regs: []int{1, 2, 3, 4, 5, 6, 7, 8, 9}, Extra: []int{14, 15}},
		{Name: "dbl", Pair: true, Under: "r", Regs: []int{2, 4, 6, 8}},
		{Name: "f", Regs: []int{0, 2, 4, 6}},
		{Name: "cc", Flag: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigErrors(t *testing.T) {
	cases := [][]Class{
		{{Name: "r"}, {Name: "r"}},                                                              // duplicate class
		{{Name: "dbl", Pair: true, Under: "nope", Regs: []int{2}}},                              // unknown under
		{{Name: "r", Regs: []int{1, 1}}},                                                        // hmm: duplicate register
		{{Name: "r", Regs: []int{2, 3}}, {Name: "dbl", Pair: true, Under: "r", Regs: []int{3}}}, // odd pair base
	}
	for i, cs := range cases {
		if _, err := New(cs); err == nil {
			// Case 2 (duplicate within Regs) is not detected; only
			// Regs/Extra overlap is. Skip it explicitly.
			if i == 2 {
				continue
			}
			t.Errorf("case %d: New succeeded, want error", i)
		}
	}
}

func TestUsingPrefersPairPreserving(t *testing.T) {
	f := newFile(t)
	// r1 has no pair mate: it must be allocated first.
	n, err := f.Using("r")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("first allocation = r%d, want r1 (it breaks no pair)", n)
	}
	// The next allocations must avoid breaking whole free pairs until
	// singles run out: r9 is the mate of r8 (pair 8/9), so after r1 the
	// allocator picks a register whose mate is busy — none yet — or the
	// LRU free one among pair members.
	seen := map[int]bool{1: true}
	for i := 0; i < 8; i++ {
		n, err := f.Using("r")
		if err != nil {
			t.Fatal(err)
		}
		if seen[n] {
			t.Fatalf("register r%d allocated twice", n)
		}
		seen[n] = true
	}
	if _, err := f.Using("r"); err == nil {
		t.Error("10th allocation should fail: the class has 9 using-registers")
	}
}

func TestPairSurvivesSingles(t *testing.T) {
	f := newFile(t)
	// Allocate three singles; a whole pair must remain.
	for i := 0; i < 3; i++ {
		if _, err := f.Using("r"); err != nil {
			t.Fatal(err)
		}
	}
	e, err := f.Using("dbl")
	if err != nil {
		t.Fatalf("no pair left after three singles: %v", err)
	}
	if e%2 != 0 {
		t.Fatalf("pair base r%d is odd", e)
	}
	if !f.Busy("r", e) || !f.Busy("r", e+1) {
		t.Error("pair members not both busy")
	}
}

func TestLRUOrder(t *testing.T) {
	f := newFile(t)
	a, _ := f.Using("r")
	f.Tick()
	b, _ := f.Using("r")
	f.Tick()
	// Free a then b; a has the older stamp and must come back first.
	f.DecUse("r", a)
	f.Tick()
	f.DecUse("r", b)
	f.Tick()
	got, err := f.Using("r")
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Errorf("LRU allocation = r%d, want r%d (older stamp)", got, a)
	}
}

func TestTouchChangesLRU(t *testing.T) {
	f := newFile(t)
	f.Using("r") // r1, the only pair-free register, leaves the pool
	a, _ := f.Using("r")
	f.Tick()
	b, _ := f.Using("r")
	f.Tick()
	// a and b are both pair members (same preference tier), so the LRU
	// stamp decides between them.
	f.DecUse("r", a)
	f.DecUse("r", b)
	f.Tick()
	f.Touch("r", a) // `modifies`: a becomes most recently changed
	// The touched register must be allocated after every other free
	// register of its tier ("the register with the lowest usage index
	// was changed at a time previous to all other registers").
	var order []int
	for {
		n, err := f.Using("r")
		if err != nil {
			break
		}
		order = append(order, n)
	}
	posA, posB := -1, -1
	for i, n := range order {
		if n == a {
			posA = i
		}
		if n == b {
			posB = i
		}
	}
	if posA == -1 || posB == -1 || posA < posB {
		t.Errorf("allocation order %v: touched r%d must come after r%d", order, a, b)
	}
	if posA != len(order)-1 {
		t.Errorf("allocation order %v: touched r%d must come last", order, a)
	}
}

func TestNeedFree(t *testing.T) {
	f := newFile(t)
	mv, evicted, err := f.Need("r", 14)
	if err != nil {
		t.Fatal(err)
	}
	if evicted {
		t.Errorf("need of a free register produced a move: %v", mv)
	}
	if !f.Busy("r", 14) {
		t.Error("r14 not busy after need")
	}
}

func TestNeedEvicts(t *testing.T) {
	f := newFile(t)
	var got int
	for {
		n, err := f.Using("r")
		if err != nil {
			t.Fatal(err)
		}
		if n == 5 {
			got = n
			break
		}
	}
	f.IncUse("r", got, 2) // three outstanding uses
	mv, evicted, err := f.Need("r", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !evicted || mv.From != 5 {
		t.Fatalf("evicted=%v move=%v", evicted, mv)
	}
	to := mv.To
	if f.Uses("r", to) != 3 {
		t.Errorf("evicted register carries %d uses, want 3", f.Uses("r", to))
	}
	if f.Uses("r", 5) != 1 {
		t.Errorf("needed register has %d uses, want 1", f.Uses("r", 5))
	}
}

func TestNeedUnmanaged(t *testing.T) {
	f := newFile(t)
	if _, _, err := f.Need("r", 13); err == nil {
		t.Error("need of the base register r13 must fail: it is not managed")
	}
	if _, _, err := f.Need("cc", 0); err == nil {
		t.Error("need of a flag class must fail")
	}
}

func TestUseCounts(t *testing.T) {
	f := newFile(t)
	n, _ := f.Using("r")
	f.IncUse("r", n, 2)
	if freed := f.DecUse("r", n); freed {
		t.Error("freed with outstanding uses")
	}
	if freed := f.DecUse("r", n); freed {
		t.Error("freed with one outstanding use")
	}
	if freed := f.DecUse("r", n); !freed {
		t.Error("not freed at zero uses")
	}
	if f.Busy("r", n) {
		t.Error("busy after free")
	}
	// Unmanaged registers are ignored.
	if freed := f.DecUse("r", 13); freed {
		t.Error("DecUse of r13 claimed to free it")
	}
}

func TestConvertOddEven(t *testing.T) {
	f := newFile(t)
	e, err := f.Using("dbl")
	if err != nil {
		t.Fatal(err)
	}
	odd, err := f.ConvertOdd("dbl", e)
	if err != nil {
		t.Fatal(err)
	}
	if odd != e+1 {
		t.Errorf("ConvertOdd = r%d, want r%d", odd, e+1)
	}
	if f.Busy("r", e) {
		t.Error("even member still busy after ConvertOdd")
	}
	if !f.Busy("r", odd) || f.Uses("r", odd) != 1 {
		t.Error("odd member not alive with one use")
	}

	e2, err := f.Using("dbl")
	if err != nil {
		t.Fatal(err)
	}
	even, err := f.ConvertEven("dbl", e2)
	if err != nil {
		t.Fatal(err)
	}
	if even != e2 || f.Busy("r", e2+1) {
		t.Error("ConvertEven kept the wrong member")
	}
}

func TestFreePair(t *testing.T) {
	f := newFile(t)
	e, _ := f.Using("dbl")
	if err := f.FreePair("dbl", e); err != nil {
		t.Fatal(err)
	}
	if f.Busy("r", e) || f.Busy("r", e+1) {
		t.Error("pair members busy after FreePair")
	}
	if err := f.FreePair("r", 2); err == nil {
		t.Error("FreePair of a plain class must fail")
	}
}

func TestFlagClass(t *testing.T) {
	f := newFile(t)
	for i := 0; i < 10; i++ {
		n, err := f.Using("cc")
		if err != nil || n != 0 {
			t.Fatalf("cc allocation %d: %v %d", i, err, n)
		}
	}
	if f.Managed("cc", 0) {
		t.Error("flag class reports managed registers")
	}
}

func TestFreeCountAndReset(t *testing.T) {
	f := newFile(t)
	if f.FreeCount("r") != 9 || f.FreeCount("dbl") != 4 {
		t.Fatalf("initial free counts: r=%d dbl=%d", f.FreeCount("r"), f.FreeCount("dbl"))
	}
	f.Using("r")
	f.Using("dbl")
	if f.FreeCount("r") != 6 {
		t.Errorf("free r = %d, want 6", f.FreeCount("r"))
	}
	f.Reset()
	if f.FreeCount("r") != 9 || f.Clock() != 0 {
		t.Error("Reset did not restore the file")
	}
}

func TestUnknownClass(t *testing.T) {
	f := newFile(t)
	if _, err := f.Using("q"); err == nil {
		t.Error("Using of unknown class succeeded")
	}
	if _, _, err := f.Need("q", 1); err == nil {
		t.Error("Need of unknown class succeeded")
	}
	if f.HasClass("q") || !f.HasClass("r") {
		t.Error("HasClass wrong")
	}
}

// TestQuickNoDoubleOwnership drives random operation sequences and
// checks the central invariant: a register is never allocated twice
// without an intervening free, and free counts stay consistent.
func TestQuickNoDoubleOwnership(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		file, err := New([]Class{
			{Name: "r", Regs: []int{1, 2, 3, 4, 5, 6, 7, 8, 9}, Extra: []int{14, 15}},
			{Name: "dbl", Pair: true, Under: "r", Regs: []int{2, 4, 6, 8}},
		})
		if err != nil {
			return false
		}
		owned := map[int]bool{} // members of "r" currently allocated
		var pairs []int
		var singles []int
		for op := 0; op < 200; op++ {
			file.Tick()
			switch r.Intn(5) {
			case 0: // using single
				n, err := file.Using("r")
				if err == nil {
					if owned[n] {
						return false // double allocation
					}
					owned[n] = true
					singles = append(singles, n)
				}
			case 1: // using pair
				e, err := file.Using("dbl")
				if err == nil {
					if owned[e] || owned[e+1] {
						return false
					}
					owned[e], owned[e+1] = true, true
					pairs = append(pairs, e)
				}
			case 2: // free a single
				if len(singles) > 0 {
					i := r.Intn(len(singles))
					n := singles[i]
					singles = append(singles[:i], singles[i+1:]...)
					if !file.DecUse("r", n) {
						return false
					}
					delete(owned, n)
				}
			case 3: // free a pair
				if len(pairs) > 0 {
					i := r.Intn(len(pairs))
					e := pairs[i]
					pairs = append(pairs[:i], pairs[i+1:]...)
					if err := file.FreePair("dbl", e); err != nil {
						return false
					}
					delete(owned, e)
					delete(owned, e+1)
				}
			case 4: // convert a pair to its odd member
				if len(pairs) > 0 {
					i := r.Intn(len(pairs))
					e := pairs[i]
					pairs = append(pairs[:i], pairs[i+1:]...)
					odd, err := file.ConvertOdd("dbl", e)
					if err != nil || odd != e+1 {
						return false
					}
					delete(owned, e)
					singles = append(singles, odd)
				}
			}
			// Cross-check free count: 9 using-allocatable minus owned
			// among them (14/15 are extra and never allocated here).
			want := 9
			for n := range owned {
				if n >= 1 && n <= 9 {
					want--
				}
			}
			if got := file.FreeCount("r"); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
