package ir

// Operator names of the intermediate form. These mirror the $Operators
// section of the Amdahl 470 specification (Appendix 2 of the paper); the
// front end and the shaper emit exactly these names, and code generator
// specifications declare the subset they can translate.
const (
	// Addressing and data-type operators. The unary type operators give
	// the code generator access to the storage format of every operand
	// (paper section 4.5).
	OpAddr     = "addr"
	OpFullword = "fullword"
	OpHalfword = "hlfword"
	OpByteword = "byteword"
	OpTypeword = "typeword"
	OpRealword = "realword"
	OpDblreal  = "dblrealword"
	OpQuadreal = "quadrealword"

	// Integer arithmetic.
	OpIAdd     = "iadd"
	OpISub     = "isub"
	OpIMult    = "imult"
	OpIDiv     = "idiv"
	OpIMod     = "imod"
	OpICompare = "icompare"
	OpIAbs     = "iabs"
	OpIMax     = "imax"
	OpIMin     = "imin"
	OpIOdd     = "iodd"
	OpINeg     = "ineg"

	// Shifts.
	OpLShift = "l_shift"
	OpRShift = "r_shift"

	// Assignment and data transfer.
	OpAssign      = "assign"
	OpLongAssign  = "long_assign"
	OpVarAssign   = "var_assign"
	OpClear       = "clear"
	OpDecr        = "decr"
	OpIncr        = "incr"
	OpPosConstant = "pos_constant"
	OpNegConstant = "neg_constant"

	// Statement bookkeeping and runtime checks.
	OpAbortOp        = "abort_op"
	OpStatement      = "statement"
	OpCaseCheck      = "case_check"
	OpUninitCheck    = "uninit_check"
	OpRangeCheck     = "range_check"
	OpSubscriptCheck = "subscript_check"

	// Boolean operators.
	OpBoolOr   = "boolean_or"
	OpBoolAnd  = "boolean_and"
	OpBoolNot  = "boolean_not"
	OpBoolTest = "boolean_test"

	// Set (bitset) operators with inline code generation.
	OpTestBit  = "test_bit_value"
	OpSetBit   = "set_bit_value"
	OpStoreBit = "store_bit_value"
	OpClearBit = "clear_bit_value"
	OpLoadBit  = "load_bit_value"

	// Real (floating point) arithmetic.
	OpRAdd     = "radd"
	OpRSub     = "rsub"
	OpRMult    = "rmult"
	OpRDiv     = "rdiv"
	OpRAbs     = "rabs"
	OpRNeg     = "rneg"
	OpRCompare = "rcompare"
	OpHalve    = "halve"
	OpRMin     = "rmin"
	OpRMax     = "rmax"

	// Precision conversions (single/double/extended, integer/real).
	OpSXCnvrt = "s_x_cnvrt"
	OpXSCnvrt = "x_s_cnvrt"
	OpDXCnvrt = "d_x_cnvrt"
	OpXDCnvrt = "x_d_cnvrt"
	OpSDCnvrt = "s_d_cnvrt"
	OpDSCnvrt = "d_s_cnvrt"
	OpISCnvrt = "i_s_cnvrt"
	OpSICnvrt = "s_i_cnvrt"

	// Control flow.
	OpBranchOp   = "branch_op"
	OpLabelDef   = "label_def"
	OpLabelIndex = "label_index"
	OpCaseIndex  = "case_index"

	// Procedure linkage.
	OpProcCall  = "procedure_call"
	OpProcEntry = "procedure_entry"
	OpProcExit  = "procedure_exit"
	OpNameParam = "name_param"

	// Common subexpressions (paper section 4.4). The IF optimizer wraps
	// the first occurrence of a repeated subtree in make_common and
	// replaces later occurrences with use_common.
	OpMakeCommon = "make_common"
	OpUseCommon  = "use_common"
)

// Terminal symbol names: value-carrying leaves installed by the shaper.
// These mirror the $Terminals section of the specification.
const (
	TermDsp   = "dsp"   // displacement from a base register
	TermLng   = "lng"   // length of a storage-to-storage move
	TermCnt   = "cnt"   // count (parameters, CSE uses)
	TermLbl   = "lbl"   // label number
	TermCond  = "cond"  // branch condition mask
	TermErr   = "error" // abort code
	TermStmt  = "stmt"  // source statement number
	TermElmnt = "elmnt" // constant set element (bit mask within a byte)
	TermValue = "v"     // immediate constant to be loaded
	TermCse   = "cse"   // common subexpression number
)

// Nonterminal symbol names: register classes managed by the register
// allocation routine. These appear in the token stream only when the code
// generator prefixes a reduced LHS back onto its input.
const (
	NTReg    = "r"   // general purpose register
	NTDbl    = "dbl" // even/odd general register pair
	NTFreg   = "f"   // floating point register
	NTCC     = "cc"  // condition code (set by a comparison)
	NTLambda = "lambda"
)

// valued records which symbol names carry a semantic value in the token
// stream, for printing and parsing the textual IF notation.
var valued = map[string]bool{
	TermDsp: true, TermLng: true, TermCnt: true, TermLbl: true,
	TermCond: true, TermErr: true, TermStmt: true, TermElmnt: true,
	TermValue: true, TermCse: true,
	NTReg: true, NTDbl: true, NTFreg: true, NTCC: true,
}

// Valued reports whether tokens with the given symbol name carry a
// semantic value in the textual notation.
func Valued(sym string) bool { return valued[sym] }

// RegisterValued marks an additional symbol name as value carrying; code
// generator specifications may declare terminals beyond the standard set.
func RegisterValued(sym string) { valued[sym] = true }
