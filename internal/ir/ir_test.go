package ir

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Sym: "iadd"}, "iadd"},
		{Token{Sym: "dsp", Val: 100}, "dsp.100"},
		{Token{Sym: "r", Val: 13}, "r.13"},
		{Token{Sym: "dsp", Val: 0}, "dsp.0"}, // valued symbols keep .0
		{Token{Sym: "lbl", Val: -3}, "lbl.-3"},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.tok, got, c.want)
		}
	}
}

func TestParseTokensRoundTrip(t *testing.T) {
	src := "assign fullword dsp.100 r.13 iadd fullword dsp.100 r.13 fullword dsp.104 r.13"
	toks, err := ParseTokens(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 11 {
		t.Fatalf("got %d tokens, want 11", len(toks))
	}
	if toks[2] != (Token{Sym: "dsp", Val: 100}) {
		t.Errorf("token 2 = %v", toks[2])
	}
	if got := FormatTokens(toks); got != src {
		t.Errorf("round trip:\n got %q\nwant %q", got, src)
	}
}

func TestParseTokensEmptyAndWhitespace(t *testing.T) {
	toks, err := ParseTokens("  \n\t ")
	if err != nil || len(toks) != 0 {
		t.Fatalf("whitespace input: %v, %d tokens", err, len(toks))
	}
}

func TestTreeBuildAndString(t *testing.T) {
	n := N("assign",
		N("fullword", V("dsp", 100), V("r", 13)),
		N("iadd",
			N("fullword", V("dsp", 100), V("r", 13)),
			N("fullword", V("dsp", 104), V("r", 13))))
	want := "assign(fullword(dsp.100, r.13), iadd(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))"
	if got := n.String(); got != want {
		t.Errorf("String:\n got %s\nwant %s", got, want)
	}
	if n.Size() != 11 {
		t.Errorf("Size = %d, want 11", n.Size())
	}
}

func TestLinearizePrefixOrder(t *testing.T) {
	n := N("iadd", N("fullword", V("dsp", 4), V("r", 13)), V("r", 2))
	toks := n.Linearize(nil)
	want := "iadd fullword dsp.4 r.13 r.2"
	if got := FormatTokens(toks); got != want {
		t.Errorf("linearize = %q, want %q", got, want)
	}
}

func TestParseTreeRoundTrip(t *testing.T) {
	src := "assign(fullword(dsp.100, r.13), iadd(fullword(dsp.100, r.13), r.2))"
	n, err := ParseTree(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.String(); got != src {
		t.Errorf("round trip:\n got %s\nwant %s", got, src)
	}
}

func TestParseTreesMultiple(t *testing.T) {
	ns, err := ParseTrees("iadd(r.1, r.2)  isub(r.3, r.4)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 || ns[0].Op != "iadd" || ns[1].Op != "isub" {
		t.Fatalf("got %v", ns)
	}
}

func TestParseTreeErrors(t *testing.T) {
	for _, bad := range []string{
		"iadd(r.1",        // unterminated
		"iadd(r.1 r.2)",   // missing comma
		"",                // empty
		"iadd(r.1,) r",    // empty argument then trailing
		"iadd(r.1, r.2))", // extra close
	} {
		if _, err := ParseTree(bad); err == nil {
			t.Errorf("ParseTree(%q) succeeded, want error", bad)
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	n := N("iadd", N("fullword", V("dsp", 4), V("r", 13)), V("r", 2))
	c := n.Clone()
	if !n.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Kids[0].Kids[0].Val = 8
	if n.Equal(c) {
		t.Fatal("mutation of clone affected equality")
	}
	if n.Kids[0].Kids[0].Val != 4 {
		t.Fatal("clone shares structure with original")
	}
}

func TestProgramLinearize(t *testing.T) {
	p := &Program{Name: "x", Stmts: []*Node{
		N("label_def", V("lbl", 1)),
		N("branch_op", V("lbl", 1)),
	}}
	if got := FormatTokens(p.Linearize()); got != "label_def lbl.1 branch_op lbl.1" {
		t.Errorf("program linearize = %q", got)
	}
	if !strings.Contains(p.String(), "label_def(lbl.1)") {
		t.Errorf("program string = %q", p.String())
	}
}

// randomTree builds a random IF tree for the round-trip property.
func randomTree(r *rand.Rand, depth int) *Node {
	ops := []string{"iadd", "isub", "imult", "fullword", "hlfword", "assign"}
	leaves := []string{"dsp", "v", "lbl", "cnt", "r"}
	if depth == 0 || r.Intn(3) == 0 {
		return V(leaves[r.Intn(len(leaves))], int64(r.Intn(4096)))
	}
	n := &Node{Op: ops[r.Intn(len(ops))]}
	for i := 0; i < 1+r.Intn(3); i++ {
		n.Kids = append(n.Kids, randomTree(r, depth-1))
	}
	return n
}

// TestQuickTreeStringRoundTrip: parsing a printed tree reproduces it.
func TestQuickTreeStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 4)
		m, err := ParseTree(n.String())
		return err == nil && n.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickTokenRoundTrip: formatting then parsing a token stream
// reproduces it (for valued symbol names).
func TestQuickTokenRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 3)
		toks := n.Linearize(nil)
		parsed, err := ParseTokens(FormatTokens(toks))
		return err == nil && reflect.DeepEqual(toks, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickLinearizeSize: the token stream length equals the node count.
func TestQuickLinearizeSize(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomTree(r, 4)
		return len(n.Linearize(nil)) == n.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
