// Package ir defines the intermediate form (IF) consumed by table-driven
// code generators produced by CoGG.
//
// The front end of the compiler builds IF trees; the shaper resolves
// addresses and linearizes each statement tree into prefix (Polish) order.
// The code generator then parses the linear token stream bottom-up,
// reducing subtrees that correspond to valid target computations.
//
// Two representations are provided:
//
//   - Node: an IF tree, as built by the front end and the IF optimizer.
//   - Token: one element of the linearized prefix stream, as consumed by
//     the generated code generator.
//
// Every token carries a symbol name and an optional semantic value.
// Operators (iadd, fullword, assign, ...) carry no value; terminals
// (dsp, cnt, lbl, cse, ...) carry the value installed by the shaper; and
// nonterminal tokens (r, dbl, cc, ...) appear only when the code generator
// prefixes a reduced left-hand side back onto its input stream.
package ir

import (
	"fmt"
	"strings"
)

// Token is one element of the linearized prefix IF.
type Token struct {
	Sym string // symbol name: operator, value-carrying terminal, or nonterminal
	Val int64  // semantic value for terminals (displacement, count, label, ...)
}

// String renders the token in the textual IF notation: bare operators
// print as their name, valued symbols print as "name.value".
func (t Token) String() string {
	if t.Val == 0 && !Valued(t.Sym) {
		return t.Sym
	}
	return fmt.Sprintf("%s.%d", t.Sym, t.Val)
}

// Node is an IF tree node. Leaves are value-carrying terminals or
// register designators; interior nodes are operators.
type Node struct {
	Op   string
	Val  int64
	Kids []*Node
}

// N builds an operator node.
func N(op string, kids ...*Node) *Node { return &Node{Op: op, Kids: kids} }

// V builds a value-carrying leaf, such as a displacement or a count.
func V(sym string, val int64) *Node { return &Node{Op: sym, Val: val} }

// Clone returns a deep copy of the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Op: n.Op, Val: n.Val}
	if len(n.Kids) > 0 {
		c.Kids = make([]*Node, len(n.Kids))
		for i, k := range n.Kids {
			c.Kids[i] = k.Clone()
		}
	}
	return c
}

// Equal reports whether two trees are structurally identical.
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Op != m.Op || n.Val != m.Val || len(n.Kids) != len(m.Kids) {
		return false
	}
	for i := range n.Kids {
		if !n.Kids[i].Equal(m.Kids[i]) {
			return false
		}
	}
	return true
}

// Size returns the number of nodes in the tree.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, k := range n.Kids {
		s += k.Size()
	}
	return s
}

// Linearize appends the prefix-order token stream for the tree to dst and
// returns the extended slice.
func (n *Node) Linearize(dst []Token) []Token {
	if n == nil {
		return dst
	}
	dst = append(dst, Token{Sym: n.Op, Val: n.Val})
	for _, k := range n.Kids {
		dst = k.Linearize(dst)
	}
	return dst
}

// String renders the tree in functional notation, e.g.
// "iadd(fullword(dsp.100, r.13), r.2)".
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	if n == nil {
		b.WriteString("<nil>")
		return
	}
	b.WriteString(n.Op)
	if n.Val != 0 || (len(n.Kids) == 0 && Valued(n.Op)) {
		fmt.Fprintf(b, ".%d", n.Val)
	}
	if len(n.Kids) > 0 {
		b.WriteByte('(')
		for i, k := range n.Kids {
			if i > 0 {
				b.WriteString(", ")
			}
			k.write(b)
		}
		b.WriteByte(')')
	}
}

// Program is a sequence of shaped statement trees for one compilation unit.
type Program struct {
	Name  string
	Stmts []*Node
}

// Linearize returns the concatenated prefix token stream for all statements.
func (p *Program) Linearize() []Token {
	var out []Token
	for _, s := range p.Stmts {
		out = s.Linearize(out)
	}
	return out
}

// String renders each statement tree on its own line.
func (p *Program) String() string {
	var b strings.Builder
	for _, s := range p.Stmts {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTokens renders a token stream as a single line of text that
// ParseTokens can read back.
func FormatTokens(toks []Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}
