package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseTokens reads the linear textual IF notation: whitespace-separated
// tokens, each either a bare symbol name ("iadd") or "name.value"
// ("dsp.100"). It is the inverse of FormatTokens.
func ParseTokens(src string) ([]Token, error) {
	fields := strings.Fields(src)
	out := make([]Token, 0, len(fields))
	for _, f := range fields {
		t, err := parseTokenText(f)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func parseTokenText(f string) (Token, error) {
	if i := strings.LastIndexByte(f, '.'); i >= 0 {
		if v, err := strconv.ParseInt(f[i+1:], 10, 64); err == nil {
			return Token{Sym: f[:i], Val: v}, nil
		}
	}
	if f == "" {
		return Token{}, fmt.Errorf("ir: empty token")
	}
	return Token{Sym: f}, nil
}

// ParseTree reads the functional tree notation produced by Node.String,
// e.g. "assign(fullword(dsp.100, r.13), iadd(r.1, r.2))". Multiple
// whitespace-separated trees may follow one another; ParseTree reads one.
func ParseTree(src string) (*Node, error) {
	p := &treeParser{src: src}
	n, err := p.node()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("ir: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return n, nil
}

// ParseTrees reads a sequence of trees, one statement per tree.
func ParseTrees(src string) ([]*Node, error) {
	p := &treeParser{src: src}
	var out []*Node
	for {
		p.skipSpace()
		if p.pos == len(p.src) {
			return out, nil
		}
		n, err := p.node()
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
}

type treeParser struct {
	src string
	pos int
}

func (p *treeParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *treeParser) node() (*Node, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' || c == ')' || c == ',' || unicode.IsSpace(rune(c)) {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("ir: expected symbol at offset %d", p.pos)
	}
	tok, err := parseTokenText(p.src[start:p.pos])
	if err != nil {
		return nil, err
	}
	n := &Node{Op: tok.Sym, Val: tok.Val}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++ // consume '('
		for {
			kid, err := p.node()
			if err != nil {
				return nil, err
			}
			n.Kids = append(n.Kids, kid)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("ir: unterminated argument list for %q", n.Op)
			}
			switch p.src[p.pos] {
			case ',':
				p.pos++
			case ')':
				p.pos++
				return n, nil
			default:
				return nil, fmt.Errorf("ir: expected ',' or ')' at offset %d, found %q", p.pos, p.src[p.pos])
			}
		}
	}
	return n, nil
}
