// Package risc32 is a second target machine for the retargeting
// demonstration: a condition-code-based load/store architecture with
// uniform four-byte instructions and three-operand register arithmetic.
//
// Retargeting the code generator to it required only a new template file
// (specs/risc32.cogg) and this small emission module — no change to
// CoGG, the skeletal parser, or the semantic routines (paper section 6).
// No simulator is provided; the demonstration compares instruction
// sequences and code size.
package risc32

import (
	"fmt"
	"strings"

	"cogg/internal/asm"
)

// opNum assigns encoding numbers to the mnemonics of the specification.
var opNum = map[string]byte{
	"ldw": 0x01, "ldh": 0x02, "ldb": 0x03,
	"stw": 0x04, "sth": 0x05, "stb": 0x06,
	"add": 0x10, "addi": 0x11, "sub": 0x12, "subi": 0x13,
	"mul": 0x14, "divq": 0x15, "rem": 0x16,
	"neg": 0x17, "abs": 0x18,
	"and": 0x20, "or": 0x21, "xor": 0x22, "xori": 0x23,
	"sll": 0x24, "srl": 0x25, "sra": 0x26, "slli": 0x27, "srai": 0x28,
	"cmp": 0x30, "li": 0x31, "mov": 0x32, "max": 0x33, "min": 0x34, "ret": 0x40,
}

const (
	opBranch = 0xE0 // cond in the register field, PC-relative displacement
	opLoadPC = 0xE4 // caseload helper
)

// Machine implements asm.Machine.
type Machine struct{}

var _ asm.Machine = (*Machine)(nil)

// Name implements asm.Machine.
func (m *Machine) Name() string { return "risc32" }

// SizeOf implements asm.Machine: every instruction is four bytes; a case
// dispatch is three of them.
func (m *Machine) SizeOf(in *asm.Instr) (int, error) {
	switch in.Pseudo {
	case asm.LabelMark:
		return 0, nil
	case asm.AddrConst:
		return 4, nil
	case asm.Branch:
		return 4, nil // PC-relative: always the short form
	case asm.CaseLoad:
		return 12, nil
	}
	if _, ok := opNum[in.Op]; !ok {
		return 0, fmt.Errorf("risc32: unknown opcode %q", in.Op)
	}
	return 4, nil
}

// ShortBranchReach implements asm.Machine: 16-bit PC-relative
// displacements cover every module this toolchain builds.
func (m *Machine) ShortBranchReach(p *asm.Program, branchAddr, target int) bool {
	d := target - branchAddr
	return d >= -(1<<15) && d < 1<<15
}

// Encode implements asm.Machine.
func (m *Machine) Encode(p *asm.Program, in *asm.Instr) ([]byte, error) {
	switch in.Pseudo {
	case asm.LabelMark:
		return nil, nil
	case asm.AddrConst:
		addr, err := p.LabelAddr(in.Label)
		if err != nil {
			return nil, err
		}
		return word(uint32(addr)), nil
	case asm.Branch:
		target, err := p.LabelAddr(in.Label)
		if err != nil {
			return nil, err
		}
		d := target - in.Addr
		return []byte{opBranch, byte(in.Cond << 4), byte(d >> 8), byte(d)}, nil
	case asm.CaseLoad:
		// ldw scratch,pool ; add scratch,scratch,index ; ldw scratch,0(scratch) — then
		// the branch is folded into the final load's writeback to PC.
		out := []byte{opLoadPC, byte(in.Scratch << 4), byte(in.PoolIx >> 8), byte(in.PoolIx)}
		out = append(out, opNum["add"], byte(in.Scratch<<4)|byte(in.IndexR), byte(in.Scratch<<4), 0)
		return append(out, opLoadPC|1, byte(in.Scratch<<4)|byte(in.Scratch), 0, 0), nil
	}
	num, ok := opNum[in.Op]
	if !ok {
		return nil, fmt.Errorf("risc32: unknown opcode %q", in.Op)
	}
	out := []byte{num, 0, 0, 0}
	regField := 0
	for _, o := range in.Opds {
		switch o.Kind {
		case asm.Reg:
			if regField < 2 {
				out[1] |= byte(o.Reg << (4 * (1 - regField)))
			} else {
				out[2] |= byte(o.Reg << 4)
			}
			regField++
		case asm.Imm:
			out[2] = byte(o.Val >> 8)
			out[3] = byte(o.Val)
		case asm.Mem:
			if o.Index != 0 {
				return nil, fmt.Errorf("risc32: %s: indexed addressing is not available", in.Op)
			}
			out[1] |= byte(o.Base)
			out[2] = byte(o.Val >> 8)
			out[3] = byte(o.Val)
		default:
			return nil, fmt.Errorf("risc32: %s: unsupported operand kind", in.Op)
		}
	}
	return out, nil
}

func word(v uint32) []byte {
	return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Format implements asm.Machine.
func (m *Machine) Format(in *asm.Instr) string {
	switch in.Pseudo {
	case asm.LabelMark:
		return fmt.Sprintf("L%d:", in.Label)
	case asm.AddrConst:
		return fmt.Sprintf(".word L%d", in.Label)
	case asm.Branch:
		return fmt.Sprintf("b.%d  L%d", in.Cond, in.Label)
	case asm.CaseLoad:
		return fmt.Sprintf("case  L%d[r%d],r%d", in.Label, in.IndexR, in.Scratch)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s ", in.Op)
	for i, o := range in.Opds {
		if i > 0 {
			b.WriteByte(',')
		}
		switch o.Kind {
		case asm.Reg:
			fmt.Fprintf(&b, "r%d", o.Reg)
		case asm.Imm:
			fmt.Fprintf(&b, "%d", o.Val)
		case asm.Mem:
			fmt.Fprintf(&b, "%d(r%d)", o.Val, o.Base)
		}
	}
	return b.String()
}
