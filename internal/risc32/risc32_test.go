package risc32

import (
	"bytes"
	"strings"
	"testing"

	"cogg/internal/asm"
)

func TestUniformSizes(t *testing.T) {
	m := &Machine{}
	for op := range opNum {
		in := asm.Instr{Op: op}
		if n, err := m.SizeOf(&in); err != nil || n != 4 {
			t.Errorf("SizeOf(%s) = %d, %v", op, n, err)
		}
	}
	for _, tc := range []struct {
		in   asm.Instr
		want int
	}{
		{asm.Instr{Pseudo: asm.LabelMark}, 0},
		{asm.Instr{Pseudo: asm.AddrConst}, 4},
		{asm.Instr{Pseudo: asm.Branch}, 4},
		{asm.Instr{Pseudo: asm.CaseLoad}, 12},
	} {
		if n, _ := m.SizeOf(&tc.in); n != tc.want {
			t.Errorf("pseudo size %d, want %d", n, tc.want)
		}
	}
	if _, err := m.SizeOf(&asm.Instr{Op: "bogus"}); err == nil {
		t.Error("unknown opcode sized")
	}
}

func TestEncodeShapes(t *testing.T) {
	m := &Machine{}
	cases := []struct {
		in   asm.Instr
		want []byte
	}{
		{asm.Instr{Op: "add", Opds: []asm.Operand{asm.R(1), asm.R(2), asm.R(3)}},
			[]byte{0x10, 0x12, 0x30, 0x00}},
		{asm.Instr{Op: "ldw", Opds: []asm.Operand{asm.R(4), asm.M(100, 0, 13)}},
			[]byte{0x01, 0x4D, 0x00, 0x64}},
		{asm.Instr{Op: "li", Opds: []asm.Operand{asm.R(2), asm.I(300)}},
			[]byte{0x31, 0x20, 0x01, 0x2C}},
		{asm.Instr{Op: "ret"}, []byte{0x40, 0x00, 0x00, 0x00}},
	}
	for _, c := range cases {
		got, err := m.Encode(nil, &c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in.Op, err)
		}
		if !bytes.Equal(got, c.want) {
			t.Errorf("%s: % X, want % X", c.in.Op, got, c.want)
		}
	}
}

func TestEncodeRejectsIndexing(t *testing.T) {
	m := &Machine{}
	in := asm.Instr{Op: "ldw", Opds: []asm.Operand{asm.R(1), asm.M(0, 2, 13)}}
	if _, err := m.Encode(nil, &in); err == nil {
		t.Error("indexed addressing accepted on a load/store machine")
	}
}

func TestBranchRelative(t *testing.T) {
	m := &Machine{}
	p := asm.NewProgram("T")
	p.Origin = 0x1000
	p.Append(asm.Instr{Pseudo: asm.Branch, Cond: 8, Label: 1})
	p.Instrs[0].Addr = 0x1000
	_ = p.DefineLabel(1, 1)
	p.CodeSize = 4
	b, err := m.Encode(p, &p.Instrs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Displacement = 4 (to the end).
	if b[2] != 0 || b[3] != 4 {
		t.Errorf("branch displacement % X", b)
	}
	if !m.ShortBranchReach(p, 0x1000, 0x1000+30000) {
		t.Error("16-bit displacement should reach 30000 bytes")
	}
	if m.ShortBranchReach(p, 0x1000, 0x1000+40000) {
		t.Error("16-bit displacement cannot reach 40000 bytes")
	}
}

func TestFormat(t *testing.T) {
	m := &Machine{}
	in := asm.Instr{Op: "add", Opds: []asm.Operand{asm.R(1), asm.R(2), asm.R(3)}}
	if got := strings.TrimSpace(m.Format(&in)); got != "add   r1,r2,r3" {
		t.Errorf("Format = %q", got)
	}
	br := asm.Instr{Pseudo: asm.Branch, Cond: 8, Label: 3}
	if got := m.Format(&br); !strings.Contains(got, "L3") {
		t.Errorf("branch format %q", got)
	}
}
