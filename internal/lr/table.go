package lr

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates parse actions.
type Kind uint8

const (
	// Error marks an insignificant table entry: the IF token cannot occur
	// here, and the generated code generator stops and signals an error
	// rather than emitting an incorrect instruction sequence.
	Error Kind = iota
	Shift
	Reduce
	Accept
)

// Action is one packed parse-table entry.
type Action int32

// MkAction packs a kind and target.
func MkAction(k Kind, target int) Action { return Action(int32(k)<<28 | int32(target)) }

// Kind returns the action's kind.
func (a Action) Kind() Kind { return Kind(a >> 28) }

// Target returns the successor state (Shift) or production index (Reduce).
func (a Action) Target() int { return int(a & 0x0FFFFFFF) }

// Pack16 narrows an action to sixteen bits (2-bit kind, 14-bit target)
// for the compressed table's data array. ok is false when the target
// does not fit.
func (a Action) Pack16() (uint16, bool) {
	if a.Target() >= 1<<14 {
		return 0, false
	}
	return uint16(a.Kind())<<14 | uint16(a.Target()), true
}

// Unpack16 widens a 16-bit packed action.
func Unpack16(v uint16) Action { return MkAction(Kind(v>>14), int(v&0x3FFF)) }

func (a Action) String() string {
	switch a.Kind() {
	case Shift:
		return fmt.Sprintf("s%d", a.Target())
	case Reduce:
		return fmt.Sprintf("r%d", a.Target())
	case Accept:
		return "acc"
	default:
		return "."
	}
}

// ConflictKind labels a resolved table conflict.
type ConflictKind uint8

const (
	ShiftReduce ConflictKind = iota
	ReduceReduce
)

// Conflict records one ambiguity resolved during table construction; the
// resolutions implement maximal munch and specification-order preference,
// so conflicts are expected and reported only for diagnostics.
type Conflict struct {
	Kind   ConflictKind
	State  int
	Sym    int
	Chosen Action
	Losers []int // losing production indices
}

// Table is the resolved action table driving the skeletal parser. Its X
// dimension counts only the symbols which can be encountered in the IF
// during a parse (operators, shaper terminals, prefixed-back
// nonterminals, and the end marker); opcodes and constants never reach
// the parser and get no column (entry ii of the paper's Table 1).
type Table struct {
	NumStates int
	NumCols   int // X dimension
	EOF       int // end-marker symbol id: len(grammar symbols)
	Lambda    int

	// ColOf maps a symbol id (or EOF) to its column, -1 for symbols that
	// cannot occur in the IF.
	ColOf []int32

	actions []Action // row-major, NumStates x NumCols

	Conflicts []Conflict
}

// Lookup returns the action for (state, symbol id).
func (t *Table) Lookup(state, sym int) Action {
	col := t.ColOf[sym]
	if col < 0 {
		return MkAction(Error, 0)
	}
	return t.actions[state*t.NumCols+int(col)]
}

// Rows exposes the raw action matrix for packing and serialization.
func (t *Table) Rows() []Action { return t.actions }

// Row returns the action row for one state, indexed by column.
func (t *Table) Row(state int) []Action {
	return t.actions[state*t.NumCols : (state+1)*t.NumCols]
}

// SignificantEntries counts the non-error entries (entry v of Table 1).
func (t *Table) SignificantEntries() int {
	n := 0
	for _, a := range t.actions {
		if a.Kind() != Error {
			n++
		}
	}
	return n
}

// Entries returns the total number of parse table entries (entry iv).
func (t *Table) Entries() int { return len(t.actions) }

// MakeTable resolves the automaton's conflicts and produces the action
// table.
func (a *Automaton) MakeTable() *Table {
	t := &Table{
		NumStates: len(a.States),
		EOF:       a.EOF,
		Lambda:    a.G.Lambda,
		ColOf:     make([]int32, a.NumSymbols()),
	}

	// Assign columns to the symbols encounterable in the IF: everything
	// that appears in some state's shift actions or reduce lookaheads,
	// plus the end marker. The reduce lookaheads of a state are the
	// union of FOLLOW over its completed productions' left sides.
	for i := range t.ColOf {
		t.ColOf[i] = -1
	}
	occurs := NewSymSet(a.NumSymbols())
	for _, s := range a.States {
		for sym, next := range s.Shift {
			if next >= 0 {
				occurs.Add(sym)
			}
		}
		for _, pi := range s.Completed {
			occurs.UnionWith(a.Follow[a.G.Prods[pi].LHS])
		}
	}
	occurs.Add(a.EOF)
	occurs.ForEach(func(sym int) {
		t.ColOf[sym] = int32(t.NumCols)
		t.NumCols++
	})

	t.actions = make([]Action, t.NumStates*t.NumCols)
	// cands collects the reduce candidates per lookahead symbol for one
	// state; candSyms lists the lookaheads touched, for resetting.
	cands := make([][]int, a.NumSymbols())
	candSeen := make([]bool, a.NumSymbols())
	var candSyms []int
	for _, s := range a.States {
		row := t.Row(s.ID)
		for sym, next := range s.Shift {
			if next >= 0 {
				row[t.ColOf[sym]] = MkAction(Shift, int(next))
			}
		}
		// Completed is in ascending production order, so each lookahead's
		// candidate list accumulates sorted — matching the former
		// map-of-sorted-slices representation entry for entry.
		candSyms = candSyms[:0]
		for _, pi := range s.Completed {
			a.Follow[a.G.Prods[pi].LHS].ForEach(func(la int) {
				if !candSeen[la] {
					candSeen[la] = true
					candSyms = append(candSyms, la)
				}
				cands[la] = append(cands[la], int(pi))
			})
		}
		sort.Ints(candSyms)
		for _, sym := range candSyms {
			cs := cands[sym]
			cands[sym] = cs[:0] // reuse capacity unless retained below
			candSeen[sym] = false
			col := t.ColOf[sym]
			if row[col].Kind() == Shift {
				// Shift/reduce: shift, matching the largest subtree. The
				// candidate list is retained as the conflict's losers, so
				// give up its buffer.
				cands[sym] = nil
				t.Conflicts = append(t.Conflicts, Conflict{
					Kind: ShiftReduce, State: s.ID, Sym: sym,
					Chosen: row[col], Losers: cs,
				})
				continue
			}
			best := a.bestReduce(cs)
			row[col] = MkAction(Reduce, best)
			if len(cs) > 1 {
				losers := make([]int, 0, len(cs)-1)
				for _, c := range cs {
					if c != best {
						losers = append(losers, c)
					}
				}
				t.Conflicts = append(t.Conflicts, Conflict{
					Kind: ReduceReduce, State: s.ID, Sym: sym,
					Chosen: row[col], Losers: losers,
				})
			}
		}
	}
	// End of input with the stack back at the start state: accept.
	t.actions[0*t.NumCols+int(t.ColOf[a.EOF])] = MkAction(Accept, 0)
	return t
}

// bestReduce applies the reduce/reduce preference: longest right side,
// then earliest declaration.
func (a *Automaton) bestReduce(cands []int) int {
	best := cands[0]
	for _, c := range cands[1:] {
		pb, pc := a.G.Prods[best], a.G.Prods[c]
		if len(pc.RHS) > len(pb.RHS) || len(pc.RHS) == len(pb.RHS) && pc.Num < pb.Num {
			best = c
		}
	}
	return best
}

// Describe renders a human-readable summary of one state, for spec
// debugging (cmd/cogg -state).
func (a *Automaton) Describe(stateID int) string {
	s := a.States[stateID]
	var b strings.Builder
	fmt.Fprintf(&b, "state %d\n", s.ID)
	for _, it := range s.Items {
		p := a.G.Prods[it.Prod]
		fmt.Fprintf(&b, "  %s ::=", a.G.SymName(p.LHS))
		for i, sym := range p.RHS {
			if i == it.Dot {
				b.WriteString(" .")
			}
			b.WriteString(" " + a.G.SymName(sym))
		}
		if it.Dot == len(p.RHS) {
			b.WriteString(" .")
		}
		fmt.Fprintf(&b, "   (%d)\n", p.Num)
	}
	return b.String()
}
