package lr

import "math/bits"

// SymSet is a word-packed set of symbol IDs. FIRST/FOLLOW computation and
// closure membership are fixed-universe set problems (every member is a
// symbol ID below NumSymbols), so a dense bitset replaces the former
// map[int]bool representation: union is a handful of uint64 ORs instead
// of a map iteration, and membership is one shift and mask.
type SymSet []uint64

// NewSymSet returns an empty set over a universe of n symbols.
func NewSymSet(n int) SymSet { return make(SymSet, (n+63)/64) }

// Has reports whether symbol id is in the set.
func (s SymSet) Has(id int) bool {
	w := id >> 6
	return w < len(s) && s[w]&(1<<(uint(id)&63)) != 0
}

// Add inserts symbol id, reporting whether the set changed.
func (s SymSet) Add(id int) bool {
	w, bit := id>>6, uint64(1)<<(uint(id)&63)
	if s[w]&bit != 0 {
		return false
	}
	s[w] |= bit
	return true
}

// UnionWith ORs other into s, reporting whether s changed.
func (s SymSet) UnionWith(other SymSet) bool {
	changed := false
	for w, v := range other {
		if v&^s[w] != 0 {
			s[w] |= v
			changed = true
		}
	}
	return changed
}

// Len counts the members.
func (s SymSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f on every member in ascending order.
func (s SymSet) ForEach(f func(id int)) {
	for w, v := range s {
		for v != 0 {
			f(w<<6 | bits.TrailingZeros64(v))
			v &= v - 1
		}
	}
}
