package lr

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSymSetMatchesMapReference drives SymSet and a map[int]bool
// reference through the same random operation sequence and checks they
// never disagree. Universe sizes straddle the 64-bit word boundary —
// 63, 64, 65 — where the word-index and in-word-bit arithmetic is
// easiest to get wrong.
func TestSymSetMatchesMapReference(t *testing.T) {
	for _, universe := range []int{1, 63, 64, 65, 130, 200} {
		t.Run(fmt.Sprintf("u%d", universe), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(universe)))
			set := NewSymSet(universe)
			ref := map[int]bool{}
			for step := 0; step < 4000; step++ {
				id := rng.Intn(universe)
				switch rng.Intn(3) {
				case 0: // Add
					changed := set.Add(id)
					if changed == ref[id] {
						t.Fatalf("step %d: Add(%d) changed=%v, reference had=%v", step, id, changed, ref[id])
					}
					ref[id] = true
				case 1: // Has
					if got := set.Has(id); got != ref[id] {
						t.Fatalf("step %d: Has(%d)=%v, reference %v", step, id, got, ref[id])
					}
				case 2: // UnionWith a fresh random set
					other := NewSymSet(universe)
					otherRef := map[int]bool{}
					for k := rng.Intn(8); k > 0; k-- {
						m := rng.Intn(universe)
						other.Add(m)
						otherRef[m] = true
					}
					wantChanged := false
					for m := range otherRef {
						if !ref[m] {
							wantChanged = true
							ref[m] = true
						}
					}
					if changed := set.UnionWith(other); changed != wantChanged {
						t.Fatalf("step %d: UnionWith changed=%v, want %v", step, changed, wantChanged)
					}
				}
				checkAgreement(t, step, universe, set, ref)
			}
		})
	}
}

// checkAgreement compares Len, per-id Has, and ForEach order against
// the map reference.
func checkAgreement(t *testing.T, step, universe int, set SymSet, ref map[int]bool) {
	t.Helper()
	want := 0
	for _, in := range ref {
		if in {
			want++
		}
	}
	if got := set.Len(); got != want {
		t.Fatalf("step %d: Len=%d, reference %d", step, got, want)
	}
	prev := -1
	n := 0
	set.ForEach(func(id int) {
		if id <= prev {
			t.Fatalf("step %d: ForEach out of order: %d after %d", step, id, prev)
		}
		if id < 0 || id >= universe {
			t.Fatalf("step %d: ForEach yielded %d outside universe %d", step, id, universe)
		}
		if !ref[id] {
			t.Fatalf("step %d: ForEach yielded %d not in reference", step, id)
		}
		prev = id
		n++
	})
	if n != want {
		t.Fatalf("step %d: ForEach yielded %d members, reference %d", step, n, want)
	}
}

// TestSymSetHasOutOfRange pins that membership probes beyond the
// allocated words answer false instead of panicking — Legal-set
// consumers probe EOF ids at the top of the universe.
func TestSymSetHasOutOfRange(t *testing.T) {
	s := NewSymSet(64)
	s.Add(63)
	for _, id := range []int{64, 65, 128, 1 << 20} {
		if s.Has(id) {
			t.Errorf("Has(%d) = true on a 64-symbol universe", id)
		}
	}
}
