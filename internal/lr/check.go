package lr

import (
	"fmt"

	"cogg/internal/grammar"
)

// CheckLoops rejects grammars on which the skeletal parser could cycle
// without consuming input. After a reduction the left side is prefixed
// to the input and immediately shifted, so a cycle among unit
// productions (right side = one nonterminal) re-reduces forever:
//
//	a ::= b   and   b ::= a
//
// Glanville's construction verifies such properties statically so that
// the generated code generator provably terminates; this is the dynamic
// half of that guarantee (the parse loop also carries a step bound as a
// backstop).
func CheckLoops(g *grammar.Grammar) error {
	// Edge lhs -> rhs for every unit production lhs ::= rhs.
	next := map[int][]int{}
	prodOf := map[[2]int]int{}
	for _, p := range g.Prods {
		if len(p.RHS) != 1 {
			continue
		}
		sym := p.RHS[0]
		if g.Syms[sym].Kind != grammar.Nonterminal {
			continue
		}
		next[p.LHS] = append(next[p.LHS], sym)
		prodOf[[2]int{p.LHS, sym}] = p.Num
	}
	// A cycle reachable from any unit production is fatal.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var visit func(n int, path []int) error
	visit = func(n int, path []int) error {
		color[n] = gray
		for _, m := range next[n] {
			switch color[m] {
			case gray:
				// Reconstruct the cycle for the diagnostic.
				names := ""
				for _, s := range append(path, n, m) {
					if names != "" {
						names += " -> "
					}
					names += g.SymName(s)
				}
				return fmt.Errorf(
					"lr: unit productions form a loop (%s, e.g. production %d): the parser would reduce forever without consuming input",
					names, prodOf[[2]int{n, m}])
			case white:
				if err := visit(m, append(path, n)); err != nil {
					return err
				}
			}
		}
		color[n] = black
		return nil
	}
	for n := range next {
		if color[n] == white {
			if err := visit(n, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// Issue is a non-fatal table diagnostic.
type Issue struct {
	State int
	Msg   string
}

// CheckTable reports structural weaknesses that a specification author
// should know about: states whose rows hold no significant action (the
// parser would block on any input there).
func CheckTable(t *Table) []Issue {
	var issues []Issue
	for state := 0; state < t.NumStates; state++ {
		any := false
		for _, a := range t.Row(state) {
			if a.Kind() != Error {
				any = true
				break
			}
		}
		if !any {
			issues = append(issues, Issue{State: state,
				Msg: "state has no significant action: the parser blocks on every input here"})
		}
	}
	return issues
}
