package lr_test

import (
	"testing"
	"testing/quick"

	"cogg/internal/grammar"
	"cogg/internal/lr"
	"cogg/internal/spec"
	"cogg/specs"
)

const smallSpec = `
$Non-terminals
 r = register
$Terminals
 dsp = displacement
$Operators
 fullword, iadd, assign
$Opcodes
 l, a, ar, st
$Constants
 using, modifies
 zero = 0
$Productions
r.2 ::= fullword dsp.1 r.1
 using r.2
 l r.2,dsp.1(zero,r.1)

r.1 ::= iadd r.1 r.2
 modifies r.1
 ar r.1,r.2

r.2 ::= iadd r.2 fullword dsp.1 r.1
 modifies r.2
 a r.2,dsp.1(zero,r.1)

lambda ::= assign fullword dsp.1 r.1 r.2
 st r.2,dsp.1(zero,r.1)
`

func buildSmall(t testing.TB) (*grammar.Grammar, *lr.Automaton, *lr.Table) {
	t.Helper()
	f, err := spec.Parse("small.cogg", smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grammar.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	a, err := lr.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, a, a.MakeTable()
}

func TestFirstIncludesNonterminalItself(t *testing.T) {
	g, a, _ := buildSmall(t)
	r, _ := g.Lookup("r")
	if !a.First[r.ID].Has(r.ID) {
		t.Error("FIRST(r) must contain r: reduced nonterminals are prefixed to the input")
	}
	fullword, _ := g.Lookup("fullword")
	if !a.First[r.ID].Has(fullword.ID) {
		t.Error("FIRST(r) must contain fullword")
	}
	iadd, _ := g.Lookup("iadd")
	if !a.First[r.ID].Has(iadd.ID) {
		t.Error("FIRST(r) must contain iadd")
	}
}

func TestFollowLambdaHasEOFAndStatementStarts(t *testing.T) {
	g, a, _ := buildSmall(t)
	follow := a.Follow[g.Lambda]
	if !follow.Has(a.EOF) {
		t.Error("FOLLOW(lambda) must contain the end marker")
	}
	assign, _ := g.Lookup("assign")
	if !follow.Has(assign.ID) {
		t.Error("FOLLOW(lambda) must contain statement starts")
	}
}

func TestStartStateHoldsLambdaProductions(t *testing.T) {
	g, a, _ := buildSmall(t)
	start := a.States[0]
	found := false
	for _, it := range start.Kernel {
		if g.Prods[it.Prod].LHS == g.Lambda && it.Dot == 0 {
			found = true
		}
	}
	if !found {
		t.Error("start state kernel lacks the lambda productions")
	}
}

func TestAcceptInStartState(t *testing.T) {
	_, a, tbl := buildSmall(t)
	if got := tbl.Lookup(0, a.EOF); got.Kind() != lr.Accept {
		t.Errorf("action(0, $end) = %v, want accept", got)
	}
}

// TestReduceReducePrefersLongest: after [iadd r fullword dsp r] both the
// plain load (3 symbols) and the add-from-memory production (5 symbols)
// are complete; the longer must win everywhere it is chosen.
func TestReduceReducePrefersLongest(t *testing.T) {
	g, _, tbl := buildSmall(t)
	foundLongWin := false
	for _, c := range tbl.Conflicts {
		if c.Kind != lr.ReduceReduce {
			continue
		}
		chosen := g.Prods[c.Chosen.Target()]
		for _, l := range c.Losers {
			if len(g.Prods[l].RHS) > len(chosen.RHS) {
				t.Errorf("conflict in state %d: chose %d-symbol production over %d-symbol",
					c.State, len(chosen.RHS), len(g.Prods[l].RHS))
			}
			if len(g.Prods[l].RHS) < len(chosen.RHS) {
				foundLongWin = true
			}
		}
	}
	if !foundLongWin {
		t.Error("expected at least one reduce/reduce conflict resolved to the longer production (maximal munch)")
	}
}

func TestActionPacking(t *testing.T) {
	for _, a := range []lr.Action{
		lr.MkAction(lr.Shift, 0),
		lr.MkAction(lr.Shift, 12345),
		lr.MkAction(lr.Reduce, 678),
		lr.MkAction(lr.Accept, 0),
		lr.MkAction(lr.Error, 0),
	} {
		v, ok := a.Pack16()
		if !ok {
			t.Fatalf("Pack16(%v) rejected", a)
		}
		if got := lr.Unpack16(v); got != a {
			t.Errorf("Unpack16(Pack16(%v)) = %v", a, got)
		}
	}
	if _, ok := lr.MkAction(lr.Shift, 1<<14).Pack16(); ok {
		t.Error("Pack16 accepted an over-wide target")
	}
}

// TestTableInvariants checks structural soundness of the full Amdahl
// table: every shift targets a real state, every reduce names a real
// production, and nonterminal columns exist (they are shifted like
// input).
func TestTableInvariants(t *testing.T) {
	f, err := spec.Parse("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grammar.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	a, err := lr.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	tbl := a.MakeTable()
	for state := 0; state < tbl.NumStates; state++ {
		for sym := 0; sym < len(tbl.ColOf); sym++ {
			act := tbl.Lookup(state, sym)
			switch act.Kind() {
			case lr.Shift:
				if act.Target() < 0 || act.Target() >= tbl.NumStates {
					t.Fatalf("shift to bad state %d", act.Target())
				}
			case lr.Reduce:
				if act.Target() < 0 || act.Target() >= len(g.Prods) {
					t.Fatalf("reduce of bad production %d", act.Target())
				}
				// A reduce must pop exactly the production's right side;
				// the parser checks depth at run time, but the RHS must
				// at least be nonempty.
				if len(g.Prods[act.Target()].RHS) == 0 {
					t.Fatalf("reduce of empty production")
				}
			}
		}
	}
	// Nonterminal r must have a column: it is shifted after pushback.
	r, _ := g.Lookup("r")
	if tbl.ColOf[r.ID] < 0 {
		t.Error("nonterminal r has no table column")
	}
	// Opcodes must not consume columns.
	st, _ := g.Lookup("st")
	if tbl.ColOf[st.ID] >= 0 {
		t.Error("opcode st received a table column; it can never occur in the IF")
	}
}

// TestDeterministicConstruction: building the same grammar twice yields
// identical automata and tables.
func TestDeterministicConstruction(t *testing.T) {
	_, _, t1 := buildSmall(t)
	_, _, t2 := buildSmall(t)
	if t1.NumStates != t2.NumStates || t1.NumCols != t2.NumCols {
		t.Fatalf("shape differs: %dx%d vs %dx%d", t1.NumStates, t1.NumCols, t2.NumStates, t2.NumCols)
	}
	for i, a := range t1.Rows() {
		if t2.Rows()[i] != a {
			t.Fatalf("entry %d differs: %v vs %v", i, a, t2.Rows()[i])
		}
	}
}

// TestQuickShiftColumnsSignificant: for random (state, symbol) pairs, a
// shift in the automaton always appears in the table unless a conflict
// chose otherwise — shift always wins, so it must appear.
func TestQuickShiftPreserved(t *testing.T) {
	_, a, tbl := buildSmall(t)
	f := func(si, sym uint8) bool {
		s := a.States[int(si)%len(a.States)]
		for symID, next := range s.Shift {
			if next < 0 {
				continue
			}
			if got := tbl.Lookup(s.ID, symID); got.Kind() != lr.Shift || got.Target() != int(next) {
				return false
			}
		}
		_ = sym
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDescribe(t *testing.T) {
	_, a, _ := buildSmall(t)
	text := a.Describe(0)
	if text == "" {
		t.Fatal("Describe returned nothing")
	}
}
