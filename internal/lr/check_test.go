package lr_test

import (
	"strings"
	"testing"

	"cogg/internal/grammar"
	"cogg/internal/lr"
	"cogg/internal/spec"
)

const loopingSpec = `
$Non-terminals
 a = one
 b = other
$Terminals
 dsp = displacement
$Operators
 fullword
$Opcodes
 l
$Constants
 using
 zero = 0
$Productions
a.1 ::= b.1

b.1 ::= a.1

a.2 ::= fullword dsp.1 a.1
 using a.2
 l a.2,dsp.1(zero,a.1)

lambda ::= fullword dsp.1 b.1
 l b.1,dsp.1(zero,b.1)
`

func TestLoopingGrammarRejected(t *testing.T) {
	f, err := spec.Parse("loop.cogg", loopingSpec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grammar.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	_, err = lr.Build(g)
	if err == nil {
		t.Fatal("looping grammar accepted")
	}
	if !strings.Contains(err.Error(), "loop") {
		t.Errorf("diagnostic = %v", err)
	}
}

func TestSingleUnitProductionAccepted(t *testing.T) {
	// One unit production (the paper's "r.l ::= d.l { }") is fine; only
	// cycles loop.
	src := `
$Non-terminals
 r = register
 d = double
$Terminals
 dsp = displacement
$Operators
 fullword, imult
$Opcodes
 l, mr
$Constants
 using
 zero = 0
$Productions
r.1 ::= d.1

d.2 ::= imult d.2 r.1
 mr d.2,r.1

d.2 ::= fullword dsp.1 r.1
 using d.2
 l d.2,dsp.1(zero,r.1)

lambda ::= fullword dsp.1 r.1
 l r.1,dsp.1(zero,r.1)
`
	f, err := spec.Parse("unit.cogg", src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := grammar.Resolve(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lr.Build(g); err != nil {
		t.Fatalf("acyclic unit production rejected: %v", err)
	}
}

func TestCheckTableCleanOnRealGrammar(t *testing.T) {
	_, _, tbl := buildSmall(t)
	if issues := lr.CheckTable(tbl); len(issues) != 0 {
		t.Errorf("issues on a healthy grammar: %+v", issues)
	}
}
