// Package lr constructs the parsing automaton that drives a CoGG code
// generator: an SLR(1) machine over the linearized prefix intermediate
// form, with the Graham-Glanville conflict resolution rules.
//
// The machine differs from a conventional LR parser in one respect: after
// a reduction the left-hand side nonterminal is prefixed to the *input
// stream* (with its semantic value — an allocated register, a condition
// code) rather than being pushed through a separate GOTO table. Shift
// actions therefore exist uniformly for terminals, operators, and
// nonterminals, and the table's X dimension counts every symbol that can
// be encountered in the IF during a parse (entry ii of Table 1).
//
// Code generation grammars are deliberately ambiguous: many productions
// overlap so that the generator can recognize a large number of tree
// shapes (there are "no less than thirteen productions associated with
// integer addition" in the paper's specification). Conflicts are resolved
// as Glanville prescribes:
//
//   - shift/reduce: shift, matching the largest possible subtree
//     (maximal munch);
//   - reduce/reduce: the production with the longer right side wins, ties
//     broken in favor of the production declared first — specification
//     order encodes the implementer's preference.
package lr

import (
	"fmt"
	"sort"

	"cogg/internal/grammar"
)

// Item is an LR(0) item: a production with a dot position.
type Item struct {
	Prod int // index into Grammar.Prods
	Dot  int
}

// State is one state of the parsing automaton.
type State struct {
	ID     int
	Kernel []Item
	Items  []Item      // closure
	Shift  map[int]int // symbol ID -> successor state
	// Reduce maps a lookahead symbol ID (or EOF) to the candidate
	// production indices, before conflict resolution.
	Reduce map[int][]int
}

// Automaton is the LR(0) collection with SLR lookahead sets.
type Automaton struct {
	G      *grammar.Grammar
	States []*State
	EOF    int // pseudo-symbol: len(G.Syms)

	First  map[int]symset // nonterminal -> FIRST set (includes the nonterminal itself)
	Follow map[int]symset
}

type symset map[int]bool

// Build constructs the automaton for grammar g, first rejecting grammars
// the skeletal parser could loop on (see CheckLoops).
func Build(g *grammar.Grammar) (*Automaton, error) {
	if len(g.Prods) == 0 {
		return nil, fmt.Errorf("lr: grammar %q has no productions", g.Name)
	}
	if err := CheckLoops(g); err != nil {
		return nil, err
	}
	a := &Automaton{G: g, EOF: len(g.Syms)}
	a.computeFirst()
	a.computeFollow()
	a.buildStates()
	a.attachReduces()
	return a, nil
}

// prodsFor returns the production indices deriving nonterminal sym, in
// declaration order.
func (a *Automaton) prodsFor(sym int) []int {
	var out []int
	for i, p := range a.G.Prods {
		if p.LHS == sym {
			out = append(out, i)
		}
	}
	return out
}

// computeFirst computes FIRST for every nonterminal. Because reduced
// nonterminals are prefixed back onto the input, a nonterminal is itself a
// possible input token and belongs to its own FIRST set. Right sides are
// never empty, so FIRST of a sentential form is FIRST of its head symbol.
func (a *Automaton) computeFirst() {
	a.First = make(map[int]symset)
	for id, s := range a.G.Syms {
		if s.Kind == grammar.Nonterminal {
			set := symset{}
			if id != a.G.Lambda {
				set[id] = true // the nonterminal token itself
			}
			a.First[id] = set
		}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range a.G.Prods {
			head := p.RHS[0]
			dst := a.First[p.LHS]
			if src, ok := a.First[head]; ok {
				for t := range src {
					if !dst[t] {
						dst[t] = true
						changed = true
					}
				}
			} else if !dst[head] {
				dst[head] = true
				changed = true
			}
		}
	}
}

// firstOf returns the FIRST set of a single symbol.
func (a *Automaton) firstOf(sym int) symset {
	if set, ok := a.First[sym]; ok {
		return set
	}
	return symset{sym: true}
}

// computeFollow computes FOLLOW for every nonterminal, over the grammar
// augmented with GOAL ::= lambda GOAL | lambda: the input is a sequence of
// statements each deriving lambda, so lambda is followed by the start of
// any statement or by the end marker.
func (a *Automaton) computeFollow() {
	a.Follow = make(map[int]symset)
	for id, s := range a.G.Syms {
		if s.Kind == grammar.Nonterminal {
			a.Follow[id] = symset{}
		}
	}
	lf := a.Follow[a.G.Lambda]
	lf[a.EOF] = true
	for t := range a.First[a.G.Lambda] {
		lf[t] = true
	}
	for changed := true; changed; {
		changed = false
		for _, p := range a.G.Prods {
			for i, sym := range p.RHS {
				dst, isNT := a.Follow[sym]
				if !isNT {
					continue
				}
				if i+1 < len(p.RHS) {
					for t := range a.firstOf(p.RHS[i+1]) {
						if !dst[t] {
							dst[t] = true
							changed = true
						}
					}
				} else {
					for t := range a.Follow[p.LHS] {
						if !dst[t] {
							dst[t] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// closure extends a kernel to its LR(0) closure.
func (a *Automaton) closure(kernel []Item) []Item {
	items := append([]Item(nil), kernel...)
	inSet := map[Item]bool{}
	for _, it := range items {
		inSet[it] = true
	}
	added := map[int]bool{} // nonterminals already expanded
	for i := 0; i < len(items); i++ {
		it := items[i]
		p := a.G.Prods[it.Prod]
		if it.Dot >= len(p.RHS) {
			continue
		}
		sym := p.RHS[it.Dot]
		if a.G.Syms[sym].Kind != grammar.Nonterminal || added[sym] {
			continue
		}
		added[sym] = true
		for _, pi := range a.prodsFor(sym) {
			ni := Item{Prod: pi, Dot: 0}
			if !inSet[ni] {
				inSet[ni] = true
				items = append(items, ni)
			}
		}
	}
	sortItems(items)
	return items
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Prod != items[j].Prod {
			return items[i].Prod < items[j].Prod
		}
		return items[i].Dot < items[j].Dot
	})
}

func kernelKey(kernel []Item) string {
	b := make([]byte, 0, len(kernel)*8)
	for _, it := range kernel {
		b = append(b,
			byte(it.Prod), byte(it.Prod>>8), byte(it.Prod>>16),
			byte(it.Dot), byte(it.Dot>>8))
	}
	return string(b)
}

// buildStates constructs the canonical LR(0) collection. The start state's
// kernel holds an initial item for every lambda production: each statement
// of the IF begins a fresh parse from state 0.
func (a *Automaton) buildStates() {
	var startKernel []Item
	for _, pi := range a.prodsFor(a.G.Lambda) {
		startKernel = append(startKernel, Item{Prod: pi, Dot: 0})
	}
	sortItems(startKernel)

	index := map[string]int{}
	add := func(kernel []Item) int {
		key := kernelKey(kernel)
		if id, ok := index[key]; ok {
			return id
		}
		s := &State{
			ID:     len(a.States),
			Kernel: kernel,
			Items:  a.closure(kernel),
			Shift:  map[int]int{},
			Reduce: map[int][]int{},
		}
		index[key] = s.ID
		a.States = append(a.States, s)
		return s.ID
	}
	add(startKernel)

	for i := 0; i < len(a.States); i++ {
		s := a.States[i]
		// Group items by the symbol after the dot.
		moves := map[int][]Item{}
		var order []int
		for _, it := range s.Items {
			p := a.G.Prods[it.Prod]
			if it.Dot >= len(p.RHS) {
				continue
			}
			sym := p.RHS[it.Dot]
			if _, seen := moves[sym]; !seen {
				order = append(order, sym)
			}
			moves[sym] = append(moves[sym], Item{Prod: it.Prod, Dot: it.Dot + 1})
		}
		sort.Ints(order)
		for _, sym := range order {
			kernel := moves[sym]
			sortItems(kernel)
			s.Shift[sym] = add(kernel)
		}
	}
}

// attachReduces installs the SLR reduce candidates: a completed item
// [A -> alpha .] proposes its production on every lookahead in FOLLOW(A).
func (a *Automaton) attachReduces() {
	for _, s := range a.States {
		for _, it := range s.Items {
			p := a.G.Prods[it.Prod]
			if it.Dot != len(p.RHS) {
				continue
			}
			for la := range a.Follow[p.LHS] {
				s.Reduce[la] = append(s.Reduce[la], it.Prod)
			}
		}
		for la := range s.Reduce {
			sort.Ints(s.Reduce[la])
		}
	}
}

// NumSymbols returns the width of the action table: every grammar symbol
// plus the end marker.
func (a *Automaton) NumSymbols() int { return len(a.G.Syms) + 1 }

// SymName names a column, including the end marker.
func (a *Automaton) SymName(sym int) string {
	if sym == a.EOF {
		return "$end"
	}
	return a.G.SymName(sym)
}
