// Package lr constructs the parsing automaton that drives a CoGG code
// generator: an SLR(1) machine over the linearized prefix intermediate
// form, with the Graham-Glanville conflict resolution rules.
//
// The machine differs from a conventional LR parser in one respect: after
// a reduction the left-hand side nonterminal is prefixed to the *input
// stream* (with its semantic value — an allocated register, a condition
// code) rather than being pushed through a separate GOTO table. Shift
// actions therefore exist uniformly for terminals, operators, and
// nonterminals, and the table's X dimension counts every symbol that can
// be encountered in the IF during a parse (entry ii of Table 1).
//
// Code generation grammars are deliberately ambiguous: many productions
// overlap so that the generator can recognize a large number of tree
// shapes (there are "no less than thirteen productions associated with
// integer addition" in the paper's specification). Conflicts are resolved
// as Glanville prescribes:
//
//   - shift/reduce: shift, matching the largest possible subtree
//     (maximal munch);
//   - reduce/reduce: the production with the longer right side wins, ties
//     broken in favor of the production declared first — specification
//     order encodes the implementer's preference.
//
// Construction works over dense representations throughout: FIRST/FOLLOW
// and closure membership are word-packed bitsets (SymSet), per-state
// shift actions are a dense slice indexed by symbol, and kernel item
// sets are interned by hash so each distinct kernel is closed exactly
// once.
package lr

import (
	"fmt"
	"sort"

	"cogg/internal/grammar"
)

// Item is an LR(0) item: a production with a dot position.
type Item struct {
	Prod int // index into Grammar.Prods
	Dot  int
}

// State is one state of the parsing automaton.
type State struct {
	ID     int
	Kernel []Item
	Items  []Item // closure

	// Shift is dense: Shift[sym] is the successor state for symbol sym,
	// or -1 when the symbol cannot be shifted here. Its length is the
	// automaton's NumSymbols.
	Shift []int32

	// Completed lists the productions whose items are complete in this
	// state ([A -> alpha .]), in ascending production order. The SLR
	// reduce candidates for a lookahead la are exactly the completed
	// productions whose left side has la in FOLLOW.
	Completed []int32
}

// ShiftTo returns the successor state for symbol sym, or -1.
func (s *State) ShiftTo(sym int) int { return int(s.Shift[sym]) }

// Automaton is the LR(0) collection with SLR lookahead sets.
type Automaton struct {
	G      *grammar.Grammar
	States []*State
	EOF    int // pseudo-symbol: len(G.Syms)

	First  []SymSet // nonterminal -> FIRST set (includes the nonterminal itself); nil for others
	Follow []SymSet // nonterminal -> FOLLOW set; nil for others

	prodsBySym [][]int32 // nonterminal -> production indices, declaration order

	// Closure scratch, epoch-stamped so each buildStates iteration skips
	// the O(items) map rebuilds of the former representation.
	itemStamp []int32 // item key -> epoch when last added to the closure
	ntStamp   []int32 // nonterminal -> epoch when last expanded
	epoch     int32
	maxRHS    int
}

// Build constructs the automaton for grammar g, first rejecting grammars
// the skeletal parser could loop on (see CheckLoops).
func Build(g *grammar.Grammar) (*Automaton, error) {
	if len(g.Prods) == 0 {
		return nil, fmt.Errorf("lr: grammar %q has no productions", g.Name)
	}
	if err := CheckLoops(g); err != nil {
		return nil, err
	}
	a := &Automaton{G: g, EOF: len(g.Syms)}
	a.indexProds()
	a.computeFirst()
	a.computeFollow()
	a.buildStates()
	return a, nil
}

// indexProds builds the nonterminal -> productions index and sizes the
// closure scratch.
func (a *Automaton) indexProds() {
	a.prodsBySym = make([][]int32, len(a.G.Syms))
	for i, p := range a.G.Prods {
		a.prodsBySym[p.LHS] = append(a.prodsBySym[p.LHS], int32(i))
		if len(p.RHS) > a.maxRHS {
			a.maxRHS = len(p.RHS)
		}
	}
	a.itemStamp = make([]int32, len(a.G.Prods)*(a.maxRHS+1))
	a.ntStamp = make([]int32, len(a.G.Syms))
}

// prodsFor returns the production indices deriving nonterminal sym, in
// declaration order.
func (a *Automaton) prodsFor(sym int) []int32 { return a.prodsBySym[sym] }

// computeFirst computes FIRST for every nonterminal. Because reduced
// nonterminals are prefixed back onto the input, a nonterminal is itself a
// possible input token and belongs to its own FIRST set. Right sides are
// never empty, so FIRST of a sentential form is FIRST of its head symbol.
func (a *Automaton) computeFirst() {
	n := a.NumSymbols()
	a.First = make([]SymSet, len(a.G.Syms))
	for id, s := range a.G.Syms {
		if s.Kind == grammar.Nonterminal {
			set := NewSymSet(n)
			if id != a.G.Lambda {
				set.Add(id) // the nonterminal token itself
			}
			a.First[id] = set
		}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range a.G.Prods {
			head := p.RHS[0]
			dst := a.First[p.LHS]
			if src := a.First[head]; src != nil {
				if dst.UnionWith(src) {
					changed = true
				}
			} else if dst.Add(head) {
				changed = true
			}
		}
	}
}

// computeFollow computes FOLLOW for every nonterminal, over the grammar
// augmented with GOAL ::= lambda GOAL | lambda: the input is a sequence of
// statements each deriving lambda, so lambda is followed by the start of
// any statement or by the end marker.
func (a *Automaton) computeFollow() {
	n := a.NumSymbols()
	a.Follow = make([]SymSet, len(a.G.Syms))
	for id, s := range a.G.Syms {
		if s.Kind == grammar.Nonterminal {
			a.Follow[id] = NewSymSet(n)
		}
	}
	lf := a.Follow[a.G.Lambda]
	lf.Add(a.EOF)
	lf.UnionWith(a.First[a.G.Lambda])
	for changed := true; changed; {
		changed = false
		for _, p := range a.G.Prods {
			for i, sym := range p.RHS {
				dst := a.Follow[sym]
				if dst == nil {
					continue
				}
				if i+1 < len(p.RHS) {
					next := p.RHS[i+1]
					if src := a.First[next]; src != nil {
						if dst.UnionWith(src) {
							changed = true
						}
					} else if dst.Add(next) {
						changed = true
					}
				} else if dst.UnionWith(a.Follow[p.LHS]) {
					changed = true
				}
			}
		}
	}
}

// closure extends a kernel to its LR(0) closure. The membership and
// expansion marks live in epoch-stamped arrays shared across calls, so a
// closure costs no allocations beyond the returned item slice.
func (a *Automaton) closure(kernel []Item) []Item {
	a.epoch++
	e := a.epoch
	items := append(make([]Item, 0, len(kernel)*2), kernel...)
	for _, it := range items {
		a.itemStamp[it.Prod*(a.maxRHS+1)+it.Dot] = e
	}
	for i := 0; i < len(items); i++ {
		it := items[i]
		p := a.G.Prods[it.Prod]
		if it.Dot >= len(p.RHS) {
			continue
		}
		sym := p.RHS[it.Dot]
		if a.G.Syms[sym].Kind != grammar.Nonterminal || a.ntStamp[sym] == e {
			continue
		}
		a.ntStamp[sym] = e
		for _, pi := range a.prodsFor(sym) {
			key := int(pi) * (a.maxRHS + 1)
			if a.itemStamp[key] != e {
				a.itemStamp[key] = e
				items = append(items, Item{Prod: int(pi), Dot: 0})
			}
		}
	}
	sortItems(items)
	return items
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].Prod != items[j].Prod {
			return items[i].Prod < items[j].Prod
		}
		return items[i].Dot < items[j].Dot
	})
}

// kernelHash is an FNV-1a hash over the kernel's (production, dot) pairs;
// kernels are interned under it so state construction compares a handful
// of candidate item slices instead of materializing a string key per
// GOTO computation.
func kernelHash(kernel []Item) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, it := range kernel {
		h = (h ^ uint64(it.Prod)) * prime64
		h = (h ^ uint64(it.Dot)) * prime64
	}
	return h
}

func sameKernel(a, b []Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildStates constructs the canonical LR(0) collection. The start state's
// kernel holds an initial item for every lambda production: each statement
// of the IF begins a fresh parse from state 0.
func (a *Automaton) buildStates() {
	nsym := a.NumSymbols()
	var startKernel []Item
	for _, pi := range a.prodsFor(a.G.Lambda) {
		startKernel = append(startKernel, Item{Prod: int(pi), Dot: 0})
	}
	sortItems(startKernel)

	index := map[uint64][]int{} // kernel hash -> candidate state IDs
	add := func(kernel []Item) int {
		h := kernelHash(kernel)
		for _, id := range index[h] {
			if sameKernel(a.States[id].Kernel, kernel) {
				return id
			}
		}
		shift := make([]int32, nsym)
		for i := range shift {
			shift[i] = -1
		}
		s := &State{
			ID:     len(a.States),
			Kernel: append([]Item(nil), kernel...),
			Items:  a.closure(kernel),
			Shift:  shift,
		}
		for _, it := range s.Items {
			if it.Dot == len(a.G.Prods[it.Prod].RHS) {
				s.Completed = append(s.Completed, int32(it.Prod))
			}
		}
		index[h] = append(index[h], s.ID)
		a.States = append(a.States, s)
		return s.ID
	}
	add(startKernel)

	// Per-iteration scratch for grouping items by the symbol after the
	// dot: per-symbol item buffers whose capacity persists across states,
	// reset by walking only the symbols actually touched.
	moveOf := make([][]Item, nsym)
	seen := make([]bool, nsym)
	var order []int

	for i := 0; i < len(a.States); i++ {
		s := a.States[i]
		order = order[:0]
		for _, it := range s.Items {
			p := a.G.Prods[it.Prod]
			if it.Dot >= len(p.RHS) {
				continue
			}
			sym := p.RHS[it.Dot]
			if !seen[sym] {
				seen[sym] = true
				order = append(order, sym)
			}
			moveOf[sym] = append(moveOf[sym], Item{Prod: it.Prod, Dot: it.Dot + 1})
		}
		sort.Ints(order)
		for _, sym := range order {
			kernel := moveOf[sym]
			sortItems(kernel)
			s.Shift[sym] = int32(add(kernel))
			moveOf[sym] = moveOf[sym][:0]
			seen[sym] = false
		}
	}
}

// NumSymbols returns the width of the action table: every grammar symbol
// plus the end marker.
func (a *Automaton) NumSymbols() int { return len(a.G.Syms) + 1 }

// SymName names a column, including the end marker.
func (a *Automaton) SymName(sym int) string {
	if sym == a.EOF {
		return "$end"
	}
	return a.G.SymName(sym)
}
