package core_test

import (
	"bytes"
	"strings"
	"testing"

	"cogg/internal/core"
	"cogg/internal/lr"
	"cogg/internal/tables"
	"cogg/specs"
)

func generate(t *testing.T, name, src string) *core.CodeGenerator {
	t.Helper()
	cg, err := core.Generate(name, src)
	if err != nil {
		t.Fatalf("Generate(%s): %v", name, err)
	}
	return cg
}

// TestAmdahlSpecBuilds constructs the full Amdahl 470 tables and checks
// the statistics have the Table 1 shape: hundreds of states, tens of
// thousands of entries, under half of them significant.
func TestAmdahlSpecBuilds(t *testing.T) {
	cg := generate(t, "amdahl470.cogg", specs.Amdahl470)
	s := cg.ComputeStats()
	t.Logf("\n%s", cg.Table1())
	if s.Productions < 120 {
		t.Errorf("productions = %d, want a full-scale grammar (>= 120)", s.Productions)
	}
	if s.Templates < s.Productions {
		t.Errorf("templates = %d < productions = %d", s.Templates, s.Productions)
	}
	if s.States < 200 {
		t.Errorf("states = %d, want hundreds", s.States)
	}
	if s.Entries < 10000 {
		t.Errorf("entries = %d, want tens of thousands", s.Entries)
	}
	if s.SignificantEntries <= 0 || s.SignificantEntries >= s.Entries {
		t.Errorf("significant entries = %d of %d", s.SignificantEntries, s.Entries)
	}
	if s.SemanticOps < 20 {
		t.Errorf("semantic operators = %d, want the full extension set", s.SemanticOps)
	}
}

// TestMinimalSpecSmaller verifies the size-control claim of the paper's
// conclusion: reducing the number of productions reduces the parse
// tables.
func TestMinimalSpecSmaller(t *testing.T) {
	full := generate(t, "amdahl470.cogg", specs.Amdahl470)
	min := generate(t, "amdahl-minimal.cogg", specs.AmdahlMinimal)
	fs, ms := full.ComputeStats(), min.ComputeStats()
	if ms.Productions >= fs.Productions {
		t.Errorf("minimal productions %d >= full %d", ms.Productions, fs.Productions)
	}
	if ms.States >= fs.States {
		t.Errorf("minimal states %d >= full %d", ms.States, fs.States)
	}
	fb, err := full.Sizes()
	if err != nil {
		t.Fatal(err)
	}
	mb, err := min.Sizes()
	if err != nil {
		t.Fatal(err)
	}
	if mb.Compressed >= fb.Compressed {
		t.Errorf("minimal compressed table %d bytes >= full %d", mb.Compressed, fb.Compressed)
	}
}

// TestRiscSpecBuilds constructs the retargeting demonstration tables.
func TestRiscSpecBuilds(t *testing.T) {
	cg := generate(t, "risc32.cogg", specs.Risc32)
	if cg.ComputeStats().Productions < 30 {
		t.Errorf("risc32 productions = %d", cg.ComputeStats().Productions)
	}
}

// TestEncodeDecodeRoundTrip serializes the full module and reloads it.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	cg := generate(t, "amdahl470.cogg", specs.Amdahl470)
	var buf bytes.Buffer
	sizes, err := cg.Encode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sizes.Total != buf.Len() {
		t.Errorf("reported total %d != written %d", sizes.Total, buf.Len())
	}
	mod, err := tables.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(mod.Grammar.Syms) != len(cg.Grammar.Syms) {
		t.Errorf("decoded %d symbols, want %d", len(mod.Grammar.Syms), len(cg.Grammar.Syms))
	}
	if len(mod.Grammar.Prods) != len(cg.Grammar.Prods) {
		t.Errorf("decoded %d productions, want %d", len(mod.Grammar.Prods), len(cg.Grammar.Prods))
	}
	// Spot-check that the decoded packed table answers identically.
	for state := 0; state < cg.Table.NumStates; state += 7 {
		for sym := 0; sym < len(cg.Table.ColOf); sym += 3 {
			if got, want := mod.Packed.Lookup(state, sym), cg.Packed.Lookup(state, sym); got != want {
				t.Fatalf("decoded table disagrees at (%d,%d): %v vs %v", state, sym, got, want)
			}
		}
	}
}

// TestCompressionCorrect checks the packed table against the dense matrix
// for the full grammar, entry by entry.
func TestCompressionCorrect(t *testing.T) {
	cg := generate(t, "amdahl470.cogg", specs.Amdahl470)
	for state := 0; state < cg.Table.NumStates; state++ {
		for sym := 0; sym < len(cg.Table.ColOf); sym++ {
			dense := cg.Table.Lookup(state, sym)
			packed := cg.Packed.Lookup(state, sym)
			if dense.Kind() == lr.Error {
				if packed.Kind() != lr.Error {
					t.Fatalf("(%d,%d): packed has %v where dense is error", state, sym, packed)
				}
				continue
			}
			if packed != dense {
				t.Fatalf("(%d,%d): packed %v != dense %v", state, sym, packed, dense)
			}
		}
	}
}

// TestCompressionSmaller: the row-displacement table must be
// substantially smaller than the dense matrix (Table 2's ratio is 32.7
// pages vs 71.5).
func TestCompressionSmaller(t *testing.T) {
	cg := generate(t, "amdahl470.cogg", specs.Amdahl470)
	comp := cg.Packed.SizeBytes()
	unc := tables.UncompressedSizeBytes(cg.Table)
	if comp >= unc {
		t.Errorf("compressed %d bytes >= uncompressed %d", comp, unc)
	}
	t.Logf("compressed %.1f pages, uncompressed %.1f pages",
		tables.Pages(comp), tables.Pages(unc))
}

// TestTableReportsFormat: the Table 1/2 renderers produce the paper's
// row labels.
func TestTableReportsFormat(t *testing.T) {
	cg := generate(t, "amdahl-minimal.cogg", specs.AmdahlMinimal)
	t1 := cg.Table1()
	for _, want := range []string{
		"i.    Number of symbols declared",
		"iii.  States in parsing automaton",
		"vii.  SDT templates",
		"ix.   Semantic operators",
	} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 lacks %q:\n%s", want, t1)
		}
	}
	t2, err := cg.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Template array", "Compressed parse table", "Uncompressed parse table"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 lacks %q:\n%s", want, t2)
		}
	}
}
