// Package core is CoGG itself: the code generator generator. It accepts
// a specification for a code generator and produces the skeletal parser's
// driving tables, the statistics of the paper's Tables 1 and 2, and —
// through package codegen — the code generator they drive.
package core

import (
	"fmt"
	"io"
	"strings"

	"cogg/internal/codegen"
	"cogg/internal/grammar"
	"cogg/internal/lr"
	"cogg/internal/spec"
	"cogg/internal/tables"
)

// CodeGenerator is the product of one CoGG run over a specification.
type CodeGenerator struct {
	Spec      *spec.File
	Grammar   *grammar.Grammar
	Automaton *lr.Automaton
	Table     *lr.Table
	Packed    *tables.Packed
}

// Stats combines the grammar and parse-table statistics: the rows of the
// paper's Table 1.
type Stats struct {
	grammar.Stats
	States             int // (iii) states in the parsing automaton
	Entries            int // (iv)  parse table entries
	SignificantEntries int // (v)   entries which do NOT contain an error entry
	Conflicts          int //       ambiguities resolved during construction
}

// Generate runs the table constructor over a specification source.
func Generate(name, src string) (*CodeGenerator, error) {
	f, err := spec.Parse(name, src)
	if err != nil {
		return nil, err
	}
	return GenerateFromFile(f)
}

// GenerateFromFile runs the table constructor over a parsed specification.
func GenerateFromFile(f *spec.File) (*CodeGenerator, error) {
	g, err := grammar.Resolve(f)
	if err != nil {
		return nil, err
	}
	a, err := lr.Build(g)
	if err != nil {
		return nil, err
	}
	t := a.MakeTable()
	return &CodeGenerator{
		Spec:      f,
		Grammar:   g,
		Automaton: a,
		Table:     t,
		Packed:    tables.Pack(t),
	}, nil
}

// ComputeStats assembles the Table 1 statistics.
func (cg *CodeGenerator) ComputeStats() Stats {
	return Stats{
		Stats:              cg.Grammar.ComputeStats(),
		States:             cg.Table.NumStates,
		Entries:            cg.Table.Entries(),
		SignificantEntries: cg.Table.SignificantEntries(),
		Conflicts:          len(cg.Table.Conflicts),
	}
}

// Module bundles the artifacts needed at translation time.
func (cg *CodeGenerator) Module() *tables.Module {
	return &tables.Module{Grammar: cg.Grammar, Packed: cg.Packed}
}

// NewGenerator instantiates the table-driven code generator for a target
// configuration.
func (cg *CodeGenerator) NewGenerator(cfg codegen.Config) (*codegen.Generator, error) {
	return codegen.New(cg.Module(), cfg)
}

// Encode serializes the table module, reporting the section sizes that
// Table 2 accounts in pages.
func (cg *CodeGenerator) Encode(w io.Writer) (tables.SectionSizes, error) {
	return tables.Encode(w, cg.Grammar, cg.Table, cg.Packed)
}

// Sizes measures the serialized sections without retaining the output.
func (cg *CodeGenerator) Sizes() (tables.SectionSizes, error) {
	return cg.Encode(io.Discard)
}

// Table1 renders the statistics in the layout of the paper's Table 1.
func (cg *CodeGenerator) Table1() string {
	s := cg.ComputeStats()
	var b strings.Builder
	row := func(label string, v int) { fmt.Fprintf(&b, "%-34s %7d\n", label, v) }
	row("i.    Number of symbols declared", s.SymbolsDeclared)
	row("ii.   X dimension of parse table", s.ParseSymbols)
	row("iii.  States in parsing automaton", s.States)
	row("iv.   Parse table entries", s.Entries)
	row("v.    Significant entries", s.SignificantEntries)
	row("vi.   Productions", s.Productions)
	row("vii.  SDT templates", s.Templates)
	row("viii. Production operators", s.ProductionOps)
	row("ix.   Semantic operators", s.SemanticOps)
	return b.String()
}

// Table2 renders the artifact sizes in the layout of the paper's Table 2
// (sizes in 4096-byte pages).
func (cg *CodeGenerator) Table2() (string, error) {
	sz, err := cg.Sizes()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	row := func(label string, bytes int) {
		fmt.Fprintf(&b, "%-34s %7.1f\n", label, tables.Pages(bytes))
	}
	row("i.    Template array", sz.Templates)
	row("ii.   Compressed parse table", sz.Compressed)
	row("iii.  Uncompressed parse table", sz.Uncompressed)
	return b.String(), nil
}
