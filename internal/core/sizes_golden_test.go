package core_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cogg/specs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestAmdahlSectionSizesGolden pins the serialized section sizes of the
// full Amdahl 470 table module — the raw material of the paper's
// Table 2 — to a golden file. Any change to the grammar, the table
// construction, the comb packing, or the encoding shows up here as an
// explicit diff to review (and to re-bless with -update), never as
// silent size drift.
func TestAmdahlSectionSizesGolden(t *testing.T) {
	cg := generate(t, "amdahl470.cogg", specs.Amdahl470)
	sz, err := cg.Sizes()
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf(
		"amdahl470.cogg table module section sizes (bytes)\nsymbols      %d\ntemplates    %d\ncompressed   %d\nuncompressed %d\ntotal        %d\n",
		sz.Symbols, sz.Templates, sz.Compressed, sz.Uncompressed, sz.Total)

	golden := filepath.Join("testdata", "amdahl470_sizes.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("section sizes drifted from the golden file.\n--- got ---\n%s--- want ---\n%s(re-bless with: go test ./internal/core -run TestAmdahlSectionSizesGolden -update)",
			got, want)
	}
}
