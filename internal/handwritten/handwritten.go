// Package handwritten is a conventional hand-crafted code generator over
// the same shaped intermediate form the table-driven generator parses.
// It is the comparison baseline of the paper's Appendix 1 (standing in
// for IBM's PascalVS translation phase): a competent tree walker with
// memory-operand folding, written "the traditional way" — a fixed
// strategy per operator, wired directly into Go code instead of driven
// by tables.
//
// It shares the assembly container, label resolution, loader, and
// simulator with the table-driven generator, so the two can be compared
// differentially: same IF in, same machine semantics out.
package handwritten

import (
	"fmt"

	"cogg/internal/asm"
	"cogg/internal/ir"
	"cogg/internal/rt370"
)

// Generate translates shaped statement trees (without CSE operators)
// into a code buffer ready for labels.Layout.
func Generate(name string, stmts []*ir.Node) (*asm.Program, error) {
	g := &gen{prog: asm.NewProgram(name)}
	g.prog.Origin = rt370.CodeOrigin
	g.prog.PoolOrigin = rt370.PoolOrigin
	g.autoLabel = -1
	for i := 1; i <= 9; i++ {
		g.freeR = append(g.freeR, i)
	}
	g.freeF = []int{0, 2, 4, 6}
	for _, st := range stmts {
		if err := g.stmt(st); err != nil {
			return nil, fmt.Errorf("handwritten: %w", err)
		}
	}
	return g.prog, nil
}

type gen struct {
	prog      *asm.Program
	freeR     []int
	freeF     []int
	autoLabel int64
	stmtNum   int
}

func (g *gen) emit(in asm.Instr) int {
	in.Stmt = g.stmtNum
	return g.prog.Append(in)
}

func (g *gen) op(name string, opds ...asm.Operand) {
	g.emit(asm.Instr{Op: name, Opds: opds})
}

// --- registers ------------------------------------------------------------

func (g *gen) allocR() (int, error) {
	for i, r := range g.freeR {
		_ = r
		reg := g.freeR[i]
		g.freeR = append(g.freeR[:i], g.freeR[i+1:]...)
		return reg, nil
	}
	return 0, fmt.Errorf("out of registers")
}

func (g *gen) freeReg(r int) {
	if r >= 1 && r <= 9 {
		g.freeR = append(g.freeR, r)
	}
}

func (g *gen) allocPair() (int, error) {
	for _, e := range []int{2, 4, 6, 8} {
		ei, oi := -1, -1
		for i, r := range g.freeR {
			if r == e {
				ei = i
			}
			if r == e+1 {
				oi = i
			}
		}
		if ei >= 0 && oi >= 0 {
			var rest []int
			for _, r := range g.freeR {
				if r != e && r != e+1 {
					rest = append(rest, r)
				}
			}
			g.freeR = rest
			return e, nil
		}
	}
	return 0, fmt.Errorf("out of even/odd pairs")
}

func (g *gen) allocF() (int, error) {
	if len(g.freeF) == 0 {
		return 0, fmt.Errorf("out of floating registers")
	}
	f := g.freeF[0]
	g.freeF = g.freeF[1:]
	return f, nil
}

func (g *gen) freeFreg(f int) { g.freeF = append(g.freeF, f) }

func (g *gen) label() int64 {
	l := g.autoLabel
	g.autoLabel--
	return l
}

// --- shape helpers ----------------------------------------------------------

// memOperand recognizes a plain or indexed storage reference subtree and
// returns its operand plus the load/fold opcodes. For indexed references
// the index subtree is evaluated first.
func (g *gen) memOperand(n *ir.Node) (mem asm.Operand, width string, idxReg int, ok bool, err error) {
	switch n.Op {
	case ir.OpFullword, ir.OpHalfword, ir.OpByteword, ir.OpDblreal, ir.OpRealword:
	default:
		return asm.Operand{}, "", 0, false, nil
	}
	switch len(n.Kids) {
	case 2: // dsp, base
		return asm.M(n.Kids[0].Val, 0, int(n.Kids[1].Val)), n.Op, 0, true, nil
	case 3: // index, dsp, base
		idx, err := g.evalInt(n.Kids[0])
		if err != nil {
			return asm.Operand{}, "", 0, false, err
		}
		return asm.M(n.Kids[1].Val, idx, int(n.Kids[2].Val)), n.Op, idx, true, nil
	}
	return asm.Operand{}, "", 0, false, fmt.Errorf("malformed storage reference %s", n)
}

// loadInt loads a storage reference into a fresh register.
func (g *gen) loadInt(mem asm.Operand, width string, idxReg int) (int, error) {
	r, err := g.allocR()
	if err != nil {
		return 0, err
	}
	switch width {
	case ir.OpFullword:
		g.op("l", asm.R(r), mem)
	case ir.OpHalfword:
		g.op("lh", asm.R(r), mem)
	case ir.OpByteword:
		g.op("xr", asm.R(r), asm.R(r))
		g.op("ic", asm.R(r), mem)
	default:
		return 0, fmt.Errorf("cannot load %s into a general register", width)
	}
	g.freeReg(idxReg)
	return r, nil
}

// --- integer expressions ----------------------------------------------------

// evalInt evaluates an integer subtree into a general register.
func (g *gen) evalInt(n *ir.Node) (int, error) {
	switch n.Op {
	case ir.OpFullword, ir.OpHalfword, ir.OpByteword:
		mem, width, idx, _, err := g.memOperand(n)
		if err != nil {
			return 0, err
		}
		return g.loadInt(mem, width, idx)
	case ir.NTReg:
		// A base register named directly in the IF.
		return int(n.Val), nil
	case ir.OpAddr:
		r, err := g.allocR()
		if err != nil {
			return 0, err
		}
		switch len(n.Kids) {
		case 2:
			g.op("la", asm.R(r), asm.M(n.Kids[0].Val, 0, int(n.Kids[1].Val)))
		case 3:
			idx, err := g.evalInt(n.Kids[0])
			if err != nil {
				return 0, err
			}
			g.op("la", asm.R(r), asm.M(n.Kids[1].Val, idx, int(n.Kids[2].Val)))
			g.freeReg(idx)
		}
		return r, nil
	case ir.OpPosConstant:
		r, err := g.allocR()
		if err != nil {
			return 0, err
		}
		g.op("la", asm.R(r), asm.M(n.Kids[0].Val, 0, 0))
		return r, nil
	case ir.OpNegConstant:
		r, err := g.allocR()
		if err != nil {
			return 0, err
		}
		g.op("la", asm.R(r), asm.M(n.Kids[0].Val, 0, 0))
		g.op("lcr", asm.R(r), asm.R(r))
		return r, nil
	case ir.OpIAdd, ir.OpISub:
		return g.addSub(n)
	case ir.OpIMult:
		return g.mult(n)
	case ir.OpIDiv, ir.OpIMod:
		return g.divMod(n)
	case ir.OpIncr:
		r, err := g.evalInt(n.Kids[0])
		if err != nil {
			return 0, err
		}
		g.op("a", asm.R(r), asm.M(rt370.OffOneLoc, 0, rt370.RegPoolBase))
		return r, nil
	case ir.OpDecr:
		r, err := g.evalInt(n.Kids[0])
		if err != nil {
			return 0, err
		}
		g.op("bctr", asm.R(r), asm.R(0))
		return r, nil
	case ir.OpINeg:
		r, err := g.evalInt(n.Kids[0])
		if err != nil {
			return 0, err
		}
		g.op("lcr", asm.R(r), asm.R(r))
		return r, nil
	case ir.OpIAbs:
		r, err := g.evalInt(n.Kids[0])
		if err != nil {
			return 0, err
		}
		g.op("lpr", asm.R(r), asm.R(r))
		return r, nil
	case ir.OpLShift, ir.OpRShift:
		r, err := g.evalInt(n.Kids[0])
		if err != nil {
			return 0, err
		}
		opName := "sla"
		if n.Op == ir.OpRShift {
			opName = "sra"
		}
		if n.Kids[1].Op == ir.TermValue {
			g.op(opName, asm.R(r), asm.I(n.Kids[1].Val))
			return r, nil
		}
		cnt, err := g.evalInt(n.Kids[1])
		if err != nil {
			return 0, err
		}
		g.op(opName, asm.R(r), asm.M(0, 0, cnt))
		g.freeReg(cnt)
		return r, nil
	case ir.OpIMax, ir.OpIMin:
		l, err := g.evalInt(n.Kids[0])
		if err != nil {
			return 0, err
		}
		r, err := g.evalInt(n.Kids[1])
		if err != nil {
			return 0, err
		}
		g.op("cr", asm.R(l), asm.R(r))
		over := g.label()
		mask := int64(11) // gte keeps l for max
		if n.Op == ir.OpIMin {
			mask = 13
		}
		g.branch(mask, over)
		g.op("lr", asm.R(l), asm.R(r))
		g.defLabel(over)
		g.freeReg(r)
		return l, nil
	case ir.OpSubscriptCheck, ir.OpRangeCheck:
		return g.check(n)
	case ir.OpUninitCheck:
		r, err := g.evalInt(n.Kids[0])
		if err != nil {
			return 0, err
		}
		mem, _, idx, _, err := g.memOperand(n.Kids[1])
		if err != nil {
			return 0, err
		}
		g.op("c", asm.R(r), mem)
		g.freeReg(idx)
		g.op("bal", asm.R(14), asm.M(rt370.OffNotInit, 0, rt370.RegPoolBase))
		return r, nil
	case ir.TermCond:
		// Materialize a condition as 0/1: the shaper recorded the mask
		// that selects "true" for the condition subtree.
		if err := g.evalCC(n.Kids[0]); err != nil {
			return 0, err
		}
		r, err := g.allocR()
		if err != nil {
			return 0, err
		}
		g.op("la", asm.R(r), asm.M(1, 0, 0))
		over := g.label()
		g.branch(n.Val, over)
		g.op("la", asm.R(r), asm.M(0, 0, 0))
		g.defLabel(over)
		return r, nil
	case ir.OpBoolNot:
		r, err := g.evalInt(n.Kids[0])
		if err != nil {
			return 0, err
		}
		g.op("x", asm.R(r), asm.M(rt370.OffOneLoc, 0, rt370.RegPoolBase))
		return r, nil
	case ir.OpMakeCommon:
		// The baseline has no CSE machinery: evaluate the expression.
		return g.evalInt(n.Kids[5])
	}
	return 0, fmt.Errorf("unsupported integer subtree %q", n.Op)
}

// isMem reports whether a subtree is a storage reference without
// evaluating anything (memOperand evaluates index subtrees, so it must
// only be called on operands that will actually be consumed).
func isMem(n *ir.Node) bool {
	switch n.Op {
	case ir.OpFullword, ir.OpHalfword, ir.OpByteword, ir.OpDblreal, ir.OpRealword:
		return len(n.Kids) == 2 || len(n.Kids) == 3
	}
	return false
}

// addSub folds plain and indexed memory right operands into A/S/AH/SH.
func (g *gen) addSub(n *ir.Node) (int, error) {
	add := n.Op == ir.OpIAdd
	l, r := n.Kids[0], n.Kids[1]
	// Commute a memory left operand into the right slot for addition.
	if add && isMem(l) && !isMem(r) {
		l, r = r, l
	}
	lr, err := g.evalInt(l)
	if err != nil {
		return 0, err
	}
	if mem, width, idx, ok, err := g.memOperand(r); err != nil {
		return 0, err
	} else if ok && width != ir.OpByteword {
		opName := map[[2]bool]string{
			{true, true}: "a", {true, false}: "ah",
			{false, true}: "s", {false, false}: "sh",
		}[[2]bool{add, width == ir.OpFullword}]
		g.op(opName, asm.R(lr), mem)
		g.freeReg(idx)
		return lr, nil
	}
	rr, err := g.evalInt(r)
	if err != nil {
		return 0, err
	}
	if add {
		g.op("ar", asm.R(lr), asm.R(rr))
	} else {
		g.op("sr", asm.R(lr), asm.R(rr))
	}
	g.freeReg(rr)
	return lr, nil
}

func (g *gen) mult(n *ir.Node) (int, error) {
	l, err := g.evalInt(n.Kids[0])
	if err != nil {
		return 0, err
	}
	pair, err := g.allocPair()
	if err != nil {
		return 0, err
	}
	g.op("lr", asm.R(pair+1), asm.R(l))
	g.freeReg(l)
	if mem, width, idx, ok, err := g.memOperand(n.Kids[1]); err != nil {
		return 0, err
	} else if ok && width == ir.OpFullword {
		g.op("m", asm.R(pair), mem)
		g.freeReg(idx)
	} else {
		r, err := g.evalInt(n.Kids[1])
		if err != nil {
			return 0, err
		}
		g.op("mr", asm.R(pair), asm.R(r))
		g.freeReg(r)
	}
	g.freeReg(pair) // product is in the odd register
	return pair + 1, nil
}

func (g *gen) divMod(n *ir.Node) (int, error) {
	l, err := g.evalInt(n.Kids[0])
	if err != nil {
		return 0, err
	}
	pair, err := g.allocPair()
	if err != nil {
		return 0, err
	}
	g.op("lr", asm.R(pair), asm.R(l))
	g.freeReg(l)
	g.op("srda", asm.R(pair), asm.I(32))
	if mem, width, idx, ok, err := g.memOperand(n.Kids[1]); err != nil {
		return 0, err
	} else if ok && width == ir.OpFullword {
		g.op("d", asm.R(pair), mem)
		g.freeReg(idx)
	} else {
		r, err := g.evalInt(n.Kids[1])
		if err != nil {
			return 0, err
		}
		g.op("dr", asm.R(pair), asm.R(r))
		g.freeReg(r)
	}
	if n.Op == ir.OpIDiv {
		g.freeReg(pair)
		return pair + 1, nil
	}
	g.freeReg(pair + 1)
	return pair, nil
}

func (g *gen) check(n *ir.Node) (int, error) {
	r, err := g.evalInt(n.Kids[0])
	if err != nil {
		return 0, err
	}
	memLo, _, idx1, _, err := g.memOperand(n.Kids[1])
	if err != nil {
		return 0, err
	}
	g.op("c", asm.R(r), memLo)
	g.freeReg(idx1)
	g.op("bal", asm.R(14), asm.M(rt370.OffUnderflow, 0, rt370.RegPoolBase))
	memHi, _, idx2, _, err := g.memOperand(n.Kids[2])
	if err != nil {
		return 0, err
	}
	g.op("c", asm.R(r), memHi)
	g.freeReg(idx2)
	g.op("bal", asm.R(14), asm.M(rt370.OffOverflow, 0, rt370.RegPoolBase))
	return r, nil
}

// branch emits a branch pseudo; a free register is borrowed for the
// long form so a widened branch never clobbers a live value.
func (g *gen) branch(mask, label int64) {
	scratch := 1
	if r, err := g.allocR(); err == nil {
		scratch = r
		g.freeReg(r)
	}
	g.emit(asm.Instr{Pseudo: asm.Branch, Cond: mask, Label: label, Scratch: scratch})
}

func (g *gen) defLabel(l int64) {
	_ = g.prog.DefineLabel(l, len(g.prog.Instrs))
}
