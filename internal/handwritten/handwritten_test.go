package handwritten_test

import (
	"strings"
	"testing"

	"cogg/internal/handwritten"
	"cogg/internal/ir"
	"cogg/internal/labels"
	"cogg/internal/rt370"
)

func trees(t *testing.T, srcs ...string) []*ir.Node {
	t.Helper()
	var out []*ir.Node
	for _, s := range srcs {
		n, err := ir.ParseTree(s)
		if err != nil {
			t.Fatalf("ParseTree(%q): %v", s, err)
		}
		out = append(out, n)
	}
	return out
}

func TestGenerateBasicSequence(t *testing.T) {
	p, err := handwritten.Generate("HW", trees(t,
		"assign(fullword, dsp.96, r.13, iadd(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
	))
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for i := range p.Instrs {
		ops = append(ops, p.Instrs[i].Op)
	}
	// Memory right operand folds into A.
	if strings.Join(ops, " ") != "l a st" {
		t.Errorf("sequence %v", ops)
	}
	if err := labels.Layout(p, rt370.Machine()); err != nil {
		t.Fatal(err)
	}
}

func TestCommutesMemoryLeftOperand(t *testing.T) {
	p, err := handwritten.Generate("HW", trees(t,
		"assign(fullword, dsp.96, r.13, iadd(fullword(dsp.100, r.13), ineg(fullword(dsp.104, r.13))))",
	))
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for i := range p.Instrs {
		ops = append(ops, p.Instrs[i].Op)
	}
	// The non-memory operand evaluates first and the memory operand
	// folds: l, lcr, a, st.
	if strings.Join(ops, " ") != "l lcr a st" {
		t.Errorf("sequence %v", ops)
	}
}

func TestRegisterDiscipline(t *testing.T) {
	// A long chain of expressions must release registers as it goes.
	var srcs []string
	for i := 0; i < 20; i++ {
		srcs = append(srcs,
			"assign(fullword, dsp.96, r.13, imult(iadd(fullword(dsp.100, r.13), fullword(dsp.104, r.13)), fullword(dsp.108, r.13)))")
	}
	if _, err := handwritten.Generate("HW", trees(t, srcs...)); err != nil {
		t.Fatalf("register leak across statements: %v", err)
	}
}

func TestUnsupportedShapeReported(t *testing.T) {
	if _, err := handwritten.Generate("HW", trees(t, "use_common(cse.1)")); err == nil {
		t.Error("CSE operator accepted by the baseline")
	}
}
