package handwritten

import (
	"fmt"

	"cogg/internal/asm"
	"cogg/internal/ir"
	"cogg/internal/rt370"
)

// stmt translates one statement tree.
func (g *gen) stmt(n *ir.Node) error {
	switch n.Op {
	case ir.OpStatement:
		g.stmtNum = int(n.Kids[0].Val)
		return nil
	case ir.OpLabelDef:
		g.defLabel(n.Kids[0].Val)
		return nil
	case ir.OpLabelIndex:
		g.emit(asm.Instr{Pseudo: asm.AddrConst, Label: n.Kids[0].Val})
		return nil
	case ir.OpBranchOp:
		if len(n.Kids) == 1 {
			g.branch(15, n.Kids[0].Val)
			return nil
		}
		cond := n.Kids[1]
		if err := g.evalCC(cond.Kids[0]); err != nil {
			return err
		}
		g.branch(cond.Val, n.Kids[0].Val)
		return nil
	case ir.OpCaseIndex:
		idx, err := g.evalInt(n.Kids[1])
		if err != nil {
			return err
		}
		g.op("sll", asm.R(idx), asm.I(2))
		scratch, err := g.allocR()
		if err != nil {
			return err
		}
		ix := g.emit(asm.Instr{Pseudo: asm.CaseLoad, Label: n.Kids[0].Val,
			IndexR: idx, Scratch: scratch})
		g.prog.Instrs[ix].PoolIx = g.prog.AddPoolLabel(n.Kids[0].Val)
		g.freeReg(scratch)
		g.freeReg(idx)
		return nil
	case ir.OpAssign:
		return g.assign(n)
	case ir.OpLongAssign, ir.OpVarAssign:
		return g.longMove(n)
	case ir.OpClear:
		dst, err := g.evalInt(n.Kids[0])
		if err != nil {
			return err
		}
		g.op("xc", asm.ML(0, n.Kids[1].Val-1, dst), asm.M(0, 0, dst))
		g.freeReg(dst)
		return nil
	case ir.OpSetBit, ir.OpClearBit:
		return g.bitUpdate(n)
	case ir.OpProcEntry:
		g.op("stm", asm.R(14), asm.R(12), asm.M(rt370.OffSaveArea, 0, rt370.RegStackBase))
		g.op("bal", asm.R(14), asm.M(rt370.OffEntryCode, 0, rt370.RegPoolBase))
		return nil
	case ir.OpProcExit:
		g.op("l", asm.R(13), asm.M(rt370.OffOldBase, 0, rt370.RegStackBase))
		g.op("lm", asm.R(14), asm.R(12), asm.M(rt370.OffSaveArea, 0, rt370.RegStackBase))
		g.op("bcr", asm.I(15), asm.R(14))
		return nil
	case ir.OpProcCall:
		g.prog.CallArgs[len(g.prog.Instrs)] = n.Kids[0].Val
		// kids: cnt, fullword(bare), dsp, base
		g.op("l", asm.R(15), asm.M(n.Kids[2].Val, 0, int(n.Kids[3].Val)))
		g.op("balr", asm.R(14), asm.R(15))
		return nil
	case ir.OpAbortOp:
		g.prog.AbortSites[len(g.prog.Instrs)] = n.Kids[0].Val
		return nil
	}
	return fmt.Errorf("unsupported statement %q", n.Op)
}

// assign handles the shaped assignment forms. The kids are flattened:
//
//	[typeop dsp base value]
//	[typeop idx dsp base value]
//	[addrTree addrTree lng]      block move (MVC)
func (g *gen) assign(n *ir.Node) error {
	kids := n.Kids
	head := kids[0]
	if head.Op == ir.OpAddr && len(kids) == 3 && kids[2].Op == ir.TermLng {
		dst, err := g.evalInt(kids[0])
		if err != nil {
			return err
		}
		src, err := g.evalInt(kids[1])
		if err != nil {
			return err
		}
		g.op("mvc", asm.ML(0, kids[2].Val-1, dst), asm.M(0, 0, src))
		g.freeReg(dst)
		g.freeReg(src)
		return nil
	}
	var mem asm.Operand
	var idxReg int
	var value *ir.Node
	switch len(kids) {
	case 4:
		mem = asm.M(kids[1].Val, 0, int(kids[2].Val))
		value = kids[3]
	case 5:
		idx, err := g.evalInt(kids[1])
		if err != nil {
			return err
		}
		idxReg = idx
		mem = asm.M(kids[2].Val, idx, int(kids[3].Val))
		value = kids[4]
	default:
		return fmt.Errorf("malformed assignment %s", n)
	}

	switch head.Op {
	case ir.OpDblreal, ir.OpRealword:
		f, err := g.evalReal(value)
		if err != nil {
			return err
		}
		if head.Op == ir.OpDblreal {
			g.op("std", asm.R(f), mem)
		} else {
			g.op("ste", asm.R(f), mem)
		}
		g.freeFreg(f)
		g.freeReg(idxReg)
		return nil
	}

	// Boolean condition-code values store through MVI when the target is
	// directly addressable.
	if isCCTree(value) {
		if err := g.evalCC(value); err != nil {
			return err
		}
		if idxReg != 0 {
			r, err := g.allocR()
			if err != nil {
				return err
			}
			g.op("la", asm.R(r), mem)
			mem = asm.M(0, 0, r)
			g.freeReg(r)
			g.freeReg(idxReg)
			idxReg = 0
		}
		over := g.label()
		g.op("mvi", mem, asm.I(0))
		g.branch(8, over) // false: done
		g.op("mvi", mem, asm.I(1))
		g.defLabel(over)
		return nil
	}

	r, err := g.evalInt(value)
	if err != nil {
		return err
	}
	switch head.Op {
	case ir.OpFullword:
		g.op("st", asm.R(r), mem)
	case ir.OpHalfword:
		g.op("sth", asm.R(r), mem)
	case ir.OpByteword:
		g.op("stc", asm.R(r), mem)
	default:
		return fmt.Errorf("unsupported assignment format %q", head.Op)
	}
	g.freeReg(r)
	g.freeReg(idxReg)
	return nil
}

// isCCTree recognizes value subtrees that produce a condition code in
// the TM convention (true selected by mask 7, false by mask 8); the
// shaper routes comparisons through cond-to-register instead.
func isCCTree(n *ir.Node) bool {
	switch n.Op {
	case ir.OpBoolAnd, ir.OpBoolOr, ir.OpBoolTest, ir.OpTestBit, ir.OpIOdd:
		return true
	}
	return false
}

// evalCC emits code leaving the tested condition in the condition code.
// The masks follow the shaper's conventions: comparison masks for
// icompare/rcompare, the TM conventions (true=7, false=8) for the
// boolean forms.
func (g *gen) evalCC(n *ir.Node) error {
	switch n.Op {
	case ir.OpICompare:
		l, err := g.evalInt(n.Kids[0])
		if err != nil {
			return err
		}
		if mem, width, idx, ok, err := g.memOperand(n.Kids[1]); err != nil {
			return err
		} else if ok && width == ir.OpFullword {
			g.op("c", asm.R(l), mem)
			g.freeReg(idx)
			g.freeReg(l)
			return nil
		} else if ok && width == ir.OpHalfword {
			g.op("ch", asm.R(l), mem)
			g.freeReg(idx)
			g.freeReg(l)
			return nil
		}
		r, err := g.evalInt(n.Kids[1])
		if err != nil {
			return err
		}
		g.op("cr", asm.R(l), asm.R(r))
		g.freeReg(l)
		g.freeReg(r)
		return nil
	case ir.OpRCompare:
		l, err := g.evalReal(n.Kids[0])
		if err != nil {
			return err
		}
		r, err := g.evalReal(n.Kids[1])
		if err != nil {
			return err
		}
		g.op("cdr", asm.R(l), asm.R(r))
		g.freeFreg(l)
		g.freeFreg(r)
		return nil
	case ir.OpBoolTest:
		// [byteword dsp base] flattened, or a register subtree.
		if len(n.Kids) == 3 && n.Kids[0].Op == ir.OpByteword {
			g.op("tm", asm.M(n.Kids[1].Val, 0, int(n.Kids[2].Val)), asm.I(1))
			return nil
		}
		r, err := g.evalInt(n.Kids[0])
		if err != nil {
			return err
		}
		g.op("n", asm.R(r), asm.M(rt370.OffOneLoc, 0, rt370.RegPoolBase))
		g.freeReg(r)
		return nil
	case ir.OpIOdd:
		r, err := g.evalInt(n.Kids[0])
		if err != nil {
			return err
		}
		g.op("n", asm.R(r), asm.M(rt370.OffOneLoc, 0, rt370.RegPoolBase))
		g.freeReg(r)
		return nil
	case ir.OpBoolAnd, ir.OpBoolOr:
		return g.boolPair(n)
	case ir.OpTestBit:
		return g.testBit(n)
	}
	return fmt.Errorf("unsupported condition subtree %q", n.Op)
}

// boolPair evaluates and/or over flattened byte operands or register
// subtrees using the TM/skip idiom of the specification.
func (g *gen) boolPair(n *ir.Node) error {
	and := n.Op == ir.OpBoolAnd
	// Flattened (byte,byte) form: [byteword dsp r byteword dsp r].
	if len(n.Kids) == 6 && n.Kids[0].Op == ir.OpByteword {
		over := g.label()
		g.op("tm", asm.M(n.Kids[1].Val, 0, int(n.Kids[2].Val)), asm.I(1))
		if and {
			g.branch(8, over)
		} else {
			g.branch(7, over)
		}
		g.op("tm", asm.M(n.Kids[4].Val, 0, int(n.Kids[5].Val)), asm.I(1))
		g.defLabel(over)
		return nil
	}
	if len(n.Kids) != 2 {
		return fmt.Errorf("malformed boolean operation %s", n)
	}
	l, err := g.evalInt(n.Kids[0])
	if err != nil {
		return err
	}
	r, err := g.evalInt(n.Kids[1])
	if err != nil {
		return err
	}
	if and {
		g.op("nr", asm.R(l), asm.R(r))
	} else {
		g.op("or", asm.R(l), asm.R(r))
	}
	g.op("n", asm.R(l), asm.M(rt370.OffOneLoc, 0, rt370.RegPoolBase))
	g.freeReg(l)
	g.freeReg(r)
	return nil
}

// testBit handles set membership: immediate TM or the dynamic bit test.
func (g *gen) testBit(n *ir.Node) error {
	// [byteword dsp base elmnt]
	if len(n.Kids) == 4 && n.Kids[0].Op == ir.OpByteword {
		g.op("tm", asm.M(n.Kids[1].Val, 0, int(n.Kids[2].Val)), asm.I(n.Kids[3].Val))
		return nil
	}
	// [addr dsp base elemTree]
	if len(n.Kids) == 4 && n.Kids[0].Op == ir.OpAddr {
		e, err := g.evalInt(n.Kids[3])
		if err != nil {
			return err
		}
		bit, err := g.allocR()
		if err != nil {
			return err
		}
		g.op("lr", asm.R(bit), asm.R(e))
		g.op("srl", asm.R(e), asm.I(3))
		g.op("n", asm.R(bit), asm.M(rt370.OffSevenLoc, 0, rt370.RegPoolBase))
		g.op("ic", asm.R(e), asm.M(n.Kids[1].Val, e, int(n.Kids[2].Val)))
		g.op("sll", asm.R(bit), asm.I(2))
		g.op("n", asm.R(e), asm.M(rt370.OffBitmasks, bit, rt370.RegPoolBase))
		g.freeReg(bit)
		g.freeReg(e)
		return nil
	}
	return fmt.Errorf("malformed bit test %s", n)
}

// bitUpdate handles set_bit_value and clear_bit_value statements.
func (g *gen) bitUpdate(n *ir.Node) error {
	set := n.Op == ir.OpSetBit
	// [byteword dsp base elmnt]
	if len(n.Kids) == 4 && n.Kids[0].Op == ir.OpByteword {
		mem := asm.M(n.Kids[1].Val, 0, int(n.Kids[2].Val))
		if set {
			g.op("oi", mem, asm.I(n.Kids[3].Val))
		} else {
			g.op("ni", mem, asm.I(n.Kids[3].Val))
		}
		return nil
	}
	// [addr dsp base elemTree]: dynamic element.
	if len(n.Kids) == 4 && n.Kids[0].Op == ir.OpAddr {
		e, err := g.evalInt(n.Kids[3])
		if err != nil {
			return err
		}
		bit, err := g.allocR()
		if err != nil {
			return err
		}
		tmp, err := g.allocR()
		if err != nil {
			return err
		}
		g.op("lr", asm.R(bit), asm.R(e))
		g.op("srl", asm.R(e), asm.I(3))
		g.op("n", asm.R(bit), asm.M(rt370.OffSevenLoc, 0, rt370.RegPoolBase))
		g.op("ic", asm.R(tmp), asm.M(n.Kids[1].Val, e, int(n.Kids[2].Val)))
		g.op("sll", asm.R(bit), asm.I(2))
		g.op("o", asm.R(tmp), asm.M(rt370.OffBitmasks, bit, rt370.RegPoolBase))
		if !set {
			// (byte OR mask) XOR mask clears the bit.
			g.op("x", asm.R(tmp), asm.M(rt370.OffBitmasks, bit, rt370.RegPoolBase))
		}
		g.op("stc", asm.R(tmp), asm.M(n.Kids[1].Val, e, int(n.Kids[2].Val)))
		g.freeReg(tmp)
		g.freeReg(bit)
		g.freeReg(e)
		return nil
	}
	return fmt.Errorf("malformed bit update %s", n)
}

// longMove handles long_assign and var_assign with MVCL.
func (g *gen) longMove(n *ir.Node) error {
	dst, err := g.evalInt(n.Kids[0])
	if err != nil {
		return err
	}
	src, err := g.evalInt(n.Kids[1])
	if err != nil {
		return err
	}
	p1, err := g.allocPair()
	if err != nil {
		return err
	}
	p2, err := g.allocPair()
	if err != nil {
		return err
	}
	if n.Op == ir.OpLongAssign {
		g.op("la", asm.R(p1+1), asm.M(n.Kids[2].Val, 0, 0))
		g.op("la", asm.R(p2+1), asm.M(n.Kids[2].Val, 0, 0))
	} else {
		l, err := g.evalInt(n.Kids[2])
		if err != nil {
			return err
		}
		g.op("lr", asm.R(p1+1), asm.R(l))
		g.op("lr", asm.R(p2+1), asm.R(l))
		g.freeReg(l)
	}
	g.op("lr", asm.R(p1), asm.R(dst))
	g.op("lr", asm.R(p2), asm.R(src))
	g.op("mvcl", asm.R(p1), asm.R(p2))
	g.freeReg(dst)
	g.freeReg(src)
	g.freeReg(p1)
	g.freeReg(p1 + 1)
	g.freeReg(p2)
	g.freeReg(p2 + 1)
	return nil
}

// evalReal evaluates a floating point subtree into a floating register.
func (g *gen) evalReal(n *ir.Node) (int, error) {
	switch n.Op {
	case ir.OpDblreal, ir.OpRealword:
		mem, width, idx, _, err := g.memOperand(n)
		if err != nil {
			return 0, err
		}
		f, err := g.allocF()
		if err != nil {
			return 0, err
		}
		if width == ir.OpDblreal {
			g.op("ld", asm.R(f), mem)
		} else {
			g.op("le", asm.R(f), mem)
		}
		g.freeReg(idx)
		return f, nil
	case ir.OpRAdd, ir.OpRSub, ir.OpRMult, ir.OpRDiv:
		l, err := g.evalReal(n.Kids[0])
		if err != nil {
			return 0, err
		}
		if mem, width, idx, ok, err := g.memOperand(n.Kids[1]); err != nil {
			return 0, err
		} else if ok && width == ir.OpDblreal {
			opName := map[string]string{
				ir.OpRAdd: "ad", ir.OpRSub: "sd", ir.OpRMult: "md", ir.OpRDiv: "dd",
			}[n.Op]
			g.op(opName, asm.R(l), mem)
			g.freeReg(idx)
			return l, nil
		}
		r, err := g.evalReal(n.Kids[1])
		if err != nil {
			return 0, err
		}
		opName := map[string]string{
			ir.OpRAdd: "adr", ir.OpRSub: "sdr", ir.OpRMult: "mdr", ir.OpRDiv: "ddr",
		}[n.Op]
		g.op(opName, asm.R(l), asm.R(r))
		g.freeFreg(r)
		return l, nil
	case ir.OpRNeg:
		f, err := g.evalReal(n.Kids[0])
		if err != nil {
			return 0, err
		}
		g.op("lcdr", asm.R(f), asm.R(f))
		return f, nil
	case ir.OpRAbs:
		f, err := g.evalReal(n.Kids[0])
		if err != nil {
			return 0, err
		}
		g.op("lpdr", asm.R(f), asm.R(f))
		return f, nil
	case ir.OpHalve:
		f, err := g.evalReal(n.Kids[0])
		if err != nil {
			return 0, err
		}
		g.op("hdr", asm.R(f), asm.R(f))
		return f, nil
	}
	return 0, fmt.Errorf("unsupported real subtree %q", n.Op)
}
