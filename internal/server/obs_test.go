package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cogg/internal/batch"
	"cogg/internal/obs"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// parseSamples maps each sample line ("name{labels} value") to its
// value, keyed by the full series text before the value.
func parseSamples(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// sumSeries sums every series whose name (before any label set) is name.
func sumSeries(samples map[string]float64, name string) float64 {
	total := 0.0
	for k, v := range samples {
		base, _, _ := strings.Cut(k, "{")
		if base == name {
			total += v
		}
	}
	return total
}

// TestMetricsUnderConcurrentLoad drives the daemon with 8 concurrent
// workers mixing good and failing units while other goroutines scrape
// /metrics, /healthz, and /varz, then asserts the exposition is valid,
// the required series are present and non-zero, and every counter is
// monotone between two successive scrapes.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	const workers = 8
	const perWorker = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := CompileRequest{Name: fmt.Sprintf("u%d-%d", w, i), Lang: "if", Source: goodIF}
				if i%4 == 3 {
					req.Source = badIF // exercise the failure counters
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	// Concurrent scrapers: the registry must stay consistent while the
	// instruments are being updated.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for _, path := range []string{"/metrics", "/healthz", "/varz"} {
		scrapeWG.Add(1)
		go func(path string) {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	first := scrape(t, ts)
	if err := obs.LintExposition(first); err != nil {
		t.Fatalf("first scrape not valid exposition: %v", err)
	}
	// One more successful unit between the scrapes, so monotonicity is
	// tested against real movement, not a frozen registry.
	if status, _ := compile(t, ts, CompileRequest{Name: "between", Lang: "if", Source: goodIF}); status != http.StatusOK {
		t.Fatalf("between-scrapes compile: status %d", status)
	}
	second := scrape(t, ts)
	if err := obs.LintExposition(second); err != nil {
		t.Fatalf("second scrape not valid exposition: %v", err)
	}

	a, b := parseSamples(t, first), parseSamples(t, second)
	for _, name := range []string{
		"cogg_translations_total",
		"cogg_translation_failures_total",
		"cogg_reductions_total",
		"cogg_units_compiled_total",
		"cogg_units_failed_total",
		"cogg_register_allocs_total",
		"cogd_http_requests_total",
		"cogd_requests_total",
		"cogd_sessions_total",
		"cogd_microbatches_total",
	} {
		if sumSeries(b, name) <= 0 {
			t.Errorf("series %s absent or zero after load", name)
		}
	}
	// Per-phase latency histograms must have observations.
	for _, phase := range []string{"parse-reduce", "regalloc", "emit"} {
		found := false
		for k, v := range b {
			if strings.HasPrefix(k, "cogg_phase_seconds_count") && strings.Contains(k, `phase="`+phase+`"`) && v > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("cogg_phase_seconds for phase %q has no observations", phase)
		}
	}
	// Counters are monotone: every *_total series present in the first
	// scrape must be <= its value in the second.
	for k, va := range a {
		base, _, _ := strings.Cut(k, "{")
		if !strings.HasSuffix(base, "_total") && !strings.HasSuffix(base, "_count") && !strings.HasSuffix(base, "_bucket") {
			continue
		}
		if vb, ok := b[k]; ok && vb < va {
			t.Errorf("counter %s went backwards: %v -> %v", k, va, vb)
		}
	}
	if sumSeries(b, "cogg_translations_total") <= sumSeries(a, "cogg_translations_total") {
		t.Errorf("cogg_translations_total did not advance between scrapes")
	}
}

// TestTraceIDPropagation asserts the client's X-Trace-Id is honored
// end-to-end: echoed in the response header and body, and retrievable
// from /v1/traces with the pipeline's phase spans attached.
func TestTraceIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	const id = "cafe0123deadbeef"
	body, _ := json.Marshal(CompileRequest{Name: "traced", Lang: "if", Source: goodIF})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/compile", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != id {
		t.Errorf("response header X-Trace-Id = %q, want %q", got, id)
	}
	var cr CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.TraceID != id {
		t.Errorf("body trace_id = %q, want %q", cr.TraceID, id)
	}

	var traces TracesResponse
	if status := getJSON(t, ts.URL+"/v1/traces", &traces); status != http.StatusOK {
		t.Fatalf("/v1/traces: status %d", status)
	}
	var td *obs.TraceData
	for _, cand := range traces.Traces {
		if cand.ID == id {
			td = cand
			break
		}
	}
	if td == nil {
		t.Fatalf("trace %s not in /v1/traces (%d traces)", id, len(traces.Traces))
	}
	if td.Name != "traced" {
		t.Errorf("trace name = %q, want %q", td.Name, "traced")
	}
	want := map[string]bool{"request": false, "unit:traced": false, "queue-wait": false, "parse-reduce": false, "regalloc": false, "emit": false}
	for _, sp := range td.Spans {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
			if sp.DurNS < 0 {
				t.Errorf("span %s unfinished in completed request", sp.Name)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("span %q missing from trace", name)
		}
	}
}

// TestTracesRingAndQuery asserts the ring bound holds and the n query
// parameter limits (and validates).
func TestTracesRingAndQuery(t *testing.T) {
	_, ts := newTestServer(t, Options{TraceRing: 4})

	for i := 0; i < 10; i++ {
		if status, _ := compile(t, ts, CompileRequest{Name: fmt.Sprintf("r%d", i), Lang: "if", Source: goodIF}); status != http.StatusOK {
			t.Fatalf("compile %d: status %d", i, status)
		}
	}
	var traces TracesResponse
	getJSON(t, ts.URL+"/v1/traces", &traces)
	if len(traces.Traces) != 4 {
		t.Errorf("ring of 4 returned %d traces", len(traces.Traces))
	}
	// Newest first: the most recent unit appears before older ones.
	if len(traces.Traces) > 0 && traces.Traces[0].Name != "r9" {
		t.Errorf("newest trace is %q, want r9", traces.Traces[0].Name)
	}
	getJSON(t, ts.URL+"/v1/traces?n=2", &traces)
	if len(traces.Traces) != 2 {
		t.Errorf("n=2 returned %d traces", len(traces.Traces))
	}
	if status := getJSON(t, ts.URL+"/v1/traces?n=-1", &ErrorResponse{}); status != http.StatusBadRequest {
		t.Errorf("n=-1: status %d, want 400", status)
	}
}

// TestBlockedParseDerivation asserts a blocked parse's 422 carries the
// partial derivation: the instructions the recovery emitted before and
// between the blocks, attributed to their productions.
func TestBlockedParseDerivation(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// One healthy statement, then a blocked one: the healthy prefix
	// guarantees recorded instructions precede the block.
	src := goodIF + " " + badIF
	status, resp := compile(t, ts, CompileRequest{Name: "blocked", Lang: "if", Source: src})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", status)
	}
	if resp.Failure == nil || resp.Failure.Mode != batch.FailBlocked.String() {
		t.Fatalf("failure = %+v, want blocked", resp.Failure)
	}
	if len(resp.Failure.Blocks) == 0 {
		t.Error("422 carries no block diagnostics")
	}
	if len(resp.Failure.Derivation) == 0 {
		t.Fatal("422 carries no partial derivation")
	}
	for _, e := range resp.Failure.Derivation {
		if e.Op == "" || e.Kind == "" {
			t.Errorf("malformed derivation entry %+v", e)
		}
	}
}

// TestExplainRequest asserts explain:true returns the full derivation
// alongside a successful listing, with every entry attributed.
func TestExplainRequest(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	status, resp := compile(t, ts, CompileRequest{Name: "exp", Lang: "if", Source: goodIF, Explain: true})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Derivation) == 0 {
		t.Fatal("explain:true returned no derivation")
	}
	for _, e := range resp.Derivation {
		if e.Kind != "template" && e.Kind != "semantic" && e.Kind != "evict-move" {
			t.Errorf("entry %d has unknown kind %q", e.Instr, e.Kind)
		}
		if e.Prod <= 0 {
			t.Errorf("entry %d not attributed to a production: %+v", e.Instr, e)
		}
	}
	// Off by default: the same request without explain carries none.
	_, plain := compile(t, ts, CompileRequest{Name: "plain", Lang: "if", Source: goodIF})
	if len(plain.Derivation) != 0 {
		t.Errorf("derivation returned without explain:true")
	}
}

// TestSlowRequestLog asserts requests past the threshold dump their
// span tree to the configured writer.
func TestSlowRequestLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Options{SlowThreshold: time.Nanosecond, SlowLog: &buf})

	if status, _ := compile(t, ts, CompileRequest{Name: "slow", Lang: "if", Source: goodIF}); status != http.StatusOK {
		t.Fatalf("compile: status %d", status)
	}
	out := buf.String()
	if !strings.Contains(out, "slow request") || !strings.Contains(out, "parse-reduce") {
		t.Errorf("slow log missing span tree, got %q", out)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the slow log writes from
// handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
