package server

import (
	"errors"
	"net/http"

	"cogg/internal/batch"
	"cogg/internal/codegen"
)

// CompileRequest is the JSON body of POST /v1/compile, and one unit of
// POST /v1/batch.
type CompileRequest struct {
	// Name labels the unit in listings, errors, and statistics.
	Name string `json:"name,omitempty"`
	// Lang is the input language: "pascal" (default) compiles source
	// through the full pipeline, "if" drives the code generator over a
	// whitespace-separated prefix-IF token stream directly.
	Lang string `json:"lang,omitempty"`
	// Source is the program or IF text.
	Source string `json:"source"`
	// Spec selects the code generator specification by embedded name
	// (amdahl470, amdahl-minimal, risc32); empty means the daemon's
	// default. File paths are deliberately not accepted over the wire.
	Spec string `json:"spec,omitempty"`
	// Options are the shaper/optimizer knobs of the pascal pipeline,
	// mirroring the pascal370 flags.
	Options CompileOptions `json:"options,omitempty"`
	// Deck and IF request the loader-card deck and the linearized
	// intermediate form alongside the listing (pascal only).
	Deck bool `json:"deck,omitempty"`
	IF   bool `json:"if,omitempty"`
	// Explain requests the derivation provenance — every emitted
	// instruction mapped to the production, template, and operand
	// sources that produced it — alongside the listing. Costs one extra
	// recording translation per unit, so it is opt-in; blocked parses
	// return their partial derivation on the 422 regardless.
	Explain bool `json:"explain,omitempty"`
	// DeadlineMillis bounds this request's wall time; 0 means the
	// daemon's default. A request past its deadline fails with 504.
	DeadlineMillis int `json:"deadline_ms,omitempty"`
}

// CompileOptions mirror the pascal370 shaping flags. StatementRecords
// defaults to on, as in the CLI; send false explicitly to disable.
type CompileOptions struct {
	CSE              bool  `json:"cse,omitempty"`
	SubscriptChecks  bool  `json:"checks,omitempty"`
	UninitChecks     bool  `json:"uninit,omitempty"`
	StatementRecords *bool `json:"statement_records,omitempty"`
}

func (o CompileOptions) statementRecords() bool {
	return o.StatementRecords == nil || *o.StatementRecords
}

// CompileResponse is the JSON body answering /v1/compile, and one entry
// of a /v1/batch response. On failure only Name and Failure are set and
// the HTTP status encodes the failure mode (see StatusFor).
type CompileResponse struct {
	Name    string `json:"name"`
	Listing string `json:"listing,omitempty"`
	// Deck carries the loader-card images base64-encoded: card decks
	// are binary, and a bare JSON string would corrupt non-UTF-8 bytes.
	Deck         string   `json:"deck_b64,omitempty"`
	IF           string   `json:"if,omitempty"`
	Tokens       int      `json:"tokens"`
	Reductions   int      `json:"reductions"`
	Instructions int      `json:"instructions"`
	CodeBytes    int      `json:"code_bytes"`
	Failure      *Failure `json:"failure,omitempty"`
	// TraceID identifies this request's trace: the client's X-Trace-Id
	// header when one was sent, a fresh ID otherwise. The span tree is
	// retrievable from /v1/traces under this ID while it stays in the
	// ring.
	TraceID string `json:"trace_id,omitempty"`
	// Degraded marks a response produced by a fleet front's local
	// fallback compilation rather than a cogd replica (see
	// internal/cluster); the daemon itself never sets it.
	Degraded bool `json:"degraded,omitempty"`
	// Derivation maps each emitted instruction to its producing
	// production and template (requested via Explain).
	Derivation []codegen.ProvEntry `json:"derivation,omitempty"`
}

// Failure is the wire form of one failed unit: the batch FailureMode
// taxonomy plus, for blocked parses, every BlockDiag the run collected.
type Failure struct {
	// Mode is the FailureMode string: panic, blocked, timeout,
	// resource-limit, io, or other.
	Mode      string  `json:"mode"`
	Message   string  `json:"message"`
	Blocks    []Block `json:"blocks,omitempty"`
	Truncated bool    `json:"truncated,omitempty"`
	// Derivation is the partial derivation recorded up to the failure —
	// on a blocked parse (422), the instructions the recovery emitted
	// before and between the blocks, each attributed to its production.
	Derivation []codegen.ProvEntry `json:"derivation,omitempty"`
}

// Block is the wire form of one codegen.BlockDiag.
type Block struct {
	Pos       int      `json:"pos"`
	Stmt      int      `json:"stmt,omitempty"`
	State     int      `json:"state"`
	Lookahead string   `json:"lookahead"`
	Stack     []string `json:"stack,omitempty"`
	Reason    string   `json:"reason"`
	// Expected lists the IF symbols the specification could have
	// accepted at the blocking point (see codegen.BlockDiag.Expected).
	Expected []string `json:"expected,omitempty"`
}

// BatchRequest is the JSON body of POST /v1/batch: many units compiled
// as one batch over the worker pool, results in input order.
type BatchRequest struct {
	Units          []CompileRequest `json:"units"`
	DeadlineMillis int              `json:"deadline_ms,omitempty"`
}

// BatchResponse answers /v1/batch. The HTTP status is 200 as long as
// the batch itself ran; per-unit failures are in each result's Failure,
// with Failed counting them.
type BatchResponse struct {
	Results []CompileResponse `json:"results"`
	Failed  int               `json:"failed"`
	// TraceID identifies the batch's shared trace; each unit is a child
	// span under the request span.
	TraceID string `json:"trace_id,omitempty"`
}

// GrammarSessionRequest is the JSON body of POST /v1/grammar/session:
// open a grammar-walk cursor over a specification's SLR tables.
type GrammarSessionRequest struct {
	// Spec selects the specification by embedded name, as in
	// CompileRequest; empty means the daemon's default.
	Spec string `json:"spec,omitempty"`
}

// GrammarSessionResponse answers /v1/grammar/session.
type GrammarSessionResponse struct {
	SessionID string `json:"session_id"`
	Spec      string `json:"spec"`
	State     int    `json:"state"`
	Depth     int    `json:"depth"`
	// Legal lists every IF symbol the grammar accepts next, in
	// symbol-id order, with "$end" last when the program may end here —
	// the same order as a blocked parse's expected-symbol diagnostic.
	Legal   []string `json:"legal"`
	TraceID string   `json:"trace_id,omitempty"`
}

// GrammarNextRequest is the JSON body of POST /v1/grammar/next:
// advance a session's cursor on one symbol. "$end" accepts the walk
// and closes the session.
type GrammarNextRequest struct {
	SessionID string `json:"session_id"`
	Symbol    string `json:"symbol"`
}

// GrammarNextResponse answers /v1/grammar/next. An illegal-but-declared
// symbol comes back as 422 with Error set and Legal carrying the
// recovery set; the session survives.
type GrammarNextResponse struct {
	SessionID string `json:"session_id"`
	State     int    `json:"state"`
	Depth     int    `json:"depth"`
	// Reduced lists the productions the advance's reduce cascade fired,
	// rendered as grammar rules, in execution order.
	Reduced  []string `json:"reduced,omitempty"`
	Accepted bool     `json:"accepted,omitempty"`
	Legal    []string `json:"legal,omitempty"`
	Error    string   `json:"error,omitempty"`
	TraceID  string   `json:"trace_id,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error   string   `json:"error"`
	Failure *Failure `json:"failure,omitempty"`
}

// StatusFor maps the batch failure taxonomy onto HTTP status codes:
// a blocked parse is the client's IF exceeding the specification (422),
// a resource limit is an oversized translation (413), a deadline is a
// gateway-style timeout (504), and a recovered panic or infrastructure
// fault is an internal error (500). FailOther covers front-end
// rejections — bad Pascal, unknown symbols — which are plain 400s.
func StatusFor(mode batch.FailureMode) int {
	switch mode {
	case batch.FailNone:
		return http.StatusOK
	case batch.FailBlocked:
		return http.StatusUnprocessableEntity
	case batch.FailResource:
		return http.StatusRequestEntityTooLarge
	case batch.FailTimeout:
		return http.StatusGatewayTimeout
	case batch.FailPanic, batch.FailIO:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// failureFor renders an error as its wire Failure, expanding blocked
// parses into their per-site diagnostics.
func failureFor(err error, mode batch.FailureMode) *Failure {
	if err == nil {
		return nil
	}
	f := &Failure{Mode: mode.String(), Message: err.Error()}
	var be *codegen.BlockedError
	if errors.As(err, &be) {
		f.Truncated = be.Truncated
		for _, d := range be.Blocks {
			f.Blocks = append(f.Blocks, Block{
				Pos:       d.Pos,
				Stmt:      d.Stmt,
				State:     d.State,
				Lookahead: d.Lookahead,
				Stack:     d.Stack,
				Reason:    d.Reason,
				Expected:  d.Expected,
			})
		}
	}
	return f
}
