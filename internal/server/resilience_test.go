package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"cogg/internal/faultinject"
)

// postRaw sends one JSON request and returns the raw response so tests
// can inspect headers.
func postRaw(t *testing.T, url string, req any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestRetryAfterOnQueueFull: a 429 from admission carries Retry-After,
// so honoring clients back off instead of hammering a full queue.
func TestRetryAfterOnQueueFull(t *testing.T) {
	faultinject.Set(faultinject.Rule{
		Site: "codegen/reduce", Key: "slow.if", Kind: faultinject.KindDelay, Delay: 40 * time.Millisecond,
	})
	defer faultinject.Reset()
	s, ts := newTestServer(t, Options{QueueBound: 1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		compile(t, ts, CompileRequest{Name: "slow.if", Lang: "if", Source: goodIF})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.admitted.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.admitted.Load() < 1 {
		t.Fatal("slow request never passed admission")
	}

	resp := postRaw(t, ts.URL+"/v1/compile", CompileRequest{Name: "late.if", Lang: "if", Source: goodIF})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request with a full queue: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After header")
	}
	wg.Wait()
}

// TestRetryAfterOnInjectedAdmitFault: the admission failpoint answers
// 503 with Retry-After — the same retryable contract as draining, which
// is what the cluster policy engine keys its failover on.
func TestRetryAfterOnInjectedAdmitFault(t *testing.T) {
	faultinject.Set(faultinject.Rule{
		Site: "server/admit", Key: "fenced.if", Kind: faultinject.KindError, Count: 1,
	})
	defer faultinject.Reset()
	_, ts := newTestServer(t, Options{})

	resp := postRaw(t, ts.URL+"/v1/compile", CompileRequest{Name: "fenced.if", Lang: "if", Source: goodIF})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected admit fault: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("injected 503 carries no Retry-After header")
	}
	// The failpoint fired once; the daemon serves normally afterwards.
	if status, r := compile(t, ts, CompileRequest{Name: "fenced.if", Lang: "if", Source: goodIF}); status != http.StatusOK {
		t.Fatalf("request after injected fault: %d (%+v)", status, r.Failure)
	}
}

// TestDrainRefusesGrammarCursors: a grammar session opened before a
// drain cannot be advanced once the drain starts — cursor traffic goes
// through the same gate as compiles, so a draining daemon quiesces
// completely instead of serving walks forever.
func TestDrainRefusesGrammarCursors(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	var open GrammarSessionResponse
	if status := post(t, ts.URL+"/v1/grammar/session", GrammarSessionRequest{}, &open); status != http.StatusOK {
		t.Fatalf("open session: %d", status)
	}
	var step GrammarNextResponse
	if status := post(t, ts.URL+"/v1/grammar/next", GrammarNextRequest{SessionID: open.SessionID, Symbol: "assign"}, &step); status != http.StatusOK {
		t.Fatalf("advance before drain: %d", status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if status := post(t, ts.URL+"/v1/grammar/next", GrammarNextRequest{SessionID: open.SessionID, Symbol: "fullword"}, nil); status != http.StatusServiceUnavailable {
		t.Errorf("advance while draining: %d, want 503", status)
	}
	if status := post(t, ts.URL+"/v1/grammar/session", GrammarSessionRequest{}, nil); status != http.StatusServiceUnavailable {
		t.Errorf("open while draining: %d, want 503", status)
	}
}

// TestGrammarSweeperReclaimsIdleSessions: an abandoned cursor is
// reclaimed by the background sweeper without any further table traffic
// — the inline sweep alone would leave it pinned until the next
// create/get.
func TestGrammarSweeperReclaimsIdleSessions(t *testing.T) {
	s, ts := newTestServer(t, Options{GrammarTTL: 50 * time.Millisecond})

	var open GrammarSessionResponse
	if status := post(t, ts.URL+"/v1/grammar/session", GrammarSessionRequest{}, &open); status != http.StatusOK {
		t.Fatalf("open session: %d", status)
	}
	if got := s.grammar.size(); got != 1 {
		t.Fatalf("sessions after open: %d, want 1", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.grammar.size() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.grammar.size(); got != 0 {
		t.Fatalf("idle session not reclaimed by the background sweeper (size=%d)", got)
	}
	if got := s.grammar.expired.Load(); got != 1 {
		t.Errorf("expired = %d, want 1", got)
	}
}

// TestCloseStopsBackgroundGoroutines: Drain+Close must take the
// collector and the grammar sweeper down with it — a server churned in
// tests (or embedded and restarted) cannot leak a goroutine per
// instance.
func TestCloseStopsBackgroundGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		s, err := New(Options{GrammarTTL: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := s.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		s.Close()
	}
	// Settle: finished goroutines unwind asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines after 3 server lifecycles: %d, was %d before", after, before)
	}
}
