package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// logBuffer captures Options.Logf lines for assertion.
type logBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (lb *logBuffer) logf(format string, args ...any) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.lines = append(lb.lines, fmt.Sprintf(format, args...))
}

func (lb *logBuffer) contains(sub string) bool {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	for _, l := range lb.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	src, err := os.ReadFile("testdata/" + name)
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// TestColdReplicaWarmFetch is the tentpole scenario: replica A builds
// the spec tables and a deck; replica B boots cold with A as a blob
// peer and must construct zero tables — the module comes over
// /v1/artifacts, and the repeated deck request is answered from A's
// deck blob byte-for-byte.
func TestColdReplicaWarmFetch(t *testing.T) {
	src := readTestdata(t, "appendix1.pas")

	// Replica A: its own disk tier, no peers. Builds everything once.
	a, tsA := newTestServer(t, Options{CacheDir: t.TempDir()})
	status, respA := compile(t, tsA, CompileRequest{Name: "unit.pas", Source: src, Deck: true})
	if status != http.StatusOK {
		t.Fatalf("replica A compile: status %d (%+v)", status, respA.Failure)
	}
	if respA.Deck == "" {
		t.Fatal("replica A produced no deck")
	}
	aStats := a.svc.Stats.Snapshot()
	if aStats.Misses != 1 {
		t.Fatalf("replica A table builds = %d, want 1", aStats.Misses)
	}

	// Replica B: cold disk, A as its blob peer.
	var lb logBuffer
	b, tsB := newTestServer(t, Options{
		CacheDir:  t.TempDir(),
		BlobPeers: []string{tsA.URL},
		Logf:      lb.logf,
	})

	// The eager table load at New() must already have come from A.
	bStats := b.svc.Stats.Snapshot()
	if bStats.Misses != 0 {
		t.Fatalf("cold replica built %d tables, want 0 (warm fetch)", bStats.Misses)
	}
	if bStats.DiskHits != 1 {
		t.Fatalf("cold replica blob-tier module hits = %d, want 1", bStats.DiskHits)
	}
	if hits := b.BlobCounters("http").Hits.Load(); hits == 0 {
		t.Fatal("no blob fetch crossed the wire to the peer")
	}
	if !lb.contains("warm fetch") {
		t.Fatalf("no warm-fetch log line; got %v", lb.lines)
	}

	// The identical deck request is served from A's deck blob without
	// compiling anything on B.
	status, respB := compile(t, tsB, CompileRequest{Name: "unit.pas", Source: src, Deck: true})
	if status != http.StatusOK {
		t.Fatalf("replica B compile: status %d (%+v)", status, respB.Failure)
	}
	if respB.Deck != respA.Deck {
		t.Error("warm-fetched deck differs from the one replica A built")
	}
	if respB.Listing != respA.Listing || respB.Instructions != respA.Instructions {
		t.Error("cached deck response drops compile stats")
	}
	if compiled := b.svc.Stats.Snapshot().UnitsCompiled; compiled != 0 {
		t.Errorf("replica B compiled %d units for a cached deck, want 0", compiled)
	}

	// A distinct unit name misses the deck cache but still rides A's
	// module: B performs codegen, never SLR construction.
	status, respC := compile(t, tsB, CompileRequest{Name: "other.pas", Source: src, Deck: true})
	if status != http.StatusOK {
		t.Fatalf("replica B fresh-unit compile: status %d (%+v)", status, respC.Failure)
	}
	after := b.svc.Stats.Snapshot()
	if after.Misses != 0 {
		t.Errorf("fresh unit forced %d table builds on the warm replica", after.Misses)
	}
	if after.UnitsCompiled != 1 {
		t.Errorf("fresh unit compiled %d units, want 1", after.UnitsCompiled)
	}
}

// TestDeckCacheLocalRoundtrip: even without peers, a repeated deck
// request is answered from the local blob tier with identical bytes
// and no second trip through the pipeline.
func TestDeckCacheLocalRoundtrip(t *testing.T) {
	src := readTestdata(t, "appendix1.pas")
	s, ts := newTestServer(t, Options{CacheDir: t.TempDir()})

	_, first := compile(t, ts, CompileRequest{Name: "unit.pas", Source: src, Deck: true})
	if first.Deck == "" {
		t.Fatal("no deck produced")
	}
	before := s.svc.Stats.Snapshot().UnitsCompiled
	_, second := compile(t, ts, CompileRequest{Name: "unit.pas", Source: src, Deck: true})
	if second.Deck != first.Deck || second.Listing != first.Listing {
		t.Error("cached deck response is not byte-identical")
	}
	if after := s.svc.Stats.Snapshot().UnitsCompiled; after != before {
		t.Errorf("repeat deck request recompiled (units %d -> %d)", before, after)
	}

	// Option flags are part of the key: a different shaper setup must
	// not be served the cached deck.
	status, tuned := compile(t, ts, CompileRequest{Name: "unit.pas", Source: src, Deck: true,
		Options: CompileOptions{CSE: true}})
	if status != http.StatusOK {
		t.Fatalf("tuned compile: status %d (%+v)", status, tuned.Failure)
	}
	if s.svc.Stats.Snapshot().UnitsCompiled != before+1 {
		t.Error("option change did not miss the deck cache")
	}

	// Explain and IF views stay uncached and still carry their extras.
	status, explained := compile(t, ts, CompileRequest{Name: "unit.pas", Source: src, Deck: true, Explain: true})
	if status != http.StatusOK || explained.Derivation == nil {
		t.Fatalf("explain riding a cached deck lost its derivation (status %d)", status)
	}
}

// blackholePeer proxies to a live upstream until tripped; after that
// every request stalls until the client gives up. This is the
// "switch partition" failure the fleet must degrade around.
type blackholePeer struct {
	proxy   *httputil.ReverseProxy
	tripped atomic.Bool
}

func newBlackholePeer(t *testing.T, upstream string) (*httptest.Server, *blackholePeer) {
	t.Helper()
	u, err := url.Parse(upstream)
	if err != nil {
		t.Fatal(err)
	}
	bp := &blackholePeer{proxy: httputil.NewSingleHostReverseProxy(u)}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if bp.tripped.Load() {
			<-r.Context().Done()
			return
		}
		bp.proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, bp
}

// TestBlobPeerBlackholedDegrades is the server-level chaos scenario:
// the remote tier disappears mid-run (requests hang, not error) and
// the replica must keep serving — local builds, zero failed requests,
// decks byte-identical to a peerless baseline.
func TestBlobPeerBlackholedDegrades(t *testing.T) {
	src := readTestdata(t, "appendix1.pas")

	// Baseline: a peerless server defines the expected bytes.
	_, tsBase := newTestServer(t, Options{})
	_, baseline := compile(t, tsBase, CompileRequest{Name: "unit.pas", Source: src, Deck: true})
	if baseline.Deck == "" {
		t.Fatal("baseline produced no deck")
	}

	// A healthy donor fleet member behind a trippable proxy.
	_, tsA := newTestServer(t, Options{CacheDir: t.TempDir()})
	hole, trip := newBlackholePeer(t, tsA.URL)

	b, tsB := newTestServer(t, Options{
		BlobPeers:          []string{hole.URL},
		BlobAttemptTimeout: 75 * time.Millisecond,
	})
	// Warm start worked through the proxy: no tables built locally.
	if m := b.svc.Stats.Snapshot().Misses; m != 0 {
		t.Fatalf("replica built %d tables with a healthy peer, want 0", m)
	}

	// Partition the fleet mid-run.
	trip.tripped.Store(true)

	// Every request must still succeed, and decks must match the
	// baseline bit for bit — the remote tier degrades, never corrupts.
	for i := 0; i < 3; i++ {
		status, resp := compile(t, tsB, CompileRequest{Name: "unit.pas", Source: src, Deck: true})
		if status != http.StatusOK {
			t.Fatalf("request %d during blackhole: status %d (%+v)", i, status, resp.Failure)
		}
		if resp.Deck != baseline.Deck {
			t.Fatalf("request %d deck diverged from baseline during blackhole", i)
		}
	}
	if errs := b.BlobCounters("http").GetErrs.Load(); errs == 0 {
		t.Error("blackholed peer produced no recorded fetch errors")
	}
}

// TestMetricsExposeBlobSeries: the cogg_blob_* family must reach the
// Prometheus exposition with per-backend labels.
func TestMetricsExposeBlobSeries(t *testing.T) {
	src := readTestdata(t, "appendix1.pas")
	_, ts := newTestServer(t, Options{CacheDir: t.TempDir()})
	if status, resp := compile(t, ts, CompileRequest{Name: "unit.pas", Source: src, Deck: true}); status != http.StatusOK {
		t.Fatalf("compile: status %d (%+v)", status, resp.Failure)
	}

	httpResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`cogg_blob_hits_total{backend="fs"}`,
		`cogg_blob_hits_total{backend="mem"}`,
		`cogg_blob_puts_total{backend="fs"}`,
		`cogg_blob_verify_failures_total{backend="mem"}`,
		"cogg_blob_fetch_seconds_total",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
