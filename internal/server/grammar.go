package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cogg/internal/obs"
	"cogg/internal/oracle"
)

// grammarTTL is how long an idle grammar-walk session survives before
// the sweep reclaims it; remote walkers that stop stepping do not pin
// cursors forever.
const grammarTTL = 5 * time.Minute

// grammarSessionCap bounds concurrently live grammar sessions; a full
// table answers 429, the same backpressure contract as the compile
// queue.
const grammarSessionCap = 256

// grammarSession is one remote grammar walk: a parse-stack cursor over
// a spec's tables, addressed by an opaque id. Cursors are not safe for
// concurrent use, so each session carries its own lock.
type grammarSession struct {
	mu       sync.Mutex
	id       string
	spec     string
	oracle   *oracle.Oracle
	cur      *oracle.Cursor
	lastUsed time.Time
}

// grammarTable is the bounded, TTL-swept session store. Sweeping
// happens two ways: inline on create/get (so a busy table never grows
// stale entries), and from the server's background sweeper goroutine
// (so an idle table's abandoned cursors are reclaimed without waiting
// for traffic).
type grammarTable struct {
	mu       sync.Mutex
	sessions map[string]*grammarSession
	nextID   int64
	ttl      time.Duration // <= 0 falls back to grammarTTL

	created atomic.Int64
	expired atomic.Int64
	evicted atomic.Int64
	closed  atomic.Int64
	steps   atomic.Int64
}

func (t *grammarTable) ttlOrDefault() time.Duration {
	if t.ttl > 0 {
		return t.ttl
	}
	return grammarTTL
}

// sweep drops sessions idle past the TTL. Callers hold t.mu.
func (t *grammarTable) sweepLocked(now time.Time) {
	ttl := t.ttlOrDefault()
	for id, gs := range t.sessions {
		if now.Sub(gs.lastUsed) > ttl {
			delete(t.sessions, id)
			t.expired.Add(1)
		}
	}
}

// sweep is the background sweeper's entry: one full pass under the lock.
func (t *grammarTable) sweep() {
	t.mu.Lock()
	t.sweepLocked(time.Now())
	t.mu.Unlock()
}

// create registers a new session, evicting the least recently used one
// when the table is at capacity and nothing expired. ok=false means
// the table is full of fresh sessions.
func (t *grammarTable) create(spec string, o *oracle.Oracle) (*grammarSession, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sessions == nil {
		t.sessions = map[string]*grammarSession{}
	}
	now := time.Now()
	t.sweepLocked(now)
	if len(t.sessions) >= grammarSessionCap {
		var oldest *grammarSession
		for _, gs := range t.sessions {
			if oldest == nil || gs.lastUsed.Before(oldest.lastUsed) {
				oldest = gs
			}
		}
		// Only a session idle for a respectable fraction of the TTL is
		// evictable; otherwise the caller gets backpressure.
		if oldest == nil || now.Sub(oldest.lastUsed) < t.ttlOrDefault()/10 {
			return nil, false
		}
		delete(t.sessions, oldest.id)
		t.evicted.Add(1)
	}
	t.nextID++
	gs := &grammarSession{
		id:       fmt.Sprintf("g%d-%d", now.UnixNano(), t.nextID),
		spec:     spec,
		oracle:   o,
		cur:      o.NewCursor(),
		lastUsed: now,
	}
	t.sessions[gs.id] = gs
	t.created.Add(1)
	return gs, true
}

// get touches and returns a session.
func (t *grammarTable) get(id string) (*grammarSession, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepLocked(time.Now())
	gs, ok := t.sessions[id]
	if ok {
		gs.lastUsed = time.Now()
	}
	return gs, ok
}

// remove drops a finished session.
func (t *grammarTable) remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[id]; ok {
		delete(t.sessions, id)
		t.closed.Add(1)
	}
}

func (t *grammarTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// grammarSweeper periodically reclaims idle grammar sessions until the
// server stops. It shares s.stop with the micro-batch collector and is
// waited on by Close, so a closed server leaves no sweeper goroutine
// behind.
func (s *Server) grammarSweeper() {
	defer close(s.sweeperDone)
	every := s.grammar.ttlOrDefault() / 10
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.grammar.sweep()
		case <-s.stop:
			return
		}
	}
}

// registerGrammarMetrics bridges the grammar-session counters into the
// daemon registry.
func (s *Server) registerGrammarMetrics() {
	events := "Grammar-walk sessions by lifecycle event."
	t := &s.grammar
	for _, e := range []struct {
		event string
		f     func() int64
	}{
		{"created", t.created.Load},
		{"closed", t.closed.Load},
		{"expired", t.expired.Load},
		{"evicted", t.evicted.Load},
	} {
		s.reg.CounterFunc("cogd_grammar_sessions_total", events,
			obs.L("event", e.event), e.f)
	}
	s.reg.CounterFunc("cogd_grammar_steps_total",
		"Grammar-walk cursor advances served.", "", t.steps.Load)
	s.reg.GaugeFunc("cogd_grammar_sessions",
		"Live grammar-walk sessions.", "",
		func() float64 { return float64(t.size()) })
}

// legalNames renders the cursor's legal-next set as symbol names in
// symbol-id order, "$end" last — the same order the blocked-parse
// diagnostics use, so clients can diff the two directly.
func legalNames(o *oracle.Oracle, cur *oracle.Cursor) []string {
	g := o.Grammar()
	legal := cur.Legal(nil)
	names := make([]string, 0, 16)
	for sym := 0; sym < o.Universe(); sym++ {
		if !legal.Has(sym) {
			continue
		}
		if sym == o.EOF() {
			continue // appended last
		}
		names = append(names, g.SymName(sym))
	}
	if legal.Has(o.EOF()) {
		names = append(names, "$end")
	}
	return names
}

// handleGrammarSession answers POST /v1/grammar/session: open a
// grammar-walk cursor over a spec's tables and return the legal
// opening symbols.
func (s *Server) handleGrammarSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.gate.enter() {
		s.stats.RejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.gate.exit()

	t0 := time.Now()
	tr, reqSpan := s.startTrace(r, "grammar-session")
	w.Header().Set("X-Trace-Id", tr.ID())
	failMode := ""
	defer func() { s.finishTrace(tr, reqSpan, failMode, time.Since(t0)) }()

	var req GrammarSessionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&req); err != nil {
		failMode = "bad-request"
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	mt, err := s.target(req.Spec)
	if err != nil {
		failMode = "bad-request"
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	gs, ok := s.grammar.create(mt.specName, mt.oracle)
	if !ok {
		failMode = "queue-full"
		writeError(w, http.StatusTooManyRequests, "grammar session table is full")
		return
	}
	writeJSON(w, http.StatusOK, GrammarSessionResponse{
		SessionID: gs.id,
		Spec:      mt.specName,
		State:     gs.cur.State(),
		Depth:     gs.cur.Depth(),
		Legal:     legalNames(mt.oracle, gs.cur),
		TraceID:   tr.ID(),
	})
}

// handleGrammarNext answers POST /v1/grammar/next: advance a session's
// cursor on one symbol ("$end" accepts and closes the session) and
// return the fired productions plus the new legal-next set.
func (s *Server) handleGrammarNext(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.gate.enter() {
		s.stats.RejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.gate.exit()

	t0 := time.Now()
	tr, reqSpan := s.startTrace(r, "grammar-next")
	w.Header().Set("X-Trace-Id", tr.ID())
	failMode := ""
	defer func() { s.finishTrace(tr, reqSpan, failMode, time.Since(t0)) }()

	var req GrammarNextRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&req); err != nil {
		failMode = "bad-request"
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	gs, ok := s.grammar.get(req.SessionID)
	if !ok {
		failMode = "not-found"
		writeError(w, http.StatusNotFound, "unknown or expired grammar session")
		return
	}

	gs.mu.Lock()
	defer gs.mu.Unlock()
	o, g := gs.oracle, gs.oracle.Grammar()
	sym := o.EOF()
	if req.Symbol != "$end" {
		sm, found := g.Lookup(req.Symbol)
		if !found {
			failMode = "bad-request"
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("symbol %q is not declared in %s", req.Symbol, gs.spec))
			return
		}
		sym = sm.ID
	}
	step, err := gs.cur.Advance(sym)
	if err != nil {
		// The symbol is declared but illegal here — the grammar's 422,
		// with the legal set in the body so walkers can recover.
		failMode = "blocked"
		writeJSON(w, http.StatusUnprocessableEntity, GrammarNextResponse{
			SessionID: gs.id,
			State:     gs.cur.State(),
			Depth:     gs.cur.Depth(),
			Legal:     legalNames(o, gs.cur),
			Error:     err.Error(),
			TraceID:   tr.ID(),
		})
		return
	}
	s.grammar.steps.Add(1)
	resp := GrammarNextResponse{
		SessionID: gs.id,
		State:     gs.cur.State(),
		Depth:     gs.cur.Depth(),
		Accepted:  step.Accepted,
		TraceID:   tr.ID(),
	}
	for _, pi := range step.Reduced {
		resp.Reduced = append(resp.Reduced, g.ProdString(g.Prods[pi]))
	}
	if step.Accepted {
		s.grammar.remove(gs.id)
	} else {
		resp.Legal = legalNames(o, gs.cur)
	}
	writeJSON(w, http.StatusOK, resp)
}
