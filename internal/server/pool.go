package server

import (
	"sync/atomic"

	"cogg/internal/codegen"
)

// sessionPool keeps a bounded free list of reusable translation
// sessions for one engine — the interpreted generator or an emitted
// (generated-code) engine, whichever the target serves — so
// steady-state requests reuse the session's buffers and the emission
// hot path stays allocation-free.
//
// Hygiene rule: a session whose translation failed — a blocked parse, a
// resource limit, or a panic recovered by the batch envelope — is never
// returned to the free list. Session.Generate does rewind its state at
// the start of every run, but a failed run may have left invariants the
// rewind was never audited against (a panic can interrupt a reduction
// mid-edit), and sessions are cheap enough that discarding the rare
// poisoned one is the simpler guarantee. A session abandoned mid-flight
// by a timeout is likewise never re-pooled: the put for it only happens
// after its goroutine finishes, and only if it finished cleanly.
type sessionPool struct {
	eng  codegen.Engine
	free chan codegen.EngineSession

	// Counters for /varz: fresh sessions built, sessions reused from
	// the free list, and sessions discarded (failed, or pool full).
	created   atomic.Int64
	reused    atomic.Int64
	discarded atomic.Int64
}

func newSessionPool(eng codegen.Engine, size int) *sessionPool {
	if size < 1 {
		size = 1
	}
	return &sessionPool{eng: eng, free: make(chan codegen.EngineSession, size)}
}

// get pops a pooled session or builds a fresh one.
func (p *sessionPool) get() (codegen.EngineSession, error) {
	select {
	case s := <-p.free:
		p.reused.Add(1)
		return s, nil
	default:
		p.created.Add(1)
		return p.eng.NewEngineSession()
	}
}

// put returns a session after one translation. err is the translation's
// outcome: any failure discards the session (see the type comment); a
// clean session goes back on the free list unless the list is full.
func (p *sessionPool) put(s codegen.EngineSession, err error) {
	if err != nil {
		p.discarded.Add(1)
		return
	}
	select {
	case p.free <- s:
	default:
		p.discarded.Add(1)
	}
}

// PoolStats is the /varz snapshot of one spec's session pool.
type PoolStats struct {
	Free      int   `json:"free"`
	Created   int64 `json:"created"`
	Reused    int64 `json:"reused"`
	Discarded int64 `json:"discarded"`
}

func (p *sessionPool) stats() PoolStats {
	return PoolStats{
		Free:      len(p.free),
		Created:   p.created.Load(),
		Reused:    p.reused.Load(),
		Discarded: p.discarded.Load(),
	}
}
