package server

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"cogg/internal/faultinject"
)

// TestGracefulDrain: with one slow request in flight, Drain must wait
// for it to finish while /readyz flips to 503 (liveness /healthz stays
// 200 — a draining daemon must be routed around, not restarted) and new
// compile requests are refused as draining.
func TestGracefulDrain(t *testing.T) {
	// Each reduction of the slow unit stalls 40ms; goodIF reduces a
	// handful of times, so the request holds the server for a few
	// hundred milliseconds — plenty to observe the draining window.
	faultinject.Set(faultinject.Rule{
		Site: "codegen/reduce", Key: "slow.if", Kind: faultinject.KindDelay, Delay: 40 * time.Millisecond,
	})
	defer faultinject.Reset()
	s, ts := newTestServer(t, Options{})

	var wg sync.WaitGroup
	wg.Add(1)
	var slowStatus int
	go func() {
		defer wg.Done()
		slowStatus, _ = compile(t, ts, CompileRequest{Name: "slow.if", Lang: "if", Source: goodIF})
	}()

	deadline := time.Now().Add(2 * time.Second)
	for s.admitted.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.admitted.Load() < 1 {
		t.Fatal("slow request never passed admission")
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	for !s.gate.isDraining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// While draining: readiness reports down with a retry hint, liveness
	// stays up, and new work is refused.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Errorf("readyz while draining: no Retry-After header")
	}
	live, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining: %d, want 200 (liveness is not readiness)", live.StatusCode)
	}
	if status, _ := compile(t, ts, CompileRequest{Name: "late.if", Lang: "if", Source: goodIF}); status != http.StatusServiceUnavailable {
		t.Errorf("compile while draining: %d, want 503", status)
	}

	// The in-flight request still completes, and then Drain returns.
	wg.Wait()
	if slowStatus != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200", slowStatus)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Errorf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete after the in-flight request finished")
	}
	if got := s.stats.RejectedDraining.Load(); got < 1 {
		t.Errorf("RejectedDraining = %d, want >= 1", got)
	}
}

// TestDeadlineExceeded: a request whose deadline elapses mid-translation
// is answered 504 with the timeout failure mode.
func TestDeadlineExceeded(t *testing.T) {
	faultinject.Set(faultinject.Rule{
		Site: "codegen/reduce", Key: "stall.if", Kind: faultinject.KindDelay, Delay: 100 * time.Millisecond,
	})
	defer faultinject.Reset()
	s, ts := newTestServer(t, Options{})

	status, resp := compile(t, ts, CompileRequest{
		Name: "stall.if", Lang: "if", Source: goodIF, DeadlineMillis: 50,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (failure: %+v)", status, resp.Failure)
	}
	if resp.Failure == nil || resp.Failure.Mode != "timeout" {
		t.Fatalf("failure = %+v, want mode timeout", resp.Failure)
	}
	if got := s.stats.TimedOut.Load(); got < 1 {
		t.Errorf("TimedOut = %d, want >= 1", got)
	}
	// The daemon is still healthy afterwards.
	if status, resp := compile(t, ts, CompileRequest{Name: "ok.if", Lang: "if", Source: goodIF}); status != http.StatusOK {
		t.Fatalf("request after timeout: status %d (%+v)", status, resp.Failure)
	}
}
