package server

import (
	"encoding/base64"
	"net/http"
	"os"
	"strings"
	"testing"

	"cogg/internal/batch"
	"cogg/internal/driver"
	"cogg/internal/ifopt"
	"cogg/internal/ir"
	"cogg/internal/rt370"
	"cogg/internal/shaper"
	"cogg/specs"
)

// corpus are the differential inputs: the end-to-end sieve program and
// the paper's appendix-1 expression.
var corpus = []string{"sieve.pas", "appendix1.pas"}

// referenceService builds the library path the pascal370 and ifcgen
// CLIs execute: a fresh batch service and target with the stock
// amdahl470 configuration.
func referenceService(t *testing.T) (*batch.Service, *driver.Target) {
	t.Helper()
	svc := batch.New(batch.Options{})
	tgt, err := svc.Target("amdahl470.cogg", specs.Amdahl470, rt370.Config())
	if err != nil {
		t.Fatal(err)
	}
	return svc, tgt
}

// TestDifferentialPascal: for every corpus program, with and without the
// IF optimizer, the daemon's listing, object deck, and linearized IF
// must be byte-identical to what the pascal370 CLI prints from the same
// source (its -S, -deck, and -if views, produced here through the same
// library calls the CLI makes).
func TestDifferentialPascal(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	svc, refTgt := referenceService(t)

	for _, file := range corpus {
		src, err := os.ReadFile("testdata/" + file)
		if err != nil {
			t.Fatal(err)
		}
		for _, cse := range []bool{false, true} {
			name := file
			if cse {
				name = file + "+cse"
			}
			t.Run(name, func(t *testing.T) {
				// The CLI's option construction, verbatim: statement
				// records on, optional CSE pass.
				opt := shaper.Options{StatementRecords: true}
				if cse {
					opt.CSE = ifopt.New().Apply
				}
				rs := svc.CompileBatch(refTgt, []batch.Unit{{Name: name, Source: string(src), Opt: opt}})
				if rs[0].Err != nil {
					t.Fatalf("reference compile: %v", rs[0].Err)
				}
				c := rs[0].Compiled
				var deck strings.Builder
				if err := c.Deck.WriteCards(&deck); err != nil {
					t.Fatal(err)
				}

				status, resp := compile(t, ts, CompileRequest{
					Name: name, Source: string(src), Deck: true, IF: true,
					Options: CompileOptions{CSE: cse},
				})
				if status != http.StatusOK {
					t.Fatalf("server compile: status %d (%+v)", status, resp.Failure)
				}
				if resp.Listing != c.Listing() {
					t.Errorf("listing differs from the pascal370 path (%d vs %d bytes)", len(resp.Listing), len(c.Listing()))
				}
				gotDeck, err := base64.StdEncoding.DecodeString(resp.Deck)
				if err != nil {
					t.Fatalf("deck is not valid base64: %v", err)
				}
				if string(gotDeck) != deck.String() {
					t.Errorf("deck differs from the pascal370 path (%d vs %d bytes)", len(gotDeck), len(deck.String()))
				}
				if want := ir.FormatTokens(c.Tokens); resp.IF != want {
					t.Errorf("IF view differs from the pascal370 path (%d vs %d bytes)", len(resp.IF), len(want))
				}
				if resp.Tokens != len(c.Tokens) || resp.Reductions != c.Result.Reductions ||
					resp.Instructions != c.Prog.InstructionCount() || resp.CodeBytes != c.Prog.CodeSize {
					t.Errorf("counters differ: server %d/%d/%d/%d, reference %d/%d/%d/%d",
						resp.Tokens, resp.Reductions, resp.Instructions, resp.CodeBytes,
						len(c.Tokens), c.Result.Reductions, c.Prog.InstructionCount(), c.Prog.CodeSize)
				}
			})
		}
	}
}

// TestDifferentialIF: the corpus programs' linearized IF streams are fed
// back as raw IF through both the ifcgen library path (a fresh session
// per unit) and the daemon's pooled-session path. Listings and counters
// must agree byte for byte — this is the real cross-implementation
// check, because the two paths build their sessions differently. Each
// stream runs through the daemon twice so the second pass exercises a
// *reused* session.
func TestDifferentialIF(t *testing.T) {
	_, ts := newTestServer(t, Options{PoolSize: 2})
	svc, refTgt := referenceService(t)

	for _, file := range corpus {
		src, err := os.ReadFile("testdata/" + file)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(file, func(t *testing.T) {
			// Derive a realistic IF stream from the front end.
			rs := svc.CompileBatch(refTgt, []batch.Unit{{
				Name: file, Source: string(src), Opt: shaper.Options{StatementRecords: true},
			}})
			if rs[0].Err != nil {
				t.Fatalf("deriving IF: %v", rs[0].Err)
			}
			ifText := ir.FormatTokens(rs[0].Compiled.Tokens)
			unitName := file + ".if"

			// ifcgen's path: TranslateBatch with a fresh session.
			want := svc.TranslateBatch(refTgt, []batch.IFUnit{{Name: unitName, Text: ifText}})[0]
			if want.Err != nil {
				t.Fatalf("reference translation: %v", want.Err)
			}

			for pass := 1; pass <= 2; pass++ {
				status, resp := compile(t, ts, CompileRequest{Name: unitName, Lang: "if", Source: ifText})
				if status != http.StatusOK {
					t.Fatalf("pass %d: status %d (%+v)", pass, status, resp.Failure)
				}
				if resp.Listing != want.Listing {
					t.Errorf("pass %d: listing differs from the ifcgen path (%d vs %d bytes)",
						pass, len(resp.Listing), len(want.Listing))
				}
				if resp.Tokens != want.Tokens || resp.Reductions != want.Reductions ||
					resp.Instructions != want.Instructions || resp.CodeBytes != want.CodeBytes {
					t.Errorf("pass %d: counters differ: server %d/%d/%d/%d, reference %d/%d/%d/%d",
						pass, resp.Tokens, resp.Reductions, resp.Instructions, resp.CodeBytes,
						want.Tokens, want.Reductions, want.Instructions, want.CodeBytes)
				}
			}
		})
	}
}
