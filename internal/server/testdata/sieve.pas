program sieve;
var isprime: array[2..50] of 0..1;
    i, j, count, largest, class2, class3, classbig: integer;

function square(n: integer): integer;
begin
  square := n * n
end;

begin
  for i := 2 to 50 do isprime[i] := 1;
  i := 2;
  while square(i) <= 50 do
  begin
    if isprime[i] = 1 then
    begin
      j := square(i);
      while j <= 50 do
      begin
        isprime[j] := 0;
        j := j + i
      end
    end;
    i := i + 1
  end;
  count := 0; largest := 0;
  class2 := 0; class3 := 0; classbig := 0;
  for i := 2 to 50 do
    if isprime[i] = 1 then
    begin
      count := count + 1;
      largest := i;
      writeln(i);
      case i mod 4 of
        1: class2 := class2 + 1;
        2, 3: class3 := class3 + 1
      else classbig := classbig + 1
      end
    end
end.
