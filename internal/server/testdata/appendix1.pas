program appendix1;
var a, b, c, d, e, f, g, h, x: array[0..24] of integer;
    i, j, k, l, m, n, o, p, q: integer;
begin
  x[q] := a[i] + b[j]*(c[k]-d[l]) + (e[m] div (f[n]+g[o]))*h[p]
end.
