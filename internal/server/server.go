// Package server is cogd's compile-as-a-service layer: a long-running
// HTTP/JSON daemon over the batch compilation service, turning the
// paper's cheap table-driven translation into something a fleet of
// clients can call without paying process startup or table construction
// per request.
//
// The daemon keeps one decoded table module per specification through
// the batch service's two-tier cache, holds a bounded pool of reusable
// translation sessions per module so the steady-state raw-IF path keeps
// the zero-allocation emission loop of package codegen, coalesces
// concurrent requests into micro-batches over the batch worker pool,
// and applies admission control: a bounded intake queue (429 when
// full), per-request deadlines (504 past the deadline), and a graceful
// drain that completes in-flight requests while rejecting new ones
// (503). Unit failures map the batch failure taxonomy onto HTTP status
// codes — see StatusFor.
//
// Endpoints:
//
//	POST /v1/compile   one unit (Pascal or raw prefix-IF) -> listing JSON
//	POST /v1/batch     many units as one batch, results in input order
//	POST /v1/grammar/session  open a grammar-walk cursor over a spec's
//	                   SLR tables; returns the legal opening symbols
//	POST /v1/grammar/next     advance the cursor on one symbol; returns
//	                   fired productions and the new legal-next set
//	GET  /healthz      liveness: "ok" as long as the process serves HTTP
//	GET  /readyz       readiness: "ready" while accepting work; 503 with
//	                   Retry-After once draining starts
//	GET  /varz         server, pool, and batch statistics as JSON
//	GET  /metrics      Prometheus text exposition (see Registry)
//	GET  /v1/traces    the last traces' span trees as JSON, newest first
//	GET  /debug/vars   the expvar registry (includes the batch counters)
//	GET  /debug/pprof  profiling handlers, when Options.EnablePprof
//
// Every request is traced: phase spans (queue-wait, then the pipeline's
// frontend/shape/parse-reduce/regalloc/emit/assemble) collect under a
// per-request trace whose ID comes from the client's X-Trace-Id header
// when sent, and is returned in the response header and body either
// way. The last TraceRing traces are browsable at /v1/traces; requests
// slower than SlowThreshold additionally log their span tree plus the
// failure mode.
package server

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cogg/internal/batch"
	"cogg/internal/blob"
	"cogg/internal/codegen"
	"cogg/internal/driver"
	"cogg/internal/faultinject"
	"cogg/internal/ifopt"
	"cogg/internal/obs"
	"cogg/internal/oracle"
	"cogg/internal/rt370"
	"cogg/internal/shaper"
	"cogg/specs"
)

// Options configure a Server.
type Options struct {
	// SpecName/SpecSrc are the default specification; empty means the
	// embedded amdahl470. Requests may select another embedded spec by
	// name, never a file path.
	SpecName string
	SpecSrc  string
	// Risc applies the risc32 target configuration to the default spec.
	Risc bool
	// Engine selects the translation engine per served spec:
	// "" or "interpreted" runs the table interpreter, "auto" serves a
	// compiled-in emitted engine (cogg emit-go output) when one matches
	// the specification, "emitted" requires one (target construction
	// fails otherwise). Output is byte-identical either way; `cogg
	// explain` provenance remains interpreter-only regardless.
	Engine string

	// Workers bounds the batch worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// CacheDir is the on-disk table-module cache; empty disables the
	// disk blob tier (the in-memory blob tier still serves).
	CacheDir string
	// BlobPeers are base URLs of fleet peers (replicas or fronts)
	// serving the artifact API; when set, a remote tier joins the blob
	// store beneath the batch service, so a cold start warm-fetches a
	// neighbor's already-built module instead of constructing tables.
	// The daemon's own /v1/artifacts endpoint serves only its local
	// tiers, never the peers — two replicas pointing at each other must
	// not bounce a missing key forever.
	BlobPeers []string
	// BlobMemEntries/BlobMemBytes bound the in-memory blob tier;
	// <= 0 means the blob package defaults (64 entries / 256 MiB).
	BlobMemEntries int
	BlobMemBytes   int64
	// BlobAttemptTimeout bounds one artifact fetch attempt against a
	// peer; <= 0 means 2s. Tests and latency-sensitive deployments
	// shrink it — the fetch races a ~20ms local table construction.
	BlobAttemptTimeout time.Duration
	// Logf receives operational lines (blob warm fetches); nil is
	// silent.
	Logf func(format string, args ...any)
	// PoolSize caps the reusable-session free list per module;
	// <= 0 means 2x the worker pool.
	PoolSize int

	// QueueBound caps requests waiting for a micro-batch slot; a full
	// queue answers 429. <= 0 means 256.
	QueueBound int
	// BatchWindow is how long the collector waits to coalesce more
	// requests into a micro-batch; <= 0 means 200µs.
	BatchWindow time.Duration
	// BatchMax caps units per micro-batch; <= 0 means 64.
	BatchMax int

	// DefaultDeadline bounds a request that sends no deadline_ms, and
	// is also the batch service's per-unit wall-time limit; <= 0 means
	// 15s.
	DefaultDeadline time.Duration
	// MaxStackDepth and MaxCodeBytes bound each translation's parse
	// stack and code buffer (codegen.Config limits, answered as 413);
	// <= 0 keeps the codegen defaults.
	MaxStackDepth int
	MaxCodeBytes  int
	// MaxBodyBytes caps a request body; <= 0 means 8 MiB.
	MaxBodyBytes int64

	// GrammarTTL is how long an idle grammar-walk session survives
	// before the background sweeper reclaims it; <= 0 means 5 minutes.
	// The sweeper runs every GrammarTTL/10 (at least every 10ms), so an
	// abandoned cursor is reclaimed without waiting for table traffic.
	GrammarTTL time.Duration

	// StatsName is the expvar name the batch counters publish under;
	// empty means "cogd.batch".
	StatsName string
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool

	// Registry receives the daemon's metrics (and the batch service's,
	// and each spec's code generation instruments); nil builds a fresh
	// one. Exposed at /metrics in Prometheus text format.
	Registry *obs.Registry
	// TraceRing is how many finished request traces /v1/traces retains;
	// <= 0 means 64.
	TraceRing int
	// SlowThreshold logs the full span tree of any request slower than
	// this; 0 disables slow-request logging.
	SlowThreshold time.Duration
	// SlowLog is where slow-request span trees go; nil means stderr.
	SlowLog io.Writer
	// Logger, when set, routes slow-request reports through structured
	// logging (with trace_id attributes) instead of SlowLog.
	Logger *slog.Logger

	// Process names this process in exported trace fragments
	// ("cogd@:8481"); empty means "cogd". SetProcess can refine it once
	// the listen address is known.
	Process string

	// SLOTarget is the request-latency objective: requests slower than
	// this burn error budget. <= 0 means 50ms.
	SLOTarget time.Duration
	// SLOObjective is the target good-request fraction; out of (0,1)
	// means 0.99.
	SLOObjective float64
}

func (o *Options) fill() {
	if o.SpecName == "" {
		o.SpecName, o.SpecSrc = "amdahl470.cogg", specs.Amdahl470
	}
	if o.PoolSize <= 0 {
		w := o.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		o.PoolSize = 2 * w
	}
	if o.QueueBound <= 0 {
		o.QueueBound = 256
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 200 * time.Microsecond
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 64
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 15 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.GrammarTTL <= 0 {
		o.GrammarTTL = grammarTTL
	}
	if o.StatsName == "" {
		o.StatsName = "cogd.batch"
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.TraceRing <= 0 {
		o.TraceRing = 64
	}
	if o.SlowLog == nil {
		o.SlowLog = os.Stderr
	}
	if o.Process == "" {
		o.Process = "cogd"
	}
}

// Server is the daemon. Build one with New, expose Handler on an
// http.Server, and stop it with Drain then Close.
type Server struct {
	opts  Options
	svc   *batch.Service
	mux   *http.ServeMux
	start time.Time

	// targets maps spec key -> lazily built module target + session
	// pool. The default spec is built eagerly by New, so a 200 from
	// /healthz means the tables are ready.
	tmu     sync.Mutex
	targets map[string]*modTarget

	queue         chan *pending
	stop          chan struct{}
	stopOnce      sync.Once
	collectorDone chan struct{}
	sweeperDone   chan struct{}

	// admitted counts units admitted and not yet answered — the real
	// backpressure bound. The queue channel never blocks because its
	// capacity equals the admission bound.
	admitted atomic.Int64

	gate    drainGate
	stats   serverStats
	grammar grammarTable

	// artifacts is the store behind GET/HEAD/PUT /v1/artifacts/ — the
	// LOCAL blob tiers only (memory + disk). blobStore adds the remote
	// tier and sits beneath the batch service and the deck cache.
	artifacts  blob.Store
	blobStore  blob.Store
	blobCounts map[string]*blob.Counters

	reg  *obs.Registry
	ring *obs.Ring
	slo  *obs.SLO

	// process names this daemon in trace fragments; an atomic because
	// cmd/cogd refines it with the bound port after New has returned.
	process atomic.Value // string
}

// SetProcess renames the daemon's trace-fragment process label, for
// callers that only learn the listen address after construction.
func (s *Server) SetProcess(p string) {
	if p != "" {
		s.process.Store(p)
	}
}

func (s *Server) processName() string {
	p, _ := s.process.Load().(string)
	return p
}

// modTarget is one specification's serving state: the instantiated
// generator target and its session pool. key is the spec's module blob
// key — the derivation root compiled-deck cache keys hang off.
type modTarget struct {
	specName string
	key      string
	tgt      *driver.Target
	pool     *sessionPool
	oracle   *oracle.Oracle
}

// New builds the daemon, constructing (or cache-loading) the default
// specification's tables eagerly and starting the micro-batch
// collector.
func New(opts Options) (*Server, error) {
	opts.fill()
	// The blob tiers, fastest first. Each backend is wrapped with its
	// own counters so /metrics tells a memory hit from a disk hit from
	// a fleet warm fetch.
	counts := map[string]*blob.Counters{}
	wrap := func(backend string, st blob.Store) blob.Store {
		c := &blob.Counters{}
		c.Register(opts.Registry, backend)
		counts[backend] = c
		return blob.WithCounters(st, c)
	}
	memTier := wrap("mem", blob.NewMem(opts.BlobMemEntries, opts.BlobMemBytes))
	var fsTier, remoteTier blob.Store
	if opts.CacheDir != "" {
		fsTier = wrap("fs", blob.NewFS(opts.CacheDir))
	}
	if len(opts.BlobPeers) > 0 {
		remoteTier = wrap("http", blob.NewRemote(blob.RemoteOptions{
			Peers:          opts.BlobPeers,
			AttemptTimeout: opts.BlobAttemptTimeout,
			Logf:           opts.Logf,
		}))
	}
	local := blob.NewTiered(memTier, fsTier)
	full := blob.NewTiered(memTier, fsTier, remoteTier)

	s := &Server{
		opts: opts,
		svc: batch.New(batch.Options{
			Workers:     opts.Workers,
			CacheDir:    opts.CacheDir,
			Blob:        full,
			UnitTimeout: opts.DefaultDeadline,
			Engine:      opts.Engine,
		}),
		artifacts:     local,
		blobStore:     full,
		blobCounts:    counts,
		start:         time.Now(),
		targets:       map[string]*modTarget{},
		queue:         make(chan *pending, opts.QueueBound),
		stop:          make(chan struct{}),
		collectorDone: make(chan struct{}),
		sweeperDone:   make(chan struct{}),
		reg:           opts.Registry,
		ring:          obs.NewRing(opts.TraceRing),
	}
	s.grammar.ttl = opts.GrammarTTL
	s.process.Store(opts.Process)
	s.slo = obs.NewSLO(opts.Registry, obs.SLOOptions{
		Name:      "compile",
		Threshold: opts.SLOTarget,
		Objective: opts.SLOObjective,
	})
	if err := s.svc.Stats.Publish(opts.StatsName); err != nil {
		return nil, err
	}
	s.svc.RegisterMetrics(s.reg)
	s.registerServerMetrics()
	s.registerGrammarMetrics()
	if _, err := s.target(""); err != nil {
		return nil, err
	}
	s.buildMux()
	go s.collect()
	go s.grammarSweeper()
	return s, nil
}

// Registry exposes the daemon's metric registry (tests scrape it
// without HTTP; embedding servers merge it into their own exposition).
func (s *Server) Registry() *obs.Registry { return s.reg }

// registerServerMetrics bridges the daemon-level counters into the
// registry, read from the existing atomics at exposition time.
func (s *Server) registerServerMetrics() {
	outcomes := "Requests by admission outcome (accepted counts every admitted unit; the others are terminal outcomes)."
	for _, o := range []struct {
		name string
		v    func() int64
	}{
		{"accepted", s.stats.Accepted.Load},
		{"completed", s.stats.Completed.Load},
		{"failed", s.stats.Failed.Load},
		{"timed_out", s.stats.TimedOut.Load},
		{"rejected_queue_full", s.stats.RejectedQueueFull.Load},
		{"rejected_draining", s.stats.RejectedDraining.Load},
	} {
		s.reg.CounterFunc("cogd_requests_total", outcomes, obs.L("outcome", o.name), o.v)
	}
	s.reg.CounterFunc("cogd_microbatches_total",
		"Micro-batches dispatched by the collector.", "", s.stats.Batches.Load)
	s.reg.CounterFunc("cogd_microbatch_units_total",
		"Units dispatched inside micro-batches.", "", s.stats.BatchedUnits.Load)
	s.reg.GaugeFunc("cogd_queue_depth",
		"Requests waiting for a micro-batch slot.", "",
		func() float64 { return float64(len(s.queue)) })
	s.reg.GaugeFunc("cogd_inflight_units",
		"Units admitted and not yet answered.", "",
		func() float64 { return float64(s.admitted.Load()) })
	s.reg.GaugeFunc("cogd_uptime_seconds",
		"Seconds since the daemon built its tables.", "",
		func() float64 { return time.Since(s.start).Seconds() })
}

// Service exposes the underlying batch service (its statistics in
// particular).
func (s *Server) Service() *batch.Service { return s.svc }

// Artifacts exposes the store behind /v1/artifacts — the local blob
// tiers (memory + disk), never the fleet.
func (s *Server) Artifacts() blob.Store { return s.artifacts }

// BlobCounters reports one blob backend's counters ("mem", "fs",
// "http"); nil when that tier is not configured.
func (s *Server) BlobCounters(backend string) *blob.Counters { return s.blobCounts[backend] }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting requests and waits until every in-flight
// request has been answered, or until ctx expires. Safe to call more
// than once.
func (s *Server) Drain(ctx context.Context) error {
	select {
	case <-s.gate.drainChan():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the micro-batch collector and the grammar-session
// sweeper. Call after Drain; requests still queued are dispatched
// individually on the way out so no caller is left hanging.
func (s *Server) Close() {
	s.gate.drainChan()
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.collectorDone
	<-s.sweeperDone
}

// target resolves a request's spec field to its serving state, building
// the target (through the module cache) on first use. Only embedded
// spec names and the daemon's default are served.
func (s *Server) target(spec string) (*modTarget, error) {
	name, src, risc := s.opts.SpecName, s.opts.SpecSrc, s.opts.Risc
	switch spec {
	case "", s.opts.SpecName:
	case "amdahl470", "amdahl470.cogg":
		name, src, risc = "amdahl470.cogg", specs.Amdahl470, false
	case "amdahl-minimal", "minimal", "amdahl-minimal.cogg":
		name, src, risc = "amdahl-minimal.cogg", specs.AmdahlMinimal, false
	case "risc32", "risc32.cogg":
		name, src, risc = "risc32.cogg", specs.Risc32, true
	default:
		return nil, fmt.Errorf("unknown spec %q (serving amdahl470, amdahl-minimal, risc32, and the daemon default)", spec)
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if mt, ok := s.targets[name]; ok {
		return mt, nil
	}
	cfg := rt370.Config()
	if risc {
		cfg = driver.RiscConfig()
	}
	cfg.MaxStackDepth = s.opts.MaxStackDepth
	cfg.MaxCodeBytes = s.opts.MaxCodeBytes
	cfg.Metrics = codegen.NewMetrics(s.reg, name)
	tgt, err := s.svc.Target(name, src, cfg)
	if err != nil {
		return nil, err
	}
	mt := &modTarget{specName: name, key: batch.Key(name, src), tgt: tgt,
		pool:   newSessionPool(tgt.Translator(), s.opts.PoolSize),
		oracle: oracle.New(tgt.Mod)}
	s.targets[name] = mt
	s.registerPoolMetrics(mt)
	return mt, nil
}

// registerPoolMetrics bridges one spec's session-pool counters into the
// registry.
func (s *Server) registerPoolMetrics(mt *modTarget) {
	events := "Session pool events by spec: created (fresh build), reused (from the free list), discarded (failed translation or full list)."
	p := mt.pool
	for _, e := range []struct {
		event string
		v     func() int64
	}{
		{"created", p.created.Load},
		{"reused", p.reused.Load},
		{"discarded", p.discarded.Load},
	} {
		s.reg.CounterFunc("cogd_sessions_total", events,
			obs.L("spec", mt.specName, "event", e.event), e.v)
	}
	s.reg.GaugeFunc("cogd_session_pool_free",
		"Reusable sessions on the free list.", obs.L("spec", mt.specName),
		func() float64 { return float64(len(p.free)) })
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.Handle("/v1/compile", s.instrument("/v1/compile", s.handleCompile))
	mux.Handle("/v1/batch", s.instrument("/v1/batch", s.handleBatch))
	mux.Handle("/v1/grammar/session", s.instrument("/v1/grammar/session", s.handleGrammarSession))
	mux.Handle("/v1/grammar/next", s.instrument("/v1/grammar/next", s.handleGrammarNext))
	mux.Handle("/healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("/readyz", s.instrument("/readyz", s.handleReadyz))
	mux.Handle("/varz", s.instrument("/varz", s.handleVarz))
	mux.Handle("/metrics", s.instrument("/metrics", s.handleMetrics))
	mux.Handle("/v1/traces", s.instrument("/v1/traces", s.handleTraces))
	mux.Handle(blob.ArtifactPathPrefix,
		s.instrument("/v1/artifacts", s.traceArtifacts(blob.ArtifactHandler(s.artifacts, s.opts.MaxBodyBytes))))
	mux.Handle("/debug/vars", expvar.Handler())
	if s.opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
}

// traceArtifacts records a server-side trace fragment for artifact
// requests that arrive carrying propagation headers — a peer's
// warm fetch or replication PUT. The fragment parents under the peer's
// blob-get/blob-put span, so a stitched timeline shows the serving side
// of every cross-replica artifact hop. Untraced requests (startup
// sweeps, curl) pass through without polluting the ring.
func (s *Server) traceArtifacts(h http.Handler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tid, parent := obs.Extract(r.Header)
		if tid == "" {
			h.ServeHTTP(w, r)
			return
		}
		tr := obs.NewTrace(tid, "artifact")
		tr.SetProcess(s.processName())
		if parent != "" {
			tr.SetRemoteParent(parent)
		}
		span := tr.StartSpan("artifact:"+r.Method, -1)
		w.Header().Set("X-Trace-Id", tr.ID())
		h.ServeHTTP(w, r)
		tr.EndSpan(span)
		s.ring.Add(tr.Snapshot())
	}
}

// instrument wraps a handler with per-endpoint HTTP metrics: request
// counts by status class and a latency histogram. The instruments are
// resolved once per endpoint at mux construction, so the per-request
// cost is one histogram observation and one counter add.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	lat := s.reg.Histogram("cogd_http_request_seconds",
		"HTTP request latency by endpoint, in seconds.",
		obs.L("endpoint", endpoint), obs.LatencyBuckets)
	classes := [5]*obs.Counter{}
	for i := range classes {
		classes[i] = s.reg.Counter("cogd_http_requests_total",
			"HTTP requests by endpoint and status class.",
			obs.L("endpoint", endpoint, "class", strconv.Itoa(i+1)+"xx"))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		lat.ObserveDuration(time.Since(t0))
		if c := sw.status/100 - 1; c >= 0 && c < len(classes) {
			classes[c].Inc()
		}
	})
}

// statusWriter captures the response status for the HTTP metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so the partial-response
// failpoint can push its truncated body onto the wire before aborting.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}

// TracesResponse is the /v1/traces payload: span trees newest first.
type TracesResponse struct {
	Traces []*obs.TraceData `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		// One trace's fragments — what cogg trace fans out to collect.
		writeJSON(w, http.StatusOK, TracesResponse{Traces: s.ring.Find(id)})
		return
	}
	n := 0 // all retained traces
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: s.ring.Snapshot(n)})
}

// admit validates one request and stages it as a pending unit. It does
// not enqueue.
func (s *Server) admit(req *CompileRequest) (*pending, error) {
	mt, err := s.target(req.Spec)
	if err != nil {
		return nil, err
	}
	p := &pending{
		name:    req.Name,
		source:  req.Source,
		mt:      mt,
		deck:    req.Deck,
		showIF:  req.IF,
		explain: req.Explain,
		done:    make(chan struct{}),
	}
	if p.name == "" {
		p.name = "unit"
	}
	switch req.Lang {
	case "", "pascal":
		p.lang = langPascal
		p.opt = shaper.Options{
			StatementRecords: req.Options.statementRecords(),
			SubscriptChecks:  req.Options.SubscriptChecks,
			UninitChecks:     req.Options.UninitChecks,
		}
		if req.Options.CSE {
			p.opt.CSE = ifopt.New().Apply
		}
	case "if":
		p.lang = langIF
		if req.Deck || req.IF {
			return nil, fmt.Errorf("deck and if output are pascal-only")
		}
	default:
		return nil, fmt.Errorf("unknown lang %q (pascal or if)", req.Lang)
	}
	return p, nil
}

// requestContext derives the request's deadline: the client's
// deadline_ms when sent, the server default otherwise.
func (s *Server) requestContext(r *http.Request, deadlineMillis int) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultDeadline
	if deadlineMillis > 0 {
		d = time.Duration(deadlineMillis) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.gate.enter() {
		s.stats.RejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.gate.exit()
	s.stats.Accepted.Add(1)

	// The trace starts before decoding so queue-full and bad-body
	// rejections leave an inspectable (if span-less) record. The ID is
	// echoed in the header even on errors.
	t0 := time.Now()
	tr, reqSpan := s.startTrace(r, "compile")
	w.Header().Set("X-Trace-Id", tr.ID())
	failMode := ""
	defer func() { s.finishTrace(tr, reqSpan, failMode, time.Since(t0)) }()

	var req CompileRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&req); err != nil {
		s.stats.Failed.Add(1)
		failMode = "bad-request"
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	p, err := s.admit(&req)
	if err != nil {
		s.stats.Failed.Add(1)
		failMode = "bad-request"
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Admission failpoint: a daemon refusing work at the door (resource
	// exhaustion, operator fencing) answers 503 + Retry-After, the same
	// contract as draining — retryable elsewhere.
	if err := faultinject.Eval("server/admit", p.name); err != nil {
		s.stats.Failed.Add(1)
		failMode = "injected"
		writeError(w, http.StatusServiceUnavailable, "admission refused: "+err.Error())
		return
	}
	tr.SetName(p.name)
	if s.admitted.Add(1) > int64(s.opts.QueueBound) {
		s.admitted.Add(-1)
		s.stats.RejectedQueueFull.Add(1)
		failMode = "queue-full"
		writeError(w, http.StatusTooManyRequests, "compilation queue is full")
		return
	}
	defer s.admitted.Add(-1)
	ctx, cancel := s.requestContext(r, req.DeadlineMillis)
	defer cancel()
	p.attachTrace(tr, reqSpan)
	p.ctx = obs.ContextWith(ctx, tr, p.unitSpan)

	select {
	case s.queue <- p:
	default:
		// Unreachable while admission holds: the queue's capacity is the
		// admission bound.
		s.stats.RejectedQueueFull.Add(1)
		failMode = "queue-full"
		writeError(w, http.StatusTooManyRequests, "compilation queue is full")
		return
	}
	select {
	case <-p.done:
		p.resp.TraceID = tr.ID()
		if p.resp.Failure != nil {
			failMode = p.resp.Failure.Mode
		}
		s.writeResult(w, p)
	case <-ctx.Done():
		// The unit may still finish inside the pool; its result is
		// dropped. The batch service's own per-unit deadline bounds how
		// long it can linger. Its unit span stays unfinished in the
		// trace, which is exactly what a timeout looks like.
		s.stats.TimedOut.Add(1)
		failMode = batch.FailTimeout.String()
		writeJSON(w, http.StatusGatewayTimeout, CompileResponse{
			Name:    p.name,
			TraceID: tr.ID(),
			Failure: &Failure{Mode: batch.FailTimeout.String(), Message: "deadline exceeded before compilation finished"},
		})
	}
}

// finishTrace ends the request span, records the snapshot in the
// /v1/traces ring, and — past the slow threshold — logs the span tree
// with the failure mode.
func (s *Server) finishTrace(tr *obs.Trace, reqSpan int, failMode string, elapsed time.Duration) {
	tr.EndSpan(reqSpan)
	if failMode != "" {
		tr.SetFailure(failMode)
	}
	s.slo.Observe(elapsed, tr.ID())
	td := tr.Snapshot()
	s.ring.Add(td)
	if s.opts.SlowThreshold > 0 && elapsed >= s.opts.SlowThreshold {
		if s.opts.Logger != nil {
			s.opts.Logger.Warn("slow request",
				"trace_id", td.ID, "name", td.Name, "elapsed", elapsed.String(),
				"failure", td.Failure, "spans", len(td.Spans))
		} else {
			fmt.Fprintf(s.opts.SlowLog, "cogd: slow request (%v):\n%s", elapsed, td.Tree())
		}
	}
}

// startTrace opens the server's trace fragment for one inbound request:
// the trace ID and remote parent span come off the propagation headers
// when the caller sent any (a front's or peer's attempt span), so this
// fragment stitches under the caller's tree instead of orphaning.
func (s *Server) startTrace(r *http.Request, name string) (*obs.Trace, int) {
	tid, parent := obs.Extract(r.Header)
	tr := obs.NewTrace(tid, name)
	tr.SetProcess(s.processName())
	if parent != "" {
		tr.SetRemoteParent(parent)
	}
	return tr, tr.StartSpan("request", -1)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.gate.enter() {
		s.stats.RejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.gate.exit()

	t0 := time.Now()
	tr, reqSpan := s.startTrace(r, "batch")
	w.Header().Set("X-Trace-Id", tr.ID())
	failMode := ""
	defer func() { s.finishTrace(tr, reqSpan, failMode, time.Since(t0)) }()

	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&req); err != nil {
		failMode = "bad-request"
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Units) == 0 {
		failMode = "bad-request"
		writeError(w, http.StatusBadRequest, "batch has no units")
		return
	}
	if s.admitted.Add(int64(len(req.Units))) > int64(s.opts.QueueBound) {
		s.admitted.Add(-int64(len(req.Units)))
		s.stats.RejectedQueueFull.Add(1)
		failMode = "queue-full"
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("batch of %d units exceeds the admission capacity (%d)", len(req.Units), s.opts.QueueBound))
		return
	}
	defer s.admitted.Add(-int64(len(req.Units)))
	s.stats.Accepted.Add(int64(len(req.Units)))
	ctx, cancel := s.requestContext(r, req.DeadlineMillis)
	defer cancel()

	ps := make([]*pending, len(req.Units))
	for i := range req.Units {
		p, err := s.admit(&req.Units[i])
		if err != nil {
			failMode = "bad-request"
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unit %d: %v", i, err))
			return
		}
		p.attachTrace(tr, reqSpan)
		p.ctx = obs.ContextWith(ctx, tr, p.unitSpan)
		ps[i] = p
	}

	// A client-shaped batch is already coalesced; it skips the
	// micro-batch queue and runs as one batch over the worker pool.
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.execute(ps)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.stats.TimedOut.Add(int64(len(ps)))
		failMode = batch.FailTimeout.String()
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the batch finished")
		return
	}
	resp := BatchResponse{Results: make([]CompileResponse, len(ps)), TraceID: tr.ID()}
	for i, p := range ps {
		resp.Results[i] = p.resp
		if p.resp.Failure != nil {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is pure liveness: a process that can run this handler
// is alive, draining or not. Fleet supervisors restart on a failed
// healthz; routing decisions belong to /readyz — a draining daemon must
// not be restarted, just routed around.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 only while the daemon wants traffic.
// The default spec's tables and session pool are built eagerly by New,
// so a serving daemon that answers at all is warm; the one not-ready
// state is draining, answered 503 with Retry-After since the drain has
// a bounded horizon.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.gate.isDraining() {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// Varz is the /varz payload: server-level counters, per-spec pool
// state, and the batch service's snapshot.
type Varz struct {
	UptimeSeconds float64              `json:"uptime_seconds"`
	Draining      bool                 `json:"draining"`
	Server        ServerSnapshot       `json:"server"`
	Pools         map[string]PoolStats `json:"pools"`
	Batch         batch.Snapshot       `json:"batch"`
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	v := Varz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.gate.isDraining(),
		Server:        s.stats.snapshot(s.admitted.Load(), len(s.queue), cap(s.queue)),
		Pools:         map[string]PoolStats{},
		Batch:         s.svc.Stats.Snapshot(),
	}
	s.tmu.Lock()
	for name, mt := range s.targets {
		v.Pools[name] = mt.pool.stats()
	}
	s.tmu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) writeResult(w http.ResponseWriter, p *pending) {
	if p.status != http.StatusOK {
		s.stats.Failed.Add(1)
	} else {
		s.stats.Completed.Add(1)
	}
	// The response-write failpoint models a daemon dying (or stalling —
	// KindDelay is a slow-loris) mid-response: half the body goes out,
	// then the connection aborts. Clients must treat the truncated body
	// as a transport error, never as a short-but-valid answer.
	if err := faultinject.Eval("server/response/write", p.name); err != nil {
		setRetryAfter(w, p.status)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(p.status)
		if data, merr := json.Marshal(p.resp); merr == nil {
			_, _ = w.Write(data[:len(data)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
		panic(http.ErrAbortHandler)
	}
	setRetryAfter(w, p.status)
	writeJSON(w, p.status, p.resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	setRetryAfter(w, status)
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// setRetryAfter attaches the retry hint every backpressure answer
// carries: a full queue clears in about a batch window (seconds are the
// header's floor), a drain takes as long as the slowest in-flight unit.
// Retry policies that honor the header back off without guessing.
func setRetryAfter(w http.ResponseWriter, status int) {
	switch status {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", "1")
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "5")
	}
}

// serverStats are the daemon-level counters behind /varz.
type serverStats struct {
	Accepted          atomic.Int64
	Completed         atomic.Int64
	Failed            atomic.Int64
	TimedOut          atomic.Int64
	RejectedQueueFull atomic.Int64
	RejectedDraining  atomic.Int64
	Batches           atomic.Int64
	BatchedUnits      atomic.Int64
	MaxBatchUnits     atomic.Int64
}

// ServerSnapshot is the /varz copy of serverStats.
type ServerSnapshot struct {
	Accepted          int64 `json:"accepted"`
	Completed         int64 `json:"completed"`
	Failed            int64 `json:"failed"`
	TimedOut          int64 `json:"timed_out"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDraining  int64 `json:"rejected_draining"`
	Batches           int64 `json:"batches"`
	BatchedUnits      int64 `json:"batched_units"`
	MaxBatchUnits     int64 `json:"max_batch_units"`
	InFlightUnits     int64 `json:"in_flight_units"`
	QueueDepth        int   `json:"queue_depth"`
	QueueCap          int   `json:"queue_cap"`
}

func (st *serverStats) snapshot(inflight int64, depth, capacity int) ServerSnapshot {
	return ServerSnapshot{
		Accepted:          st.Accepted.Load(),
		Completed:         st.Completed.Load(),
		Failed:            st.Failed.Load(),
		TimedOut:          st.TimedOut.Load(),
		RejectedQueueFull: st.RejectedQueueFull.Load(),
		RejectedDraining:  st.RejectedDraining.Load(),
		Batches:           st.Batches.Load(),
		BatchedUnits:      st.BatchedUnits.Load(),
		MaxBatchUnits:     st.MaxBatchUnits.Load(),
		InFlightUnits:     inflight,
		QueueDepth:        depth,
		QueueCap:          capacity,
	}
}

func (st *serverStats) noteBatch(n int) {
	st.Batches.Add(1)
	st.BatchedUnits.Add(int64(n))
	for {
		max := st.MaxBatchUnits.Load()
		if int64(n) <= max || st.MaxBatchUnits.CompareAndSwap(max, int64(n)) {
			return
		}
	}
}

// drainGate tracks in-flight requests and the draining flag. Unlike a
// bare WaitGroup it makes reject-new-then-wait race-free: enter and the
// drain transition serialize on one mutex, so a request admitted before
// the drain always has its exit observed by the drain's idle channel.
type drainGate struct {
	mu         sync.Mutex
	inflight   int
	draining   bool
	idle       chan struct{}
	idleClosed bool
}

func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight++
	return true
}

func (g *drainGate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	if g.draining && g.inflight == 0 && g.idle != nil && !g.idleClosed {
		close(g.idle)
		g.idleClosed = true
	}
}

// drainChan flips the gate to draining and returns a channel closed
// once no request is in flight.
func (g *drainGate) drainChan() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
	if g.idle == nil {
		g.idle = make(chan struct{})
		if g.inflight == 0 {
			close(g.idle)
			g.idleClosed = true
		}
	}
	return g.idle
}

func (g *drainGate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}
