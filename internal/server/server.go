// Package server is cogd's compile-as-a-service layer: a long-running
// HTTP/JSON daemon over the batch compilation service, turning the
// paper's cheap table-driven translation into something a fleet of
// clients can call without paying process startup or table construction
// per request.
//
// The daemon keeps one decoded table module per specification through
// the batch service's two-tier cache, holds a bounded pool of reusable
// translation sessions per module so the steady-state raw-IF path keeps
// the zero-allocation emission loop of package codegen, coalesces
// concurrent requests into micro-batches over the batch worker pool,
// and applies admission control: a bounded intake queue (429 when
// full), per-request deadlines (504 past the deadline), and a graceful
// drain that completes in-flight requests while rejecting new ones
// (503). Unit failures map the batch failure taxonomy onto HTTP status
// codes — see StatusFor.
//
// Endpoints:
//
//	POST /v1/compile   one unit (Pascal or raw prefix-IF) -> listing JSON
//	POST /v1/batch     many units as one batch, results in input order
//	GET  /healthz      "ok" while serving, 503 while draining
//	GET  /varz         server, pool, and batch statistics as JSON
//	GET  /debug/vars   the expvar registry (includes the batch counters)
//	GET  /debug/pprof  profiling handlers, when Options.EnablePprof
package server

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cogg/internal/batch"
	"cogg/internal/driver"
	"cogg/internal/ifopt"
	"cogg/internal/rt370"
	"cogg/internal/shaper"
	"cogg/specs"
)

// Options configure a Server.
type Options struct {
	// SpecName/SpecSrc are the default specification; empty means the
	// embedded amdahl470. Requests may select another embedded spec by
	// name, never a file path.
	SpecName string
	SpecSrc  string
	// Risc applies the risc32 target configuration to the default spec.
	Risc bool

	// Workers bounds the batch worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// CacheDir is the on-disk table-module cache; empty disables it.
	CacheDir string
	// PoolSize caps the reusable-session free list per module;
	// <= 0 means 2x the worker pool.
	PoolSize int

	// QueueBound caps requests waiting for a micro-batch slot; a full
	// queue answers 429. <= 0 means 256.
	QueueBound int
	// BatchWindow is how long the collector waits to coalesce more
	// requests into a micro-batch; <= 0 means 200µs.
	BatchWindow time.Duration
	// BatchMax caps units per micro-batch; <= 0 means 64.
	BatchMax int

	// DefaultDeadline bounds a request that sends no deadline_ms, and
	// is also the batch service's per-unit wall-time limit; <= 0 means
	// 15s.
	DefaultDeadline time.Duration
	// MaxStackDepth and MaxCodeBytes bound each translation's parse
	// stack and code buffer (codegen.Config limits, answered as 413);
	// <= 0 keeps the codegen defaults.
	MaxStackDepth int
	MaxCodeBytes  int
	// MaxBodyBytes caps a request body; <= 0 means 8 MiB.
	MaxBodyBytes int64

	// StatsName is the expvar name the batch counters publish under;
	// empty means "cogd.batch".
	StatsName string
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

func (o *Options) fill() {
	if o.SpecName == "" {
		o.SpecName, o.SpecSrc = "amdahl470.cogg", specs.Amdahl470
	}
	if o.PoolSize <= 0 {
		w := o.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		o.PoolSize = 2 * w
	}
	if o.QueueBound <= 0 {
		o.QueueBound = 256
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 200 * time.Microsecond
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 64
	}
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 15 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.StatsName == "" {
		o.StatsName = "cogd.batch"
	}
}

// Server is the daemon. Build one with New, expose Handler on an
// http.Server, and stop it with Drain then Close.
type Server struct {
	opts  Options
	svc   *batch.Service
	mux   *http.ServeMux
	start time.Time

	// targets maps spec key -> lazily built module target + session
	// pool. The default spec is built eagerly by New, so a 200 from
	// /healthz means the tables are ready.
	tmu     sync.Mutex
	targets map[string]*modTarget

	queue         chan *pending
	stop          chan struct{}
	stopOnce      sync.Once
	collectorDone chan struct{}

	// admitted counts units admitted and not yet answered — the real
	// backpressure bound. The queue channel never blocks because its
	// capacity equals the admission bound.
	admitted atomic.Int64

	gate  drainGate
	stats serverStats
}

// modTarget is one specification's serving state: the instantiated
// generator target and its session pool.
type modTarget struct {
	specName string
	tgt      *driver.Target
	pool     *sessionPool
}

// New builds the daemon, constructing (or cache-loading) the default
// specification's tables eagerly and starting the micro-batch
// collector.
func New(opts Options) (*Server, error) {
	opts.fill()
	s := &Server{
		opts: opts,
		svc: batch.New(batch.Options{
			Workers:     opts.Workers,
			CacheDir:    opts.CacheDir,
			UnitTimeout: opts.DefaultDeadline,
		}),
		start:         time.Now(),
		targets:       map[string]*modTarget{},
		queue:         make(chan *pending, opts.QueueBound),
		stop:          make(chan struct{}),
		collectorDone: make(chan struct{}),
	}
	if err := s.svc.Stats.Publish(opts.StatsName); err != nil {
		return nil, err
	}
	if _, err := s.target(""); err != nil {
		return nil, err
	}
	s.buildMux()
	go s.collect()
	return s, nil
}

// Service exposes the underlying batch service (its statistics in
// particular).
func (s *Server) Service() *batch.Service { return s.svc }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting requests and waits until every in-flight
// request has been answered, or until ctx expires. Safe to call more
// than once.
func (s *Server) Drain(ctx context.Context) error {
	select {
	case <-s.gate.drainChan():
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close stops the micro-batch collector. Call after Drain; requests
// still queued are dispatched individually on the way out so no caller
// is left hanging.
func (s *Server) Close() {
	s.gate.drainChan()
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.collectorDone
}

// target resolves a request's spec field to its serving state, building
// the target (through the module cache) on first use. Only embedded
// spec names and the daemon's default are served.
func (s *Server) target(spec string) (*modTarget, error) {
	name, src, risc := s.opts.SpecName, s.opts.SpecSrc, s.opts.Risc
	switch spec {
	case "", s.opts.SpecName:
	case "amdahl470", "amdahl470.cogg":
		name, src, risc = "amdahl470.cogg", specs.Amdahl470, false
	case "amdahl-minimal", "minimal", "amdahl-minimal.cogg":
		name, src, risc = "amdahl-minimal.cogg", specs.AmdahlMinimal, false
	case "risc32", "risc32.cogg":
		name, src, risc = "risc32.cogg", specs.Risc32, true
	default:
		return nil, fmt.Errorf("unknown spec %q (serving amdahl470, amdahl-minimal, risc32, and the daemon default)", spec)
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if mt, ok := s.targets[name]; ok {
		return mt, nil
	}
	cfg := rt370.Config()
	if risc {
		cfg = driver.RiscConfig()
	}
	cfg.MaxStackDepth = s.opts.MaxStackDepth
	cfg.MaxCodeBytes = s.opts.MaxCodeBytes
	tgt, err := s.svc.Target(name, src, cfg)
	if err != nil {
		return nil, err
	}
	mt := &modTarget{specName: name, tgt: tgt, pool: newSessionPool(tgt.Gen, s.opts.PoolSize)}
	s.targets[name] = mt
	return mt, nil
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", s.handleCompile)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/varz", s.handleVarz)
	mux.Handle("/debug/vars", expvar.Handler())
	if s.opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
}

// admit validates one request and stages it as a pending unit. It does
// not enqueue.
func (s *Server) admit(req *CompileRequest) (*pending, error) {
	mt, err := s.target(req.Spec)
	if err != nil {
		return nil, err
	}
	p := &pending{
		name:   req.Name,
		source: req.Source,
		mt:     mt,
		deck:   req.Deck,
		showIF: req.IF,
		done:   make(chan struct{}),
	}
	if p.name == "" {
		p.name = "unit"
	}
	switch req.Lang {
	case "", "pascal":
		p.lang = langPascal
		p.opt = shaper.Options{
			StatementRecords: req.Options.statementRecords(),
			SubscriptChecks:  req.Options.SubscriptChecks,
			UninitChecks:     req.Options.UninitChecks,
		}
		if req.Options.CSE {
			p.opt.CSE = ifopt.New().Apply
		}
	case "if":
		p.lang = langIF
		if req.Deck || req.IF {
			return nil, fmt.Errorf("deck and if output are pascal-only")
		}
	default:
		return nil, fmt.Errorf("unknown lang %q (pascal or if)", req.Lang)
	}
	return p, nil
}

// requestContext derives the request's deadline: the client's
// deadline_ms when sent, the server default otherwise.
func (s *Server) requestContext(r *http.Request, deadlineMillis int) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultDeadline
	if deadlineMillis > 0 {
		d = time.Duration(deadlineMillis) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.gate.enter() {
		s.stats.RejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.gate.exit()
	s.stats.Accepted.Add(1)

	var req CompileRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&req); err != nil {
		s.stats.Failed.Add(1)
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	p, err := s.admit(&req)
	if err != nil {
		s.stats.Failed.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.admitted.Add(1) > int64(s.opts.QueueBound) {
		s.admitted.Add(-1)
		s.stats.RejectedQueueFull.Add(1)
		writeError(w, http.StatusTooManyRequests, "compilation queue is full")
		return
	}
	defer s.admitted.Add(-1)
	ctx, cancel := s.requestContext(r, req.DeadlineMillis)
	defer cancel()
	p.ctx = ctx

	select {
	case s.queue <- p:
	default:
		// Unreachable while admission holds: the queue's capacity is the
		// admission bound.
		s.stats.RejectedQueueFull.Add(1)
		writeError(w, http.StatusTooManyRequests, "compilation queue is full")
		return
	}
	select {
	case <-p.done:
		s.writeResult(w, p)
	case <-ctx.Done():
		// The unit may still finish inside the pool; its result is
		// dropped. The batch service's own per-unit deadline bounds how
		// long it can linger.
		s.stats.TimedOut.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, CompileResponse{
			Name:    p.name,
			Failure: &Failure{Mode: batch.FailTimeout.String(), Message: "deadline exceeded before compilation finished"},
		})
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if !s.gate.enter() {
		s.stats.RejectedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.gate.exit()

	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Units) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no units")
		return
	}
	if s.admitted.Add(int64(len(req.Units))) > int64(s.opts.QueueBound) {
		s.admitted.Add(-int64(len(req.Units)))
		s.stats.RejectedQueueFull.Add(1)
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("batch of %d units exceeds the admission capacity (%d)", len(req.Units), s.opts.QueueBound))
		return
	}
	defer s.admitted.Add(-int64(len(req.Units)))
	s.stats.Accepted.Add(int64(len(req.Units)))
	ctx, cancel := s.requestContext(r, req.DeadlineMillis)
	defer cancel()

	ps := make([]*pending, len(req.Units))
	for i := range req.Units {
		p, err := s.admit(&req.Units[i])
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unit %d: %v", i, err))
			return
		}
		p.ctx = ctx
		ps[i] = p
	}

	// A client-shaped batch is already coalesced; it skips the
	// micro-batch queue and runs as one batch over the worker pool.
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.execute(ps)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.stats.TimedOut.Add(int64(len(ps)))
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the batch finished")
		return
	}
	resp := BatchResponse{Results: make([]CompileResponse, len(ps))}
	for i, p := range ps {
		resp.Results[i] = p.resp
		if p.resp.Failure != nil {
			resp.Failed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.gate.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Varz is the /varz payload: server-level counters, per-spec pool
// state, and the batch service's snapshot.
type Varz struct {
	UptimeSeconds float64              `json:"uptime_seconds"`
	Draining      bool                 `json:"draining"`
	Server        ServerSnapshot       `json:"server"`
	Pools         map[string]PoolStats `json:"pools"`
	Batch         batch.Snapshot       `json:"batch"`
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	v := Varz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.gate.isDraining(),
		Server:        s.stats.snapshot(s.admitted.Load(), len(s.queue), cap(s.queue)),
		Pools:         map[string]PoolStats{},
		Batch:         s.svc.Stats.Snapshot(),
	}
	s.tmu.Lock()
	for name, mt := range s.targets {
		v.Pools[name] = mt.pool.stats()
	}
	s.tmu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) writeResult(w http.ResponseWriter, p *pending) {
	if p.status != http.StatusOK {
		s.stats.Failed.Add(1)
	} else {
		s.stats.Completed.Add(1)
	}
	writeJSON(w, p.status, p.resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// serverStats are the daemon-level counters behind /varz.
type serverStats struct {
	Accepted          atomic.Int64
	Completed         atomic.Int64
	Failed            atomic.Int64
	TimedOut          atomic.Int64
	RejectedQueueFull atomic.Int64
	RejectedDraining  atomic.Int64
	Batches           atomic.Int64
	BatchedUnits      atomic.Int64
	MaxBatchUnits     atomic.Int64
}

// ServerSnapshot is the /varz copy of serverStats.
type ServerSnapshot struct {
	Accepted          int64 `json:"accepted"`
	Completed         int64 `json:"completed"`
	Failed            int64 `json:"failed"`
	TimedOut          int64 `json:"timed_out"`
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	RejectedDraining  int64 `json:"rejected_draining"`
	Batches           int64 `json:"batches"`
	BatchedUnits      int64 `json:"batched_units"`
	MaxBatchUnits     int64 `json:"max_batch_units"`
	InFlightUnits     int64 `json:"in_flight_units"`
	QueueDepth        int   `json:"queue_depth"`
	QueueCap          int   `json:"queue_cap"`
}

func (st *serverStats) snapshot(inflight int64, depth, capacity int) ServerSnapshot {
	return ServerSnapshot{
		Accepted:          st.Accepted.Load(),
		Completed:         st.Completed.Load(),
		Failed:            st.Failed.Load(),
		TimedOut:          st.TimedOut.Load(),
		RejectedQueueFull: st.RejectedQueueFull.Load(),
		RejectedDraining:  st.RejectedDraining.Load(),
		Batches:           st.Batches.Load(),
		BatchedUnits:      st.BatchedUnits.Load(),
		MaxBatchUnits:     st.MaxBatchUnits.Load(),
		InFlightUnits:     inflight,
		QueueDepth:        depth,
		QueueCap:          capacity,
	}
}

func (st *serverStats) noteBatch(n int) {
	st.Batches.Add(1)
	st.BatchedUnits.Add(int64(n))
	for {
		max := st.MaxBatchUnits.Load()
		if int64(n) <= max || st.MaxBatchUnits.CompareAndSwap(max, int64(n)) {
			return
		}
	}
}

// drainGate tracks in-flight requests and the draining flag. Unlike a
// bare WaitGroup it makes reject-new-then-wait race-free: enter and the
// drain transition serialize on one mutex, so a request admitted before
// the drain always has its exit observed by the drain's idle channel.
type drainGate struct {
	mu         sync.Mutex
	inflight   int
	draining   bool
	idle       chan struct{}
	idleClosed bool
}

func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight++
	return true
}

func (g *drainGate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	if g.draining && g.inflight == 0 && g.idle != nil && !g.idleClosed {
		close(g.idle)
		g.idleClosed = true
	}
}

// drainChan flips the gate to draining and returns a channel closed
// once no request is in flight.
func (g *drainGate) drainChan() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
	if g.idle == nil {
		g.idle = make(chan struct{})
		if g.inflight == 0 {
			close(g.idle)
			g.idleClosed = true
		}
	}
	return g.idle
}

func (g *drainGate) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}
