package server

import (
	"net/http"
	"os"
	"testing"

	"cogg/internal/batch"
	"cogg/internal/codegen"
	"cogg/internal/driver"
	"cogg/internal/ir"
	"cogg/internal/oracle"
	"cogg/internal/rt370"
	"cogg/specs"
)

// TestGrammarSessionWalk drives a full remote grammar walk: open a
// session, feed a known-valid program symbol by symbol (checking each
// symbol was announced as legal by the previous step), accept with
// "$end", and verify the session is gone afterwards.
func TestGrammarSessionWalk(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	var sess GrammarSessionResponse
	if status := post(t, ts.URL+"/v1/grammar/session", GrammarSessionRequest{}, &sess); status != http.StatusOK {
		t.Fatalf("session: status %d", status)
	}
	if sess.SessionID == "" || sess.Spec != "amdahl470.cogg" {
		t.Fatalf("session = %+v", sess)
	}
	legal := sess.Legal
	toks, err := ir.ParseTokens(goodIF)
	if err != nil {
		t.Fatal(err)
	}
	reduced := 0
	for i, tok := range toks {
		if !contains(legal, tok.Sym) {
			t.Fatalf("token %d (%s): not in announced legal set %v", i, tok.Sym, legal)
		}
		var next GrammarNextResponse
		status := post(t, ts.URL+"/v1/grammar/next",
			GrammarNextRequest{SessionID: sess.SessionID, Symbol: tok.Sym}, &next)
		if status != http.StatusOK {
			t.Fatalf("next(%s): status %d (%+v)", tok.Sym, status, next)
		}
		reduced += len(next.Reduced)
		legal = next.Legal
	}
	if !contains(legal, "$end") {
		t.Fatalf("program complete but $end not legal: %v", legal)
	}
	var fin GrammarNextResponse
	if status := post(t, ts.URL+"/v1/grammar/next",
		GrammarNextRequest{SessionID: sess.SessionID, Symbol: "$end"}, &fin); status != http.StatusOK {
		t.Fatalf("accept: status %d", status)
	}
	if !fin.Accepted {
		t.Fatalf("accept: %+v", fin)
	}
	if reduced+len(fin.Reduced) == 0 {
		t.Error("no productions reported across the whole walk")
	}
	// Accepted sessions are closed.
	if status := post(t, ts.URL+"/v1/grammar/next",
		GrammarNextRequest{SessionID: sess.SessionID, Symbol: "assign"}, nil); status != http.StatusNotFound {
		t.Fatalf("closed session answered %d, want 404", status)
	}
	if got := s.grammar.closed.Load(); got != 1 {
		t.Errorf("closed counter = %d, want 1", got)
	}
}

// TestGrammarNextErrors pins the error contract: undeclared symbol 400,
// declared-but-illegal symbol 422 with a recovery set (session
// survives), unknown session 404, unknown spec 400.
func TestGrammarNextErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	if status := post(t, ts.URL+"/v1/grammar/session",
		GrammarSessionRequest{Spec: "no-such-spec"}, nil); status != http.StatusBadRequest {
		t.Fatalf("unknown spec: status %d, want 400", status)
	}
	if status := post(t, ts.URL+"/v1/grammar/next",
		GrammarNextRequest{SessionID: "nope", Symbol: "assign"}, nil); status != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", status)
	}

	var sess GrammarSessionResponse
	if status := post(t, ts.URL+"/v1/grammar/session",
		GrammarSessionRequest{Spec: "risc32"}, &sess); status != http.StatusOK {
		t.Fatalf("session: status %d", status)
	}
	if status := post(t, ts.URL+"/v1/grammar/next",
		GrammarNextRequest{SessionID: sess.SessionID, Symbol: "made_up_op"}, nil); status != http.StatusBadRequest {
		t.Fatalf("undeclared symbol: status %d, want 400", status)
	}
	var blocked GrammarNextResponse
	if status := post(t, ts.URL+"/v1/grammar/next",
		GrammarNextRequest{SessionID: sess.SessionID, Symbol: "cse"}, &blocked); status != http.StatusUnprocessableEntity {
		t.Fatalf("illegal symbol: status %d, want 422", status)
	}
	if blocked.Error == "" || len(blocked.Legal) == 0 {
		t.Fatalf("422 body lacks error or recovery set: %+v", blocked)
	}
	// The session survives an illegal probe.
	if status := post(t, ts.URL+"/v1/grammar/next",
		GrammarNextRequest{SessionID: sess.SessionID, Symbol: "assign"}, nil); status != http.StatusOK {
		t.Fatalf("session did not survive the illegal probe")
	}
}

// synthSpecs are the corpus-differential targets.
var synthSpecs = []struct {
	name string
	src  string
	cfg  func() codegen.Config
}{
	{"amdahl470.cogg", specs.Amdahl470, rt370.Config},
	{"risc32.cogg", specs.Risc32, driver.RiscConfig},
}

// corpusSize returns the differential corpus size: a quick default, or
// the acceptance-criterion scale when COGG_CORPUS_FULL is set (the CI
// corpus job sets it; a 10,000-program run must show zero parse
// failures, zero blocked parses, full production coverage, and
// byte-identical listings across both translation paths).
func corpusSize() int {
	if os.Getenv("COGG_CORPUS_FULL") != "" {
		return 10000
	}
	return 40
}

// TestSynthCorpusDifferential is the ifsynth differential property
// test: every oracle-generated program must translate without a
// blocked parse, cover every reachable production of its spec
// (collectively), and produce byte-identical listings between a
// directly driven codegen session and the daemon's /v1/batch path.
func TestSynthCorpusDifferential(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	n := corpusSize()

	for _, sc := range synthSpecs {
		t.Run(sc.name, func(t *testing.T) {
			svc := batch.New(batch.Options{})
			tgt, err := svc.Target(sc.name, sc.src, sc.cfg())
			if err != nil {
				t.Fatal(err)
			}
			ses, err := tgt.Gen.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			o := oracle.New(tgt.Mod)
			prime, err := ir.ParseTokens(oracle.DefaultPriming(sc.name))
			if err != nil {
				t.Fatal(err)
			}
			c, err := oracle.Generate(o, 42, n, oracle.CorpusOptions{
				Walk: oracle.WalkConfig{Priming: prime},
				Verify: func(toks []ir.Token) ([]int, error) {
					_, res, err := ses.Generate("synth", toks)
					if err != nil {
						return nil, err
					}
					return append([]int(nil), res.ProdCounts...), nil
				},
			})
			if err != nil {
				t.Fatalf("corpus generation: %v", err)
			}
			if !c.Report.Full() {
				t.Fatalf("coverage %d/%d reachable productions; uncovered: %v",
					c.Report.Covered, c.Report.Reachable, c.Report.Uncovered)
			}

			// Reference path: fresh-session translation, as ifcgen does it.
			units := make([]batch.IFUnit, len(c.Programs))
			for i, toks := range c.Programs {
				units[i] = batch.IFUnit{Name: "synth.if", Text: ir.FormatTokens(toks)}
			}
			refs := svc.TranslateBatch(tgt, units)

			// Daemon path: the same programs through /v1/batch, chunked
			// under the admission bound.
			const chunk = 64
			for lo := 0; lo < len(units); lo += chunk {
				hi := lo + chunk
				if hi > len(units) {
					hi = len(units)
				}
				req := BatchRequest{}
				for i := lo; i < hi; i++ {
					req.Units = append(req.Units, CompileRequest{
						Name: "synth.if", Lang: "if", Spec: sc.name, Source: units[i].Text,
					})
				}
				var resp BatchResponse
				if status := post(t, ts.URL+"/v1/batch", req, &resp); status != http.StatusOK {
					t.Fatalf("batch [%d:%d]: status %d", lo, hi, status)
				}
				if resp.Failed != 0 {
					for i, r := range resp.Results {
						if r.Failure != nil {
							t.Fatalf("program %d failed via cogd: %+v", lo+i, r.Failure)
						}
					}
				}
				for i, r := range resp.Results {
					ref := refs[lo+i]
					if ref.Err != nil {
						t.Fatalf("program %d: reference translation failed: %v", lo+i, ref.Err)
					}
					if r.Listing != ref.Listing {
						t.Fatalf("program %d: listing differs between direct and cogd paths\n%s",
							lo+i, units[lo+i].Text)
					}
				}
			}
		})
	}
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
