package server

import (
	"context"
	"encoding/base64"
	"net/http"
	"strings"
	"time"

	"cogg/internal/asm"
	"cogg/internal/batch"
	"cogg/internal/codegen"
	"cogg/internal/faultinject"
	"cogg/internal/ir"
	"cogg/internal/labels"
	"cogg/internal/obs"
	"cogg/internal/shaper"
)

type lang int

const (
	langPascal lang = iota
	langIF
)

// pending is one admitted request waiting for (or holding) its result.
// The executing worker is the only writer of resp/status and the only
// closer of done; the handler reads resp only after done closes.
type pending struct {
	name    string
	lang    lang
	source  string
	opt     shaper.Options
	deck    bool
	showIF  bool
	explain bool
	mt      *modTarget
	ctx     context.Context

	// tr/unitSpan/queueSpan tie this unit into its request's trace: the
	// unit span covers admission through finish, with a queue-wait child
	// the executor closes when it picks the unit up.
	tr        *obs.Trace
	unitSpan  int
	queueSpan int

	resp   CompileResponse
	status int
	done   chan struct{}
}

// attachTrace parents this unit's spans under the request span.
func (p *pending) attachTrace(tr *obs.Trace, parent int) {
	p.tr = tr
	p.unitSpan = tr.StartSpan("unit:"+p.name, parent)
	p.queueSpan = tr.StartSpan("queue-wait", p.unitSpan)
}

// endQueue closes the queue-wait span; the executor calls it the moment
// a micro-batch claims the unit.
func (p *pending) endQueue() {
	if p.tr != nil {
		p.tr.EndSpan(p.queueSpan)
	}
}

func (p *pending) finish(status int, resp CompileResponse) {
	if p.tr != nil {
		p.tr.EndSpan(p.unitSpan)
	}
	p.status = status
	p.resp = resp
	close(p.done)
}

// collect is the micro-batcher: it blocks for the first queued request,
// then coalesces whatever arrives within BatchWindow (up to BatchMax)
// into one batch dispatched over the worker pool. Under load the window
// never waits its full length — the batch fills first — so coalescing
// costs idle-traffic latency only.
func (s *Server) collect() {
	defer close(s.collectorDone)
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.stop:
			// Dispatch anything still queued so no caller hangs.
			for {
				select {
				case p := <-s.queue:
					go s.execute([]*pending{p})
				default:
					return
				}
			}
		}
		group := []*pending{first}
		timer := time.NewTimer(s.opts.BatchWindow)
	gather:
		for len(group) < s.opts.BatchMax {
			select {
			case p := <-s.queue:
				group = append(group, p)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		s.stats.noteBatch(len(group))
		go s.execute(group)
	}
}

// execute runs one micro-batch: requests whose deadline already passed
// are answered immediately, the rest are partitioned by (module, lang)
// and driven through the batch service, which supplies worker fan-out,
// per-unit panic isolation, deadlines, and statistics.
func (s *Server) execute(group []*pending) {
	type part struct {
		mt *modTarget
		l  lang
	}
	// The flush failpoint models the dispatch path itself failing (a
	// worker-pool wedge, an OOM between collect and run): the whole
	// micro-batch answers 503 + Retry-After, and a resilient client
	// retries each unit elsewhere.
	if err := faultinject.Eval("server/batch/flush", group[0].name); err != nil {
		for _, p := range group {
			p.endQueue()
			p.finish(http.StatusServiceUnavailable, CompileResponse{
				Name:    p.name,
				Failure: &Failure{Mode: batch.FailIO.String(), Message: "batch flush failed: " + err.Error()},
			})
		}
		return
	}
	parts := map[part][]*pending{}
	order := []part{}
	for _, p := range group {
		p.endQueue()
		if p.ctx.Err() != nil {
			p.finish(http.StatusGatewayTimeout, CompileResponse{
				Name:    p.name,
				Failure: &Failure{Mode: batch.FailTimeout.String(), Message: "deadline exceeded while queued"},
			})
			continue
		}
		k := part{p.mt, p.lang}
		if _, ok := parts[k]; !ok {
			order = append(order, k)
		}
		parts[k] = append(parts[k], p)
	}
	for _, k := range order {
		ps := parts[k]
		if k.l == langIF {
			s.executeIF(k.mt, ps)
		} else {
			s.executePascal(k.mt, ps)
		}
	}
}

// executeIF drives raw prefix-IF units through the module's session
// pool: reused sessions keep the emission hot path allocation-free, and
// the listing is rendered before the session is re-pooled because the
// program buffer aliases session storage.
func (s *Server) executeIF(mt *modTarget, ps []*pending) {
	units := make([]batch.IFUnit, len(ps))
	for i, p := range ps {
		units[i] = batch.IFUnit{Name: p.name, Text: p.source, Ctx: p.ctx}
	}
	results := s.svc.TranslateBatchWith(units, mt.translate)
	for i, p := range ps {
		r := results[i]
		if r.Err != nil {
			f := failureFor(r.Err, r.Mode)
			if r.Mode == batch.FailBlocked {
				f.Derivation = explainUnit(p)
			}
			p.finish(StatusFor(r.Mode), CompileResponse{Name: p.name, Failure: f})
			continue
		}
		resp := CompileResponse{
			Name:         p.name,
			Listing:      r.Listing,
			Tokens:       r.Tokens,
			Reductions:   r.Reductions,
			Instructions: r.Instructions,
			CodeBytes:    r.CodeBytes,
		}
		if p.explain {
			resp.Derivation = explainUnit(p)
		}
		p.finish(http.StatusOK, resp)
	}
}

// explainUnit re-runs one unit with derivation recording on a fresh,
// throwaway session, for diagnostics only: blocked-parse 422s attach
// their partial derivation, and explain:true requests their full one.
// Keeping recording off the pooled path preserves its zero-allocation
// steady state; a blocked parse is cheap to repeat (it stops at the
// block) and deterministic, so the re-run reproduces exactly the
// instructions the failing attempt emitted. The recover guard means a
// diagnostic re-run can never take down the executor goroutine.
func explainUnit(p *pending) (prov []codegen.ProvEntry) {
	defer func() { _ = recover() }()
	if p.lang == langIF {
		toks, err := ir.ParseTokens(p.source)
		if err != nil {
			return nil
		}
		_, prov, _, _ = p.mt.tgt.Explain(p.name, toks)
		return prov
	}
	_, prov, _, _ = p.mt.tgt.ExplainSource(p.name, p.source, p.opt)
	return prov
}

// translate is the pooled-session unit translator handed to
// TranslateBatchWith. It runs inside the batch service's per-unit
// recover: a panic mid-translation unwinds past the put, so the
// poisoned session is simply never re-pooled.
func (t *modTarget) translate(u batch.IFUnit) batch.IFResult {
	ses, err := t.pool.get()
	if err != nil {
		return batch.IFResult{Name: u.Name, Err: err}
	}
	r := translateSession(t, ses, u)
	t.pool.put(ses, r.Err)
	return r
}

// translateSession is one IF translation on a caller-owned session —
// the batch service's stock translator, minus the per-call session
// build. The returned listing is a fresh string; nothing in the result
// aliases session storage, so the session may be reused immediately.
func translateSession(t *modTarget, ses codegen.EngineSession, u batch.IFUnit) batch.IFResult {
	toks, err := ir.ParseTokens(u.Text)
	if err != nil {
		return batch.IFResult{Name: u.Name, Err: err}
	}
	ctx := u.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	prog, res, err := ses.GenerateCtx(ctx, u.Name, toks)
	if err != nil {
		return batch.IFResult{Name: u.Name, Err: err}
	}
	if err := labels.Layout(prog, t.tgt.Machine); err != nil {
		return batch.IFResult{Name: u.Name, Err: err}
	}
	return batch.IFResult{
		Name:         u.Name,
		Listing:      asm.Listing(prog, t.tgt.Machine),
		Tokens:       len(toks),
		Reductions:   res.Reductions,
		Instructions: prog.InstructionCount(),
		CodeBytes:    prog.CodeSize,
	}
}

// executePascal compiles Pascal units through the full driver pipeline.
// The front end allocates per program regardless, so this path uses the
// service's stock per-unit sessions rather than the pool; the raw-IF
// path is the allocation-free one.
func (s *Server) executePascal(mt *modTarget, ps []*pending) {
	units := make([]batch.Unit, len(ps))
	for i, p := range ps {
		units[i] = batch.Unit{Name: p.name, Source: p.source, Opt: p.opt, Ctx: p.ctx}
	}
	results := s.svc.CompileBatch(mt.tgt, units)
	for i, p := range ps {
		r := results[i]
		if r.Err != nil {
			f := failureFor(r.Err, r.Mode)
			if r.Mode == batch.FailBlocked {
				f.Derivation = explainUnit(p)
			}
			p.finish(StatusFor(r.Mode), CompileResponse{Name: p.name, Failure: f})
			continue
		}
		c := r.Compiled
		resp := CompileResponse{
			Name:         p.name,
			Listing:      c.Listing(),
			Tokens:       len(c.Tokens),
			Reductions:   c.Result.Reductions,
			Instructions: c.Prog.InstructionCount(),
			CodeBytes:    c.Prog.CodeSize,
		}
		if p.showIF {
			resp.IF = ir.FormatTokens(c.Tokens)
		}
		if p.explain {
			resp.Derivation = explainUnit(p)
		}
		if p.deck {
			var b strings.Builder
			if err := c.Deck.WriteCards(&b); err != nil {
				p.finish(http.StatusInternalServerError, CompileResponse{
					Name:    p.name,
					Failure: &Failure{Mode: batch.FailIO.String(), Message: "rendering deck: " + err.Error()},
				})
				continue
			}
			resp.Deck = base64.StdEncoding.EncodeToString([]byte(b.String()))
		}
		p.finish(http.StatusOK, resp)
	}
}
