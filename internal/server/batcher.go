package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"cogg/internal/asm"
	"cogg/internal/batch"
	"cogg/internal/blob"
	"cogg/internal/codegen"
	"cogg/internal/faultinject"
	"cogg/internal/ir"
	"cogg/internal/labels"
	"cogg/internal/obs"
	"cogg/internal/shaper"
)

type lang int

const (
	langPascal lang = iota
	langIF
)

// pending is one admitted request waiting for (or holding) its result.
// The executing worker is the only writer of resp/status and the only
// closer of done; the handler reads resp only after done closes.
type pending struct {
	name    string
	lang    lang
	source  string
	opt     shaper.Options
	deck    bool
	showIF  bool
	explain bool
	mt      *modTarget
	ctx     context.Context

	// tr/unitSpan/queueSpan tie this unit into its request's trace: the
	// unit span covers admission through finish, with a queue-wait child
	// the executor closes when it picks the unit up.
	tr        *obs.Trace
	unitSpan  int
	queueSpan int

	resp   CompileResponse
	status int
	done   chan struct{}
}

// attachTrace parents this unit's spans under the request span.
func (p *pending) attachTrace(tr *obs.Trace, parent int) {
	p.tr = tr
	p.unitSpan = tr.StartSpan("unit:"+p.name, parent)
	p.queueSpan = tr.StartSpan("queue-wait", p.unitSpan)
}

// endQueue closes the queue-wait span; the executor calls it the moment
// a micro-batch claims the unit.
func (p *pending) endQueue() {
	if p.tr != nil {
		p.tr.EndSpan(p.queueSpan)
	}
}

func (p *pending) finish(status int, resp CompileResponse) {
	if p.tr != nil {
		p.tr.EndSpan(p.unitSpan)
	}
	p.status = status
	p.resp = resp
	close(p.done)
}

// collect is the micro-batcher: it blocks for the first queued request,
// then coalesces whatever arrives within BatchWindow (up to BatchMax)
// into one batch dispatched over the worker pool. Under load the window
// never waits its full length — the batch fills first — so coalescing
// costs idle-traffic latency only.
func (s *Server) collect() {
	defer close(s.collectorDone)
	for {
		var first *pending
		select {
		case first = <-s.queue:
		case <-s.stop:
			// Dispatch anything still queued so no caller hangs.
			for {
				select {
				case p := <-s.queue:
					go s.execute([]*pending{p})
				default:
					return
				}
			}
		}
		group := []*pending{first}
		timer := time.NewTimer(s.opts.BatchWindow)
	gather:
		for len(group) < s.opts.BatchMax {
			select {
			case p := <-s.queue:
				group = append(group, p)
			case <-timer.C:
				break gather
			}
		}
		timer.Stop()
		s.stats.noteBatch(len(group))
		go s.execute(group)
	}
}

// execute runs one micro-batch: requests whose deadline already passed
// are answered immediately, the rest are partitioned by (module, lang)
// and driven through the batch service, which supplies worker fan-out,
// per-unit panic isolation, deadlines, and statistics.
func (s *Server) execute(group []*pending) {
	type part struct {
		mt *modTarget
		l  lang
	}
	// The flush failpoint models the dispatch path itself failing (a
	// worker-pool wedge, an OOM between collect and run): the whole
	// micro-batch answers 503 + Retry-After, and a resilient client
	// retries each unit elsewhere.
	if err := faultinject.Eval("server/batch/flush", group[0].name); err != nil {
		for _, p := range group {
			p.endQueue()
			p.finish(http.StatusServiceUnavailable, CompileResponse{
				Name:    p.name,
				Failure: &Failure{Mode: batch.FailIO.String(), Message: "batch flush failed: " + err.Error()},
			})
		}
		return
	}
	parts := map[part][]*pending{}
	order := []part{}
	for _, p := range group {
		p.endQueue()
		if p.ctx.Err() != nil {
			p.finish(http.StatusGatewayTimeout, CompileResponse{
				Name:    p.name,
				Failure: &Failure{Mode: batch.FailTimeout.String(), Message: "deadline exceeded while queued"},
			})
			continue
		}
		k := part{p.mt, p.lang}
		if _, ok := parts[k]; !ok {
			order = append(order, k)
		}
		parts[k] = append(parts[k], p)
	}
	for _, k := range order {
		ps := parts[k]
		if k.l == langIF {
			s.executeIF(k.mt, ps)
		} else {
			s.executePascal(k.mt, ps)
		}
	}
}

// executeIF drives raw prefix-IF units through the module's session
// pool: reused sessions keep the emission hot path allocation-free, and
// the listing is rendered before the session is re-pooled because the
// program buffer aliases session storage.
func (s *Server) executeIF(mt *modTarget, ps []*pending) {
	units := make([]batch.IFUnit, len(ps))
	for i, p := range ps {
		units[i] = batch.IFUnit{Name: p.name, Text: p.source, Ctx: p.ctx}
	}
	results := s.svc.TranslateBatchWith(units, mt.translate)
	for i, p := range ps {
		r := results[i]
		if r.Err != nil {
			f := failureFor(r.Err, r.Mode)
			if r.Mode == batch.FailBlocked {
				f.Derivation = explainUnit(p)
			}
			p.finish(StatusFor(r.Mode), CompileResponse{Name: p.name, Failure: f})
			continue
		}
		resp := CompileResponse{
			Name:         p.name,
			Listing:      r.Listing,
			Tokens:       r.Tokens,
			Reductions:   r.Reductions,
			Instructions: r.Instructions,
			CodeBytes:    r.CodeBytes,
		}
		if p.explain {
			resp.Derivation = explainUnit(p)
		}
		p.finish(http.StatusOK, resp)
	}
}

// explainUnit re-runs one unit with derivation recording on a fresh,
// throwaway session, for diagnostics only: blocked-parse 422s attach
// their partial derivation, and explain:true requests their full one.
// Keeping recording off the pooled path preserves its zero-allocation
// steady state; a blocked parse is cheap to repeat (it stops at the
// block) and deterministic, so the re-run reproduces exactly the
// instructions the failing attempt emitted. The recover guard means a
// diagnostic re-run can never take down the executor goroutine.
func explainUnit(p *pending) (prov []codegen.ProvEntry) {
	defer func() { _ = recover() }()
	if p.lang == langIF {
		toks, err := ir.ParseTokens(p.source)
		if err != nil {
			return nil
		}
		_, prov, _, _ = p.mt.tgt.Explain(p.name, toks)
		return prov
	}
	_, prov, _, _ = p.mt.tgt.ExplainSource(p.name, p.source, p.opt)
	return prov
}

// translate is the pooled-session unit translator handed to
// TranslateBatchWith. It runs inside the batch service's per-unit
// recover: a panic mid-translation unwinds past the put, so the
// poisoned session is simply never re-pooled.
func (t *modTarget) translate(u batch.IFUnit) batch.IFResult {
	ses, err := t.pool.get()
	if err != nil {
		return batch.IFResult{Name: u.Name, Err: err}
	}
	r := translateSession(t, ses, u)
	t.pool.put(ses, r.Err)
	return r
}

// translateSession is one IF translation on a caller-owned session —
// the batch service's stock translator, minus the per-call session
// build. The returned listing is a fresh string; nothing in the result
// aliases session storage, so the session may be reused immediately.
func translateSession(t *modTarget, ses codegen.EngineSession, u batch.IFUnit) batch.IFResult {
	toks, err := ir.ParseTokens(u.Text)
	if err != nil {
		return batch.IFResult{Name: u.Name, Err: err}
	}
	ctx := u.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	prog, res, err := ses.GenerateCtx(ctx, u.Name, toks)
	if err != nil {
		return batch.IFResult{Name: u.Name, Err: err}
	}
	if err := labels.Layout(prog, t.tgt.Machine); err != nil {
		return batch.IFResult{Name: u.Name, Err: err}
	}
	return batch.IFResult{
		Name:         u.Name,
		Listing:      asm.Listing(prog, t.tgt.Machine),
		Tokens:       len(toks),
		Reductions:   res.Reductions,
		Instructions: prog.InstructionCount(),
		CodeBytes:    prog.CodeSize,
	}
}

// deckCacheEntry is the blob-cached form of a deck-producing compile:
// everything a CompileResponse needs, so a warm replica answers a
// repeated deck request from the artifact tier without touching the
// pipeline — and a fleet peer's deck serves here byte-identically.
type deckCacheEntry struct {
	Listing      string `json:"listing"`
	Tokens       int    `json:"tokens"`
	Reductions   int    `json:"reductions"`
	Instructions int    `json:"instructions"`
	CodeBytes    int    `json:"code_bytes"`
	Deck         string `json:"deck_b64"`
}

// deckCacheable: only plain deck-producing Pascal successes are
// cached. Explain output is interpreter-provenance (cheap to re-derive,
// huge to store) and showIF is a debugging view; both stay uncached.
func (p *pending) deckCacheable() bool {
	return p.deck && !p.explain && !p.showIF && p.lang == langPascal
}

// deckKey derives a deck's blob key from everything the output depends
// on: the scheme tag, the module key (which already covers format
// version + spec name + spec source), the unit name and source, and the
// shaper option flags.
func deckKey(mt *modTarget, p *pending) string {
	o := p.opt
	flags := fmt.Sprintf("sr=%v sc=%v uc=%v cse=%v",
		o.StatementRecords, o.SubscriptChecks, o.UninitChecks, o.CSE != nil)
	return blob.DigestParts("deck/v1", mt.key, p.name, p.source, flags)
}

// deckCacheGet answers one pending from the blob tier; any miss or
// malformed entry falls through to compilation.
func (s *Server) deckCacheGet(mt *modTarget, p *pending) (CompileResponse, bool) {
	if s.blobStore == nil {
		return CompileResponse{}, false
	}
	key := deckKey(mt, p)
	data, err := s.blobStore.Get(p.ctx, key)
	if err != nil {
		return CompileResponse{}, false
	}
	var e deckCacheEntry
	if json.Unmarshal(data, &e) != nil || e.Deck == "" {
		// Intact bytes that are not a deck entry: drop and recompile.
		_ = s.blobStore.Delete(p.ctx, key)
		return CompileResponse{}, false
	}
	return CompileResponse{
		Name:         p.name,
		Listing:      e.Listing,
		Tokens:       e.Tokens,
		Reductions:   e.Reductions,
		Instructions: e.Instructions,
		CodeBytes:    e.CodeBytes,
		Deck:         e.Deck,
	}, true
}

// deckCachePut publishes one successful deck compile into the blob
// tier (best-effort) and, when a disk tier exists, upserts the index
// sidecar so `cogg cache ls` can name the digest.
func (s *Server) deckCachePut(mt *modTarget, p *pending, resp CompileResponse) {
	if s.blobStore == nil {
		return
	}
	data, err := json.Marshal(deckCacheEntry{
		Listing:      resp.Listing,
		Tokens:       resp.Tokens,
		Reductions:   resp.Reductions,
		Instructions: resp.Instructions,
		CodeBytes:    resp.CodeBytes,
		Deck:         resp.Deck,
	})
	if err != nil {
		return
	}
	key := deckKey(mt, p)
	if err := s.blobStore.Put(p.ctx, key, data); err != nil {
		return
	}
	if s.opts.CacheDir != "" {
		_ = blob.UpdateIndex(s.opts.CacheDir, blob.IndexEntry{
			Name:    mt.specName + "/" + p.name,
			Version: "deck/v1",
			Kind:    "deck",
			Key:     key,
			Content: blob.Sum(data),
			Size:    int64(len(data)),
		})
	}
}

// executePascal compiles Pascal units through the full driver pipeline.
// The front end allocates per program regardless, so this path uses the
// service's stock per-unit sessions rather than the pool; the raw-IF
// path is the allocation-free one. Deck-producing units consult the
// blob tier first — a deck compiled by any replica in the fleet serves
// here without re-entering the pipeline.
func (s *Server) executePascal(mt *modTarget, ps []*pending) {
	run := make([]*pending, 0, len(ps))
	for _, p := range ps {
		if p.deckCacheable() {
			if resp, ok := s.deckCacheGet(mt, p); ok {
				p.finish(http.StatusOK, resp)
				continue
			}
		}
		run = append(run, p)
	}
	if len(run) == 0 {
		return
	}
	units := make([]batch.Unit, len(run))
	for i, p := range run {
		units[i] = batch.Unit{Name: p.name, Source: p.source, Opt: p.opt, Ctx: p.ctx}
	}
	results := s.svc.CompileBatch(mt.tgt, units)
	for i, p := range run {
		r := results[i]
		if r.Err != nil {
			f := failureFor(r.Err, r.Mode)
			if r.Mode == batch.FailBlocked {
				f.Derivation = explainUnit(p)
			}
			p.finish(StatusFor(r.Mode), CompileResponse{Name: p.name, Failure: f})
			continue
		}
		c := r.Compiled
		resp := CompileResponse{
			Name:         p.name,
			Listing:      c.Listing(),
			Tokens:       len(c.Tokens),
			Reductions:   c.Result.Reductions,
			Instructions: c.Prog.InstructionCount(),
			CodeBytes:    c.Prog.CodeSize,
		}
		if p.showIF {
			resp.IF = ir.FormatTokens(c.Tokens)
		}
		if p.explain {
			resp.Derivation = explainUnit(p)
		}
		if p.deck {
			var b strings.Builder
			if err := c.Deck.WriteCards(&b); err != nil {
				p.finish(http.StatusInternalServerError, CompileResponse{
					Name:    p.name,
					Failure: &Failure{Mode: batch.FailIO.String(), Message: "rendering deck: " + err.Error()},
				})
				continue
			}
			resp.Deck = base64.StdEncoding.EncodeToString([]byte(b.String()))
			if p.deckCacheable() {
				s.deckCachePut(mt, p, resp)
			}
		}
		p.finish(http.StatusOK, resp)
	}
}
