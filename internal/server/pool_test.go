package server

import (
	"errors"
	"net/http"
	"testing"

	"cogg/internal/batch"
	"cogg/internal/faultinject"
	"cogg/internal/rt370"
	"cogg/specs"
)

// TestSessionPoolCounters checks the free-list mechanics directly:
// a clean put is reused, a failed put is discarded, and a put into a
// full list is discarded.
func TestSessionPoolCounters(t *testing.T) {
	svc := batch.New(batch.Options{})
	tgt, err := svc.Target("amdahl470.cogg", specs.Amdahl470, rt370.Config())
	if err != nil {
		t.Fatal(err)
	}
	pool := newSessionPool(tgt.Gen, 1)

	s1, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	pool.put(s1, nil)
	s2, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s1 {
		t.Fatal("clean session was not reused")
	}

	// A failed translation discards its session.
	pool.put(s2, errors.New("translation failed"))
	s3, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s2 {
		t.Fatal("failed session was returned to the free list")
	}

	// Overflow past the list capacity discards too.
	s4, err := pool.get()
	if err != nil {
		t.Fatal(err)
	}
	pool.put(s3, nil)
	pool.put(s4, nil)

	st := pool.stats()
	if st.Free != 1 {
		t.Errorf("Free = %d, want 1", st.Free)
	}
	if st.Created != 3 || st.Reused != 1 || st.Discarded != 2 {
		t.Errorf("Created/Reused/Discarded = %d/%d/%d, want 3/1/2",
			st.Created, st.Reused, st.Discarded)
	}
}

// TestPoisonedSessionNotReused is the hygiene regression test: after a
// blocked parse and after a panic recovered by the batch envelope, the
// session that served the failing unit must not contaminate later
// requests — the same input keeps producing byte-identical output.
func TestPoisonedSessionNotReused(t *testing.T) {
	// PoolSize 1 maximizes the chance that a wrongly re-pooled session
	// would be handed to the very next request.
	s, ts := newTestServer(t, Options{PoolSize: 1, Workers: 1})

	ref := func() string {
		status, resp := compile(t, ts, CompileRequest{Name: "ref.if", Lang: "if", Source: goodIF})
		if status != http.StatusOK {
			t.Fatalf("reference request: status %d (%+v)", status, resp.Failure)
		}
		return resp.Listing
	}
	want := ref()

	// Poison attempt 1: a blocked parse abandons the run mid-stack.
	if status, _ := compile(t, ts, CompileRequest{Name: "blocked.if", Lang: "if", Source: badIF}); status != http.StatusUnprocessableEntity {
		t.Fatalf("blocked poison request: status %d, want 422", status)
	}
	if got := ref(); got != want {
		t.Errorf("listing diverged after a blocked session:\n got: %q\nwant: %q", got, want)
	}

	// Poison attempt 2: a panic tears through a reduction mid-edit; the
	// batch envelope recovers it, and the session must be abandoned.
	faultinject.Set(faultinject.Rule{
		Site: "codegen/reduce", Key: "panic.if", Kind: faultinject.KindPanic, Count: 1,
	})
	defer faultinject.Reset()
	if status, _ := compile(t, ts, CompileRequest{Name: "panic.if", Lang: "if", Source: goodIF}); status != http.StatusInternalServerError {
		t.Fatalf("panic poison request: status %d, want 500", status)
	}
	if got := ref(); got != want {
		t.Errorf("listing diverged after a panicked session:\n got: %q\nwant: %q", got, want)
	}

	// The failing runs must be visible as discards (blocked put) or as
	// sessions never returned (panic); either way nothing poisoned sits
	// on the free list, and at least the blocked one counted.
	s.tmu.Lock()
	st := s.targets["amdahl470.cogg"].pool.stats()
	s.tmu.Unlock()
	if st.Discarded < 1 {
		t.Errorf("Discarded = %d, want >= 1 after a blocked translation", st.Discarded)
	}
}
