package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// goodIF is a minimal valid prefix-IF stream for the amdahl470 spec.
const goodIF = "assign fullword dsp.96 r.13 pos_constant v.7"

// badIF blocks the parse: the symbol is not declared in any spec.
const badIF = "assign fullword dsp.96 r.13 no_such_operator v.7"

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain at cleanup: %v", err)
		}
		s.Close()
	})
	return s, ts
}

// post sends one JSON request and decodes the JSON answer into out.
func post(t *testing.T, url string, req any, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad response body %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches url and decodes the JSON answer into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("bad response body %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// compile posts one /v1/compile request.
func compile(t *testing.T, ts *httptest.Server, req CompileRequest) (int, CompileResponse) {
	t.Helper()
	var resp CompileResponse
	status := post(t, ts.URL+"/v1/compile", req, &resp)
	return status, resp
}
