package server

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"cogg/internal/batch"
	"cogg/internal/faultinject"
)

func TestCompileIF(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, resp := compile(t, ts, CompileRequest{Name: "t.if", Lang: "if", Source: goodIF})
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 (failure: %+v)", status, resp.Failure)
	}
	if resp.Instructions == 0 || resp.Listing == "" || resp.CodeBytes == 0 {
		t.Fatalf("empty translation: %+v", resp)
	}
	if !strings.Contains(resp.Listing, "st") {
		t.Fatalf("listing has no store instruction:\n%s", resp.Listing)
	}
}

func TestCompilePascal(t *testing.T) {
	src, err := os.ReadFile("testdata/appendix1.pas")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{})
	status, resp := compile(t, ts, CompileRequest{
		Name: "appendix1.pas", Source: string(src), Deck: true, IF: true,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 (failure: %+v)", status, resp.Failure)
	}
	if resp.Tokens == 0 || resp.Reductions == 0 || resp.Instructions == 0 {
		t.Fatalf("empty compile stats: %+v", resp)
	}
	deck, err := base64.StdEncoding.DecodeString(resp.Deck)
	if err != nil {
		t.Fatalf("deck is not valid base64: %v", err)
	}
	if len(deck) == 0 || !strings.Contains(string(deck), "TXT") {
		t.Fatalf("deck missing or malformed: %q", deck[:min(len(deck), 80)])
	}
	if !strings.Contains(resp.IF, "assign") {
		t.Fatalf("IF view missing: %q", resp.IF[:min(len(resp.IF), 80)])
	}
}

// TestFailureStatusMapping drives one request per failure mode and
// checks the HTTP mapping: blocked -> 422 with BlockDiags, resource
// limit -> 413, panic -> 500, front-end rejection -> 400.
func TestFailureStatusMapping(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	t.Run("blocked is 422 with diagnostics", func(t *testing.T) {
		status, resp := compile(t, ts, CompileRequest{Name: "b.if", Lang: "if", Source: badIF})
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("status %d, want 422", status)
		}
		if resp.Failure == nil || resp.Failure.Mode != "blocked" {
			t.Fatalf("failure = %+v, want mode blocked", resp.Failure)
		}
		if len(resp.Failure.Blocks) == 0 {
			t.Fatal("no BlockDiags in a blocked failure")
		}
		d := resp.Failure.Blocks[0]
		if d.Lookahead == "" || d.Reason == "" {
			t.Fatalf("empty diagnostic: %+v", d)
		}
	})

	t.Run("front-end rejection is 400", func(t *testing.T) {
		status, resp := compile(t, ts, CompileRequest{Name: "bad.pas", Source: "program p; begin x := end."})
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", status)
		}
		if resp.Failure == nil || resp.Failure.Mode != "other" {
			t.Fatalf("failure = %+v, want mode other", resp.Failure)
		}
	})

	t.Run("panic-isolated unit is 500 with failure class", func(t *testing.T) {
		faultinject.Set(faultinject.Rule{
			Site: "codegen/reduce", Key: "boom.if", Kind: faultinject.KindPanic, Count: 1,
		})
		defer faultinject.Reset()
		status, resp := compile(t, ts, CompileRequest{Name: "boom.if", Lang: "if", Source: goodIF})
		if status != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500", status)
		}
		if resp.Failure == nil || resp.Failure.Mode != "panic" {
			t.Fatalf("failure = %+v, want mode panic", resp.Failure)
		}
		// The daemon survived: the next request succeeds.
		if status, resp := compile(t, ts, CompileRequest{Name: "after.if", Lang: "if", Source: goodIF}); status != http.StatusOK {
			t.Fatalf("request after panic: status %d (%+v)", status, resp.Failure)
		}
	})

	t.Run("resource limit is 413", func(t *testing.T) {
		// A daemon with a tiny parse-stack bound turns any real
		// translation into a ResourceError.
		_, tsTight := newTestServer(t, Options{MaxStackDepth: 3})
		status, resp := compile(t, tsTight, CompileRequest{Name: "deep.if", Lang: "if", Source: goodIF})
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413 (failure: %+v)", status, resp.Failure)
		}
		if resp.Failure == nil || resp.Failure.Mode != "resource-limit" {
			t.Fatalf("failure = %+v, want mode resource-limit", resp.Failure)
		}
	})
}

func TestStatusFor(t *testing.T) {
	cases := map[string]int{
		"none": 200, "blocked": 422, "timeout": 504,
		"resource-limit": 413, "panic": 500, "io": 500, "other": 400,
	}
	for mode := 0; mode < 7; mode++ {
		m := batch.FailureMode(mode)
		want, ok := cases[m.String()]
		if !ok {
			t.Fatalf("unmapped mode %v", m)
		}
		if got := StatusFor(m); got != want {
			t.Errorf("StatusFor(%v) = %d, want %d", m, got, want)
		}
	}
}

func TestUnknownSpecAndLang(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if status, _ := compile(t, ts, CompileRequest{Lang: "if", Source: goodIF, Spec: "../etc/passwd"}); status != http.StatusBadRequest {
		t.Fatalf("path-shaped spec: status %d, want 400", status)
	}
	if status, _ := compile(t, ts, CompileRequest{Lang: "fortran", Source: "x"}); status != http.StatusBadRequest {
		t.Fatalf("unknown lang: status %d, want 400", status)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := BatchRequest{Units: []CompileRequest{
		{Name: "a.if", Lang: "if", Source: goodIF},
		{Name: "b.if", Lang: "if", Source: badIF},
		{Name: "c.if", Lang: "if", Source: goodIF},
	}}
	var resp BatchResponse
	if status := post(t, ts.URL+"/v1/batch", req, &resp); status != http.StatusOK {
		t.Fatalf("batch status %d, want 200", status)
	}
	if len(resp.Results) != 3 || resp.Failed != 1 {
		t.Fatalf("results %d failed %d, want 3/1", len(resp.Results), resp.Failed)
	}
	if resp.Results[0].Name != "a.if" || resp.Results[2].Name != "c.if" {
		t.Fatal("batch results not in input order")
	}
	if resp.Results[1].Failure == nil || resp.Results[1].Failure.Mode != "blocked" {
		t.Fatalf("unit b failure = %+v, want blocked", resp.Results[1].Failure)
	}
	// Listings agree except the header line, which carries the unit name.
	body := func(l string) string {
		if _, rest, ok := strings.Cut(l, "\n"); ok {
			return rest
		}
		return l
	}
	if body(resp.Results[0].Listing) != body(resp.Results[2].Listing) {
		t.Fatal("identical units produced different listings")
	}
}

// TestQueueOverload: with the admission bound at 2 and two slow
// requests in flight, a third request is refused with 429 instead of
// queuing without bound.
func TestQueueOverload(t *testing.T) {
	faultinject.Set(faultinject.Rule{
		Site: "codegen/reduce", Key: "slow.if", Kind: faultinject.KindDelay, Delay: 150 * time.Millisecond,
	})
	defer faultinject.Reset()
	s, ts := newTestServer(t, Options{QueueBound: 2, Workers: 2})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, resp := compile(t, ts, CompileRequest{Name: "slow.if", Lang: "if", Source: goodIF})
			if status != http.StatusOK {
				t.Errorf("slow request: status %d (%+v)", status, resp.Failure)
			}
		}()
	}
	// Let both slow requests pass admission before the third arrives.
	deadline := time.Now().Add(2 * time.Second)
	for s.admitted.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	status, _ := compile(t, ts, CompileRequest{Name: "third.if", Lang: "if", Source: goodIF})
	if status != http.StatusTooManyRequests {
		t.Errorf("overload status %d, want 429", status)
	}
	wg.Wait()
	if got := s.stats.RejectedQueueFull.Load(); got < 1 {
		t.Errorf("RejectedQueueFull = %d, want >= 1", got)
	}
}

// TestConcurrentClients is the acceptance race check: 8 clients hammer
// one daemon with a mix of Pascal, raw IF, and blocked units; every
// response must be consistent, and the run is expected to be exercised
// under -race.
func TestConcurrentClients(t *testing.T) {
	sieve, err := os.ReadFile("testdata/sieve.pas")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{})

	const clients = 8
	const perClient = 12
	var wantListing string
	{
		status, resp := compile(t, ts, CompileRequest{Name: "w.if", Lang: "if", Source: goodIF})
		if status != 200 {
			t.Fatalf("priming request failed: %d", status)
		}
		wantListing = resp.Listing
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				switch i % 3 {
				case 0:
					status, resp := compile(t, ts, CompileRequest{Name: "w.if", Lang: "if", Source: goodIF})
					if status != 200 {
						t.Errorf("client %d: if status %d", c, status)
					} else if resp.Listing != wantListing {
						t.Errorf("client %d: listing diverged under concurrency", c)
					}
				case 1:
					status, _ := compile(t, ts, CompileRequest{
						Name: fmt.Sprintf("s%d-%d.pas", c, i), Source: string(sieve),
						Options: CompileOptions{CSE: true},
					})
					if status != 200 {
						t.Errorf("client %d: pascal status %d", c, status)
					}
				default:
					status, _ := compile(t, ts, CompileRequest{Name: "bad.if", Lang: "if", Source: badIF})
					if status != http.StatusUnprocessableEntity {
						t.Errorf("client %d: blocked status %d", c, status)
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestHealthzAndVarz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d, want 200", resp.StatusCode)
	}

	if status, _ := compile(t, ts, CompileRequest{Name: "v.if", Lang: "if", Source: goodIF}); status != 200 {
		t.Fatalf("compile before varz: %d", status)
	}
	var v Varz
	if status := getJSON(t, ts.URL+"/varz", &v); status != http.StatusOK {
		t.Fatalf("varz %d, want 200", status)
	}
	if v.Server.Completed < 1 || v.Server.Accepted < 1 {
		t.Fatalf("varz server counters empty: %+v", v.Server)
	}
	if v.Batch.UnitsCompiled < 1 {
		t.Fatalf("varz batch counters empty: %+v", v.Batch)
	}
	if _, ok := v.Pools["amdahl470.cogg"]; !ok {
		t.Fatalf("varz pools missing default spec: %v", v.Pools)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
