package rt370_test

import (
	"testing"

	"cogg/internal/rt370"
	"cogg/internal/s370/sim"
)

func TestConstAreaValues(t *testing.T) {
	c, err := rt370.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Word(rt370.PrOrigin + rt370.OffOneLoc); v != 1 {
		t.Errorf("one_loc = %d", v)
	}
	if v, _ := c.Word(rt370.PrOrigin + rt370.OffMinusOneLoc); v != -1 {
		t.Errorf("minus_one_loc = %d", v)
	}
	if v, _ := c.Word(rt370.PrOrigin + rt370.OffSevenLoc); v != 7 {
		t.Errorf("seven_loc = %d", v)
	}
	for i := 0; i < 8; i++ {
		if v, _ := c.Word(uint32(rt370.PrOrigin + rt370.OffBitmasks + 4*i)); v != int32(0x80>>i) {
			t.Errorf("bitmask[%d] = %#x", i, v)
		}
	}
}

// callStub branches into a stub with r14 pointing back to the halt
// address wrapper and returns the CPU after it finishes.
func callStub(t *testing.T, off int, cc uint8) *sim.CPU {
	t.Helper()
	c, err := rt370.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	// Code at the origin: BAL r14, stub(r12); BCR 15,r14(halt-loaded).
	code := []byte{
		0x45, 0xE0, 0xC0 | byte(off>>8), byte(off), // bal r14,off(r12)
		0x58, 0xE0, 0xC0 | byte(rt370.OffHaltVec>>8), byte(rt370.OffHaltVec), // l r14,haltvec
		0x07, 0xFE, // bcr 15,r14
	}
	if err := c.Load(rt370.CodeOrigin, code); err != nil {
		t.Fatal(err)
	}
	c.CC = cc
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCheckStubPasses(t *testing.T) {
	// CC=2 (high) passes the underflow check (it aborts on CC=1).
	c := callStub(t, rt370.OffUnderflow, 2)
	if rt370.AbortFlag(c) != 0 {
		t.Errorf("abort flag = %d after a passing check", rt370.AbortFlag(c))
	}
}

func TestCheckStubAborts(t *testing.T) {
	cases := []struct {
		off  int
		cc   uint8
		flag byte
	}{
		{rt370.OffUnderflow, 1, rt370.AbortUnderflow},
		{rt370.OffOverflow, 2, rt370.AbortOverflow},
		{rt370.OffNotInit, 0, rt370.AbortNotInit},
	}
	for _, tc := range cases {
		c := callStub(t, tc.off, tc.cc)
		if rt370.AbortFlag(c) != tc.flag {
			t.Errorf("stub %#x cc=%d: flag %d, want %d", tc.off, tc.cc, rt370.AbortFlag(c), tc.flag)
		}
		if !c.Halted {
			t.Error("abort did not halt")
		}
	}
}

// TestEntryStub: the frame-switch stub advances r13 and chains the old
// frame.
func TestEntryStub(t *testing.T) {
	c, err := rt370.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	code := []byte{
		0x45, 0xE0, 0xC0, byte(rt370.OffEntryCode), // bal r14,entry_code(r12)
		0x58, 0xE0, 0xC0, byte(rt370.OffHaltVec), // l r14,haltvec
		0x07, 0xFE,
	}
	if err := c.Load(rt370.CodeOrigin, code); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.R[13] != rt370.DataOrigin+rt370.FrameSize {
		t.Errorf("r13 = %#x, want %#x", c.R[13], rt370.DataOrigin+rt370.FrameSize)
	}
	chained, _ := c.Word(uint32(rt370.DataOrigin + rt370.FrameSize + rt370.OffOldBase))
	if chained != rt370.DataOrigin {
		t.Errorf("chained old base = %#x", chained)
	}
}

func TestRegisterConventions(t *testing.T) {
	c, err := rt370.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	if c.R[rt370.RegCodeBase] != rt370.CodeOrigin ||
		c.R[rt370.RegPoolBase] != rt370.PrOrigin ||
		c.R[rt370.RegStackBase] != rt370.DataOrigin {
		t.Error("base registers not established")
	}
	if c.R[14] != c.HaltAddr || c.PC != rt370.CodeOrigin {
		t.Error("entry conventions wrong")
	}
}

func TestClassesShape(t *testing.T) {
	var haveR, haveDbl, haveCC bool
	for _, cl := range rt370.Classes() {
		switch cl.Name {
		case "r":
			haveR = true
			for _, n := range cl.Regs {
				if n == rt370.RegCodeBase || n == rt370.RegPoolBase || n == rt370.RegStackBase {
					t.Errorf("base register r%d is allocatable", n)
				}
			}
		case "dbl":
			haveDbl = cl.Pair && cl.Under == "r"
		case "cc":
			haveCC = cl.Flag
		}
	}
	if !haveR || !haveDbl || !haveCC {
		t.Error("class configuration incomplete")
	}
}
