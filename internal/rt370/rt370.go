// Package rt370 fixes the run-time conventions shared by the S/370 code
// generator specification, the shaper, and the simulator: register
// assignments, the storage map, and the contents of the runtime constant
// area (the "pr" area) including the small utility stubs the templates
// call for stack frames and run-time checks.
package rt370

import (
	"fmt"

	"cogg/internal/codegen"
	"cogg/internal/cse"
	"cogg/internal/ir"
	"cogg/internal/regalloc"
	"cogg/internal/s370"
	"cogg/internal/s370/sim"
)

// Register conventions. r14/r15 remain the linkage pair (taken with
// `need` around calls), r13 addresses the data area, r12 the constant
// area, and r11 — rather than r15, which calls clobber — holds the code
// origin for short branches.
const (
	RegGlobalBase = 10 // main's frame, a fixed address (globals)
	RegCodeBase   = 11
	RegPoolBase   = 12 // "pr_base" in the specification
	RegStackBase  = 13
)

// Storage map. The pr area (one 4096-byte page addressed by r12) is
// partitioned: fixed constants and stubs, the procedure transfer vector,
// the branch-target literal pool, and the shaper's literal storage. The
// partitions must not overlap — the pool holds case-table and long-
// branch addresses while the shaper interns programs' large constants.
const (
	CodeOrigin = 0x1000 // module text
	PrOrigin   = 0x8000 // runtime constant area (value of pr_base)
	PoolOrigin = 0x8300 // branch/case literal pool (offsets 0x300..0xBFF)
	PoolCap    = (LitOffset - 0x300) / 4
	LitOffset  = 0xC00   // shaper literals (offsets 0xC00..0xFFF)
	DataOrigin = 0x10000 // data/stack area (value of stack_base)
	MemSize    = 0x40000
)

// Offsets within the pr area, matched by the $Constants section of the
// S/370 specification.
const (
	OffOneLoc      = 0    // fullword 1
	OffMinusOneLoc = 4    // fullword -1
	OffSevenLoc    = 8    // fullword 7 (mod-8 mask for set operations)
	OffBitmasks    = 16   // 8 fullwords: 0x80 >> i
	OffWriteStub   = 0x30 // writeln runtime: append the argument to the output area
	OffOutPtr      = 0x48 // fullword: next free slot of the output area
	OffEntryCode   = 0x80 // stack frame stub
	OffUnderflow   = 0xA0 // range check: abort when CC says low
	OffOverflow    = 0xC0 // range check: abort when CC says high
	OffNotInit     = 0xE0 // uninitialized check: abort when CC says equal
	OffHaltVec     = 0xF8 // fullword: the simulator halt address
	OffAbortFlag   = 0xFC // byte set to the abort class by the stubs
)

// Output area: writeln appends fullwords here.
const (
	OutBase = 0x30000
	OutCap  = (MemSize - OutBase) / 4
)

// WriteVectorSlot is the transfer-vector slot reserved for the writeln
// runtime stub; the shaper routes write statements through it like any
// other procedure call.
const WriteVectorSlot = ProcVectorCap - 1

// Frame layout. Every procedure activation owns a fixed-size frame:
// the entry_code stub switches r13 to the next frame and chains the old
// one, so calls and recursion follow a stack discipline. The caller can
// address its callee's frame at r13+FrameSize, which is how parameters
// and function results transfer.
const (
	FrameSize   = 2048
	OffSaveArea = 0  // 60-byte register save area (STM r14,r12)
	OffOldBase  = 64 // dynamic chain: the caller's frame base
	VarOrigin   = 96 // first shaper-allocated variable in a frame
	// MainFrame is the frame base of the main program: the simulator
	// starts with r13 = DataOrigin and main's procedure_entry switches
	// to the next frame.
	MainFrame = DataOrigin + FrameSize
)

// OffProcVector is the start of the procedure transfer vector in the pr
// area: one fullword per procedure holding its entry address, read by
// the procedure_call template (l r15,dsp(pr_base)).
const (
	OffProcVector = 0x100
	ProcVectorCap = (PoolOrigin - PrOrigin - OffProcVector) / 4 // 128 procedures
)

// Abort flag values stored by the check stubs.
const (
	AbortUnderflow = 1
	AbortOverflow  = 2
	AbortNotInit   = 3
)

// Classes returns the register classes of the generated code generator:
// nine general registers, even/odd pairs among them, the floating
// registers, and the condition code.
func Classes() []regalloc.Class {
	return []regalloc.Class{
		{Name: "r", Regs: []int{1, 2, 3, 4, 5, 6, 7, 8, 9}, Extra: []int{14, 15}},
		{Name: "dbl", Pair: true, Under: "r", Regs: []int{2, 4, 6, 8}},
		{Name: "f", Regs: []int{0, 2, 4, 6}},
		{Name: "cc", Flag: true},
	}
}

// Machine returns the configured S/370 target.
func Machine() *s370.Machine {
	m := s370.NewMachine(PrOrigin)
	m.CodeBase = RegCodeBase
	m.PoolBase = RegPoolBase
	return m
}

// Config returns the code generator configuration for the S/370 runtime.
func Config() codegen.Config {
	return codegen.Config{
		Machine: Machine(),
		Classes: Classes(),
		MoveOp:  map[string]string{"r": "lr", "f": "ldr"},
		SaveOp: map[cse.Width]string{
			cse.Full: "st", cse.Half: "sth", cse.Byte: "stc",
			cse.Real: "ste", cse.DReal: "std",
		},
		LoadOddOps: map[string]string{
			"load_odd_addr": "la", "load_odd_full": "l",
			"load_odd_half": "lh", "load_odd_reg": "lr",
		},
		FindCommonType: map[cse.Width]string{
			cse.Full: ir.OpFullword, cse.Half: ir.OpHalfword,
			cse.Byte: ir.OpByteword, cse.Real: ir.OpRealword,
			cse.DReal: ir.OpDblreal,
		},
		Origin:     CodeOrigin,
		PoolOrigin: PoolOrigin,
	}
}

// ConstArea builds the pr area image: the named constants, the bitmask
// table for set operations, and the utility stubs, written in assembly
// text and assembled by package s370. A stub that fails to assemble is
// a returned error, not a panic — the runtime image is built on every
// NewCPU, and one bad stub must not take a whole batch process down.
func ConstArea(haltAddr uint32) ([]byte, error) {
	area := make([]byte, 0x100)
	putWord := func(off int, v int32) {
		u := uint32(v)
		area[off], area[off+1], area[off+2], area[off+3] =
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u)
	}
	putWord(OffOneLoc, 1)
	putWord(OffMinusOneLoc, -1)
	putWord(OffSevenLoc, 7)
	for i := 0; i < 8; i++ {
		putWord(OffBitmasks+4*i, int32(0x80>>i))
	}
	putWord(OffHaltVec, int32(haltAddr))
	putWord(OffOutPtr, OutBase)

	var stubErr error
	mustPut := func(off int, text string) {
		if stubErr != nil {
			return
		}
		code, err := s370.AssembleTo(text)
		if err != nil {
			stubErr = fmt.Errorf("rt370: stub assembly: %w", err)
			return
		}
		copy(area[off:], code)
	}

	// writeln stub: the caller stored the argument in the first slot of
	// its callee frame (the ordinary parameter protocol) and came here
	// through BALR. The stub borrows only r0 and the dead r15.
	mustPut(OffWriteStub, fmt.Sprintf(`
  l   r0,%d(r13)    ; the argument, in the callee-frame slot
  l   r15,%d(r12)   ; output cursor
  st  r0,0(r15)
  la  r15,4(r15)
  st  r15,%d(r12)
  bcr 15,r14
`, FrameSize+VarOrigin, OffOutPtr, OffOutPtr))

	// entry_code: build the new stack frame. The caller's registers were
	// already saved by the STM of procedure_entry; here r13 advances to
	// the next fixed-size frame with the old base chained into it. r15
	// still holds the dead procedure entry address, so no register needs
	// to be borrowed.
	mustPut(OffEntryCode, fmt.Sprintf(`
  st  r13,%d(r13)   ; chain the old frame
  la  r13,%d(r13)   ; advance to the new frame
  bcr 15,r14
`, FrameSize+OffOldBase, FrameSize))

	// abort epilogue shared by the check stubs: each stub stores its
	// class in the abort flag before branching here. Each stub occupies
	// 14 bytes, so the epilogue sits past the last one.
	const abort = OffNotInit + 16
	mustPut(abort, fmt.Sprintf(`
  l   r14,%d(r12)   ; the halt address
  bcr 15,r14
`, OffHaltVec))

	// Each check stub: branch to its failing path when the condition
	// code selects the abort mask, otherwise return to the caller.
	stub := func(off, mask int, flag byte) {
		mustPut(off, fmt.Sprintf(`
  bc  %d,%d(r12)    ; condition selected: fail
  bcr 15,r14        ; check passed
  mvi %d(r12),%d    ; record the abort class
  bc  15,%d(r12)
`, mask, off+6, OffAbortFlag, flag, abort))
	}
	stub(OffUnderflow, 4, AbortUnderflow) // CC low after `c value,lower`
	stub(OffOverflow, 2, AbortOverflow)   // CC high after `c value,upper`
	stub(OffNotInit, 8, AbortNotInit)     // CC equal after compare with the uninitialized pattern
	if stubErr != nil {
		return nil, stubErr
	}
	return area, nil
}

// NewCPU prepares a simulator with the runtime loaded: base registers
// established, the constant area in place, and r14 holding the halt
// address so that `bcr 15,r14` returns to the host.
func NewCPU() (*sim.CPU, error) {
	c := sim.New(MemSize)
	area, err := ConstArea(c.HaltAddr)
	if err != nil {
		return nil, err
	}
	if err := c.Load(PrOrigin, area); err != nil {
		return nil, err
	}
	c.R[RegGlobalBase] = MainFrame
	c.R[RegCodeBase] = CodeOrigin
	c.R[RegPoolBase] = PrOrigin
	c.R[RegStackBase] = DataOrigin
	c.R[14] = c.HaltAddr
	c.R[15] = CodeOrigin
	c.PC = CodeOrigin
	return c, nil
}

// AbortFlag reads the abort class recorded by the check stubs; zero means
// no check failed.
func AbortFlag(c *sim.CPU) byte { return c.Mem[PrOrigin+OffAbortFlag] }

// Output reads the fullwords the writeln stub appended to the output
// area during a run.
func Output(c *sim.CPU) []int32 {
	end, err := c.Word(PrOrigin + OffOutPtr)
	if err != nil || end < OutBase {
		return nil
	}
	n := (int(end) - OutBase) / 4
	if n > OutCap {
		n = OutCap
	}
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		v, err := c.Word(uint32(OutBase + 4*i))
		if err != nil {
			break
		}
		out = append(out, v)
	}
	return out
}
