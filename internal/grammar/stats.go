package grammar

// Stats are the grammar-level rows of the paper's Table 1. The parse
// table rows (states, entries, significant entries) are reported by the
// table constructor in package tables.
type Stats struct {
	SymbolsDeclared    int // (i)   all identifiers used in constructing the tables
	ParseSymbols       int // (ii)  X dimension: symbols which can be encountered in the IF
	Productions        int // (vi)
	Templates          int // (vii)
	ProductionOps      int // (viii) operators which can be encountered in the IF
	SemanticOps        int // (ix)   operators producing semantic intervention
	Opcodes            int //        target mnemonics declared
	NonterminalClasses int //        register classes (excluding lambda)
}

// ComputeStats derives the grammar statistics.
func (g *Grammar) ComputeStats() Stats {
	var s Stats
	s.SymbolsDeclared = len(g.Syms) - 1 // lambda is predeclared, not user supplied

	// Symbols encounterable in the IF during a parse: every operator or
	// terminal appearing in a right side, plus every nonterminal that can
	// be prefixed back onto the input (any non-lambda LHS), plus the end
	// marker.
	seen := map[int]bool{}
	usedSemantic := map[int]bool{}
	for _, p := range g.Prods {
		if p.LHS != g.Lambda {
			seen[p.LHS] = true
		}
		for _, sym := range p.RHS {
			seen[sym] = true
		}
		for _, t := range p.Templates {
			if t.Semantic {
				usedSemantic[t.Op] = true
			}
		}
	}
	s.ParseSymbols = len(seen) + 1 // + end marker

	s.Productions = len(g.Prods)
	for _, p := range g.Prods {
		s.Templates += len(p.Templates)
	}
	for _, sym := range g.Syms {
		switch sym.Kind {
		case Operator:
			s.ProductionOps++
		case Semantic:
			s.SemanticOps++
		case Opcode:
			s.Opcodes++
		case Nonterminal:
			if sym.ID != g.Lambda {
				s.NonterminalClasses++
			}
		}
	}
	return s
}
