package grammar

import (
	"fmt"

	"cogg/internal/spec"
)

// Names of the register-management semantic operators, which receive
// special treatment during resolution: `using` and `need` *introduce*
// register bindings that later templates (and the LHS) may reference.
const (
	semUsing = "using"
	semNeed  = "need"
)

// Resolve builds the typed grammar from a parsed specification,
// performing the class checks described in section 2 of the paper.
func Resolve(f *spec.File) (*Grammar, error) {
	g := &Grammar{Name: f.Name, byName: make(map[string]int)}

	// lambda is predeclared: the empty left side of statement productions.
	g.Lambda = g.intern("lambda", Nonterminal, 0, "empty left side")

	enter := func(decls []spec.Decl, kind Kind) error {
		for _, d := range decls {
			if _, dup := g.byName[d.Name]; dup {
				return errAt(f, d.Line, "symbol %q already declared", d.Name)
			}
			k := kind
			if kind == Constant && !d.HasValue {
				k = Semantic
			}
			g.intern(d.Name, k, d.Value, d.Alias)
		}
		return nil
	}
	if err := enter(f.Nonterminals, Nonterminal); err != nil {
		return nil, err
	}
	if err := enter(f.Terminals, Terminal); err != nil {
		return nil, err
	}
	if err := enter(f.Operators, Operator); err != nil {
		return nil, err
	}
	if err := enter(f.Opcodes, Opcode); err != nil {
		return nil, err
	}
	if err := enter(f.Constants, Constant); err != nil {
		return nil, err
	}

	for i := range f.Productions {
		p, err := g.resolveProd(f, &f.Productions[i])
		if err != nil {
			return nil, err
		}
		g.Prods = append(g.Prods, p)
	}
	return g, nil
}

func (g *Grammar) intern(name string, kind Kind, value int64, alias string) int {
	id := len(g.Syms)
	g.Syms = append(g.Syms, Symbol{ID: id, Name: name, Kind: kind, Value: value, Alias: alias})
	g.byName[name] = id
	return id
}

func (g *Grammar) resolveProd(f *spec.File, sp *spec.Production) (*Prod, error) {
	p := &Prod{Num: sp.Num, Line: sp.Line}

	// Left side: lambda or a tagged nonterminal.
	lhsID, ok := g.byName[sp.LHS.Name]
	if !ok {
		return nil, errAt(f, sp.Line, "undeclared left side %q", sp.LHS.Name)
	}
	if g.Syms[lhsID].Kind != Nonterminal {
		return nil, errAt(f, sp.Line, "left side %q is a %s; productions derive nonterminals",
			sp.LHS.Name, g.Syms[lhsID].Kind)
	}
	p.LHS = lhsID
	p.LHSTag = -1
	if lhsID != g.Lambda {
		if !sp.LHS.HasTag {
			return nil, errAt(f, sp.Line, "nonterminal left side %q requires a tag (e.g. %s.1)",
				sp.LHS.Name, sp.LHS.Name)
		}
		p.LHSTag = sp.LHS.Tag
	} else if sp.LHS.HasTag {
		return nil, errAt(f, sp.Line, "lambda left side cannot carry a tag")
	}

	// Right side: operators (untagged), terminals and nonterminals (tagged).
	// bound records the tagged occurrences available to template operands.
	bound := map[Ref]bool{}
	for _, r := range sp.RHS {
		id, ok := g.byName[r.Name]
		if !ok {
			return nil, errAt(f, sp.Line, "undeclared symbol %q in production %d", r.Name, sp.Num)
		}
		switch g.Syms[id].Kind {
		case Operator:
			if r.HasTag {
				return nil, errAt(f, sp.Line, "operator %q cannot carry a tag", r.Name)
			}
			p.RHS = append(p.RHS, id)
			p.RHSTags = append(p.RHSTags, -1)
		case Terminal, Nonterminal:
			if id == g.Lambda {
				return nil, errAt(f, sp.Line, "lambda cannot appear on a right side")
			}
			if !r.HasTag {
				return nil, errAt(f, sp.Line, "%s %q on a right side requires a tag",
					g.Syms[id].Kind, r.Name)
			}
			ref := Ref{Sym: id, Tag: r.Tag}
			if bound[ref] {
				return nil, errAt(f, sp.Line, "duplicate occurrence %s.%d in production %d",
					r.Name, r.Tag, sp.Num)
			}
			bound[ref] = true
			p.RHS = append(p.RHS, id)
			p.RHSTags = append(p.RHSTags, r.Tag)
		default:
			return nil, errAt(f, sp.Line, "%s %q cannot appear in a production right side",
				g.Syms[id].Kind, r.Name)
		}
	}

	// First pass over templates: `using` and `need` introduce register
	// bindings. All registers for the production are allocated at once
	// before any template is acted upon (paper section 4.1), so bindings
	// are visible to every template regardless of order.
	for _, t := range sp.Templates {
		opID, ok := g.byName[t.Op]
		if !ok {
			continue // reported in the second pass
		}
		name := g.Syms[opID].Name
		if name != semUsing && name != semNeed {
			continue
		}
		for _, o := range t.Operands {
			if len(o.Sub) != 0 || o.Base.Kind != spec.AtomRef {
				return nil, errAt(f, t.Line, "%s operands must be tagged register references", name)
			}
			id, ok := g.byName[o.Base.Name]
			if !ok || g.Syms[id].Kind != Nonterminal || id == g.Lambda {
				return nil, errAt(f, t.Line, "%s operand %q is not a register class", name, o.Base.Name)
			}
			ref := Ref{Sym: id, Tag: o.Base.Tag}
			if bound[ref] {
				return nil, errAt(f, t.Line, "%s re-binds %s.%d, already bound in production %d",
					name, o.Base.Name, o.Base.Tag, sp.Num)
			}
			bound[ref] = true
			if name == semUsing {
				p.Uses = append(p.Uses, ref)
			} else {
				p.Needs = append(p.Needs, ref)
			}
		}
	}

	// The LHS reference must be bound: it repeats an RHS occurrence
	// (r.1 ::= iadd r.1 r.2), a template allocates it (using r.2), or —
	// for class-conversion productions like the paper's "r.l ::= d.l" —
	// a right-side nonterminal of another class carries the same tag
	// and its value transfers.
	if p.LHS != g.Lambda && !bound[Ref{Sym: p.LHS, Tag: p.LHSTag}] {
		converted := false
		for ref := range bound {
			if ref.Tag == p.LHSTag && g.Syms[ref.Sym].Kind == Nonterminal {
				converted = true
			}
		}
		if !converted {
			return nil, errAt(f, sp.Line,
				"left side %s.%d of production %d is bound neither by the right side nor by using/need",
				sp.LHS.Name, p.LHSTag, sp.Num)
		}
	}

	// Second pass: resolve every template.
	emitted := 0
	for _, t := range sp.Templates {
		rt, err := g.resolveTemplate(f, sp, &t, bound)
		if err != nil {
			return nil, err
		}
		if !rt.Semantic {
			emitted++
		}
		p.Templates = append(p.Templates, rt)
	}
	if emitted > spec.MaxInstructions {
		return nil, errAt(f, sp.Line,
			"production %d emits %d machine instructions; at most %d may be emitted per reduction",
			sp.Num, emitted, spec.MaxInstructions)
	}
	return p, nil
}

func (g *Grammar) resolveTemplate(f *spec.File, sp *spec.Production, t *spec.Template, bound map[Ref]bool) (Template, error) {
	opID, ok := g.byName[t.Op]
	if !ok {
		return Template{}, errAt(f, t.Line, "undeclared template opcode %q", t.Op)
	}
	rt := Template{Op: opID, Line: t.Line}
	switch g.Syms[opID].Kind {
	case Opcode:
	case Semantic:
		rt.Semantic = true
	default:
		return Template{}, errAt(f, t.Line,
			"template opcode %q is a %s; it must be a target opcode or a semantic operator",
			t.Op, g.Syms[opID].Kind)
	}
	for _, o := range t.Operands {
		ro, err := g.resolveOperand(f, sp, t, o, bound)
		if err != nil {
			return Template{}, err
		}
		rt.Operands = append(rt.Operands, ro)
	}
	return rt, nil
}

func (g *Grammar) resolveOperand(f *spec.File, sp *spec.Production, t *spec.Template, o spec.Operand, bound map[Ref]bool) (Operand, error) {
	var ro Operand
	var err error
	isNeed := g.Syms[g.byName[t.Op]].Name == semNeed
	ro.Base, err = g.resolveArg(f, sp, t, o.Base, bound, isNeed)
	if err != nil {
		return ro, err
	}
	for _, a := range o.Sub {
		ra, err := g.resolveArg(f, sp, t, a, bound, false)
		if err != nil {
			return ro, err
		}
		ro.Sub = append(ro.Sub, ra)
	}
	return ro, nil
}

func (g *Grammar) resolveArg(f *spec.File, sp *spec.Production, t *spec.Template, a spec.Atom, bound map[Ref]bool, introduces bool) (Arg, error) {
	switch a.Kind {
	case spec.AtomNum:
		return Arg{Num: a.Num}, nil
	case spec.AtomName:
		id, ok := g.byName[a.Name]
		if !ok {
			return Arg{}, errAt(f, t.Line, "undeclared operand %q", a.Name)
		}
		if g.Syms[id].Kind != Constant {
			return Arg{}, errAt(f, t.Line,
				"operand %q is a %s; untagged operands must be numeric constants",
				a.Name, g.Syms[id].Kind)
		}
		return Arg{Sym: id, Num: g.Syms[id].Value}, nil
	default: // spec.AtomRef
		id, ok := g.byName[a.Name]
		if !ok {
			return Arg{}, errAt(f, t.Line, "undeclared operand %q", a.Name)
		}
		k := g.Syms[id].Kind
		if k != Terminal && k != Nonterminal || id == g.Lambda {
			return Arg{}, errAt(f, t.Line,
				"tagged operand %s.%d must reference a terminal or register class, not a %s",
				a.Name, a.Tag, k)
		}
		ref := Ref{Sym: id, Tag: a.Tag}
		if !bound[ref] && !introduces {
			return Arg{}, errAt(f, t.Line,
				"operand %s.%d is not bound in production %d (not on the right side, the left side, or allocated by using/need)",
				a.Name, a.Tag, sp.Num)
		}
		return Arg{IsRef: true, Sym: id, Tag: a.Tag}, nil
	}
}

func errAt(f *spec.File, line int, format string, args ...any) error {
	return &spec.Error{File: f.Name, Line: line, Msg: fmt.Sprintf(format, args...)}
}
