// Package grammar resolves a parsed CoGG specification into a typed
// grammar: every identifier is entered into a symbol table recording its
// class, and every use in a production or template is checked against
// that class ("such type checking is of utmost importance when processing
// the description of a realistic code generator", paper section 2).
package grammar

import "fmt"

// Kind classifies a declared symbol by its declaration subsection.
type Kind int

const (
	// Nonterminal symbols correspond to the register classes managed by
	// the register allocation routine (r, dbl, cc, ...), plus lambda.
	Nonterminal Kind = iota
	// Terminal symbols carry values set by the shaper (dsp, cnt, lbl, ...).
	Terminal
	// Operator symbols appear only in productions (iadd, fullword, ...).
	Operator
	// Opcode symbols are target machine mnemonics (l, a, st, ...).
	Opcode
	// Semantic symbols are constants without a numeric value: the
	// semantic operators interpreted by the code emission routine.
	Semantic
	// Constant symbols carry a numeric value (zero = 0, stack_base = 13).
	Constant
)

func (k Kind) String() string {
	switch k {
	case Nonterminal:
		return "nonterminal"
	case Terminal:
		return "terminal"
	case Operator:
		return "operator"
	case Opcode:
		return "opcode"
	case Semantic:
		return "semantic operator"
	case Constant:
		return "constant"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Symbol is one symbol-table entry.
type Symbol struct {
	ID    int
	Name  string
	Kind  Kind
	Value int64 // for Constant
	Alias string
}

// Arg is one resolved template operand atom.
type Arg struct {
	IsRef bool  // tagged symbol reference, bound at code generation time
	Sym   int   // symbol ID of the reference or constant
	Tag   int   // reference tag
	Num   int64 // resolved numeric value for constants and literals
}

// Operand is one resolved template operand: a base atom and up to two
// parenthesised atoms (index/base registers, or length/base for SS forms).
type Operand struct {
	Base Arg
	Sub  []Arg
}

// Template is one resolved translation template.
type Template struct {
	Op       int // symbol ID of an Opcode or Semantic symbol
	Semantic bool
	Operands []Operand
	Line     int
}

// Prod is one resolved production.
type Prod struct {
	Num     int // 1-based, in specification order (encodes preference)
	Line    int
	LHS     int   // symbol ID; Lambda for an empty left side
	LHSTag  int   // tag of the LHS reference (meaningless for lambda)
	RHS     []int // symbol IDs
	RHSTags []int // tag per RHS position; -1 for untagged operators

	Templates []Template

	// Uses and Needs are the registers requested by the production's
	// templates, computed once at table construction time so that the
	// code emission routine can allocate all of them up front.
	Uses  []Ref // `using`: any free register of the class
	Needs []Ref // `need`: a specific physical register of the class
}

// Ref identifies a tagged symbol occurrence within one production.
type Ref struct {
	Sym int
	Tag int
}

// Grammar is the resolved, type-checked specification.
type Grammar struct {
	Name   string
	Syms   []Symbol // indexed by symbol ID
	Prods  []*Prod
	Lambda int // symbol ID of the empty left side

	byName map[string]int
}

// AddSymbol appends a symbol with the next ID; it exists for
// deserialization of table modules and for building grammars in tests.
func (g *Grammar) AddSymbol(name string, kind Kind, value int64) int {
	if g.byName == nil {
		g.byName = make(map[string]int)
	}
	id := len(g.Syms)
	g.Syms = append(g.Syms, Symbol{ID: id, Name: name, Kind: kind, Value: value})
	g.byName[name] = id
	return id
}

// Lookup returns the symbol with the given name.
func (g *Grammar) Lookup(name string) (Symbol, bool) {
	id, ok := g.byName[name]
	if !ok {
		return Symbol{}, false
	}
	return g.Syms[id], true
}

// SymName returns the name of symbol id, or a placeholder for bad IDs.
func (g *Grammar) SymName(id int) string {
	if id < 0 || id >= len(g.Syms) {
		return fmt.Sprintf("sym#%d", id)
	}
	return g.Syms[id].Name
}

// KindOf returns the class of symbol id.
func (g *Grammar) KindOf(id int) Kind { return g.Syms[id].Kind }

// IsLambda reports whether id is the empty left side.
func (g *Grammar) IsLambda(id int) bool { return id == g.Lambda }

// ProdString renders production p in specification notation.
func (g *Grammar) ProdString(p *Prod) string {
	s := g.refString(p.LHS, p.LHSTag) + " ::="
	for i, sym := range p.RHS {
		s += " " + g.refString(sym, p.RHSTags[i])
	}
	return s
}

func (g *Grammar) refString(sym, tag int) string {
	if tag < 0 || g.IsLambda(sym) || g.Syms[sym].Kind == Operator {
		return g.SymName(sym)
	}
	return fmt.Sprintf("%s.%d", g.SymName(sym), tag)
}
