package grammar_test

import (
	"strings"
	"testing"

	"cogg/internal/grammar"
	"cogg/internal/spec"
)

const okSpec = `
$Non-terminals
 r = register
 dbl = pair
 cc = condition
$Terminals
 dsp = displacement
 lng = length
 cond = mask
 lbl = label
$Operators
 fullword, iadd, imult, assign, icompare, branch_op
$Opcodes
 l, a, st, mr, cr
$Constants
 using, need, modifies, push_odd, ignore_lhs, branch, load_odd_reg
 zero = 0, unconditional = 15
$Productions
r.2 ::= fullword dsp.1 r.1
 using r.2
 l r.2,dsp.1(zero,r.1)

r.2 ::= iadd r.2 fullword dsp.1 r.1
 modifies r.2
 a r.2,dsp.1(zero,r.1)

r.1 ::= imult r.1 r.2
 using dbl.1
 load_odd_reg dbl.1,r.1
 mr dbl.1,r.2
 push_odd dbl.1
 ignore_lhs

lambda ::= assign fullword dsp.1 r.1 r.2
 st r.2,dsp.1(zero,r.1)

cc.1 ::= icompare r.1 r.2
 using cc.1
 cr r.1,r.2

lambda ::= branch_op lbl.1 cond.1 cc.1
 using r.3
 branch cond.1,lbl.1,r.3
`

func resolve(t *testing.T, src string) *grammar.Grammar {
	t.Helper()
	f, err := spec.Parse("g.cogg", src)
	if err != nil {
		t.Fatalf("spec.Parse: %v", err)
	}
	g, err := grammar.Resolve(f)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return g
}

func TestResolveKinds(t *testing.T) {
	g := resolve(t, okSpec)
	cases := map[string]grammar.Kind{
		"r": grammar.Nonterminal, "dsp": grammar.Terminal,
		"iadd": grammar.Operator, "st": grammar.Opcode,
		"using": grammar.Semantic, "zero": grammar.Constant,
		"lambda": grammar.Nonterminal,
	}
	for name, kind := range cases {
		s, ok := g.Lookup(name)
		if !ok {
			t.Errorf("symbol %q missing", name)
			continue
		}
		if s.Kind != kind {
			t.Errorf("%q kind = %v, want %v", name, s.Kind, kind)
		}
	}
	if s, _ := g.Lookup("unconditional"); s.Value != 15 {
		t.Errorf("unconditional value = %d", s.Value)
	}
}

func TestUsesAndNeeds(t *testing.T) {
	g := resolve(t, okSpec)
	// Production 3 (imult) uses dbl.1.
	p := g.Prods[2]
	if len(p.Uses) != 1 || g.SymName(p.Uses[0].Sym) != "dbl" || p.Uses[0].Tag != 1 {
		t.Errorf("imult uses = %+v", p.Uses)
	}
	// Load production uses r.2 (its LHS).
	p0 := g.Prods[0]
	if len(p0.Uses) != 1 || p0.Uses[0].Tag != 2 {
		t.Errorf("load uses = %+v", p0.Uses)
	}
}

func TestProdString(t *testing.T) {
	g := resolve(t, okSpec)
	got := g.ProdString(g.Prods[1])
	want := "r.2 ::= iadd r.2 fullword dsp.1 r.1"
	if got != want {
		t.Errorf("ProdString = %q, want %q", got, want)
	}
	if !strings.HasPrefix(g.ProdString(g.Prods[3]), "lambda ::=") {
		t.Errorf("lambda ProdString = %q", g.ProdString(g.Prods[3]))
	}
}

func TestStats(t *testing.T) {
	g := resolve(t, okSpec)
	s := g.ComputeStats()
	if s.Productions != 6 {
		t.Errorf("productions = %d", s.Productions)
	}
	if s.Templates != 14 {
		t.Errorf("templates = %d", s.Templates)
	}
	if s.ProductionOps != 6 {
		t.Errorf("production operators = %d", s.ProductionOps)
	}
	if s.SemanticOps != 7 {
		t.Errorf("semantic operators = %d", s.SemanticOps)
	}
	// Parse symbols: operators (6) + terminals used (dsp, lng declared
	// but lng unused -> only used ones count... dsp, cond, lbl) +
	// nonterminals on left sides (r, cc) + end marker.
	if s.ParseSymbols < 10 {
		t.Errorf("parse symbols = %d", s.ParseSymbols)
	}
	if s.SymbolsDeclared != 27 {
		t.Errorf("symbols declared = %d", s.SymbolsDeclared)
	}
}

// resolveErr builds a grammar expecting failure.
func resolveErr(t *testing.T, name, src string) {
	t.Helper()
	f, err := spec.Parse("g.cogg", src)
	if err != nil {
		t.Fatalf("%s: spec.Parse failed early: %v", name, err)
	}
	if _, err := grammar.Resolve(f); err == nil {
		t.Errorf("%s: Resolve succeeded, want a type error", name)
	}
}

const declHeader = `
$Non-terminals
 r = register
$Terminals
 dsp = displacement
$Operators
 fullword, iadd
$Opcodes
 l, a
$Constants
 using, modifies
 zero = 0
$Productions
`

func TestTypeErrors(t *testing.T) {
	cases := map[string]string{
		"opcode on right side": declHeader + `
r.1 ::= iadd r.1 l
 a r.1,zero(zero,r.1)
`,
		"terminal left side": declHeader + `
dsp.1 ::= fullword dsp.1 r.1
 l r.1,dsp.1(zero,r.1)
`,
		"untagged nonterminal": declHeader + `
r ::= fullword dsp.1 r.1
 using r.1
`,
		"untagged terminal on right": declHeader + `
r.1 ::= fullword dsp r.1
 using r.1
`,
		"tagged operator": declHeader + `
r.1 ::= iadd.1 r.1 r.2
 a r.1,zero(zero,r.2)
`,
		"unbound template operand": declHeader + `
r.1 ::= iadd r.1 r.2
 a r.1,dsp.9(zero,r.2)
`,
		"unbound left side": declHeader + `
r.3 ::= iadd r.1 r.2
 modifies r.1
`,
		"operator as template opcode": declHeader + `
r.1 ::= iadd r.1 r.2
 iadd r.1,r.2
`,
		"semantic operand not register": declHeader + `
r.1 ::= iadd r.1 r.2
 using dsp.1
`,
		"duplicate right-side occurrence": declHeader + `
r.1 ::= iadd r.1 r.1
 modifies r.1
`,
		"using rebinds right side": declHeader + `
r.1 ::= iadd r.1 r.2
 using r.1
`,
		"lambda with tag": declHeader + `
lambda.1 ::= iadd r.1 r.2
 modifies r.1
`,
		"too many instructions": declHeader + `
r.1 ::= iadd r.1 r.2
 a r.1,zero(zero,r.2)
 a r.1,zero(zero,r.2)
 a r.1,zero(zero,r.2)
 a r.1,zero(zero,r.2)
 a r.1,zero(zero,r.2)
 a r.1,zero(zero,r.2)
 a r.1,zero(zero,r.2)
 a r.1,zero(zero,r.2)
 a r.1,zero(zero,r.2)
`,
	}
	for name, src := range cases {
		resolveErr(t, name, src)
	}
}

func TestAddSymbolLookup(t *testing.T) {
	g := &grammar.Grammar{}
	id := g.AddSymbol("x", grammar.Constant, 42)
	s, ok := g.Lookup("x")
	if !ok || s.ID != id || s.Value != 42 {
		t.Errorf("AddSymbol/Lookup: %+v %v", s, ok)
	}
	if g.SymName(999) == "" {
		t.Error("SymName out of range should return a placeholder")
	}
}
