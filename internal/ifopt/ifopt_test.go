package ifopt_test

import (
	"strings"
	"testing"

	"cogg/internal/ifopt"
	"cogg/internal/ir"
)

// alloc is a deterministic temp allocator for tests.
func alloc() (func(int64) int64, *[]int64) {
	var got []int64
	next := int64(500)
	return func(size int64) int64 {
		got = append(got, next)
		off := next
		next += size
		return off
	}, &got
}

// stmts parses a sequence of IF statement trees.
func stmts(t *testing.T, srcs ...string) []*ir.Node {
	t.Helper()
	var out []*ir.Node
	for _, s := range srcs {
		n, err := ir.ParseTree(s)
		if err != nil {
			t.Fatalf("ParseTree(%q): %v", s, err)
		}
		out = append(out, n)
	}
	return out
}

func apply(t *testing.T, in []*ir.Node) string {
	t.Helper()
	a, _ := alloc()
	out, err := ifopt.New().Apply(in, a)
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	for _, n := range out {
		parts = append(parts, n.String())
	}
	return strings.Join(parts, "\n")
}

func TestDetectsRepeatedSubtree(t *testing.T) {
	got := apply(t, stmts(t,
		"assign(fullword, dsp.96, r.13, iadd(imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)), pos_constant(v.3)))",
		"assign(fullword, dsp.120, r.13, isub(imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)), pos_constant(v.8)))",
	))
	if !strings.Contains(got, "make_common(cse.1, cnt.1") {
		t.Errorf("no make_common:\n%s", got)
	}
	if !strings.Contains(got, "use_common(cse.1)") {
		t.Errorf("no use_common:\n%s", got)
	}
	// The first occurrence (parse order) carries the declaration.
	if strings.Index(got, "make_common") > strings.Index(got, "use_common") {
		t.Error("make_common does not precede use_common")
	}
}

func TestUseCountMatchesOccurrences(t *testing.T) {
	got := apply(t, stmts(t,
		"assign(fullword, dsp.96, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
		"assign(fullword, dsp.120, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
		"assign(fullword, dsp.124, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
	))
	if !strings.Contains(got, "cnt.2") {
		t.Errorf("three occurrences must declare two further uses:\n%s", got)
	}
	if c := strings.Count(got, "use_common(cse.1)"); c != 2 {
		t.Errorf("use_common count = %d, want 2:\n%s", c, got)
	}
}

func TestStoreInvalidates(t *testing.T) {
	got := apply(t, stmts(t,
		"assign(fullword, dsp.96, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
		"assign(fullword, dsp.100, r.13, pos_constant(v.1))", // writes an input
		"assign(fullword, dsp.120, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
	))
	if strings.Contains(got, "make_common") {
		t.Errorf("CSE across an invalidating store:\n%s", got)
	}
}

func TestUnrelatedStoreKeepsCSE(t *testing.T) {
	got := apply(t, stmts(t,
		"assign(fullword, dsp.96, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
		"assign(fullword, dsp.900, r.13, pos_constant(v.1))", // unrelated slot
		"assign(fullword, dsp.120, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
	))
	if !strings.Contains(got, "make_common") {
		t.Errorf("unrelated store killed the CSE:\n%s", got)
	}
}

func TestIndexedWriteInvalidatesWildly(t *testing.T) {
	got := apply(t, stmts(t,
		"assign(fullword, dsp.96, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
		// Indexed store: extent unknown, kills everything on r13.
		"assign(fullword, l_shift(fullword(dsp.200, r.13), v.2), dsp.300, r.13, pos_constant(v.1))",
		"assign(fullword, dsp.120, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
	))
	if strings.Contains(got, "make_common") {
		t.Errorf("CSE across an indexed store:\n%s", got)
	}
}

func TestBlockBoundaries(t *testing.T) {
	got := apply(t, stmts(t,
		"assign(fullword, dsp.96, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
		"label_def(lbl.1)", // control merge: conservative boundary
		"assign(fullword, dsp.120, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
	))
	if strings.Contains(got, "make_common") {
		t.Errorf("CSE across a label:\n%s", got)
	}
}

func TestBranchMayUseBlockValues(t *testing.T) {
	got := apply(t, stmts(t,
		"assign(fullword, dsp.96, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
		"branch_op(lbl.1, cond.8(icompare(imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)), pos_constant(v.0))))",
	))
	if !strings.Contains(got, "make_common") || !strings.Contains(got, "use_common") {
		t.Errorf("branch compare did not reuse the block's CSE:\n%s", got)
	}
}

func TestLargestSubtreeWins(t *testing.T) {
	// a*b repeats, and so does (a*b)+c; the larger must be chosen and
	// consume the smaller's occurrences.
	got := apply(t, stmts(t,
		"assign(fullword, dsp.96, r.13, iadd(imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)), fullword(dsp.108, r.13)))",
		"assign(fullword, dsp.120, r.13, iadd(imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)), fullword(dsp.108, r.13)))",
	))
	if c := strings.Count(got, "make_common"); c != 1 {
		t.Errorf("make_common count = %d, want 1 (outermost only):\n%s", c, got)
	}
	if !strings.Contains(got, "make_common(cse.1, cnt.1, fullword, dsp.500, r.13, iadd(") {
		t.Errorf("outermost subtree not chosen:\n%s", got)
	}
}

func TestMinSizeExcludesTinyTrees(t *testing.T) {
	// Plain loads repeat but are not candidates (no arithmetic root).
	got := apply(t, stmts(t,
		"assign(fullword, dsp.96, r.13, fullword(dsp.100, r.13))",
		"assign(fullword, dsp.120, r.13, fullword(dsp.100, r.13))",
	))
	if strings.Contains(got, "make_common") {
		t.Errorf("bare load became a CSE:\n%s", got)
	}
}

func TestUniqueNumbersAcrossCalls(t *testing.T) {
	o := ifopt.New()
	a, _ := alloc()
	mk := func() []*ir.Node {
		return stmts(t,
			"assign(fullword, dsp.96, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
			"assign(fullword, dsp.120, r.13, imult(fullword(dsp.100, r.13), fullword(dsp.104, r.13)))",
		)
	}
	out1, err := o.Apply(mk(), a)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := o.Apply(mk(), a)
	if err != nil {
		t.Fatal(err)
	}
	t1 := out1[0].String()
	t2 := out2[0].String()
	if !strings.Contains(t1, "cse.1") || !strings.Contains(t2, "cse.2") {
		t.Errorf("CSE numbers not unique throughout the compilation:\n%s\n%s", t1, t2)
	}
}
