// Package ifopt is the IF optimizer: it detects common subexpressions
// and establishes their use counts (paper section 4.4: "All CSEs are
// detected, and their use counts established, by an IF optimizer").
//
// Within each straight-line region of a shaped procedure body, repeated
// pure computation subtrees are rewritten: the first occurrence is
// wrapped in make_common (declaring the CSE number, the remaining use
// count, and a shaper-allocated temporary storage home) and every later
// occurrence becomes use_common. The code generator's semantic routines
// track whether the value still lives in a register and reload from the
// temporary only if a `modifies` forced it to storage.
package ifopt

import (
	"sort"

	"cogg/internal/ir"
	"cogg/internal/rt370"
)

// TempAllocator matches shaper.TempAllocator: it hands out temporary
// storage in the current frame.
type TempAllocator func(size int64) int64

// Optimizer numbers common subexpressions; each CSE number is unique
// throughout the compilation, so one Optimizer serves a whole program.
type Optimizer struct {
	seq int64
	// MinSize is the minimum node count for a candidate subtree
	// (defaults to 3: at least one operator over a memory operand).
	MinSize int
}

// New returns an optimizer.
func New() *Optimizer { return &Optimizer{MinSize: 3} }

// Apply rewrites a shaped statement sequence in place and returns it.
// Its signature matches shaper.Options.CSE.
func (o *Optimizer) Apply(stmts []*ir.Node, alloc func(size int64) int64) ([]*ir.Node, error) {
	start := 0
	for i := 0; i <= len(stmts); i++ {
		boundary := i == len(stmts)
		closeAfter := false
		if !boundary {
			switch stmts[i].Op {
			case ir.OpLabelDef, ir.OpLabelIndex, ir.OpProcEntry, ir.OpProcExit,
				ir.OpProcCall, ir.OpAbortOp:
				boundary = true
			case ir.OpBranchOp, ir.OpCaseIndex:
				// The branch itself may still use values computed in the
				// block; close the block after it.
				closeAfter = true
			}
		}
		if boundary {
			o.block(stmts[start:i], alloc)
			start = i + 1
		} else if closeAfter {
			o.block(stmts[start:i+1], alloc)
			start = i + 1
		}
	}
	return stmts, nil
}

// candidateRoots are the operators whose subtrees qualify as CSEs:
// computed integer values held in general registers.
var candidateRoots = map[string]bool{
	ir.OpIAdd: true, ir.OpISub: true, ir.OpIMult: true,
	ir.OpIDiv: true, ir.OpIMod: true,
	ir.OpLShift: true, ir.OpRShift: true,
	ir.OpIAbs: true, ir.OpINeg: true,
}

// loaders are the storage-reading type operators.
var loaders = map[string]bool{
	ir.OpFullword: true, ir.OpHalfword: true, ir.OpByteword: true,
	ir.OpRealword: true, ir.OpDblreal: true,
}

// occurrence is one appearance of a candidate key.
type occurrence struct {
	node *ir.Node
	size int
}

type group struct {
	key  string
	occs []*occurrence
	size int
}

type readSet struct {
	exact map[[2]int64]bool // (base, dsp) pairs
	wild  map[int64]bool    // bases read with computed displacements
}

// block runs CSE over one straight-line region.
func (o *Optimizer) block(stmts []*ir.Node, alloc func(size int64) int64) {
	if len(stmts) < 1 {
		return
	}
	open := map[string][]*occurrence{}
	reads := map[string]readSet{}
	var closed []group

	closeKey := func(key string) {
		occs := open[key]
		if len(occs) >= 2 {
			closed = append(closed, group{key: key, occs: occs, size: occs[0].size})
		}
		delete(open, key)
		delete(reads, key)
	}

	for _, st := range stmts {
		// Collect this statement's candidate subtrees in prefix order.
		var visit func(n *ir.Node)
		visit = func(n *ir.Node) {
			if n == nil {
				return
			}
			if candidateRoots[n.Op] {
				if size := n.Size(); size >= o.MinSize {
					key := n.String()
					open[key] = append(open[key], &occurrence{node: n, size: size})
					if _, ok := reads[key]; !ok {
						rs := readSet{exact: map[[2]int64]bool{}, wild: map[int64]bool{}}
						collectReads(n, &rs)
						reads[key] = rs
					}
				}
			}
			for _, k := range n.Kids {
				visit(k)
			}
		}
		visit(st)

		// Apply the statement's writes: close any key it may disturb.
		base, dsp, wild, writes := writeTarget(st)
		if !writes {
			continue
		}
		for key, rs := range reads {
			hit := false
			if wild {
				hit = rs.wild[base] || anyBase(rs.exact, base)
			} else {
				hit = rs.exact[[2]int64{base, dsp}] || rs.wild[base]
			}
			if hit {
				closeKey(key)
			}
		}
	}
	for key := range open {
		closeKey(key)
	}

	// Largest subtrees first; occurrences already claimed by a larger
	// rewrite are unavailable.
	sort.Slice(closed, func(i, j int) bool {
		if closed[i].size != closed[j].size {
			return closed[i].size > closed[j].size
		}
		return closed[i].key < closed[j].key
	})
	covered := map[*ir.Node]bool{}
	markCovered := func(n *ir.Node) {
		var walk func(m *ir.Node)
		walk = func(m *ir.Node) {
			covered[m] = true
			for _, k := range m.Kids {
				walk(k)
			}
		}
		walk(n)
	}
	for _, g := range closed {
		var live []*occurrence
		for _, oc := range g.occs {
			if !covered[oc.node] {
				live = append(live, oc)
			}
		}
		if len(live) < 2 {
			continue
		}
		o.seq++
		temp := alloc(4)
		for _, oc := range live {
			markCovered(oc.node)
		}
		first := live[0].node
		clone := first.Clone()
		*first = ir.Node{Op: ir.OpMakeCommon, Kids: []*ir.Node{
			ir.V(ir.TermCse, o.seq),
			ir.V(ir.TermCnt, int64(len(live)-1)),
			{Op: ir.OpFullword},
			ir.V(ir.TermDsp, temp),
			ir.V(ir.NTReg, rt370.RegStackBase),
			clone,
		}}
		for _, oc := range live[1:] {
			*oc.node = ir.Node{Op: ir.OpUseCommon, Kids: []*ir.Node{ir.V(ir.TermCse, o.seq)}}
		}
	}
}

// collectReads gathers the storage locations a subtree loads.
func collectReads(n *ir.Node, rs *readSet) {
	if loaders[n.Op] {
		switch len(n.Kids) {
		case 2: // dsp, base
			rs.exact[[2]int64{n.Kids[1].Val, n.Kids[0].Val}] = true
			return
		case 3: // index, dsp, base: extent unknown
			rs.wild[n.Kids[2].Val] = true
			collectReads(n.Kids[0], rs)
			return
		}
	}
	for _, k := range n.Kids {
		collectReads(k, rs)
	}
}

// anyBase reports whether any exact read uses the base register.
func anyBase(exact map[[2]int64]bool, base int64) bool {
	for k := range exact {
		if k[0] == base {
			return true
		}
	}
	return false
}

// writeTarget extracts the storage a statement writes: base register,
// displacement, and whether the extent is unknown (indexed or block
// writes).
func writeTarget(st *ir.Node) (base, dsp int64, wild, writes bool) {
	switch st.Op {
	case ir.OpAssign:
		kids := st.Kids
		if len(kids) == 0 {
			return 0, 0, false, false
		}
		head := kids[0]
		if loaders[head.Op] && len(head.Kids) == 0 {
			// Flattened scalar target: [typeop dsp base value] or
			// [typeop idx dsp base value].
			if len(kids) == 4 && kids[1].Op == ir.TermDsp {
				return kids[2].Val, kids[1].Val, false, true
			}
			if len(kids) == 5 {
				return kids[3].Val, 0, true, true
			}
		}
		// Block moves and other shapes: unknown extent on the stack base.
		return rt370.RegStackBase, 0, true, true
	case ir.OpLongAssign, ir.OpVarAssign, ir.OpClear,
		ir.OpSetBit, ir.OpClearBit, ir.OpStoreBit:
		return rt370.RegStackBase, 0, true, true
	}
	return 0, 0, false, false
}
