package batch_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cogg/internal/batch"
	"cogg/internal/faultinject"
	"cogg/internal/shaper"
)

// chaosUnits builds n distinct programs named u00..u(n-1). The program
// name in the source matches the unit name, so failpoints keyed by unit
// name fire for that unit's reductions too.
func chaosUnits(n int) []batch.Unit {
	units := make([]batch.Unit, n)
	for i := range units {
		name := fmt.Sprintf("u%02d", i)
		units[i] = batch.Unit{
			Name: name,
			Source: fmt.Sprintf(`
program %s;
var x, y: integer;
begin
  x := %d;
  y := x * %d + x;
  x := y - %d
end.
`, name, 100+i, 3+i, i),
			Opt: shaper.Options{},
		}
	}
	return units
}

// TestChaosThreePoisonedUnits is the headline fault-tolerance property:
// with failpoints injecting a panic, a 5 second delay, and an I/O error
// into 3 of 16 batch units, the other 13 succeed with byte-identical
// output to a fault-free run, and the 3 report distinct FailureModes.
func TestChaosThreePoisonedUnits(t *testing.T) {
	units := chaosUnits(16)
	svc := batch.New(batch.Options{Workers: 8})
	tgt := minimalTarget(t, svc)

	clean := svc.CompileBatch(tgt, units)
	for _, r := range clean {
		if r.Err != nil {
			t.Fatalf("fault-free run: unit %s: %v", r.Name, r.Err)
		}
	}

	defer faultinject.Reset()
	// u03 panics deep in the pipeline, mid-reduction; u07 stalls for 5s
	// inside its unit, past the 1s deadline; u11 hits an I/O fault that
	// persists across the retry.
	faultinject.Set(faultinject.Rule{Site: "codegen/reduce", Key: "u03", Kind: faultinject.KindPanic})
	faultinject.Set(faultinject.Rule{Site: "batch/unit", Key: "u07", Kind: faultinject.KindDelay, Delay: 5 * time.Second})
	faultinject.Set(faultinject.Rule{Site: "batch/unit", Key: "u11", Kind: faultinject.KindError, Class: "io"})

	chaos := batch.New(batch.Options{
		Workers:      8,
		UnitTimeout:  time.Second,
		Retries:      1,
		RetryBackoff: time.Millisecond,
	})
	tgt2 := minimalTarget(t, chaos)
	results := chaos.CompileBatch(tgt2, units)

	want := map[string]batch.FailureMode{
		"u03": batch.FailPanic,
		"u07": batch.FailTimeout,
		"u11": batch.FailIO,
	}
	for i, r := range results {
		mode, poisoned := want[r.Name]
		if !poisoned {
			if r.Err != nil {
				t.Errorf("healthy unit %s failed under chaos: %v", r.Name, r.Err)
				continue
			}
			if got, cleanL := r.Compiled.Listing(), clean[i].Compiled.Listing(); got != cleanL {
				t.Errorf("unit %s listing differs between chaos and fault-free runs", r.Name)
			}
			continue
		}
		if r.Err == nil {
			t.Errorf("poisoned unit %s succeeded, want %v failure", r.Name, mode)
			continue
		}
		if r.Mode != mode {
			t.Errorf("unit %s failed as %v, want %v (err: %v)", r.Name, r.Mode, mode, r.Err)
		}
	}

	// The recovered panic must carry its stack.
	if pr := results[3]; pr.Err != nil && !strings.Contains(pr.Err.Error(), "goroutine") {
		t.Errorf("panic error carries no stack trace:\n%v", pr.Err)
	}

	v := chaos.Stats.Snapshot()
	if v.UnitsCompiled != 13 || v.UnitsFailed != 3 {
		t.Errorf("stats: compiled=%d failed=%d, want 13/3", v.UnitsCompiled, v.UnitsFailed)
	}
	if v.FailedPanic != 1 || v.FailedTimeout != 1 || v.FailedIO != 1 {
		t.Errorf("failure taxonomy: panic=%d timeout=%d io=%d, want 1/1/1",
			v.FailedPanic, v.FailedTimeout, v.FailedIO)
	}
	if v.Retries != 1 {
		t.Errorf("transient I/O fault retried %d times, want 1", v.Retries)
	}
	stats := chaos.Stats.String()
	if !strings.Contains(stats, "failure modes") || !strings.Contains(stats, "1 panic") {
		t.Errorf("stats rendering lacks the failure taxonomy:\n%s", stats)
	}
}

// TestChaosTranslateBatch proves IF-stream units are isolated the same
// way program units are.
func TestChaosTranslateBatch(t *testing.T) {
	svc := batch.New(batch.Options{Workers: 4})
	tgt := minimalTarget(t, svc)
	units := []batch.IFUnit{
		{Name: "a.if", Text: "assign fullword dsp.100 r.13 fullword dsp.104 r.13"},
		{Name: "b.if", Text: "assign fullword dsp.100 r.13 iadd fullword dsp.104 r.13 fullword dsp.108 r.13"},
		{Name: "c.if", Text: "assign fullword dsp.112 r.13 iadd fullword dsp.100 r.13 fullword dsp.104 r.13"},
	}

	defer faultinject.Reset()
	faultinject.Set(faultinject.Rule{Site: "batch/unit", Key: "b.if", Kind: faultinject.KindPanic})

	results := svc.TranslateBatch(tgt, units)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy IF units failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Mode != batch.FailPanic {
		t.Fatalf("poisoned IF unit: mode=%v err=%v, want panic", results[1].Mode, results[1].Err)
	}
	if results[0].Listing == "" || results[2].Listing == "" {
		t.Fatal("healthy IF units produced no listings")
	}
}

// TestCacheWriteFaultDegrades: a persistently failing cache write is
// retried, counted, and then ignored — the module is still served and
// the batch is unaffected.
func TestCacheWriteFaultDegrades(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.Rule{Site: "blob/put", Kind: faultinject.KindError, Class: "io"})

	dir := t.TempDir()
	svc := batch.New(batch.Options{CacheDir: dir, Retries: 2, RetryBackoff: time.Millisecond})
	minimalTarget(t, svc)

	v := svc.Stats.Snapshot()
	if v.DiskWriteErrs != 1 {
		t.Errorf("DiskWriteErrs = %d, want 1", v.DiskWriteErrs)
	}
	if v.Retries != 2 {
		t.Errorf("Retries = %d, want 2", v.Retries)
	}
	if n := len(cacheFiles(t, dir)); n != 0 {
		t.Errorf("disk cache holds %d entries despite injected write faults", n)
	}
}

// TestCacheWriteFaultRetriesThenSucceeds: a fault that fires once is
// absorbed by the retry — the entry lands on disk and nothing degrades.
func TestCacheWriteFaultRetriesThenSucceeds(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.Rule{Site: "blob/put", Kind: faultinject.KindError, Class: "io", Count: 1})

	dir := t.TempDir()
	svc := batch.New(batch.Options{CacheDir: dir, Retries: 2, RetryBackoff: time.Millisecond})
	minimalTarget(t, svc)

	v := svc.Stats.Snapshot()
	if v.Retries != 1 || v.DiskWriteErrs != 0 {
		t.Errorf("retries=%d degraded=%d, want 1/0", v.Retries, v.DiskWriteErrs)
	}
	if n := len(cacheFiles(t, dir)); n != 1 {
		t.Errorf("disk cache holds %d entries, want 1", n)
	}
}

// TestCacheRenameFaultLeavesNoDebris: a fault at the atomic-rename step
// degrades like any write fault and must not leave temporary files.
func TestCacheRenameFaultLeavesNoDebris(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.Rule{Site: "blob/fs/rename", Kind: faultinject.KindError, Class: "io"})

	dir := t.TempDir()
	svc := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, svc)

	if svc.Stats.Snapshot().DiskWriteErrs != 1 {
		t.Error("rename fault not counted as a degraded write")
	}
	if tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(tmp) != 0 {
		t.Errorf("rename fault left temp files behind: %v", tmp)
	}
}

// TestCacheReadFaultFallsBack: an unreadable disk entry is a miss, not
// an error — the service rebuilds from source.
func TestCacheReadFaultFallsBack(t *testing.T) {
	dir := t.TempDir()
	minimalTargetAt(t, dir) // seed the disk tier

	defer faultinject.Reset()
	faultinject.Set(faultinject.Rule{Site: "blob/get", Kind: faultinject.KindError, Class: "io"})

	svc := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, svc)
	v := svc.Stats.Snapshot()
	if v.Misses != 1 || v.DiskHits != 0 {
		t.Errorf("read fault: misses=%d diskHits=%d, want 1/0", v.Misses, v.DiskHits)
	}
}

// TestDecodeFaultRegenerates: a fault injected into module decoding is
// indistinguishable from a corrupt entry — counted bad, entry dropped,
// tables rebuilt from specification source.
func TestDecodeFaultRegenerates(t *testing.T) {
	dir := t.TempDir()
	minimalTargetAt(t, dir) // seed the disk tier

	defer faultinject.Reset()
	faultinject.Set(faultinject.Rule{Site: "tables/decode", Kind: faultinject.KindError, Class: "io"})

	svc := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, svc)
	v := svc.Stats.Snapshot()
	if v.DiskBad != 1 || v.Misses != 1 {
		t.Errorf("decode fault: bad=%d misses=%d, want 1/1", v.DiskBad, v.Misses)
	}
}

func minimalTargetAt(t *testing.T, dir string) {
	t.Helper()
	minimalTarget(t, batch.New(batch.Options{CacheDir: dir}))
}

// TestEnvVarArming exercises the COGG_FAILPOINTS production path: the
// same grammar the env variable uses, armed via Arm, drives a batch.
func TestEnvVarArming(t *testing.T) {
	defer faultinject.Reset()
	if err := faultinject.Arm("batch/unit#u01=error:io"); err != nil {
		t.Fatal(err)
	}
	svc := batch.New(batch.Options{Workers: 2})
	tgt := minimalTarget(t, svc)
	results := svc.CompileBatch(tgt, chaosUnits(3))
	if results[1].Mode != batch.FailIO {
		t.Fatalf("unit u01: mode=%v err=%v, want io", results[1].Mode, results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy units failed: %v / %v", results[0].Err, results[2].Err)
	}
}
