package batch_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cogg/internal/batch"
	"cogg/internal/driver"
	"cogg/internal/rt370"
	"cogg/internal/shaper"
	"cogg/specs"
)

const specName = "amdahl-minimal.cogg"

func minimalTarget(t *testing.T, s *batch.Service) *driver.Target {
	t.Helper()
	tgt, err := s.Target(specName, specs.AmdahlMinimal, rt370.Config())
	if err != nil {
		t.Fatalf("Target: %v", err)
	}
	return tgt
}

// cacheFiles lists the blob entries currently in a cache directory
// (quarantined entries and the index sidecar do not count).
func cacheFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*.blob"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCacheTiers drives the three tiers in order: a fresh service
// misses and builds, the same service hits memory, and a second service
// over the same directory hits disk without ever constructing tables.
func TestCacheTiers(t *testing.T) {
	dir := t.TempDir()

	s1 := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, s1)
	v := s1.Stats.Snapshot()
	if v.Misses != 1 || v.MemHits != 0 || v.DiskHits != 0 {
		t.Fatalf("cold load: misses=%d mem=%d disk=%d, want 1/0/0", v.Misses, v.MemHits, v.DiskHits)
	}
	if v.TableBuild <= 0 {
		t.Error("cold load recorded no table-build time")
	}
	if n := len(cacheFiles(t, dir)); n != 1 {
		t.Fatalf("disk cache holds %d entries after a miss, want 1", n)
	}

	minimalTarget(t, s1)
	if v := s1.Stats.Snapshot(); v.MemHits != 1 || v.Misses != 1 {
		t.Fatalf("second load: mem=%d misses=%d, want 1/1", v.MemHits, v.Misses)
	}

	s2 := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, s2)
	v = s2.Stats.Snapshot()
	if v.DiskHits != 1 || v.Misses != 0 {
		t.Fatalf("warm start: disk=%d misses=%d, want 1/0", v.DiskHits, v.Misses)
	}
	if v.TableBuild != 0 {
		t.Errorf("warm start spent %v building tables, want none", v.TableBuild)
	}
}

// TestWarmTargetCompilesIdentically proves the warm path is not a
// different compiler: a target decoded from the disk cache emits
// byte-for-byte the listing of one built from specification source.
func TestWarmTargetCompilesIdentically(t *testing.T) {
	const src = `
program warm;
var i, s: integer;
begin
  s := 0;
  for i := 1 to 10 do s := s + i * i
end.
`
	cold, err := driver.NewTarget(specName, specs.AmdahlMinimal)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	batch.New(batch.Options{CacheDir: dir}).Target(specName, specs.AmdahlMinimal, rt370.Config())
	warmSvc := batch.New(batch.Options{CacheDir: dir})
	warm := minimalTarget(t, warmSvc)
	if warmSvc.Stats.Snapshot().DiskHits != 1 {
		t.Fatal("warm service did not hit the disk cache")
	}

	cc, err := cold.Compile("warm.pas", src, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := warm.Compile("warm.pas", src, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cc.Listing() != wc.Listing() {
		t.Errorf("warm-path listing differs from cold-path listing:\ncold:\n%s\nwarm:\n%s",
			cc.Listing(), wc.Listing())
	}
}

// TestCorruptDiskEntryRegenerates plants garbage at the cache path: the
// service must discard it, rebuild from source, and leave a valid entry
// behind.
func TestCorruptDiskEntryRegenerates(t *testing.T) {
	dir := t.TempDir()
	seed := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, seed)
	entries := cacheFiles(t, dir)
	if len(entries) != 1 {
		t.Fatalf("expected one cache entry, found %v", entries)
	}
	if err := os.WriteFile(entries[0], []byte("not a table module"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, s)
	v := s.Stats.Snapshot()
	if v.DiskBad != 1 || v.Misses != 1 || v.DiskHits != 0 {
		t.Fatalf("corrupt entry: bad=%d misses=%d disk=%d, want 1/1/0", v.DiskBad, v.Misses, v.DiskHits)
	}

	// The rewritten entry must decode again.
	s3 := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, s3)
	if v := s3.Stats.Snapshot(); v.DiskHits != 1 {
		t.Fatalf("regenerated entry not served from disk: %+v", v)
	}
}

// TestStaleMagicEntryRegenerates flips the module-format magic byte
// inside a valid blob entry — the shape of an on-disk module left
// behind by an older format version — and expects fallback to
// regeneration, not an error. Under the blob envelope the flip is
// caught even earlier than the decoder: the payload no longer hashes to
// its recorded content digest, so the entry is quarantined (set aside,
// not deleted) before tables.Decode ever sees it.
func TestStaleMagicEntryRegenerates(t *testing.T) {
	dir := t.TempDir()
	seed := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, seed)
	entry := cacheFiles(t, dir)[0]
	data, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || !bytes.HasPrefix(data[nl+1:], []byte("CoGGtbl")) {
		t.Fatalf("blob payload does not start with the format magic: %.20q", data)
	}
	data[nl+1+7]++ // bump the module version digit in place
	if err := os.WriteFile(entry, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := batch.New(batch.Options{CacheDir: dir})
	tgt := minimalTarget(t, s)
	v := s.Stats.Snapshot()
	if v.DiskBad != 1 || v.Misses != 1 {
		t.Fatalf("stale magic: bad=%d misses=%d, want 1/1", v.DiskBad, v.Misses)
	}
	if tgt.Gen == nil {
		t.Fatal("regenerated target has no generator")
	}
	if q, err := filepath.Glob(filepath.Join(dir, "*.quarantine")); err != nil || len(q) != 1 {
		t.Errorf("corrupt entry was not quarantined: %v %v", q, err)
	}
}

// TestOneByteSpecEditMisses asserts the staleness contract of the cache
// key: editing a single byte of the specification (or renaming it)
// yields a different key, so a stale module can never be served.
func TestOneByteSpecEditMisses(t *testing.T) {
	base := batch.Key(specName, specs.AmdahlMinimal)
	edited := specs.AmdahlMinimal[:len(specs.AmdahlMinimal)-1] +
		string(specs.AmdahlMinimal[len(specs.AmdahlMinimal)-1]+1)
	if batch.Key(specName, edited) == base {
		t.Error("one-byte spec edit produced the same cache key")
	}
	if batch.Key("other.cogg", specs.AmdahlMinimal) == base {
		t.Error("renamed spec produced the same cache key")
	}
	// And the service must actually rebuild for the edited text: a
	// comment-only change still reruns the constructor (content hash,
	// not semantic hash — by design).
	dir := t.TempDir()
	s := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, s)
	if _, err := s.Module(specName, specs.AmdahlMinimal+"\n"); err != nil {
		t.Fatalf("edited spec: %v", err)
	}
	if v := s.Stats.Snapshot(); v.Misses != 2 {
		t.Fatalf("edited spec was served from cache (misses=%d, want 2)", v.Misses)
	}
	if n := len(cacheFiles(t, dir)); n != 2 {
		t.Fatalf("disk cache holds %d entries for 2 distinct specs", n)
	}
}

// TestModuleSingleflight: concurrent requests for one uncached spec
// share a single table construction.
func TestModuleSingleflight(t *testing.T) {
	s := batch.New(batch.Options{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Module(specName, specs.AmdahlMinimal); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	v := s.Stats.Snapshot()
	if v.Misses != 1 {
		t.Errorf("%d constructions for one spec, want 1", v.Misses)
	}
	if v.Misses+v.MemHits != 8 {
		t.Errorf("misses+memhits = %d, want 8", v.Misses+v.MemHits)
	}
}

// TestCompileBatchDeterministicOrder compiles a mixed batch (including
// a unit that fails to parse) on many workers and expects results at
// their input positions, identical across runs.
func TestCompileBatchDeterministicOrder(t *testing.T) {
	s := batch.New(batch.Options{Workers: 8})
	tgt := minimalTarget(t, s)

	var units []batch.Unit
	for _, u := range []struct{ name, body string }{
		{"a", "x := 1"},
		{"b", "x := 2 * 3 + 4"},
		{"broken", "x := := 1"},
		{"c", "x := 10 - 7"},
		{"d", "x := 5 * 5"},
		{"e", "x := 1 + 2 + 3"},
	} {
		units = append(units, batch.Unit{
			Name:   u.name + ".pas",
			Source: "program " + u.name + ";\nvar x: integer;\nbegin\n  " + u.body + "\nend.\n",
		})
	}

	first := s.CompileBatch(tgt, units)
	if len(first) != len(units) {
		t.Fatalf("got %d results for %d units", len(first), len(units))
	}
	for i, r := range first {
		if r.Name != units[i].Name {
			t.Errorf("result %d is %q, want %q", i, r.Name, units[i].Name)
		}
		if strings.HasPrefix(r.Name, "broken") {
			if r.Err == nil {
				t.Error("broken unit did not fail")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("unit %s: %v", r.Name, r.Err)
		}
	}
	second := s.CompileBatch(tgt, units)
	for i := range first {
		switch {
		case first[i].Err != nil:
			if second[i].Err == nil || first[i].Err.Error() != second[i].Err.Error() {
				t.Errorf("unit %s: error not reproducible", first[i].Name)
			}
		case first[i].Compiled.Listing() != second[i].Compiled.Listing():
			t.Errorf("unit %s: listing differs between identical batches", first[i].Name)
		}
	}

	v := s.Stats.Snapshot()
	if v.UnitsCompiled != 10 || v.UnitsFailed != 2 {
		t.Errorf("units compiled/failed = %d/%d, want 10/2", v.UnitsCompiled, v.UnitsFailed)
	}
	if v.QueueDepth != 0 {
		t.Errorf("queue depth %d after completion, want 0", v.QueueDepth)
	}
	if v.QueueDepthMax < int64(len(units)) {
		t.Errorf("peak queue depth %d, want >= %d", v.QueueDepthMax, len(units))
	}
}

// TestTranslateBatch drives raw IF streams through the pool.
func TestTranslateBatch(t *testing.T) {
	s := batch.New(batch.Options{Workers: 4})
	tgt, err := s.Target("amdahl470.cogg", specs.Amdahl470, rt370.Config())
	if err != nil {
		t.Fatal(err)
	}
	units := []batch.IFUnit{
		{Name: "add", Text: "assign fullword dsp.96 r.13 iadd fullword dsp.96 r.13 fullword dsp.100 r.13"},
		{Name: "bad", Text: "iadd iadd"},
		{Name: "mult", Text: "assign fullword dsp.96 r.13 imult fullword dsp.100 r.13 fullword dsp.104 r.13"},
	}
	res := s.TranslateBatch(tgt, units)
	if res[0].Err != nil || res[0].Instructions == 0 || !strings.Contains(res[0].Listing, "a ") {
		t.Errorf("add unit: %+v", res[0])
	}
	if res[1].Err == nil {
		t.Error("malformed IF unit did not fail")
	}
	if res[2].Err != nil || res[2].Instructions == 0 {
		t.Errorf("mult unit: %+v", res[2])
	}
}
