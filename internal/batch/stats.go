package batch

import (
	"encoding/json"
	"expvar"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts what the batch service did: cache traffic, where the time
// went, and how much code came out. All counters are monotonic and
// updated atomically, so a Stats may be read (Snapshot, String, or an
// expvar poll) while compilations are in flight.
type Stats struct {
	// Cache traffic for table modules, by tier.
	MemHits   atomic.Int64 // served from the in-memory LRU
	DiskHits  atomic.Int64 // decoded from the on-disk cache
	Misses    atomic.Int64 // built from specification source
	DiskBad   atomic.Int64 // disk entries discarded (corrupt or stale format)
	DiskBytes atomic.Int64 // bytes written to the on-disk cache

	// Time accounting, in nanoseconds.
	TableBuildNanos atomic.Int64 // SLR construction (cache misses only)
	DecodeNanos     atomic.Int64 // table module decoding (disk hits)
	CodegenNanos    atomic.Int64 // summed across units (wall time per unit)

	// Allocation accounting, in heap allocations (mallocs). Table-build
	// allocs are always metered (construction is single-flighted and
	// rare); per-unit codegen allocs only under Options.MeasureAllocs,
	// since reading memstats per unit perturbs throughput, and the
	// process-wide counter makes concurrent units bleed into each other
	// — treat CodegenAllocs as an estimate unless Workers is 1.
	TableBuildAllocs atomic.Int64
	CodegenAllocs    atomic.Int64
	AllocsMeasured   atomic.Int64 // units whose allocations were metered

	// Unit throughput.
	UnitsCompiled atomic.Int64
	UnitsFailed   atomic.Int64
	Instructions  atomic.Int64 // instructions emitted by successful units
	BytesEmitted  atomic.Int64 // code bytes laid out by successful units

	// Failure taxonomy: UnitsFailed broken down by FailureMode, plus
	// fault-tolerance machinery counters.
	FailedPanic    atomic.Int64 // units that panicked (recovered)
	FailedBlocked  atomic.Int64 // units whose parse blocked
	FailedTimeout  atomic.Int64 // units past the per-unit deadline
	FailedResource atomic.Int64 // units over a translation resource limit
	FailedIO       atomic.Int64 // units lost to infrastructure faults
	FailedOther    atomic.Int64 // everything else
	Retries        atomic.Int64 // transient-fault retries performed
	DiskWriteErrs  atomic.Int64 // cache writes that failed after retry (degraded)
	OrphansSwept   atomic.Int64 // stale temp files reclaimed at startup

	// Queue pressure: units waiting or running right now, and the
	// high-water mark over the service's lifetime.
	QueueDepth    atomic.Int64
	QueueDepthMax atomic.Int64
}

// enqueue notes n units entering the pool and updates the high-water mark.
func (s *Stats) enqueue(n int) {
	d := s.QueueDepth.Add(int64(n))
	for {
		max := s.QueueDepthMax.Load()
		if d <= max || s.QueueDepthMax.CompareAndSwap(max, d) {
			return
		}
	}
}

func (s *Stats) dequeue() { s.QueueDepth.Add(-1) }

// noteFailure records one failed unit under its mode.
func (s *Stats) noteFailure(m FailureMode) {
	s.UnitsFailed.Add(1)
	switch m {
	case FailPanic:
		s.FailedPanic.Add(1)
	case FailBlocked:
		s.FailedBlocked.Add(1)
	case FailTimeout:
		s.FailedTimeout.Add(1)
	case FailResource:
		s.FailedResource.Add(1)
	case FailIO:
		s.FailedIO.Add(1)
	default:
		s.FailedOther.Add(1)
	}
}

// Snapshot is a point-in-time copy of every counter.
type Snapshot struct {
	MemHits, DiskHits, Misses, DiskBad int64
	DiskBytes                          int64
	TableBuild, Decode, Codegen        time.Duration
	UnitsCompiled, UnitsFailed         int64
	Instructions, BytesEmitted         int64
	QueueDepth, QueueDepthMax          int64

	// Per-phase unit costs, derived at snapshot time: nanoseconds and
	// heap allocations per table build and per compilation unit (the
	// alloc rates are zero unless metering was on; see Stats).
	TableBuildAllocs, CodegenAllocs   int64
	TableBuildNSPerOp, CodegenNSPerOp int64
	TableBuildAllocsPerOp             int64
	CodegenAllocsPerOp                int64

	FailedPanic, FailedBlocked, FailedTimeout int64
	FailedResource, FailedIO, FailedOther     int64
	Retries, DiskWriteErrs, OrphansSwept      int64
}

func perOp(total, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return total / n
}

// Snapshot reads every counter once.
func (s *Stats) Snapshot() Snapshot {
	units := s.UnitsCompiled.Load() + s.UnitsFailed.Load()
	measured := s.AllocsMeasured.Load()
	builds := s.Misses.Load()
	return Snapshot{
		TableBuildAllocs:      s.TableBuildAllocs.Load(),
		CodegenAllocs:         s.CodegenAllocs.Load(),
		TableBuildNSPerOp:     perOp(s.TableBuildNanos.Load(), builds),
		CodegenNSPerOp:        perOp(s.CodegenNanos.Load(), units),
		TableBuildAllocsPerOp: perOp(s.TableBuildAllocs.Load(), builds),
		CodegenAllocsPerOp:    perOp(s.CodegenAllocs.Load(), measured),

		MemHits:       s.MemHits.Load(),
		DiskHits:      s.DiskHits.Load(),
		Misses:        s.Misses.Load(),
		DiskBad:       s.DiskBad.Load(),
		DiskBytes:     s.DiskBytes.Load(),
		TableBuild:    time.Duration(s.TableBuildNanos.Load()),
		Decode:        time.Duration(s.DecodeNanos.Load()),
		Codegen:       time.Duration(s.CodegenNanos.Load()),
		UnitsCompiled: s.UnitsCompiled.Load(),
		UnitsFailed:   s.UnitsFailed.Load(),
		Instructions:  s.Instructions.Load(),
		BytesEmitted:  s.BytesEmitted.Load(),
		QueueDepth:    s.QueueDepth.Load(),
		QueueDepthMax: s.QueueDepthMax.Load(),

		FailedPanic:    s.FailedPanic.Load(),
		FailedBlocked:  s.FailedBlocked.Load(),
		FailedTimeout:  s.FailedTimeout.Load(),
		FailedResource: s.FailedResource.Load(),
		FailedIO:       s.FailedIO.Load(),
		FailedOther:    s.FailedOther.Load(),
		Retries:        s.Retries.Load(),
		DiskWriteErrs:  s.DiskWriteErrs.Load(),
		OrphansSwept:   s.OrphansSwept.Load(),
	}
}

// String renders the counters as the block printed by the -stats flag of
// cogg, ifcgen, and pascal370.
func (s *Stats) String() string {
	v := s.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "batch statistics\n")
	fmt.Fprintf(&b, "  table cache      %d mem hits, %d disk hits, %d misses, %d bad disk entries\n",
		v.MemHits, v.DiskHits, v.Misses, v.DiskBad)
	fmt.Fprintf(&b, "  disk writes      %d bytes\n", v.DiskBytes)
	fmt.Fprintf(&b, "  table build      %v (%d ns/op, %d allocs/op)\n",
		v.TableBuild, v.TableBuildNSPerOp, v.TableBuildAllocsPerOp)
	fmt.Fprintf(&b, "  module decode    %v\n", v.Decode)
	fmt.Fprintf(&b, "  code generation  %v across %d units (%d failed; %d ns/op, %d allocs/op)\n",
		v.Codegen, v.UnitsCompiled+v.UnitsFailed, v.UnitsFailed,
		v.CodegenNSPerOp, v.CodegenAllocsPerOp)
	fmt.Fprintf(&b, "  emitted          %d instructions, %d code bytes\n",
		v.Instructions, v.BytesEmitted)
	fmt.Fprintf(&b, "  queue depth      %d now, %d peak\n", v.QueueDepth, v.QueueDepthMax)
	if v.UnitsFailed > 0 {
		fmt.Fprintf(&b, "  failure modes    %d panic, %d blocked, %d timeout, %d resource-limit, %d io, %d other\n",
			v.FailedPanic, v.FailedBlocked, v.FailedTimeout, v.FailedResource, v.FailedIO, v.FailedOther)
	}
	if v.Retries > 0 || v.DiskWriteErrs > 0 || v.OrphansSwept > 0 {
		fmt.Fprintf(&b, "  fault tolerance  %d retries, %d degraded cache writes, %d orphans swept\n",
			v.Retries, v.DiskWriteErrs, v.OrphansSwept)
	}
	return b.String()
}

// statsVar adapts a Stats to expvar.Var behind an atomic pointer, so a
// later Publish under the same name can re-bind the registry entry to a
// fresh Stats instead of tripping expvar's duplicate-name panic.
type statsVar struct {
	s atomic.Pointer[Stats]
}

func (v *statsVar) String() string {
	b, err := json.Marshal(v.s.Load().Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// publishMu serializes Publish's check-then-register against the
// process-wide expvar registry.
var publishMu sync.Mutex

// Publish registers the counters with the process-wide expvar registry
// under the given name. expvar names live for the life of the process,
// so a second Publish under the same name — two services in one
// process, or a server restarted in tests — re-binds the existing entry
// to this Stats rather than panicking. Publishing over a name some
// other package registered reports an error.
func (s *Stats) Publish(name string) error {
	publishMu.Lock()
	defer publishMu.Unlock()
	if v := expvar.Get(name); v != nil {
		sv, ok := v.(*statsVar)
		if !ok {
			return fmt.Errorf("batch: expvar name %q is already registered by another package", name)
		}
		sv.s.Store(s)
		return nil
	}
	sv := &statsVar{}
	sv.s.Store(s)
	expvar.Publish(name, sv)
	return nil
}
