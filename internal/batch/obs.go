package batch

import (
	"cogg/internal/obs"
)

// RegisterMetrics bridges the service's counters into an obs.Registry
// as Prometheus-convention series, read from the existing atomics at
// exposition time — no second set of counters, no update-path cost.
// Registration is idempotent, so a server restarted against the same
// registry (or two services sharing one) is safe; when two services
// share a registry the last registered wins each series, matching the
// expvar re-bind semantics of Stats.Publish.
//
// Series registered (all counters unless noted):
//
//	cogg_cache_hits_total{tier="mem"|"disk"}   table-module cache hits
//	cogg_cache_misses_total                    modules built from source
//	cogg_cache_bad_entries_total               corrupt/stale disk entries
//	cogg_cache_disk_bytes_total                bytes written to the disk tier
//	cogg_units_compiled_total                  units that succeeded
//	cogg_units_failed_total{mode=...}          failures by taxonomy mode
//	cogg_unit_retries_total                    transient-fault retries
//	cogg_instructions_total                    instructions emitted
//	cogg_code_bytes_total                      code bytes laid out
//	cogg_table_build_seconds_total             SLR construction time
//	cogg_table_decode_seconds_total            disk-tier decode time
//	cogg_codegen_seconds_total                 summed per-unit wall time
//	cogg_batch_queue_depth (gauge)             units waiting or running
func (s *Service) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := &s.Stats
	hits := "Table-module cache hits by tier."
	reg.CounterFunc("cogg_cache_hits_total", hits, obs.L("tier", "mem"), st.MemHits.Load)
	reg.CounterFunc("cogg_cache_hits_total", hits, obs.L("tier", "disk"), st.DiskHits.Load)
	reg.CounterFunc("cogg_cache_misses_total",
		"Table modules built from specification source (cache misses).", "", st.Misses.Load)
	reg.CounterFunc("cogg_cache_bad_entries_total",
		"Disk cache entries discarded as corrupt or stale.", "", st.DiskBad.Load)
	reg.CounterFunc("cogg_cache_disk_bytes_total",
		"Bytes written to the on-disk table-module cache.", "", st.DiskBytes.Load)

	reg.CounterFunc("cogg_units_compiled_total",
		"Compilation units that completed successfully.", "", st.UnitsCompiled.Load)
	failed := "Compilation units failed, by failure mode."
	for _, m := range []struct {
		mode string
		v    func() int64
	}{
		{FailPanic.String(), st.FailedPanic.Load},
		{FailBlocked.String(), st.FailedBlocked.Load},
		{FailTimeout.String(), st.FailedTimeout.Load},
		{FailResource.String(), st.FailedResource.Load},
		{FailIO.String(), st.FailedIO.Load},
		{FailOther.String(), st.FailedOther.Load},
	} {
		reg.CounterFunc("cogg_units_failed_total", failed, obs.L("mode", m.mode), m.v)
	}
	reg.CounterFunc("cogg_unit_retries_total",
		"Transient-fault retries performed.", "", st.Retries.Load)
	reg.CounterFunc("cogg_instructions_total",
		"Instructions emitted by successful units.", "", st.Instructions.Load)
	reg.CounterFunc("cogg_code_bytes_total",
		"Code bytes laid out by successful units.", "", st.BytesEmitted.Load)

	nanos := func(v func() int64) func() float64 {
		return func() float64 { return float64(v()) / 1e9 }
	}
	reg.CounterFloatFunc("cogg_table_build_seconds_total",
		"Wall time spent in SLR table construction.", "", nanos(st.TableBuildNanos.Load))
	reg.CounterFloatFunc("cogg_table_decode_seconds_total",
		"Wall time spent decoding cached table modules.", "", nanos(st.DecodeNanos.Load))
	reg.CounterFloatFunc("cogg_codegen_seconds_total",
		"Per-unit compilation wall time, summed across units.", "", nanos(st.CodegenNanos.Load))

	reg.GaugeFunc("cogg_batch_queue_depth",
		"Units waiting for or running on the batch worker pool.", "",
		func() float64 { return float64(st.QueueDepth.Load()) })
}
