// Package batch is the concurrent compilation service: many programs
// through one table-driven code generator, with the expensive artifact —
// the SLR driving tables built from a CoGG specification — produced
// once and reused everywhere.
//
// The paper's economics motivate the design: constructing the tables
// costs tens of milliseconds of automaton construction, while driving
// them over a program costs microseconds. The service therefore caches
// compiled table modules in tiers keyed by content hash of the
// specification (see Key):
//
//   - an in-memory LRU of decoded modules, and
//   - a blob store of tables.Encode output beneath it (internal/blob:
//     disk, memory, or a tiered stack reaching fleet peers), so a warm
//     start skips SLR construction entirely and pays only the decode —
//     and a cold replica can fetch a neighbor's already-built module
//     instead of constructing its own.
//
// Corrupt store entries are quarantined by the blob layer (every read
// re-verifies the payload's content digest), counted here, and
// regenerated; payloads that verify but fail to decode are discarded
// and regenerated.
//
// Compilation units fan out across a bounded worker pool with
// deterministic output ordering: results arrive indexed by input
// position regardless of completion order. The unit of parallelism is
// one program (or one IF stream for TranslateBatch). The shaper does
// not allow splitting below the program: procedures share the label
// space, the transfer vector, and the literal pool of their program, so
// a finer unit would race on all three. What the shaper does allow —
// and what the generator's immutability guarantees (see codegen.New) —
// is any number of units driving one decoded module concurrently.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cogg/internal/asm"
	"cogg/internal/blob"
	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/driver"

	// Link the checked-in generated engines so Options.Engine can serve
	// them; their init() self-registration is the only coupling.
	_ "cogg/internal/emitted"
	"cogg/internal/ir"
	"cogg/internal/labels"
	"cogg/internal/obs"
	"cogg/internal/profiling"
	"cogg/internal/shaper"
	"cogg/internal/tables"
)

// Options configure a Service.
type Options struct {
	// Workers bounds the compilation pool; <= 0 means GOMAXPROCS.
	Workers int
	// CacheDir is the on-disk table-module cache; empty disables the
	// disk tier (the decoded-module LRU still applies). When Blob is
	// also set, CacheDir only locates the index sidecar — the blobs go
	// wherever Blob puts them.
	CacheDir string
	// Blob, when set, is the artifact store beneath the decoded-module
	// LRU — typically a blob.Tiered layering memory, disk, and fleet
	// peers (see internal/blob). Nil falls back to a plain disk store
	// under CacheDir, or no store at all when both are empty.
	Blob blob.Store
	// MemEntries caps the in-memory module LRU; <= 0 means 8.
	MemEntries int

	// UnitTimeout bounds each compilation unit's wall time; a unit past
	// the deadline fails with FailTimeout while the rest of the batch
	// proceeds. <= 0 disables the deadline.
	UnitTimeout time.Duration
	// Retries is how many times a unit or cache operation that failed
	// with a transient fault (FailIO: disk trouble, corrupt decode) is
	// retried with exponential backoff; <= 0 disables retry.
	Retries int
	// RetryBackoff is the first retry's delay, doubling per retry;
	// <= 0 means 10ms.
	RetryBackoff time.Duration

	// MeasureAllocs meters heap allocations per compilation unit into
	// Stats.CodegenAllocs. Metering reads process-wide memstats around
	// each unit, which costs time and — with more than one worker —
	// attributes concurrent units' allocations to each other, so it is
	// off by default; the -stats flags of ifcgen and pascal370 turn it
	// on.
	MeasureAllocs bool

	// Engine selects the translation engine for targets built by
	// Target/TargetCtx: "" or "interpreted" runs the table interpreter;
	// "auto" attaches a compiled-in emitted engine (cogg emit-go output)
	// when one was generated from exactly the requested specification;
	// "emitted" requires one and fails target construction otherwise.
	// Both engines produce byte-identical programs.
	Engine string
}

// Service is a concurrent compilation service. It is safe for use from
// multiple goroutines; all counters accumulate in Stats.
type Service struct {
	Stats Stats

	workers  int
	store    blob.Store // encoded-module tier(s); nil disables
	indexDir string     // where the index sidecar lives; "" disables
	mem      *moduleLRU

	timeout time.Duration
	retries int
	backoff time.Duration
	measure bool
	engine  string

	// inflight collapses concurrent requests for the same key into one
	// table construction (or one disk decode).
	mu       sync.Mutex
	inflight map[string]*call
}

type call struct {
	done chan struct{}
	mod  *tables.Module
	err  error
}

// New builds a Service. The cache directory is created lazily on the
// first store.
func New(opts Options) *Service {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	mem := opts.MemEntries
	if mem <= 0 {
		mem = 8
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	s := &Service{
		workers:  w,
		store:    opts.Blob,
		indexDir: opts.CacheDir,
		mem:      newModuleLRU(mem),
		timeout:  opts.UnitTimeout,
		retries:  opts.Retries,
		backoff:  backoff,
		measure:  opts.MeasureAllocs,
		engine:   opts.Engine,
		inflight: map[string]*call{},
	}
	if s.store == nil && opts.CacheDir != "" {
		// The classic configuration: a plain disk store under CacheDir.
		// blob.NewFS sweeps orphaned temp files at construction; fold the
		// count into this service's fault-tolerance stats.
		fs := blob.NewFS(opts.CacheDir)
		s.Stats.OrphansSwept.Add(fs.OrphansSwept())
		s.store = fs
	}
	return s
}

// Workers reports the pool bound.
func (s *Service) Workers() int { return s.workers }

// Module returns the table module for a specification, consulting the
// in-memory LRU, then the disk cache, and only then running the table
// constructor (and populating both tiers). Concurrent calls for the
// same specification share one construction.
func (s *Service) Module(specName, specSrc string) (*tables.Module, error) {
	return s.ModuleCtx(context.Background(), specName, specSrc)
}

// ModuleCtx is Module with a context: a trace attached via
// obs.ContextWith records a table-decode span when the module came from
// the disk tier and a table-build span when the SLR constructor ran (a
// memory-tier hit records neither — nothing was built).
func (s *Service) ModuleCtx(ctx context.Context, specName, specSrc string) (*tables.Module, error) {
	key := Key(specName, specSrc)
	if mod, ok := s.mem.get(key); ok {
		s.Stats.MemHits.Add(1)
		return mod, nil
	}

	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err == nil {
			// Joining an in-flight construction is a memory-tier hit:
			// the module was served without building or decoding.
			s.Stats.MemHits.Add(1)
		}
		return c.mod, c.err
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	c.mod, c.err = s.moduleSlow(ctx, key, specName, specSrc)
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)
	return c.mod, c.err
}

// moduleSlow is the path below the in-memory tier.
func (s *Service) moduleSlow(ctx context.Context, key, specName, specSrc string) (*tables.Module, error) {
	tr, parent := obs.FromContext(ctx)
	t0 := time.Now()
	mod, ok := s.loadStore(ctx, key)
	if ok {
		if tr != nil {
			tr.AddSpan("table-decode", parent, t0, time.Since(t0))
		}
		s.mem.put(key, mod)
		return mod, nil
	}
	start := time.Now()
	m0 := profiling.Mallocs()
	var cg *core.CodeGenerator
	var err error
	_, endBuild := obs.StartSpan(ctx, "table-build")
	profiling.Phase("tablebuild", func() {
		cg, err = core.Generate(specName, specSrc)
	})
	endBuild()
	if err != nil {
		return nil, err
	}
	s.Stats.TableBuildAllocs.Add(int64(profiling.Mallocs() - m0))
	s.Stats.TableBuildNanos.Add(int64(time.Since(start)))
	s.Stats.Misses.Add(1)
	mod = cg.Module()
	s.mem.put(key, mod)
	// A failed cache write is degraded, not fatal: the module is in
	// memory and every unit can proceed. Transient store faults retry
	// with backoff first; a write that still fails is only counted.
	if err := s.storeBlobRetry(ctx, key, specName, mod); err != nil {
		s.Stats.DiskWriteErrs.Add(1)
	}
	return mod, nil
}

// Store publishes an already-constructed module into the decoded-module
// LRU and the blob store under the specification it was built from —
// the path cogg uses to warm the cache offline for later
// ifcgen/pascal370 runs.
func (s *Service) Store(specName, specSrc string, mod *tables.Module) error {
	key := Key(specName, specSrc)
	s.mem.put(key, mod)
	return s.storeBlob(context.Background(), key, specName, mod)
}

// Blob exposes the service's artifact store (nil when the service runs
// memory-only) — the handle the serving layer's deck cache shares.
func (s *Service) Blob() blob.Store { return s.store }

// Target returns a ready-to-use compiler target for a specification,
// built from the cached module when one exists.
func (s *Service) Target(specName, specSrc string, cfg codegen.Config) (*driver.Target, error) {
	return s.TargetCtx(context.Background(), specName, specSrc, cfg)
}

// TargetCtx is Target with a context (see ModuleCtx for the spans).
// When Options.Engine selects the emitted engine, the target translates
// through the compiled-in generated code generator instead of the table
// interpreter (byte-identical output; see driver.Target.AttachEmitted).
func (s *Service) TargetCtx(ctx context.Context, specName, specSrc string, cfg codegen.Config) (*driver.Target, error) {
	mod, err := s.ModuleCtx(ctx, specName, specSrc)
	if err != nil {
		return nil, err
	}
	tgt, err := driver.NewTargetFromModule(mod, cfg)
	if err != nil {
		return nil, err
	}
	switch s.engine {
	case "", "interpreted":
	case "auto", "emitted":
		ok, err := tgt.AttachEmitted(specName, specSrc, cfg)
		if err != nil {
			return nil, err
		}
		if !ok && s.engine == "emitted" {
			return nil, fmt.Errorf("batch: no emitted engine compiled in for %s (registered: %v)",
				specName, codegen.EmittedSpecs())
		}
	default:
		return nil, fmt.Errorf("batch: unknown engine %q (want interpreted, auto, or emitted)", s.engine)
	}
	return tgt, nil
}

// Unit is one program to compile: a named Pascal source plus its
// shaping options.
type Unit struct {
	Name   string
	Source string
	Opt    shaper.Options
	// Ctx, when non-nil, is threaded through the pipeline for this unit:
	// its cancellation is not consulted (the service's own per-unit
	// deadline governs), but a trace attached via obs.ContextWith
	// collects the unit's phase spans.
	Ctx context.Context
}

// ctxOf defaults a unit's optional context.
func ctxOf(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Result is the outcome of one unit, at the unit's input position.
// Mode classifies any failure; a panic recovered from the unit arrives
// as Err wrapping a *PanicError with the captured stack.
type Result struct {
	Name     string
	Compiled *driver.Compiled
	Err      error
	Mode     FailureMode
}

// CompileBatch compiles every unit through the target's generator,
// fanning out across the worker pool. The returned slice is parallel to
// units: results land at their input index whatever order the workers
// finish in, so batch output is deterministic.
//
// Units are isolated: each runs under recover with the service's
// per-unit deadline and transient-fault retry, so one unit that
// panics, stalls, or hits a resource limit yields a structured per-unit
// error while every other unit completes normally.
func (s *Service) CompileBatch(tgt *driver.Target, units []Unit) []Result {
	results := make([]Result, len(units))
	s.run(len(units), func(i int) {
		start := time.Now()
		m0 := s.meterStart()
		var c *driver.Compiled
		var err error
		profiling.Phase("codegen", func() {
			c, err = attempt(s, units[i].Name, func() (*driver.Compiled, error) {
				return tgt.CompileCtx(ctxOf(units[i].Ctx), units[i].Name, units[i].Source, units[i].Opt)
			})
		})
		s.meterEnd(m0)
		s.Stats.CodegenNanos.Add(int64(time.Since(start)))
		results[i] = Result{Name: units[i].Name, Compiled: c, Err: err, Mode: Classify(err)}
		if err != nil {
			s.Stats.noteFailure(results[i].Mode)
			return
		}
		s.Stats.UnitsCompiled.Add(1)
		s.Stats.Instructions.Add(int64(c.Prog.InstructionCount()))
		s.Stats.BytesEmitted.Add(int64(c.Prog.CodeSize))
	})
	return results
}

// IFUnit is one textual intermediate-form stream to translate — the
// spec-debugging granularity of ifcgen, and the finest unit the shaper
// permits when procedure bodies are shaped into independent streams.
type IFUnit struct {
	Name string
	Text string
	// Ctx carries an optional trace for this unit (see Unit.Ctx).
	Ctx context.Context
}

// IFResult is the outcome of one IF unit.
type IFResult struct {
	Name         string
	Listing      string
	Tokens       int
	Reductions   int
	Instructions int
	CodeBytes    int
	Err          error
	Mode         FailureMode
}

// TranslateBatch drives the code generator over each IF stream
// concurrently, returning laid-out listings in input order. Units are
// isolated the same way CompileBatch's are.
func (s *Service) TranslateBatch(tgt *driver.Target, units []IFUnit) []IFResult {
	return s.TranslateBatchWith(units, func(u IFUnit) IFResult {
		return translateOne(tgt, u)
	})
}

// TranslateBatchWith is TranslateBatch with a caller-supplied translator
// per unit — the hook the cogd serving layer uses to drive pooled
// reusable sessions through the service's worker pool, per-unit
// isolation, and statistics. The translator runs inside the same
// recover/deadline/retry envelope as the default one, so it must be
// safe for concurrent calls and may be re-invoked after a transient
// fault.
func (s *Service) TranslateBatchWith(units []IFUnit, translate func(IFUnit) IFResult) []IFResult {
	results := make([]IFResult, len(units))
	s.run(len(units), func(i int) {
		start := time.Now()
		m0 := s.meterStart()
		var r IFResult
		var err error
		profiling.Phase("codegen", func() {
			r, err = attempt(s, units[i].Name, func() (IFResult, error) {
				r := translate(units[i])
				return r, r.Err
			})
		})
		s.meterEnd(m0)
		s.Stats.CodegenNanos.Add(int64(time.Since(start)))
		r.Name, r.Err, r.Mode = units[i].Name, err, Classify(err)
		results[i] = r
		if err != nil {
			s.Stats.noteFailure(r.Mode)
			return
		}
		s.Stats.UnitsCompiled.Add(1)
		s.Stats.Instructions.Add(int64(r.Instructions))
	})
	return results
}

// translateOne tokenizes, generates, and lays out one IF stream.
func translateOne(tgt *driver.Target, u IFUnit) IFResult {
	toks, err := ir.ParseTokens(u.Text)
	if err != nil {
		return IFResult{Name: u.Name, Err: err}
	}
	prog, res, err := tgt.Translator().GenerateCtx(ctxOf(u.Ctx), u.Name, toks)
	if err != nil {
		return IFResult{Name: u.Name, Err: err}
	}
	if err := labels.Layout(prog, tgt.Machine); err != nil {
		return IFResult{Name: u.Name, Err: err}
	}
	return IFResult{
		Name:         u.Name,
		Listing:      asm.Listing(prog, tgt.Machine),
		Tokens:       len(toks),
		Reductions:   res.Reductions,
		Instructions: prog.InstructionCount(),
		CodeBytes:    prog.CodeSize,
	}
}

// meterStart/meterEnd bracket one unit's allocation metering when
// Options.MeasureAllocs is on (see the option's caveats).
func (s *Service) meterStart() uint64 {
	if !s.measure {
		return 0
	}
	return profiling.Mallocs()
}

func (s *Service) meterEnd(m0 uint64) {
	if !s.measure {
		return
	}
	s.Stats.CodegenAllocs.Add(int64(profiling.Mallocs() - m0))
	s.Stats.AllocsMeasured.Add(1)
}

// run executes n indexed jobs on the bounded pool.
func (s *Service) run(n int, job func(i int)) {
	s.Stats.enqueue(n)
	workers := s.workers
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				job(i)
				s.Stats.dequeue()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}
