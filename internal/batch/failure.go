package batch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"runtime/debug"
	"time"

	"cogg/internal/codegen"
	"cogg/internal/faultinject"
)

// FailureMode classifies why a compilation unit failed — the taxonomy
// the service's statistics and results expose so operators can tell a
// specification hole (blocked) from a poisoned input (panic), a stuck
// unit (timeout), a pathological one (resource), or infrastructure
// trouble (io).
type FailureMode int

const (
	FailNone     FailureMode = iota // the unit succeeded
	FailPanic                       // a panic was recovered; see PanicError for the stack
	FailBlocked                     // the parse blocked: the spec cannot translate the IF
	FailTimeout                     // the per-unit deadline expired
	FailResource                    // a translation resource limit (stack, code bytes, registers)
	FailIO                          // disk or decode trouble (cache I/O, corrupt artifacts)
	FailOther                       // everything else (front-end errors, bad specs, ...)
)

func (m FailureMode) String() string {
	switch m {
	case FailNone:
		return "none"
	case FailPanic:
		return "panic"
	case FailBlocked:
		return "blocked"
	case FailTimeout:
		return "timeout"
	case FailResource:
		return "resource-limit"
	case FailIO:
		return "io"
	case FailOther:
		return "other"
	}
	return fmt.Sprintf("mode#%d", int(m))
}

// PanicError is a panic recovered from one compilation unit: the
// recovered value plus the goroutine stack captured at the panic site.
// One poisoned unit yields one of these; the rest of the batch is
// unaffected.
type PanicError struct {
	Unit  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("batch: unit %s panicked: %v\n%s", e.Unit, e.Value, e.Stack)
}

// Classify maps an error to its FailureMode.
func Classify(err error) FailureMode {
	if err == nil {
		return FailNone
	}
	var pe *PanicError
	var be *codegen.BlockedError
	var re *codegen.ResourceError
	var inj *faultinject.InjectedError
	switch {
	case errors.As(err, &pe):
		return FailPanic
	case errors.Is(err, context.DeadlineExceeded):
		return FailTimeout
	case errors.As(err, &be):
		return FailBlocked
	case errors.As(err, &re):
		return FailResource
	case errors.As(err, &inj):
		if inj.Class == "io" {
			return FailIO
		}
		return FailOther
	case isIOError(err):
		return FailIO
	default:
		return FailOther
	}
}

// isIOError recognizes infrastructure faults: filesystem errors and
// truncated reads (a half-written or corrupt cache artifact).
func isIOError(err error) bool {
	var pathErr *fs.PathError
	return errors.As(err, &pathErr) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, fs.ErrPermission) ||
		errors.Is(err, fs.ErrNotExist)
}

// transient reports whether a failed attempt is worth retrying: only
// infrastructure faults are — a panic, a blocked parse, or a resource
// limit will fail identically every time.
func transient(err error) bool { return Classify(err) == FailIO }

// protected runs one unit's work on its own goroutine under recover,
// bounded by the service's per-unit deadline. The child goroutine owns
// the result until it is received, so an abandoned (timed-out) unit can
// never race the batch's result slice; its eventual result is dropped.
func protected[T any](s *Service, name string, f func() (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	ctx := context.Background()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				var zero T
				done <- outcome{zero, &PanicError{Unit: name, Value: p, Stack: debug.Stack()}}
			}
		}()
		if err := faultinject.Eval("batch/unit", name); err != nil {
			var zero T
			done <- outcome{zero, err}
			return
		}
		v, err := f()
		done <- outcome{v, err}
	}()
	select {
	case o := <-done:
		return o.v, o.err
	case <-ctx.Done():
		var zero T
		return zero, fmt.Errorf("batch: unit %s: %w after %v", name, ctx.Err(), s.timeout)
	}
}

// attempt runs protected work with bounded retry-with-backoff for
// transient faults. Deterministic failures return immediately.
func attempt[T any](s *Service, name string, f func() (T, error)) (T, error) {
	v, err := protected(s, name, f)
	for try := 0; err != nil && try < s.retries && transient(err); try++ {
		s.Stats.Retries.Add(1)
		time.Sleep(s.backoff << try)
		v, err = protected(s, name, f)
	}
	return v, err
}
