package batch_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"cogg/internal/batch"
	"cogg/internal/faultinject"
	"cogg/internal/rt370"
	"cogg/specs"
)

// TestOrphanSweepAtStartup: a temp file left by a writer that crashed
// between CreateTemp and Rename is reclaimed when the next Service
// starts over the directory — but only once it is old enough that no
// live writer can still own it, so a concurrent store's fresh temp
// survives the sweep.
func TestOrphanSweepAtStartup(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "deadbeef.tmp123456")
	fresh := filepath.Join(dir, "cafef00d.tmp654321")
	if err := os.WriteFile(stale, []byte("half-written module"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * time.Minute)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fresh, []byte("in-flight write"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := batch.New(batch.Options{CacheDir: dir})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale orphan %s survived the startup sweep", stale)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp %s was reaped by the startup sweep: %v", fresh, err)
	}
	if got := s.Stats.Snapshot().OrphansSwept; got != 1 {
		t.Errorf("OrphansSwept = %d, want 1", got)
	}
}

// TestTruncatedEntryNeverServesCorruptModule simulates the crash the
// atomic-rename protocol defends against: whatever prefix of a module's
// bytes reaches the final name, the loader must reject it and rebuild —
// a truncated entry may cost a table construction, never a wrong table.
func TestTruncatedEntryNeverServesCorruptModule(t *testing.T) {
	dir := t.TempDir()
	minimalTarget(t, batch.New(batch.Options{CacheDir: dir}))
	entries := cacheFiles(t, dir)
	if len(entries) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(entries))
	}
	whole, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range []int{0, 1, 16, len(whole) / 4, len(whole) / 2, len(whole) - 1} {
		if err := os.WriteFile(entries[0], whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s := batch.New(batch.Options{CacheDir: dir})
		if _, err := s.Target(specName, specs.AmdahlMinimal, rt370.Config()); err != nil {
			t.Fatalf("cut=%d: rebuild after truncated entry failed: %v", cut, err)
		}
		v := s.Stats.Snapshot()
		if v.DiskHits != 0 {
			t.Errorf("cut=%d: truncated entry served as a disk hit", cut)
		}
		if v.DiskBad != 1 || v.Misses != 1 {
			t.Errorf("cut=%d: bad=%d misses=%d, want 1/1", cut, v.DiskBad, v.Misses)
		}
		// The rebuild republished a full entry for the next round.
		if b, err := os.ReadFile(entries[0]); err != nil || len(b) != len(whole) {
			t.Fatalf("cut=%d: entry not republished (err=%v len=%d want %d)", cut, err, len(b), len(whole))
		}
	}
}

// TestSyncFaultLeavesNoFinalEntry: a failure at the pre-rename fsync
// (the crash window the durability protocol closes) must leave nothing
// at the final name — the store degrades, the cache stays consistent.
func TestSyncFaultLeavesNoFinalEntry(t *testing.T) {
	faultinject.Set(faultinject.Rule{Site: "blob/fs/sync", Kind: faultinject.KindError, Class: "io"})
	defer faultinject.Reset()

	dir := t.TempDir()
	s := batch.New(batch.Options{CacheDir: dir})
	minimalTarget(t, s) // table build succeeds; only the disk store fails
	if n := len(cacheFiles(t, dir)); n != 0 {
		t.Errorf("cache holds %d entries after an injected sync fault, want 0", n)
	}
	if got := s.Stats.Snapshot().DiskWriteErrs; got != 1 {
		t.Errorf("DiskWriteErrs = %d, want 1", got)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(m) != 0 {
		t.Errorf("sync fault leaked temp files: %v", m)
	}
}
