package batch

import (
	"testing"

	"cogg/internal/blob"
	"cogg/internal/tables"
)

// TestKeyCoversFormatVersion is the white-box half of the staleness
// contract: the cache key must change when the table-module format
// version (the magic string in package tables) is bumped, so every
// store entry written under the old encoding is orphaned rather than
// decoded. Key derivation is owned by blob.DigestModule; this pins that
// Key stays a faithful delegate.
func TestKeyCoversFormatVersion(t *testing.T) {
	const name, src = "spec.cogg", "$Non-terminals\n r = register\n"
	v1 := blob.DigestModule("CoGGtbl1", name, []byte(src))
	v2 := blob.DigestModule("CoGGtbl2", name, []byte(src))
	if v1 == v2 {
		t.Error("format version bump did not change the cache key")
	}
	if Key(name, src) != blob.DigestModule(tables.FormatVersion(), name, []byte(src)) {
		t.Error("Key does not incorporate tables.FormatVersion")
	}
}

// TestKeyFieldsDoNotCollide: the key hashes length-prefixed fields, so
// moving a byte between the name and the source must not collide.
func TestKeyFieldsDoNotCollide(t *testing.T) {
	if blob.DigestModule("v", "ab", []byte("c")) == blob.DigestModule("v", "a", []byte("bc")) {
		t.Error("name/source boundary shift produced a key collision")
	}
	if blob.DigestModule("va", "b", []byte("c")) == blob.DigestModule("v", "ab", []byte("c")) {
		t.Error("version/name boundary shift produced a key collision")
	}
}
