package batch

import (
	"testing"

	"cogg/internal/tables"
)

// TestKeyCoversFormatVersion is the white-box half of the staleness
// contract: the cache key must change when the table-module format
// version (the magic string in package tables) is bumped, so every disk
// entry written under the old encoding is orphaned rather than decoded.
func TestKeyCoversFormatVersion(t *testing.T) {
	const name, src = "spec.cogg", "$Non-terminals\n r = register\n"
	v1 := keyWith("CoGGtbl1", name, src)
	v2 := keyWith("CoGGtbl2", name, src)
	if v1 == v2 {
		t.Error("format version bump did not change the cache key")
	}
	if Key(name, src) != keyWith(tables.FormatVersion(), name, src) {
		t.Error("Key does not incorporate tables.FormatVersion")
	}
}

// TestKeyFieldsDoNotCollide: the key hashes length-prefixed fields, so
// moving a byte between the name and the source must not collide.
func TestKeyFieldsDoNotCollide(t *testing.T) {
	if keyWith("v", "ab", "c") == keyWith("v", "a", "bc") {
		t.Error("name/source boundary shift produced a key collision")
	}
	if keyWith("va", "b", "c") == keyWith("v", "ab", "c") {
		t.Error("version/name boundary shift produced a key collision")
	}
}
