package batch

import (
	"encoding/json"
	"expvar"
	"strings"
	"testing"
)

// TestPublishRebinds exercises the duplicate-registration path that used
// to panic inside expvar.Publish: a second Publish under the same name
// (two services in one process, or a server plus a CLI run) must re-bind
// the registry entry to the newer Stats.
func TestPublishRebinds(t *testing.T) {
	var a, b Stats
	a.MemHits.Add(7)
	b.MemHits.Add(42)

	const name = "batch.test.rebind"
	if err := a.Publish(name); err != nil {
		t.Fatalf("first Publish: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(expvar.Get(name).String()), &snap); err != nil {
		t.Fatalf("unmarshal published var: %v", err)
	}
	if snap.MemHits != 7 {
		t.Fatalf("published MemHits = %d, want 7", snap.MemHits)
	}

	// The second registration must neither panic nor error, and the
	// registry entry must now read the new Stats.
	if err := b.Publish(name); err != nil {
		t.Fatalf("second Publish: %v", err)
	}
	if err := json.Unmarshal([]byte(expvar.Get(name).String()), &snap); err != nil {
		t.Fatalf("unmarshal re-bound var: %v", err)
	}
	if snap.MemHits != 42 {
		t.Fatalf("re-bound MemHits = %d, want 42", snap.MemHits)
	}
}

// TestPublishForeignName: a name some other package registered is not
// ours to re-bind; Publish must report an error instead of clobbering
// or panicking.
func TestPublishForeignName(t *testing.T) {
	const name = "batch.test.foreign"
	expvar.NewInt(name)
	var s Stats
	err := s.Publish(name)
	if err == nil {
		t.Fatal("Publish over a foreign expvar name succeeded, want error")
	}
	if !strings.Contains(err.Error(), name) {
		t.Fatalf("error %q does not name the conflicting variable", err)
	}
}
