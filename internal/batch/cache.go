package batch

import (
	"bytes"
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"cogg/internal/blob"
	"cogg/internal/profiling"
	"cogg/internal/tables"
)

// Key derives the cache key for a specification — the blob-store digest
// every table module is published under. Key derivation has a single
// owner, blob.DigestModule: the hex SHA-256 over the table-module
// format version, the specification name, and the specification bytes,
// so a one-byte spec edit, a rename, or a format-version bump each
// orphan the old artifact.
func Key(specName, specSrc string) string {
	return blob.DigestModule(tables.FormatVersion(), specName, []byte(specSrc))
}

// moduleLRU is the decoded-module tier: table modules by cache key,
// evicting least-recently-used beyond cap. Modules are immutable after
// decode, so one cached module may be handed to any number of callers.
// This tier sits above the blob store (which holds encoded bytes); a
// hit here costs neither decode nor I/O.
type moduleLRU struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	byKey map[string]*list.Element
}

type lruEntry struct {
	key string
	mod *tables.Module
}

func newModuleLRU(capacity int) *moduleLRU {
	return &moduleLRU{cap: capacity, order: list.New(), byKey: map[string]*list.Element{}}
}

func (c *moduleLRU) get(key string) (*tables.Module, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).mod, true
}

func (c *moduleLRU) put(key string, mod *tables.Module) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).mod = mod
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, mod: mod})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

// loadStore tries the blob store below the decoded-module tier. A
// verify failure (the backend quarantined the entry) or a decode
// failure (a payload that is intact bytes but not a module — the entry
// is deleted) discards the entry and falls back to regeneration rather
// than surfacing an error.
func (s *Service) loadStore(ctx context.Context, key string) (*tables.Module, bool) {
	if s.store == nil {
		return nil, false
	}
	data, err := s.store.Get(ctx, key)
	if err != nil {
		var verr *blob.VerifyError
		if errors.As(err, &verr) {
			s.Stats.DiskBad.Add(1)
		}
		return nil, false
	}
	start := time.Now()
	var mod *tables.Module
	profiling.Phase("decode", func() {
		mod, err = tables.Decode(bytes.NewReader(data))
	})
	if err != nil {
		s.Stats.DiskBad.Add(1)
		_ = s.store.Delete(ctx, key)
		return nil, false
	}
	s.Stats.DecodeNanos.Add(int64(time.Since(start)))
	s.Stats.DiskHits.Add(1)
	return mod, true
}

// storeBlob publishes an encoded module into the blob store under its
// key and — when this service fronts an on-disk store — upserts the
// index sidecar row so `cogg cache ls|gc|verify` can map the digest
// back to its specification.
func (s *Service) storeBlob(ctx context.Context, key, specName string, mod *tables.Module) error {
	if s.store == nil {
		return nil
	}
	var buf bytes.Buffer
	if _, err := tables.EncodeModule(&buf, mod); err != nil {
		return err
	}
	if err := s.store.Put(ctx, key, buf.Bytes()); err != nil {
		return err
	}
	s.Stats.DiskBytes.Add(int64(buf.Len()))
	if s.indexDir != "" {
		// Index drift is tolerable (the blobs are the truth); a failed
		// upsert degrades enumeration, not correctness.
		_ = blob.UpdateIndex(s.indexDir, blob.IndexEntry{
			Name:    specName,
			Version: tables.FormatVersion(),
			Kind:    "module",
			Key:     key,
			Content: blob.Sum(buf.Bytes()),
			Size:    int64(buf.Len()),
		})
	}
	return nil
}

// storeBlobRetry is storeBlob with the service's transient-fault retry
// schedule.
func (s *Service) storeBlobRetry(ctx context.Context, key, specName string, mod *tables.Module) error {
	err := s.storeBlob(ctx, key, specName, mod)
	for try := 0; err != nil && try < s.retries && transient(err); try++ {
		s.Stats.Retries.Add(1)
		time.Sleep(s.backoff << try)
		err = s.storeBlob(ctx, key, specName, mod)
	}
	return err
}
