package batch

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cogg/internal/faultinject"
	"cogg/internal/profiling"
	"cogg/internal/tables"
)

// Key derives the cache key for a specification: the hex SHA-256 over
// the table-module format version, the specification name, and the
// specification bytes. All three matter for staleness:
//
//   - a one-byte edit to the spec source must miss,
//   - two specs with identical text but different names are distinct
//     artifacts (diagnostics embed the name), and
//   - a format-version bump (the magic string in package tables) must
//     orphan every module serialized under the old encoding.
func Key(specName, specSrc string) string {
	return keyWith(tables.FormatVersion(), specName, specSrc)
}

// keyWith is Key with the format version injected — split out so the
// staleness tests can prove a version bump changes every key.
func keyWith(version, specName, specSrc string) string {
	h := sha256.New()
	var n [8]byte
	for _, part := range []string{version, specName, specSrc} {
		binary.LittleEndian.PutUint64(n[:], uint64(len(part)))
		h.Write(n[:])
		h.Write([]byte(part))
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// moduleLRU is the in-memory tier: decoded table modules by cache key,
// evicting least-recently-used beyond cap. Modules are immutable after
// decode, so one cached module may be handed to any number of callers.
type moduleLRU struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	byKey map[string]*list.Element
}

type lruEntry struct {
	key string
	mod *tables.Module
}

func newModuleLRU(capacity int) *moduleLRU {
	return &moduleLRU{cap: capacity, order: list.New(), byKey: map[string]*list.Element{}}
}

func (c *moduleLRU) get(key string) (*tables.Module, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).mod, true
}

func (c *moduleLRU) put(key string, mod *tables.Module) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).mod = mod
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, mod: mod})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

// diskPath places a cache entry inside the service's cache directory.
func (s *Service) diskPath(key string) string {
	return filepath.Join(s.dir, key+".cogtbl")
}

// loadDisk tries the on-disk tier. A decode failure — truncation,
// corruption, or a module serialized under a different format version
// (whose magic no longer matches) — discards the entry and falls back
// to regeneration rather than surfacing an error.
func (s *Service) loadDisk(key string) (*tables.Module, bool) {
	if s.dir == "" {
		return nil, false
	}
	if err := faultinject.Eval("batch/cache/read", key); err != nil {
		return nil, false
	}
	data, err := os.ReadFile(s.diskPath(key))
	if err != nil {
		return nil, false
	}
	start := time.Now()
	var mod *tables.Module
	profiling.Phase("decode", func() {
		mod, err = tables.Decode(bytes.NewReader(data))
	})
	if err != nil {
		s.Stats.DiskBad.Add(1)
		os.Remove(s.diskPath(key))
		return nil, false
	}
	s.Stats.DecodeNanos.Add(int64(time.Since(start)))
	s.Stats.DiskHits.Add(1)
	return mod, true
}

// storeDisk writes an encoded module under its key, atomically and
// crash-safely: the bytes land in a temporary file that is fsynced
// before the rename, and the parent directory is fsynced after it, so
// neither a crashed writer nor a power cut can leave a half-written
// entry at the final name — at worst an orphaned temp file survives,
// which the startup sweep reclaims (and the decoder's checksums would
// reject anyway).
func (s *Service) storeDisk(key string, mod *tables.Module) error {
	if s.dir == "" {
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	if _, err := tables.EncodeModule(&buf, mod); err != nil {
		return err
	}
	if err := faultinject.Eval("batch/cache/write", key); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// The data must be durable before the rename publishes the name:
	// otherwise a power cut can leave the final name pointing at blocks
	// that never reached the disk.
	if err := faultinject.Eval("batch/cache/sync", key); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := faultinject.Eval("batch/cache/rename", key); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.diskPath(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// And the rename itself must be durable: fsync the directory so the
	// new entry survives a crash. A failure here degrades, not corrupts
	// — the entry is good, its durability just is not proven.
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	s.Stats.DiskBytes.Add(int64(buf.Len()))
	return nil
}

// orphanMinAge guards the startup sweep against reaping a temp file a
// concurrent Service in another process is about to rename: only temps
// old enough that no live write can still own them are reclaimed.
const orphanMinAge = time.Minute

// sweepOrphans removes stale "*.tmp*" files left in the cache directory
// by writers that crashed between CreateTemp and Rename. Runs once at
// Service construction; the atomic-rename protocol guarantees orphans
// are invisible to loadDisk, so this is hygiene (disk space, inode
// clutter), not correctness.
func (s *Service) sweepOrphans() {
	if s.dir == "" {
		return
	}
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.tmp*"))
	if err != nil {
		return
	}
	now := time.Now()
	for _, path := range matches {
		fi, err := os.Stat(path)
		if err != nil || now.Sub(fi.ModTime()) < orphanMinAge {
			continue
		}
		if os.Remove(path) == nil {
			s.Stats.OrphansSwept.Add(1)
		}
	}
}

// storeDiskRetry is storeDisk with the service's transient-fault retry
// schedule.
func (s *Service) storeDiskRetry(key string, mod *tables.Module) error {
	err := s.storeDisk(key, mod)
	for try := 0; err != nil && try < s.retries && transient(err); try++ {
		s.Stats.Retries.Add(1)
		time.Sleep(s.backoff << try)
		err = s.storeDisk(key, mod)
	}
	return err
}
