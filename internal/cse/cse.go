// Package cse implements the code generator's common subexpression table
// (paper section 4.4). CSEs are detected and use-counted by the IF
// optimizer; the code generator records, for each CSE number, the
// register holding the computed value and the temporary storage location
// the shaper allocated for it. The temporary is used only if the register
// value must be given up: when a `modifies` operator invalidates the
// register home, the value is saved to storage and later `find_common`
// interpretations fall back to the memory home.
package cse

import (
	"fmt"
	"sort"
)

// Width is the storage format of a CSE's memory home.
type Width string

// Widths of the *_common declaration operators.
const (
	Full  Width = "full"
	Half  Width = "half"
	Byte  Width = "byte"
	Real  Width = "real"
	DReal Width = "dreal"
)

// Home is a base-displacement storage location.
type Home struct {
	Disp int64
	Base int
}

// Entry is one live common subexpression.
type Entry struct {
	ID    int64
	Uses  int // remaining uses
	Class string
	Reg   int // register home; -1 once invalidated
	Mem   Home
	Width Width
	Saved bool // value has been stored to the memory home
}

// InRegister reports whether the CSE still resides in a register.
func (e *Entry) InRegister() bool { return e.Reg >= 0 }

// Table tracks the live CSEs of one compilation unit. Each CSE number is
// unique throughout the compilation.
type Table struct {
	entries map[int64]*Entry
}

// New returns an empty table.
func New() *Table { return &Table{entries: make(map[int64]*Entry)} }

// Define records a newly established CSE.
func (t *Table) Define(id int64, uses int, class string, reg int, mem Home, w Width) (*Entry, error) {
	if _, dup := t.entries[id]; dup {
		return nil, fmt.Errorf("cse: common subexpression %d declared twice", id)
	}
	if uses < 0 {
		return nil, fmt.Errorf("cse: common subexpression %d has negative use count %d", id, uses)
	}
	e := &Entry{ID: id, Uses: uses, Class: class, Reg: reg, Mem: mem, Width: w}
	t.entries[id] = e
	return e, nil
}

// Find returns the entry for id.
func (t *Table) Find(id int64) (*Entry, bool) {
	e, ok := t.entries[id]
	return e, ok
}

// Use consumes one use of the CSE and reports whether any remain.
func (t *Table) Use(id int64) (*Entry, bool, error) {
	e, ok := t.entries[id]
	if !ok {
		return nil, false, fmt.Errorf("cse: use of undeclared common subexpression %d", id)
	}
	if e.Uses <= 0 {
		return nil, false, fmt.Errorf("cse: common subexpression %d used more often than its use count", id)
	}
	e.Uses--
	if e.Uses == 0 {
		delete(t.entries, id)
		return e, false, nil
	}
	return e, true, nil
}

// HeldIn returns the live entries whose register home is (class, reg),
// in CSE-number order. The order is part of the output contract: a
// `modifies` that evicts several CSEs from one register emits one save
// per entry, and those stores must land identically on every
// translation of the same unit.
func (t *Table) HeldIn(class string, reg int) []*Entry {
	var out []*Entry
	for _, e := range t.entries {
		if e.Reg == reg && e.Class == class {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MoveReg rewrites register homes after an eviction copy.
func (t *Table) MoveReg(class string, from, to int) {
	for _, e := range t.entries {
		if e.Class == class && e.Reg == from {
			e.Reg = to
		}
	}
}

// Invalidate removes the register home of entry e; subsequent uses go to
// the memory home.
func (t *Table) Invalidate(e *Entry) { e.Reg = -1 }

// Live returns the number of live entries.
func (t *Table) Live() int { return len(t.entries) }

// Reset clears the table between compilation units, keeping the map's
// bucket storage so a warmed-up table resets without allocating.
func (t *Table) Reset() { clear(t.entries) }
