package cse

import "testing"

func TestDefineFindUse(t *testing.T) {
	tbl := New()
	e, err := Define3(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := tbl.Find(7); !ok || got != e {
		t.Fatal("Find after Define failed")
	}
	if tbl.Live() != 1 {
		t.Errorf("Live = %d", tbl.Live())
	}
	// Three uses: the first two keep it live, the third removes it.
	for i := 0; i < 2; i++ {
		got, more, err := tbl.Use(7)
		if err != nil || !more || got != e {
			t.Fatalf("use %d: %v %v", i, more, err)
		}
	}
	if _, more, err := tbl.Use(7); err != nil || more {
		t.Fatalf("final use: more=%v err=%v", more, err)
	}
	if tbl.Live() != 0 {
		t.Errorf("Live after exhaustion = %d", tbl.Live())
	}
	if _, _, err := tbl.Use(7); err == nil {
		t.Error("use after exhaustion succeeded")
	}
}

// Define3 installs cse 7 with three uses in register r5.
func Define3(tbl *Table) (*Entry, error) {
	return tbl.Define(7, 3, "r", 5, Home{Disp: 500, Base: 13}, Full)
}

func TestDefineErrors(t *testing.T) {
	tbl := New()
	if _, err := Define3(tbl); err != nil {
		t.Fatal(err)
	}
	if _, err := Define3(tbl); err == nil {
		t.Error("duplicate definition accepted")
	}
	if _, err := tbl.Define(8, -1, "r", 1, Home{}, Full); err == nil {
		t.Error("negative use count accepted")
	}
	if _, _, err := tbl.Use(99); err == nil {
		t.Error("use of undeclared CSE accepted")
	}
}

func TestHeldInAndInvalidate(t *testing.T) {
	tbl := New()
	e, _ := Define3(tbl)
	if got := tbl.HeldIn("r", 5); len(got) != 1 || got[0] != e {
		t.Fatalf("HeldIn: %v", got)
	}
	if got := tbl.HeldIn("r", 6); len(got) != 0 {
		t.Fatalf("HeldIn wrong register: %v", got)
	}
	if got := tbl.HeldIn("f", 5); len(got) != 0 {
		t.Fatalf("HeldIn wrong class: %v", got)
	}
	tbl.Invalidate(e)
	if e.InRegister() {
		t.Error("still register resident after Invalidate")
	}
	if got := tbl.HeldIn("r", 5); len(got) != 0 {
		t.Errorf("HeldIn after invalidate: %v", got)
	}
	// Memory home survives.
	if e.Mem.Disp != 500 || e.Mem.Base != 13 {
		t.Errorf("memory home lost: %+v", e.Mem)
	}
}

func TestMoveReg(t *testing.T) {
	tbl := New()
	e, _ := Define3(tbl)
	tbl.MoveReg("r", 5, 9)
	if e.Reg != 9 {
		t.Errorf("register home after eviction move: %d", e.Reg)
	}
	tbl.MoveReg("f", 9, 2) // other class: no effect
	if e.Reg != 9 {
		t.Errorf("cross-class move applied: %d", e.Reg)
	}
}

func TestReset(t *testing.T) {
	tbl := New()
	Define3(tbl)
	tbl.Reset()
	if tbl.Live() != 0 {
		t.Error("Reset left entries")
	}
	if _, err := Define3(tbl); err != nil {
		t.Errorf("redefinition after Reset: %v", err)
	}
}
