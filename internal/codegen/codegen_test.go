package codegen_test

import (
	"strings"
	"testing"

	"cogg/internal/asm"
	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/ir"
	"cogg/internal/labels"
	"cogg/internal/loader"
	"cogg/internal/rt370"
	"cogg/internal/s370/sim"
)

// miniSpec is a small but complete specification exercising loads, adds
// with memory operands (maximal munch), stores, compares, branches, and
// labels.
const miniSpec = `
$Non-terminals
 r = register
 cc = condition
$Terminals
 dsp = displacement
 lbl = label
 cond = condition_mask
$Operators
 fullword, iadd, isub, assign, icompare, branch_op, label_def
$Opcodes
 l, st, a, s, ar, sr, cr, c, lr
$Constants
 using, need, modifies, branch, label_location, skip, ignore_lhs
 zero = 0, fifteen = 15
$Productions
r.2 ::= fullword dsp.1 r.1
 using r.2
 l r.2,dsp.1(zero,r.1)
r.1 ::= iadd r.1 r.2
 modifies r.1
 ar r.1,r.2
r.2 ::= iadd r.2 fullword dsp.1 r.1
 modifies r.2
 a r.2,dsp.1(zero,r.1)
r.2 ::= iadd fullword dsp.1 r.1 r.2
 modifies r.2
 a r.2,dsp.1(zero,r.1)
r.1 ::= isub r.1 r.2
 modifies r.1
 sr r.1,r.2
r.2 ::= isub r.2 fullword dsp.1 r.1
 modifies r.2
 s r.2,dsp.1(zero,r.1)
lambda ::= assign fullword dsp.1 r.1 r.2
 st r.2,dsp.1(zero,r.1)
cc.1 ::= icompare r.1 r.2
 using cc.1
 cr r.1,r.2
cc.1 ::= icompare r.2 fullword dsp.1 r.1
 using cc.1
 c r.2,dsp.1(zero,r.1)
lambda ::= branch_op lbl.1 cond.1 cc.1
 using r.3
 branch cond.1,lbl.1,r.3
lambda ::= branch_op lbl.1
 using r.3
 branch fifteen,lbl.1,r.3
lambda ::= label_def lbl.1
 label_location lbl.1
`

func buildMini(t *testing.T) *codegen.Generator {
	t.Helper()
	cg, err := core.Generate("mini.cogg", miniSpec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	gen, err := cg.NewGenerator(rt370.Config())
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return gen
}

func mustTokens(t *testing.T, text string) []ir.Token {
	t.Helper()
	toks, err := ir.ParseTokens(text)
	if err != nil {
		t.Fatalf("ParseTokens: %v", err)
	}
	return toks
}

// TestAddStatement reproduces the paper's introductory example: for
// A := A + B the generator emits load, add, store.
func TestAddStatement(t *testing.T) {
	gen := buildMini(t)
	// assign fullword(dsp.100, r.13), iadd(fullword(dsp.100,r.13), fullword(dsp.104,r.13))
	toks := mustTokens(t, "assign fullword dsp.100 r.13 iadd fullword dsp.100 r.13 fullword dsp.104 r.13")
	prog, res, err := gen.Generate("ADD", toks)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var ops []string
	for i := range prog.Instrs {
		ops = append(ops, prog.Instrs[i].Op)
	}
	want := []string{"l", "a", "st"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Fatalf("emitted %v, want %v", ops, want)
	}
	if res.Reductions == 0 {
		t.Fatal("no reductions recorded")
	}
	// The add-from-memory production must win over load-then-AR
	// (maximal munch / longest right side).
	if prog.Instrs[1].Op != "a" {
		t.Fatalf("expected storage add, got %q", prog.Instrs[1].Op)
	}
}

// TestExecution runs generated code in the simulator: C := (A + B) - D.
func TestExecution(t *testing.T) {
	gen := buildMini(t)
	toks := mustTokens(t,
		"assign fullword dsp.108 r.13 isub iadd fullword dsp.100 r.13 fullword dsp.104 r.13 fullword dsp.112 r.13")
	prog, _, err := gen.Generate("EXEC", toks)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	appendReturn(prog)
	c := runProgramWith(t, prog, map[int]int32{100: 10, 104: 21, 112: 4})
	got, err := c.Word(uint32(rt370.DataOrigin + 108))
	if err != nil {
		t.Fatal(err)
	}
	if got != 27 {
		t.Fatalf("C = %d, want 27", got)
	}
}

// TestBranching compiles a conditional: if A < B then C := 1 flavor IF,
// expressed directly in IF tokens, and executes both arms.
func TestBranching(t *testing.T) {
	gen := buildMini(t)
	source := "branch_op lbl.1 cond.10 icompare fullword dsp.100 r.13 fullword dsp.104 r.13 " +
		// then-arm: C := A
		"assign fullword dsp.108 r.13 fullword dsp.100 r.13 " +
		"branch_op lbl.2 " +
		"label_def lbl.1 " +
		// else-arm: C := B
		"assign fullword dsp.108 r.13 fullword dsp.104 r.13 " +
		"label_def lbl.2"
	// cond.10 = mask 10 (not low): branch to else when A >= B.
	toks := mustTokens(t, source)
	prog, _, err := gen.Generate("BR", toks)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	appendReturn(prog)

	c := runProgram(t, prog) // A=10 < B=21: fall through, C := A
	got, _ := c.Word(uint32(rt370.DataOrigin + 108))
	if got != 10 {
		t.Fatalf("C = %d, want 10 (then-arm)", got)
	}

	// Second run with A >= B.
	c2 := runProgramWith(t, prog, map[int]int32{100: 50, 104: 21})
	got2, _ := c2.Word(uint32(rt370.DataOrigin + 108))
	if got2 != 21 {
		t.Fatalf("C = %d, want 21 (else-arm)", got2)
	}
}

// appendReturn adds the conventional `bcr 15,r14` epilogue.
func appendReturn(prog *asm.Program) {
	prog.Append(asm.Instr{Op: "bcr", Opds: []asm.Operand{asm.I(15), asm.R(14)}})
}

func runProgram(t *testing.T, prog *asm.Program) *sim.CPU {
	return runProgramWith(t, prog, map[int]int32{100: 10, 104: 21})
}

func runProgramWith(t *testing.T, prog *asm.Program, vars map[int]int32) *sim.CPU {
	t.Helper()
	m := rt370.Machine()
	if err := labels.Layout(prog, m); err != nil {
		t.Fatalf("Layout: %v", err)
	}
	deck, err := loader.Build(prog, m)
	if err != nil {
		t.Fatalf("loader.Build: %v", err)
	}
	c, err := rt370.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	if err := deck.LoadInto(c.Mem, 0); err != nil {
		t.Fatalf("LoadInto: %v", err)
	}
	for off, v := range vars {
		if err := c.SetWord(uint32(rt370.DataOrigin+off), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(100000); err != nil {
		t.Fatalf("Run: %v\nlisting:\n%s", err, asm.Listing(prog, m))
	}
	return c
}
