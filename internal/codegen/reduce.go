package codegen

import (
	"fmt"

	"cogg/internal/asm"
	"cogg/internal/faultinject"
	"cogg/internal/grammar"
	"cogg/internal/ir"
)

// reduction is the transient state of one execution of the code emission
// routine.
type reduction struct {
	prod   *grammar.Prod
	bind   map[grammar.Ref]int64 // resolved value of every tagged occurrence
	popped []stackEntry

	// allocated tracks registers allocated for this production by
	// `using`/`need`; consumed members (push_odd, find_common) are
	// removed so the leftovers can be released at the end.
	allocated map[grammar.Ref]bool

	ignoreLHS bool
	// pushed lists tokens prefixed to the input by the templates
	// (push_odd, find_common), in prefix order.
	pushed []ir.Token
}

// reduce executes the code emission routine for production p, following
// the structure of the paper's section 3 pseudo-code.
func (r *run) reduce(p *grammar.Prod) error {
	if err := faultinject.Eval("codegen/reduce", r.prog.Name); err != nil {
		return err
	}
	r.ra.Tick()
	r.res.Reductions++
	r.res.ProdCounts[p.Num]++

	// Remove the current production from the parse stack.
	n := len(p.RHS)
	if len(r.stack)-1 < n {
		return &GenError{Pos: r.input.pos, State: r.top().state,
			Msg: fmt.Sprintf("reduce of production %d needs %d stack symbols, have %d", p.Num, n, len(r.stack)-1)}
	}
	red := &reduction{
		prod:      p,
		bind:      make(map[grammar.Ref]int64),
		popped:    append([]stackEntry(nil), r.stack[len(r.stack)-n:]...),
		allocated: make(map[grammar.Ref]bool),
	}
	r.stack = r.stack[:len(r.stack)-n]
	for i, sym := range p.RHS {
		if tag := p.RHSTags[i]; tag >= 0 {
			red.bind[grammar.Ref{Sym: sym, Tag: tag}] = red.popped[i].val
		}
	}

	// Allocate all requested registers at once, before acting on any
	// template (paper section 4.1).
	if err := r.allocate(red); err != nil {
		return err
	}

	// Fill in required values and act on each associated template.
	r.pendingSkips = r.pendingSkips[:0]
	for ti := range p.Templates {
		t := &p.Templates[ti]
		if t.Semantic {
			if err := r.intervene(red, t); err != nil {
				return r.templateErr(p, t, err)
			}
			continue
		}
		in, err := r.buildInstr(red, t)
		if err != nil {
			return r.templateErr(p, t, err)
		}
		r.emit(in)
	}
	if len(r.pendingSkips) > 0 {
		// A trailing skip may legitimately complete at the end of the
		// production's sequence; anything else is a template error.
		for _, ps := range r.pendingSkips {
			if ps.remaining > 0 {
				return &GenError{Pos: r.input.pos, State: r.top().state,
					Msg: fmt.Sprintf("production %d: skip of %d instructions extends past its template sequence", p.Num, ps.remaining)}
			}
		}
		r.pendingSkips = r.pendingSkips[:0]
	}

	// Release operand registers consumed from the parse stack, keeping
	// the occurrence the left side reuses.
	lambda := r.gr.IsLambda(p.LHS)
	pushLHS := !lambda && !red.ignoreLHS
	var lhsClass string
	var lhsVal int64
	if pushLHS {
		lhsClass = r.g.classOf(p.LHS)
		v, ok := red.bind[grammar.Ref{Sym: p.LHS, Tag: p.LHSTag}]
		if !ok {
			// Class-conversion production ("r.l ::= d.l"): the value of
			// the same-tagged right-side nonterminal transfers.
			for ref, rv := range red.bind {
				if ref.Tag == p.LHSTag && r.gr.KindOf(ref.Sym) == grammar.Nonterminal {
					v, ok = rv, true
				}
			}
		}
		if !ok {
			return &GenError{Pos: r.input.pos, State: r.top().state,
				Msg: fmt.Sprintf("production %d: left side %s.%d has no value", p.Num, r.gr.SymName(p.LHS), p.LHSTag)}
		}
		lhsVal = v
	}
	keptLHS := false
	for i, e := range red.popped {
		class := r.g.classOf(p.RHS[i])
		if class == "" {
			continue
		}
		if pushLHS && !keptLHS && class == lhsClass && e.val == lhsVal {
			keptLHS = true
			continue
		}
		r.ra.DecUse(class, int(e.val))
	}
	// The LHS register was allocated for this production; its single use
	// transfers to the prefixed token.
	if pushLHS {
		delete(red.allocated, grammar.Ref{Sym: p.LHS, Tag: p.LHSTag})
	}

	// Release transient registers: scratch registers for skips and long
	// branches, linkage registers taken with `need`.
	for ref := range red.allocated {
		class := r.g.classOf(ref.Sym)
		if class == "" {
			continue
		}
		v := red.bind[ref]
		if r.g.pairClass[class] {
			if err := r.ra.FreePair(class, int(v)); err != nil {
				return err
			}
			continue
		}
		r.ra.DecUse(class, int(v))
	}

	// Prefix the LHS (and any tokens pushed by the templates) to the
	// input stream. Lambda productions complete a statement: the parse
	// stack must be back at the bottom.
	if pushLHS {
		red.pushed = append(red.pushed, ir.Token{Sym: r.gr.SymName(p.LHS), Val: lhsVal})
	}
	if len(red.pushed) > 0 {
		r.input.prefix(red.pushed...)
	}
	if lambda && len(r.stack) != 1 {
		return &GenError{Pos: r.input.pos, State: r.top().state,
			Msg: fmt.Sprintf("statement production %d reduced with %d symbols still on the parse stack", p.Num, len(r.stack)-1)}
	}
	return nil
}

// allocate performs the up-front register allocation for one production.
func (r *run) allocate(red *reduction) error {
	for _, ref := range red.prod.Uses {
		class := r.g.classOf(ref.Sym)
		if class == "" {
			return fmt.Errorf("codegen: using %s.%d: not a register class", r.gr.SymName(ref.Sym), ref.Tag)
		}
		n, err := r.ra.Using(class)
		if err != nil {
			return &ResourceError{Kind: ResRegisters, Pos: r.input.pos, State: r.top().state,
				Msg: fmt.Sprintf("production %d: %v", red.prod.Num, err)}
		}
		red.bind[ref] = int64(n)
		red.allocated[ref] = true
	}
	for _, ref := range red.prod.Needs {
		class := r.g.classOf(ref.Sym)
		if class == "" {
			return fmt.Errorf("codegen: need %s.%d: not a register class", r.gr.SymName(ref.Sym), ref.Tag)
		}
		moves, err := r.ra.Need(class, ref.Tag)
		if err != nil {
			return &ResourceError{Kind: ResRegisters, Pos: r.input.pos, State: r.top().state,
				Msg: fmt.Sprintf("production %d: %v", red.prod.Num, err)}
		}
		for _, mv := range moves {
			if err := r.materializeMove(red, mv.Class, mv.From, mv.To); err != nil {
				return err
			}
		}
		red.bind[ref] = int64(ref.Tag)
		red.allocated[ref] = true
	}
	return nil
}

// materializeMove emits the register copy for a `need` eviction and
// rewrites every holder of the old register: the translation stack, the
// pushback queue, the current bindings, and the CSE table.
func (r *run) materializeMove(red *reduction, class string, from, to int) error {
	op, ok := r.g.cfg.MoveOp[class]
	if !ok {
		return fmt.Errorf("codegen: no move opcode configured for register class %q", class)
	}
	r.emit(asm.Instr{Op: op, Opds: []asm.Operand{asm.R(to), asm.R(from)},
		Comment: fmt.Sprintf("evicted for need r%d", from)})
	symName := class // nonterminal name is the class name
	for i := range r.stack {
		if r.gr.SymName(r.stack[i].sym) == symName && r.stack[i].val == int64(from) {
			r.stack[i].val = int64(to)
		}
	}
	for i := range red.popped {
		if r.gr.SymName(red.popped[i].sym) == symName && red.popped[i].val == int64(from) {
			red.popped[i].val = int64(to)
		}
	}
	for ref, v := range red.bind {
		if v == int64(from) && r.g.classOf(ref.Sym) == class {
			red.bind[ref] = int64(to)
		}
	}
	r.input.rewriteRegs(symName, int64(from), int64(to))
	r.cses.MoveReg(class, from, to)
	return nil
}

// emit appends one instruction to the code buffer, resolving pending
// skip targets and stamping the source statement number. The code
// buffer is bounded: past Config.MaxCodeBytes a sticky ResourceError is
// recorded for the parse loop to surface (emit itself has no error
// return — the template paths call it unconditionally).
func (r *run) emit(in asm.Instr) int {
	in.Stmt = r.stmtNum
	if sz, err := r.g.cfg.Machine.SizeOf(&in); err == nil {
		r.codeBytes += sz
	} else {
		r.codeBytes += 6 // the longest S/370 instruction; a safe overestimate
	}
	if max := r.g.maxCodeBytes(); r.codeBytes > max && r.codeErr == nil {
		r.codeErr = &ResourceError{Kind: ResCodeBytes, Limit: max, Pos: r.input.pos,
			State: r.top().state,
			Msg:   fmt.Sprintf("code buffer exceeds %d bytes", max)}
	}
	ix := r.prog.Append(in)
	for i := range r.pendingSkips {
		ps := &r.pendingSkips[i]
		if ps.remaining > 0 {
			ps.remaining--
			if ps.remaining == 0 {
				// The label lands after this instruction.
				_ = r.prog.DefineLabel(ps.label, ix+1)
			}
		}
	}
	return ix
}

func (r *run) templateErr(p *grammar.Prod, t *grammar.Template, err error) error {
	if _, ok := err.(*GenError); ok {
		return err
	}
	return &GenError{Pos: r.input.pos, State: r.top().state,
		Msg: fmt.Sprintf("production %d, template %q (line %d): %v", p.Num, r.gr.SymName(t.Op), t.Line, err)}
}
