package codegen

import (
	"fmt"
	"time"

	"cogg/internal/asm"
	"cogg/internal/faultinject"
	"cogg/internal/ir"
)

// reduce executes the code emission routine for production index pi,
// following the structure of the paper's section 3 pseudo-code. All
// per-reduction state lives in scratch buffers on the run (the slot
// array, the allocation marks, the pushback staging buffer), and the
// popped right side aliases the truncated parse-stack tail — nothing is
// pushed onto the parse stack until the reduction completes — so a
// steady-state reduction performs no heap allocation.
func (r *run) reduce(pi int) error {
	pl := &r.g.plans[pi]
	p := pl.prod
	if err := faultinject.Eval("codegen/reduce", r.prog.Name); err != nil {
		return err
	}
	r.ra.Tick()
	r.res.Reductions++
	r.res.ProdCounts[p.Num]++
	r.curPlan = pl

	// Remove the current production from the parse stack.
	n := len(p.RHS)
	if len(r.stack)-1 < n {
		return &GenError{Pos: r.input.pos, State: r.top().state,
			Msg: fmt.Sprintf("reduce of production %d needs %d stack symbols, have %d", p.Num, n, len(r.stack)-1)}
	}
	r.popped = r.stack[len(r.stack)-n:]
	r.stack = r.stack[:len(r.stack)-n]
	for i, s := range pl.rhsSlot {
		if s >= 0 {
			r.slots[s] = r.popped[i].val
		}
	}
	for i := 0; i < pl.nslots; i++ {
		r.allocMark[i] = false
	}
	r.ignoreLHS = false
	r.pushed = r.pushed[:0]

	// Allocate all requested registers at once, before acting on any
	// template (paper section 4.1). When timed, the allocate and the
	// template steps accumulate into the regalloc and emit phases; the
	// clock reads cost two time.Now calls per reduction and no
	// allocation, so the instrumented hot path stays zero-alloc.
	var t0 time.Time
	if r.timed {
		t0 = time.Now()
	}
	if err := r.allocate(pl); err != nil {
		return err
	}
	if r.timed {
		now := time.Now()
		r.regallocNS += now.Sub(t0).Nanoseconds()
		t0 = now
	}

	// Fill in required values and act on each associated template.
	r.pendingSkips = r.pendingSkips[:0]
	for si := range pl.steps {
		st := &pl.steps[si]
		r.curStep = st
		if st.op != semMachine {
			if err := r.intervene(pl, st); err != nil {
				return r.templateErr(pl, st, err)
			}
			continue
		}
		if err := r.emitMachine(st); err != nil {
			return r.templateErr(pl, st, err)
		}
	}
	r.curStep = nil
	if r.timed {
		r.emitNS += time.Since(t0).Nanoseconds()
	}
	if len(r.pendingSkips) > 0 {
		// A trailing skip may legitimately complete at the end of the
		// production's sequence; anything else is a template error.
		for _, ps := range r.pendingSkips {
			if ps.remaining > 0 {
				return &GenError{Pos: r.input.pos, State: r.top().state,
					Msg: fmt.Sprintf("production %d: skip of %d instructions extends past its template sequence", p.Num, ps.remaining)}
			}
		}
		r.pendingSkips = r.pendingSkips[:0]
	}

	// Release operand registers consumed from the parse stack, keeping
	// the occurrence the left side reuses.
	pushLHS := !pl.lambda && !r.ignoreLHS
	var lhsVal int64
	if pushLHS {
		slot := pl.lhsSlot
		if slot < 0 {
			slot = pl.lhsFallback
		}
		if slot < 0 {
			return &GenError{Pos: r.input.pos, State: r.top().state,
				Msg: fmt.Sprintf("production %d: left side %s.%d has no value", p.Num, pl.lhsName, pl.lhsTag)}
		}
		lhsVal = r.slots[slot]
	}
	keptLHS := false
	for i := range r.popped {
		class := pl.rhsClass[i]
		if class == "" {
			continue
		}
		if pushLHS && !keptLHS && class == pl.lhsClass && r.popped[i].val == lhsVal {
			keptLHS = true
			continue
		}
		r.ra.DecUse(class, int(r.popped[i].val))
	}
	// The LHS register was allocated for this production; its single use
	// transfers to the prefixed token.
	if pushLHS && pl.lhsSlot >= 0 {
		r.allocMark[pl.lhsSlot] = false
	}

	// Release transient registers: scratch registers for skips and long
	// branches, linkage registers taken with `need`.
	for si := 0; si < pl.nslots; si++ {
		if !r.allocMark[si] {
			continue
		}
		class := pl.slotClass[si]
		if class == "" {
			continue
		}
		v := r.slots[si]
		if r.g.pairClass[class] {
			if err := r.ra.FreePair(class, int(v)); err != nil {
				return err
			}
			continue
		}
		r.ra.DecUse(class, int(v))
	}

	// Prefix the LHS (and any tokens pushed by the templates) to the
	// input stream. Lambda productions complete a statement: the parse
	// stack must be back at the bottom.
	if pushLHS {
		r.pushed = append(r.pushed, ir.Token{Sym: pl.lhsName, Val: lhsVal})
	}
	if len(r.pushed) > 0 {
		r.input.prefix(r.pushed...)
	}
	if pl.lambda && len(r.stack) != 1 {
		return &GenError{Pos: r.input.pos, State: r.top().state,
			Msg: fmt.Sprintf("statement production %d reduced with %d symbols still on the parse stack", p.Num, len(r.stack)-1)}
	}
	return nil
}

// allocate performs the up-front register allocation for one production.
func (r *run) allocate(pl *prodPlan) error {
	for i := range pl.uses {
		u := &pl.uses[i]
		if u.class == "" {
			return fmt.Errorf("codegen: using %s.%d: not a register class", r.gr.SymName(u.ref.Sym), u.ref.Tag)
		}
		n, err := r.ra.Using(u.class)
		if err != nil {
			return &ResourceError{Kind: ResRegisters, Pos: r.input.pos, State: r.top().state,
				Msg: fmt.Sprintf("production %d: %v", pl.prod.Num, err)}
		}
		r.slots[u.slot] = int64(n)
		r.allocMark[u.slot] = true
	}
	for i := range pl.needs {
		nd := &pl.needs[i]
		if nd.class == "" {
			return fmt.Errorf("codegen: need %s.%d: not a register class", r.gr.SymName(nd.ref.Sym), nd.ref.Tag)
		}
		mv, evicted, err := r.ra.Need(nd.class, nd.ref.Tag)
		if err != nil {
			return &ResourceError{Kind: ResRegisters, Pos: r.input.pos, State: r.top().state,
				Msg: fmt.Sprintf("production %d: %v", pl.prod.Num, err)}
		}
		if evicted {
			if err := r.materializeMove(pl, mv.Class, mv.From, mv.To); err != nil {
				return err
			}
		}
		r.slots[nd.slot] = int64(nd.ref.Tag)
		r.allocMark[nd.slot] = true
	}
	return nil
}

// materializeMove emits the register copy for a `need` eviction and
// rewrites every holder of the old register: the translation stack, the
// popped right side, the pushback queue, the current bindings, and the
// CSE table.
func (r *run) materializeMove(pl *prodPlan, class string, from, to int) error {
	op, ok := r.g.cfg.MoveOp[class]
	if !ok {
		return fmt.Errorf("codegen: no move opcode configured for register class %q", class)
	}
	opds := r.arena.alloc(2)
	opds[0] = asm.R(to)
	opds[1] = asm.R(from)
	r.provMove = true
	r.emit(asm.Instr{Op: op, Opds: opds, Comment: evictComment(from)})
	r.provMove = false
	symID := r.g.classSym[class] // nonterminal id: its name is the class name
	for i := range r.stack {
		if r.stack[i].sym == symID && r.stack[i].val == int64(from) {
			r.stack[i].val = int64(to)
		}
	}
	for i := range r.popped {
		if r.popped[i].sym == symID && r.popped[i].val == int64(from) {
			r.popped[i].val = int64(to)
		}
	}
	for si := 0; si < pl.nslots; si++ {
		if r.slots[si] == int64(from) && pl.slotClass[si] == class {
			r.slots[si] = int64(to)
		}
	}
	r.input.rewriteRegs(class, int64(from), int64(to))
	r.cses.MoveReg(class, from, to)
	return nil
}

// emit appends one instruction to the code buffer, resolving pending
// skip targets and stamping the source statement number. The code
// buffer is bounded: past Config.MaxCodeBytes a sticky ResourceError is
// recorded for the parse loop to surface (emit itself has no error
// return — the template paths call it unconditionally). The instruction
// is appended before sizing so the Machine reads it in place, keeping
// the argument from escaping to the heap.
func (r *run) emit(in asm.Instr) int {
	in.Stmt = r.stmtNum
	ix := r.prog.Append(in)
	if sz, err := r.g.cfg.Machine.SizeOf(&r.prog.Instrs[ix]); err == nil {
		r.codeBytes += sz
	} else {
		r.codeBytes += 6 // the longest S/370 instruction; a safe overestimate
	}
	if max := r.g.maxCodeBytes(); r.codeBytes > max && r.codeErr == nil {
		r.codeErr = &ResourceError{Kind: ResCodeBytes, Limit: max, Pos: r.input.pos,
			State: r.top().state,
			Msg:   fmt.Sprintf("code buffer exceeds %d bytes", max)}
	}
	for i := range r.pendingSkips {
		ps := &r.pendingSkips[i]
		if ps.remaining > 0 {
			ps.remaining--
			if ps.remaining == 0 {
				// The label lands after this instruction.
				_ = r.prog.DefineLabel(ps.label, ix+1)
			}
		}
	}
	if r.provEnabled {
		r.recordProv(ix)
	}
	return ix
}

func (r *run) templateErr(pl *prodPlan, st *tmplStep, err error) error {
	if _, ok := err.(*GenError); ok {
		return err
	}
	return &GenError{Pos: r.input.pos, State: r.top().state,
		Msg: fmt.Sprintf("production %d, template %q (line %d): %v", pl.prod.Num, st.name, st.t.Line, err)}
}
