package codegen

import (
	"fmt"
	"time"

	"cogg/internal/asm"
	"cogg/internal/faultinject"
	"cogg/internal/ir"
)

// reduce executes the code emission routine for production index pi,
// following the structure of the paper's section 3 pseudo-code. All
// per-reduction state lives in scratch buffers on the run (the slot
// array, the allocation marks, the pushback staging buffer), and the
// popped right side aliases the truncated parse-stack tail — nothing is
// pushed onto the parse stack until the reduction completes — so a
// steady-state reduction performs no heap allocation.
//
// The routine is split into cores (beginReduce, the allocation cores,
// endReduce) shared with the emitted engine: a generated reduction site
// (see internal/emitgo) performs the same sequence with the plan data
// baked in as constants, calling the identical cores for everything
// that touches run state, so interpreted and emitted output stay
// byte-identical by construction.
func (r *run) reduce(pi int) error {
	pl := &r.g.plans[pi]
	p := pl.prod
	r.curPlan = pl
	if err := r.beginReduce(p.Num, len(p.RHS), pl.nslots); err != nil {
		return err
	}
	for i, s := range pl.rhsSlot {
		if s >= 0 {
			r.slots[s] = r.popped[i].val
		}
	}

	// Allocate all requested registers at once, before acting on any
	// template (paper section 4.1).
	if err := r.allocate(pl); err != nil {
		return err
	}
	r.endAllocPhase()

	// Fill in required values and act on each associated template.
	for si := range pl.steps {
		st := &pl.steps[si]
		r.curStep = st
		if st.op != semMachine {
			if err := r.intervene(pl, st); err != nil {
				return r.templateErr(pl, st, err)
			}
			continue
		}
		if err := r.emitMachine(st); err != nil {
			return r.templateErr(pl, st, err)
		}
	}
	r.curStep = nil
	r.endEmitPhase()
	if err := r.checkTrailingSkips(p.Num); err != nil {
		return err
	}
	return r.endReduce(&pl.tail)
}

// beginReduce opens one reduction: the chaos failpoint, the statistics
// counters, popping the production's right side off the parse stack,
// and resetting the per-reduction scratch. When timed, it also opens
// the regalloc phase clock; the allocate and the template steps
// accumulate into the regalloc and emit phases through endAllocPhase
// and endEmitPhase. The clock reads cost two time.Now calls per
// reduction and no allocation, so the instrumented hot path stays
// zero-alloc.
func (r *run) beginReduce(prodNum, rhsLen, nslots int) error {
	if err := faultinject.Eval("codegen/reduce", r.prog.Name); err != nil {
		return err
	}
	r.ra.Tick()
	r.res.Reductions++
	r.res.ProdCounts[prodNum]++

	if len(r.stack)-1 < rhsLen {
		return &GenError{Pos: r.input.pos, State: r.top().state,
			Msg: fmt.Sprintf("reduce of production %d needs %d stack symbols, have %d", prodNum, rhsLen, len(r.stack)-1)}
	}
	r.popped = r.stack[len(r.stack)-rhsLen:]
	r.stack = r.stack[:len(r.stack)-rhsLen]
	for i := 0; i < nslots; i++ {
		r.allocMark[i] = false
	}
	r.ignoreLHS = false
	r.pushed = r.pushed[:0]
	r.pendingSkips = r.pendingSkips[:0]
	if r.timed {
		r.phaseT0 = time.Now()
	}
	return nil
}

// endAllocPhase closes the regalloc phase and opens the emit phase.
func (r *run) endAllocPhase() {
	if r.timed {
		now := time.Now()
		r.regallocNS += now.Sub(r.phaseT0).Nanoseconds()
		r.phaseT0 = now
	}
}

// endEmitPhase closes the emit phase opened by endAllocPhase.
func (r *run) endEmitPhase() {
	if r.timed {
		r.emitNS += time.Since(r.phaseT0).Nanoseconds()
	}
}

// checkTrailingSkips verifies that no skip jumped past the end of the
// production's template sequence. A trailing skip may legitimately
// complete at the end of the sequence; anything else is a template
// error.
func (r *run) checkTrailingSkips(prodNum int) error {
	if len(r.pendingSkips) > 0 {
		for _, ps := range r.pendingSkips {
			if ps.remaining > 0 {
				return &GenError{Pos: r.input.pos, State: r.top().state,
					Msg: fmt.Sprintf("production %d: skip of %d instructions extends past its template sequence", prodNum, ps.remaining)}
			}
		}
		r.pendingSkips = r.pendingSkips[:0]
	}
	return nil
}

// ReduceTail is the static release/push data of one production's
// reduction epilogue: which popped operand registers to release, which
// occurrence the left side reuses, and the transient slots to free. The
// interpreter stores one per compiled plan; an emitted engine bakes
// them in as package data.
type ReduceTail struct {
	ProdNum int
	Lambda  bool

	LHSClass    string
	LHSName     string
	LHSTag      int
	LHSSlot     int32 // slot of the {LHS, LHSTag} reference, -1 when unbound
	LHSFallback int32 // class-conversion source slot, -1 when none

	RHSClass  []string // RHS position -> register class name, "" when none
	SlotClass []string // slot -> register class name, "" when none
}

// endReduce runs the reduction epilogue: release operand registers
// consumed from the parse stack (keeping the occurrence the left side
// reuses), release transient registers, and prefix the left side and
// any staged tokens to the input stream.
func (r *run) endReduce(t *ReduceTail) error {
	pushLHS := !t.Lambda && !r.ignoreLHS
	var lhsVal int64
	if pushLHS {
		slot := t.LHSSlot
		if slot < 0 {
			slot = t.LHSFallback
		}
		if slot < 0 {
			return &GenError{Pos: r.input.pos, State: r.top().state,
				Msg: fmt.Sprintf("production %d: left side %s.%d has no value", t.ProdNum, t.LHSName, t.LHSTag)}
		}
		lhsVal = r.slots[slot]
	}
	keptLHS := false
	for i := range r.popped {
		class := t.RHSClass[i]
		if class == "" {
			continue
		}
		if pushLHS && !keptLHS && class == t.LHSClass && r.popped[i].val == lhsVal {
			keptLHS = true
			continue
		}
		r.ra.DecUse(class, int(r.popped[i].val))
	}
	// The LHS register was allocated for this production; its single use
	// transfers to the prefixed token.
	if pushLHS && t.LHSSlot >= 0 {
		r.allocMark[t.LHSSlot] = false
	}

	// Release transient registers: scratch registers for skips and long
	// branches, linkage registers taken with `need`.
	for si := 0; si < len(t.SlotClass); si++ {
		if !r.allocMark[si] {
			continue
		}
		class := t.SlotClass[si]
		if class == "" {
			continue
		}
		v := r.slots[si]
		if r.g.pairClass[class] {
			if err := r.ra.FreePair(class, int(v)); err != nil {
				return err
			}
			continue
		}
		r.ra.DecUse(class, int(v))
	}

	// Prefix the LHS (and any tokens pushed by the templates) to the
	// input stream. Lambda productions complete a statement: the parse
	// stack must be back at the bottom.
	if pushLHS {
		r.pushed = append(r.pushed, ir.Token{Sym: t.LHSName, Val: lhsVal})
	}
	if len(r.pushed) > 0 {
		r.input.prefix(r.pushed...)
	}
	if t.Lambda && len(r.stack) != 1 {
		return &GenError{Pos: r.input.pos, State: r.top().state,
			Msg: fmt.Sprintf("statement production %d reduced with %d symbols still on the parse stack", t.ProdNum, len(r.stack)-1)}
	}
	return nil
}

// allocate performs the up-front register allocation for one production.
func (r *run) allocate(pl *prodPlan) error {
	for i := range pl.uses {
		u := &pl.uses[i]
		if u.class == "" {
			return fmt.Errorf("codegen: using %s.%d: not a register class", r.gr.SymName(u.ref.Sym), u.ref.Tag)
		}
		if err := r.allocUsing(u.class, u.slot, pl.prod.Num); err != nil {
			return err
		}
	}
	for i := range pl.needs {
		nd := &pl.needs[i]
		if nd.class == "" {
			return fmt.Errorf("codegen: need %s.%d: not a register class", r.gr.SymName(nd.ref.Sym), nd.ref.Tag)
		}
		if err := r.allocNeed(nd.class, nd.ref.Tag, nd.slot, pl.tail.SlotClass, pl.prod.Num); err != nil {
			return err
		}
	}
	return nil
}

// allocUsing is one `using` request: any free register of the class.
func (r *run) allocUsing(class string, slot int32, prodNum int) error {
	n, err := r.ra.Using(class)
	if err != nil {
		return &ResourceError{Kind: ResRegisters, Pos: r.input.pos, State: r.top().state,
			Msg: fmt.Sprintf("production %d: %v", prodNum, err)}
	}
	r.slots[slot] = int64(n)
	r.allocMark[slot] = true
	return nil
}

// allocNeed is one `need` request: a specific physical register, with
// the eviction move materialized when the register was busy.
func (r *run) allocNeed(class string, regNum int, slot int32, slotClass []string, prodNum int) error {
	mv, evicted, err := r.ra.Need(class, regNum)
	if err != nil {
		return &ResourceError{Kind: ResRegisters, Pos: r.input.pos, State: r.top().state,
			Msg: fmt.Sprintf("production %d: %v", prodNum, err)}
	}
	if evicted {
		if err := r.materializeMove(slotClass, mv.Class, mv.From, mv.To); err != nil {
			return err
		}
	}
	r.slots[slot] = int64(regNum)
	r.allocMark[slot] = true
	return nil
}

// materializeMove emits the register copy for a `need` eviction and
// rewrites every holder of the old register: the translation stack, the
// popped right side, the pushback queue, the current bindings, and the
// CSE table.
func (r *run) materializeMove(slotClass []string, class string, from, to int) error {
	op, ok := r.g.cfg.MoveOp[class]
	if !ok {
		return fmt.Errorf("codegen: no move opcode configured for register class %q", class)
	}
	opds := r.arena.alloc(2)
	opds[0] = asm.R(to)
	opds[1] = asm.R(from)
	r.provMove = true
	r.emit(asm.Instr{Op: op, Opds: opds, Comment: evictComment(from)})
	r.provMove = false
	symID := r.g.classSym[class] // nonterminal id: its name is the class name
	for i := range r.stack {
		if r.stack[i].sym == symID && r.stack[i].val == int64(from) {
			r.stack[i].val = int64(to)
		}
	}
	for i := range r.popped {
		if r.popped[i].sym == symID && r.popped[i].val == int64(from) {
			r.popped[i].val = int64(to)
		}
	}
	for si := 0; si < len(slotClass); si++ {
		if r.slots[si] == int64(from) && slotClass[si] == class {
			r.slots[si] = int64(to)
		}
	}
	r.input.rewriteRegs(class, int64(from), int64(to))
	r.cses.MoveReg(class, from, to)
	return nil
}

// emit appends one instruction to the code buffer, resolving pending
// skip targets and stamping the source statement number. The code
// buffer is bounded: past Config.MaxCodeBytes a sticky ResourceError is
// recorded for the parse loop to surface (emit itself has no error
// return — the template paths call it unconditionally). The instruction
// is appended before sizing so the Machine reads it in place, keeping
// the argument from escaping to the heap.
func (r *run) emit(in asm.Instr) int {
	in.Stmt = r.stmtNum
	ix := r.prog.Append(in)
	if sz, err := r.g.cfg.Machine.SizeOf(&r.prog.Instrs[ix]); err == nil {
		r.codeBytes += sz
	} else {
		r.codeBytes += 6 // the longest S/370 instruction; a safe overestimate
	}
	if max := r.g.maxCodeBytes(); r.codeBytes > max && r.codeErr == nil {
		r.codeErr = &ResourceError{Kind: ResCodeBytes, Limit: max, Pos: r.input.pos,
			State: r.top().state,
			Msg:   fmt.Sprintf("code buffer exceeds %d bytes", max)}
	}
	for i := range r.pendingSkips {
		ps := &r.pendingSkips[i]
		if ps.remaining > 0 {
			ps.remaining--
			if ps.remaining == 0 {
				// The label lands after this instruction.
				_ = r.prog.DefineLabel(ps.label, ix+1)
			}
		}
	}
	if r.provEnabled {
		r.recordProv(ix)
	}
	return ix
}

func (r *run) templateErr(pl *prodPlan, st *tmplStep, err error) error {
	return r.tmplErr(pl.prod.Num, st.name, st.t.Line, err)
}

// tmplErr wraps a template-step failure with its production and
// template context; GenErrors (which already carry position context)
// pass through unchanged.
func (r *run) tmplErr(prodNum int, name string, line int, err error) error {
	if _, ok := err.(*GenError); ok {
		return err
	}
	return &GenError{Pos: r.input.pos, State: r.top().state,
		Msg: fmt.Sprintf("production %d, template %q (line %d): %v", prodNum, name, line, err)}
}
