package codegen

import (
	"cogg/internal/grammar"
	"cogg/internal/lr"
)

// expectedBound caps the reductions simulated while probing one symbol.
// Glanville's construction admits only uniformly reducible grammars,
// whose cascades are short; the bound keeps a corrupt table from
// looping the probe.
const expectedBound = 1 << 14

// expectedSymbols computes, for the blocked parse stack, every IF
// symbol the specification could have accepted instead — plus "$end"
// when the program could have ended here. A table probe alone is not
// the answer: a Reduce action pops the stack and re-dispatches, and the
// cascade may dead-end several reductions later, so each symbol is
// simulated to completion against a scratch copy of the state stack,
// mirroring the parse loop. Names come back in symbol-id order, "$end"
// last, so the diagnostic is deterministic and directly comparable to
// the grammar oracle's legal-next set.
func (r *run) expectedSymbols() []string {
	var out []string
	for _, s := range r.gr.Syms {
		switch s.Kind {
		case grammar.Operator, grammar.Terminal, grammar.Nonterminal:
		default:
			continue
		}
		if s.ID == r.gr.Lambda {
			continue
		}
		if r.wouldAccept(s.ID) {
			out = append(out, s.Name)
		}
	}
	if r.wouldAccept(r.g.eofSym) {
		out = append(out, "$end")
	}
	return out
}

// wouldAccept simulates dispatching sym against a copy of the parse
// stack's states: shifts, reduce cascades with pushback, lambda
// reductions (legal only with the stack back at the statement bottom),
// and Accept (legal only for the end marker at the bottom).
func (r *run) wouldAccept(sym int) bool {
	states := make([]int, 0, len(r.stack))
	for _, e := range r.stack {
		states = append(states, e.state)
	}
	pending := []int{sym}
	for steps := 0; steps < expectedBound; steps++ {
		look := pending[len(pending)-1]
		act := r.lookupAction(states[len(states)-1], look)
		switch act.Kind() {
		case lr.Shift:
			states = append(states, act.Target())
			pending = pending[:len(pending)-1]
			if len(pending) == 0 {
				return true
			}
		case lr.Accept:
			return len(pending) == 1 && len(states) == 1
		case lr.Reduce:
			p := r.gr.Prods[act.Target()]
			if len(p.RHS) > len(states)-1 {
				return false
			}
			states = states[:len(states)-len(p.RHS)]
			if p.LHS == r.gr.Lambda {
				if len(states) != 1 {
					return false
				}
				continue
			}
			pending = append(pending, p.LHS)
		default:
			return false
		}
	}
	return false
}
