package codegen_test

import (
	"strings"
	"testing"

	"cogg/internal/ir"
)

// Allocation gates for the emission hot path: a warmed-up Session must
// translate IF streams with zero heap allocations, which bounds both
// the per-reduction and the per-shift cost at exactly zero. The gates
// run real translations through the full amdahl470 tables so every
// production plan path (register allocation, semantic intervention,
// operand resolution, instruction emission) is exercised.

// allocIF builds a reduction-heavy IF stream: n statements cycling
// through arithmetic that allocates plain registers and even/odd pairs,
// intervenes semantically (division, modulo, maximum), and frees them.
func allocIF(t *testing.T, n int) []ir.Token {
	t.Helper()
	exprs := []string{"iadd", "isub", "idiv", "imod", "imax"}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString("statement stmt." + string(rune('1'+i%9)) + " ")
		sb.WriteString("assign fullword dsp.96 r.13 " +
			exprs[i%len(exprs)] + " fullword dsp.100 r.13 fullword dsp.104 r.13 ")
	}
	toks, err := ir.ParseTokens(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

// shiftIF builds a shift-heavy IF stream: one deeply left-nested sum,
// linearized in prefix form as a long run of operators, so the parse
// stack grows deep before the reductions unwind it.
func shiftIF(t *testing.T, depth int) []ir.Token {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("assign fullword dsp.96 r.13 ")
	for i := 0; i < depth; i++ {
		sb.WriteString("iadd ")
	}
	sb.WriteString("fullword dsp.100 r.13 fullword dsp.104 r.13")
	for i := 1; i < depth; i++ {
		sb.WriteString(" fullword dsp.108 r.13")
	}
	toks, err := ir.ParseTokens(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

func sessionAllocs(t *testing.T, toks []ir.Token) (perRun float64, reductions int) {
	t.Helper()
	g := amdahlGen(t)
	s, err := g.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: grow the stack, arena, pushback, and map buckets to the
	// workload's working size.
	for i := 0; i < 3; i++ {
		if _, _, err := s.Generate("warm", toks); err != nil {
			t.Fatal(err)
		}
	}
	var res struct{ reductions int }
	perRun = testing.AllocsPerRun(20, func() {
		_, r, err := s.Generate("steady", toks)
		if err != nil {
			t.Fatal(err)
		}
		res.reductions = r.Reductions
	})
	return perRun, res.reductions
}

func TestZeroAllocSteadyStateReductions(t *testing.T) {
	toks := allocIF(t, 24)
	allocs, reductions := sessionAllocs(t, toks)
	if reductions == 0 {
		t.Fatal("workload performed no reductions")
	}
	if allocs != 0 {
		t.Errorf("steady-state translation allocates: %.1f allocs/run over %d reductions (%.4f per reduction), want 0",
			allocs, reductions, allocs/float64(reductions))
	}
}

func TestZeroAllocSteadyStateShifts(t *testing.T) {
	toks := shiftIF(t, 24)
	allocs, _ := sessionAllocs(t, toks)
	if allocs != 0 {
		t.Errorf("shift-heavy translation allocates: %.1f allocs/run, want 0", allocs)
	}
}
