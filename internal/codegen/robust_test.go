package codegen_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cogg/internal/grammar"
	"cogg/internal/ir"
)

// TestRobustRandomIF: arbitrary token streams over the grammar's
// alphabet must produce code or a diagnostic — never a panic and never
// a hang (the step bound catches non-terminating parses).
func TestRobustRandomIF(t *testing.T) {
	g := amdahlGen(t)
	var syms []ir.Token
	for _, s := range g.Grammar().Syms {
		switch s.Kind {
		case grammar.Operator:
			syms = append(syms, ir.Token{Sym: s.Name})
		case grammar.Terminal:
			syms = append(syms, ir.Token{Sym: s.Name, Val: 100})
		case grammar.Nonterminal:
			if s.Name != "lambda" {
				syms = append(syms, ir.Token{Sym: s.Name, Val: 5})
			}
		}
	}
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("seed %d panicked: %v", seed, r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		toks := make([]ir.Token, n)
		for i := range toks {
			toks[i] = syms[r.Intn(len(syms))]
			// Vary values across the interesting ranges.
			switch r.Intn(4) {
			case 0:
				toks[i].Val = int64(r.Intn(4096))
			case 1:
				toks[i].Val = int64(r.Intn(16))
			}
		}
		_, _, _ = g.Generate("FUZZIF", toks)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}
