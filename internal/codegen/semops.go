package codegen

import (
	"fmt"

	"cogg/internal/asm"
	"cogg/internal/cse"
	"cogg/internal/ir"
)

// The semantic operators interpreted by the code emission routine. The
// specification declares them in its $Constants section; the table
// constructor verifies at generation time that every one it uses appears
// here (paper section 4 lists the categories: register allocation and
// symbol table management, machine idioms, and context sensitive
// manipulations of the parse/translation stack). Each name maps to its
// plan-time enum value so reductions dispatch on a jump table instead of
// a string switch.
var semanticOps = map[string]semOp{
	"using": semUsing, "need": semNeed, "modifies": semModifies,
	"ignore_lhs": semIgnoreLHS, "IBM_length": semIBMLength, "ibm_length": semIBMLength,
	"push_odd": semPushOdd, "push_even": semPushEven,
	"load_odd_addr": semLoadOddAddr, "load_odd_full": semLoadOddFull,
	"load_odd_half": semLoadOddHalf, "load_odd_reg": semLoadOddReg,
	"label_location": semLabelLocation, "label_pntr": semLabelPntr,
	"branch": semBranch, "branch_indexed": semBranchIndexed,
	"skip": semSkip, "case_load": semCaseLoad,
	"abort": semAbort, "stmt_record": semStmtRecord, "list_request": semListRequest,
	"full_common": semFullCommon, "half_common": semHalfCommon,
	"byte_common": semByteCommon,
	"real_common": semRealCommon, "dreal_common": semDRealCommon,
	"find_common": semFindCommon, "find_real_common": semFindRealCommon,
	"load_extended": semLoadExtended, "store_extended": semStoreExtended,
	"clear_extended": semClearExtended,
}

func knownSemantic(name string) bool { _, ok := semanticOps[name]; return ok }

// SemanticOpCount returns the number of semantic operators the emission
// routine implements (entry ix of Table 1 counts those a grammar uses).
func SemanticOpCount() int { return len(semanticOps) }

// Static comment tables: the steady-state reduction path must not
// format strings.
var skipComments = [...]string{
	"", "skip 1", "skip 2", "skip 3", "skip 4",
	"skip 5", "skip 6", "skip 7", "skip 8",
}

var evictComments = [...]string{
	"evicted for need r0", "evicted for need r1", "evicted for need r2",
	"evicted for need r3", "evicted for need r4", "evicted for need r5",
	"evicted for need r6", "evicted for need r7", "evicted for need r8",
	"evicted for need r9", "evicted for need r10", "evicted for need r11",
	"evicted for need r12", "evicted for need r13", "evicted for need r14",
	"evicted for need r15",
}

func evictComment(from int) string {
	if from >= 0 && from < len(evictComments) {
		return evictComments[from]
	}
	return fmt.Sprintf("evicted for need r%d", from)
}

// intervene interprets one compiled semantic template.
func (r *run) intervene(pl *prodPlan, st *tmplStep) error {
	switch st.op {
	case semUsing, semNeed:
		return nil // handled by the up-front allocation

	case semModifies:
		return r.semModifies(st)

	case semIgnoreLHS:
		r.ignoreLHS = true
		return nil

	case semIBMLength:
		rp, err := r.stepRef(st, 0)
		if err != nil {
			return err
		}
		return r.ibmLength(rp.slot)

	case semPushOdd, semPushEven:
		return r.semPushHalf(st, st.op == semPushOdd)

	case semLoadOddAddr, semLoadOddFull, semLoadOddHalf, semLoadOddReg:
		return r.semLoadOdd(st)

	case semLabelLocation:
		v, err := r.stepVal(st, 0)
		if err != nil {
			return err
		}
		return r.defineLabelHere(v)

	case semLabelPntr:
		v, err := r.stepVal(st, 0)
		if err != nil {
			return err
		}
		r.addrConst(v)
		return nil

	case semBranch, semBranchIndexed:
		return r.semBranch(st, st.op == semBranchIndexed)

	case semSkip:
		return r.semSkip(st)

	case semCaseLoad:
		return r.semCaseLoad(st)

	case semAbort:
		v, err := r.stepVal(st, 0)
		if err != nil {
			return err
		}
		r.abortAt(v)
		return nil

	case semStmtRecord:
		v, err := r.stepVal(st, 0)
		if err != nil {
			return err
		}
		r.stmtNum = int(v)
		return nil

	case semListRequest:
		v, err := r.stepVal(st, 0)
		if err != nil {
			return err
		}
		r.listRequest(v)
		return nil

	case semFullCommon, semHalfCommon, semByteCommon, semRealCommon, semDRealCommon:
		return r.semCommon(st, commonWidth(st.op))

	case semFindCommon, semFindRealCommon:
		return r.semFindCommon(st)

	case semLoadExtended, semStoreExtended, semClearExtended:
		return r.semExtended(st)
	}
	return fmt.Errorf("semantic operator %q is not implemented", st.name)
}

func commonWidth(op semOp) cse.Width {
	switch op {
	case semHalfCommon:
		return cse.Half
	case semByteCommon:
		return cse.Byte
	case semRealCommon:
		return cse.Real
	case semDRealCommon:
		return cse.DReal
	default:
		return cse.Full
	}
}

// semModifies informs the register allocation routine that the contents
// of a register has been changed: any common subexpression held there is
// saved to its temporary storage location and its register home
// invalidated, and the register's usage index is stamped.
func (r *run) semModifies(st *tmplStep) error {
	for i := range st.refs {
		rp, err := r.stepRef(st, i)
		if err != nil {
			return err
		}
		if rp.class == "" {
			return fmt.Errorf("modifies %s.%d: not a register", r.gr.SymName(rp.ref.Sym), rp.ref.Tag)
		}
		if err := r.modifiesReg(rp.class, rp.slot); err != nil {
			return err
		}
	}
	return nil
}

// modifiesReg is the modifies core for one register-class reference
// already resolved to its slot.
func (r *run) modifiesReg(class string, slot int32) error {
	reg := int(r.slots[slot])
	for _, e := range r.cses.HeldIn(class, reg) {
		if !e.Saved {
			op, ok := r.g.cfg.SaveOp[e.Width]
			if !ok {
				return fmt.Errorf("no save opcode configured for %s common subexpressions", e.Width)
			}
			opds := r.arena.alloc(2)
			opds[0] = asm.R(reg)
			opds[1] = asm.M(e.Mem.Disp, 0, e.Mem.Base)
			r.emit(asm.Instr{Op: op, Opds: opds,
				Comment: fmt.Sprintf("save cse %d before r%d changes", e.ID, reg)})
			e.Saved = true
		}
		// The register carried the CSE's outstanding uses; they move
		// to the memory home.
		r.ra.IncUse(class, reg, -e.Uses)
		r.cses.Invalidate(e)
	}
	r.ra.Touch(class, reg)
	return nil
}

// ibmLength rebinds a terminal's slot to the IBM SS encoding: a length
// of n is encoded as n-1, so subsequent templates see the encoded
// value.
func (r *run) ibmLength(slot int32) error {
	v := r.slots[slot]
	if v < 1 || v > 256 {
		return fmt.Errorf("IBM_length of %d is outside 1..256", v)
	}
	r.slots[slot] = v - 1
	return nil
}

// semPushHalf implements push_odd/push_even: one member of an even/odd
// pair becomes an ordinary register and is prefixed to the input stream
// ("it does so after performing a type conversion of the odd register
// into type r.n", paper section 4.3).
func (r *run) semPushHalf(st *tmplStep, odd bool) error {
	rp, err := r.stepRef(st, 0)
	if err != nil {
		return err
	}
	return r.pushHalf(rp.class, r.gr.SymName(rp.ref.Sym), rp.ref.Tag, rp.slot, odd)
}

// pushHalf is the push_odd/push_even core for a reference already
// resolved to (class, slot); symName and tag serve the error message.
func (r *run) pushHalf(class, symName string, tag int, slot int32, odd bool) error {
	if !r.g.pairClass[class] {
		return fmt.Errorf("push half of %s.%d: class %q is not an even/odd pair class",
			symName, tag, class)
	}
	even := int(r.slots[slot])
	under := r.underClassName(class)
	var kept int
	var err error
	if odd {
		kept, err = r.ra.ConvertOdd(class, even)
	} else {
		kept, err = r.ra.ConvertEven(class, even)
	}
	if err != nil {
		return err
	}
	r.allocMark[slot] = false
	r.pushed = append(r.pushed, ir.Token{Sym: under, Val: int64(kept)})
	return nil
}

// defineLabelHere binds label v to the next instruction index.
func (r *run) defineLabelHere(v int64) error {
	return r.prog.DefineLabel(v, len(r.prog.Instrs))
}

// addrConst emits the label_pntr address-constant pseudo-instruction.
func (r *run) addrConst(v int64) {
	r.emit(asm.Instr{Pseudo: asm.AddrConst, Label: v})
}

// abortAt records an abort call site before the next instruction.
func (r *run) abortAt(v int64) {
	r.prog.AbortSites[len(r.prog.Instrs)] = v
}

// listRequest records a list_request argument before the next
// instruction.
func (r *run) listRequest(v int64) {
	r.prog.CallArgs[len(r.prog.Instrs)] = v
}

func (r *run) underClassName(pair string) string {
	for _, c := range r.g.cfg.Classes {
		if c.Name == pair {
			return c.Under
		}
	}
	return ""
}

// semLoadOdd fills the odd half of a pair: load_odd_addr emits the
// address-load form, load_odd_full/half the storage loads, load_odd_reg
// the register copy.
func (r *run) semLoadOdd(st *tmplStep) error {
	rp, err := r.stepRef(st, 0)
	if err != nil {
		return err
	}
	op, err := r.loadOddOp(st.name, rp.class, r.gr.SymName(rp.ref.Sym), rp.ref.Tag)
	if err != nil {
		return err
	}
	if len(st.opds) != 2 {
		return fmt.Errorf("%s expects a pair and one source operand", st.name)
	}
	src, err := r.resolveOpd(&st.opds[1])
	if err != nil {
		return err
	}
	r.emitLoadOdd(op, rp.slot, src)
	return nil
}

// loadOddOp validates a load_odd_* pair reference and resolves the
// configured opcode, in the interpreter's check order.
func (r *run) loadOddOp(name, class, symName string, tag int) (string, error) {
	if !r.g.pairClass[class] {
		return "", fmt.Errorf("%s: %s.%d is not an even/odd pair", name, symName, tag)
	}
	op, ok := r.g.cfg.LoadOddOps[name]
	if !ok {
		return "", fmt.Errorf("no opcode configured for %s", name)
	}
	return op, nil
}

// emitLoadOdd fills the odd half of the pair whose even register is
// bound in slot.
func (r *run) emitLoadOdd(op string, slot int32, src asm.Operand) {
	odd := int(r.slots[slot]) + 1
	opds := r.arena.alloc(2)
	opds[0] = asm.R(odd)
	opds[1] = src
	r.emit(asm.Instr{Op: op, Opds: opds})
}

// semBranch enters a branch instruction and its target into the
// dictionary; the binding of jump instructions to targets is resolved
// after all code for the module has been generated (section 4.2). The
// register allocated by the production serves the long form.
func (r *run) semBranch(st *tmplStep, indexed bool) error {
	if len(st.opds) != 3 {
		return fmt.Errorf("branch expects condition, label, and scratch register")
	}
	cond, err := r.stepVal(st, 0)
	if err != nil {
		return err
	}
	label, err := r.stepVal(st, 1)
	if err != nil {
		return err
	}
	scratch, err := r.stepRef(st, 2)
	if err != nil {
		return err
	}
	if indexed {
		return fmt.Errorf("branch_indexed is expressed through case_load in this implementation")
	}
	r.emitBranch(cond, label, scratch.slot)
	return nil
}

// emitBranch enters the branch pseudo-instruction with its scratch
// register, for layout to bind after all code has been generated.
func (r *run) emitBranch(cond, label int64, scratchSlot int32) {
	r.emit(asm.Instr{Pseudo: asm.Branch, Cond: cond, Label: label,
		Scratch: int(r.slots[scratchSlot])})
}

// semSkip emits a forward branch over the next n instructions of the same
// template sequence, avoiding shaper-allocated labels for short internal
// jumps such as condition-code materialization (section 4.2).
func (r *run) semSkip(st *tmplStep) error {
	if len(st.opds) != 3 {
		return fmt.Errorf("skip expects condition, instruction count, and scratch register")
	}
	cond, err := r.stepVal(st, 0)
	if err != nil {
		return err
	}
	count, err := r.stepVal(st, 1)
	if err != nil {
		return err
	}
	if count < 1 || count > 8 {
		return fmt.Errorf("skip count %d is outside a template sequence", count)
	}
	scratch, err := r.stepRef(st, 2)
	if err != nil {
		return err
	}
	r.emitSkip(cond, count, scratch.slot)
	return nil
}

// emitSkip emits the forward branch of a skip and registers its pending
// label; count must already be validated to 1..8.
func (r *run) emitSkip(cond, count int64, scratchSlot int32) {
	label := r.nextAutoLabel()
	r.emit(asm.Instr{Pseudo: asm.Branch, Cond: cond, Label: label,
		Scratch: int(r.slots[scratchSlot]),
		Comment: skipComments[count]})
	r.pendingSkips = append(r.pendingSkips, pendingSkip{label: label, remaining: count})
}

// semCaseLoad emits the branch-table dispatch: load the table address
// from the literal pool, index it, and branch through the scratch
// register.
func (r *run) semCaseLoad(st *tmplStep) error {
	if len(st.opds) != 3 {
		return fmt.Errorf("case_load expects label, index register, and scratch register")
	}
	label, err := r.stepVal(st, 0)
	if err != nil {
		return err
	}
	index, err := r.stepRef(st, 1)
	if err != nil {
		return err
	}
	scratch, err := r.stepRef(st, 2)
	if err != nil {
		return err
	}
	r.emitCaseLoad(label, index.slot, scratch.slot)
	return nil
}

// emitCaseLoad emits the case_load pseudo-instruction and enters its
// branch-table label into the literal pool.
func (r *run) emitCaseLoad(label int64, indexSlot, scratchSlot int32) {
	in := asm.Instr{Pseudo: asm.CaseLoad, Label: label,
		IndexR:  int(r.slots[indexSlot]),
		Scratch: int(r.slots[scratchSlot])}
	ix := r.emit(in)
	r.prog.Instrs[ix].PoolIx = r.prog.AddPoolLabel(label)
}

// semCommon establishes a common subexpression: its number, use count,
// register home, and the temporary storage location the shaper allocated
// (section 4.4).
func (r *run) semCommon(st *tmplStep, w cse.Width) error {
	if len(st.opds) != 5 {
		return fmt.Errorf("common declaration expects cse, count, register, displacement, base")
	}
	id, err := r.stepVal(st, 0)
	if err != nil {
		return err
	}
	count, err := r.stepVal(st, 1)
	if err != nil {
		return err
	}
	regRef, err := r.stepRef(st, 2)
	if err != nil {
		return err
	}
	disp, err := r.stepVal(st, 3)
	if err != nil {
		return err
	}
	base, err := r.stepVal(st, 4)
	if err != nil {
		return err
	}
	if regRef.class == "" {
		return fmt.Errorf("common register operand %s.%d is not a register", r.gr.SymName(regRef.ref.Sym), regRef.ref.Tag)
	}
	return r.defineCommon(id, count, regRef.class, regRef.slot, disp, base, w)
}

// defineCommon is the *_common core: establish the CSE's register home
// and transfer its outstanding uses onto the register.
func (r *run) defineCommon(id, count int64, class string, regSlot int32, disp, base int64, w cse.Width) error {
	reg := int(r.slots[regSlot])
	if _, err := r.cses.Define(id, int(count), class, reg,
		cse.Home{Disp: disp, Base: int(base)}, w); err != nil {
		return err
	}
	// The register home carries the outstanding uses in addition to the
	// use the production itself consumes.
	r.ra.IncUse(class, reg, int(count))
	return nil
}

// semFindCommon resolves a use of a common subexpression: if it still
// resides in a register, that register value is prefixed to the input
// stream; if it resides only in memory, the address of the CSE is
// prefixed instead and the ordinary load productions reduce it.
func (r *run) semFindCommon(st *tmplStep) error {
	if len(st.opds) != 2 {
		return fmt.Errorf("find_common expects cse number and destination register")
	}
	id, err := r.stepVal(st, 0)
	if err != nil {
		return err
	}
	destRef, err := r.stepRef(st, 1)
	if err != nil {
		return err
	}
	return r.findCommon(id, destRef.class, destRef.slot)
}

// findCommon is the find_common core: release the unneeded destination
// register and prefix either the CSE's register home or its reload
// address to the input stream.
func (r *run) findCommon(id int64, destClass string, destSlot int32) error {
	entry, _, err := r.cses.Use(id)
	if err != nil {
		return err
	}
	// The destination register the production allocated is not needed:
	// either the value is already in a register or the reload goes
	// through the ordinary productions. Release it.
	if r.allocMark[destSlot] {
		r.ra.DecUse(destClass, int(r.slots[destSlot]))
		r.allocMark[destSlot] = false
	}
	if entry.InRegister() {
		r.pushed = append(r.pushed, ir.Token{Sym: entry.Class, Val: int64(entry.Reg)})
		return nil
	}
	typeOp, ok := r.g.cfg.FindCommonType[entry.Width]
	if !ok {
		return fmt.Errorf("no IF type operator configured for %s common subexpressions", entry.Width)
	}
	r.pushed = append(r.pushed,
		ir.Token{Sym: typeOp},
		ir.Token{Sym: "dsp", Val: entry.Mem.Disp},
		ir.Token{Sym: "r", Val: int64(entry.Mem.Base)},
	)
	return nil
}

// semExtended implements the quadruple precision (128 bit) floating
// point storage operators as fullword-pair sequences over two long
// floating registers.
func (r *run) semExtended(st *tmplStep) error {
	rp, err := r.stepRef(st, 0)
	if err != nil {
		return err
	}
	switch st.op {
	case semClearExtended:
		r.clearExtended(rp.slot)
		return nil
	case semLoadExtended, semStoreExtended:
		if len(st.opds) != 2 {
			return fmt.Errorf("%s expects a register and a storage operand", st.name)
		}
		mem, err := r.resolveOpd(&st.opds[1])
		if err != nil {
			return err
		}
		if mem.Kind != asm.Mem {
			return fmt.Errorf("%s needs a storage operand", st.name)
		}
		r.extendedLS(st.op == semStoreExtended, rp.slot, mem)
		return nil
	}
	return fmt.Errorf("extended operator %q is not implemented", st.name)
}

// clearExtended zeroes the extended register pair bound in slot.
func (r *run) clearExtended(slot int32) {
	freg := int(r.slots[slot])
	opds := r.arena.alloc(2)
	opds[0] = asm.R(freg)
	opds[1] = asm.R(freg)
	r.emit(asm.Instr{Op: "sxr", Opds: opds, Comment: "zero extended register"})
}

// extendedLS emits the fullword-pair load/store sequence of
// load_extended/store_extended; mem must be a storage operand.
func (r *run) extendedLS(store bool, slot int32, mem asm.Operand) {
	freg := int(r.slots[slot])
	op := "ld"
	if store {
		op = "std"
	}
	hi := mem
	lo := mem
	lo.Val += 8
	opds := r.arena.alloc(2)
	opds[0] = asm.R(freg)
	opds[1] = hi
	r.emit(asm.Instr{Op: op, Opds: opds})
	opds = r.arena.alloc(2)
	opds[0] = asm.R(freg + 2)
	opds[1] = lo
	r.emit(asm.Instr{Op: op, Opds: opds})
}
