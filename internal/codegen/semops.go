package codegen

import (
	"fmt"

	"cogg/internal/asm"
	"cogg/internal/cse"
	"cogg/internal/grammar"
	"cogg/internal/ir"
)

// The semantic operators interpreted by the code emission routine. The
// specification declares them in its $Constants section; the table
// constructor verifies at generation time that every one it uses appears
// here (paper section 4 lists the categories: register allocation and
// symbol table management, machine idioms, and context sensitive
// manipulations of the parse/translation stack).
var semanticOps = map[string]bool{
	"using": true, "need": true, "modifies": true,
	"ignore_lhs": true, "IBM_length": true, "ibm_length": true,
	"push_odd": true, "push_even": true,
	"load_odd_addr": true, "load_odd_full": true, "load_odd_half": true, "load_odd_reg": true,
	"label_location": true, "label_pntr": true,
	"branch": true, "branch_indexed": true, "skip": true, "case_load": true,
	"abort": true, "stmt_record": true, "list_request": true,
	"full_common": true, "half_common": true, "byte_common": true,
	"real_common": true, "dreal_common": true,
	"find_common": true, "find_real_common": true,
	"load_extended": true, "store_extended": true, "clear_extended": true,
}

func knownSemantic(name string) bool { return semanticOps[name] }

// SemanticOpCount returns the number of semantic operators the emission
// routine implements (entry ix of Table 1 counts those a grammar uses).
func SemanticOpCount() int { return len(semanticOps) }

// intervene interprets one semantic template.
func (r *run) intervene(red *reduction, t *grammar.Template) error {
	name := r.gr.SymName(t.Op)
	switch name {
	case "using", "need":
		return nil // handled by the up-front allocation

	case "modifies":
		return r.semModifies(red, t)

	case "ignore_lhs":
		red.ignoreLHS = true
		return nil

	case "IBM_length", "ibm_length":
		// IBM SS instructions encode a length of n as n-1; rebind the
		// terminal so subsequent templates see the encoded value.
		ref, err := r.refOperand(red, t, 0)
		if err != nil {
			return err
		}
		v := red.bind[ref]
		if v < 1 || v > 256 {
			return fmt.Errorf("IBM_length of %d is outside 1..256", v)
		}
		red.bind[ref] = v - 1
		return nil

	case "push_odd", "push_even":
		return r.semPushHalf(red, t, name == "push_odd")

	case "load_odd_addr", "load_odd_full", "load_odd_half", "load_odd_reg":
		return r.semLoadOdd(red, t, name)

	case "label_location":
		v, err := r.operandValue(red, t, 0)
		if err != nil {
			return err
		}
		return r.prog.DefineLabel(v, len(r.prog.Instrs))

	case "label_pntr":
		v, err := r.operandValue(red, t, 0)
		if err != nil {
			return err
		}
		r.emit(asm.Instr{Pseudo: asm.AddrConst, Label: v})
		return nil

	case "branch", "branch_indexed":
		return r.semBranch(red, t, name == "branch_indexed")

	case "skip":
		return r.semSkip(red, t)

	case "case_load":
		return r.semCaseLoad(red, t)

	case "abort":
		v, err := r.operandValue(red, t, 0)
		if err != nil {
			return err
		}
		r.prog.AbortSites[len(r.prog.Instrs)] = v
		return nil

	case "stmt_record":
		v, err := r.operandValue(red, t, 0)
		if err != nil {
			return err
		}
		r.stmtNum = int(v)
		return nil

	case "list_request":
		v, err := r.operandValue(red, t, 0)
		if err != nil {
			return err
		}
		r.prog.CallArgs[len(r.prog.Instrs)] = v
		return nil

	case "full_common", "half_common", "byte_common", "real_common", "dreal_common":
		return r.semCommon(red, t, commonWidth(name))

	case "find_common", "find_real_common":
		return r.semFindCommon(red, t)

	case "load_extended", "store_extended", "clear_extended":
		return r.semExtended(red, t, name)
	}
	return fmt.Errorf("semantic operator %q is not implemented", name)
}

func commonWidth(name string) cse.Width {
	switch name {
	case "half_common":
		return cse.Half
	case "byte_common":
		return cse.Byte
	case "real_common":
		return cse.Real
	case "dreal_common":
		return cse.DReal
	default:
		return cse.Full
	}
}

// semModifies informs the register allocation routine that the contents
// of a register has been changed: any common subexpression held there is
// saved to its temporary storage location and its register home
// invalidated, and the register's usage index is stamped.
func (r *run) semModifies(red *reduction, t *grammar.Template) error {
	for i := range t.Operands {
		ref, err := r.refOperand(red, t, i)
		if err != nil {
			return err
		}
		class := r.g.classOf(ref.Sym)
		if class == "" {
			return fmt.Errorf("modifies %s.%d: not a register", r.gr.SymName(ref.Sym), ref.Tag)
		}
		reg := int(red.bind[ref])
		for _, e := range r.cses.HeldIn(class, reg) {
			if !e.Saved {
				op, ok := r.g.cfg.SaveOp[e.Width]
				if !ok {
					return fmt.Errorf("no save opcode configured for %s common subexpressions", e.Width)
				}
				r.emit(asm.Instr{Op: op,
					Opds:    []asm.Operand{asm.R(reg), asm.M(e.Mem.Disp, 0, e.Mem.Base)},
					Comment: fmt.Sprintf("save cse %d before r%d changes", e.ID, reg)})
				e.Saved = true
			}
			// The register carried the CSE's outstanding uses; they move
			// to the memory home.
			r.ra.IncUse(class, reg, -e.Uses)
			r.cses.Invalidate(e)
		}
		r.ra.Touch(class, reg)
	}
	return nil
}

// semPushHalf implements push_odd/push_even: one member of an even/odd
// pair becomes an ordinary register and is prefixed to the input stream
// ("it does so after performing a type conversion of the odd register
// into type r.n", paper section 4.3).
func (r *run) semPushHalf(red *reduction, t *grammar.Template, odd bool) error {
	ref, err := r.refOperand(red, t, 0)
	if err != nil {
		return err
	}
	class := r.g.classOf(ref.Sym)
	if !r.g.pairClass[class] {
		return fmt.Errorf("push half of %s.%d: class %q is not an even/odd pair class",
			r.gr.SymName(ref.Sym), ref.Tag, class)
	}
	even := int(red.bind[ref])
	under := r.underClassName(class)
	var kept int
	if odd {
		kept, err = r.ra.ConvertOdd(class, even)
	} else {
		kept, err = r.ra.ConvertEven(class, even)
	}
	if err != nil {
		return err
	}
	delete(red.allocated, ref)
	red.pushed = append(red.pushed, ir.Token{Sym: under, Val: int64(kept)})
	return nil
}

func (r *run) underClassName(pair string) string {
	for _, c := range r.g.cfg.Classes {
		if c.Name == pair {
			return c.Under
		}
	}
	return ""
}

// semLoadOdd fills the odd half of a pair: load_odd_addr emits the
// address-load form, load_odd_full/half the storage loads, load_odd_reg
// the register copy.
func (r *run) semLoadOdd(red *reduction, t *grammar.Template, name string) error {
	ref, err := r.refOperand(red, t, 0)
	if err != nil {
		return err
	}
	class := r.g.classOf(ref.Sym)
	if !r.g.pairClass[class] {
		return fmt.Errorf("%s: %s.%d is not an even/odd pair", name, r.gr.SymName(ref.Sym), ref.Tag)
	}
	odd := int(red.bind[ref]) + 1
	op, ok := r.g.cfg.LoadOddOps[name]
	if !ok {
		return fmt.Errorf("no opcode configured for %s", name)
	}
	if len(t.Operands) != 2 {
		return fmt.Errorf("%s expects a pair and one source operand", name)
	}
	src, err := r.resolveOperand(red, &t.Operands[1])
	if err != nil {
		return err
	}
	r.emit(asm.Instr{Op: op, Opds: []asm.Operand{asm.R(odd), src}})
	return nil
}

// semBranch enters a branch instruction and its target into the
// dictionary; the binding of jump instructions to targets is resolved
// after all code for the module has been generated (section 4.2). The
// register allocated by the production serves the long form.
func (r *run) semBranch(red *reduction, t *grammar.Template, indexed bool) error {
	if len(t.Operands) != 3 {
		return fmt.Errorf("branch expects condition, label, and scratch register")
	}
	cond, err := r.operandValue(red, t, 0)
	if err != nil {
		return err
	}
	label, err := r.operandValue(red, t, 1)
	if err != nil {
		return err
	}
	scratchRef, err := r.refOperand(red, t, 2)
	if err != nil {
		return err
	}
	in := asm.Instr{Pseudo: asm.Branch, Cond: cond, Label: label,
		Scratch: int(red.bind[scratchRef])}
	if indexed {
		return fmt.Errorf("branch_indexed is expressed through case_load in this implementation")
	}
	r.emit(in)
	return nil
}

// semSkip emits a forward branch over the next n instructions of the same
// template sequence, avoiding shaper-allocated labels for short internal
// jumps such as condition-code materialization (section 4.2).
func (r *run) semSkip(red *reduction, t *grammar.Template) error {
	if len(t.Operands) != 3 {
		return fmt.Errorf("skip expects condition, instruction count, and scratch register")
	}
	cond, err := r.operandValue(red, t, 0)
	if err != nil {
		return err
	}
	count, err := r.operandValue(red, t, 1)
	if err != nil {
		return err
	}
	if count < 1 || count > 8 {
		return fmt.Errorf("skip count %d is outside a template sequence", count)
	}
	scratchRef, err := r.refOperand(red, t, 2)
	if err != nil {
		return err
	}
	label := r.nextAutoLabel()
	r.emit(asm.Instr{Pseudo: asm.Branch, Cond: cond, Label: label,
		Scratch: int(red.bind[scratchRef]),
		Comment: fmt.Sprintf("skip %d", count)})
	r.pendingSkips = append(r.pendingSkips, pendingSkip{label: label, remaining: count})
	return nil
}

// semCaseLoad emits the branch-table dispatch: load the table address
// from the literal pool, index it, and branch through the scratch
// register.
func (r *run) semCaseLoad(red *reduction, t *grammar.Template) error {
	if len(t.Operands) != 3 {
		return fmt.Errorf("case_load expects label, index register, and scratch register")
	}
	label, err := r.operandValue(red, t, 0)
	if err != nil {
		return err
	}
	indexRef, err := r.refOperand(red, t, 1)
	if err != nil {
		return err
	}
	scratchRef, err := r.refOperand(red, t, 2)
	if err != nil {
		return err
	}
	in := asm.Instr{Pseudo: asm.CaseLoad, Label: label,
		IndexR:  int(red.bind[indexRef]),
		Scratch: int(red.bind[scratchRef])}
	ix := r.emit(in)
	r.prog.Instrs[ix].PoolIx = r.prog.AddPoolLabel(label)
	return nil
}

// semCommon establishes a common subexpression: its number, use count,
// register home, and the temporary storage location the shaper allocated
// (section 4.4).
func (r *run) semCommon(red *reduction, t *grammar.Template, w cse.Width) error {
	if len(t.Operands) != 5 {
		return fmt.Errorf("common declaration expects cse, count, register, displacement, base")
	}
	id, err := r.operandValue(red, t, 0)
	if err != nil {
		return err
	}
	count, err := r.operandValue(red, t, 1)
	if err != nil {
		return err
	}
	regRef, err := r.refOperand(red, t, 2)
	if err != nil {
		return err
	}
	disp, err := r.operandValue(red, t, 3)
	if err != nil {
		return err
	}
	base, err := r.operandValue(red, t, 4)
	if err != nil {
		return err
	}
	class := r.g.classOf(regRef.Sym)
	if class == "" {
		return fmt.Errorf("common register operand %s.%d is not a register", r.gr.SymName(regRef.Sym), regRef.Tag)
	}
	reg := int(red.bind[regRef])
	if _, err := r.cses.Define(id, int(count), class, reg,
		cse.Home{Disp: disp, Base: int(base)}, w); err != nil {
		return err
	}
	// The register home carries the outstanding uses in addition to the
	// use the production itself consumes.
	r.ra.IncUse(class, reg, int(count))
	return nil
}

// semFindCommon resolves a use of a common subexpression: if it still
// resides in a register, that register value is prefixed to the input
// stream; if it resides only in memory, the address of the CSE is
// prefixed instead and the ordinary load productions reduce it.
func (r *run) semFindCommon(red *reduction, t *grammar.Template) error {
	if len(t.Operands) != 2 {
		return fmt.Errorf("find_common expects cse number and destination register")
	}
	id, err := r.operandValue(red, t, 0)
	if err != nil {
		return err
	}
	destRef, err := r.refOperand(red, t, 1)
	if err != nil {
		return err
	}
	entry, _, err := r.cses.Use(id)
	if err != nil {
		return err
	}
	// The destination register the production allocated is not needed:
	// either the value is already in a register or the reload goes
	// through the ordinary productions. Release it.
	if red.allocated[destRef] {
		class := r.g.classOf(destRef.Sym)
		r.ra.DecUse(class, int(red.bind[destRef]))
		delete(red.allocated, destRef)
	}
	if entry.InRegister() {
		red.pushed = append(red.pushed, ir.Token{Sym: entry.Class, Val: int64(entry.Reg)})
		return nil
	}
	typeOp, ok := r.g.cfg.FindCommonType[entry.Width]
	if !ok {
		return fmt.Errorf("no IF type operator configured for %s common subexpressions", entry.Width)
	}
	red.pushed = append(red.pushed,
		ir.Token{Sym: typeOp},
		ir.Token{Sym: "dsp", Val: entry.Mem.Disp},
		ir.Token{Sym: "r", Val: int64(entry.Mem.Base)},
	)
	return nil
}

// semExtended implements the quadruple precision (128 bit) floating
// point storage operators as fullword-pair sequences over two long
// floating registers.
func (r *run) semExtended(red *reduction, t *grammar.Template, name string) error {
	ref, err := r.refOperand(red, t, 0)
	if err != nil {
		return err
	}
	freg := int(red.bind[ref])
	switch name {
	case "clear_extended":
		r.emit(asm.Instr{Op: "sxr", Opds: []asm.Operand{asm.R(freg), asm.R(freg)},
			Comment: "zero extended register"})
		return nil
	case "load_extended", "store_extended":
		if len(t.Operands) != 2 {
			return fmt.Errorf("%s expects a register and a storage operand", name)
		}
		mem, err := r.resolveOperand(red, &t.Operands[1])
		if err != nil {
			return err
		}
		if mem.Kind != asm.Mem {
			return fmt.Errorf("%s needs a storage operand", name)
		}
		op := "ld"
		if name == "store_extended" {
			op = "std"
		}
		hi := mem
		lo := mem
		lo.Val += 8
		r.emit(asm.Instr{Op: op, Opds: []asm.Operand{asm.R(freg), hi}})
		r.emit(asm.Instr{Op: op, Opds: []asm.Operand{asm.R(freg + 2), lo}})
		return nil
	}
	return fmt.Errorf("extended operator %q is not implemented", name)
}
