package codegen

import (
	"fmt"

	"cogg/internal/asm"
	"cogg/internal/cse"
	"cogg/internal/ir"
)

// The semantic operators interpreted by the code emission routine. The
// specification declares them in its $Constants section; the table
// constructor verifies at generation time that every one it uses appears
// here (paper section 4 lists the categories: register allocation and
// symbol table management, machine idioms, and context sensitive
// manipulations of the parse/translation stack). Each name maps to its
// plan-time enum value so reductions dispatch on a jump table instead of
// a string switch.
var semanticOps = map[string]semOp{
	"using": semUsing, "need": semNeed, "modifies": semModifies,
	"ignore_lhs": semIgnoreLHS, "IBM_length": semIBMLength, "ibm_length": semIBMLength,
	"push_odd": semPushOdd, "push_even": semPushEven,
	"load_odd_addr": semLoadOddAddr, "load_odd_full": semLoadOddFull,
	"load_odd_half": semLoadOddHalf, "load_odd_reg": semLoadOddReg,
	"label_location": semLabelLocation, "label_pntr": semLabelPntr,
	"branch": semBranch, "branch_indexed": semBranchIndexed,
	"skip": semSkip, "case_load": semCaseLoad,
	"abort": semAbort, "stmt_record": semStmtRecord, "list_request": semListRequest,
	"full_common": semFullCommon, "half_common": semHalfCommon,
	"byte_common": semByteCommon,
	"real_common": semRealCommon, "dreal_common": semDRealCommon,
	"find_common": semFindCommon, "find_real_common": semFindRealCommon,
	"load_extended": semLoadExtended, "store_extended": semStoreExtended,
	"clear_extended": semClearExtended,
}

func knownSemantic(name string) bool { _, ok := semanticOps[name]; return ok }

// SemanticOpCount returns the number of semantic operators the emission
// routine implements (entry ix of Table 1 counts those a grammar uses).
func SemanticOpCount() int { return len(semanticOps) }

// Static comment tables: the steady-state reduction path must not
// format strings.
var skipComments = [...]string{
	"", "skip 1", "skip 2", "skip 3", "skip 4",
	"skip 5", "skip 6", "skip 7", "skip 8",
}

var evictComments = [...]string{
	"evicted for need r0", "evicted for need r1", "evicted for need r2",
	"evicted for need r3", "evicted for need r4", "evicted for need r5",
	"evicted for need r6", "evicted for need r7", "evicted for need r8",
	"evicted for need r9", "evicted for need r10", "evicted for need r11",
	"evicted for need r12", "evicted for need r13", "evicted for need r14",
	"evicted for need r15",
}

func evictComment(from int) string {
	if from >= 0 && from < len(evictComments) {
		return evictComments[from]
	}
	return fmt.Sprintf("evicted for need r%d", from)
}

// intervene interprets one compiled semantic template.
func (r *run) intervene(pl *prodPlan, st *tmplStep) error {
	switch st.op {
	case semUsing, semNeed:
		return nil // handled by the up-front allocation

	case semModifies:
		return r.semModifies(st)

	case semIgnoreLHS:
		r.ignoreLHS = true
		return nil

	case semIBMLength:
		// IBM SS instructions encode a length of n as n-1; rebind the
		// terminal so subsequent templates see the encoded value.
		rp, err := r.stepRef(st, 0)
		if err != nil {
			return err
		}
		v := r.slots[rp.slot]
		if v < 1 || v > 256 {
			return fmt.Errorf("IBM_length of %d is outside 1..256", v)
		}
		r.slots[rp.slot] = v - 1
		return nil

	case semPushOdd, semPushEven:
		return r.semPushHalf(st, st.op == semPushOdd)

	case semLoadOddAddr, semLoadOddFull, semLoadOddHalf, semLoadOddReg:
		return r.semLoadOdd(st)

	case semLabelLocation:
		v, err := r.stepVal(st, 0)
		if err != nil {
			return err
		}
		return r.prog.DefineLabel(v, len(r.prog.Instrs))

	case semLabelPntr:
		v, err := r.stepVal(st, 0)
		if err != nil {
			return err
		}
		r.emit(asm.Instr{Pseudo: asm.AddrConst, Label: v})
		return nil

	case semBranch, semBranchIndexed:
		return r.semBranch(st, st.op == semBranchIndexed)

	case semSkip:
		return r.semSkip(st)

	case semCaseLoad:
		return r.semCaseLoad(st)

	case semAbort:
		v, err := r.stepVal(st, 0)
		if err != nil {
			return err
		}
		r.prog.AbortSites[len(r.prog.Instrs)] = v
		return nil

	case semStmtRecord:
		v, err := r.stepVal(st, 0)
		if err != nil {
			return err
		}
		r.stmtNum = int(v)
		return nil

	case semListRequest:
		v, err := r.stepVal(st, 0)
		if err != nil {
			return err
		}
		r.prog.CallArgs[len(r.prog.Instrs)] = v
		return nil

	case semFullCommon, semHalfCommon, semByteCommon, semRealCommon, semDRealCommon:
		return r.semCommon(st, commonWidth(st.op))

	case semFindCommon, semFindRealCommon:
		return r.semFindCommon(st)

	case semLoadExtended, semStoreExtended, semClearExtended:
		return r.semExtended(st)
	}
	return fmt.Errorf("semantic operator %q is not implemented", st.name)
}

func commonWidth(op semOp) cse.Width {
	switch op {
	case semHalfCommon:
		return cse.Half
	case semByteCommon:
		return cse.Byte
	case semRealCommon:
		return cse.Real
	case semDRealCommon:
		return cse.DReal
	default:
		return cse.Full
	}
}

// semModifies informs the register allocation routine that the contents
// of a register has been changed: any common subexpression held there is
// saved to its temporary storage location and its register home
// invalidated, and the register's usage index is stamped.
func (r *run) semModifies(st *tmplStep) error {
	for i := range st.refs {
		rp, err := r.stepRef(st, i)
		if err != nil {
			return err
		}
		if rp.class == "" {
			return fmt.Errorf("modifies %s.%d: not a register", r.gr.SymName(rp.ref.Sym), rp.ref.Tag)
		}
		reg := int(r.slots[rp.slot])
		for _, e := range r.cses.HeldIn(rp.class, reg) {
			if !e.Saved {
				op, ok := r.g.cfg.SaveOp[e.Width]
				if !ok {
					return fmt.Errorf("no save opcode configured for %s common subexpressions", e.Width)
				}
				opds := r.arena.alloc(2)
				opds[0] = asm.R(reg)
				opds[1] = asm.M(e.Mem.Disp, 0, e.Mem.Base)
				r.emit(asm.Instr{Op: op, Opds: opds,
					Comment: fmt.Sprintf("save cse %d before r%d changes", e.ID, reg)})
				e.Saved = true
			}
			// The register carried the CSE's outstanding uses; they move
			// to the memory home.
			r.ra.IncUse(rp.class, reg, -e.Uses)
			r.cses.Invalidate(e)
		}
		r.ra.Touch(rp.class, reg)
	}
	return nil
}

// semPushHalf implements push_odd/push_even: one member of an even/odd
// pair becomes an ordinary register and is prefixed to the input stream
// ("it does so after performing a type conversion of the odd register
// into type r.n", paper section 4.3).
func (r *run) semPushHalf(st *tmplStep, odd bool) error {
	rp, err := r.stepRef(st, 0)
	if err != nil {
		return err
	}
	if !r.g.pairClass[rp.class] {
		return fmt.Errorf("push half of %s.%d: class %q is not an even/odd pair class",
			r.gr.SymName(rp.ref.Sym), rp.ref.Tag, rp.class)
	}
	even := int(r.slots[rp.slot])
	under := r.underClassName(rp.class)
	var kept int
	if odd {
		kept, err = r.ra.ConvertOdd(rp.class, even)
	} else {
		kept, err = r.ra.ConvertEven(rp.class, even)
	}
	if err != nil {
		return err
	}
	r.allocMark[rp.slot] = false
	r.pushed = append(r.pushed, ir.Token{Sym: under, Val: int64(kept)})
	return nil
}

func (r *run) underClassName(pair string) string {
	for _, c := range r.g.cfg.Classes {
		if c.Name == pair {
			return c.Under
		}
	}
	return ""
}

// semLoadOdd fills the odd half of a pair: load_odd_addr emits the
// address-load form, load_odd_full/half the storage loads, load_odd_reg
// the register copy.
func (r *run) semLoadOdd(st *tmplStep) error {
	rp, err := r.stepRef(st, 0)
	if err != nil {
		return err
	}
	if !r.g.pairClass[rp.class] {
		return fmt.Errorf("%s: %s.%d is not an even/odd pair", st.name, r.gr.SymName(rp.ref.Sym), rp.ref.Tag)
	}
	odd := int(r.slots[rp.slot]) + 1
	op, ok := r.g.cfg.LoadOddOps[st.name]
	if !ok {
		return fmt.Errorf("no opcode configured for %s", st.name)
	}
	if len(st.opds) != 2 {
		return fmt.Errorf("%s expects a pair and one source operand", st.name)
	}
	src, err := r.resolveOpd(&st.opds[1])
	if err != nil {
		return err
	}
	opds := r.arena.alloc(2)
	opds[0] = asm.R(odd)
	opds[1] = src
	r.emit(asm.Instr{Op: op, Opds: opds})
	return nil
}

// semBranch enters a branch instruction and its target into the
// dictionary; the binding of jump instructions to targets is resolved
// after all code for the module has been generated (section 4.2). The
// register allocated by the production serves the long form.
func (r *run) semBranch(st *tmplStep, indexed bool) error {
	if len(st.opds) != 3 {
		return fmt.Errorf("branch expects condition, label, and scratch register")
	}
	cond, err := r.stepVal(st, 0)
	if err != nil {
		return err
	}
	label, err := r.stepVal(st, 1)
	if err != nil {
		return err
	}
	scratch, err := r.stepRef(st, 2)
	if err != nil {
		return err
	}
	if indexed {
		return fmt.Errorf("branch_indexed is expressed through case_load in this implementation")
	}
	r.emit(asm.Instr{Pseudo: asm.Branch, Cond: cond, Label: label,
		Scratch: int(r.slots[scratch.slot])})
	return nil
}

// semSkip emits a forward branch over the next n instructions of the same
// template sequence, avoiding shaper-allocated labels for short internal
// jumps such as condition-code materialization (section 4.2).
func (r *run) semSkip(st *tmplStep) error {
	if len(st.opds) != 3 {
		return fmt.Errorf("skip expects condition, instruction count, and scratch register")
	}
	cond, err := r.stepVal(st, 0)
	if err != nil {
		return err
	}
	count, err := r.stepVal(st, 1)
	if err != nil {
		return err
	}
	if count < 1 || count > 8 {
		return fmt.Errorf("skip count %d is outside a template sequence", count)
	}
	scratch, err := r.stepRef(st, 2)
	if err != nil {
		return err
	}
	label := r.nextAutoLabel()
	r.emit(asm.Instr{Pseudo: asm.Branch, Cond: cond, Label: label,
		Scratch: int(r.slots[scratch.slot]),
		Comment: skipComments[count]})
	r.pendingSkips = append(r.pendingSkips, pendingSkip{label: label, remaining: count})
	return nil
}

// semCaseLoad emits the branch-table dispatch: load the table address
// from the literal pool, index it, and branch through the scratch
// register.
func (r *run) semCaseLoad(st *tmplStep) error {
	if len(st.opds) != 3 {
		return fmt.Errorf("case_load expects label, index register, and scratch register")
	}
	label, err := r.stepVal(st, 0)
	if err != nil {
		return err
	}
	index, err := r.stepRef(st, 1)
	if err != nil {
		return err
	}
	scratch, err := r.stepRef(st, 2)
	if err != nil {
		return err
	}
	in := asm.Instr{Pseudo: asm.CaseLoad, Label: label,
		IndexR:  int(r.slots[index.slot]),
		Scratch: int(r.slots[scratch.slot])}
	ix := r.emit(in)
	r.prog.Instrs[ix].PoolIx = r.prog.AddPoolLabel(label)
	return nil
}

// semCommon establishes a common subexpression: its number, use count,
// register home, and the temporary storage location the shaper allocated
// (section 4.4).
func (r *run) semCommon(st *tmplStep, w cse.Width) error {
	if len(st.opds) != 5 {
		return fmt.Errorf("common declaration expects cse, count, register, displacement, base")
	}
	id, err := r.stepVal(st, 0)
	if err != nil {
		return err
	}
	count, err := r.stepVal(st, 1)
	if err != nil {
		return err
	}
	regRef, err := r.stepRef(st, 2)
	if err != nil {
		return err
	}
	disp, err := r.stepVal(st, 3)
	if err != nil {
		return err
	}
	base, err := r.stepVal(st, 4)
	if err != nil {
		return err
	}
	if regRef.class == "" {
		return fmt.Errorf("common register operand %s.%d is not a register", r.gr.SymName(regRef.ref.Sym), regRef.ref.Tag)
	}
	reg := int(r.slots[regRef.slot])
	if _, err := r.cses.Define(id, int(count), regRef.class, reg,
		cse.Home{Disp: disp, Base: int(base)}, w); err != nil {
		return err
	}
	// The register home carries the outstanding uses in addition to the
	// use the production itself consumes.
	r.ra.IncUse(regRef.class, reg, int(count))
	return nil
}

// semFindCommon resolves a use of a common subexpression: if it still
// resides in a register, that register value is prefixed to the input
// stream; if it resides only in memory, the address of the CSE is
// prefixed instead and the ordinary load productions reduce it.
func (r *run) semFindCommon(st *tmplStep) error {
	if len(st.opds) != 2 {
		return fmt.Errorf("find_common expects cse number and destination register")
	}
	id, err := r.stepVal(st, 0)
	if err != nil {
		return err
	}
	destRef, err := r.stepRef(st, 1)
	if err != nil {
		return err
	}
	entry, _, err := r.cses.Use(id)
	if err != nil {
		return err
	}
	// The destination register the production allocated is not needed:
	// either the value is already in a register or the reload goes
	// through the ordinary productions. Release it.
	if r.allocMark[destRef.slot] {
		r.ra.DecUse(destRef.class, int(r.slots[destRef.slot]))
		r.allocMark[destRef.slot] = false
	}
	if entry.InRegister() {
		r.pushed = append(r.pushed, ir.Token{Sym: entry.Class, Val: int64(entry.Reg)})
		return nil
	}
	typeOp, ok := r.g.cfg.FindCommonType[entry.Width]
	if !ok {
		return fmt.Errorf("no IF type operator configured for %s common subexpressions", entry.Width)
	}
	r.pushed = append(r.pushed,
		ir.Token{Sym: typeOp},
		ir.Token{Sym: "dsp", Val: entry.Mem.Disp},
		ir.Token{Sym: "r", Val: int64(entry.Mem.Base)},
	)
	return nil
}

// semExtended implements the quadruple precision (128 bit) floating
// point storage operators as fullword-pair sequences over two long
// floating registers.
func (r *run) semExtended(st *tmplStep) error {
	rp, err := r.stepRef(st, 0)
	if err != nil {
		return err
	}
	freg := int(r.slots[rp.slot])
	switch st.op {
	case semClearExtended:
		opds := r.arena.alloc(2)
		opds[0] = asm.R(freg)
		opds[1] = asm.R(freg)
		r.emit(asm.Instr{Op: "sxr", Opds: opds, Comment: "zero extended register"})
		return nil
	case semLoadExtended, semStoreExtended:
		if len(st.opds) != 2 {
			return fmt.Errorf("%s expects a register and a storage operand", st.name)
		}
		mem, err := r.resolveOpd(&st.opds[1])
		if err != nil {
			return err
		}
		if mem.Kind != asm.Mem {
			return fmt.Errorf("%s needs a storage operand", st.name)
		}
		op := "ld"
		if st.op == semStoreExtended {
			op = "std"
		}
		hi := mem
		lo := mem
		lo.Val += 8
		opds := r.arena.alloc(2)
		opds[0] = asm.R(freg)
		opds[1] = hi
		r.emit(asm.Instr{Op: op, Opds: opds})
		opds = r.arena.alloc(2)
		opds[0] = asm.R(freg + 2)
		opds[1] = lo
		r.emit(asm.Instr{Op: op, Opds: opds})
		return nil
	}
	return fmt.Errorf("extended operator %q is not implemented", st.name)
}
