package codegen

import (
	"fmt"

	"cogg/internal/asm"
	"cogg/internal/grammar"
)

// argValue resolves one template atom to its number: tagged references
// read the binding filled from the translation stack and the register
// allocations; constants and literals carry their own value.
func (r *run) argValue(red *reduction, a grammar.Arg) (int64, error) {
	if !a.IsRef {
		return a.Num, nil
	}
	v, ok := red.bind[grammar.Ref{Sym: a.Sym, Tag: a.Tag}]
	if !ok {
		return 0, fmt.Errorf("operand %s.%d has no value in this reduction", r.gr.SymName(a.Sym), a.Tag)
	}
	return v, nil
}

// refOperand returns operand i of the template, which must be a bare
// tagged reference.
func (r *run) refOperand(red *reduction, t *grammar.Template, i int) (grammar.Ref, error) {
	if i >= len(t.Operands) {
		return grammar.Ref{}, fmt.Errorf("missing operand %d", i+1)
	}
	o := t.Operands[i]
	if len(o.Sub) != 0 || !o.Base.IsRef {
		return grammar.Ref{}, fmt.Errorf("operand %d must be a tagged symbol reference", i+1)
	}
	ref := grammar.Ref{Sym: o.Base.Sym, Tag: o.Base.Tag}
	if _, ok := red.bind[ref]; !ok {
		return grammar.Ref{}, fmt.Errorf("operand %s.%d has no value in this reduction",
			r.gr.SymName(ref.Sym), ref.Tag)
	}
	return ref, nil
}

// operandValue resolves operand i of the template to a plain number.
func (r *run) operandValue(red *reduction, t *grammar.Template, i int) (int64, error) {
	if i >= len(t.Operands) {
		return 0, fmt.Errorf("missing operand %d", i+1)
	}
	o := t.Operands[i]
	if len(o.Sub) != 0 {
		return 0, fmt.Errorf("operand %d must not have an address form", i+1)
	}
	return r.argValue(red, o.Base)
}

// regValue resolves an atom used in a register position: register-class
// references read their allocation; constants (stack_base, pr_base, zero)
// denote register numbers directly.
func (r *run) regValue(red *reduction, a grammar.Arg) (int, error) {
	v, err := r.argValue(red, a)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 15 {
		return 0, fmt.Errorf("register number %d out of range", v)
	}
	return int(v), nil
}

// resolveOperand fills in the required values of one template operand
// and classifies it:
//
//	r.2                    -> register
//	32, shift32, elmnt.1   -> immediate
//	dsp.1(r.1)             -> disp(base)
//	dsp.1(r.3,r.1)         -> disp(index,base)
//	zero(lng.1,r.1)        -> disp(length,base)
//
// In the two-element address form the first element is a length exactly
// when it is a terminal reference (a value from the IF, such as lng.1);
// registers and register-number constants make it an index.
func (r *run) resolveOperand(red *reduction, o *grammar.Operand) (asm.Operand, error) {
	switch len(o.Sub) {
	case 0:
		if o.Base.IsRef && r.g.classOf(o.Base.Sym) != "" {
			n, err := r.regValue(red, o.Base)
			if err != nil {
				return asm.Operand{}, err
			}
			return asm.R(n), nil
		}
		v, err := r.argValue(red, o.Base)
		if err != nil {
			return asm.Operand{}, err
		}
		return asm.I(v), nil
	case 1:
		disp, err := r.argValue(red, o.Base)
		if err != nil {
			return asm.Operand{}, err
		}
		base, err := r.regValue(red, o.Sub[0])
		if err != nil {
			return asm.Operand{}, err
		}
		return asm.M(disp, 0, base), nil
	case 2:
		disp, err := r.argValue(red, o.Base)
		if err != nil {
			return asm.Operand{}, err
		}
		base, err := r.regValue(red, o.Sub[1])
		if err != nil {
			return asm.Operand{}, err
		}
		if o.Sub[0].IsRef && r.gr.KindOf(o.Sub[0].Sym) == grammar.Terminal {
			length, err := r.argValue(red, o.Sub[0])
			if err != nil {
				return asm.Operand{}, err
			}
			return asm.ML(disp, length, base), nil
		}
		index, err := r.regValue(red, o.Sub[0])
		if err != nil {
			return asm.Operand{}, err
		}
		return asm.M(disp, index, base), nil
	}
	return asm.Operand{}, fmt.Errorf("operand has %d address elements; at most two are allowed", len(o.Sub))
}

// buildInstr fills one machine-instruction template.
func (r *run) buildInstr(red *reduction, t *grammar.Template) (asm.Instr, error) {
	in := asm.Instr{Op: r.gr.SymName(t.Op)}
	for i := range t.Operands {
		opd, err := r.resolveOperand(red, &t.Operands[i])
		if err != nil {
			return in, err
		}
		in.Opds = append(in.Opds, opd)
	}
	return in, nil
}
