package codegen

import (
	"fmt"

	"cogg/internal/asm"
)

// Runtime resolution of precompiled template operands (see plan.go for
// the compilation). The operand grammar:
//
//	r.2                    -> register
//	32, shift32, elmnt.1   -> immediate
//	dsp.1(r.1)             -> disp(base)
//	dsp.1(r.3,r.1)         -> disp(index,base)
//	zero(lng.1,r.1)        -> disp(length,base)
//
// In the two-element address form the first element is a length exactly
// when it is a terminal reference (a value from the IF, such as lng.1);
// registers and register-number constants make it an index.

// atomVal resolves one pre-resolved atom to its number: slots read the
// binding filled from the translation stack and the register
// allocations; literals carry their own value.
func (r *run) atomVal(a *atomPlan) (int64, error) {
	if a.slot >= 0 {
		return r.slots[a.slot], nil
	}
	if a.slot == litSlot {
		return a.val, nil
	}
	return 0, fmt.Errorf("operand %s.%d has no value in this reduction", r.gr.SymName(a.ref.Sym), a.ref.Tag)
}

// regAtom resolves an atom used in a register position: register-class
// references read their allocation; constants (stack_base, pr_base, zero)
// denote register numbers directly.
func (r *run) regAtom(a *atomPlan) (int, error) {
	v, err := r.atomVal(a)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 15 {
		return 0, fmt.Errorf("register number %d out of range", v)
	}
	return int(v), nil
}

// stepRef returns operand i of the compiled template, which must be a
// bare tagged reference with a value in this reduction.
func (r *run) stepRef(st *tmplStep, i int) (*refPlan, error) {
	if i >= len(st.refs) {
		return nil, fmt.Errorf("missing operand %d", i+1)
	}
	rp := &st.refs[i]
	if !rp.bare {
		return nil, fmt.Errorf("operand %d must be a tagged symbol reference", i+1)
	}
	if rp.slot < 0 {
		return nil, fmt.Errorf("operand %s.%d has no value in this reduction",
			r.gr.SymName(rp.ref.Sym), rp.ref.Tag)
	}
	return rp, nil
}

// stepVal resolves operand i of the compiled template to a plain number.
func (r *run) stepVal(st *tmplStep, i int) (int64, error) {
	if i >= len(st.vals) {
		return 0, fmt.Errorf("missing operand %d", i+1)
	}
	vp := &st.vals[i]
	if !vp.scalar {
		return 0, fmt.Errorf("operand %d must not have an address form", i+1)
	}
	return r.atomVal(&vp.atom)
}

// resolveOpd fills in the required values of one pre-classified operand.
func (r *run) resolveOpd(o *opdPlan) (asm.Operand, error) {
	switch o.shape {
	case opdReg:
		n, err := r.regAtom(&o.base)
		if err != nil {
			return asm.Operand{}, err
		}
		return asm.R(n), nil
	case opdImm:
		v, err := r.atomVal(&o.base)
		if err != nil {
			return asm.Operand{}, err
		}
		return asm.I(v), nil
	case opdMem:
		disp, err := r.atomVal(&o.base)
		if err != nil {
			return asm.Operand{}, err
		}
		base, err := r.regAtom(&o.b)
		if err != nil {
			return asm.Operand{}, err
		}
		return asm.M(disp, 0, base), nil
	case opdMemIdx:
		disp, err := r.atomVal(&o.base)
		if err != nil {
			return asm.Operand{}, err
		}
		base, err := r.regAtom(&o.b)
		if err != nil {
			return asm.Operand{}, err
		}
		index, err := r.regAtom(&o.x)
		if err != nil {
			return asm.Operand{}, err
		}
		return asm.M(disp, index, base), nil
	case opdMemLen:
		disp, err := r.atomVal(&o.base)
		if err != nil {
			return asm.Operand{}, err
		}
		base, err := r.regAtom(&o.b)
		if err != nil {
			return asm.Operand{}, err
		}
		length, err := r.atomVal(&o.x)
		if err != nil {
			return asm.Operand{}, err
		}
		return asm.ML(disp, length, base), nil
	}
	return asm.Operand{}, fmt.Errorf("operand has %d address elements; at most two are allowed", o.nsub)
}

// emitMachine fills one machine-instruction template into the code
// buffer, drawing the operand slice from the run's arena.
func (r *run) emitMachine(st *tmplStep) error {
	opds := r.arena.alloc(len(st.opds))
	for i := range st.opds {
		o, err := r.resolveOpd(&st.opds[i])
		if err != nil {
			return err
		}
		opds[i] = o
	}
	r.emit(asm.Instr{Op: st.machOp, Opds: opds})
	return nil
}
