package codegen

import (
	"fmt"
	"strings"
)

// BlockDiag describes one place the skeletal parser blocked: an
// (LR state, IF symbol) pair with no action, which the paper identifies
// as the failure mode of an incomplete specification — a front end
// emitted an IF shape the specification never anticipated. The parser
// records the diagnostic, resynchronizes at the next statement
// boundary, and keeps collecting, so one Generate call can report every
// hole in the specification that the input exercises.
type BlockDiag struct {
	Pos       int      // index of the offending token in the input stream
	Stmt      int      // source statement number (0 without stmt records)
	State     int      // LR state that has no action
	Lookahead string   // offending token, or "$end" at end of input
	Stack     []string // parse stack symbol names, bottom first
	Reason    string   // why the parse cannot proceed
	// Expected lists every IF symbol the specification could have
	// accepted at this point instead (plus "$end" when the program
	// could have ended), in symbol-id order — the specification hole's
	// shape, computed by simulating each symbol's reduce cascade
	// against the blocked stack.
	Expected []string
}

func (d BlockDiag) String() string {
	stack := "(empty)"
	if len(d.Stack) > 0 {
		stack = strings.Join(d.Stack, " ")
	}
	s := fmt.Sprintf("token %d: blocked in state %d on %s (stack: %s): %s",
		d.Pos, d.State, d.Lookahead, stack, d.Reason)
	if d.Stmt > 0 {
		s = fmt.Sprintf("statement %d, %s", d.Stmt, s)
	}
	if len(d.Expected) > 0 {
		s += "; expected one of: " + strings.Join(d.Expected, " ")
	}
	return s
}

// BlockedError reports every site where a translation blocked. Blocks
// holds at least one diagnostic; Truncated notes that collection
// stopped at the configured cap (Config.MaxBlocks) with input left.
type BlockedError struct {
	Name      string
	Blocks    []BlockDiag
	Truncated bool
}

func (e *BlockedError) Error() string {
	suffix := ""
	if e.Truncated {
		suffix = " (more suppressed)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "codegen: %s: the specification cannot translate this IF: %d blocked parse site(s)%s",
		e.Name, len(e.Blocks), suffix)
	for _, d := range e.Blocks {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return b.String()
}

// ResourceKind names a translation-time resource limit.
type ResourceKind int

const (
	ResStackDepth ResourceKind = iota // parse stack exceeded Config.MaxStackDepth
	ResCodeBytes                      // code buffer exceeded Config.MaxCodeBytes
	ResRegisters                      // register allocation failed (demand exceeds the class)
)

func (k ResourceKind) String() string {
	switch k {
	case ResStackDepth:
		return "parse-stack depth"
	case ResCodeBytes:
		return "code-buffer bytes"
	case ResRegisters:
		return "registers"
	}
	return fmt.Sprintf("resource#%d", int(k))
}

// ResourceError reports that a translation hit an explicit resource
// limit. Limits degrade to errors, never panics: a pathological IF
// stream can exhaust a register class, blow the parse stack, or emit
// unbounded code, and all three must surface as a structured per-unit
// failure.
type ResourceError struct {
	Kind  ResourceKind
	Limit int // the configured bound, when the kind has one
	Pos   int // input position at the failure
	State int // LR state at the failure
	Msg   string
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("codegen: resource limit (%s) at token %d, state %d: %s",
		e.Kind, e.Pos, e.State, e.Msg)
}
