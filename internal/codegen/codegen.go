// Package codegen is the skeletal parser and code emission routine of a
// code generator produced by CoGG (paper section 3).
//
// The generator performs a bottom-up parse of the linearized prefix
// intermediate form using the SLR tables constructed by package lr. When
// a reduction occurs the code emission routine removes the production
// from the parse stack, allocates all registers requested by the
// production's templates, fills in the required values (registers,
// displacements, ...), intercepts templates that require semantic
// intervention, appends the remaining instructions to the code buffer,
// and prefixes the left-hand side — with its semantic value — to the
// input stream.
package codegen

import (
	"context"
	"fmt"
	"io"
	"time"

	"cogg/internal/asm"
	"cogg/internal/cse"
	"cogg/internal/grammar"
	"cogg/internal/ir"
	"cogg/internal/obs"
	"cogg/internal/regalloc"
	"cogg/internal/tables"
)

// Config carries the target-dependent portions of the code generator:
// the register classes behind the grammar's nonterminals and the handful
// of emission routines that must change when retargeting.
type Config struct {
	Machine asm.Machine

	// Classes describes the register classes named by the grammar's
	// nonterminals.
	Classes []regalloc.Class

	// MoveOp maps a register class to the register-to-register copy
	// opcode used for `need` evictions ("r" -> "lr").
	MoveOp map[string]string

	// SaveOp maps a CSE width to the store opcode used when a `modifies`
	// operator forces a register-resident CSE into its memory home.
	SaveOp map[cse.Width]string

	// LoadOddOps maps the load_odd_* semantic operators to the opcodes
	// that fill the odd half of an even/odd pair.
	LoadOddOps map[string]string

	// FindCommonType maps a CSE width to the IF type operator prefixed
	// to the input when the CSE must be reloaded from storage.
	FindCommonType map[cse.Width]string

	// Origin and PoolOrigin are the load addresses of code and of the
	// literal pool inside the runtime constant area.
	Origin     int
	PoolOrigin int

	// Trace, when non-nil, receives one line per parser action (shift,
	// reduce, prefix-to-input) — the spec-debugging view of the skeletal
	// parser at work.
	Trace io.Writer

	// Metrics, when non-nil, receives per-translation counters,
	// per-production reduce counts, register-pressure observations, and
	// phase latencies (see NewMetrics). The instruments update through
	// plain atomics, so an instrumented generator keeps the
	// zero-allocation emission hot path.
	Metrics *Metrics

	// MaxBlocks caps the blocked-parse diagnostics collected per
	// Generate before the parser gives up resynchronizing; <= 0 means
	// DefaultMaxBlocks.
	MaxBlocks int

	// MaxStackDepth bounds the parse stack; <= 0 means
	// DefaultMaxStackDepth. Exceeding it is a ResourceError.
	MaxStackDepth int

	// MaxCodeBytes bounds the code buffer (estimated from instruction
	// sizes as emitted, before layout); <= 0 means DefaultMaxCodeBytes.
	// Exceeding it is a ResourceError.
	MaxCodeBytes int
}

// Default translation resource limits, applied when the corresponding
// Config field is zero. They are generous for real programs — the
// paper's compiler never comes near them — and exist so pathological IF
// streams degrade to structured errors instead of unbounded memory.
const (
	DefaultMaxBlocks     = 16
	DefaultMaxStackDepth = 1 << 16
	DefaultMaxCodeBytes  = 1 << 24
)

func (g *Generator) maxBlocks() int {
	if g.cfg.MaxBlocks > 0 {
		return g.cfg.MaxBlocks
	}
	return DefaultMaxBlocks
}

func (g *Generator) maxStackDepth() int {
	if g.cfg.MaxStackDepth > 0 {
		return g.cfg.MaxStackDepth
	}
	return DefaultMaxStackDepth
}

func (g *Generator) maxCodeBytes() int {
	if g.cfg.MaxCodeBytes > 0 {
		return g.cfg.MaxCodeBytes
	}
	return DefaultMaxCodeBytes
}

// Generator is a code generator instantiated from a table module.
//
// A Generator is immutable once New returns: the table module, the
// configuration, the class tables, and the production plans are only
// ever read afterwards, and every Generate call carries its own
// allocator, CSE table, parse stack, and code buffer. One Generator —
// including one built from a single decoded module — therefore serves
// any number of concurrent Generate calls. The one caveat is
// Config.Trace: the trace writer is shared across runs, so a traced
// Generator must either be confined to one goroutine or given a writer
// that is itself safe for concurrent use.
type Generator struct {
	mod *tables.Module
	cfg Config

	classNames []string       // nonterminal symbol ID -> register class name, "" none
	classSym   map[string]int // register class name -> nonterminal symbol ID
	pairClass  map[string]bool

	plans        []prodPlan // by production index
	maxSlots     int        // widest plan, sizes the per-run slot scratch
	prodCountLen int        // Result.ProdCounts length: max production Num + 1
	eofSym       int        // end-marker symbol id
}

// New builds a Generator, verifying that the grammar's register
// nonterminals all have classes and that every semantic operator the
// productions use is known to the code emission routine. New also
// precompiles every production into its plan (see plan.go), so the
// per-reduction work never consults the grammar's string names or maps.
func New(mod *tables.Module, cfg Config) (*Generator, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("codegen: config has no target machine")
	}
	gr := mod.Grammar
	g := &Generator{
		mod:        mod,
		cfg:        cfg,
		classNames: make([]string, len(gr.Syms)),
		classSym:   make(map[string]int),
		pairClass:  make(map[string]bool),
		eofSym:     len(mod.Packed.ColOf) - 1,
	}
	byName := make(map[string]regalloc.Class, len(cfg.Classes))
	for _, c := range cfg.Classes {
		byName[c.Name] = c
		if c.Pair {
			g.pairClass[c.Name] = true
		}
	}
	for _, s := range gr.Syms {
		if s.Kind != grammar.Nonterminal || s.ID == gr.Lambda {
			continue
		}
		if _, ok := byName[s.Name]; !ok {
			return nil, fmt.Errorf("codegen: nonterminal %q has no register class in the configuration", s.Name)
		}
		g.classNames[s.ID] = s.Name
		g.classSym[s.Name] = s.ID
	}
	for _, p := range gr.Prods {
		for _, t := range p.Templates {
			if !t.Semantic {
				continue
			}
			name := gr.SymName(t.Op)
			if !knownSemantic(name) {
				return nil, fmt.Errorf("codegen: production %d uses semantic operator %q unknown to the code emission routine",
					p.Num, name)
			}
		}
		if p.Num >= g.prodCountLen {
			g.prodCountLen = p.Num + 1
		}
	}
	g.compilePlans()
	if cfg.Metrics != nil {
		// Pre-size the per-production counter vector so steady-state
		// reductions never take the grow-under-lock slow path.
		cfg.Metrics.reductions.Grow(g.prodCountLen)
	}
	return g, nil
}

// Grammar returns the generator's grammar.
func (g *Generator) Grammar() *grammar.Grammar { return g.mod.Grammar }

// Result reports statistics of one translation.
type Result struct {
	Reductions   int
	Instructions int
	// ProdCounts counts, per production number (1-based specification
	// order; index 0 is unused), how many times the production was used
	// to reduce — the raw material of the grammar-complexity sweep.
	ProdCounts []int
	// RegAllocs, Evictions, and PeakLiveRegs report register-file
	// activity: registers allocated by using/need, need-evictions
	// materialized as moves, and the peak number of simultaneously busy
	// registers — the pressure signal behind the
	// cogg_register_pressure_peak histogram.
	RegAllocs    int
	Evictions    int
	PeakLiveRegs int
}

// Generate translates one linearized IF program into a code buffer. The
// returned program still requires labels.Layout and loader.Build.
func (g *Generator) Generate(name string, toks []ir.Token) (*asm.Program, *Result, error) {
	return g.GenerateCtx(context.Background(), name, toks)
}

// GenerateCtx is Generate with a context: a trace attached via
// obs.ContextWith records the parse-reduce phase span (with regalloc
// and emit children) under the context's current span.
func (g *Generator) GenerateCtx(ctx context.Context, name string, toks []ir.Token) (*asm.Program, *Result, error) {
	s, err := g.NewSession()
	if err != nil {
		return nil, nil, err
	}
	return s.GenerateCtx(ctx, name, toks)
}

// Session owns the reusable translation state of one goroutine: the
// register file, the CSE table, the parse stack, the code buffer, the
// operand arena, and the per-reduction scratch. Steady-state Generate
// calls on a warmed-up session perform no heap allocation.
//
// A Session is not safe for concurrent use, and the Program and Result
// returned by Generate alias session-owned storage: they remain valid
// only until the next Generate call on the same session. Callers that
// retain programs across calls must use Generator.Generate, which
// builds a fresh session per translation.
type Session struct {
	r run
}

// NewSession builds a reusable translation session for this generator.
func (g *Generator) NewSession() (*Session, error) {
	ra, err := regalloc.New(g.cfg.Classes)
	if err != nil {
		return nil, err
	}
	s := &Session{}
	s.r = run{
		g:         g,
		gr:        g.mod.Grammar,
		ra:        ra,
		cses:      cse.New(),
		prog:      asm.NewProgram(""),
		input:     &inputQueue{},
		res:       &Result{ProdCounts: make([]int, g.prodCountLen)},
		slots:     make([]int64, g.maxSlots),
		allocMark: make([]bool, g.maxSlots),
	}
	// The parse driver is bound once per session (not per call) so the
	// steady-state Generate path never allocates a method value.
	s.r.parseFn = s.r.parse
	return s, nil
}

// Generate translates one linearized IF program, reusing the session's
// buffers. See Session for the aliasing caveat.
func (s *Session) Generate(name string, toks []ir.Token) (*asm.Program, *Result, error) {
	return s.GenerateCtx(context.Background(), name, toks)
}

// GenerateCtx is Generate with a context. A trace attached to the
// context (obs.ContextWith) gets a parse-reduce span with accumulated
// regalloc and emit children; Config.Metrics, when set, is flushed once
// per call. Neither costs an allocation on the emission hot path, and
// with a plain background context and nil Metrics the timing reads are
// skipped entirely.
func (s *Session) GenerateCtx(ctx context.Context, name string, toks []ir.Token) (*asm.Program, *Result, error) {
	return s.r.translate(ctx, name, toks)
}

// translate is one full translation on a run: reset, drive the parse
// (interpreted or generated, per parseFn), collect statistics, and
// flush metrics/trace spans. It is the shared body behind
// Session.GenerateCtx and EmitRT.Translate.
func (r *run) translate(ctx context.Context, name string, toks []ir.Token) (*asm.Program, *Result, error) {
	r.reset(name, toks)
	tr, parent := obs.FromContext(ctx)
	m := r.g.cfg.Metrics
	r.timed = tr != nil || m != nil
	var start time.Time
	if r.timed {
		start = time.Now()
	}
	err := r.parseFn()
	rs := r.ra.RunStats()
	r.res.RegAllocs = int(rs.Allocs)
	r.res.Evictions = int(rs.Evictions)
	r.res.PeakLiveRegs = rs.PeakLive
	r.res.Instructions = r.prog.InstructionCount()
	if r.timed {
		total := time.Since(start)
		regalloc := time.Duration(r.regallocNS)
		emit := time.Duration(r.emitNS)
		if m != nil {
			traceID := ""
			if tr != nil {
				traceID = tr.ID()
			}
			m.observe(r.res, total, regalloc, emit, err != nil, traceID)
		}
		if tr != nil {
			// The regalloc and emit spans are accumulated slices of the
			// parse-reduce phase, not contiguous intervals; they anchor at
			// the phase start with their summed durations.
			pi := tr.AddSpan("parse-reduce", parent, start, total)
			if r.regallocNS > 0 {
				tr.AddSpan("regalloc", pi, start, regalloc)
			}
			if r.emitNS > 0 {
				tr.AddSpan("emit", pi, start, emit)
			}
		}
	}
	if err != nil {
		return nil, nil, err
	}
	return r.prog, r.res, nil
}

// classOf returns the register class name for a nonterminal symbol ID, or
// "" when the symbol is not a register class.
func (g *Generator) classOf(sym int) string { return g.classNames[sym] }

// GenError is a code generation failure with parse position context.
type GenError struct {
	Pos   int // index of the offending token in the input stream
	Token ir.Token
	State int
	Msg   string
}

func (e *GenError) Error() string {
	return fmt.Sprintf("codegen: at token %d (%s, state %d): %s", e.Pos, e.Token, e.State, e.Msg)
}
