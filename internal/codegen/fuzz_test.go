package codegen_test

import (
	"testing"

	"cogg/internal/core"
	"cogg/internal/ir"
	"cogg/internal/rt370"
)

// FuzzGenerate drives the table-driven generator over arbitrary IF
// prefix streams. Whatever the stream — truncated mid-expression,
// symbols in impossible positions, undeclared opcodes — Generate must
// return (possibly a BlockedError carrying diagnostics), never panic:
// blocked-parse recovery and the resource limits are the only exits.
func FuzzGenerate(f *testing.F) {
	cg, err := core.Generate("mini.cogg", miniSpec)
	if err != nil {
		f.Fatal(err)
	}
	gen, err := cg.NewGenerator(rt370.Config())
	if err != nil {
		f.Fatal(err)
	}

	f.Add("assign fullword dsp.100 r.13 iadd fullword dsp.100 r.13 fullword dsp.104 r.13")
	f.Add("label_def lbl.1 assign fullword dsp.100 r.13 fullword dsp.104 r.13 branch_op lbl.1")
	f.Add("icompare r.1 r.2 branch_op lbl.3 cond.8")
	f.Add("assign fullword dsp.100")      // truncated mid-statement
	f.Add("iadd iadd iadd r.1 r.2")       // operator where operand expected
	f.Add("dsp.100 r.13 assign fullword") // operands before any operator
	f.Add("halfword imul r.1 r.2")        // undeclared symbols

	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1<<13 {
			return // bound per-input work; long streams add no new shapes
		}
		toks, err := ir.ParseTokens(text)
		if err != nil {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Generate panicked on %q: %v", text, r)
			}
		}()
		gen.Generate("fuzz", toks)
	})
}
