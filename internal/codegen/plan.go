package codegen

import (
	"cogg/internal/grammar"
)

// This file precompiles each production into a prodPlan at Generator
// construction time. The code emission routine of the paper's section 3
// is interpretive — it resolves tagged references, classifies template
// operands, and dispatches semantic operators on every reduction — and
// the seed implementation paid for that interpretation with two map
// allocations per reduction. A prodPlan moves every decision that
// depends only on the specification out of the hot loop:
//
//   - tagged references become dense slot numbers (a production's
//     distinct bound refs, indexed 0..nslots-1), so bindings live in a
//     reusable []int64 instead of a map[grammar.Ref]int64;
//   - semantic operators become a semOp enum dispatched by jump table
//     instead of a string switch;
//   - template operands are classified once (register, immediate, or one
//     of the three storage shapes) with their atoms pre-resolved to slot
//     numbers or literal values.
//
// Plans change representation, not semantics: an operand error the old
// interpreter raised at reduction time (an unbound reference, a missing
// operand, a non-reference where one is required) is still raised at
// reduction time, from the same production, with the same message.

// semOp enumerates the semantic operators of the code emission routine.
// semMachine marks an ordinary machine-instruction template.
type semOp uint8

const (
	semMachine semOp = iota
	semUsing
	semNeed
	semModifies
	semIgnoreLHS
	semIBMLength
	semPushOdd
	semPushEven
	semLoadOddAddr
	semLoadOddFull
	semLoadOddHalf
	semLoadOddReg
	semLabelLocation
	semLabelPntr
	semBranch
	semBranchIndexed
	semSkip
	semCaseLoad
	semAbort
	semStmtRecord
	semListRequest
	semFullCommon
	semHalfCommon
	semByteCommon
	semRealCommon
	semDRealCommon
	semFindCommon
	semFindRealCommon
	semLoadExtended
	semStoreExtended
	semClearExtended
)

// Slot sentinels for atomPlan and refPlan.
const (
	litSlot     int32 = -1 // atom is a literal; use val
	unboundSlot int32 = -2 // reference never bound in this production
)

// atomPlan is one pre-resolved template atom: a literal value, a bound
// reference's slot, or a statically-unbound reference (kept for the
// runtime error it must still raise).
type atomPlan struct {
	slot int32
	val  int64       // literal value when slot == litSlot
	ref  grammar.Ref // the original reference, for diagnostics
}

// opdShape classifies a template operand once, at plan time.
type opdShape uint8

const (
	opdImm    opdShape = iota // scalar value
	opdReg                    // register-class reference
	opdMem                    // disp(base)
	opdMemIdx                 // disp(index,base)
	opdMemLen                 // disp(length,base), SS form
	opdBad                    // more than two address elements
)

// opdPlan is one pre-classified template operand.
type opdPlan struct {
	shape opdShape
	base  atomPlan // scalar value or displacement
	x     atomPlan // index or length
	b     atomPlan // base register
	nsub  int      // for the opdBad diagnostic
}

// refPlan pre-resolves an operand used as a bare tagged reference
// (refOperand in the interpretive version).
type refPlan struct {
	bare  bool // the operand is a bare tagged reference
	slot  int32
	ref   grammar.Ref
	class string // register class of ref.Sym, "" when none
}

// valPlan pre-resolves an operand used as a plain number (operandValue
// in the interpretive version).
type valPlan struct {
	scalar bool // the operand has no address form
	atom   atomPlan
}

// tmplStep is one compiled template.
type tmplStep struct {
	op     semOp
	t      *grammar.Template // error context (operator name, line)
	tix    int               // template index within the production, for provenance
	name   string            // operator name
	machOp string            // opcode for semMachine steps

	opds []opdPlan // full operand classification, for instruction templates
	refs []refPlan // per-operand bare-reference views
	vals []valPlan // per-operand scalar views
}

// allocStep is one `using` or `need` request.
type allocStep struct {
	slot  int32
	ref   grammar.Ref
	class string // "" raises the not-a-register-class error at runtime
}

// prodPlan is the compiled form of one production.
type prodPlan struct {
	prod   *grammar.Prod
	nslots int

	slotRef []grammar.Ref // slot -> bound reference

	rhsSlot []int32 // RHS position -> slot binding the popped value, -1 none

	uses  []allocStep
	needs []allocStep

	steps []tmplStep

	// tail is the reduction epilogue's static data (release/push), in
	// the exported form shared with emitted engines (see reduce.go);
	// tail.SlotClass doubles as the slot -> register class table the
	// allocation cores consult.
	tail ReduceTail
}

// compilePlans builds the per-production plans for a generator.
func (g *Generator) compilePlans() {
	gr := g.mod.Grammar
	g.plans = make([]prodPlan, len(gr.Prods))
	for i, p := range gr.Prods {
		g.plans[i] = g.compileProd(p)
		if n := g.plans[i].nslots; n > g.maxSlots {
			g.maxSlots = n
		}
	}
}

func (g *Generator) compileProd(p *grammar.Prod) prodPlan {
	gr := g.mod.Grammar
	pl := prodPlan{
		prod: p,
		tail: ReduceTail{
			ProdNum:     p.Num,
			Lambda:      gr.IsLambda(p.LHS),
			LHSTag:      p.LHSTag,
			LHSSlot:     -1,
			LHSFallback: -1,
		},
	}

	// Slots exist for exactly the statically-bound references: tagged RHS
	// occurrences plus the up-front `using`/`need` allocations. Template
	// references outside that set could never acquire a value and keep
	// the unboundSlot marker.
	slotOf := map[grammar.Ref]int32{}
	addSlot := func(ref grammar.Ref) int32 {
		if s, ok := slotOf[ref]; ok {
			return s
		}
		s := int32(len(pl.slotRef))
		slotOf[ref] = s
		pl.slotRef = append(pl.slotRef, ref)
		pl.tail.SlotClass = append(pl.tail.SlotClass, g.classOf(ref.Sym))
		return s
	}

	pl.rhsSlot = make([]int32, len(p.RHS))
	pl.tail.RHSClass = make([]string, len(p.RHS))
	for i, sym := range p.RHS {
		pl.rhsSlot[i] = -1
		pl.tail.RHSClass[i] = g.classOf(sym)
		if tag := p.RHSTags[i]; tag >= 0 {
			pl.rhsSlot[i] = addSlot(grammar.Ref{Sym: sym, Tag: tag})
		}
	}
	for _, ref := range p.Uses {
		pl.uses = append(pl.uses, allocStep{slot: addSlot(ref), ref: ref, class: g.classOf(ref.Sym)})
	}
	for _, ref := range p.Needs {
		pl.needs = append(pl.needs, allocStep{slot: addSlot(ref), ref: ref, class: g.classOf(ref.Sym)})
	}
	pl.nslots = len(pl.slotRef)

	atom := func(a grammar.Arg) atomPlan {
		if !a.IsRef {
			return atomPlan{slot: litSlot, val: a.Num}
		}
		ref := grammar.Ref{Sym: a.Sym, Tag: a.Tag}
		if s, ok := slotOf[ref]; ok {
			return atomPlan{slot: s, ref: ref}
		}
		return atomPlan{slot: unboundSlot, ref: ref}
	}
	opd := func(o *grammar.Operand) opdPlan {
		switch len(o.Sub) {
		case 0:
			if o.Base.IsRef && g.classOf(o.Base.Sym) != "" {
				return opdPlan{shape: opdReg, base: atom(o.Base)}
			}
			return opdPlan{shape: opdImm, base: atom(o.Base)}
		case 1:
			return opdPlan{shape: opdMem, base: atom(o.Base), b: atom(o.Sub[0])}
		case 2:
			// The first element is a length exactly when it is a terminal
			// reference; registers and register-number constants make it
			// an index (see the operand grammar in operand.go).
			sh := opdMemIdx
			if o.Sub[0].IsRef && gr.KindOf(o.Sub[0].Sym) == grammar.Terminal {
				sh = opdMemLen
			}
			return opdPlan{shape: sh, base: atom(o.Base), x: atom(o.Sub[0]), b: atom(o.Sub[1])}
		}
		return opdPlan{shape: opdBad, nsub: len(o.Sub)}
	}

	for ti := range p.Templates {
		t := &p.Templates[ti]
		st := tmplStep{t: t, tix: ti, name: gr.SymName(t.Op)}
		if t.Semantic {
			st.op = semanticOps[st.name] // membership validated by New
		} else {
			st.op = semMachine
			st.machOp = st.name
		}
		for oi := range t.Operands {
			o := &t.Operands[oi]
			st.opds = append(st.opds, opd(o))

			rp := refPlan{}
			if len(o.Sub) == 0 && o.Base.IsRef {
				rp.bare = true
				rp.ref = grammar.Ref{Sym: o.Base.Sym, Tag: o.Base.Tag}
				rp.class = g.classOf(o.Base.Sym)
				if s, ok := slotOf[rp.ref]; ok {
					rp.slot = s
				} else {
					rp.slot = unboundSlot
				}
			}
			st.refs = append(st.refs, rp)
			st.vals = append(st.vals, valPlan{scalar: len(o.Sub) == 0, atom: atom(o.Base)})
		}
		pl.steps = append(pl.steps, st)
	}

	if !pl.tail.Lambda {
		pl.tail.LHSClass = g.classOf(p.LHS)
		pl.tail.LHSName = gr.SymName(p.LHS)
		lref := grammar.Ref{Sym: p.LHS, Tag: p.LHSTag}
		if s, ok := slotOf[lref]; ok {
			pl.tail.LHSSlot = s
		}
		// Class-conversion fallback ("r.1 ::= d.1"): the value of a
		// same-tagged right-side nonterminal transfers to the left side.
		for s, ref := range pl.slotRef {
			if ref != lref && ref.Tag == p.LHSTag && gr.KindOf(ref.Sym) == grammar.Nonterminal {
				pl.tail.LHSFallback = int32(s)
			}
		}
	}
	return pl
}
