package codegen_test

import (
	"strings"
	"testing"

	"cogg/internal/core"
	"cogg/internal/ir"
	"cogg/internal/rt370"
	"cogg/specs"
)

// TestTraceOutput: the spec-debugging trace logs every shift, reduce,
// and the final accept.
func TestTraceOutput(t *testing.T) {
	cg, err := core.Generate("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	cfg := rt370.Config()
	cfg.Trace = &sb
	g, err := cg.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	toks, err := ir.ParseTokens("assign fullword dsp.96 r.13 pos_constant v.7")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Generate("T", toks); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"shift  assign",
		"shift  dsp.96",
		"reduce",
		"r.1 ::= pos_constant v.1",
		"lambda ::= assign fullword dsp.1 r.1 r.2",
		"accept",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("trace lacks %q:\n%s", want, text)
		}
	}
	// The reduced LHS is shifted like input (pushback visible as a shift
	// of r.N).
	if !strings.Contains(text, "shift  r.") {
		t.Errorf("trace does not show the prefixed-back nonterminal:\n%s", text)
	}
}
