package codegen

import (
	"fmt"
	"io"
	"time"

	"cogg/internal/asm"
	"cogg/internal/cse"
	"cogg/internal/grammar"
	"cogg/internal/ir"
	"cogg/internal/lr"
	"cogg/internal/regalloc"
	"cogg/internal/tables"
)

// inputQueue is the parser's input stream with prefix pushback: reduced
// left sides (and the tokens produced by find_common) are prefixed to the
// stream and consumed before the remaining IF.
type inputQueue struct {
	front []ir.Token // pushback, consumed last-in-first-out... see push
	toks  []ir.Token
	pos   int // consumed count of toks
}

func newInputQueue(toks []ir.Token) *inputQueue { return &inputQueue{toks: toks} }

// reset rewinds the queue onto a fresh token stream, keeping the
// pushback buffer's capacity.
func (q *inputQueue) reset(toks []ir.Token) {
	q.front = q.front[:0]
	q.toks = toks
	q.pos = 0
}

// peek returns the next token; ok is false at end of input.
func (q *inputQueue) peek() (ir.Token, bool) {
	if n := len(q.front); n > 0 {
		return q.front[n-1], true
	}
	if q.pos < len(q.toks) {
		return q.toks[q.pos], true
	}
	return ir.Token{}, false
}

// consume removes the token returned by peek.
func (q *inputQueue) consume() {
	if n := len(q.front); n > 0 {
		q.front = q.front[:n-1]
		return
	}
	q.pos++
}

// prefix pushes a sequence of tokens so that seq[0] is consumed next.
func (q *inputQueue) prefix(seq ...ir.Token) {
	for i := len(seq) - 1; i >= 0; i-- {
		q.front = append(q.front, seq[i])
	}
}

// rewriteRegs substitutes register tokens of one class after an eviction.
func (q *inputQueue) rewriteRegs(sym string, from, to int64) {
	for i := range q.front {
		if q.front[i].Sym == sym && q.front[i].Val == from {
			q.front[i].Val = to
		}
	}
}

// stackEntry is one parse/translation stack element.
type stackEntry struct {
	state int
	sym   int
	val   int64
}

// opdArena hands out operand slices for emitted instructions from a
// reusable chunk, so filling a template allocates nothing once the chunk
// has grown to the program's working size. When a chunk fills up a
// larger one replaces it; instructions already emitted keep referencing
// the old chunk, which stays alive behind their slice headers.
type opdArena struct {
	buf []asm.Operand
}

func (a *opdArena) alloc(n int) []asm.Operand {
	if len(a.buf)+n > cap(a.buf) {
		c := 2 * (cap(a.buf) + n)
		if c < 256 {
			c = 256
		}
		a.buf = make([]asm.Operand, 0, c)
	}
	s := a.buf[len(a.buf) : len(a.buf)+n : len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return s
}

// reset recycles the current (largest) chunk for the next run. Operand
// slices handed out before the reset are overwritten by the next run —
// the session-reuse aliasing caveat documented on Session.
func (a *opdArena) reset() { a.buf = a.buf[:0] }

// run is the state of one translation.
type run struct {
	g      *Generator
	gr     *grammar.Grammar
	ra     *regalloc.File
	cses   *cse.Table
	prog   *asm.Program
	input  *inputQueue
	stack  []stackEntry
	res    *Result
	packed *tables.Packed
	dense  *lr.Table // optional uncompressed dispatch (benchmark ablation)

	// parseFn drives the skeletal parser: the interpreted loop for
	// Session, the generated loop for an emitted engine (see emitrt.go).
	// actionFn, when set, replaces the table lookup for the cold paths
	// that re-dispatch actions outside the main loop (blocked-parse
	// resync and expected-symbol simulation) — an emitted engine carries
	// its action table as compiled code, not as a Packed module.
	parseFn  func() error
	actionFn func(state, sym int) lr.Action

	autoLabel int64 // allocator for generator-internal (negative) labels
	stmtNum   int   // current source statement, from stmt_record

	// blocked-parse recovery state: diagnostics collected so far and
	// whether the cap cut collection short.
	blocks    []BlockDiag
	truncated bool

	// code-buffer accounting for the MaxCodeBytes limit. codeErr is
	// sticky so emit (which many template paths call without an error
	// return) can record the violation for the parse loop to surface.
	codeBytes int
	codeErr   error

	// phase timing, accumulated per reduction when metrics or a trace
	// are attached (GenerateCtx sets timed): regallocNS covers the
	// up-front allocate, emitNS the template/semantic steps. Both are
	// slices of the surrounding parse-reduce phase. phaseT0 is the
	// running phase-boundary clock read (see beginReduce/endAllocPhase).
	timed      bool
	regallocNS int64
	emitNS     int64
	phaseT0    time.Time

	// derivation provenance (opt-in, see provenance.go): curPlan and
	// curStep track the reduction context emit attributes entries to;
	// provMove flags the emission inside materializeMove.
	provEnabled bool
	prov        []ProvEntry
	curPlan     *prodPlan
	curStep     *tmplStep
	provMove    bool

	// per-reduction scratch, reused across reductions and runs:
	// slots/allocMark are sized to the generator's widest plan; popped
	// aliases the truncated parse-stack tail for the current reduction;
	// pushed stages the tokens prefixed to the input.
	slots        []int64
	allocMark    []bool
	popped       []stackEntry
	pushed       []ir.Token
	ignoreLHS    bool
	pendingSkips []pendingSkip
	arena        opdArena
}

type pendingSkip struct {
	label     int64
	remaining int64
}

// reset rewinds the run for a fresh translation, reusing every buffer
// whose contents do not escape to the caller. The blocked-parse
// diagnostics do escape (inside BlockedError), so that slice is
// dropped, not truncated.
func (r *run) reset(name string, toks []ir.Token) {
	r.ra.Reset()
	r.ra.ResetStats()
	r.cses.Reset()
	r.prog.Reset(name)
	r.prog.Origin = r.g.cfg.Origin
	r.prog.PoolOrigin = r.g.cfg.PoolOrigin
	r.input.reset(toks)
	r.stack = r.stack[:0]
	r.res.Reductions = 0
	r.res.Instructions = 0
	for i := range r.res.ProdCounts {
		r.res.ProdCounts[i] = 0
	}
	r.packed = r.g.mod.Packed
	r.dense = r.g.mod.Dense
	r.autoLabel = -1
	r.stmtNum = 0
	r.blocks = nil
	r.truncated = false
	r.codeBytes = 0
	r.codeErr = nil
	r.timed = false
	r.regallocNS, r.emitNS = 0, 0
	// Provenance entries escape through Session.Provenance until the
	// next Generate; truncate (keeping capacity) when recording stays
	// on, drop entirely when it was switched off.
	if r.provEnabled {
		r.prov = r.prov[:0]
	} else {
		r.prov = nil
	}
	r.curPlan, r.curStep = nil, nil
	r.provMove = false
	r.pushed = r.pushed[:0]
	r.popped = nil
	r.ignoreLHS = false
	r.pendingSkips = r.pendingSkips[:0]
	r.arena.reset()
}

// parse runs the skeletal LR parser to completion. A blocked parse —
// an (state, IF symbol) pair with no action — is recorded as a
// BlockDiag and recovered by resynchronizing at the next statement
// boundary, so one run reports every blocking site the input exercises
// (up to Config.MaxBlocks); any blocks surface as one BlockedError.
func (r *run) parse() error {
	r.stack = append(r.stack[:0], stackEntry{state: 0, sym: -1})
	maxDepth := r.g.maxStackDepth()
	// Every step either consumes an input token or reduces (popping at
	// least one stack entry after pushing bounded pushback); bound the
	// loop generously to catch non-uniformly-reducible grammars, which
	// Glanville's construction rejects statically.
	limit := 64*(len(r.input.toks)+8) + 4096
	for steps := 0; ; steps++ {
		if steps > limit {
			return &GenError{Pos: r.input.pos, State: r.top().state,
				Msg: "parser appears to be looping (grammar is not uniformly reducible)"}
		}
		if r.codeErr != nil {
			return r.codeErr
		}
		tok, ok := r.input.peek()
		sym := 0
		if !ok {
			sym = r.g.eofSym
		} else {
			s, found := r.gr.Lookup(tok.Sym)
			if !found {
				if r.block(tok, ok, fmt.Sprintf("symbol %q is not declared in the code generator specification", tok.Sym)) {
					continue
				}
				return r.finish()
			}
			switch s.Kind {
			case grammar.Operator, grammar.Terminal, grammar.Nonterminal:
				sym = s.ID
			default:
				if r.block(tok, ok, fmt.Sprintf("%s %q cannot occur in the intermediate form", s.Kind, tok.Sym)) {
					continue
				}
				return r.finish()
			}
		}

		var act lr.Action
		if r.dense != nil {
			act = r.dense.Lookup(r.top().state, sym)
		} else {
			act = r.packed.Lookup(r.top().state, sym)
		}
		if w := r.g.cfg.Trace; w != nil {
			r.traceAction(w, tok, ok, act)
		}
		switch act.Kind() {
		case lr.Accept:
			if len(r.stack) != 1 {
				return &GenError{Pos: r.input.pos, State: r.top().state,
					Msg: fmt.Sprintf("input exhausted with %d symbols left on the parse stack", len(r.stack)-1)}
			}
			return r.finish()
		case lr.Shift:
			if len(r.stack) >= maxDepth {
				return &ResourceError{Kind: ResStackDepth, Limit: maxDepth,
					Pos: r.input.pos, State: r.top().state,
					Msg: fmt.Sprintf("parse stack exceeds %d entries", maxDepth)}
			}
			r.stack = append(r.stack, stackEntry{state: act.Target(), sym: sym, val: tok.Val})
			r.input.consume()
		case lr.Reduce:
			if err := r.reduce(act.Target()); err != nil {
				return err
			}
		default:
			if r.block(tok, ok, "no action; the specification cannot translate this IF shape") {
				continue
			}
			return r.finish()
		}
	}
}

// finish ends a parse: clean runs report nil, runs that blocked report
// every collected diagnostic as one BlockedError.
func (r *run) finish() error {
	if len(r.blocks) == 0 {
		return nil
	}
	return &BlockedError{Name: r.prog.Name, Blocks: r.blocks, Truncated: r.truncated}
}

// block records a blocked-parse diagnostic and resynchronizes so the
// parse can continue collecting further blocks. It reports false when
// parsing cannot continue: the input is exhausted or the diagnostic cap
// is reached.
//
// Recovery abandons the offending IF subtree: the pushback queue, the
// parse stack, and the register and CSE state all describe the broken
// statement, so all four reset, and input is skipped until a token that
// can begin a statement (one with an action in the start state). The
// code emitted after a block is best-effort — Generate still returns an
// error — recovery exists to surface every specification hole in one
// run, not to salvage the translation.
func (r *run) block(tok ir.Token, haveTok bool, reason string) bool {
	d := BlockDiag{Pos: r.input.pos, Stmt: r.stmtNum, State: r.top().state,
		Lookahead: "$end", Reason: reason, Expected: r.expectedSymbols()}
	if haveTok {
		d.Lookahead = tok.String()
	}
	for _, e := range r.stack[1:] {
		d.Stack = append(d.Stack, r.gr.SymName(e.sym))
	}
	r.blocks = append(r.blocks, d)
	if w := r.g.cfg.Trace; w != nil {
		fmt.Fprintf(w, "state %4d  BLOCKED on %s; resynchronizing\n", d.State, d.Lookahead)
	}
	if len(r.blocks) >= r.g.maxBlocks() {
		if haveTok {
			r.truncated = true
		}
		return false
	}
	if !haveTok {
		return false
	}
	r.input.front = r.input.front[:0]
	r.stack = append(r.stack[:0], stackEntry{state: 0, sym: -1})
	r.ra.Reset()
	r.cses.Reset()
	r.input.consume()
	for {
		next, ok := r.input.peek()
		if !ok {
			// The start state accepts at end of input, so the main loop
			// terminates cleanly and finish reports the blocks.
			return true
		}
		if s, found := r.gr.Lookup(next.Sym); found {
			switch s.Kind {
			case grammar.Operator, grammar.Terminal, grammar.Nonterminal:
				if r.lookupAction(0, s.ID).Kind() != lr.Error {
					return true
				}
			}
		}
		r.input.consume()
	}
}

func (r *run) top() *stackEntry { return &r.stack[len(r.stack)-1] }

// lookupAction dispatches one (state, symbol) pair outside the main
// parse loop: blocked-parse resynchronization and the expected-symbol
// simulation. The interpreted loop keeps its own inlined dense/packed
// dispatch; an emitted engine supplies actionFn instead of tables.
func (r *run) lookupAction(state, sym int) lr.Action {
	if r.actionFn != nil {
		return r.actionFn(state, sym)
	}
	if r.dense != nil {
		return r.dense.Lookup(state, sym)
	}
	return r.packed.Lookup(state, sym)
}

// traceAction writes one spec-debugging line for the pending action.
func (r *run) traceAction(w io.Writer, tok ir.Token, haveTok bool, act lr.Action) {
	lookahead := "$end"
	if haveTok {
		lookahead = tok.String()
	}
	switch act.Kind() {
	case lr.Shift:
		fmt.Fprintf(w, "state %4d  shift  %-16s -> state %d\n", r.top().state, lookahead, act.Target())
	case lr.Reduce:
		p := r.gr.Prods[act.Target()]
		fmt.Fprintf(w, "state %4d  reduce %-16s by %d: %s\n", r.top().state, lookahead, p.Num, r.gr.ProdString(p))
	case lr.Accept:
		fmt.Fprintf(w, "state %4d  accept\n", r.top().state)
	default:
		fmt.Fprintf(w, "state %4d  ERROR on %s\n", r.top().state, lookahead)
	}
}

// nextAutoLabel allocates a generator-internal label id (< 0).
func (r *run) nextAutoLabel() int64 {
	id := r.autoLabel
	r.autoLabel--
	return id
}

// holdCSEUses returns the extra use count that register (class, n)
// carries on behalf of live CSEs.
func (r *run) holdCSEUses(class string, n int) int {
	total := 0
	for _, e := range r.cses.HeldIn(class, n) {
		total += e.Uses
	}
	return total
}
