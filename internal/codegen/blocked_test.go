package codegen_test

import (
	"errors"
	"strings"
	"testing"

	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/rt370"
)

func buildMiniWith(t *testing.T, mutate func(*codegen.Config)) *codegen.Generator {
	t.Helper()
	cg, err := core.Generate("mini.cogg", miniSpec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	cfg := rt370.Config()
	if mutate != nil {
		mutate(&cfg)
	}
	gen, err := cg.NewGenerator(cfg)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return gen
}

// TestBlockedParseCollectsMultipleDiagnostics: a single Generate call
// over IF with two independent shapes the (deliberately incomplete)
// specification never anticipated must report both blocking sites, each
// with state, stack, and lookahead context — not abort at the first.
func TestBlockedParseCollectsMultipleDiagnostics(t *testing.T) {
	gen := buildMini(t)
	toks := mustTokens(t,
		// Blocks mid-expression: label_def where an operand is required.
		"assign fullword dsp.100 r.13 label_def lbl.5 "+
			// A translatable statement between the two holes.
			"assign fullword dsp.104 r.13 fullword dsp.108 r.13 "+
			// Blocks again: a condition mask in an operand position.
			"assign fullword dsp.112 r.13 cond.8")
	_, _, err := gen.Generate("HOLES", toks)
	var be *codegen.BlockedError
	if !errors.As(err, &be) {
		t.Fatalf("Generate = %v, want *BlockedError", err)
	}
	if len(be.Blocks) < 2 {
		t.Fatalf("collected %d blocks, want >= 2:\n%v", len(be.Blocks), err)
	}
	if be.Truncated {
		t.Errorf("Truncated set below the cap")
	}
	seen := map[string]bool{}
	for i, d := range be.Blocks {
		if d.Lookahead == "" {
			t.Errorf("block %d has no lookahead", i)
		}
		if d.State < 0 {
			t.Errorf("block %d has state %d", i, d.State)
		}
		if d.Reason == "" {
			t.Errorf("block %d has no reason", i)
		}
		seen[d.Lookahead] = true
	}
	if !seen["label_def"] || !seen["cond.8"] {
		t.Errorf("lookaheads = %v, want both label_def and cond.8", seen)
	}
	// The first block happens mid-statement: the partial assign must be
	// visible on the recorded stack.
	if len(be.Blocks[0].Stack) == 0 {
		t.Errorf("first block has an empty stack; want the partial statement")
	}
	if !strings.Contains(err.Error(), "state") || !strings.Contains(err.Error(), "stack") {
		t.Errorf("error text lacks state/stack context:\n%v", err)
	}
}

// TestBlockedParseCap: collection stops at Config.MaxBlocks and the
// error says so.
func TestBlockedParseCap(t *testing.T) {
	gen := buildMiniWith(t, func(c *codegen.Config) { c.MaxBlocks = 2 })
	toks := mustTokens(t,
		"assign fullword dsp.100 r.13 cond.1 "+
			"assign fullword dsp.104 r.13 cond.2 "+
			"assign fullword dsp.108 r.13 cond.3 "+
			"assign fullword dsp.112 r.13 cond.4")
	_, _, err := gen.Generate("CAPPED", toks)
	var be *codegen.BlockedError
	if !errors.As(err, &be) {
		t.Fatalf("Generate = %v, want *BlockedError", err)
	}
	if len(be.Blocks) != 2 {
		t.Fatalf("collected %d blocks, want exactly 2 (the cap)", len(be.Blocks))
	}
	if !be.Truncated {
		t.Errorf("Truncated not set at the cap with input remaining")
	}
}

// TestBlockedAtEndOfInput: a statement truncated mid-expression blocks
// on $end with the partial parse on the stack.
func TestBlockedAtEndOfInput(t *testing.T) {
	gen := buildMini(t)
	toks := mustTokens(t, "assign fullword dsp.100 r.13")
	_, _, err := gen.Generate("TRUNC", toks)
	var be *codegen.BlockedError
	if !errors.As(err, &be) {
		t.Fatalf("Generate = %v, want *BlockedError", err)
	}
	if len(be.Blocks) != 1 || be.Blocks[0].Lookahead != "$end" {
		t.Fatalf("blocks = %+v, want one $end block", be.Blocks)
	}
}

// TestUndeclaredSymbolIsBlock: symbols the specification never declared
// are blocked-parse diagnostics too, and the parse continues past them.
func TestUndeclaredSymbolIsBlock(t *testing.T) {
	gen := buildMini(t)
	toks := mustTokens(t,
		"halfword dsp.2 r.13 "+
			"assign fullword dsp.104 r.13 fullword dsp.108 r.13 "+
			"imul r.1 r.2")
	_, _, err := gen.Generate("UNDECL", toks)
	var be *codegen.BlockedError
	if !errors.As(err, &be) {
		t.Fatalf("Generate = %v, want *BlockedError", err)
	}
	if len(be.Blocks) < 2 {
		t.Fatalf("collected %d blocks, want >= 2:\n%v", len(be.Blocks), err)
	}
	if !strings.Contains(be.Blocks[0].Reason, "not declared") {
		t.Errorf("first reason = %q, want a not-declared diagnostic", be.Blocks[0].Reason)
	}
}

// TestCleanParseHasNoBlocks: a translatable stream still reports nil.
func TestCleanParseHasNoBlocks(t *testing.T) {
	gen := buildMini(t)
	toks := mustTokens(t, "assign fullword dsp.104 r.13 fullword dsp.108 r.13")
	if _, _, err := gen.Generate("CLEAN", toks); err != nil {
		t.Fatalf("Generate = %v", err)
	}
}

// TestStackDepthLimit: a pathological operator chain degrades to a
// ResourceError, never a panic or unbounded growth.
func TestStackDepthLimit(t *testing.T) {
	gen := buildMiniWith(t, func(c *codegen.Config) { c.MaxStackDepth = 16 })
	text := "assign fullword dsp.100 r.13 "
	for i := 0; i < 64; i++ {
		text += "iadd "
	}
	text += "r.1 r.2"
	_, _, err := gen.Generate("DEEP", mustTokens(t, text))
	var re *codegen.ResourceError
	if !errors.As(err, &re) || re.Kind != codegen.ResStackDepth {
		t.Fatalf("Generate = %v, want ResourceError{ResStackDepth}", err)
	}
	if re.Limit != 16 {
		t.Errorf("Limit = %d, want 16", re.Limit)
	}
}

// TestCodeBytesLimit: the code buffer is bounded; exceeding the bound
// is a structured error.
func TestCodeBytesLimit(t *testing.T) {
	gen := buildMiniWith(t, func(c *codegen.Config) { c.MaxCodeBytes = 6 })
	toks := mustTokens(t,
		"assign fullword dsp.100 r.13 iadd fullword dsp.100 r.13 fullword dsp.104 r.13")
	_, _, err := gen.Generate("BIGCODE", toks)
	var re *codegen.ResourceError
	if !errors.As(err, &re) || re.Kind != codegen.ResCodeBytes {
		t.Fatalf("Generate = %v, want ResourceError{ResCodeBytes}", err)
	}
}

// TestRegisterExhaustionIsResourceError: register-allocation failure
// carries the ResRegisters kind for the batch failure taxonomy. The
// class is shrunk to two allocatable registers so a right-spine of adds
// (every operand loaded and held live) deterministically exhausts it.
func TestRegisterExhaustionIsResourceError(t *testing.T) {
	gen := buildMiniWith(t, func(c *codegen.Config) {
		for i := range c.Classes {
			if c.Classes[i].Name == "r" {
				c.Classes[i].Regs = []int{1, 2}
				c.Classes[i].Extra = nil
			}
		}
	})
	// A balanced add tree holds one live register per level — depth 4
	// cannot fit in 2 registers (the spine forms fold into memory
	// operands and never build pressure).
	var tree func(depth int) string
	tree = func(depth int) string {
		if depth == 0 {
			return "fullword dsp.100 r.13"
		}
		return "iadd " + tree(depth-1) + " " + tree(depth-1)
	}
	text := "assign fullword dsp.4 r.13 " + tree(4)
	_, _, err := gen.Generate("PRESSURE", mustTokens(t, text))
	var re *codegen.ResourceError
	if err == nil {
		t.Fatal("two-register class absorbed the pressure; want ResourceError")
	}
	if !errors.As(err, &re) || re.Kind != codegen.ResRegisters {
		t.Fatalf("Generate = %v, want ResourceError{ResRegisters}", err)
	}
	if !strings.Contains(re.Error(), "resource limit") {
		t.Errorf("error text = %q", re.Error())
	}
}
