package codegen_test

import (
	"context"
	"strings"
	"testing"

	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/obs"
	"cogg/internal/rt370"
	"cogg/specs"
)

// amdahlGenObs builds an amdahl470 generator whose Config carries
// metrics registered on reg (nil reg: unregistered instruments).
func amdahlGenObs(t *testing.T, reg *obs.Registry) *codegen.Generator {
	t.Helper()
	cg, err := core.Generate("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt370.Config()
	cfg.Metrics = codegen.NewMetrics(reg, "amdahl470")
	gen, err := cg.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

// TestProvenanceCoversEveryInstruction is the acceptance check for the
// derivation map: with recording enabled, every emitted instruction has
// exactly one entry attributing it to a production, and template
// entries carry the template position and resolved operand sources.
func TestProvenanceCoversEveryInstruction(t *testing.T) {
	g := amdahlGen(t)
	s, err := g.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s.EnableProvenance(true)
	toks := allocIF(t, 8)
	prog, res, err := s.Generate("prov", toks)
	if err != nil {
		t.Fatal(err)
	}
	prov := s.Provenance()
	if len(prov) != len(prog.Instrs) {
		t.Fatalf("provenance has %d entries for %d instructions", len(prov), len(prog.Instrs))
	}
	if res.Reductions == 0 {
		t.Fatal("workload performed no reductions")
	}
	kinds := map[string]int{}
	for i, e := range prov {
		if e.Instr != i {
			t.Fatalf("entry %d maps instruction %d; entries must follow emission order", i, e.Instr)
		}
		if e.Prod <= 0 {
			t.Errorf("instruction %d (%s) has no production attribution", i, e.Op)
		}
		switch e.Kind {
		case codegen.ProvTemplate, codegen.ProvSemantic, codegen.ProvEvictMove:
		default:
			t.Errorf("instruction %d has unknown provenance kind %q", i, e.Kind)
		}
		if e.Kind == codegen.ProvTemplate && e.TemplateLine <= 0 {
			t.Errorf("template-derived instruction %d lacks a specification line", i)
		}
		kinds[e.Kind]++
	}
	if kinds[codegen.ProvTemplate] == 0 {
		t.Error("no template-derived instructions recorded")
	}
	if kinds[codegen.ProvSemantic] == 0 {
		t.Error("no semantic-intervention instructions recorded")
	}
	// At least one template instruction must name its operand sources as
	// source=resolved pairs.
	sourced := false
	for _, e := range prov {
		if e.Kind != codegen.ProvTemplate {
			continue
		}
		for _, o := range e.Operands {
			if strings.Contains(o, "=") {
				sourced = true
			}
		}
	}
	if !sourced {
		t.Error("no template operand carries a source=resolved annotation")
	}

	text := codegen.FormatProvenance(prov)
	if !strings.Contains(text, "prod") || !strings.Contains(text, "::=") {
		t.Errorf("FormatProvenance lacks production attribution:\n%s", text)
	}
}

// TestProvenanceDisabledByDefault: recording is opt-in; a plain session
// must not retain entries.
func TestProvenanceDisabledByDefault(t *testing.T) {
	g := amdahlGen(t)
	s, err := g.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Generate("plain", allocIF(t, 2)); err != nil {
		t.Fatal(err)
	}
	if prov := s.Provenance(); len(prov) != 0 {
		t.Fatalf("provenance recorded %d entries with recording disabled", len(prov))
	}
}

// TestGenerateCtxTraceSpans: a trace on the context gets the
// parse-reduce phase span with regalloc and emit children.
func TestGenerateCtxTraceSpans(t *testing.T) {
	g := amdahlGen(t)
	s, err := g.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("", "test")
	ctx, done := obs.StartSpan(obs.ContextWith(t.Context(), tr, -1), "request")
	if _, _, err := s.GenerateCtx(ctx, "traced", allocIF(t, 4)); err != nil {
		t.Fatal(err)
	}
	done()
	td := tr.Snapshot()
	byName := map[string]obs.Span{}
	for _, sp := range td.Spans {
		byName[sp.Name] = sp
	}
	pr, ok := byName["parse-reduce"]
	if !ok {
		t.Fatalf("no parse-reduce span; have %+v", td.Spans)
	}
	for _, phase := range []string{"regalloc", "emit"} {
		sp, ok := byName[phase]
		if !ok {
			t.Fatalf("no %s span; have %+v", phase, td.Spans)
		}
		if td.Spans[sp.Parent].Name != "parse-reduce" {
			t.Errorf("%s span parented to %q, want parse-reduce", phase, td.Spans[sp.Parent].Name)
		}
		if sp.DurNS < 0 || sp.DurNS > pr.DurNS {
			t.Errorf("%s duration %d outside parse-reduce duration %d", phase, sp.DurNS, pr.DurNS)
		}
	}
}

// TestMetricsExposition: a metered generator surfaces per-production
// reduce counts, register activity, and phase latencies as valid
// Prometheus exposition.
func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	g := amdahlGenObs(t, reg)
	s, err := g.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	toks := allocIF(t, 8)
	_, res, err := s.Generate("metered", toks)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	reg.WriteText(&sb)
	text := sb.String()
	if err := obs.LintExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, want := range []string{
		`cogg_translations_total{spec="amdahl470"} 1`,
		`cogg_reductions_total{spec="amdahl470",production=`,
		`cogg_register_allocs_total{spec="amdahl470"} `,
		`cogg_phase_seconds_bucket{spec="amdahl470",phase="parse-reduce",le=`,
		`cogg_phase_seconds_bucket{spec="amdahl470",phase="regalloc",le=`,
		`cogg_phase_seconds_bucket{spec="amdahl470",phase="emit",le=`,
		`cogg_register_pressure_peak_count{spec="amdahl470"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}
	// The per-production series must account for every reduction.
	sum := 0
	for _, c := range res.ProdCounts {
		sum += c
	}
	if sum != res.Reductions {
		t.Errorf("ProdCounts sum %d != Reductions %d", sum, res.Reductions)
	}
}

// TestZeroAllocSteadyStateWithMetrics is the PR's allocation gate: the
// instrumented hot path (metrics flushing per Generate, timed phases
// per reduction) must keep the zero-allocation steady state of the
// plain path. Since the propagation PR the phase histograms carry
// exemplar slots and trace context plumbing is compiled into translate;
// the gate covers that configuration too — untraced steady state stays
// 0 allocs/op, while a traced request (which is allowed to allocate)
// deposits trace-ID exemplars into the same instruments.
func TestZeroAllocSteadyStateWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	g := amdahlGenObs(t, reg)
	s, err := g.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	toks := allocIF(t, 24)
	for i := 0; i < 3; i++ {
		if _, _, err := s.Generate("warm", toks); err != nil {
			t.Fatal(err)
		}
	}
	// One traced request through the same session: exemplar machinery
	// engaged, so the steady-state measurement below runs against
	// exemplar-enabled histograms, not a propagation-free configuration.
	tr := obs.NewTrace("", "alloc-gate")
	ctx := obs.ContextWith(context.Background(), tr, tr.StartSpan("request", -1))
	if _, _, err := s.GenerateCtx(ctx, "traced", toks); err != nil {
		t.Fatal(err)
	}
	var reductions int
	allocs := testing.AllocsPerRun(20, func() {
		_, r, err := s.Generate("steady", toks)
		if err != nil {
			t.Fatal(err)
		}
		reductions = r.Reductions
	})
	if reductions == 0 {
		t.Fatal("workload performed no reductions")
	}
	if allocs != 0 {
		t.Errorf("metered steady-state translation allocates: %.1f allocs/run over %d reductions, want 0",
			allocs, reductions)
	}
	// The traced run must have left its trace ID as an exemplar on the
	// exposition — the metrics-to-traces link the SLO layer relies on.
	var text strings.Builder
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), `# {trace_id="`+tr.ID()+`"}`) {
		t.Errorf("exposition carries no exemplar for trace %s", tr.ID())
	}
	if err := obs.LintExposition(text.String()); err != nil {
		t.Errorf("exposition with exemplars fails lint: %v", err)
	}
}

// TestRegisterPressureStats: the Result register-activity fields are
// populated and self-consistent.
func TestRegisterPressureStats(t *testing.T) {
	reg := obs.NewRegistry()
	g := amdahlGenObs(t, reg)
	s, err := g.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := s.Generate("pressure", allocIF(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.RegAllocs <= 0 {
		t.Errorf("RegAllocs = %d, want > 0", res.RegAllocs)
	}
	if res.PeakLiveRegs <= 0 {
		t.Errorf("PeakLiveRegs = %d, want > 0", res.PeakLiveRegs)
	}
	if res.Evictions < 0 || res.Evictions > res.RegAllocs {
		t.Errorf("Evictions = %d outside [0, RegAllocs=%d]", res.Evictions, res.RegAllocs)
	}
}
