package codegen

import (
	"time"

	"cogg/internal/obs"
)

// Metrics is the code generator's bundle of pre-resolved obs
// instruments for one specification. Every instrument is resolved once
// (NewMetrics) and updated with plain atomics, so an instrumented
// generator keeps the zero-allocation steady state of the emission hot
// path — verified by the AllocsPerRun gate in alloc_test.go.
//
// Metric inventory (all labeled spec="<spec name>"):
//
//	cogg_translations_total              Generate calls
//	cogg_translation_failures_total      Generate calls that returned an error
//	cogg_reductions_total{production=N}  reductions by production number
//	cogg_register_allocs_total           registers allocated by using/need
//	cogg_register_evictions_total        need-evictions materialized as moves
//	cogg_register_pressure_peak          histogram of peak live registers per translation
//	cogg_phase_seconds{phase=...}        parse-reduce, regalloc, emit latency
//
// The regalloc and emit phases are slices of parse-reduce (the paper's
// code emission routine runs inside the reduce actions), so their sums
// are bounded by — not additive with — the parse-reduce sum.
type Metrics struct {
	spec string

	translations *obs.Counter
	failures     *obs.Counter
	reductions   *obs.IndexedCounters
	regAllocs    *obs.Counter
	evictions    *obs.Counter
	pressure     *obs.Histogram

	phaseParse    *obs.Histogram
	phaseRegalloc *obs.Histogram
	phaseEmit     *obs.Histogram
}

// NewMetrics registers (or re-resolves — registration is idempotent)
// the code generation metrics for one spec on a registry. A nil
// registry yields unregistered instruments, costing the updates but
// exposing nothing; pass nil Config.Metrics instead to skip the cost.
func NewMetrics(reg *obs.Registry, spec string) *Metrics {
	sl := obs.L("spec", spec)
	phase := func(name string) *obs.Histogram {
		// Exemplar slots link a phase-latency bucket to the most recent
		// traced unit that landed there; untraced units use the plain
		// Observe path and never touch them.
		return reg.Histogram("cogg_phase_seconds",
			"Latency of one pipeline phase over one unit, in seconds; buckets carry trace-ID exemplars.",
			obs.L("spec", spec, "phase", name), obs.LatencyBuckets).EnableExemplars()
	}
	return &Metrics{
		spec: spec,
		translations: reg.Counter("cogg_translations_total",
			"Translations attempted (Generate calls).", sl),
		failures: reg.Counter("cogg_translation_failures_total",
			"Translations that returned an error.", sl),
		reductions: reg.IndexedCounters("cogg_reductions_total",
			"SLR reductions by production number (1-based specification order).",
			sl, "production"),
		regAllocs: reg.Counter("cogg_register_allocs_total",
			"Registers allocated by the using/need requests.", sl),
		evictions: reg.Counter("cogg_register_evictions_total",
			"need evictions materialized as register-to-register moves.", sl),
		pressure: reg.Histogram("cogg_register_pressure_peak",
			"Peak simultaneously live registers per translation.", sl, obs.CountBuckets),
		phaseParse:    phase("parse-reduce"),
		phaseRegalloc: phase("regalloc"),
		phaseEmit:     phase("emit"),
	}
}

// Spec returns the specification name the metrics are labeled with.
func (m *Metrics) Spec() string { return m.spec }

// observe flushes one finished translation into the instruments. Called
// once per Generate — allocation-free given the reductions slice was
// pre-grown (see New).
func (m *Metrics) observe(res *Result, total, regalloc, emit time.Duration, failed bool, traceID string) {
	m.translations.Inc()
	if failed {
		m.failures.Inc()
	}
	for num, c := range res.ProdCounts {
		if c > 0 {
			m.reductions.At(num).Add(int64(c))
		}
	}
	m.regAllocs.Add(int64(res.RegAllocs))
	m.evictions.Add(int64(res.Evictions))
	m.pressure.Observe(float64(res.PeakLiveRegs))
	if traceID != "" {
		m.phaseParse.ObserveExemplar(total.Seconds(), traceID)
		m.phaseRegalloc.ObserveExemplar(regalloc.Seconds(), traceID)
		m.phaseEmit.ObserveExemplar(emit.Seconds(), traceID)
	} else {
		m.phaseParse.ObserveDuration(total)
		m.phaseRegalloc.ObserveDuration(regalloc)
		m.phaseEmit.ObserveDuration(emit)
	}
}
