package codegen_test

import (
	"sync"
	"testing"

	"cogg/internal/ir"
)

// TestGeneratorConcurrency: one Generator serves concurrent Generate
// calls (each run carries its own allocator, stack, and code buffer).
func TestGeneratorConcurrency(t *testing.T) {
	g := amdahlGen(t)
	toks, err := ir.ParseTokens(
		"assign fullword dsp.96 r.13 iadd fullword dsp.100 r.13 imult fullword dsp.104 r.13 fullword dsp.108 r.13")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := g.Generate("PAR", toks); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
