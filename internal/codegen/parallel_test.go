package codegen_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"cogg/internal/asm"
	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/ir"
	"cogg/internal/labels"
	"cogg/internal/rt370"
	"cogg/internal/tables"
	"cogg/specs"
)

var errNoReductions = errors.New("translation recorded no reductions")

// parallelStreams are distinct IF programs of different shapes — loads,
// arithmetic with memory operands, register pressure, comparisons —
// so concurrent runs exercise different productions and register
// allocation decisions against the shared tables.
var parallelStreams = []string{
	"assign fullword dsp.96 r.13 iadd fullword dsp.100 r.13 imult fullword dsp.104 r.13 fullword dsp.108 r.13",
	"assign fullword dsp.96 r.13 iadd fullword dsp.96 r.13 fullword dsp.100 r.13",
	"assign fullword dsp.112 r.13 isub imult fullword dsp.96 r.13 fullword dsp.100 r.13 iadd fullword dsp.104 r.13 fullword dsp.108 r.13",
	"assign fullword dsp.96 r.13 idiv fullword dsp.100 r.13 fullword dsp.104 r.13",
	"assign fullword dsp.120 r.13 iadd iadd iadd fullword dsp.96 r.13 fullword dsp.100 r.13 fullword dsp.104 r.13 fullword dsp.108 r.13",
	"assign fullword dsp.96 r.13 imod fullword dsp.100 r.13 fullword dsp.104 r.13",
	"assign fullword dsp.96 r.13 ineg fullword dsp.100 r.13",
	"assign fullword dsp.96 r.13 imult iadd fullword dsp.100 r.13 fullword dsp.104 r.13 isub fullword dsp.108 r.13 fullword dsp.112 r.13",
}

// sharedDecodedGenerator builds the amdahl470 tables once, serializes
// them, and reconstitutes ONE generator from the decoded module — the
// exact object the batch service hands to all of its workers.
func sharedDecodedGenerator(t *testing.T) *codegen.Generator {
	t.Helper()
	cg, err := core.Generate("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cg.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	mod, err := tables.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := codegen.New(mod, rt370.Config())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// listingOf generates and lays out one stream, returning the rendered
// listing (layout resolves label addresses, so listings are comparable
// byte for byte).
func listingOf(t *testing.T, g *codegen.Generator, stream string) string {
	t.Helper()
	toks, err := ir.ParseTokens(stream)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := g.Generate("PAR", toks)
	if err != nil {
		t.Fatalf("Generate(%q): %v", stream, err)
	}
	cfg := rt370.Config()
	if err := labels.Layout(prog, cfg.Machine); err != nil {
		t.Fatal(err)
	}
	return asm.Listing(prog, cfg.Machine)
}

// TestSharedGeneratorRace: one generator built from one decoded table
// module serves many goroutines translating distinct IF streams. Every
// concurrent translation must emit exactly the listing the same
// generator produced serially — any cross-talk through shared state
// (tables, class maps, or accidental per-run leakage) shows up as a
// diff here, and as a data race under go test -race.
func TestSharedGeneratorRace(t *testing.T) {
	g := sharedDecodedGenerator(t)

	want := make([]string, len(parallelStreams))
	for i, s := range parallelStreams {
		want[i] = listingOf(t, g, s)
	}
	for i, a := range want {
		for j, b := range want[i+1:] {
			if a == b {
				t.Fatalf("streams %d and %d produce identical listings; the race check would be vacuous", i, i+1+j)
			}
		}
	}

	const goroutines = 24
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	mismatch := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Each goroutine walks the streams from a different
				// starting point so different streams overlap in time.
				n := (w + i) % len(parallelStreams)
				toks, err := ir.ParseTokens(parallelStreams[n])
				if err != nil {
					errs <- err
					return
				}
				prog, res, err := g.Generate("PAR", toks)
				if err != nil {
					errs <- err
					return
				}
				if res.Reductions == 0 {
					errs <- errNoReductions
					return
				}
				cfg := rt370.Config()
				if err := labels.Layout(prog, cfg.Machine); err != nil {
					errs <- err
					return
				}
				if got := asm.Listing(prog, cfg.Machine); got != want[n] {
					mismatch <- got + "\n--- want ---\n" + want[n]
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	close(mismatch)
	for err := range errs {
		t.Fatal(err)
	}
	for m := range mismatch {
		t.Fatalf("concurrent translation diverged from serial baseline:\n%s", m)
	}
}
