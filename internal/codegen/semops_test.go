package codegen_test

import (
	"strings"
	"testing"

	"cogg/internal/asm"
	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/ir"
	"cogg/internal/rt370"
	"cogg/specs"
)

// amdahlGen builds a generator from the full spec once per test run.
func amdahlGen(t *testing.T) *codegen.Generator {
	t.Helper()
	cg, err := core.Generate("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := cg.NewGenerator(rt370.Config())
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func gen(t *testing.T, g *codegen.Generator, ifText string) *asm.Program {
	t.Helper()
	toks, err := ir.ParseTokens(ifText)
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := g.Generate("T", toks)
	if err != nil {
		t.Fatalf("Generate(%q): %v", ifText, err)
	}
	return prog
}

func ops(p *asm.Program) string {
	var out []string
	for i := range p.Instrs {
		switch p.Instrs[i].Pseudo {
		case asm.Branch:
			out = append(out, "branch")
		case asm.AddrConst:
			out = append(out, "dc")
		case asm.CaseLoad:
			out = append(out, "case")
		case asm.LabelMark:
		default:
			out = append(out, p.Instrs[i].Op)
		}
	}
	return strings.Join(out, " ")
}

// TestEvenOddDivision: the idiv production yields LR/SRDA/DR and pushes
// the odd register (paper section 4.3).
func TestEvenOddDivision(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign fullword dsp.96 r.13 idiv fullword dsp.100 r.13 fullword dsp.104 r.13")
	got := ops(p)
	// The divisor reduces to a register, then the memory-dividend
	// production loads the dividend into the even register of a pair,
	// sign-extends, divides, and the odd register (quotient) is stored.
	want := "l l srda dr st"
	if got != want {
		t.Fatalf("division sequence %q, want %q", got, want)
	}
	even := p.Instrs[2].Opds[0].Reg // SRDA names the even register
	if p.Instrs[4].Opds[0].Reg != even+1 {
		t.Errorf("stored r%d, want the odd register r%d", p.Instrs[4].Opds[0].Reg, even+1)
	}
}

// TestEvenOddModulo: imod pushes the even register (remainder).
func TestEvenOddModulo(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign fullword dsp.96 r.13 imod fullword dsp.100 r.13 fullword dsp.104 r.13")
	var even int
	for i := range p.Instrs {
		if p.Instrs[i].Op == "srda" {
			even = p.Instrs[i].Opds[0].Reg
		}
	}
	last := p.Instrs[len(p.Instrs)-1]
	if last.Op != "st" || last.Opds[0].Reg != even {
		t.Errorf("modulo must store the even register r%d, stored r%d", even, last.Opds[0].Reg)
	}
}

// TestMaximalMunchIndexing: an indexed load folds into one RX
// instruction under the full grammar.
func TestMaximalMunchIndexing(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign fullword dsp.96 r.13 "+
		"iadd fullword l_shift fullword dsp.100 r.13 v.2 dsp.200 r.13 fullword dsp.104 r.13")
	got := ops(p)
	// Load index, scale, fold the indexed memory operand into one RX
	// instruction: no separate LA/AR address arithmetic appears.
	for _, op := range strings.Fields(got) {
		if op == "la" || op == "ar" {
			t.Errorf("indexed access not folded: %q", got)
		}
	}
	// The A (or the final load) must carry an index register.
	indexed := false
	for i := range p.Instrs {
		for _, o := range p.Instrs[i].Opds {
			if o.Kind == asm.Mem && o.Index != 0 {
				indexed = true
			}
		}
	}
	if !indexed {
		t.Errorf("no indexed operand emitted: %q", got)
	}
}

// TestSkipCountsInstructions: the imax production emits CR, a skip
// branch over exactly one instruction, then LR.
func TestSkipSemantics(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign fullword dsp.96 r.13 imax fullword dsp.100 r.13 fullword dsp.104 r.13")
	var branchIx int = -1
	for i := range p.Instrs {
		if p.Instrs[i].Pseudo == asm.Branch {
			branchIx = i
		}
	}
	if branchIx < 0 {
		t.Fatalf("no skip branch in %q", ops(p))
	}
	in := p.Instrs[branchIx]
	if in.Label >= 0 {
		t.Errorf("skip must use an internal (negative) label, got %d", in.Label)
	}
	target := p.Labels[in.Label]
	if target != branchIx+2 {
		t.Errorf("skip over %d instructions, want 1 (label at %d, branch at %d)",
			target-branchIx-1, target, branchIx)
	}
}

// TestIBMLengthEncoding: the MVC template records length-1.
func TestIBMLengthEncoding(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign addr dsp.96 r.13 addr dsp.200 r.13 lng.8")
	var mvc *asm.Instr
	for i := range p.Instrs {
		if p.Instrs[i].Op == "mvc" {
			mvc = &p.Instrs[i]
		}
	}
	if mvc == nil {
		t.Fatalf("no MVC in %q", ops(p))
	}
	if mvc.Opds[0].Len != 7 {
		t.Errorf("MVC length code %d, want 7 (8-1)", mvc.Opds[0].Len)
	}
}

// TestStatementRecordsStampInstructions.
func TestStatementRecordStamps(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "statement stmt.12 assign fullword dsp.96 r.13 pos_constant v.1")
	for i := range p.Instrs {
		if p.Instrs[i].Stmt != 12 {
			t.Errorf("instruction %d stamped %d, want 12", i, p.Instrs[i].Stmt)
		}
	}
}

// TestAbortRecorded.
func TestAbortRecorded(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "abort_op err.5")
	found := false
	for _, code := range p.AbortSites {
		if code == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("abort site missing: %v", p.AbortSites)
	}
}

// TestListRequestRecorded.
func TestListRequestRecorded(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "procedure_call cnt.3 fullword dsp.256 r.12")
	found := false
	for _, n := range p.CallArgs {
		if n == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("list_request missing: %v", p.CallArgs)
	}
}

// TestNeedEvictionEmitsMove: occupy r14/r15 via a procedure_call inside
// an expression context is impossible directly, so force eviction with
// need r.14 in range_check while r14 holds a live value. Instead, fill
// all registers so `using` scratch in the branch template must still
// work and a need on a busy register triggers LR.
func TestFindCommonRegisterPath(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign fullword dsp.96 r.13 "+
		"make_common cse.7 cnt.1 fullword dsp.500 r.13 imult fullword dsp.100 r.13 fullword dsp.104 r.13 "+
		"assign fullword dsp.120 r.13 use_common cse.7")
	got := ops(p)
	// The reuse must not reload or recompute: exactly one multiply, two
	// stores, no load between them beyond the operands.
	if strings.Count(got, "mr") != 1 && strings.Count(got, "m") < 1 {
		t.Errorf("multiply count wrong: %q", got)
	}
	if strings.Count(got, "st") != 2 {
		t.Errorf("store count wrong: %q", got)
	}
	// No spill store to the temp home 500 and no reload from it.
	for i := range p.Instrs {
		for _, o := range p.Instrs[i].Opds {
			if o.Kind == asm.Mem && o.Val == 500 {
				t.Errorf("register-resident CSE touched its memory home: %q", ops(p))
			}
		}
	}
}

// TestFindCommonMemoryPath: a modifies on the CSE register forces the
// save; the later use reloads from the temporary.
func TestFindCommonMemoryPath(t *testing.T) {
	g := amdahlGen(t)
	// make_common(a*b), then an iadd that modifies the SAME register is
	// impossible to force deterministically from IF; instead the CSE
	// register is invalidated by the imult production allocating pairs.
	// Use a direct sequence: make_common, then iadd r-with-cse as the
	// LEFT operand of another add — the iadd's modifies invalidates it.
	p := gen(t, g, "assign fullword dsp.96 r.13 "+
		"iadd make_common cse.9 cnt.1 fullword dsp.500 r.13 imult fullword dsp.100 r.13 fullword dsp.104 r.13 fullword dsp.108 r.13 "+
		"assign fullword dsp.120 r.13 use_common cse.9")
	got := ops(p)
	// The modifies in `iadd r.2 fullword...` saves the CSE to 500 first.
	sawSave, sawReload := false, false
	for i := range p.Instrs {
		in := p.Instrs[i]
		for _, o := range in.Opds {
			if o.Kind == asm.Mem && o.Val == 500 {
				if in.Op == "st" {
					sawSave = true
				}
				if in.Op == "l" {
					sawReload = true
				}
			}
		}
	}
	if !sawSave {
		t.Errorf("CSE not saved before modification: %q", got)
	}
	if !sawReload {
		t.Errorf("CSE not reloaded from its home: %q", got)
	}
}

// TestGenerateErrors: the blocking diagnostics of the skeletal parser.
func TestGenerateErrors(t *testing.T) {
	g := amdahlGen(t)
	cases := map[string]string{
		"undeclared symbol": "assign nosuchop dsp.1 r.13 r.1",
		"opcode in IF":      "assign st dsp.1 r.13 r.1",
		"unparseable shape": "iadd iadd iadd",
		"truncated input":   "assign fullword dsp.96 r.13",
		"cse reuse unknown": "assign fullword dsp.96 r.13 use_common cse.42",
	}
	for name, src := range cases {
		toks, err := ir.ParseTokens(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, _, err := g.Generate("BAD", toks); err == nil {
			t.Errorf("%s: Generate succeeded", name)
		}
	}
}

// TestRegisterExhaustion: expressions deeper than the register file
// produce the allocator's diagnostic, not a crash.
func TestRegisterExhaustion(t *testing.T) {
	g := amdahlGen(t)
	// Build a chain of imax (keeps both operands live via skip/LR) deep
	// enough to exhaust nine registers.
	inner := "fullword dsp.100 r.13"
	expr := inner
	for i := 0; i < 12; i++ {
		expr = "imax " + expr + " " + inner
	}
	toks, err := ir.ParseTokens("assign fullword dsp.96 r.13 " + expr)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = g.Generate("DEEP", toks)
	if err == nil {
		t.Skip("register pressure absorbed; deepen the expression")
	}
	if !strings.Contains(err.Error(), "no free") {
		t.Errorf("diagnostic = %v", err)
	}
}

// TestConfigValidation: a config missing register classes is rejected.
func TestConfigValidation(t *testing.T) {
	cg, err := core.Generate("amdahl470.cogg", specs.Amdahl470)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rt370.Config()
	cfg.Classes = cfg.Classes[:1] // drop dbl, f, cc
	if _, err := cg.NewGenerator(cfg); err == nil {
		t.Error("generator built without classes for dbl/f/cc")
	}
	cfg2 := rt370.Config()
	cfg2.Machine = nil
	if _, err := cg.NewGenerator(cfg2); err == nil {
		t.Error("generator built without a machine")
	}
}
