package codegen

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"cogg/internal/asm"
)

// Derivation provenance: the paper's central inspectability claim made
// concrete. Every instruction a table-driven generator emits is the
// consequence of one SLR reduction firing one of a production's
// templates (or one register decision forced by a need eviction), so
// the mapping instruction -> (production, template, operand sources)
// exists by construction — this file records it. Recording is opt-in
// per session (EnableProvenance): the hot path pays one boolean test
// per emitted instruction when off.

// ProvEntry kinds.
const (
	// ProvTemplate is an ordinary machine-instruction template filled
	// verbatim from the production.
	ProvTemplate = "template"
	// ProvSemantic is an instruction emitted by a semantic operator's
	// intervention (push_odd loads, branches, abort calls, ...).
	ProvSemantic = "semantic"
	// ProvEvictMove is the register-to-register copy materializing a
	// `need` eviction during the production's up-front allocation.
	ProvEvictMove = "evict-move"
)

// ProvEntry maps one emitted instruction back to its derivation: the
// production whose reduction emitted it, the template (by index within
// the production and specification source line), and the operand
// sources (tagged grammar references resolved against the translation
// stack and the register allocations).
type ProvEntry struct {
	// Instr is the instruction's index in emission order — the same
	// index the listing and Program.Instrs use.
	Instr int    `json:"instr"`
	Op    string `json:"op"`
	Kind  string `json:"kind"`
	// Prod is the production number (1-based specification order) whose
	// reduction emitted the instruction.
	Prod     int    `json:"production"`
	ProdText string `json:"production_text,omitempty"`
	// Template is the template's index within the production (0-based)
	// and TemplateLine its specification source line. Unset for
	// evict-moves, which precede every template.
	Template     int    `json:"template,omitempty"`
	TemplateLine int    `json:"template_line,omitempty"`
	Operator     string `json:"operator,omitempty"` // template opcode or semantic operator
	// Operands renders each resolved operand, prefixed source=resolved
	// when the template operand is a tagged reference ("r.1=R5",
	// "dsp.1(r.13)=96(R13)").
	Operands []string `json:"operands,omitempty"`
	Stmt     int      `json:"stmt,omitempty"` // source statement, from stmt_record
}

// ErrProvenanceUnsupported is returned when derivation recording is
// requested from an emitted (generated-code) engine. Provenance is an
// interpreter-only feature: the emitted engine compiles templates away,
// so the template-index bookkeeping the recording relies on does not
// exist there. Translate with the interpreted engine to explain a unit.
var ErrProvenanceUnsupported = errors.New(
	"codegen: derivation recording is interpreter-only; the emitted engine does not support provenance")

// EnableProvenance turns derivation recording on or off for subsequent
// Generate calls on this session.
func (s *Session) EnableProvenance(on bool) { s.r.provEnabled = on }

// Provenance returns the derivation entries of the last Generate call.
// A blocked or failed translation keeps the entries recorded up to the
// failure — the best-effort emission the blocked-parse recovery
// produced — which is exactly what the 422 diagnosis path wants. The
// slice is session-owned: valid until the next Generate call.
func (s *Session) Provenance() []ProvEntry { return s.r.prov }

// recordProv appends the provenance entry for the instruction just
// emitted at index ix, attributing it to the current reduction state.
func (r *run) recordProv(ix int) {
	in := &r.prog.Instrs[ix]
	e := ProvEntry{
		Instr: ix,
		Op:    provOpName(in),
		Stmt:  r.stmtNum,
	}
	if pl := r.curPlan; pl != nil {
		e.Prod = pl.prod.Num
		e.ProdText = r.gr.ProdString(pl.prod)
	}
	st := r.curStep
	switch {
	case r.provMove:
		e.Kind = ProvEvictMove
		st = nil
	case st != nil && st.op == semMachine:
		e.Kind = ProvTemplate
	case st != nil:
		e.Kind = ProvSemantic
	default:
		e.Kind = ProvSemantic
	}
	if st != nil {
		e.Template = st.tix
		e.TemplateLine = st.t.Line
		e.Operator = st.name
	}
	// Operand sources line up with the plan's operands only for plain
	// template fills; semantic interventions synthesize their own
	// operand lists.
	var src *tmplStep
	if e.Kind == ProvTemplate {
		src = st
	}
	for oi := range in.Opds {
		desc := provOperandString(&in.Opds[oi])
		if src != nil && oi < len(src.opds) {
			if s := r.provSource(&src.opds[oi]); s != "" {
				desc = s + "=" + desc
			}
		}
		e.Operands = append(e.Operands, desc)
	}
	r.prov = append(r.prov, e)
}

// provSource renders a template operand's source form: tagged grammar
// references by name, literals by value; bare literals annotate nothing
// (the resolved operand already is the value).
func (r *run) provSource(o *opdPlan) string {
	atom := func(a *atomPlan) string {
		if a.slot == litSlot {
			return strconv.FormatInt(a.val, 10)
		}
		return r.gr.SymName(a.ref.Sym) + "." + strconv.Itoa(a.ref.Tag)
	}
	switch o.shape {
	case opdReg, opdImm:
		if o.base.slot == litSlot {
			return ""
		}
		return atom(&o.base)
	case opdMem:
		return atom(&o.base) + "(" + atom(&o.b) + ")"
	case opdMemIdx:
		return atom(&o.base) + "(" + atom(&o.x) + "," + atom(&o.b) + ")"
	case opdMemLen:
		return atom(&o.base) + "(" + atom(&o.x) + "," + atom(&o.b) + ")"
	}
	return ""
}

func provOpName(in *asm.Instr) string {
	if in.Op != "" {
		return in.Op
	}
	switch in.Pseudo {
	case asm.Branch:
		return "branch"
	case asm.CaseLoad:
		return "case_load"
	case asm.AddrConst:
		return "addr_const"
	case asm.LabelMark:
		return "label"
	}
	return "?"
}

func provOperandString(o *asm.Operand) string {
	switch o.Kind {
	case asm.Reg:
		return "R" + strconv.Itoa(o.Reg)
	case asm.Imm:
		return strconv.FormatInt(o.Val, 10)
	case asm.Mem:
		if o.Index != 0 {
			return fmt.Sprintf("%d(R%d,R%d)", o.Val, o.Index, o.Base)
		}
		return fmt.Sprintf("%d(R%d)", o.Val, o.Base)
	case asm.MemLen:
		return fmt.Sprintf("%d(%d,R%d)", o.Val, o.Len, o.Base)
	case asm.LabelOp:
		return "L" + strconv.FormatInt(o.Val, 10)
	}
	return "?"
}

// FormatProvenance renders entries as a table, one line per
// instruction:
//
//	0  l      <- prod 12 [template 0 @ line 34]  r.1=R5, fullword dsp.1(r.13)=96(R13)
//	   r.1 ::= fullword dsp.1 r.2
func FormatProvenance(entries []ProvEntry) string {
	var b strings.Builder
	lastProd := -1
	for _, e := range entries {
		via := ""
		switch e.Kind {
		case ProvTemplate:
			via = fmt.Sprintf("template %d @ line %d", e.Template, e.TemplateLine)
		case ProvSemantic:
			via = fmt.Sprintf("semantic %s @ line %d", e.Operator, e.TemplateLine)
		case ProvEvictMove:
			via = "evict-move"
		}
		fmt.Fprintf(&b, "%4d  %-8s <- prod %-3d [%s]", e.Instr, e.Op, e.Prod, via)
		if len(e.Operands) > 0 {
			fmt.Fprintf(&b, "  %s", strings.Join(e.Operands, ", "))
		}
		b.WriteByte('\n')
		if e.Prod != lastProd && e.ProdText != "" {
			fmt.Fprintf(&b, "      %s\n", e.ProdText)
			lastProd = e.Prod
		}
	}
	return b.String()
}
