package codegen_test

import (
	"strings"
	"testing"

	"cogg/internal/asm"
)

// TestQuadPrecisionStorage: load_extended/store_extended expand to
// register-pair LD/STD sequences over two long floating registers.
func TestQuadPrecisionStorage(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign quadrealword dsp.96 r.13 quadrealword dsp.200 r.13")
	got := ops(p)
	if got != "ld ld std std" {
		t.Fatalf("quad move sequence %q", got)
	}
	// The halves sit eight bytes apart.
	if p.Instrs[0].Opds[1].Val != 200 || p.Instrs[1].Opds[1].Val != 208 {
		t.Errorf("load displacements %d/%d", p.Instrs[0].Opds[1].Val, p.Instrs[1].Opds[1].Val)
	}
	if p.Instrs[2].Opds[1].Val != 96 || p.Instrs[3].Opds[1].Val != 104 {
		t.Errorf("store displacements %d/%d", p.Instrs[2].Opds[1].Val, p.Instrs[3].Opds[1].Val)
	}
	// Register halves: f and f+2.
	if p.Instrs[1].Opds[0].Reg != p.Instrs[0].Opds[0].Reg+2 {
		t.Errorf("pair registers %d/%d", p.Instrs[0].Opds[0].Reg, p.Instrs[1].Opds[0].Reg)
	}
}

// TestVarAssignMVCL: the computed-length block move loads both pairs and
// issues MVCL (paper production 12).
func TestVarAssignMVCL(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "var_assign addr dsp.96 r.13 addr dsp.600 r.13 fullword dsp.1000 r.13")
	got := ops(p)
	if !strings.HasSuffix(got, "mvcl") {
		t.Fatalf("sequence %q does not end in MVCL", got)
	}
	if strings.Count(got, "lr") < 4 {
		t.Errorf("MVCL setup needs four register copies: %q", got)
	}
	var mvcl *asm.Instr
	for i := range p.Instrs {
		if p.Instrs[i].Op == "mvcl" {
			mvcl = &p.Instrs[i]
		}
	}
	if mvcl.Opds[0].Reg%2 != 0 || mvcl.Opds[1].Reg%2 != 0 {
		t.Errorf("MVCL operands are not even pair bases: %v", mvcl.Opds)
	}
}

// TestUninitCheck: the check production compares against the pattern and
// calls the not_initialized stub.
func TestUninitCheck(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign fullword dsp.96 r.13 uninit_check fullword dsp.100 r.13 fullword dsp.104 r.13")
	got := ops(p)
	if !strings.Contains(got, "c bal") {
		t.Fatalf("check sequence missing: %q", got)
	}
	for i := range p.Instrs {
		if p.Instrs[i].Op == "bal" {
			if p.Instrs[i].Opds[1].Val != 224 { // not_initialized offset
				t.Errorf("BAL to %d, want the not_initialized stub at 224", p.Instrs[i].Opds[1].Val)
			}
		}
	}
}

// TestRangeCheckRegisters: the register form of range_check.
func TestRangeCheckRegisters(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign fullword dsp.96 r.13 "+
		"range_check fullword dsp.100 r.13 pos_constant v.1 pos_constant v.10")
	got := ops(p)
	// Bounds load into registers, then CR/BAL pairs.
	if strings.Count(got, "bal") != 2 || strings.Count(got, "cr") != 2 {
		t.Fatalf("register range check sequence %q", got)
	}
}

// TestIndexedBooleanAnd: the indexed boolean_and production computes the
// byte address with LA before the TM chain.
func TestIndexedBooleanAnd(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign byteword dsp.96 r.13 "+
		"boolean_and byteword pos_constant v.2 dsp.100 r.13 byteword dsp.104 r.13")
	got := ops(p)
	if !strings.Contains(got, "la") || strings.Count(got, "tm") != 2 {
		t.Fatalf("indexed and sequence %q", got)
	}
}

// TestSetBitIndexedElement: set_bit_value with an index register and a
// constant element mask.
func TestSetBitIndexedElement(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "set_bit_value byteword pos_constant v.3 dsp.100 r.13 elmnt.64")
	got := ops(p)
	if !strings.HasSuffix(got, "oi") {
		t.Fatalf("sequence %q", got)
	}
	last := p.Instrs[len(p.Instrs)-1]
	if last.Opds[1].Val != 64 {
		t.Errorf("OI mask %d", last.Opds[1].Val)
	}
}

// TestDynamicBitTest: the computed-element membership test emits the
// DIV-8/MOD-8 shift sequence of the paper's production 144.
func TestDynamicBitTest(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign byteword dsp.96 r.13 "+
		"test_bit_value addr dsp.100 r.13 fullword dsp.200 r.13")
	got := ops(p)
	for _, want := range []string{"srl", "sll", "ic", "n"} {
		if !strings.Contains(" "+got+" ", " "+want+" ") {
			t.Fatalf("dynamic bit test lacks %q: %q", want, got)
		}
	}
}

// TestShiftByRegister: the variable-shift production passes the count in
// a base register.
func TestShiftByRegister(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign fullword dsp.96 r.13 "+
		"l_shift fullword dsp.100 r.13 fullword dsp.104 r.13")
	var sla *asm.Instr
	for i := range p.Instrs {
		if p.Instrs[i].Op == "sla" {
			sla = &p.Instrs[i]
		}
	}
	if sla == nil {
		t.Fatalf("no SLA in %q", ops(p))
	}
	if sla.Opds[1].Kind != asm.Mem || sla.Opds[1].Base == 0 {
		t.Errorf("shift count not register-relative: %+v", sla.Opds[1])
	}
}

// TestConversionsAreMoves: precision conversions emit register renames.
func TestConversionsAreMoves(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign dblrealword dsp.96 r.13 s_d_cnvrt realword dsp.104 r.13")
	got := ops(p)
	if got != "le ldr std" {
		t.Errorf("conversion sequence %q", got)
	}
}

// TestMinimalOperandErrors: template interpretation failures carry
// production context.
func TestClearXC(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "clear addr dsp.96 r.13 lng.16")
	var xc *asm.Instr
	for i := range p.Instrs {
		if p.Instrs[i].Op == "xc" {
			xc = &p.Instrs[i]
		}
	}
	if xc == nil {
		t.Fatalf("no XC in %q", ops(p))
	}
	if xc.Opds[0].Len != 15 {
		t.Errorf("XC length code %d, want 15", xc.Opds[0].Len)
	}
	if xc.Opds[0].Base != xc.Opds[1].Base {
		t.Errorf("XC must clear in place: %v", xc.Opds)
	}
}

// TestMVIStoreProduction: a boolean literal store is a single MVI.
func TestMVIStoreProduction(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "assign byteword dsp.96 r.13 pos_constant v.1")
	if got := ops(p); got != "mvi" {
		t.Errorf("byte literal store = %q, want a single mvi", got)
	}
	if p.Instrs[0].Opds[1].Val != 1 {
		t.Errorf("MVI immediate %d", p.Instrs[0].Opds[1].Val)
	}
}

// TestCompareLiteralProduction: compare against a small constant
// materializes it with LA inside one reduction.
func TestCompareLiteralProduction(t *testing.T) {
	g := amdahlGen(t)
	p := gen(t, g, "branch_op lbl.1 cond.8 icompare fullword dsp.96 r.13 pos_constant v.7 label_def lbl.1")
	got := ops(p)
	if got != "l la cr branch" {
		t.Errorf("literal compare sequence %q", got)
	}
}
