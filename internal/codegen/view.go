package codegen

import (
	"strconv"

	"cogg/internal/tables"
)

// This file exports a read-only view of the compiled production plans
// for the Go-source emitter (internal/emitgo). The emitter consumes the
// interpreter's own static resolution — the same slot numbering, operand
// classification, and semantic-op dispatch the interpreted hot loop
// runs — so the code it generates is a partial evaluation of exactly
// the plans the interpreter would have walked, not a reimplementation
// that could drift.

// SemOp and its constants are the exported face of the semantic-op
// enum (see plan.go).
type SemOp = semOp

const (
	SemMachine       = semMachine
	SemUsing         = semUsing
	SemNeed          = semNeed
	SemModifies      = semModifies
	SemIgnoreLHS     = semIgnoreLHS
	SemIBMLength     = semIBMLength
	SemPushOdd       = semPushOdd
	SemPushEven      = semPushEven
	SemLoadOddAddr   = semLoadOddAddr
	SemLoadOddFull   = semLoadOddFull
	SemLoadOddHalf   = semLoadOddHalf
	SemLoadOddReg    = semLoadOddReg
	SemLabelLocation = semLabelLocation
	SemLabelPntr     = semLabelPntr
	SemBranch        = semBranch
	SemBranchIndexed = semBranchIndexed
	SemSkip          = semSkip
	SemCaseLoad      = semCaseLoad
	SemAbort         = semAbort
	SemStmtRecord    = semStmtRecord
	SemListRequest   = semListRequest
	SemFullCommon    = semFullCommon
	SemHalfCommon    = semHalfCommon
	SemByteCommon    = semByteCommon
	SemRealCommon    = semRealCommon
	SemDRealCommon   = semDRealCommon
	SemFindCommon    = semFindCommon
	SemFindRealCommon = semFindRealCommon
	SemLoadExtended  = semLoadExtended
	SemStoreExtended = semStoreExtended
	SemClearExtended = semClearExtended
)

// OpdShape and its constants are the exported face of the operand
// classification (see plan.go).
type OpdShape = opdShape

const (
	OpdImm    = opdImm
	OpdReg    = opdReg
	OpdMem    = opdMem
	OpdMemIdx = opdMemIdx
	OpdMemLen = opdMemLen
	OpdBad    = opdBad
)

// Exported slot sentinels (see plan.go).
const (
	LitSlot     = litSlot
	UnboundSlot = unboundSlot
)

// AtomView is one pre-resolved template atom: a slot binding, a literal
// value, or a statically-unbound reference kept for its runtime error.
type AtomView struct {
	Slot    int32 // >= 0 slot number; LitSlot literal; UnboundSlot unbound
	Val     int64 // literal value when Slot == LitSlot
	SymName string
	Tag     int
}

// OpdView is one pre-classified template operand.
type OpdView struct {
	Shape OpdShape
	Base  AtomView // scalar value or displacement
	X     AtomView // index or length
	B     AtomView // base register
	NSub  int      // for the OpdBad diagnostic
}

// RefView is an operand's bare-tagged-reference reading.
type RefView struct {
	Bare    bool
	Slot    int32
	SymName string
	Tag     int
	Class   string
}

// ValView is an operand's scalar reading.
type ValView struct {
	Scalar bool
	Atom   AtomView
}

// StepView is one compiled template step.
type StepView struct {
	Op     SemOp
	Name   string // operator name
	MachOp string // opcode for SemMachine steps
	Line   int    // specification source line
	Opds   []OpdView
	Refs   []RefView
	Vals   []ValView
}

// AllocView is one `using` or `need` request.
type AllocView struct {
	Class   string // "" raises the not-a-register-class error
	SymName string
	Tag     int
	Slot    int32
}

// ProdView is the compiled form of one production.
type ProdView struct {
	Index  int // production index: the Reduce action target
	Num    int // 1-based specification order
	Line   int
	Text   string // specification notation, for generated comments
	RHSLen int
	NSlots int
	// RHSSlot maps each RHS position to the slot bound from the popped
	// stack value, -1 for none.
	RHSSlot  []int32
	SlotName []string // slot -> "sym.tag", for generated comments
	Uses     []AllocView
	Needs    []AllocView
	Steps    []StepView
	Tail     ReduceTail
}

// EngineView is the compiled-plan view the Go-source emitter renders
// from; grammar symbols and the packed action table come from the
// module itself.
type EngineView struct {
	EOFSym       int
	MaxSlots     int
	ProdCountLen int
	Prods        []ProdView
}

// NewEngineView compiles the module's plans (exactly as New does) and
// converts them to the exported view.
func NewEngineView(mod *tables.Module, cfg Config) (*EngineView, error) {
	g, err := New(mod, cfg)
	if err != nil {
		return nil, err
	}
	gr := mod.Grammar
	v := &EngineView{
		EOFSym:       g.eofSym,
		MaxSlots:     g.maxSlots,
		ProdCountLen: g.prodCountLen,
	}
	atom := func(a *atomPlan) AtomView {
		if a.slot == litSlot {
			return AtomView{Slot: litSlot, Val: a.val}
		}
		return AtomView{Slot: a.slot, SymName: gr.SymName(a.ref.Sym), Tag: a.ref.Tag}
	}
	for pi := range g.plans {
		pl := &g.plans[pi]
		p := pl.prod
		pv := ProdView{
			Index:   pi,
			Num:     p.Num,
			Line:    p.Line,
			Text:    gr.ProdString(p),
			RHSLen:  len(p.RHS),
			NSlots:  pl.nslots,
			RHSSlot: pl.rhsSlot,
			Tail:    pl.tail,
		}
		for _, ref := range pl.slotRef {
			pv.SlotName = append(pv.SlotName, gr.SymName(ref.Sym)+"."+strconv.Itoa(ref.Tag))
		}
		alloc := func(a *allocStep) AllocView {
			return AllocView{Class: a.class, SymName: gr.SymName(a.ref.Sym), Tag: a.ref.Tag, Slot: a.slot}
		}
		for i := range pl.uses {
			pv.Uses = append(pv.Uses, alloc(&pl.uses[i]))
		}
		for i := range pl.needs {
			pv.Needs = append(pv.Needs, alloc(&pl.needs[i]))
		}
		for si := range pl.steps {
			st := &pl.steps[si]
			sv := StepView{Op: st.op, Name: st.name, MachOp: st.machOp, Line: st.t.Line}
			for oi := range st.opds {
				o := &st.opds[oi]
				sv.Opds = append(sv.Opds, OpdView{
					Shape: o.shape, Base: atom(&o.base), X: atom(&o.x), B: atom(&o.b), NSub: o.nsub,
				})
			}
			for ri := range st.refs {
				rp := &st.refs[ri]
				rv := RefView{Bare: rp.bare, Slot: rp.slot, Class: rp.class}
				if rp.bare {
					rv.SymName = gr.SymName(rp.ref.Sym)
					rv.Tag = rp.ref.Tag
				}
				sv.Refs = append(sv.Refs, rv)
			}
			for vi := range st.vals {
				vp := &st.vals[vi]
				sv.Vals = append(sv.Vals, ValView{Scalar: vp.scalar, Atom: atom(&vp.atom)})
			}
			pv.Steps = append(pv.Steps, sv)
		}
		v.Prods = append(v.Prods, pv)
	}
	return v, nil
}
