package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("active with no rules")
	}
	if err := Eval("any/site", "key"); err != nil {
		t.Fatalf("disarmed Eval = %v", err)
	}
}

func TestErrorSchedule(t *testing.T) {
	defer Reset()
	Reset()
	Set(Rule{Site: "a/b", Kind: KindError, Class: "io", After: 2, Count: 2})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Eval("a/b", "") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v (all %v)", i, got[i], want[i], got)
		}
	}
}

func TestKeyMatch(t *testing.T) {
	defer Reset()
	Reset()
	Set(Rule{Site: "s", Key: "unit-3", Kind: KindError})
	if Eval("s", "unit-1") != nil {
		t.Fatal("fired for wrong key")
	}
	err := Eval("s", "unit-3")
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Class != "io" {
		t.Fatalf("Eval = %v, want InjectedError with default io class", err)
	}
	if Eval("other", "unit-3") != nil {
		t.Fatal("fired for wrong site")
	}
}

func TestPanicAction(t *testing.T) {
	defer Reset()
	Reset()
	Set(Rule{Site: "p", Kind: KindPanic, Count: 1})
	defer func() {
		r := recover()
		if _, ok := r.(*Panic); !ok {
			t.Fatalf("recovered %v, want *Panic", r)
		}
	}()
	Eval("p", "")
	t.Fatal("panic rule did not panic")
}

func TestDelayAction(t *testing.T) {
	defer Reset()
	Reset()
	Set(Rule{Site: "d", Kind: KindDelay, Delay: 30 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := Eval("d", ""); err != nil {
		t.Fatalf("delay Eval = %v", err)
	}
	if since := time.Since(start); since < 25*time.Millisecond {
		t.Fatalf("delay slept %v, want ~30ms", since)
	}
}

func TestArmParsing(t *testing.T) {
	defer Reset()
	Reset()
	err := Arm("batch/cache/read=error:io@1*2; codegen/reduce#p7=delay:50ms, tables/decode=panic*1")
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(rules)
	r0, r1, r2 := rules[0].Rule, rules[1].Rule, rules[2].Rule
	mu.Unlock()
	if n != 3 {
		t.Fatalf("parsed %d rules, want 3", n)
	}
	if r0.Site != "batch/cache/read" || r0.Kind != KindError || r0.Class != "io" || r0.After != 1 || r0.Count != 2 {
		t.Fatalf("rule 0 = %+v", r0)
	}
	if r1.Site != "codegen/reduce" || r1.Key != "p7" || r1.Kind != KindDelay || r1.Delay != 50*time.Millisecond {
		t.Fatalf("rule 1 = %+v", r1)
	}
	if r2.Site != "tables/decode" || r2.Kind != KindPanic || r2.Count != 1 {
		t.Fatalf("rule 2 = %+v", r2)
	}
}

func TestArmRejectsMalformed(t *testing.T) {
	defer Reset()
	for _, bad := range []string{"nosite", "=error", "s=wobble", "s=delay:xyz", "s=error*-1"} {
		Reset()
		if err := Arm(bad); err == nil {
			t.Errorf("Arm(%q) accepted", bad)
		}
	}
}

func TestFirstMatchWins(t *testing.T) {
	defer Reset()
	Reset()
	Set(Rule{Site: "s", Kind: KindError, Class: "io"})
	Set(Rule{Site: "s", Kind: KindError, Class: "net"})
	var inj *InjectedError
	if err := Eval("s", ""); !errors.As(err, &inj) || inj.Class != "io" {
		t.Fatalf("Eval = %v, want first-armed io rule", err)
	}
}
