// Package faultinject provides named failpoints for chaos testing the
// compilation pipeline. A failpoint is a call to Eval at a named site
// ("blob/get", "tables/decode", "codegen/reduce", ...); when a
// matching rule is armed the site injects a deterministic fault — an
// error, a panic, or a delay — on a schedule, so the chaos tests can
// prove that one poisoned compilation unit cannot take its batch down.
//
// Injection is off by default and costs one atomic load per site when
// off. Tests arm sites programmatically with Set/Reset; the command
// line tools (and any other process) can arm them through the
// COGG_FAILPOINTS environment variable, parsed at init:
//
//	COGG_FAILPOINTS="site[#key]=kind[:arg][@after][*count];..."
//
// where kind is "error" (arg = error class, default "io"), "panic", or
// "delay" (arg = a time.ParseDuration string), "@after" skips the first
// after matching hits, and "*count" fires at most count times. For
// example:
//
//	COGG_FAILPOINTS="blob/fs/rename=error:io;codegen/reduce#p7.pas=delay:5s@2*1"
//
// injects an I/O error into every blob-store rename and a single 5 second
// stall into the third reduction of unit p7.pas.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is what an armed failpoint does when its schedule fires.
type Kind int

const (
	KindError Kind = iota // Eval returns an *InjectedError
	KindPanic             // Eval panics with a *Panic value
	KindDelay             // Eval sleeps for Rule.Delay, then reports no fault
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("kind#%d", int(k))
}

// Rule arms one failpoint site.
type Rule struct {
	Site  string // site name, e.g. "blob/get"
	Key   string // fire only when Eval's key matches; "" matches any key
	Kind  Kind
	Class string        // KindError: error class carried by InjectedError ("io", ...)
	Delay time.Duration // KindDelay: how long to stall the site
	After int           // skip the first After matching hits
	Count int           // fire at most Count times; 0 means every time
}

// InjectedError is the error returned by a fired KindError rule. The
// Class lets the batch service's failure classifier treat an injected
// fault exactly like the real one ("io" classifies as a disk fault).
type InjectedError struct {
	Site  string
	Key   string
	Class string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: %s: injected %s fault", e.Site, e.Class)
}

// Panic is the value a fired KindPanic rule panics with.
type Panic struct {
	Site string
	Key  string
}

func (p *Panic) String() string { return "faultinject: injected panic at " + p.Site }

// armed state: a copy-on-write rule table behind one atomic flag so the
// disarmed fast path is a single load.
var (
	active atomic.Bool
	mu     sync.Mutex
	rules  []*armedRule
)

type armedRule struct {
	Rule
	hits atomic.Int64 // matching Eval calls seen so far
}

// Set arms a rule. Rules accumulate until Reset; several rules may arm
// the same site (first match by arming order wins on each Eval).
func Set(r Rule) {
	mu.Lock()
	defer mu.Unlock()
	rules = append(rules, &armedRule{Rule: r})
	active.Store(true)
}

// Reset disarms every rule.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	rules = nil
	active.Store(false)
}

// Active reports whether any rule is armed.
func Active() bool { return active.Load() }

// Eval evaluates the named site. With no armed rule matching (site,
// key) it reports nil at the cost of one atomic load. A matching rule
// whose schedule fires injects its fault: KindError returns an
// *InjectedError, KindDelay sleeps and then returns nil, and KindPanic
// panics with a *Panic — the caller is expected to be running under the
// batch service's per-unit recover.
func Eval(site, key string) error {
	if !active.Load() {
		return nil
	}
	mu.Lock()
	var fire *armedRule
	for _, r := range rules {
		if r.Site != site || (r.Key != "" && r.Key != key) {
			continue
		}
		n := r.hits.Add(1)
		fired := n - int64(r.After)
		if fired < 1 || (r.Count > 0 && fired > int64(r.Count)) {
			continue
		}
		fire = r
		break
	}
	mu.Unlock()
	if fire == nil {
		return nil
	}
	switch fire.Kind {
	case KindPanic:
		panic(&Panic{Site: site, Key: key})
	case KindDelay:
		time.Sleep(fire.Delay)
		return nil
	default:
		class := fire.Class
		if class == "" {
			class = "io"
		}
		return &InjectedError{Site: site, Key: key, Class: class}
	}
}

// EnvVar names the environment variable parsed at init.
const EnvVar = "COGG_FAILPOINTS"

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := Arm(spec); err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: %s: %v\n", EnvVar, err)
		}
	}
}

// Arm parses a COGG_FAILPOINTS specification and arms every rule in it.
func Arm(spec string) error {
	for _, field := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		r, err := parseRule(strings.TrimSpace(field))
		if err != nil {
			return err
		}
		Set(r)
	}
	return nil
}

// parseRule parses one "site[#key]=kind[:arg][@after][*count]" clause.
func parseRule(s string) (Rule, error) {
	var r Rule
	lhs, rhs, ok := strings.Cut(s, "=")
	if !ok {
		return r, fmt.Errorf("rule %q has no '='", s)
	}
	r.Site, r.Key, _ = strings.Cut(lhs, "#")
	if r.Site == "" {
		return r, fmt.Errorf("rule %q has no site", s)
	}
	if rhs, ok = cutSuffixInt(rhs, "*", &r.Count); !ok {
		return r, fmt.Errorf("rule %q has a bad count", s)
	}
	if rhs, ok = cutSuffixInt(rhs, "@", &r.After); !ok {
		return r, fmt.Errorf("rule %q has a bad skip count", s)
	}
	kind, arg, _ := strings.Cut(rhs, ":")
	switch kind {
	case "error":
		r.Kind, r.Class = KindError, arg
	case "panic":
		r.Kind = KindPanic
	case "delay":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return r, fmt.Errorf("rule %q: %v", s, err)
		}
		r.Kind, r.Delay = KindDelay, d
	default:
		return r, fmt.Errorf("rule %q has unknown kind %q", s, kind)
	}
	return r, nil
}

// cutSuffixInt splits "prefixSEPn" into prefix and n. Absent separator
// is fine; a separator with a malformed integer is not.
func cutSuffixInt(s, sep string, out *int) (string, bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, true
	}
	n, err := strconv.Atoi(s[i+len(sep):])
	if err != nil || n < 0 {
		return s, false
	}
	*out = n
	return s[:i], true
}
