// Package profiling wires runtime/pprof into the command-line tools:
// the -cpuprofile/-memprofile flags of cogg, ifcgen, and pascal370, and
// the phase labels that split a CPU profile into table construction,
// module decode, and code generation samples.
package profiling

import (
	"context"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuFile is non-empty. The returned
// stop function ends the CPU profile and, when memFile is non-empty,
// writes an allocation profile; call it once on the way out of main
// (not via defer past os.Exit).
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpuOut *os.File
	if cpuFile != "" {
		cpuOut, err = os.Create(cpuFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				return err
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			return pprof.Lookup("allocs").WriteTo(f, 0)
		}
		return nil
	}, nil
}

// Phase runs f under a pprof "phase" label, so CPU samples attribute to
// the compilation phase that produced them (`pprof -tagfocus` or the
// flame graph's tag browser splits the profile by it).
func Phase(name string, f func()) {
	pprof.Do(context.Background(), pprof.Labels("phase", name), func(context.Context) { f() })
}

// Mallocs returns the process-wide cumulative heap allocation count —
// the raw material of per-phase allocs/op accounting. It stops the
// world briefly; callers meter it behind an opt-in.
func Mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}
