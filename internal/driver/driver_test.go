package driver_test

import (
	"sync"
	"testing"

	"cogg/internal/driver"
	"cogg/internal/shaper"
	"cogg/specs"
)

var (
	fullOnce   sync.Once
	fullTarget *driver.Target
	fullErr    error
)

// target builds (once) the code generator from the full Amdahl spec.
func target(t *testing.T) *driver.Target {
	t.Helper()
	fullOnce.Do(func() {
		fullTarget, fullErr = driver.NewTarget("amdahl470.cogg", specs.Amdahl470)
	})
	if fullErr != nil {
		t.Fatalf("NewTarget: %v", fullErr)
	}
	return fullTarget
}

// compileRun compiles source, runs it, and returns named fullword values.
func compileRun(t *testing.T, source string, init map[string]int32, want map[string]int32) *driver.Compiled {
	t.Helper()
	c, err := target(t).Compile("test.pas", source, shaper.Options{StatementRecords: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cpu, err := c.Run(init, 1_000_000)
	if err != nil {
		t.Fatalf("Run: %v\nIF: %s\nlisting:\n%s", err, truncate(c.Tokens), c.Listing())
	}
	for name, w := range want {
		got, err := driver.Word(cpu, c, name)
		if err != nil {
			t.Fatalf("reading %q: %v", name, err)
		}
		if got != w {
			t.Errorf("%s = %d, want %d\nlisting:\n%s", name, got, w, c.Listing())
		}
	}
	return c
}

func truncate(toks any) string {
	s := ""
	if ts, ok := toks.([]interface{ String() string }); ok {
		_ = ts
	}
	return s
}

func TestArithmetic(t *testing.T) {
	compileRun(t, `
program arith;
var a, b, c, d, e: integer;
begin
  a := 7;
  b := a * 6;
  c := (b + a) div 4;
  d := b mod a;
  e := -c + abs(0 - 100)
end.
`, nil, map[string]int32{"a": 7, "b": 42, "c": 12, "d": 0, "e": 88})
}

func TestIfElseAndComparisons(t *testing.T) {
	compileRun(t, `
program cmp;
var x, y, big, small: integer;
begin
  x := 10; y := 25;
  if x < y then big := y else big := x;
  if x >= y then small := y else small := x
end.
`, nil, map[string]int32{"big": 25, "small": 10})
}

func TestWhileLoop(t *testing.T) {
	compileRun(t, `
program loop;
var i, sum: integer;
begin
  i := 1; sum := 0;
  while i <= 10 do
  begin
    sum := sum + i;
    i := i + 1
  end
end.
`, nil, map[string]int32{"sum": 55, "i": 11})
}

func TestForLoops(t *testing.T) {
	compileRun(t, `
program forloop;
var i, up, down: integer;
begin
  up := 0; down := 0;
  for i := 1 to 5 do up := up + i;
  for i := 5 downto 1 do down := down + i * i
end.
`, nil, map[string]int32{"up": 15, "down": 55})
}

func TestRepeatUntil(t *testing.T) {
	compileRun(t, `
program rep;
var n, steps: integer;
begin
  n := 27; steps := 0;
  repeat
    if odd(n) then n := 3 * n + 1 else n := n div 2;
    steps := steps + 1
  until n = 1
end.
`, nil, map[string]int32{"n": 1, "steps": 111})
}

func TestArrays(t *testing.T) {
	compileRun(t, `
program arrays;
var a: array[1..10] of integer;
    i, sum: integer;
begin
  for i := 1 to 10 do a[i] := i * i;
  sum := 0;
  for i := 1 to 10 do sum := sum + a[i]
end.
`, nil, map[string]int32{"sum": 385})
}

// TestAppendix1Expression is the paper's Appendix 1 program 1:
// x[q] := a[i] + b[j]*(c[k]-d[l]) + (e[m] div (f[n]+g[o]))*h[p].
func TestAppendix1Expression(t *testing.T) {
	c := compileRun(t, `
program appendix1;
var a, b, c, d, e, f, g, h, x: array[0..24] of integer;
    i, j, k, l, m, n, o, p, q: integer;
begin
  i := 1; j := 2; k := 3; l := 4; m := 5; n := 6; o := 7; p := 8; q := 9;
  a[1] := 100; b[2] := 3; c[3] := 50; d[4] := 8;
  e[5] := 90; f[6] := 4; g[7] := 5; h[8] := 11;
  x[q] := a[i] + b[j]*(c[k]-d[l]) + (e[m] div (f[n]+g[o]))*h[p]
end.
`, nil, nil)
	// a[i] + b[j]*(c[k]-d[l]) + (e[m] div (f[n]+g[o]))*h[p]
	// = 100 + 3*42 + (90 div 9)*11 = 100 + 126 + 110 = 336.
	cpu, err := c.Run(nil, 1_000_000)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	base, _ := c.VarAddr("x")
	got, err := cpu.Word(base + 9*4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 336 {
		t.Fatalf("x[9] = %d, want 336\nlisting:\n%s", got, c.Listing())
	}
}

// TestAppendix1Branches is the paper's Appendix 1 program 2.
func TestAppendix1Branches(t *testing.T) {
	src := `
program appendix2;
var i, j, k, p, q: integer;
    flag: boolean;
    z: -32000..32000;
begin
  z := 17;
  flag := true;
  p := 3; q := 9;
  j := 12;
  if flag then i := j - 1
          else i := z;
  if p < q then k := z
end.
`
	compileRun(t, src, nil, map[string]int32{"i": 11, "k": 17})
}

func TestBooleansAndSets(t *testing.T) {
	compileRun(t, `
program boolsets;
var b, c, d, anded, ored, noted: boolean;
    s: set of 0..63;
    e, member, outsider: integer;
begin
  b := true; c := false;
  anded := b and c;
  ored := b or c;
  noted := not b;
  d := 3 < 5;
  s := s + [5];
  e := 9;
  s := s + [e];
  member := 0; outsider := 0;
  if 5 in s then member := member + 1;
  if e in s then member := member + 1;
  if 6 in s then outsider := 1;
  s := s - [5];
  if 5 in s then outsider := outsider + 10
end.
`, nil, map[string]int32{"member": 2, "outsider": 0})
}

func TestCaseStatement(t *testing.T) {
	src := `
program casedemo;
var sel, out: integer;
begin
  case sel of
    1: out := 100;
    2, 3: out := 200;
    5: out := 500
  else out := -1
  end
end.
`
	for sel, want := range map[int32]int32{1: 100, 2: 200, 3: 200, 5: 500, 4: -1, 0: -1, 99: -1} {
		compileRun(t, src, map[string]int32{"sel": sel}, map[string]int32{"out": want})
	}
}

func TestProceduresAndFunctions(t *testing.T) {
	compileRun(t, `
program procs;
var r1, r2: integer;

function addmul(x, y: integer): integer;
var t: integer;
begin
  t := x + y;
  addmul := t * 2
end;

procedure nothing;
begin
end;

function fact(n: integer): integer;
begin
  if n <= 1 then fact := 1
  else fact := n * fact(n - 1)
end;

begin
  nothing;
  r1 := addmul(3, 4);
  r2 := fact(6)
end.
`, nil, map[string]int32{"r1": 14, "r2": 720})
}

func TestHalfwordAndByteStorage(t *testing.T) {
	c := compileRun(t, `
program storage;
var h: -30000..30000;
    ch: 0..255;
    sum: integer;
begin
  h := -1234;
  ch := 200;
  sum := h + ch
end.
`, nil, map[string]int32{"sum": -1034})
	cpu, err := c.Run(nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := driver.Half(cpu, c, "h"); err != nil || got != -1234 {
		t.Fatalf("h = %d (%v), want -1234", got, err)
	}
	if got, err := driver.Byte(cpu, c, "ch"); err != nil || got != 200 {
		t.Fatalf("ch = %d (%v), want 200", got, err)
	}
}

func TestRealArithmetic(t *testing.T) {
	c, err := target(t).Compile("real.pas", `
program reals;
var x, y, z: real;
    flag: integer;
begin
  x := 2.5;
  y := x * 4.0 + 1.5;
  z := abs(-y) / 2.0;
  flag := 0;
  if z > 5.0 then flag := 1
end.
`, shaper.Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cpu, err := c.Run(nil, 1_000_000)
	if err != nil {
		t.Fatalf("Run: %v\nlisting:\n%s", err, c.Listing())
	}
	if got, _ := driver.Word(cpu, c, "flag"); got != 1 {
		t.Fatalf("flag = %d, want 1 (z = 5.75 > 5.0)", got)
	}
}

func TestSubscriptChecks(t *testing.T) {
	src := `
program checks;
var a: array[1..10] of integer;
    i, x: integer;
begin
  x := a[i]
end.
`
	c, err := target(t).Compile("checks.pas", src, shaper.Options{SubscriptChecks: true})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := c.Run(map[string]int32{"i": 5}, 1_000_000); err != nil {
		t.Fatalf("in-range subscript aborted: %v", err)
	}
	if _, err := c.Run(map[string]int32{"i": 11}, 1_000_000); err == nil {
		t.Fatal("out-of-range subscript did not abort")
	}
}

func TestBlockMoves(t *testing.T) {
	compileRun(t, `
program blocks;
var a, b: array[0..9] of integer;
    big1, big2: array[0..99] of integer;
    i, s1, s2: integer;
begin
  for i := 0 to 9 do a[i] := i + 1;
  b := a;
  s1 := 0;
  for i := 0 to 9 do s1 := s1 + b[i];
  for i := 0 to 99 do big1[i] := 2;
  big2 := big1;
  s2 := 0;
  for i := 0 to 99 do s2 := s2 + big2[i]
end.
`, nil, map[string]int32{"s1": 55, "s2": 200})
}

// TestReversedRealForms exercises the memory-first rsub/rdiv productions
// (load, operate, move back to the left-side register).
func TestReversedRealForms(t *testing.T) {
	c, err := target(t).Compile("revreal.pas", `
program revreal;
var x, y, z: real;
    f1, f2: integer;
begin
  x := 3.0;
  y := 10.0 - x;
  z := 21.0 / y;
  f1 := 0; f2 := 0;
  if y = 7.0 then f1 := 1;
  if z = 3.0 then f2 := 1
end.
`, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.Run(nil, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, c.Listing())
	}
	for v, want := range map[string]int32{"f1": 1, "f2": 1} {
		if got, _ := driver.Word(cpu, c, v); got != want {
			t.Errorf("%s = %d, want %d\n%s", v, got, want, c.Listing())
		}
	}
}

// TestMinMaxBuiltins exercises the imax/imin productions through
// explicit comparisons... Pascal has no min/max builtin, so drive the
// productions at the IF level instead via direct comparison chains.
func TestHalfwordMinMaxForms(t *testing.T) {
	// The hlfword imax/imin memory variants fire when one operand is a
	// halfword variable; the shaper only emits imax from abs-style
	// rewriting, so exercise the productions through ifcgen-style IF.
	toks := "assign fullword dsp.96 r.13 imax fullword dsp.100 r.13 hlfword dsp.104 r.13 " +
		"assign fullword dsp.112 r.13 imin hlfword dsp.104 r.13 fullword dsp.100 r.13"
	prog, _, err := target(t).Gen.Generate("MM", mustTokensD(t, toks))
	if err != nil {
		t.Fatal(err)
	}
	// The first shape munches into the fullword-first imax form (C with
	// an LH-loaded operand); the second uses the halfword-memory imin
	// form directly (CH).
	ch, lh := 0, 0
	for i := range prog.Instrs {
		switch prog.Instrs[i].Op {
		case "ch":
			ch++
		case "lh":
			lh++
		}
	}
	if ch < 1 || lh < 1 {
		t.Errorf("halfword forms unused: ch=%d lh=%d", ch, lh)
	}
}

// TestGlobalsInProcedures: main's frame sits at a fixed address, so
// procedures address globals through the dedicated global base register
// while their own frames stay dynamic (recursion still works).
func TestGlobalsInProcedures(t *testing.T) {
	compileRun(t, `
program globals;
var counter, depth: integer;

procedure bump(n: integer);
begin
  counter := counter + n;
  if n > 1 then bump(n - 1);
  depth := depth + 1
end;

begin
  counter := 0; depth := 0;
  bump(5)
end.
`, nil, map[string]int32{"counter": 15, "depth": 5})
}

// TestUninitChecks: the MTS-style read-before-write check plants the
// uninitialized pattern and the uninit_check production catches reads
// of it.
func TestUninitChecks(t *testing.T) {
	okSrc := `
program initok;
var x, y: integer;
begin
  x := 5;
  y := x + 1
end.
`
	badSrc := `
program initbad;
var x, y: integer;
begin
  y := x + 1
end.
`
	opts := shaper.Options{UninitChecks: true}
	c, err := target(t).Compile("ok.pas", okSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(nil, 100_000); err != nil {
		t.Fatalf("initialized program aborted: %v\n%s", err, c.Listing())
	}
	c2, err := target(t).Compile("bad.pas", badSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(nil, 100_000); err == nil {
		t.Fatalf("read of uninitialized x did not abort\n%s", c2.Listing())
	}
	// Without the option the same program runs (reading the pattern).
	c3, err := target(t).Compile("bad.pas", badSrc, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Run(nil, 100_000); err != nil {
		t.Fatalf("unchecked program aborted: %v", err)
	}
}
