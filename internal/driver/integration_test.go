package driver_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"cogg/internal/driver"
	"cogg/internal/loader"
	"cogg/internal/rt370"
	"cogg/internal/shaper"
	"cogg/specs"
)

var (
	minOnce   sync.Once
	minTarget *driver.Target
	minErr    error
)

func minimalTarget(t *testing.T) *driver.Target {
	t.Helper()
	minOnce.Do(func() {
		minTarget, minErr = driver.NewTarget("amdahl-minimal.cogg", specs.AmdahlMinimal)
	})
	if minErr != nil {
		t.Fatalf("minimal target: %v", minErr)
	}
	return minTarget
}

// TestMinimalSpecSameSemantics compiles programs under both grammars and
// compares results: the minimal grammar emits more instructions but the
// same behavior ("without losing the guarantee of generating correct
// code", paper section 6).
func TestMinimalSpecSameSemantics(t *testing.T) {
	for name, src := range differentialPrograms {
		if name == "sets" {
			// The dynamic set productions differ in shape coverage.
			src = strings.Replace(src, "odd(i * i)", "odd(i)", 1)
		}
		t.Run(name, func(t *testing.T) {
			full, err := target(t).Compile(name, src, shaper.Options{})
			if err != nil {
				t.Fatalf("full compile: %v", err)
			}
			min, err := minimalTarget(t).Compile(name, src, shaper.Options{})
			if err != nil {
				t.Fatalf("minimal compile: %v", err)
			}
			cpuF, err := full.Run(nil, 2_000_000)
			if err != nil {
				t.Fatalf("full run: %v", err)
			}
			cpuM, err := min.Run(nil, 2_000_000)
			if err != nil {
				t.Fatalf("minimal run: %v\n%s", err, min.Listing())
			}
			for _, v := range full.Source.Main.Locals {
				addr, _ := full.VarAddr(v.Name)
				for off := int64(0); off < v.Type.Size(); off++ {
					a, _ := cpuF.Byte(addr + uint32(off))
					b, _ := cpuM.Byte(addr + uint32(off))
					if a != b {
						t.Fatalf("%s+%d: full %#x vs minimal %#x", v.Name, off, a, b)
					}
				}
			}
			if min.Prog.InstructionCount() < full.Prog.InstructionCount() {
				t.Errorf("minimal grammar produced better code (%d vs %d)?",
					min.Prog.InstructionCount(), full.Prog.InstructionCount())
			}
		})
	}
}

// TestLongBranchesExecute builds a program whose branches span more than
// one 4096-byte page and runs it: the long form (load target address,
// branch via register) must behave exactly like the short form.
func TestLongBranchesExecute(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("program big;\nvar x, y: integer;\nbegin\n  x := 0; y := 0;\n")
	const blocks = 320
	for i := 0; i < blocks; i++ {
		// Alternating arms keep branches conditional in both directions.
		fmt.Fprintf(&sb, "  if y <= %d then x := x + %d else y := y + 1;\n", i%5, i%9+1)
	}
	sb.WriteString("  y := x\nend.\n")
	c, err := target(t).Compile("big.pas", sb.String(), shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Prog.CodeSize <= 4096 {
		t.Fatalf("program too small to exercise long branches: %d bytes", c.Prog.CodeSize)
	}
	long := 0
	for i := range c.Prog.Instrs {
		if c.Prog.Instrs[i].Long {
			long++
		}
	}
	if long == 0 {
		t.Fatal("no long branches generated")
	}
	cpu, err := c.Run(nil, 5_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Compute the expected result in Go.
	x, y := 0, 0
	for i := 0; i < blocks; i++ {
		if y <= i%5 {
			x += i%9 + 1
		} else {
			y++
		}
	}
	got, _ := driver.Word(cpu, c, "y")
	if got != int32(x) {
		t.Errorf("y = %d, want %d (%d long branches)", got, x, long)
	}
}

// TestDeckRoundTripExecution writes the object deck as 80-column card
// images, reads it back, loads it, and executes — the full loader path.
func TestDeckRoundTripExecution(t *testing.T) {
	src := `
program deck;
var a, b, q: integer;
begin
  a := 355; b := 113;
  q := (a * 1000) div b
end.
`
	c, err := target(t).Compile("deck.pas", src, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var cards bytes.Buffer
	if err := c.Deck.WriteCards(&cards); err != nil {
		t.Fatal(err)
	}
	back, err := loader.ReadCards(&cards)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := rt370.NewCPU()
	if err != nil {
		t.Fatal(err)
	}
	if err := back.LoadInto(cpu.Mem, 0); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	got, _ := driver.Word(cpu, c, "q")
	if got != 3141 {
		t.Errorf("q = %d, want 3141", got)
	}
}

// TestCaseThroughBranchTable executes a case statement whose dispatch
// goes through the in-code branch table (label_pntr address constants
// loaded via the literal pool).
func TestCaseThroughBranchTable(t *testing.T) {
	src := `
program tbl;
var i, sum: integer;
begin
  sum := 0;
  for i := 0 to 6 do
    case i of
      0: sum := sum + 1;
      1, 2: sum := sum + 10;
      4: sum := sum + 100;
      6: sum := sum + 1000
    else sum := sum - 1
    end
end.
`
	c, err := target(t).Compile("tbl.pas", src, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.Run(nil, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, c.Listing())
	}
	// i=0:+1, 1:+10, 2:+10, 3:else -1, 4:+100, 5:else -1, 6:+1000.
	got, _ := driver.Word(cpu, c, "sum")
	if got != 1119 {
		t.Errorf("sum = %d, want 1119", got)
	}
}

// TestSerializedTablesDriveGenerator: the encode/decode path produces a
// working code generator (the tables are the product, not the process).
func TestSerializedTablesDriveGenerator(t *testing.T) {
	cg := target(t).CG
	var buf bytes.Buffer
	if _, err := cg.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	mod, err := decodeModule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := newGenerator(mod)
	if err != nil {
		t.Fatal(err)
	}
	src := `program p; var x: integer; begin x := 6 * 7 end.`
	prog, _ := parsePascal(t, src)
	shaped, err := shaper.Shape(prog, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	asmProg, _, err := gen2.Generate("P", shaped.Linearize())
	if err != nil {
		t.Fatal(err)
	}
	c, err := driver.Finish(asmProg, shaped, rt370.Machine())
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.Run(nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := driver.Word(cpu, c, "x"); got != 42 {
		t.Errorf("x = %d", got)
	}
}
