package driver_test

import (
	"strings"
	"testing"

	"cogg/internal/driver"
	"cogg/internal/shaper"
	"cogg/specs"
)

// TestRetargeting compiles the same Pascal program with the Amdahl and
// risc32 specifications: the identical intermediate form translates to
// both targets, which is the paper's central retargetability claim.
func TestRetargeting(t *testing.T) {
	src := `
program retarget;
var a, b, c, q, r: integer;
begin
  a := 21; b := 4;
  c := a * b + a - b;
  q := c div b;
  r := c mod b;
  if q > r then c := q - r else c := r - q
end.
`
	s370c, err := target(t).Compile("retarget.pas", src, shaper.Options{})
	if err != nil {
		t.Fatalf("s370 compile: %v", err)
	}
	riscTarget, err := driver.NewTargetWithConfig("risc32.cogg", specs.Risc32, driver.RiscConfig())
	if err != nil {
		t.Fatalf("risc32 target: %v", err)
	}
	riscC, err := riscTarget.Compile("retarget.pas", src, shaper.Options{})
	if err != nil {
		t.Fatalf("risc32 compile: %v", err)
	}
	listing := riscC.Listing()
	for _, want := range []string{"ldw", "stw", "mul", "divq", "rem", "cmp"} {
		if !strings.Contains(listing, want) {
			t.Errorf("risc32 listing lacks %q:\n%s", want, listing)
		}
	}
	if strings.Contains(listing, "srda") || strings.Contains(listing, "bctr") {
		t.Errorf("risc32 listing contains S/370 opcodes:\n%s", listing)
	}
	// The S/370 run validates semantics; the RISC target validates
	// retargeting of the translation itself.
	cpu, err := s370c.Run(nil, 1_000_000)
	if err != nil {
		t.Fatalf("s370 run: %v", err)
	}
	if got, _ := driver.Word(cpu, s370c, "c"); got != 24 {
		t.Errorf("c = %d, want 24", got)
	}
	if riscC.Prog.InstructionCount() == 0 {
		t.Error("risc32 produced no instructions")
	}
	t.Logf("s370: %d instructions, %d code bytes; risc32: %d instructions, %d code bytes",
		s370c.Prog.InstructionCount(), s370c.Prog.CodeSize,
		riscC.Prog.InstructionCount(), riscC.Prog.CodeSize)
}
