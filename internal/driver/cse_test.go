package driver_test

import (
	"strings"
	"testing"

	"cogg/internal/driver"
	"cogg/internal/ifopt"
	"cogg/internal/shaper"
)

// cseOptions returns shaping options with the IF optimizer plugged in.
func cseOptions() shaper.Options {
	return shaper.Options{CSE: ifopt.New().Apply}
}

// TestCSEDifferential compiles programs with and without the IF
// optimizer and requires identical results with fewer (or equal)
// instructions.
func TestCSEDifferential(t *testing.T) {
	programs := map[string]struct {
		src  string
		vars []string
	}{
		"repeated-product": {
			src: `
program cse1;
var a, b, x, y: integer;
begin
  a := 12; b := 7;
  x := a*b + 3;
  y := a*b + 8
end.
`,
			vars: []string{"x", "y"},
		},
		"subscript-expression": {
			src: `
program cse2;
var v: array[0..20] of integer;
    i, x, y: integer;
begin
  i := 4;
  v[i*2+1] := 9;
  x := v[i*2+1] * 3;
  y := (i*2+1) + x
end.
`,
			vars: []string{"x", "y"},
		},
		"invalidated-between": {
			src: `
program cse3;
var a, b, x, y: integer;
begin
  a := 5; b := 6;
  x := a*b;
  a := 7;
  y := a*b
end.
`,
			vars: []string{"x", "y"},
		},
	}
	for name, tc := range programs {
		t.Run(name, func(t *testing.T) {
			plain, err := target(t).Compile(name, tc.src, shaper.Options{})
			if err != nil {
				t.Fatalf("plain compile: %v", err)
			}
			opt, err := target(t).Compile(name, tc.src, cseOptions())
			if err != nil {
				t.Fatalf("CSE compile: %v", err)
			}
			cpuP, err := plain.Run(nil, 1_000_000)
			if err != nil {
				t.Fatalf("plain run: %v", err)
			}
			cpuO, err := opt.Run(nil, 1_000_000)
			if err != nil {
				t.Fatalf("CSE run: %v\nlisting:\n%s", err, opt.Listing())
			}
			for _, v := range tc.vars {
				pv, err := driver.Word(cpuP, plain, v)
				if err != nil {
					t.Fatal(err)
				}
				ov, err := driver.Word(cpuO, opt, v)
				if err != nil {
					t.Fatal(err)
				}
				if pv != ov {
					t.Errorf("%s: plain %d vs CSE %d\nCSE listing:\n%s", v, pv, ov, opt.Listing())
				}
			}
			if opt.Prog.InstructionCount() > plain.Prog.InstructionCount() {
				t.Errorf("CSE grew the program: %d vs %d instructions",
					opt.Prog.InstructionCount(), plain.Prog.InstructionCount())
			}
		})
	}
}

// TestCSEActuallyFires checks make_common/use_common appear in the IF and
// shrink the repeated-product program.
func TestCSEActuallyFires(t *testing.T) {
	src := `
program fires;
var a, b, x, y, z: integer;
begin
  a := 12; b := 7;
  x := a*b + 3;
  y := a*b + 8;
  z := a*b
end.
`
	opt, err := target(t).Compile("fires", src, cseOptions())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ifText := ""
	for _, tok := range opt.Tokens {
		ifText += tok.String() + " "
	}
	if !strings.Contains(ifText, "make_common") || !strings.Contains(ifText, "use_common") {
		t.Fatalf("IF optimizer produced no CSEs:\n%s", ifText)
	}
	plain, err := target(t).Compile("fires", src, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Prog.InstructionCount() >= plain.Prog.InstructionCount() {
		t.Errorf("CSE did not shrink the program: %d vs %d",
			opt.Prog.InstructionCount(), plain.Prog.InstructionCount())
	}
	cpu, err := opt.Run(nil, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, opt.Listing())
	}
	for v, want := range map[string]int32{"x": 87, "y": 92, "z": 84} {
		if got, _ := driver.Word(cpu, opt, v); got != want {
			t.Errorf("%s = %d, want %d\n%s", v, got, want, opt.Listing())
		}
	}
}
