package driver_test

import (
	"reflect"
	"testing"

	"cogg/internal/driver"
	"cogg/internal/shaper"
)

// corpus holds complete programs with their expected writeln output,
// computed independently. Every program runs under the full grammar,
// the minimal grammar, and with the IF optimizer.
var corpus = map[string]struct {
	src  string
	want []int32
}{
	"quicksort": {
		src: `
program quicksort;
var a: array[0..15] of integer;
    i, n: integer;

procedure sort(lo, hi: integer);
var i, j, pivot, t: integer;
begin
  if lo < hi then
  begin
    pivot := a[(lo + hi) div 2];
    i := lo; j := hi;
    repeat
      while a[i] < pivot do i := i + 1;
      while a[j] > pivot do j := j - 1;
      if i <= j then
      begin
        t := a[i]; a[i] := a[j]; a[j] := t;
        i := i + 1; j := j - 1
      end
    until i > j;
    sort(lo, j);
    sort(i, hi)
  end
end;

begin
  n := 16;
  for i := 0 to 15 do a[i] := (i * 7 + 5) mod 16;
  sort(0, 15);
  for i := 0 to 15 do writeln(a[i])
end.
`,
		want: []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	},
	"fibonacci": {
		src: `
program fib;
var i, a, b, t: integer;

function rfib(n: integer): integer;
begin
  if n < 2 then rfib := n
  else rfib := rfib(n - 1) + rfib(n - 2)
end;

begin
  a := 0; b := 1;
  for i := 1 to 10 do
  begin
    t := a + b; a := b; b := t
  end;
  writeln(a);
  writeln(rfib(10))
end.
`,
		want: []int32{55, 55},
	},
	"gcd-chain": {
		src: `
program gcdchain;
var x, y: integer;

function gcd(a, b: integer): integer;
begin
  if b = 0 then gcd := a
  else gcd := gcd(b, a mod b)
end;

begin
  writeln(gcd(1071, 462));
  writeln(gcd(3528, 3780));
  writeln(gcd(17, 5))
end.
`,
		want: []int32{21, 252, 1},
	},
	"knapsack": {
		src: `
program knapsack;
var best: array[0..20] of integer;
    w, v: array[1..5] of integer;
    i, cap: integer;
begin
  w[1] := 3; v[1] := 4;
  w[2] := 4; v[2] := 5;
  w[3] := 7; v[3] := 10;
  w[4] := 8; v[4] := 11;
  w[5] := 9; v[5] := 13;
  for cap := 0 to 20 do best[cap] := 0;
  for i := 1 to 5 do
    for cap := 20 downto 1 do
      if w[i] <= cap then
        if best[cap - w[i]] + v[i] > best[cap] then
          best[cap] := best[cap - w[i]] + v[i];
  writeln(best[20])
end.
`,
		want: []int32{28},
	},
	"queens": {
		src: `
program queens;
var col, diag1, diag2: set of 0..63;
    count, n: integer;

procedure place(row: integer);
var c: integer;
begin
  if row = n then count := count + 1
  else
    for c := 0 to 5 do
      if not ((c in col) or ((row + c) in diag1) or ((row - c + 8) in diag2)) then
      begin
        col := col + [c];
        diag1 := diag1 + [row + c];
        diag2 := diag2 + [row - c + 8];
        place(row + 1);
        col := col - [c];
        diag1 := diag1 - [row + c];
        diag2 := diag2 - [row - c + 8]
      end
end;

begin
  n := 6;
  count := 0;
  place(0);
  writeln(count)
end.
`,
		want: []int32{4}, // 6-queens has 4 solutions
	},
	"perfect-numbers": {
		src: `
program perfect;
var n, d, sum: integer;
begin
  for n := 2 to 500 do
  begin
    sum := 0;
    for d := 1 to n div 2 do
      if n mod d = 0 then sum := sum + d;
    if sum = n then writeln(n)
  end
end.
`,
		want: []int32{6, 28, 496},
	},
	"binary-search": {
		src: `
program bsearch;
var a: array[0..31] of integer;
    i, lo, hi, mid, key, found: integer;
begin
  for i := 0 to 31 do a[i] := i * 3;
  key := 57; found := -1;
  lo := 0; hi := 31;
  while lo <= hi do
  begin
    mid := (lo + hi) div 2;
    if a[mid] = key then
    begin
      found := mid;
      lo := hi + 1
    end
    else if a[mid] < key then lo := mid + 1
    else hi := mid - 1
  end;
  writeln(found);
  writeln(a[found])
end.
`,
		want: []int32{19, 57},
	},
	"collatz-longest": {
		src: `
program collatz;
var n, steps, start, beststeps, beststart: integer;
begin
  beststeps := -1; beststart := 0;
  for start := 1 to 60 do
  begin
    n := start; steps := 0;
    while n <> 1 do
    begin
      if odd(n) then n := 3 * n + 1 else n := n div 2;
      steps := steps + 1
    end;
    if steps > beststeps then
    begin
      beststeps := steps;
      beststart := start
    end
  end;
  writeln(beststart);
  writeln(beststeps)
end.
`,
		want: []int32{54, 112},
	},
}

func runCorpus(t *testing.T, name string, compile func(src string) (*driver.Compiled, error), want []int32) {
	t.Helper()
	tc := corpus[name]
	c, err := compile(tc.src)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	cpu, err := c.Run(nil, 50_000_000)
	if err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	got := driver.Output(cpu)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: output %v, want %v", name, got, want)
	}
}

func TestCorpusFullGrammar(t *testing.T) {
	for name, tc := range corpus {
		t.Run(name, func(t *testing.T) {
			runCorpus(t, name, func(src string) (*driver.Compiled, error) {
				return target(t).Compile(name+".pas", src, shaper.Options{StatementRecords: true})
			}, tc.want)
		})
	}
}

func TestCorpusMinimalGrammar(t *testing.T) {
	for name, tc := range corpus {
		t.Run(name, func(t *testing.T) {
			runCorpus(t, name, func(src string) (*driver.Compiled, error) {
				return minimalTarget(t).Compile(name+".pas", src, shaper.Options{})
			}, tc.want)
		})
	}
}

func TestCorpusWithCSE(t *testing.T) {
	for name, tc := range corpus {
		t.Run(name, func(t *testing.T) {
			runCorpus(t, name, func(src string) (*driver.Compiled, error) {
				return target(t).Compile(name+".pas", src, cseOptions())
			}, tc.want)
		})
	}
}
