// Package driver assembles the complete compiler pipeline: Pascal front
// end, shaper, IF optimizer, table-driven code generator, label
// resolution, and the Loader Record Generator — and runs the result on
// the S/370 simulator. The command line tools, examples, tests, and
// benchmarks all build on it.
package driver

import (
	"context"
	"fmt"
	"sort"

	"cogg/internal/asm"
	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/cse"
	"cogg/internal/handwritten"
	"cogg/internal/ir"
	"cogg/internal/labels"
	"cogg/internal/loader"
	"cogg/internal/obs"
	"cogg/internal/pascal"
	"cogg/internal/regalloc"
	"cogg/internal/risc32"
	"cogg/internal/rt370"
	"cogg/internal/s370/sim"
	"cogg/internal/shaper"
	"cogg/internal/tables"
)

// Target is a ready-to-use code generator for the S/370 runtime.
//
// CG is non-nil only for targets built by running the table constructor
// (NewTarget, NewTargetWithConfig); a target reconstituted from a
// serialized table module (NewTargetFromModule) carries the decoded
// module in Mod instead, and Table 1 statistics are unavailable.
type Target struct {
	CG      *core.CodeGenerator
	Mod     *tables.Module
	Gen     *codegen.Generator
	Machine asm.Machine

	// Engine, when non-nil, overrides Gen for translation: an emitted
	// (generated-code) engine attached via AttachEmitted. Derivation
	// recording stays on Gen — provenance is an interpreter-only feature
	// (Explain ignores Engine), so attaching an engine never changes
	// what `cogg explain` reports.
	Engine codegen.Engine
}

// Translator returns the engine translations run on: the attached
// emitted engine when one is present, the interpreted generator
// otherwise. Both produce byte-identical programs and identical
// structured errors for the same specification and configuration.
func (t *Target) Translator() codegen.Engine {
	if t.Engine != nil {
		return t.Engine
	}
	return t.Gen
}

// AttachEmitted looks up a generated engine registered for specName
// (see codegen.RegisterEmitted), verifies it was emitted from exactly
// this specification source, and attaches it to the target. It reports
// whether an engine was attached: false with a nil error means no
// matching engine is compiled in (or the registered one was generated
// from different source) and the target stays on the interpreter.
func (t *Target) AttachEmitted(specName, specSrc string, cfg codegen.Config) (bool, error) {
	e, ok := codegen.EmittedFor(specName)
	if !ok || !e.Matches([]byte(specSrc)) {
		return false, nil
	}
	eng, err := e.New(cfg)
	if err != nil {
		return false, err
	}
	t.Engine = eng
	return true, nil
}

// NewTarget runs CoGG over a specification and instantiates the
// generated code generator with the standard S/370 configuration.
func NewTarget(specName, specSrc string) (*Target, error) {
	return NewTargetWithConfig(specName, specSrc, rt370.Config())
}

// NewTargetWithConfig runs CoGG with an explicit target configuration.
func NewTargetWithConfig(specName, specSrc string, cfg codegen.Config) (*Target, error) {
	cg, err := core.Generate(specName, specSrc)
	if err != nil {
		return nil, err
	}
	gen, err := cg.NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	return &Target{CG: cg, Mod: cg.Module(), Gen: gen, Machine: cfg.Machine}, nil
}

// NewTargetFromModule instantiates the code generator from a decoded
// table module, skipping SLR table construction entirely — the warm
// path of the batch compilation service. The resulting target compiles
// programs exactly like one built from the specification source; only
// the construction-time artifacts (automaton, Table 1 statistics) are
// absent.
func NewTargetFromModule(mod *tables.Module, cfg codegen.Config) (*Target, error) {
	gen, err := codegen.New(mod, cfg)
	if err != nil {
		return nil, err
	}
	return &Target{Mod: mod, Gen: gen, Machine: cfg.Machine}, nil
}

// RiscConfig returns the configuration for the risc32 retargeting
// demonstration: the same shaper conventions, different emission
// routines and no even/odd pair class.
func RiscConfig() codegen.Config {
	return codegen.Config{
		Machine: &risc32.Machine{},
		Classes: []regalloc.Class{
			{Name: "r", Regs: []int{1, 2, 3, 4, 5, 6, 7, 8, 9}, Extra: []int{14, 15}},
			{Name: "cc", Flag: true},
		},
		MoveOp:         map[string]string{"r": "mov"},
		SaveOp:         map[cse.Width]string{cse.Full: "stw"},
		FindCommonType: map[cse.Width]string{cse.Full: ir.OpFullword},
		Origin:         rt370.CodeOrigin,
		PoolOrigin:     rt370.PoolOrigin,
	}
}

// Compiled is the result of compiling one Pascal program.
type Compiled struct {
	Source  *pascal.Program
	Shaped  *shaper.Shaped
	Tokens  []ir.Token
	Prog    *asm.Program
	Deck    *loader.Deck
	Result  *codegen.Result
	Machine asm.Machine
}

// Compile runs the full pipeline over Pascal source.
func (t *Target) Compile(name, source string, opt shaper.Options) (*Compiled, error) {
	return t.CompileCtx(context.Background(), name, source, opt)
}

// CompileCtx is Compile with a context: a trace attached via
// obs.ContextWith gets one span per pipeline phase (frontend, shape,
// parse-reduce with its regalloc/emit children, assemble).
func (t *Target) CompileCtx(ctx context.Context, name, source string, opt shaper.Options) (*Compiled, error) {
	_, end := obs.StartSpan(ctx, "frontend")
	prog, err := pascal.Parse(name, source)
	end()
	if err != nil {
		return nil, err
	}
	return t.CompileASTCtx(ctx, prog, opt)
}

// CompileAST runs the pipeline from a checked syntax tree.
func (t *Target) CompileAST(prog *pascal.Program, opt shaper.Options) (*Compiled, error) {
	return t.CompileASTCtx(context.Background(), prog, opt)
}

// CompileASTCtx is CompileAST with a context (see CompileCtx).
func (t *Target) CompileASTCtx(ctx context.Context, prog *pascal.Program, opt shaper.Options) (*Compiled, error) {
	_, end := obs.StartSpan(ctx, "shape")
	shaped, err := shaper.Shape(prog, opt)
	end()
	if err != nil {
		return nil, err
	}
	return t.CompileShapedCtx(ctx, prog, shaped)
}

// CompileShaped finishes the pipeline from shaped IF.
func (t *Target) CompileShaped(prog *pascal.Program, shaped *shaper.Shaped) (*Compiled, error) {
	return t.CompileShapedCtx(context.Background(), prog, shaped)
}

// CompileShapedCtx is CompileShaped with a context (see CompileCtx).
func (t *Target) CompileShapedCtx(ctx context.Context, prog *pascal.Program, shaped *shaper.Shaped) (*Compiled, error) {
	toks := shaped.Linearize()
	asmProg, res, err := t.Translator().GenerateCtx(ctx, shaped.Name, toks)
	if err != nil {
		return nil, err
	}
	_, end := obs.StartSpan(ctx, "assemble")
	c, err := Finish(asmProg, shaped, t.Machine)
	end()
	if err != nil {
		return nil, err
	}
	c.Source = prog
	c.Tokens = toks
	c.Result = res
	return c, nil
}

// Explain translates linearized IF with derivation recording enabled
// and returns the provenance map alongside the program. The entries
// survive a failed or blocked translation (they cover the instructions
// emitted before the failure), so callers diagnosing a blocked parse
// receive err != nil together with the partial derivation.
func (t *Target) Explain(name string, toks []ir.Token) (*asm.Program, []codegen.ProvEntry, *codegen.Result, error) {
	s, err := t.Gen.NewSession()
	if err != nil {
		return nil, nil, nil, err
	}
	s.EnableProvenance(true)
	prog, res, err := s.Generate(name, toks)
	return prog, s.Provenance(), res, err
}

// ExplainSource runs the front end and shaper over Pascal source, then
// Explain over the linearized IF.
func (t *Target) ExplainSource(name, source string, opt shaper.Options) (*asm.Program, []codegen.ProvEntry, *codegen.Result, error) {
	prog, err := pascal.Parse(name, source)
	if err != nil {
		return nil, nil, nil, err
	}
	shaped, err := shaper.Shape(prog, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	return t.Explain(shaped.Name, shaped.Linearize())
}

// CompileHandwritten runs the hand-written baseline generator over
// already-shaped IF, producing a Compiled comparable to the table-driven
// result.
func CompileHandwritten(shaped *shaper.Shaped, m asm.Machine) (*Compiled, error) {
	asmProg, err := handwritten.Generate(shaped.Name, shaped.Stmts)
	if err != nil {
		return nil, err
	}
	return Finish(asmProg, shaped, m)
}

// Finish lays out a code buffer, builds the object deck, and installs
// the transfer vector and literal storage.
func Finish(asmProg *asm.Program, shaped *shaper.Shaped, m asm.Machine) (*Compiled, error) {
	if err := labels.Layout(asmProg, m); err != nil {
		return nil, err
	}
	if len(asmProg.Pool) > rt370.PoolCap {
		return nil, fmt.Errorf("driver: %d literal-pool slots exceed the pr partition (%d)",
			len(asmProg.Pool), rt370.PoolCap)
	}
	deck, err := loader.Build(asmProg, m)
	if err != nil {
		return nil, err
	}
	// The procedure transfer vector and the shaper's literal storage are
	// object text in the runtime constant area. Both live in maps keyed
	// by offset; emit them in offset order so the deck is byte-for-byte
	// reproducible across runs.
	for _, off := range sortedKeys(shaped.VectorSlot) {
		lbl := shaped.VectorSlot[off]
		addr, err := asmProg.LabelAddr(lbl)
		if err != nil {
			return nil, fmt.Errorf("driver: transfer vector slot %#x: %w", off, err)
		}
		word := []byte{byte(addr >> 24), byte(addr >> 16), byte(addr >> 8), byte(addr)}
		deck.Texts = append(deck.Texts, loader.Text{Addr: rt370.PrOrigin + off, Data: word})
		deck.Relocs = append(deck.Relocs, loader.Reloc{Addr: rt370.PrOrigin + off})
	}
	for _, off := range sortedKeys(shaped.PrInit) {
		word := shaped.PrInit[off]
		deck.Texts = append(deck.Texts, loader.Text{
			Addr: rt370.PrOrigin + off,
			Data: []byte{byte(word >> 24), byte(word >> 16), byte(word >> 8), byte(word)},
		})
	}
	return &Compiled{
		Shaped:  shaped,
		Prog:    asmProg,
		Deck:    deck,
		Machine: m,
	}, nil
}

// Listing renders the assembly listing.
func (c *Compiled) Listing() string { return asm.Listing(c.Prog, c.Machine) }

// VarAddr returns the absolute storage address of a main-program
// variable ("x") or a procedure local ("p.x", valid while its frame is
// live or immediately after the call).
func (c *Compiled) VarAddr(name string) (uint32, bool) {
	off, ok := c.Shaped.VarOffset[name]
	if !ok {
		return 0, false
	}
	return uint32(rt370.MainFrame + off), true
}

// NewCPU prepares a simulator with the program loaded. Programs shaped
// with uninitialized-variable checking get their data area planted with
// the uninitialized pattern first.
func (c *Compiled) NewCPU() (*sim.CPU, error) {
	cpu, err := rt370.NewCPU()
	if err != nil {
		return nil, err
	}
	if c.Shaped.UninitChecks {
		for i := rt370.DataOrigin; i < rt370.OutBase; i++ {
			cpu.Mem[i] = 0x81
		}
	}
	if err := c.Deck.LoadInto(cpu.Mem, 0); err != nil {
		return nil, err
	}
	return cpu, nil
}

// Run executes the program to completion. init seeds main-program
// variables before entry; the returned CPU exposes final storage.
func (c *Compiled) Run(init map[string]int32, maxSteps int) (*sim.CPU, error) {
	cpu, err := c.NewCPU()
	if err != nil {
		return nil, err
	}
	for name, v := range init {
		addr, ok := c.VarAddr(name)
		if !ok {
			return nil, fmt.Errorf("driver: no variable %q to initialize", name)
		}
		if err := cpu.SetWord(addr, v); err != nil {
			return nil, err
		}
	}
	if err := cpu.Run(maxSteps); err != nil {
		return cpu, err
	}
	if flag := rt370.AbortFlag(cpu); flag != 0 {
		return cpu, fmt.Errorf("driver: program aborted with runtime check class %d", flag)
	}
	return cpu, nil
}

// Output reads the values written by write/writeln during a run.
func Output(cpu *sim.CPU) []int32 { return rt370.Output(cpu) }

// Word reads a fullword main-program variable after a run.
func Word(cpu *sim.CPU, c *Compiled, name string) (int32, error) {
	addr, ok := c.VarAddr(name)
	if !ok {
		return 0, fmt.Errorf("driver: unknown variable %q", name)
	}
	return cpu.Word(addr)
}

// Byte reads a byte-format main-program variable (boolean, char).
func Byte(cpu *sim.CPU, c *Compiled, name string) (byte, error) {
	addr, ok := c.VarAddr(name)
	if !ok {
		return 0, fmt.Errorf("driver: unknown variable %q", name)
	}
	return cpu.Byte(addr)
}

// Half reads a halfword main-program variable.
func Half(cpu *sim.CPU, c *Compiled, name string) (int32, error) {
	addr, ok := c.VarAddr(name)
	if !ok {
		return 0, fmt.Errorf("driver: unknown variable %q", name)
	}
	return cpu.Half(addr)
}

// sortedKeys returns a map's integer keys in ascending order, for
// deterministic emission from offset-keyed maps.
func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
