package driver_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cogg/internal/driver"
	"cogg/internal/pascal"
	"cogg/internal/shaper"
)

// progGen builds random integer Pascal programs. Divisors are always
// nonzero; loops are bounded; everything else — operator mix, nesting,
// subscripts, conditions — is random. The three backends (full grammar,
// minimal grammar, hand-written) must agree byte for byte.
type progGen struct {
	r     *rand.Rand
	vars  []string
	sb    strings.Builder
	inFor bool
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprint(g.r.Intn(90) + 1)
		case 1:
			return g.vars[g.r.Intn(len(g.vars))]
		default:
			return fmt.Sprintf("v[%d]", g.r.Intn(8)+1)
		}
	}
	l, r := g.expr(depth-1), g.expr(depth-1)
	switch g.r.Intn(7) {
	case 0:
		return "(" + l + " + " + r + ")"
	case 1:
		return "(" + l + " - " + r + ")"
	case 2:
		return "(" + l + " * " + r + ")"
	case 3:
		return "(" + l + " div " + fmt.Sprint(g.r.Intn(9)+1) + ")"
	case 4:
		return "(" + l + " mod " + fmt.Sprint(g.r.Intn(9)+1) + ")"
	case 5:
		return "abs(" + l + ")"
	default:
		return "(-" + l + ")"
	}
}

func (g *progGen) cond(depth int) string {
	rel := []string{"=", "<>", "<", "<=", ">", ">="}[g.r.Intn(6)]
	base := "(" + g.expr(depth) + " " + rel + " " + g.expr(depth) + ")"
	switch g.r.Intn(4) {
	case 0:
		return base + " and " + "(" + g.expr(depth) + " < " + g.expr(depth) + ")"
	case 1:
		return base + " or " + "(" + g.expr(depth) + " > " + g.expr(depth) + ")"
	case 2:
		return "not " + base
	default:
		return base
	}
}

func (g *progGen) stmt(indent string, depth int) {
	choice := g.r.Intn(12)
	if choice == 4 && g.inFor {
		choice = 0 // the loop counter is shared; never nest for-loops
	}
	switch choice {
	case 0, 1:
		v := g.vars[g.r.Intn(len(g.vars))]
		fmt.Fprintf(&g.sb, "%s%s := %s;\n", indent, v, g.expr(2))
	case 2:
		fmt.Fprintf(&g.sb, "%sv[%d] := %s;\n", indent, g.r.Intn(8)+1, g.expr(2))
	case 3:
		fmt.Fprintf(&g.sb, "%sif %s then\n", indent, g.cond(1))
		fmt.Fprintf(&g.sb, "%sbegin\n", indent)
		g.stmt(indent+"  ", depth-1)
		fmt.Fprintf(&g.sb, "%send\n", indent)
		fmt.Fprintf(&g.sb, "%selse\n", indent)
		fmt.Fprintf(&g.sb, "%sbegin\n", indent)
		if depth > 0 {
			g.stmt(indent+"  ", depth-1)
		}
		fmt.Fprintf(&g.sb, "%send;\n", indent)
	case 4:
		loopVar := "li" // dedicated loop counter avoids clobbering
		fmt.Fprintf(&g.sb, "%sfor %s := 1 to %d do\n", indent, loopVar, g.r.Intn(6)+1)
		fmt.Fprintf(&g.sb, "%sbegin\n", indent)
		g.inFor = true
		g.stmt(indent+"  ", 0)
		g.inFor = false
		fmt.Fprintf(&g.sb, "%send;\n", indent)
	case 5:
		v := g.vars[g.r.Intn(len(g.vars))]
		fmt.Fprintf(&g.sb, "%scase abs(%s) mod 4 of\n", indent, v)
		fmt.Fprintf(&g.sb, "%s  0: %s := %s;\n", indent, v, g.expr(1))
		fmt.Fprintf(&g.sb, "%s  1, 2: %s := %s\n", indent, v, g.expr(1))
		fmt.Fprintf(&g.sb, "%selse %s := -1\n%send;\n", indent, v, indent)
	case 6:
		// Boolean machinery: flags plus a conditional consuming them.
		flag := []string{"p", "q"}[g.r.Intn(2)]
		switch g.r.Intn(3) {
		case 0:
			fmt.Fprintf(&g.sb, "%s%s := %s;\n", indent, flag, g.cond(1))
		case 1:
			fmt.Fprintf(&g.sb, "%s%s := p and q;\n", indent, flag)
		default:
			fmt.Fprintf(&g.sb, "%s%s := not %s;\n", indent, flag, flag)
		}
		v := g.vars[g.r.Intn(len(g.vars))]
		fmt.Fprintf(&g.sb, "%sif %s or (%s > %s) then %s := %s + 1;\n",
			indent, flag, g.expr(0), g.expr(0), v, v)
	case 7:
		// Halfword traffic: assignments truncate through STH.
		fmt.Fprintf(&g.sb, "%sh := %s mod 9999;\n", indent, g.expr(1))
		v := g.vars[g.r.Intn(len(g.vars))]
		fmt.Fprintf(&g.sb, "%s%s := %s + h;\n", indent, v, v)
	case 8:
		// A function call in an expression.
		v := g.vars[g.r.Intn(len(g.vars))]
		fmt.Fprintf(&g.sb, "%s%s := twice(%s) - %s;\n", indent, v, g.expr(1), g.expr(0))
	case 9:
		// A procedure mutating globals, possibly recursively.
		fmt.Fprintf(&g.sb, "%sbump(abs(%s) mod 5);\n", indent, g.expr(0))
	case 10:
		// Set traffic: insert/remove/check membership.
		e := g.r.Intn(64)
		switch g.r.Intn(3) {
		case 0:
			fmt.Fprintf(&g.sb, "%sss := ss + [%d];\n", indent, e)
		case 1:
			fmt.Fprintf(&g.sb, "%sss := ss + [abs(%s) mod 64];\n", indent, g.expr(0))
		default:
			fmt.Fprintf(&g.sb, "%sss := ss - [%d];\n", indent, e)
		}
		v := g.vars[g.r.Intn(len(g.vars))]
		fmt.Fprintf(&g.sb, "%sif %d in ss then %s := %s + 2;\n", indent, g.r.Intn(64), v, v)
	default:
		fmt.Fprintf(&g.sb, "%swriteln(%s);\n", indent, g.expr(1))
	}
}

func generateProgram(seed int64) string {
	g := &progGen{
		r:    rand.New(rand.NewSource(seed)),
		vars: []string{"a", "b", "c", "d"},
	}
	g.sb.WriteString("program fuzz;\nvar a, b, c, d, li: integer;\n    v: array[1..8] of integer;\n")
	g.sb.WriteString("    p, q: boolean;\n    h: -9999..9999;\n    ss: set of 0..63;\n    gsum: integer;\n")
	g.sb.WriteString("function twice(n: integer): integer;\nbegin twice := n + n end;\n")
	g.sb.WriteString("procedure bump(k: integer);\nbegin\n  gsum := gsum + k;\n  if k > 1 then bump(k - 1)\nend;\n")
	g.sb.WriteString("begin\n  a := 3; b := 7; c := 11; d := 2;\n  p := true; q := false; h := 0; gsum := 0;\n")
	g.sb.WriteString("  for li := 1 to 8 do v[li] := li * 2;\n")
	n := 4 + g.r.Intn(6)
	for i := 0; i < n; i++ {
		g.stmt("  ", 2)
	}
	g.sb.WriteString("  a := a\nend.\n")
	return g.sb.String()
}

// TestFuzzDifferential generates random programs and requires the three
// backends to agree on every variable byte.
var fuzzSeeds = 40

func TestFuzzDifferential(t *testing.T) {
	seeds := fuzzSeeds
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src := generateProgram(seed)
		prog, err := pascal.Parse("fuzz.pas", src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}

		type backend struct {
			name    string
			compile func() (*driver.Compiled, error)
		}
		backends := []backend{
			{"full", func() (*driver.Compiled, error) {
				return target(t).Compile("fuzz.pas", src, shaper.Options{})
			}},
			{"minimal", func() (*driver.Compiled, error) {
				return minimalTarget(t).Compile("fuzz.pas", src, shaper.Options{})
			}},
			{"handwritten", func() (*driver.Compiled, error) {
				p2, err := pascal.Parse("fuzz.pas", src)
				if err != nil {
					return nil, err
				}
				s2, err := shaper.Shape(p2, shaper.Options{})
				if err != nil {
					return nil, err
				}
				return driver.CompileHandwritten(s2, target(t).Machine)
			}},
			{"full+cse", func() (*driver.Compiled, error) {
				return target(t).Compile("fuzz.pas", src, cseOptions())
			}},
		}

		type result struct {
			name string
			mem  map[string][]byte
			out  []int32
		}
		var results []result
		for _, b := range backends {
			c, err := b.compile()
			if err != nil {
				t.Fatalf("seed %d: %s compile: %v\n%s", seed, b.name, err, src)
			}
			cpu, err := c.Run(nil, 5_000_000)
			if err != nil {
				t.Fatalf("seed %d: %s run: %v\n%s\n%s", seed, b.name, err, src, c.Listing())
			}
			mem := map[string][]byte{}
			for _, v := range prog.Main.Locals {
				addr, _ := c.VarAddr(v.Name)
				buf := make([]byte, v.Type.Size())
				for off := range buf {
					buf[off], _ = cpu.Byte(addr + uint32(off))
				}
				mem[v.Name] = buf
			}
			results = append(results, result{b.name, mem, driver.Output(cpu)})
		}
		base := results[0]
		for _, r := range results[1:] {
			for name, want := range base.mem {
				got := r.mem[name]
				if string(got) != string(want) {
					t.Fatalf("seed %d: %s and %s disagree on %s: % x vs % x\n%s",
						seed, base.name, r.name, name, want, got, src)
				}
			}
			if !reflect.DeepEqual(base.out, r.out) {
				t.Fatalf("seed %d: %s and %s disagree on output: %v vs %v\n%s",
					seed, base.name, r.name, base.out, r.out, src)
			}
		}
	}
}
