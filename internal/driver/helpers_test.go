package driver_test

import (
	"io"
	"testing"

	"cogg/internal/ir"

	"cogg/internal/codegen"
	"cogg/internal/pascal"
	"cogg/internal/rt370"
	"cogg/internal/tables"
)

func decodeModule(r io.Reader) (*tables.Module, error) {
	return tables.Decode(r)
}

func newGenerator(mod *tables.Module) (*codegen.Generator, error) {
	return codegen.New(mod, rt370.Config())
}

func mustTokensD(t *testing.T, text string) []ir.Token {
	t.Helper()
	toks, err := ir.ParseTokens(text)
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

func parsePascal(t *testing.T, src string) (*pascal.Program, error) {
	t.Helper()
	p, err := pascal.Parse("t.pas", src)
	if err != nil {
		t.Fatal(err)
	}
	return p, err
}
