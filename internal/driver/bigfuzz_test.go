package driver_test

import "testing"

func TestFuzzBig(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	old := fuzzSeeds
	fuzzSeeds = 400
	defer func() { fuzzSeeds = old }()
	TestFuzzDifferential(t)
}
