package driver_test

import (
	"testing"

	"cogg/internal/driver"
	"cogg/internal/shaper"
)

// Regression tests for bugs found by the differential fuzzer during
// development. Each was minimized from a failing random program; the
// comments name the defect.

// The LA-based add idiom (`la r,v(0,r)`) truncated negative
// intermediates to 24 bits; the productions were removed from the
// specification. 39 + (33 + (-584)) must be -512, not 0x00FFFE00.
func TestRegressionLATruncation(t *testing.T) {
	compileRun(t, `
program latrunc;
var b, v2: integer;
begin
  b := -(73 * 8);
  v2 := abs(39) + (33 + b)
end.
`, nil, map[string]int32{"v2": -512})
}

// The shaper's literal storage overlapped the branch/case literal pool:
// a large constant (9999) overwrote a case table's address and the
// dispatch jumped to storage address zero.
func TestRegressionPoolPartition(t *testing.T) {
	compileRun(t, `
program poolclash;
var a, d, c, h: integer;
begin
  d := 2; c := 11; a := 3;
  h := (d * c) mod 9999;
  a := a + h;
  case a mod 4 of
    1, 2: a := 69 * 49
  else a := 0
  end
end.
`, nil, map[string]int32{"a": 3381})
}

// The register save area's r13 slot doubled as the dynamic chain: a
// callee's STM overwrote the caller's chain with the caller's own frame
// address, so the caller's exit restored r13 to itself and looped.
func TestRegressionSaveAreaChain(t *testing.T) {
	compileRun(t, `
program chain;
var r1: integer;
function double(x: integer): integer;
begin double := x + x end;
begin
  r1 := double(21)
end.
`, nil, map[string]int32{"r1": 42})
}

// Two calls in one expression read the same callee-frame result slot;
// the second call's frame reuse clobbered the first result. The shaper
// now copies each result to a caller-frame temporary.
func TestRegressionDoubleCallResult(t *testing.T) {
	compileRun(t, `
program twocalls;
var x: integer;
function id(n: integer): integer;
begin id := n end;
begin
  x := id(30) + id(12)
end.
`, nil, map[string]int32{"x": 42})
}

// The hand-written baseline's operand-commuting probe evaluated index
// subtrees as a side effect, leaking registers and emitting duplicate
// code. The probe is now a pure shape test.
func TestRegressionBaselineCommuteProbe(t *testing.T) {
	src := `
program commute;
var v: array[1..8] of integer;
    i, x: integer;
begin
  for i := 1 to 8 do v[i] := i;
  x := 0;
  for i := 1 to 8 do x := v[i] + x
end.
`
	prog, err := parsePascal(t, src)
	if err != nil {
		t.Fatal(err)
	}
	shaped, err := shaper.Shape(prog, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := driver.CompileHandwritten(shaped, target(t).Machine)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := hw.Run(nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := driver.Word(cpu, hw, "x"); got != 36 {
		t.Errorf("x = %d, want 36", got)
	}
}
