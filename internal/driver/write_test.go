package driver_test

import (
	"reflect"
	"testing"

	"cogg/internal/driver"
	"cogg/internal/shaper"
)

// TestWriteBuiltin routes output through the runtime stub's vector slot.
func TestWriteBuiltin(t *testing.T) {
	src := `
program out;
var i: integer;
function sq(n: integer): integer;
begin sq := n * n end;
begin
  for i := 1 to 5 do writeln(sq(i));
  write(100, 200)
end.
`
	c, err := target(t).Compile("out.pas", src, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.Run(nil, 1_000_000)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, c.Listing())
	}
	got := driver.Output(cpu)
	want := []int32{1, 4, 9, 16, 25, 100, 200}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("output %v, want %v", got, want)
	}
}

// TestWriteUnderMinimalGrammar: the builtin is ordinary IF, so the
// minimal specification handles it too.
func TestWriteUnderMinimalGrammar(t *testing.T) {
	src := `
program out2;
var x: integer;
begin
  x := 6 * 7;
  writeln(x)
end.
`
	c, err := minimalTarget(t).Compile("out2.pas", src, shaper.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := c.Run(nil, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := driver.Output(cpu); len(got) != 1 || got[0] != 42 {
		t.Errorf("output %v", got)
	}
}
