package driver_test

import (
	"sort"
	"testing"

	"cogg/internal/asm"
	"cogg/internal/batch"
	"cogg/internal/driver"
	"cogg/internal/pascal"
	"cogg/internal/rt370"
	"cogg/internal/shaper"
	"cogg/specs"
)

// differentialPrograms are compiled by both the table-driven generator
// and the hand-written baseline; every main-program variable must end up
// identical. This exercises every semantic operator end to end against
// an independent implementation.
var differentialPrograms = map[string]string{
	"arith": `
program d1;
var a, b, c, d, e, f: integer;
begin
  a := 13; b := 5;
  c := a * b + a div b - a mod b;
  d := (a + b) * (a - b);
  e := -c + abs(-d);
  f := c * d div (a + 1)
end.
`,
	"control": `
program d2;
var i, j, evens, odds, loops: integer;
begin
  evens := 0; odds := 0; loops := 0;
  for i := 1 to 20 do
    if odd(i) then odds := odds + i else evens := evens + i;
  i := 0;
  while i < 5 do
  begin
    j := 10;
    repeat
      loops := loops + 1;
      j := j - 2
    until j <= 0;
    i := i + 1
  end
end.
`,
	"arrays": `
program d3;
var v, w: array[1..15] of integer;
    i, sum, dot: integer;
begin
  for i := 1 to 15 do v[i] := i * 3 - 7;
  w := v;
  sum := 0; dot := 0;
  for i := 1 to 15 do
  begin
    sum := sum + w[i];
    dot := dot + v[i] * w[i]
  end
end.
`,
	"booleans": `
program d4;
var p, q, r, s, t: boolean;
    score: integer;
begin
  p := true; q := false;
  r := p and q;
  s := p or q;
  t := not r;
  score := 0;
  if p and not q then score := score + 1;
  if r or s then score := score + 10;
  if t then score := score + 100
end.
`,
	"sets": `
program d5;
var s: set of 0..63;
    i, members: integer;
begin
  for i := 0 to 9 do
    if odd(i * i) then s := s + [i];
  members := 0;
  for i := 0 to 20 do
    if i in s then members := members + 1
end.
`,
	"subranges": `
program d6;
var h1, h2: -20000..20000;
    b1: 0..200;
    total: integer;
begin
  h1 := -150; h2 := 3000;
  b1 := 77;
  total := h1 * 2 + h2 div 3 + b1
end.
`,
	"branches-paper": `
program d7;
var i, j, k, p, q: integer;
    flag: boolean;
    z: -32000..32000;
begin
  z := 17; flag := true; p := 3; q := 9; j := 12; k := 0;
  if flag then i := j - 1 else i := z;
  if p < q then k := z
end.
`,
	"case": `
program d8;
var i, tally: integer;
begin
  tally := 0;
  for i := 0 to 8 do
    case i of
      0, 2, 4: tally := tally + 1;
      1, 3: tally := tally + 10;
      7: tally := tally + 100
    else tally := tally + 1000
    end
end.
`,
}

// compareWithHandwritten runs a table-driven compilation against the
// hand-written baseline for the same source and asserts every byte of
// every main-program variable ends up identical in simulator memory.
func compareWithHandwritten(t *testing.T, name, src string, td *driver.Compiled, m asm.Machine) {
	t.Helper()
	// Shape again for the baseline: shaping mutates no state, but the
	// trees are rewritten in place downstream.
	prog2, err := pascal.Parse(name+".pas", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	shapedHW, err := shaper.Shape(prog2, shaper.Options{StatementRecords: true})
	if err != nil {
		t.Fatalf("shape: %v", err)
	}
	hw, err := driver.CompileHandwritten(shapedHW, m)
	if err != nil {
		t.Fatalf("handwritten compile: %v", err)
	}

	cpuTD, err := td.Run(nil, 2_000_000)
	if err != nil {
		t.Fatalf("table-driven run: %v\n%s", err, td.Listing())
	}
	cpuHW, err := hw.Run(nil, 2_000_000)
	if err != nil {
		t.Fatalf("handwritten run: %v\n%s", err, hw.Listing())
	}

	for _, v := range prog2.Main.Locals {
		addr, _ := td.VarAddr(v.Name)
		size := v.Type.Size()
		for off := int64(0); off < size; off++ {
			a, errA := cpuTD.Byte(addr + uint32(off))
			b, errB := cpuHW.Byte(addr + uint32(off))
			if errA != nil || errB != nil {
				t.Fatalf("reading %s+%d: %v %v", v.Name, off, errA, errB)
			}
			if a != b {
				t.Errorf("%s byte %d: table-driven %#x vs handwritten %#x\nTD:\n%s\nHW:\n%s",
					v.Name, off, a, b, td.Listing(), hw.Listing())
				break
			}
		}
	}
	t.Logf("instructions: table-driven %d, handwritten %d",
		td.Prog.InstructionCount(), hw.Prog.InstructionCount())
}

func TestDifferentialAgainstHandwritten(t *testing.T) {
	for name, src := range differentialPrograms {
		t.Run(name, func(t *testing.T) {
			prog, err := pascal.Parse(name+".pas", src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			shapedTD, err := shaper.Shape(prog, shaper.Options{StatementRecords: true})
			if err != nil {
				t.Fatalf("shape: %v", err)
			}
			td, err := target(t).CompileShaped(prog, shapedTD)
			if err != nil {
				t.Fatalf("table-driven compile: %v", err)
			}
			compareWithHandwritten(t, name, src, td, target(t).Machine)
		})
	}
}

// TestDifferentialBatchConcurrent runs the same generated-vs-handwritten
// comparison through the batch service: every program compiles on an
// 8-worker pool sharing one generator reconstituted from the module
// cache, and each result must still match the hand-written baseline's
// simulator memory byte for byte. This is the concurrency half of the
// differential check: parallel compilation may not change what the
// compiler emits.
func TestDifferentialBatchConcurrent(t *testing.T) {
	svc := batch.New(batch.Options{Workers: 8, CacheDir: t.TempDir()})
	tgt, err := svc.Target("amdahl470.cogg", specs.Amdahl470, rt370.Config())
	if err != nil {
		t.Fatal(err)
	}

	names := make([]string, 0, len(differentialPrograms))
	for name := range differentialPrograms {
		names = append(names, name)
	}
	sort.Strings(names)
	units := make([]batch.Unit, 0, len(names))
	for _, name := range names {
		units = append(units, batch.Unit{
			Name:   name,
			Source: differentialPrograms[name],
			Opt:    shaper.Options{StatementRecords: true},
		})
	}

	results := svc.CompileBatch(tgt, units)
	for i, r := range results {
		t.Run(r.Name, func(t *testing.T) {
			if r.Err != nil {
				t.Fatalf("batch compile: %v", r.Err)
			}
			compareWithHandwritten(t, r.Name, units[i].Source, r.Compiled, tgt.Machine)
		})
	}
	if v := svc.Stats.Snapshot(); v.UnitsCompiled != int64(len(units)) {
		t.Errorf("stats count %d compiled units, want %d", v.UnitsCompiled, len(units))
	}
}
