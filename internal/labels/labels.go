// Package labels resolves label references and span-dependent branch
// instructions (paper section 4.2).
//
// While parsing the IF, the code generator records label locations and
// branch sites in a dictionary (asm.Program carries it). No routine
// operating only on the IF can know how many instructions a construct
// takes, and the exact target of a forward branch is unknown until the
// label is encountered; both problems are solved after all code for a
// module has been generated, by the layout pass here.
//
// Branches begin in their short form. Any branch whose target cannot be
// reached with the target's short displacement grows to the long form —
// an additional load of the target address (from the literal pool)
// into the scratch register the template allocated for that purpose —
// and the pass repeats until no branch changes size. Growth is monotone,
// so the iteration reaches a fixpoint (Robertson 1979; Leverett &
// Szymanski 1980).
package labels

import (
	"fmt"

	"cogg/internal/asm"
)

// Layout assigns sizes and addresses to every instruction of p, widening
// span-dependent branches until a fixpoint, and verifies that every
// referenced label is defined.
func Layout(p *asm.Program, m asm.Machine) error {
	if err := checkRefs(p); err != nil {
		return err
	}
	for round := 0; ; round++ {
		if round > len(p.Instrs)+1 {
			return fmt.Errorf("labels: relaxation did not converge after %d rounds", round)
		}
		addr := p.Origin
		for i := range p.Instrs {
			in := &p.Instrs[i]
			size, err := m.SizeOf(in)
			if err != nil {
				return fmt.Errorf("labels: instruction %d (%s): %w", i, in.Op, err)
			}
			in.Addr = addr
			in.Size = size
			addr += size
		}
		p.CodeSize = addr - p.Origin

		changed := false
		for i := range p.Instrs {
			in := &p.Instrs[i]
			if in.Pseudo != asm.Branch || in.Long {
				continue
			}
			target, err := p.LabelAddr(in.Label)
			if err != nil {
				return err
			}
			if !m.ShortBranchReach(p, in.Addr, target) {
				in.Long = true
				in.PoolIx = p.AddPoolLabel(in.Label)
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
}

// checkRefs verifies every label referenced by a branch, case dispatch,
// address constant, or pool entry is defined in the dictionary.
func checkRefs(p *asm.Program) error {
	need := func(id int64, what string, ix int) error {
		if _, ok := p.Labels[id]; !ok {
			return fmt.Errorf("labels: %s at instruction %d references undefined label %d", what, ix, id)
		}
		return nil
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Pseudo {
		case asm.Branch:
			if err := need(in.Label, "branch", i); err != nil {
				return err
			}
		case asm.CaseLoad:
			if err := need(in.Label, "case dispatch", i); err != nil {
				return err
			}
		case asm.AddrConst:
			if err := need(in.Label, "address constant", i); err != nil {
				return err
			}
		}
	}
	for i, e := range p.Pool {
		if e.IsLabel {
			if _, ok := p.Labels[e.Label]; !ok {
				return fmt.Errorf("labels: pool slot %d references undefined label %d", i, e.Label)
			}
		}
	}
	return nil
}

// LongBranchCount reports how many branches were widened to the long
// form, the measure of experiment E7.
func LongBranchCount(p *asm.Program) int {
	n := 0
	for i := range p.Instrs {
		if p.Instrs[i].Pseudo == asm.Branch && p.Instrs[i].Long {
			n++
		}
	}
	return n
}

// PoolBytes materializes the literal pool as big-endian 32-bit words.
func PoolBytes(p *asm.Program) ([]byte, error) {
	out := make([]byte, 0, 4*len(p.Pool))
	for i, e := range p.Pool {
		v := e.Value
		if e.IsLabel {
			addr, err := p.LabelAddr(e.Label)
			if err != nil {
				return nil, fmt.Errorf("labels: pool slot %d: %w", i, err)
			}
			v = int64(addr)
		}
		out = append(out, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return out, nil
}
