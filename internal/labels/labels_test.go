package labels_test

import (
	"strings"
	"testing"

	"cogg/internal/asm"
	"cogg/internal/labels"
	"cogg/internal/rt370"
)

// prog builds a program with n plain 4-byte instructions, inserting
// branches and label marks per the callback.
func prog(name string) *asm.Program {
	p := asm.NewProgram(name)
	p.Origin = rt370.CodeOrigin
	p.PoolOrigin = rt370.PoolOrigin
	return p
}

func pad(p *asm.Program, n int) {
	for i := 0; i < n; i++ {
		p.Append(asm.Instr{Op: "lr", Opds: []asm.Operand{asm.R(1), asm.R(1)}})
	}
}

func TestLayoutShortBranch(t *testing.T) {
	p := prog("SHORT")
	m := rt370.Machine()
	p.Append(asm.Instr{Pseudo: asm.Branch, Cond: 15, Label: 1, Scratch: 3})
	pad(p, 5)
	if err := p.DefineLabel(1, len(p.Instrs)); err != nil {
		t.Fatal(err)
	}
	if err := labels.Layout(p, m); err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Long {
		t.Error("short-range branch widened")
	}
	if p.Instrs[0].Size != 4 {
		t.Errorf("short branch size = %d", p.Instrs[0].Size)
	}
	if labels.LongBranchCount(p) != 0 {
		t.Error("long branch count nonzero")
	}
	addr, err := p.LabelAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	if addr != rt370.CodeOrigin+4+5*2 {
		t.Errorf("label at %#x", addr)
	}
}

func TestLayoutWidensFarBranch(t *testing.T) {
	p := prog("FAR")
	m := rt370.Machine()
	p.Append(asm.Instr{Pseudo: asm.Branch, Cond: 15, Label: 1, Scratch: 3})
	// 2100 two-byte instructions put the target past the 4096-byte page.
	pad(p, 2100)
	_ = p.DefineLabel(1, len(p.Instrs))
	pad(p, 1)
	if err := labels.Layout(p, m); err != nil {
		t.Fatal(err)
	}
	if !p.Instrs[0].Long {
		t.Fatal("far branch stayed short")
	}
	if p.Instrs[0].Size != 6 {
		t.Errorf("long branch size = %d, want 6 (L + BCR)", p.Instrs[0].Size)
	}
	if labels.LongBranchCount(p) != 1 {
		t.Errorf("long branch count = %d", labels.LongBranchCount(p))
	}
	if len(p.Pool) != 1 || !p.Pool[0].IsLabel || p.Pool[0].Label != 1 {
		t.Errorf("pool = %+v", p.Pool)
	}
}

// TestLayoutCascade: widening one branch can push another's target over
// the boundary; the fixpoint must catch it.
func TestLayoutCascade(t *testing.T) {
	p := prog("CASC")
	m := rt370.Machine()
	// Branch A targets just under the boundary; branch B just over when
	// A is short. Widening B does not move A's target (targets measured
	// from the origin), so construct the reverse: many branches whose
	// targets straddle the boundary as earlier branches grow.
	for i := 0; i < 30; i++ {
		p.Append(asm.Instr{Pseudo: asm.Branch, Cond: 15, Label: int64(i + 1), Scratch: 3})
	}
	pad(p, 1970) // ~4060 bytes after the 30 branches when all short
	for i := 0; i < 30; i++ {
		_ = p.DefineLabel(int64(i+1), len(p.Instrs))
		pad(p, 2)
	}
	if err := labels.Layout(p, m); err != nil {
		t.Fatal(err)
	}
	// Verify every branch's final form is consistent with its target.
	for i := 0; i < 30; i++ {
		in := p.Instrs[i]
		target, _ := p.LabelAddr(in.Label)
		reach := m.ShortBranchReach(p, in.Addr, target)
		if reach && in.Long {
			// Allowed: relaxation is monotone and may overshoot, but
			// only if the target was unreachable at some earlier size.
			continue
		}
		if !reach && !in.Long {
			t.Fatalf("branch %d short but target %#x unreachable", i, target)
		}
	}
	if labels.LongBranchCount(p) == 0 {
		t.Error("expected some long branches in the cascade")
	}
}

func TestUndefinedLabel(t *testing.T) {
	p := prog("UNDEF")
	p.Append(asm.Instr{Pseudo: asm.Branch, Cond: 15, Label: 9, Scratch: 3})
	err := labels.Layout(p, rt370.Machine())
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("err = %v", err)
	}
}

func TestUndefinedPoolLabel(t *testing.T) {
	p := prog("POOLU")
	p.AddPoolLabel(42)
	err := labels.Layout(p, rt370.Machine())
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("err = %v", err)
	}
}

func TestPoolBytes(t *testing.T) {
	p := prog("POOL")
	pad(p, 3)
	_ = p.DefineLabel(7, 2)
	ix := p.AddPoolLabel(7)
	if ix != 0 || p.AddPoolLabel(7) != 0 {
		t.Error("pool slots not deduplicated")
	}
	p.Pool = append(p.Pool, asm.PoolEntry{Value: 0x12345678})
	if err := labels.Layout(p, rt370.Machine()); err != nil {
		t.Fatal(err)
	}
	b, err := labels.PoolBytes(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 8 {
		t.Fatalf("pool bytes = %d", len(b))
	}
	addr, _ := p.LabelAddr(7)
	got := int(b[0])<<24 | int(b[1])<<16 | int(b[2])<<8 | int(b[3])
	if got != addr {
		t.Errorf("pool[0] = %#x, want %#x", got, addr)
	}
	if b[4] != 0x12 || b[7] != 0x78 {
		t.Errorf("pool[1] bytes = % x", b[4:8])
	}
}

func TestLabelAtEnd(t *testing.T) {
	p := prog("END")
	pad(p, 4)
	_ = p.DefineLabel(1, len(p.Instrs))
	if err := labels.Layout(p, rt370.Machine()); err != nil {
		t.Fatal(err)
	}
	addr, err := p.LabelAddr(1)
	if err != nil {
		t.Fatal(err)
	}
	if addr != p.Origin+p.CodeSize {
		t.Errorf("end label at %#x, want %#x", addr, p.Origin+p.CodeSize)
	}
}

func TestDuplicateLabelRejected(t *testing.T) {
	p := prog("DUP")
	pad(p, 2)
	if err := p.DefineLabel(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.DefineLabel(1, 1); err == nil {
		t.Error("redefinition accepted")
	}
	if err := p.DefineLabel(1, 0); err != nil {
		t.Errorf("idempotent definition rejected: %v", err)
	}
}

// TestLayoutIdempotent: re-running layout over an already laid-out
// program changes nothing (relaxation is monotone and at a fixpoint).
func TestLayoutIdempotent(t *testing.T) {
	p := prog("IDEM")
	m := rt370.Machine()
	p.Append(asm.Instr{Pseudo: asm.Branch, Cond: 15, Label: 1, Scratch: 3})
	pad(p, 2100)
	_ = p.DefineLabel(1, len(p.Instrs))
	pad(p, 3)
	if err := labels.Layout(p, m); err != nil {
		t.Fatal(err)
	}
	var addrs []int
	var longs []bool
	for i := range p.Instrs {
		addrs = append(addrs, p.Instrs[i].Addr)
		longs = append(longs, p.Instrs[i].Long)
	}
	size, pool := p.CodeSize, len(p.Pool)
	if err := labels.Layout(p, m); err != nil {
		t.Fatal(err)
	}
	for i := range p.Instrs {
		if p.Instrs[i].Addr != addrs[i] || p.Instrs[i].Long != longs[i] {
			t.Fatalf("instruction %d changed across re-layout", i)
		}
	}
	if p.CodeSize != size || len(p.Pool) != pool {
		t.Error("program shape changed across re-layout")
	}
}
