// Package oracle turns a decoded table module into a grammar oracle: a
// queryable model of the SLR parser that, for any parse-stack cursor,
// answers "which IF symbols may come next?" and advances the cursor on a
// chosen symbol, replaying the shift/reduce-cascade/accept behaviour of
// the real parser without emitting code.
//
// The parse table already encodes the whole answer — an action exists
// for exactly the (state, symbol) pairs the specification can translate
// — but a single table probe is not enough: a Reduce action does not by
// itself make a symbol legal. The reduction pops right-side entries,
// exposes a deeper state, and re-dispatches on the same symbol, and the
// cascade may end in an Error several reductions later (or in an illegal
// lambda reduction mid-statement). Legality therefore simulates the
// cascade against a scratch copy of the stack, exactly as the code
// generator's parse loop would execute it.
//
// The oracle is purely grammatical: it pushes a production's left side
// where the code emission routine would run semantic operators. For the
// shipped specifications the two agree on the parse stack — push_odd and
// push_even push a register of the pair's under class (the production's
// left-side class), and find_common either pushes a register of the
// defining class or a storage reference that the ordinary load
// productions reduce to the same class — so a symbol the oracle deems
// legal is legal for the real parser too.
package oracle

import (
	"fmt"

	"cogg/internal/grammar"
	"cogg/internal/lr"
	"cogg/internal/tables"
)

// cascadeBound caps the reductions simulated while dispatching one
// symbol. Glanville's construction admits only uniformly reducible
// grammars, whose cascades are short; the bound exists so a corrupt
// module cannot loop the simulation.
const cascadeBound = 1 << 14

// Oracle wraps one decoded table module for grammar walking. It is
// immutable and safe for concurrent use; cursors are not.
type Oracle struct {
	mod *tables.Module
	eof int   // EOF pseudo-symbol id (the extra ColOf column)
	ifs []int // symbol ids that may occur in the IF, ascending
}

// New builds an oracle over a decoded module.
func New(mod *tables.Module) *Oracle {
	o := &Oracle{mod: mod, eof: len(mod.Packed.ColOf) - 1}
	for _, s := range mod.Grammar.Syms {
		switch s.Kind {
		case grammar.Operator, grammar.Terminal, grammar.Nonterminal:
			if s.ID != mod.Grammar.Lambda {
				o.ifs = append(o.ifs, s.ID)
			}
		}
	}
	return o
}

// Grammar returns the module's grammar.
func (o *Oracle) Grammar() *grammar.Grammar { return o.mod.Grammar }

// Module returns the underlying table module.
func (o *Oracle) Module() *tables.Module { return o.mod }

// EOF returns the end-of-input pseudo-symbol id. It participates in
// Legal sets (membership means "the program may end here") and may be
// passed to Advance to accept.
func (o *Oracle) EOF() int { return o.eof }

// Universe returns the size of the symbol-id universe for Legal sets:
// every grammar symbol plus the EOF pseudo-symbol.
func (o *Oracle) Universe() int { return len(o.mod.Packed.ColOf) }

// ReachableProds reports, per production index, whether the production
// has at least one Reduce entry in the packed table. A production can
// lose every slot to conflict resolution — an identical right side with
// an earlier declaration, or a shift preferred on every follow symbol —
// and such a production can never fire on any input, so corpus coverage
// is measured against this set.
func (o *Oracle) ReachableProds() []bool {
	p := o.mod.Packed
	reachable := make([]bool, len(o.mod.Grammar.Prods))
	for i, c := range p.Check {
		if c == 0 {
			continue
		}
		if a := p.Data[i]; a.Kind() == lr.Reduce && a.Target() < len(reachable) {
			reachable[a.Target()] = true
		}
	}
	return reachable
}

// Step reports what one Advance did.
type Step struct {
	// Reduced lists the productions (indices into Grammar().Prods) the
	// cascade fired, in execution order.
	Reduced []int
	// Accepted is set when the advance was on EOF and the parse
	// accepted; the cursor takes no further symbols.
	Accepted bool
}

// Cursor is one walk's parse-stack position. The zero cursor is not
// usable; obtain one from Oracle.NewCursor.
type Cursor struct {
	o      *Oracle
	states []int // parse stack of states; states[0] is the start state
	done   bool

	// simulation scratch, reused across Legal and Advance calls
	simStates []int
	simRed    []int
	simPend   []int
}

// NewCursor returns a cursor at the start of a program.
func (o *Oracle) NewCursor() *Cursor {
	c := &Cursor{o: o}
	c.Reset()
	return c
}

// Reset rewinds the cursor to the start of a program.
func (c *Cursor) Reset() {
	c.states = append(c.states[:0], 0)
	c.done = false
}

// Depth returns the number of grammar symbols on the parse stack. Zero
// means the cursor sits at a statement boundary (or the very start).
func (c *Cursor) Depth() int { return len(c.states) - 1 }

// State returns the current top parse state.
func (c *Cursor) State() int { return c.states[len(c.states)-1] }

// Accepted reports whether the cursor has accepted end of input.
func (c *Cursor) Accepted() bool { return c.done }

// simulate dispatches sym against a scratch copy of the stack,
// returning whether the symbol is legal. On success the scratch stack
// holds the post-advance configuration and c.simRed the fired
// productions; accepted reports an EOF accept.
//
// The pending slice mirrors the parser's pushback queue, next symbol
// last: it starts as [sym], a reduction appends its left side (the
// parser prefixes it to the input), and a shift pops. A pushed left
// side can itself be the lookahead that triggers the next reduction, so
// pending can hold several left sides above the original symbol.
func (c *Cursor) simulate(sym int) (ok, accepted bool) {
	o := c.o
	c.simStates = append(c.simStates[:0], c.states...)
	c.simRed = c.simRed[:0]
	c.simPend = append(c.simPend[:0], sym)
	states := c.simStates
	pending := c.simPend
	prods := o.mod.Grammar.Prods
	lambda := o.mod.Grammar.Lambda
	for steps := 0; steps < cascadeBound; steps++ {
		look := pending[len(pending)-1]
		act := o.mod.Packed.Lookup(states[len(states)-1], look)
		switch act.Kind() {
		case lr.Shift:
			states = append(states, act.Target())
			pending = pending[:len(pending)-1]
			if len(pending) == 0 {
				c.simStates, c.simPend = states, pending
				return true, false
			}
		case lr.Accept:
			// Accept consumes the EOF pseudo-symbol with the stack back
			// at the start state; anything still pending above it would
			// have to be consumed after end of input.
			c.simStates, c.simPend = states, pending
			return len(pending) == 1 && len(states) == 1, true
		case lr.Reduce:
			p := prods[act.Target()]
			n := len(p.RHS)
			if n > len(states)-1 {
				return false, false // corrupt table: pops through the stack bottom
			}
			states = states[:len(states)-n]
			c.simRed = append(c.simRed, act.Target())
			if p.LHS == lambda {
				// Lambda productions end a statement: the code emission
				// routine requires the stack back at the bottom.
				if len(states) != 1 {
					return false, false
				}
				continue
			}
			pending = append(pending, p.LHS)
		default:
			return false, false
		}
	}
	return false, false
}

// CanAdvance reports whether Advance(sym) would succeed.
func (c *Cursor) CanAdvance(sym int) bool {
	if c.done {
		return false
	}
	ok, _ := c.simulate(sym)
	return ok
}

// Legal fills dst with every symbol id on which Advance would succeed,
// including EOF when the program may end here. A nil dst allocates a
// set over Universe(); a caller-supplied dst must cover Universe() and
// is cleared first.
func (c *Cursor) Legal(dst lr.SymSet) lr.SymSet {
	if dst == nil {
		dst = lr.NewSymSet(c.o.Universe())
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	if c.done {
		return dst
	}
	for _, id := range c.o.ifs {
		if ok, _ := c.simulate(id); ok {
			dst.Add(id)
		}
	}
	if ok, _ := c.simulate(c.o.eof); ok {
		dst.Add(c.o.eof)
	}
	return dst
}

// Advance consumes sym, committing the shift and any reduce cascade it
// triggers. Advancing on EOF accepts. The returned Step's Reduced slice
// aliases cursor scratch and is valid until the next call.
func (c *Cursor) Advance(sym int) (Step, error) {
	if c.done {
		return Step{}, fmt.Errorf("oracle: cursor has accepted; no further symbols")
	}
	ok, accepted := c.simulate(sym)
	if !ok {
		return Step{}, &IllegalSymbolError{Sym: sym, Name: c.symName(sym), State: c.State()}
	}
	c.states, c.simStates = c.simStates, c.states
	c.done = accepted
	return Step{Reduced: c.simRed, Accepted: accepted}, nil
}

func (c *Cursor) symName(sym int) string {
	if sym == c.o.eof {
		return "$end"
	}
	return c.o.mod.Grammar.SymName(sym)
}

// IllegalSymbolError reports an Advance on a symbol the grammar does
// not allow at the cursor's position.
type IllegalSymbolError struct {
	Sym   int
	Name  string
	State int
}

func (e *IllegalSymbolError) Error() string {
	return fmt.Sprintf("oracle: symbol %s (id %d) is not legal in state %d", e.Name, e.Sym, e.State)
}

// LegalFromStates computes the legal-next set for an arbitrary parse
// stack of states (bottom first, states[0] the start state) over mod.
// It is the package-level form of Cursor.Legal for callers that hold a
// raw stack — the blocked-parse tests compare the code generator's
// expected-symbol diagnostics against it.
func LegalFromStates(mod *tables.Module, states []int, dst lr.SymSet) lr.SymSet {
	o := New(mod)
	c := o.NewCursor()
	c.states = append(c.states[:0], states...)
	return c.Legal(dst)
}
