package oracle

import (
	"fmt"
	"math/rand"
	"sort"

	"cogg/internal/grammar"
	"cogg/internal/ir"
)

// WalkConfig tunes the random grammar walk.
type WalkConfig struct {
	// MaxTokens is the soft length budget: past it the walk winds down
	// (closes open subtrees and ends the program). <= 0 means 96.
	MaxTokens int
	// MaxDepth caps the parse-stack depth, bounding expression nesting
	// and with it register pressure. <= 0 means 10.
	MaxDepth int
	// MaxStatements caps the statements per program. <= 0 means 12.
	MaxStatements int
	// NontermTokens supplies, per nonterminal class name, the raw tokens
	// the walk may emit for it directly. Register classes whose every
	// member is managed by the allocator (no safe raw value) are left
	// out; the walk then derives the class through its productions
	// instead of emitting it as a token. Nil applies Rt370Nonterms.
	NontermTokens map[string][]int64
	// Priming is a token sequence prepended to every witness program
	// (see Witnesses), typically statements defining common
	// subexpressions so shift paths through use_common sites are
	// semantically live. The walk replays it through the cursor, so it
	// must be a valid statement-aligned prefix.
	Priming []ir.Token
}

// Rt370Nonterms is the raw-token table for the shipped specifications:
// general registers 10-13 are the runtime's base registers, outside the
// allocator's managed set, so they may appear literally in the IF; the
// condition code is a flag without a meaningful number.
func Rt370Nonterms() map[string][]int64 {
	return map[string][]int64{
		ir.NTReg: {10, 11, 12, 13},
		ir.NTCC:  {0},
	}
}

func (c *WalkConfig) fill() {
	if c.MaxTokens <= 0 {
		c.MaxTokens = 96
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.MaxStatements <= 0 {
		c.MaxStatements = 12
	}
	if c.NontermTokens == nil {
		c.NontermTokens = Rt370Nonterms()
	}
}

// prodSem classifies a production's effect on walker bookkeeping.
type prodSem struct {
	makeCommon bool   // defines a common subexpression (full_common & co)
	useCommon  bool   // uses one (find_common & co)
	labelDef   bool   // defines a label (label_location)
	class      string // left-side register class name
}

// liveCSE is a defined common subexpression with uses remaining.
type liveCSE struct {
	id        int64
	class     string
	remaining int64
}

// pendingMake tracks a cse terminal emitted after a make-common lead
// operator, awaiting the production's reduce to become live.
type pendingMake struct {
	id  int64
	cnt int64
}

// Walker random-walks a grammar, producing valid-by-construction IF
// token streams. It is deterministic given its seed and not safe for
// concurrent use.
type Walker struct {
	o   *Oracle
	cfg WalkConfig
	rng *rand.Rand
	cur *Cursor

	sems     []prodSem // by production index
	numToIdx map[int]int
	// covered is authoritative coverage, by production index: fed by
	// MarkCovered (verified translations) or commitProgram (accepted
	// walks when no verifier gates them).
	covered []bool
	// seen is steering coverage: every production any walk's cascade
	// fired, including walks later dropped. It biases the walk toward
	// unexercised productions but never enters the coverage report.
	seen       []bool
	progProds  []int // productions this program's cascades fired, deduped
	reachable  []bool
	leadBonus  map[int]bool // symbols beginning some uncovered production (rebuilt lazily)
	leadsDirty bool

	useLeads map[int]bool // first symbols of use-common productions
	defLead  int          // first symbol of the label-defining production, -1 none
	defLbl   string       // its label terminal name

	// per-program state
	toks      []ir.Token
	stmts     int
	lives     []liveCSE
	pendMakes []pendingMake
	pendUses  []int // token indices of use-context cse tokens
	nextCSE   int64
	stmtNum   int64
	labelsDef map[int64]bool
	labelsRef map[int64]bool
	nextLabel int64

	legalSet []candidate // scratch
	availBuf map[string]int64

	// derivation tables for witness programs, built lazily (ensureDerivs)
	dProd   []int // per symbol: cheapest-expansion production, -1 none
	dCost   []int // per symbol: tokens in that expansion, -1 underivable
	ctxProd []int // per symbol: production of its minimal statement context
	ctxSlot []int // per symbol: right-side slot in that production
}

// candidate is one legal next symbol with its simulated consequences.
type candidate struct {
	sym        int
	postDepth  int
	reduced    []int // owned copy of the cascade's productions
	weight     int
	postStates []int // owned copy of the post-advance stack (clamped walks only)
}

// NewWalker builds a walker over the oracle with its own deterministic
// PRNG stream.
func NewWalker(o *Oracle, seed int64, cfg WalkConfig) *Walker {
	cfg.fill()
	w := &Walker{
		o:          o,
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(seed)),
		cur:        o.NewCursor(),
		numToIdx:   map[int]int{},
		useLeads:   map[int]bool{},
		defLead:    -1,
		availBuf:   map[string]int64{},
		leadsDirty: true,
	}
	g := o.Grammar()
	w.sems = make([]prodSem, len(g.Prods))
	w.covered = make([]bool, len(g.Prods))
	w.seen = make([]bool, len(g.Prods))
	w.reachable = o.ReachableProds()
	for i, p := range g.Prods {
		w.numToIdx[p.Num] = i
		sem := prodSem{class: g.SymName(p.LHS)}
		for _, t := range p.Templates {
			if !t.Semantic {
				continue
			}
			switch g.SymName(t.Op) {
			case "full_common", "half_common", "byte_common", "real_common", "dreal_common":
				sem.makeCommon = true
			case "find_common", "find_real_common":
				sem.useCommon = true
			case "label_location":
				sem.labelDef = true
			}
		}
		w.sems[i] = sem
		if sem.useCommon && len(p.RHS) > 0 {
			w.useLeads[p.RHS[0]] = true
		}
		if sem.labelDef && w.defLead < 0 && len(p.RHS) == 2 {
			w.defLead = p.RHS[0]
			w.defLbl = g.SymName(p.RHS[1])
		}
	}
	return w
}

// Covered returns the walker's covered flags, by production index.
func (w *Walker) Covered() []bool { return w.covered }

// Reachable returns the statically reachable productions, by index.
func (w *Walker) Reachable() []bool { return w.reachable }

// UncoveredReachable lists reachable productions not yet covered.
func (w *Walker) UncoveredReachable() []int {
	var out []int
	for i, r := range w.reachable {
		if r && !w.covered[i] {
			out = append(out, i)
		}
	}
	return out
}

// MarkCovered folds a verified translation's per-production reduction
// counts (codegen.Result.ProdCounts, indexed by 1-based production
// number) into the walker's coverage state.
func (w *Walker) MarkCovered(prodCounts []int) {
	for num, n := range prodCounts {
		if n <= 0 {
			continue
		}
		if idx, ok := w.numToIdx[num]; ok && !w.covered[idx] {
			w.covered[idx] = true
			w.seen[idx] = true
			w.leadsDirty = true
		}
	}
}

// markCascade records a committed advance's productions for steering
// and for the current program's tally. The oracle's cascade matches the
// real parser's reductions except for reloads of spilled
// subexpressions, which only add coverage.
func (w *Walker) markCascade(reduced []int) {
	for _, pi := range reduced {
		if !w.seen[pi] {
			w.seen[pi] = true
			w.leadsDirty = true
		}
		dup := false
		for _, q := range w.progProds {
			if q == pi {
				dup = true
				break
			}
		}
		if !dup {
			w.progProds = append(w.progProds, pi)
		}
	}
}

// commitProgram promotes the current program's cascade tally to
// authoritative coverage, for runs without a verifier.
func (w *Walker) commitProgram() {
	for _, pi := range w.progProds {
		w.covered[pi] = true
	}
}

func (w *Walker) refreshLeads() {
	if !w.leadsDirty {
		return
	}
	w.leadsDirty = false
	w.leadBonus = map[int]bool{}
	g := w.o.Grammar()
	for i, p := range g.Prods {
		if w.reachable[i] && !w.seen[i] && len(p.RHS) > 0 {
			w.leadBonus[p.RHS[0]] = true
		}
	}
}

func (w *Walker) resetProgram() {
	w.cur.Reset()
	w.toks = w.toks[:0]
	w.progProds = w.progProds[:0]
	w.stmts = 0
	w.lives = w.lives[:0]
	w.pendMakes = w.pendMakes[:0]
	w.pendUses = w.pendUses[:0]
	w.nextCSE = 1
	w.stmtNum = 0
	w.labelsDef = map[int64]bool{}
	w.labelsRef = map[int64]bool{}
	w.nextLabel = 1
}

// Program random-walks one valid program. The returned tokens are a
// fresh slice. An error means the walk dead-ended (a rare semantic
// corner, e.g. a use-common context with no matching live
// subexpression) or overran its budgets; callers retry, advancing the
// PRNG stream.
func (w *Walker) Program() ([]ir.Token, error) {
	w.resetProgram()
	w.refreshLeads()
	hardCap := 2*w.cfg.MaxTokens + 64
	for steps := 0; ; steps++ {
		if steps > hardCap+512 {
			return nil, fmt.Errorf("oracle: walk exceeded %d steps", steps)
		}
		winding := len(w.toks) >= w.cfg.MaxTokens || w.stmts >= w.cfg.MaxStatements ||
			w.cur.Depth() > w.cfg.MaxDepth
		// A statement's closing reduce fires only when the next symbol
		// arrives, so the stack is never observed empty between
		// statements; "the program may end here" is exactly EOF being
		// acceptable (its cascade pops the completed statement).
		if winding && len(w.toks) > 0 && w.cur.CanAdvance(w.o.eof) {
			if err := w.windDown(); err != nil {
				return nil, err
			}
			out := make([]ir.Token, len(w.toks))
			copy(out, w.toks)
			return out, nil
		}
		if len(w.toks) > hardCap {
			return nil, fmt.Errorf("oracle: walk overran the token budget")
		}
		cands := w.candidates(winding)
		if len(cands) == 0 {
			return nil, fmt.Errorf("oracle: walk dead-ended in state %d at depth %d", w.cur.State(), w.cur.Depth())
		}
		pick := w.weightedPick(cands)
		if err := w.emit(pick.sym); err != nil {
			return nil, err
		}
	}
}

// candidates collects the legal, semantically viable next symbols with
// their simulated consequences and steering weights. EOF is never a
// candidate here; ending is handled by windDown.
func (w *Walker) candidates(winding bool) []candidate {
	w.legalSet = w.legalSet[:0]
	depth := w.cur.Depth()
	for _, sym := range w.o.ifs {
		if !w.emittable(sym) {
			continue
		}
		ok, _ := w.cur.simulate(sym)
		if !ok {
			continue
		}
		post := len(w.cur.simStates) - 1
		// MaxDepth is a soft cap: a reduction fires only when the symbol
		// AFTER a completed subtree arrives, so an incomplete subtree at
		// the cap must still be allowed to finish (briefly exceeding it)
		// or every walk reaching the cap mid-subtree would dead-end.
		// clampDeep below steers the walk back; the hard bound here is
		// only a safety margin against runaway recursion.
		if post > 4*w.cfg.MaxDepth {
			continue
		}
		if !w.semViable(w.cur.simRed) {
			continue
		}
		c := candidate{sym: sym, postDepth: post,
			reduced: append([]int(nil), w.cur.simRed...)}
		if winding || depth >= w.cfg.MaxDepth {
			c.postStates = append([]int(nil), w.cur.simStates...)
		}
		c.weight = 1
		for _, pi := range c.reduced {
			if !w.seen[pi] {
				c.weight += 50
			}
		}
		if w.leadBonus[sym] {
			c.weight += 8
		}
		// Depth pressure: most of the alphabet opens structure, so an
		// unweighted walk drifts to the depth cap and stalls there.
		// Closing candidates gain weight linearly with depth; opening
		// candidates decay exponentially above half the cap; winding
		// sharpens both.
		switch {
		case post < depth:
			c.weight *= 1 + depth
			if winding {
				c.weight *= 8
			}
		case post > depth:
			if over := depth - w.cfg.MaxDepth/2; over > 0 {
				c.weight = max(1, c.weight>>over)
			}
			if winding {
				c.weight = 1
			}
		}
		w.legalSet = append(w.legalSet, c)
	}
	if winding || depth >= w.cfg.MaxDepth {
		w.legalSet = w.clampDeep(w.legalSet, depth)
	}
	return w.legalSet
}

// clampDeep restricts a steered walk (deep, or winding down) to the
// candidates that make the most closing progress. A reduction fires
// only when the symbol after a completed subtree arrives, so candidates
// at the depth cap may all deepen the stack; the walk must then fill
// the open right side's remaining slots rather than dead-end.
//
// Preference order:
//  1. strictly depth-reducing candidates;
//  2. depth-preserving candidates from which a depth-reducing step
//     exists next — a leaf that completes the current slot (the
//     close-one-open-one cascade), as opposed to a terminal like cond
//     that merely starts another frame at the same depth;
//  3. any depth-preserving candidate;
//  4. leaf symbols (terminals and raw nonterminals, which fill a slot
//     without opening a new subtree);
//  5. minimum post-depth.
//
// Overshoot past the cap is thereby bounded by the longest right side
// plus the shallowest derivation of a class with no raw token.
func (w *Walker) clampDeep(cands []candidate, depth int) []candidate {
	g := w.o.Grammar()
	var best []candidate
	bestTier := 6
	minPost := -1
	for _, c := range cands {
		var tier int
		switch {
		case c.postDepth < depth:
			tier = 1
		case c.postDepth == depth:
			tier = 3
			if bestTier >= 2 && w.canDescend(c.postStates) {
				tier = 2
			}
		case g.Syms[c.sym].Kind != grammar.Operator:
			tier = 4
		default:
			tier = 5
		}
		if tier > bestTier {
			continue
		}
		if tier < bestTier {
			bestTier = tier
			best = best[:0]
			minPost = c.postDepth
		}
		if tier == 5 {
			if c.postDepth < minPost {
				best = best[:0]
				minPost = c.postDepth
			} else if c.postDepth > minPost {
				continue
			}
		}
		best = append(best, c)
	}
	return best
}

// canDescend reports whether, from the given parse stack, some next
// symbol's cascade strictly reduces the depth (or accepts).
func (w *Walker) canDescend(states []int) bool {
	if len(states) == 0 {
		return false
	}
	c := &Cursor{o: w.o, states: states}
	if ok, _ := c.simulate(w.o.eof); ok {
		return true
	}
	for _, sym := range w.o.ifs {
		if ok, _ := c.simulate(sym); ok && len(c.simStates) < len(states) {
			return true
		}
	}
	return false
}

// emittable filters symbols the walker can realize as input tokens:
// nonterminals need a configured raw value, and a use-common lead
// operator needs some live subexpression to resolve against.
func (w *Walker) emittable(sym int) bool {
	g := w.o.Grammar()
	s := g.Syms[sym]
	if s.Kind == grammar.Nonterminal {
		if vals := w.cfg.NontermTokens[s.Name]; len(vals) == 0 {
			return false
		}
	}
	if w.useLeads[sym] {
		live := false
		for _, l := range w.lives {
			if l.remaining > 0 {
				live = true
				break
			}
		}
		if !live {
			return false
		}
	}
	return true
}

// semViable walks a candidate cascade's productions checking that every
// use of a common subexpression can resolve against a live definition
// of the matching class, counting definitions the same cascade makes.
func (w *Walker) semViable(reduced []int) bool {
	avail := w.availBuf
	for k := range avail {
		delete(avail, k)
	}
	for _, l := range w.lives {
		avail[l.class] += l.remaining
	}
	makes := 0
	for _, pi := range reduced {
		sem := &w.sems[pi]
		if sem.makeCommon {
			// Cascaded make-commons resolve innermost (top of the
			// pending stack) first.
			at := len(w.pendMakes) - 1 - makes
			if at >= 0 {
				avail[sem.class] += w.pendMakes[at].cnt
			}
			makes++
		}
		if sem.useCommon {
			if avail[sem.class] <= 0 {
				return false
			}
			avail[sem.class]--
		}
	}
	return true
}

// emit advances the cursor on sym and appends the realized token(s),
// updating label and subexpression bookkeeping from the cascade.
func (w *Walker) emit(sym int) error {
	step, err := w.cur.Advance(sym)
	if err != nil {
		return err
	}
	w.toks = append(w.toks, w.tokenFor(sym))
	w.onReduced(step.Reduced)
	return nil
}

// tokenFor realizes symbol sym as an input token, synthesizing a
// plausible value within the shaper's limits.
func (w *Walker) tokenFor(sym int) ir.Token {
	g := w.o.Grammar()
	s := g.Syms[sym]
	if s.Kind == grammar.Nonterminal {
		vals := w.cfg.NontermTokens[s.Name]
		return ir.Token{Sym: s.Name, Val: vals[w.rng.Intn(len(vals))]}
	}
	if s.Kind != grammar.Terminal {
		return ir.Token{Sym: s.Name}
	}
	prev := ""
	if n := len(w.toks); n > 0 {
		prev = w.toks[n-1].Sym
	}
	return ir.Token{Sym: s.Name, Val: w.valueFor(s.Name, prev)}
}

// valueFor synthesizes a terminal value. The ranges come from the
// shaper and the emission routine's validation: displacements fit the
// S/370 12-bit base-displacement form, storage-to-storage lengths fit
// IBM_length's 1..256, immediates fit a byte, condition masks are the
// meaningful BC masks, and set elements are single-bit masks.
func (w *Walker) valueFor(name, prev string) int64 {
	switch name {
	case ir.TermDsp:
		return 8 * int64(w.rng.Intn(512)) // 0..4088, doubleword aligned
	case ir.TermLng:
		return 1 + int64(w.rng.Intn(256))
	case ir.TermCnt:
		cnt := 1 + int64(w.rng.Intn(3))
		if n := len(w.pendMakes); n > 0 && w.toks[len(w.toks)-1].Sym == ir.TermCse {
			// The count belongs to the make-common whose cse number was
			// the previous token: record the planned uses.
			w.pendMakes[n-1].cnt = cnt
		}
		return cnt
	case ir.TermLbl:
		return w.labelFor(prev)
	case ir.TermCond:
		masks := [...]int64{2, 4, 7, 8, 11, 13, 15}
		return masks[w.rng.Intn(len(masks))]
	case ir.TermErr, "err": // the shipped specs declare the terminal as "err"
		return 1 + int64(w.rng.Intn(3))
	case ir.TermStmt:
		w.stmtNum++
		return w.stmtNum
	case ir.TermElmnt:
		return 1 << w.rng.Intn(8)
	case ir.TermValue:
		return int64(w.rng.Intn(256))
	case ir.TermCse:
		return w.cseFor(prev)
	}
	return 1
}

// labelFor synthesizes a label number. A label following the defining
// operator is a definition (defined at most once, preferring labels
// already referenced); any other occurrence is a reference, drawn from
// a small pool so programs branch both forward and backward.
func (w *Walker) labelFor(prev string) int64 {
	defining := w.defLead >= 0 && prev == w.o.Grammar().SymName(w.defLead)
	if defining {
		// Prefer resolving the lowest referenced-but-undefined label
		// (sorted, so the walk stays deterministic across runs).
		var dangling []int64
		for id := range w.labelsRef {
			if !w.labelsDef[id] {
				dangling = append(dangling, id)
			}
		}
		if len(dangling) > 0 {
			sort.Slice(dangling, func(i, j int) bool { return dangling[i] < dangling[j] })
			w.labelsDef[dangling[0]] = true
			return dangling[0]
		}
		for w.labelsDef[w.nextLabel] {
			w.nextLabel++
		}
		id := w.nextLabel
		w.labelsDef[id] = true
		return id
	}
	id := 1 + int64(w.rng.Intn(4))
	w.labelsRef[id] = true
	return id
}

// cseFor synthesizes a cse number. After a make-common lead the number
// is fresh and staged as pending; after a use-common lead the token's
// value is a placeholder patched when the production reduces and the
// live set determines which class is being resolved.
func (w *Walker) cseFor(prev string) int64 {
	g := w.o.Grammar()
	if s, ok := g.Lookup(prev); ok && w.useLeads[s.ID] {
		w.pendUses = append(w.pendUses, len(w.toks))
		return 0
	}
	id := w.nextCSE
	w.nextCSE++
	w.pendMakes = append(w.pendMakes, pendingMake{id: id, cnt: 1})
	return id
}

// onReduced folds a committed cascade into the walker's semantic state:
// make-commons become live, use-commons pick a live definition of the
// reducing class and patch their cse token.
func (w *Walker) onReduced(reduced []int) {
	w.markCascade(reduced)
	g := w.o.Grammar()
	for _, pi := range reduced {
		if g.Prods[pi].LHS == g.Lambda {
			w.stmts++ // a statement closed
		}
		sem := &w.sems[pi]
		if sem.makeCommon {
			if n := len(w.pendMakes); n > 0 {
				pm := w.pendMakes[n-1]
				w.pendMakes = w.pendMakes[:n-1]
				w.lives = append(w.lives, liveCSE{id: pm.id, class: sem.class, remaining: pm.cnt})
			}
		}
		if sem.useCommon {
			if n := len(w.pendUses); n > 0 {
				tokIdx := w.pendUses[n-1]
				w.pendUses = w.pendUses[:n-1]
				w.patchUse(tokIdx, sem.class)
			}
		}
	}
}

// patchUse binds a pending use-common cse token to a live definition of
// the given class, decrementing its remaining uses.
func (w *Walker) patchUse(tokIdx int, class string) {
	matches := w.availBufIdx(class)
	if len(matches) == 0 {
		// Unreachable when semViable gated the choice; leave the
		// placeholder, verification will reject the program.
		return
	}
	li := matches[w.rng.Intn(len(matches))]
	w.toks[tokIdx].Val = w.lives[li].id
	w.lives[li].remaining--
	if w.lives[li].remaining == 0 {
		w.lives = append(w.lives[:li], w.lives[li+1:]...)
	}
}

func (w *Walker) availBufIdx(class string) []int {
	var out []int
	for i, l := range w.lives {
		if l.class == class && l.remaining > 0 {
			out = append(out, i)
		}
	}
	return out
}

// windDown ends the program: every referenced-but-undefined label gets
// a defining statement, then the cursor accepts EOF.
func (w *Walker) windDown() error {
	if w.defLead >= 0 {
		g := w.o.Grammar()
		lblSym, _ := g.Lookup(w.defLbl)
		var need []int64
		for id := range w.labelsRef {
			if !w.labelsDef[id] {
				need = append(need, id)
			}
		}
		// Deterministic order: map iteration above is randomized.
		for i := 0; i < len(need); i++ {
			for j := i + 1; j < len(need); j++ {
				if need[j] < need[i] {
					need[i], need[j] = need[j], need[i]
				}
			}
		}
		for _, id := range need {
			if step, err := w.cur.Advance(w.defLead); err != nil {
				return err
			} else {
				w.toks = append(w.toks, ir.Token{Sym: g.SymName(w.defLead)})
				w.onReduced(step.Reduced)
			}
			step, err := w.cur.Advance(lblSym.ID)
			if err != nil {
				return err
			}
			w.toks = append(w.toks, ir.Token{Sym: w.defLbl, Val: id})
			w.labelsDef[id] = true
			w.onReduced(step.Reduced)
		}
	}
	step, err := w.cur.Advance(w.o.EOF())
	if err != nil {
		return err
	}
	// EOF's cascade pops the final statement; it can carry the reduce
	// of a trailing use_common whose cse token still awaits patching.
	w.onReduced(step.Reduced)
	return nil
}

// weightedPick draws one candidate proportionally to its weight.
func (w *Walker) weightedPick(cands []candidate) candidate {
	total := 0
	for _, c := range cands {
		total += c.weight
	}
	n := w.rng.Intn(total)
	for _, c := range cands {
		n -= c.weight
		if n < 0 {
			return c
		}
	}
	return cands[len(cands)-1]
}
