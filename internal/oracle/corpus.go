package oracle

import (
	"fmt"

	"cogg/internal/grammar"
	"cogg/internal/ir"
)

// Verify checks a synthesized program against an authority (typically a
// full code-generation session) and returns its per-production
// reduction counts, indexed by 1-based production number as in
// codegen.Result.ProdCounts. A non-nil error rejects the program.
type Verify func(toks []ir.Token) (prodCounts []int, err error)

// CorpusOptions tunes corpus generation.
type CorpusOptions struct {
	Walk WalkConfig
	// Verify, when set, gates every program: rejected programs are
	// dropped and regenerated, and accepted programs feed authoritative
	// production coverage.
	Verify Verify
	// Retries bounds regeneration attempts per program slot. <= 0
	// means 64.
	Retries int
}

// CoverageReport summarizes which productions a corpus exercised.
type CoverageReport struct {
	Total     int // productions in the grammar
	Reachable int // productions with at least one Reduce entry
	Covered   int // reachable productions the corpus fired
	// Uncovered lists reachable productions the corpus missed, as
	// ProdString renderings.
	Uncovered []string
	// Dead lists productions with no Reduce entry in the packed table;
	// no input whatsoever can fire them (see Oracle.ReachableProds).
	Dead []string
}

// Full reports whether every reachable production was covered.
func (r CoverageReport) Full() bool { return r.Covered == r.Reachable }

// Corpus is the result of a generation run.
type Corpus struct {
	Programs [][]ir.Token
	Report   CoverageReport
}

// Generate mass-produces n verified programs by random walk, then
// targets any still-uncovered reachable productions with witness
// programs (appended beyond n). Deterministic given the seed.
func Generate(o *Oracle, seed int64, n int, opts CorpusOptions) (*Corpus, error) {
	w := NewWalker(o, seed, opts.Walk)
	retries := opts.Retries
	if retries <= 0 {
		retries = 64
	}
	c := &Corpus{}
	for i := 0; i < n; i++ {
		toks, err := w.nextVerified(opts.Verify, retries)
		if err != nil {
			return nil, fmt.Errorf("program %d: %w", i, err)
		}
		c.Programs = append(c.Programs, toks)
	}
	for _, pi := range w.UncoveredReachable() {
		if w.covered[pi] {
			continue // an earlier witness covered it incidentally
		}
		toks, err := w.witnessVerified(pi, opts.Verify, retries)
		if err != nil {
			continue // reported as uncovered below
		}
		c.Programs = append(c.Programs, toks)
	}
	c.Report = w.Coverage()
	return c, nil
}

// nextVerified draws random-walk programs until one verifies.
func (w *Walker) nextVerified(verify Verify, retries int) ([]ir.Token, error) {
	var lastErr error
	for a := 0; a < retries; a++ {
		toks, err := w.Program()
		if err != nil {
			lastErr = err
			continue
		}
		if verify != nil {
			counts, err := verify(toks)
			if err != nil {
				lastErr = err
				continue
			}
			w.MarkCovered(counts)
		} else {
			w.commitProgram()
		}
		return toks, nil
	}
	return nil, fmt.Errorf("oracle: no verified program in %d attempts: %w", retries, lastErr)
}

// witnessVerified retries Witness against verification. The witness
// construction is deterministic, but its finishing tail draws from the
// PRNG, so retries can succeed where the first attempt's values failed.
func (w *Walker) witnessVerified(prodIdx int, verify Verify, retries int) ([]ir.Token, error) {
	var lastErr error
	for a := 0; a < retries; a++ {
		toks, err := w.Witness(prodIdx)
		if err != nil {
			return nil, err // structural: retrying cannot help
		}
		if verify != nil {
			counts, err := verify(toks)
			if err != nil {
				lastErr = err
				continue
			}
			w.MarkCovered(counts)
		} else {
			w.commitProgram()
		}
		return toks, nil
	}
	return nil, fmt.Errorf("oracle: witness for production %d never verified: %w", prodIdx, lastErr)
}

// Coverage renders the walker's coverage state.
func (w *Walker) Coverage() CoverageReport {
	g := w.o.Grammar()
	r := CoverageReport{Total: len(g.Prods)}
	for i, p := range g.Prods {
		if !w.reachable[i] {
			r.Dead = append(r.Dead, g.ProdString(p))
			continue
		}
		r.Reachable++
		if w.covered[i] {
			r.Covered++
		} else {
			r.Uncovered = append(r.Uncovered, g.ProdString(p))
		}
	}
	return r
}

// Witness builds a program whose parse fires production prodIdx, for
// reachable productions the random walk missed. The construction is a
// top-down minimal derivation: a context chain links a statement
// (lambda-left-side) production down to the target through
// "appears-in-the-right-side-of" edges, the chain's productions expand
// the designated slots, and every other nonterminal expands through its
// cheapest derivation. Because the grammar is prefix form, emitting the
// derivation's frontier left to right yields a token stream the
// bottom-up parser reduces back along the same tree — up to conflict
// resolution, which the caller detects by checking the fired
// productions; alternative context chains (one per occurrence of the
// target's left side) are tried until one fires the target. The
// statement-aligned priming prefix from the configuration runs first so
// that derivations through common-subexpression uses are semantically
// live.
func (w *Walker) Witness(prodIdx int) ([]ir.Token, error) {
	w.ensureDerivs()
	chains := w.witnessChains(prodIdx)
	if len(chains) == 0 {
		return nil, fmt.Errorf("oracle: production %d has no statement context", prodIdx)
	}
	for _, chain := range chains {
		w.resetProgram()
		if err := w.replayPriming(); err != nil {
			return nil, err
		}
		if !w.expandProd(chain, 0, 0) {
			continue
		}
		if err := w.windDown(); err != nil {
			continue
		}
		fired := false
		for _, pi := range w.progProds {
			if pi == prodIdx {
				fired = true
				break
			}
		}
		if !fired {
			continue // a conflict-resolution twin fired instead
		}
		out := make([]ir.Token, len(w.toks))
		copy(out, w.toks)
		return out, nil
	}
	return nil, fmt.Errorf("oracle: no derivation context fires production %d", prodIdx)
}

// chainLink is one level of a witness context chain: production prod
// expands, and its right-side slot (when >= 0) expands via the next
// chain element instead of minimally.
type chainLink struct{ prod, slot int }

// ensureDerivs builds the derivation tables once per walker: the
// cheapest token expansion per symbol and, per symbol, one minimal
// statement context (the production-and-slot through which it first
// becomes reachable from a lambda-left-side production).
func (w *Walker) ensureDerivs() {
	if w.dProd != nil {
		return
	}
	g := w.o.Grammar()
	n := len(g.Syms)
	w.dProd = make([]int, n)
	w.dCost = make([]int, n)
	w.ctxProd = make([]int, n)
	w.ctxSlot = make([]int, n)
	for i := range w.dProd {
		w.dProd[i], w.dCost[i] = -1, -1
		w.ctxProd[i], w.ctxSlot[i] = -1, -1
	}
	for _, sym := range w.o.ifs {
		if w.directToken(sym) {
			w.dCost[sym] = 1
		}
	}
	// Cheapest-expansion fixpoint. Costs only ever decrease and are
	// bounded below by 1, so the chosen productions cannot cycle.
	for changed := true; changed; {
		changed = false
		for pi, p := range g.Prods {
			if g.IsLambda(p.LHS) {
				continue
			}
			sum := 0
			ok := true
			for _, r := range p.RHS {
				if w.dCost[r] < 0 {
					ok = false
					break
				}
				sum += w.dCost[r]
			}
			if ok && (w.dCost[p.LHS] < 0 || sum < w.dCost[p.LHS]) {
				w.dCost[p.LHS] = sum
				w.dProd[p.LHS] = pi
				changed = true
			}
		}
	}
	// Statement-context breadth-first search, lambda productions first,
	// so every context chain terminates at a statement root.
	var queue []int
	place := func(sym, pi, slot int) {
		if w.ctxProd[sym] == -1 {
			w.ctxProd[sym], w.ctxSlot[sym] = pi, slot
			queue = append(queue, sym)
		}
	}
	for pi, p := range g.Prods {
		if g.IsLambda(p.LHS) {
			for j, r := range p.RHS {
				place(r, pi, j)
			}
		}
	}
	for len(queue) > 0 {
		sym := queue[0]
		queue = queue[1:]
		for pi, p := range g.Prods {
			if p.LHS != sym {
				continue
			}
			for j, r := range p.RHS {
				place(r, pi, j)
			}
		}
	}
}

// witnessChains enumerates context chains for the target production,
// one per occurrence of its left side in another production's right
// side (the occurrence fixes the reduce's left context and follow
// symbol, which is where conflict resolution distinguishes twins), each
// completed upward with the minimal context links.
func (w *Walker) witnessChains(prodIdx int) [][]chainLink {
	g := w.o.Grammar()
	target := g.Prods[prodIdx]
	if g.IsLambda(target.LHS) {
		return [][]chainLink{{{prodIdx, -1}}}
	}
	var chains [][]chainLink
	for qi, q := range g.Prods {
		for j, r := range q.RHS {
			if r != target.LHS {
				continue
			}
			up, ok := w.contextTo(qi)
			if !ok {
				continue
			}
			chain := append(up, chainLink{qi, j}, chainLink{prodIdx, -1})
			chains = append(chains, chain)
		}
	}
	return chains
}

// contextTo returns the minimal chain of links from a statement root
// down to (but excluding) production qi, or ok=false when qi's left
// side never reaches a statement context.
func (w *Walker) contextTo(qi int) ([]chainLink, bool) {
	g := w.o.Grammar()
	var rev []chainLink
	for cur := g.Prods[qi].LHS; !g.IsLambda(cur); {
		pi := w.ctxProd[cur]
		if pi < 0 || len(rev) > len(g.Prods) {
			return nil, false
		}
		rev = append(rev, chainLink{pi, w.ctxSlot[cur]})
		cur = g.Prods[pi].LHS
	}
	links := make([]chainLink, 0, len(rev)+2)
	for i := len(rev) - 1; i >= 0; i-- {
		links = append(links, rev[i])
	}
	return links, true
}

// expandProd emits production chain[ci]'s right side left to right: the
// designated slot expands via the next chain element, every other
// symbol via expandSym.
func (w *Walker) expandProd(chain []chainLink, ci, depth int) bool {
	if depth > 128 {
		return false
	}
	p := w.o.Grammar().Prods[chain[ci].prod]
	for j, sym := range p.RHS {
		if j == chain[ci].slot && ci+1 < len(chain) {
			if !w.expandProd(chain, ci+1, depth+1) {
				return false
			}
			continue
		}
		if !w.expandSym(sym, depth+1) {
			return false
		}
	}
	return true
}

// expandSym emits one symbol: directly as a token when possible,
// otherwise through its cheapest derivation.
func (w *Walker) expandSym(sym, depth int) bool {
	if depth > 128 {
		return false
	}
	if w.directToken(sym) {
		return w.emit(sym) == nil
	}
	pi := w.dProd[sym]
	if pi < 0 {
		return false
	}
	for _, r := range w.o.Grammar().Prods[pi].RHS {
		if !w.expandSym(r, depth+1) {
			return false
		}
	}
	return true
}

// directToken reports whether sym may appear in the IF as a literal
// token: operators and terminals always, nonterminals only with a
// configured raw-token table entry. Unlike emittable, this is purely
// grammatical — witness derivations route common-subexpression uses
// through the priming prefix's definitions.
func (w *Walker) directToken(sym int) bool {
	g := w.o.Grammar()
	if g.KindOf(sym) != grammar.Nonterminal {
		return true
	}
	_, ok := w.cfg.NontermTokens[g.SymName(sym)]
	return ok
}

// replayPriming drives the configured priming tokens through the
// cursor, mirroring the bookkeeping tokenFor would have done so that
// primed common subexpressions and labels are live for the walk.
func (w *Walker) replayPriming() error {
	g := w.o.Grammar()
	for i, tok := range w.cfg.Priming {
		s, ok := g.Lookup(tok.Sym)
		if !ok {
			return fmt.Errorf("oracle: priming token %d: unknown symbol %q", i, tok.Sym)
		}
		step, err := w.cur.Advance(s.ID)
		if err != nil {
			return fmt.Errorf("oracle: priming token %d (%s): %w", i, tok.Sym, err)
		}
		prev := ""
		if n := len(w.toks); n > 0 {
			prev = w.toks[n-1].Sym
		}
		switch tok.Sym {
		case ir.TermCse:
			if ps, ok := g.Lookup(prev); ok && w.useLeads[ps.ID] {
				w.pendUses = append(w.pendUses, len(w.toks))
			} else {
				w.pendMakes = append(w.pendMakes, pendingMake{id: tok.Val, cnt: 1})
				if tok.Val >= w.nextCSE {
					w.nextCSE = tok.Val + 1
				}
			}
		case ir.TermCnt:
			if n := len(w.pendMakes); n > 0 && prev == ir.TermCse {
				w.pendMakes[n-1].cnt = tok.Val
			}
		case w.defLbl:
			if w.defLead >= 0 && prev == g.SymName(w.defLead) {
				w.labelsDef[tok.Val] = true
			} else {
				w.labelsRef[tok.Val] = true
			}
		}
		w.toks = append(w.toks, tok)
		w.onReduced(step.Reduced)
	}
	if len(w.cfg.Priming) > 0 && !w.cur.CanAdvance(w.o.eof) {
		return fmt.Errorf("oracle: priming prefix is not statement aligned")
	}
	return nil
}
