package oracle_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"cogg/internal/codegen"
	"cogg/internal/core"
	"cogg/internal/driver"
	"cogg/internal/ir"
	"cogg/internal/oracle"
	"cogg/internal/rt370"
	"cogg/specs"
)

// specCase bundles one shipped specification with its target
// configuration and the priming prefix used for witness programs: full
// statements defining one common subexpression per register class, with
// raw base registers as the stored values so the allocator never needs
// to spill them.
type specCase struct {
	name string
	src  string
	cfg  func() codegen.Config
	dead int // productions with no Reduce entry in the packed table
}

var specCases = []specCase{
	{name: "amdahl470.cogg", src: specs.Amdahl470, cfg: rt370.Config, dead: 1},
	{name: "risc32.cogg", src: specs.Risc32, cfg: driver.RiscConfig, dead: 0},
}

var (
	buildOnce sync.Once
	builds    map[string]*core.CodeGenerator
)

func build(t *testing.T, sc specCase) (*oracle.Oracle, *codegen.Generator) {
	t.Helper()
	buildOnce.Do(func() {
		builds = map[string]*core.CodeGenerator{}
		for _, c := range specCases {
			cg, err := core.Generate(c.name, c.src)
			if err != nil {
				panic(err)
			}
			builds[c.name] = cg
		}
	})
	cg := builds[sc.name]
	gen, err := cg.NewGenerator(sc.cfg())
	if err != nil {
		t.Fatalf("NewGenerator(%s): %v", sc.name, err)
	}
	return oracle.New(cg.Module()), gen
}

func priming(t *testing.T, sc specCase) []ir.Token {
	t.Helper()
	text := oracle.DefaultPriming(sc.name)
	if text == "" {
		t.Fatalf("no default priming for %s", sc.name)
	}
	toks, err := ir.ParseTokens(text)
	if err != nil {
		t.Fatalf("priming prefix: %v", err)
	}
	return toks
}

// codegenVerify builds a Verify that runs a full translation session.
func codegenVerify(t *testing.T, gen *codegen.Generator) oracle.Verify {
	t.Helper()
	ses, err := gen.NewSession()
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	return func(toks []ir.Token) ([]int, error) {
		_, res, err := ses.Generate("synth", toks)
		if err != nil {
			return nil, err
		}
		return append([]int(nil), res.ProdCounts...), nil
	}
}

// TestReachableProds pins the statically dead productions: amdahl470
// ships exactly one production every Reduce slot of which is shadowed
// by conflict resolution (the realword radd form that repeats an
// earlier right side), risc32 none.
func TestReachableProds(t *testing.T) {
	for _, sc := range specCases {
		t.Run(sc.name, func(t *testing.T) {
			o, _ := build(t, sc)
			reach := o.ReachableProds()
			var dead []string
			for i, r := range reach {
				if !r {
					p := o.Grammar().Prods[i]
					dead = append(dead, o.Grammar().ProdString(p))
				}
			}
			if len(dead) != sc.dead {
				t.Fatalf("dead productions = %v, want %d of them", dead, sc.dead)
			}
			if sc.dead == 1 && !strings.Contains(dead[0], "radd") {
				t.Errorf("expected the dead production to be the shadowed radd form, got %q", dead[0])
			}
		})
	}
}

// TestCursorLegalAndAdvance sanity-checks the cursor at the start of a
// program: statement-leading operators are legal, a bare cse terminal
// is not, and Advance rejects illegal symbols with a typed error.
func TestCursorLegalAndAdvance(t *testing.T) {
	for _, sc := range specCases {
		t.Run(sc.name, func(t *testing.T) {
			o, _ := build(t, sc)
			g := o.Grammar()
			c := o.NewCursor()
			legal := c.Legal(nil)
			assign, _ := g.Lookup("assign")
			if !legal.Has(assign.ID) {
				t.Errorf("assign not legal at program start")
			}
			cse, _ := g.Lookup("cse")
			if legal.Has(cse.ID) {
				t.Errorf("bare cse terminal reported legal at program start")
			}
			if _, err := c.Advance(cse.ID); err == nil {
				t.Fatalf("Advance(cse) at start did not fail")
			} else {
				var ill *oracle.IllegalSymbolError
				if !errors.As(err, &ill) {
					t.Fatalf("Advance error = %T, want *IllegalSymbolError", err)
				}
				if ill.Sym != cse.ID || ill.State != 0 {
					t.Errorf("IllegalSymbolError = %+v", *ill)
				}
			}
			// Legal set membership must agree with CanAdvance across the
			// whole universe.
			for sym := 0; sym < o.Universe(); sym++ {
				if legal.Has(sym) != c.CanAdvance(sym) {
					t.Fatalf("Legal and CanAdvance disagree on symbol %d", sym)
				}
			}
		})
	}
}

// TestWalkerProgramsTranslate drives the random walk alone (no
// verification feedback, no witnesses) and checks that nearly every
// program it emits translates cleanly; the rare semantic rejection
// (register exhaustion under an unlucky expression shape) is tolerated,
// parse blocks are not.
func TestWalkerProgramsTranslate(t *testing.T) {
	for _, sc := range specCases {
		t.Run(sc.name, func(t *testing.T) {
			o, gen := build(t, sc)
			ses, err := gen.NewSession()
			if err != nil {
				t.Fatalf("NewSession: %v", err)
			}
			w := oracle.NewWalker(o, 7, oracle.WalkConfig{})
			ok, rejected := 0, 0
			for i := 0; i < 200; i++ {
				toks, err := w.Program()
				if err != nil {
					rejected++ // dead-ended walk; the walker retries by design
					continue
				}
				_, _, err = ses.Generate("walk", toks)
				if err != nil {
					var blocked *codegen.BlockedError
					if errors.As(err, &blocked) {
						t.Fatalf("program %d blocked the parser:\n%s\n%v", i, ir.FormatTokens(toks), err)
					}
					rejected++
					continue
				}
				ok++
			}
			if ok < 150 {
				t.Fatalf("only %d/200 walks translated (%d rejected)", ok, rejected)
			}
		})
	}
}

// TestCorpusCoverageAndDeterminism is the package's acceptance test:
// a verified corpus plus witness targeting covers every reachable
// production of both shipped specifications, and the whole run is
// byte-for-byte deterministic given the seed.
func TestCorpusCoverageAndDeterminism(t *testing.T) {
	for _, sc := range specCases {
		t.Run(sc.name, func(t *testing.T) {
			o, gen := build(t, sc)
			opts := oracle.CorpusOptions{
				Walk:   oracle.WalkConfig{Priming: priming(t, sc)},
				Verify: codegenVerify(t, gen),
			}
			c, err := oracle.Generate(o, 42, 60, opts)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if !c.Report.Full() {
				t.Errorf("coverage %d/%d reachable; uncovered:\n%s",
					c.Report.Covered, c.Report.Reachable,
					strings.Join(c.Report.Uncovered, "\n"))
			}
			if len(c.Report.Dead) != sc.dead {
				t.Errorf("dead productions = %v, want %d", c.Report.Dead, sc.dead)
			}

			_, gen2 := build(t, sc)
			opts.Verify = codegenVerify(t, gen2)
			c2, err := oracle.Generate(o, 42, 60, opts)
			if err != nil {
				t.Fatalf("second Generate: %v", err)
			}
			if len(c.Programs) != len(c2.Programs) {
				t.Fatalf("runs differ in size: %d vs %d programs", len(c.Programs), len(c2.Programs))
			}
			for i := range c.Programs {
				if ir.FormatTokens(c.Programs[i]) != ir.FormatTokens(c2.Programs[i]) {
					t.Fatalf("program %d differs between same-seed runs", i)
				}
			}
		})
	}
}
