package oracle

// DefaultPriming returns the statement-aligned priming prefix for a
// shipped specification, as IF text (ir.ParseTokens accepts it): full
// statements that define one common subexpression per register class
// the specification's use-common productions draw from, storing raw
// base registers so the allocator never has to spill them. Unknown
// names return "" — witness generation then runs unprimed, and
// derivations through common-subexpression uses fail verification
// instead of being patched to a live definition.
func DefaultPriming(specName string) string {
	switch specName {
	case "amdahl470", "amdahl470.cogg", "amdahl-minimal", "amdahl-minimal.cogg", "minimal":
		return "assign fullword dsp.96 r.13 make_common cse.1 cnt.3 fullword dsp.104 r.13 r.10 " +
			"assign dblrealword dsp.112 r.13 make_common cse.2 cnt.3 dblrealword dsp.120 r.13 dblrealword dsp.128 r.13"
	case "risc32", "risc32.cogg":
		return "assign fullword dsp.96 r.13 make_common cse.1 cnt.3 fullword dsp.104 r.13 r.10"
	}
	return ""
}
