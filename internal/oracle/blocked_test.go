package oracle_test

import (
	"errors"
	"math/rand"
	"testing"

	"cogg/internal/codegen"
	"cogg/internal/grammar"
	"cogg/internal/ir"
	"cogg/internal/oracle"
)

// TestBlockedExpectedMatchesOracle is the blocked-parse differential:
// take valid walker programs, corrupt one token's symbol, and — when
// the corruption blocks the parser — check the code generator's
// BlockDiag against the oracle. The two compute the legal-next set
// independently (codegen simulates against its own parse stack, the
// oracle against a cursor replaying the same prefix), so agreement
// pins both the diagnostic and the oracle's cascade simulation.
func TestBlockedExpectedMatchesOracle(t *testing.T) {
	for _, sc := range specCases {
		t.Run(sc.name, func(t *testing.T) {
			o, gen := build(t, sc)
			g := o.Grammar()
			var names []string
			for _, id := range ifSymbols(o) {
				names = append(names, g.SymName(id))
			}
			w := oracle.NewWalker(o, 11, oracle.WalkConfig{})
			rng := rand.New(rand.NewSource(23))
			checked := 0
			for i := 0; i < 120 && checked < 25; i++ {
				toks, err := w.Program()
				if err != nil {
					continue
				}
				mut := append([]ir.Token(nil), toks...)
				at := rng.Intn(len(mut))
				mut[at].Sym = names[rng.Intn(len(names))]

				_, _, err = gen.Generate("mut", mut)
				var blocked *codegen.BlockedError
				if !errors.As(err, &blocked) {
					continue // still valid, or a semantic rejection
				}
				d := blocked.Blocks[0]

				// Replay the same prefix on a fresh cursor; the first
				// illegal index must be where the parser blocked.
				c := o.NewCursor()
				pos := len(mut)
				for j, tok := range mut {
					s, ok := g.Lookup(tok.Sym)
					if !ok {
						t.Fatalf("program %d: mutated token %q not in grammar", i, tok.Sym)
					}
					if !c.CanAdvance(s.ID) {
						pos = j
						break
					}
					if _, err := c.Advance(s.ID); err != nil {
						t.Fatalf("program %d: replay failed at %d: %v", i, j, err)
					}
				}
				if pos != d.Pos {
					t.Fatalf("program %d: parser blocked at %d, oracle at %d\n%s",
						i, d.Pos, pos, ir.FormatTokens(mut))
				}

				var want []string
				legal := c.Legal(nil)
				for _, id := range ifSymbols(o) {
					if legal.Has(id) {
						want = append(want, g.SymName(id))
					}
				}
				if legal.Has(o.EOF()) {
					want = append(want, "$end")
				}
				if len(want) != len(d.Expected) {
					t.Fatalf("program %d pos %d: expected-set sizes differ: oracle %v vs diag %v",
						i, pos, want, d.Expected)
				}
				for k := range want {
					if want[k] != d.Expected[k] {
						t.Fatalf("program %d pos %d: expected sets differ: oracle %v vs diag %v",
							i, pos, want, d.Expected)
					}
				}
				checked++
			}
			if checked < 10 {
				t.Fatalf("only %d mutations blocked the parser; mutation scheme too weak", checked)
			}
		})
	}
}

// ifSymbols lists the oracle's IF symbol universe in id order.
func ifSymbols(o *oracle.Oracle) []int {
	var out []int
	g := o.Grammar()
	for _, s := range g.Syms {
		if s.ID == g.Lambda {
			continue
		}
		switch s.Kind {
		case grammar.Operator, grammar.Terminal, grammar.Nonterminal:
			out = append(out, s.ID)
		}
	}
	return out
}
