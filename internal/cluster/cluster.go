// Package cluster is the resilience layer over a fleet of cogd
// replicas: a client (and a reverse-proxy front built on it, see Front)
// that keeps requests succeeding while individual replicas crash, hang,
// drain, or brown out.
//
// Routing is consistent hashing of spec keys across the replica set
// (see ring): every request for one specification prefers the same
// replica, keeping that replica's session pools and decoded table
// module hot for its specs. Around the route sits a policy engine:
//
//   - active health probing of every replica's /readyz, combined with
//     passive error tracking from live traffic;
//   - per-replica circuit breakers (closed/open/half-open with single
//     probe admission, see breaker);
//   - bounded retries with exponential backoff and full jitter,
//     honoring Retry-After from 429/503 answers;
//   - hedged duplicate requests fired when the first attempt outlives
//     an adaptive p99 latency threshold — first non-retryable answer
//     wins, the loser is canceled;
//   - graceful degradation: when the hash owner is down the request
//     fails over along the ring to any healthy replica, and when no
//     replica is admissible (or retries are exhausted) it falls back to
//     local in-process compilation, flagged "degraded":true in the
//     response body.
//
// The same engine serves three consumers: the cogdfront reverse proxy
// (cmd/cogdfront), coggload's multi-replica mode (-targets), and the Go
// Client used directly by the chaos suite — load tests and production
// clients share one retry implementation.
package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"cogg/internal/obs"
)

// Options configure a Client.
type Options struct {
	// Targets are the replica base URLs (http://host:port). At least
	// one is required.
	Targets []string

	// MaxRetries bounds how many times one request is re-sent after a
	// retryable outcome (transport error, 429, 5xx); 0 disables retry,
	// < 0 is treated as 0.
	MaxRetries int
	// AttemptTimeout bounds each individual attempt's wall time; 0
	// means no per-attempt bound beyond the caller's context. A hung
	// replica is only detectable through this.
	AttemptTimeout time.Duration
	// BaseBackoff is the first retry's backoff ceiling, doubling per
	// retry up to MaxBackoff; the actual sleep is uniformly random in
	// [0, ceiling] (full jitter), raised to the server's Retry-After
	// when one was sent. <= 0 means 25ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff ceiling; <= 0 means 1s.
	MaxBackoff time.Duration

	// HedgeAfter controls hedged duplicate requests: > 0 hedges after a
	// fixed delay, 0 (the default) hedges after the adaptive p99 of
	// recently observed latencies, and < 0 disables hedging.
	HedgeAfter time.Duration

	// BreakerThreshold is how many consecutive failures open a
	// replica's breaker; <= 0 means 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before
	// half-opening; <= 0 means 1s.
	BreakerCooldown time.Duration

	// ProbeInterval is the active health probe period (GET /readyz per
	// replica); 0 means 250ms, < 0 disables active probing (admission
	// then relies on the breakers alone).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe; <= 0 means 500ms.
	ProbeTimeout time.Duration

	// Local, when set, is the degradation tier: a lazily-built local
	// handler (an in-process cogd server.Handler()) that serves the
	// request when no replica can. Responses served this way have
	// "degraded":true injected into their JSON body.
	Local func() (http.Handler, error)

	// Registry receives the client's metrics (breaker-state gauges,
	// hedge/retry/failover counters); nil disables exposition but the
	// counters still accumulate for Snapshot.
	Registry *obs.Registry

	// HTTPClient overrides the transport; nil builds one with sensible
	// connection pooling.
	HTTPClient *http.Client

	// VNodes is the virtual nodes per replica on the hash ring;
	// <= 0 means 64.
	VNodes int
}

func (o *Options) fill() {
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 500 * time.Millisecond
	}
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 32,
		}}
	}
}

// replica is one target's serving state: its breaker plus the latest
// active-probe verdict.
type replica struct {
	idx   int
	url   string // base URL, no trailing slash
	name  string // host:port, the metrics label
	token string // order-independent sticky-routing token (URL hash)

	br *breaker

	mu     sync.Mutex
	probed bool // at least one active probe has completed
	ready  bool // last active probe said ready
}

// admissible reports whether the policy engine may route a request
// here: the breaker admits it, and the last health probe (if any has
// run) said ready. An unprobed replica is given the benefit of the
// doubt — its breaker learns the truth on the first request.
func (r *replica) admissible() bool {
	r.mu.Lock()
	probed, ready := r.probed, r.ready
	r.mu.Unlock()
	if probed && !ready {
		return false
	}
	return r.br.Allow()
}

func (r *replica) setReady(ready bool) {
	r.mu.Lock()
	r.probed, r.ready = true, ready
	r.mu.Unlock()
}

func (r *replica) isReady() (probed, ready bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.probed, r.ready
}

// Client is the resilient fleet client. Build with New, stop the
// health probers with Close.
type Client struct {
	opts    Options
	hc      *http.Client
	reps    []*replica
	byToken map[string]*replica
	ring    *ring
	lat     *latWindow
	m       *metrics

	localMu  sync.Mutex
	localH   http.Handler
	localErr error

	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Client over the target replicas and starts the health
// probers.
func New(opts Options) (*Client, error) {
	opts.fill()
	if len(opts.Targets) == 0 {
		return nil, errors.New("cluster: no targets")
	}
	c := &Client{
		opts:      opts,
		hc:        opts.HTTPClient,
		lat:       newLatWindow(256),
		stopProbe: make(chan struct{}),
	}
	seen := map[string]bool{}
	for _, t := range opts.Targets {
		u := strings.TrimRight(strings.TrimSpace(t), "/")
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		name := u
		if p, err := url.Parse(u); err == nil && p.Host != "" {
			name = p.Host
		}
		rep := &replica{
			idx:  len(c.reps),
			url:  u,
			name: name,
			br:   newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		}
		c.reps = append(c.reps, rep)
	}
	if len(c.reps) == 0 {
		return nil, errors.New("cluster: no usable targets")
	}
	c.byToken = assignTokens(c.reps)
	c.ring = newRing(c.reps, opts.VNodes)
	c.m = newMetrics(opts.Registry, c.reps)
	if opts.ProbeInterval > 0 {
		c.startProbers()
	}
	return c, nil
}

// Close stops the health probers. In-flight requests are unaffected.
func (c *Client) Close() {
	c.closeOnce.Do(func() { close(c.stopProbe) })
	c.probeWG.Wait()
}

// Replicas lists the replica names (host:port) in target order.
func (c *Client) Replicas() []string {
	names := make([]string, len(c.reps))
	for i, r := range c.reps {
		names[i] = r.name
	}
	return names
}

// assignTokens gives every replica a sticky-routing token: a sha256-hex
// prefix of its URL, the shortest length >= 8 that keeps all tokens
// distinct (lengthened in lockstep on the astronomically rare prefix
// collision). The token is a pure function of the URL — not of this
// client's target order — so a session branded by one front resolves
// on any front (or restart) configured with the same replica, however
// its -targets list is ordered. Tokens are hex-only, so the "local"
// degraded-tier prefix can never collide with one.
func assignTokens(reps []*replica) map[string]*replica {
	full := make([]string, len(reps))
	for i, rep := range reps {
		sum := sha256.Sum256([]byte(rep.url))
		full[i] = hex.EncodeToString(sum[:])
	}
	n := 8
	for ; n < len(full[0]); n += 4 {
		seen := make(map[string]bool, len(full))
		unique := true
		for _, h := range full {
			if seen[h[:n]] {
				unique = false
				break
			}
			seen[h[:n]] = true
		}
		if unique {
			break
		}
	}
	byToken := make(map[string]*replica, len(reps))
	for i, rep := range reps {
		rep.token = full[i][:n]
		byToken[rep.token] = rep
	}
	return byToken
}

// replicaByToken resolves a sticky-session token minted by any client
// over the same replica URLs (see assignTokens).
func (c *Client) replicaByToken(tok string) (*replica, bool) {
	rep, ok := c.byToken[tok]
	return rep, ok
}

// Owner names the replica that owns key on the hash ring (the first
// preference before any failover).
func (c *Client) Owner(key string) string {
	ord := c.ring.order(key)
	if len(ord) == 0 {
		return ""
	}
	return ord[0].name
}

// Result is one completed request: the answering replica's status and
// body, plus how hard the policy engine had to work for it.
type Result struct {
	Status int
	Header http.Header
	Body   []byte

	// Replica names who answered; "local" for the degraded tier.
	Replica string
	// ReplicaIdx is the answering replica's index in target order, or
	// -1 for the degraded tier.
	ReplicaIdx int
	// Attempts counts primary attempts (1 for a clean first try),
	// Hedges the duplicate requests fired alongside them.
	Attempts int
	Hedges   int
	// Degraded marks a response served by local in-process compilation
	// because no replica could answer.
	Degraded bool
}

// Do routes one POST of a JSON body to the fleet. key is the routing
// key — the spec name, so each spec's requests prefer the replica whose
// caches are hot for it. The returned Result may carry any HTTP status
// (422s and other terminal answers pass through untouched); the error
// is non-nil only when no answer could be produced at all.
func (c *Client) Do(ctx context.Context, path, key string, body []byte) (*Result, error) {
	return c.do(ctx, path, key, body, true)
}

// DoNoHedge routes like Do but never fires a hedged duplicate: the
// path for non-idempotent requests — opening a grammar session — where
// a duplicate that loses the race would leave an orphaned resource
// occupying the losing replica's bounded session table until its TTL.
func (c *Client) DoNoHedge(ctx context.Context, path, key string, body []byte) (*Result, error) {
	return c.do(ctx, path, key, body, false)
}

func (c *Client) do(ctx context.Context, path, key string, body []byte, hedge bool) (*Result, error) {
	// The whole policy decision — every retry, hedge, failover, and the
	// degraded fallback — is one span; each launched attempt is a child
	// under it (attemptHedged). Outcome annotations land here so the
	// stitched timeline explains *why* the routing did what it did.
	tr, parent := obs.FromContext(ctx)
	pspan := -1
	if tr != nil {
		pspan = tr.StartSpan("cluster:"+path, parent)
		defer tr.EndSpan(pspan)
		ctx = obs.ContextWith(ctx, tr, pspan)
	}
	order := c.ring.order(key)
	owner := order[0]
	var last attemptRes
	attempts, hedges := 0, 0
	for try := 0; try <= c.opts.MaxRetries; try++ {
		if tr != nil {
			// Read-only breaker peek (State, not Allow): record which
			// replicas the picker is about to route around.
			for _, r := range order {
				if r.br.State() == BreakerOpen {
					tr.Annotate(pspan, "breaker-open:"+r.name)
				}
			}
		}
		// Rotate the starting preference by try so a retry after a
		// failed owner attempt goes straight to the first fallback.
		primary := c.pick(order, try, nil)
		if primary == nil {
			break // nobody admissible: degrade
		}
		ar, h := c.attemptHedged(ctx, primary, order, path, body, hedge)
		attempts++
		hedges += h
		if ar.ctxErr != nil {
			return nil, ar.ctxErr
		}
		if !ar.retryable {
			ar.res.Attempts, ar.res.Hedges = attempts, hedges
			if ar.rep != owner {
				c.m.failovers.Inc()
				if tr != nil {
					tr.Annotate(pspan, "failover:"+ar.rep.name)
				}
			}
			return ar.res, nil
		}
		last = ar
		if try < c.opts.MaxRetries {
			c.m.retries.Inc()
			if tr != nil {
				tr.Annotate(pspan, "retry")
				if ar.retryAfter > 0 {
					tr.Annotate(pspan, "retry-after="+ar.retryAfter.String())
				}
			}
			if !sleepCtx(ctx, c.backoff(try, ar.retryAfter)) {
				return nil, ctx.Err()
			}
		}
	}
	if c.opts.Local != nil {
		res, err := c.localDo(ctx, path, body)
		if err == nil {
			c.m.degraded.Inc()
			if tr != nil {
				tr.Annotate(pspan, "degraded")
			}
			res.Attempts, res.Hedges = attempts, hedges
			return res, nil
		}
		last.err = errors.Join(last.err, fmt.Errorf("local fallback: %w", err))
	}
	// Out of options. A terminal retryable answer (say every replica
	// said 429) is still an answer — pass it through so the caller sees
	// the fleet's backpressure rather than a synthetic error.
	if last.res != nil {
		last.res.Attempts, last.res.Hedges = attempts, hedges
		return last.res, nil
	}
	if last.err != nil {
		return nil, fmt.Errorf("cluster: every attempt failed: %w", last.err)
	}
	return nil, errors.New("cluster: no admissible replica")
}

// DoAt sends one request to a specific replica, no failover — the
// sticky path for stateful resources (grammar-walk sessions) that live
// on exactly one replica.
func (c *Client) DoAt(ctx context.Context, idx int, path string, body []byte) (*Result, error) {
	if idx < 0 || idx >= len(c.reps) {
		return nil, fmt.Errorf("cluster: no replica %d", idx)
	}
	rep := c.reps[idx]
	if !rep.admissible() {
		return nil, fmt.Errorf("cluster: replica %s is not admissible", rep.name)
	}
	tr, cur := obs.FromContext(ctx)
	span := -1
	if tr != nil {
		span = tr.StartSpan("attempt:"+rep.name, cur)
		tr.Annotate(span, "sticky")
		ctx = obs.ContextWith(ctx, tr, span)
	}
	ar := c.send(ctx, rep, path, body)
	if tr != nil {
		tr.Annotate(span, outcomeNote(ar))
		tr.EndSpan(span)
	}
	if ar.res == nil {
		if ar.ctxErr != nil {
			return nil, ar.ctxErr
		}
		return nil, ar.err
	}
	ar.res.Attempts = 1
	return ar.res, nil
}

// pick chooses the first admissible replica in preference order,
// starting at offset start (retries rotate it) and skipping skip (the
// hedge excludes the primary).
func (c *Client) pick(order []*replica, start int, skip *replica) *replica {
	n := len(order)
	for i := 0; i < n; i++ {
		r := order[(start+i)%n]
		if r == skip {
			continue
		}
		if r.admissible() {
			return r
		}
	}
	return nil
}

// sleepCtx sleeps d unless ctx ends first; it reports whether the full
// sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ReplicaStatus is one replica's health snapshot for /varz.
type ReplicaStatus struct {
	URL     string `json:"url"`
	Probed  bool   `json:"probed"`
	Ready   bool   `json:"ready"`
	Breaker string `json:"breaker"`
}

// Snapshot is the client's /varz payload: replica health and the policy
// engine's counters.
type Snapshot struct {
	Replicas  []ReplicaStatus `json:"replicas"`
	Attempts  int64           `json:"attempts"`
	Retries   int64           `json:"retries"`
	Hedges    int64           `json:"hedges"`
	HedgeWins int64           `json:"hedge_wins"`
	Failovers int64           `json:"failovers"`
	Degraded  int64           `json:"degraded"`
}

// Snapshot reads the counters and replica states once.
func (c *Client) Snapshot() Snapshot {
	s := Snapshot{
		Attempts:  c.m.attempts.Value(),
		Retries:   c.m.retries.Value(),
		Hedges:    c.m.hedges.Value(),
		HedgeWins: c.m.hedgeWins.Value(),
		Failovers: c.m.failovers.Value(),
		Degraded:  c.m.degraded.Value(),
	}
	for _, r := range c.reps {
		probed, ready := r.isReady()
		s.Replicas = append(s.Replicas, ReplicaStatus{
			URL:     r.url,
			Probed:  probed,
			Ready:   ready,
			Breaker: r.br.State().String(),
		})
	}
	return s
}
