package cluster

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

func testReplicas(n int) []*replica {
	reps := make([]*replica, n)
	for i := range reps {
		reps[i] = &replica{
			idx:  i,
			url:  fmt.Sprintf("http://10.0.0.%d:8470", i+1),
			name: fmt.Sprintf("10.0.0.%d:8470", i+1),
			br:   newBreaker(5, time.Second),
		}
	}
	return reps
}

// TestRingDeterminism: routing must be a pure function of (targets,
// key) — every client that knows the same target list computes the
// same owner and the same failover order, so cache affinity survives
// front restarts and holds across independent fronts.
func TestRingDeterminism(t *testing.T) {
	reps := testReplicas(3)
	r1 := newRing(reps, 64)
	r2 := newRing(reps, 64)
	for _, key := range []string{"", "amdahl470", "risc32", "some/other/key"} {
		o1, o2 := r1.order(key), r2.order(key)
		if len(o1) != 3 || len(o2) != 3 {
			t.Fatalf("key %q: order lengths %d/%d, want 3", key, len(o1), len(o2))
		}
		seen := map[int]bool{}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Errorf("key %q: rings disagree at position %d", key, i)
			}
			seen[o1[i].idx] = true
		}
		if len(seen) != 3 {
			t.Errorf("key %q: order repeats a replica: %v", key, seen)
		}
	}
}

// TestRingSpreadsKeys: with vnodes on, no replica is starved — every
// replica owns a reasonable share of a large key space.
func TestRingSpreadsKeys(t *testing.T) {
	reps := testReplicas(3)
	r := newRing(reps, 64)
	owners := make([]int, 3)
	const keys = 3000
	for i := 0; i < keys; i++ {
		owners[r.order(fmt.Sprintf("spec-%d.cogg", i))[0].idx]++
	}
	for i, n := range owners {
		// A very loose bound: uniform would be 1000 each; vnode
		// placement noise should not push any replica below 1/6 share.
		if n < keys/6 {
			t.Errorf("replica %d owns only %d/%d keys", i, n, keys)
		}
	}
}

// TestBreakerLifecycle walks the full closed → open → half-open →
// open → half-open → closed cycle on a fake clock.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Second)
	b.Now = func() time.Time { return now }
	var transitions []BreakerState
	b.OnTransition = func(to BreakerState) { transitions = append(transitions, to) }

	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("2/3 failures already opened the breaker")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold failures did not open the breaker")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	now = now.Add(time.Second) // cooldown elapses
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission: %v", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second request while probing")
	}
	b.Failure() // the probe failed: slam open again
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}

	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("second half-open probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker refused a request")
	}

	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
}

// TestBreakerCancelProbeReleasesSlot: a half-open probe whose request
// is canceled (hedge winner, caller context) must release the probe
// slot — without that the breaker would be stuck half-open, rejecting
// everything forever.
func TestBreakerCancelProbeReleasesSlot(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(1, time.Second)
	b.Now = func() time.Time { return now }

	b.Failure() // trip open
	now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second request while probing")
	}
	b.CancelProbe() // the probe request was canceled: no verdict
	if b.State() != BreakerHalfOpen {
		t.Fatalf("cancelProbe changed state to %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("breaker still rejecting after the canceled probe released the slot")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful re-probe did not close the breaker")
	}

	// On a closed breaker cancelProbe is a no-op, not a reset.
	b.CancelProbe()
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("cancelProbe disturbed a closed breaker")
	}
}

// TestReplicaTokensOrderIndependent: the sticky-session token is a pure
// function of the replica URL, so two clients over the same fleet in
// different -targets order mint and resolve the same tokens.
func TestReplicaTokensOrderIndependent(t *testing.T) {
	urls := []string{"http://10.0.0.1:8470", "http://10.0.0.2:8470", "http://10.0.0.3:8470"}
	rev := []string{urls[2], urls[1], urls[0]}
	a, err := New(Options{Targets: urls, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Options{Targets: rev, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for _, rep := range a.reps {
		if len(rep.token) < 8 {
			t.Errorf("replica %s token %q is too short", rep.url, rep.token)
		}
		other, ok := b.replicaByToken(rep.token)
		if !ok {
			t.Fatalf("token %q for %s does not resolve on the reversed client", rep.token, rep.url)
		}
		if other.url != rep.url {
			t.Errorf("token %q resolves to %s on one client and %s on the other", rep.token, rep.url, other.url)
		}
	}
	if _, ok := a.replicaByToken("ffffffff"); ok {
		t.Error("an unknown token resolved to a replica")
	}
}

// TestBreakerSuccessResetsCount: failures must be consecutive to trip;
// any success restarts the count.
func TestBreakerSuccessResetsCount(t *testing.T) {
	b := newBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("interleaved successes still tripped the breaker")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("three consecutive failures did not trip the breaker")
	}
}

func TestParseRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		v    string
		want time.Duration
	}{
		{"", 0},
		{"5", 5 * time.Second},
		{"0", 0},
		{"-3", 0},
		{"Fri, 07 Aug 2026 12:00:00 GMT", 0}, // HTTP-date form: ignored
		{"garbage", 0},
	} {
		h := http.Header{}
		if tc.v != "" {
			h.Set("Retry-After", tc.v)
		}
		if got := parseRetryAfter(h); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

// TestBackoffBounds: the jittered backoff stays inside the exponential
// ceiling, caps at MaxBackoff, and is never below the server's
// Retry-After.
func TestBackoffBounds(t *testing.T) {
	c := &Client{opts: Options{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}}
	for try := 0; try < 12; try++ {
		for i := 0; i < 50; i++ {
			d := c.backoff(try, 0)
			if d < 0 || d > 80*time.Millisecond {
				t.Fatalf("backoff(try=%d) = %v, outside [0, 80ms]", try, d)
			}
		}
	}
	if d := c.backoff(0, 500*time.Millisecond); d < 500*time.Millisecond {
		t.Errorf("backoff ignored Retry-After: %v < 500ms", d)
	}
}

// TestHedgeDelayModes: fixed, disabled, and the adaptive p99 with its
// cold default and warm-cache floor.
func TestHedgeDelayModes(t *testing.T) {
	fixed := &Client{opts: Options{HedgeAfter: 7 * time.Millisecond}, lat: newLatWindow(256)}
	if d := fixed.hedgeDelay(); d != 7*time.Millisecond {
		t.Errorf("fixed hedge delay = %v, want 7ms", d)
	}
	off := &Client{opts: Options{HedgeAfter: -1}, lat: newLatWindow(256)}
	if d := off.hedgeDelay(); d >= 0 {
		t.Errorf("disabled hedging returned a delay: %v", d)
	}

	adaptive := &Client{opts: Options{HedgeAfter: 0}, lat: newLatWindow(256)}
	if d := adaptive.hedgeDelay(); d != 25*time.Millisecond {
		t.Errorf("cold adaptive hedge delay = %v, want the 25ms default", d)
	}
	// A microsecond-fast warm cache must not make every request hedge:
	// the floor holds the threshold up.
	for i := 0; i < 256; i++ {
		adaptive.lat.observe(time.Microsecond)
	}
	if d := adaptive.hedgeDelay(); d != 2*time.Millisecond {
		t.Errorf("warm-cache hedge delay = %v, want the 2ms floor", d)
	}
	// Slow observed traffic raises the threshold to its p99.
	for i := 0; i < 256; i++ {
		adaptive.lat.observe(50 * time.Millisecond)
	}
	if d := adaptive.hedgeDelay(); d != 50*time.Millisecond {
		t.Errorf("adaptive hedge delay = %v, want the observed 50ms p99", d)
	}
}

// TestNewDedupesTargets: duplicate and slash-suffixed target URLs
// collapse to one replica, so a sloppy -targets flag cannot double a
// replica's ring share.
func TestNewDedupesTargets(t *testing.T) {
	c, err := New(Options{
		Targets:       []string{"http://10.0.0.1:8470", "http://10.0.0.1:8470/", " http://10.0.0.1:8470 "},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Replicas(); len(got) != 1 {
		t.Fatalf("replicas = %v, want one", got)
	}
}
